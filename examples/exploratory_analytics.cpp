// Exploratory analytics: the CMT-style scenario from the paper's
// introduction — a data scientist issues ad-hoc queries with no upfront
// workload; there is no static partitioning that fits, yet AdaptDB keeps
// improving as it observes the query stream.
//
//   ./build/examples/exploratory_analytics

#include <cstdio>
#include <cstring>

#include "core/database.h"
#include "workload/cmt.h"
#include "workload/drivers.h"

using namespace adaptdb;

int main(int argc, char** argv) {
  cmt::CmtConfig cfg;
  cfg.num_trips = 12000;
  const cmt::CmtData data = cmt::GenerateCmt(cfg);

  DatabaseOptions opts;
  opts.adapt.smooth.total_levels = 6;
  Database db(opts);
  TableOptions trips_opts;
  trips_opts.upfront_levels = 6;
  ADB_CHECK_OK(db.CreateTable("trips", data.trips_schema, data.trips,
                              trips_opts));
  ADB_CHECK_OK(
      db.CreateTable("history", data.history_schema, data.history, trips_opts));
  TableOptions latest_opts;
  latest_opts.upfront_levels = 5;
  ADB_CHECK_OK(
      db.CreateTable("latest", data.latest_schema, data.latest, latest_opts));

  const std::vector<Query> trace = cmt::MakeTrace(data, 99);
  std::printf("running the %zu-query exploratory trace...\n\n", trace.size());
  std::printf("%-6s %-18s %10s %10s %12s\n", "query", "kind", "rows", "sim-s",
              "join");
  double first10 = 0, last10 = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    auto run = db.RunQuery(trace[i]);
    ADB_CHECK_OK(run.status());
    const auto& r = run.ValueOrDie();
    if (i < 10) first10 += r.seconds;
    if (i >= trace.size() - 10) last10 += r.seconds;
    if (i % 10 == 0) {
      std::printf("%-6zu %-18s %10lld %10.1f %12s\n", i,
                  trace[i].name.c_str(),
                  static_cast<long long>(r.output_rows), r.seconds,
                  r.edges.empty()
                      ? "-"
                      : (r.edges[0].used_hyper ? "hyper" : "shuffle"));
    }
  }
  std::printf(
      "\nmean latency, first 10 queries: %.1f sim-s; last 10: %.1f sim-s\n",
      first10 / 10, last10 / 10);
  std::printf("the gap is the adaptation win: no workload was provided "
              "upfront.\n");
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats") == 0) {
      std::printf("\n%s\n", db.Stats().ToString().c_str());
    }
  }
  return 0;
}
