// Quickstart: create an AdaptDB instance, load two tables, run selection
// and join queries, and watch the storage manager adapt.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "core/database.h"

using namespace adaptdb;

static bool WantStats(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats") == 0) return true;
  }
  return false;
}

// ADAPTDB_SERVE_SECONDS=N keeps the process (and so the introspection HTTP
// server enabled via ADAPTDB_HTTP_PORT) alive for N seconds after the demo
// queries finish, so a script can curl /metrics and /stats. CI does this.
static int ServeSeconds() {
  const char* v = std::getenv("ADAPTDB_SERVE_SECONDS");
  return v != nullptr ? std::atoi(v) : 0;
}

int main(int argc, char** argv) {
  // 1. A database over a simulated 10-node cluster with default adaptation.
  Database db;

  // 2. Define schemas and generate some data: users(id, age, country) and
  //    events(user_id, kind, ts).
  Schema users({{"id", DataType::kInt64, 8},
                {"age", DataType::kInt64, 4},
                {"country", DataType::kInt64, 4}});
  Schema events({{"user_id", DataType::kInt64, 8},
                 {"kind", DataType::kInt64, 4},
                 {"ts", DataType::kInt64, 8}});
  Rng rng(42);
  std::vector<Record> user_rows, event_rows;
  for (int64_t id = 1; id <= 5000; ++id) {
    user_rows.push_back({Value(id), Value(rng.UniformRange(18, 90)),
                         Value(rng.UniformRange(0, 30))});
    const int64_t n_events = rng.UniformRange(0, 5);
    for (int64_t e = 0; e < n_events; ++e) {
      event_rows.push_back({Value(id), Value(rng.UniformRange(0, 9)),
                            Value(rng.UniformRange(0, 1000000))});
    }
  }

  // 3. Loading a table samples it, builds the workload-oblivious upfront
  //    partitioning tree (Amoeba-style), and spreads blocks over the
  //    cluster.
  TableOptions opts;
  opts.upfront_levels = 5;  // Up to 32 blocks per table.
  ADB_CHECK_OK(db.CreateTable("users", users, user_rows, opts));
  ADB_CHECK_OK(db.CreateTable("events", events, event_rows, opts));

  // 4. A selection query: predicate-based data access skips blocks.
  Query young;
  young.name = "young_users";
  young.tables = {{"users", {Predicate(1, CompareOp::kLt, 25)}}};
  auto sel = db.RunQuery(young);
  ADB_CHECK_OK(sel.status());
  std::printf("[select] %lld young users, %lld blocks scanned, %.1f sim-s\n",
              static_cast<long long>(sel.ValueOrDie().output_rows),
              static_cast<long long>(sel.ValueOrDie().blocks_scanned),
              sel.ValueOrDie().seconds);

  // 5. A join query, repeated. Early runs shuffle; as the window fills,
  //    smooth repartitioning builds join-attribute trees on both tables and
  //    the planner switches to hyper-join.
  Query join;
  join.name = "user_events";
  join.tables = {{"users", {}}, {"events", {}}};
  join.joins = {{"users", 0, "events", 0}};
  for (int i = 0; i < 10; ++i) {
    auto run = db.RunQuery(join);
    ADB_CHECK_OK(run.status());
    const auto& r = run.ValueOrDie();
    std::printf(
        "[join %2d] %lld rows, %s, %.1f sim-s (repartitioned %lld records)\n",
        i, static_cast<long long>(r.output_rows),
        r.edges.empty() ? "scan"
                        : (r.edges[0].used_hyper ? "hyper-join" : "shuffle"),
        r.seconds, static_cast<long long>(r.records_repartitioned));
  }

  // 6. Inspect the adapted state.
  Table* t = db.GetTable("users").ValueOrDie();
  std::printf("users now has %zu partitioning tree(s); join tree on attr 0: %s\n",
              t->trees()->size(), t->trees()->Has(0) ? "yes" : "no");

  // 7. Observability (run with --stats): engine-wide counters plus an
  //    EXPLAIN ANALYZE-style profile of one more join.
  if (WantStats(argc, argv)) {
    PlannerConfig config = db.planner_config();
    config.collect_profile = true;
    db.SetPlannerConfig(config);
    ADB_CHECK_OK(db.RunQuery(join).status());
    std::printf("\n%s\n", db.Stats().ToString().c_str());
    if (auto profile = db.ProfileLastQuery()) {
      std::printf("%s", profile->ToString().c_str());
    }
  }

  // 8. Live introspection: with ADAPTDB_HTTP_PORT set the Database serves
  //    GET /metrics, /stats, /profile and /trace on 127.0.0.1.
  if (const int serve = ServeSeconds(); serve > 0) {
    std::printf("introspection server on port %d; serving for %d s\n",
                db.introspection_port(), serve);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(serve));
  }
  return 0;
}
