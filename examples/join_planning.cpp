// Join planning: a look inside the §5.4 cost model. Runs the same join
// against (a) a freshly loaded database (workload-oblivious trees, dense
// overlap, shuffle wins) and (b) a converged one (two-phase trees, sparse
// overlap, hyper-join wins), printing Cost-SJ, Cost-HyJ and the estimated
// C_HyJ that drive the planner's choice.
//
//   ./build/examples/join_planning

#include <cstdio>
#include <cstring>

#include "core/database.h"
#include "workload/drivers.h"
#include "workload/tpch.h"
#include "workload/tpch_queries.h"

using namespace adaptdb;

namespace {

void Explain(const char* when, const QueryRunResult& r) {
  if (r.edges.empty()) return;
  const EdgeReport& e = r.edges[0];
  std::printf("%s\n", when);
  std::printf("  input blocks:      R=%lld S=%lld\n",
              static_cast<long long>(e.r_blocks),
              static_cast<long long>(e.s_blocks));
  std::printf("  Cost-SJ  = C_SJ*(R+S)        = %.0f block-costs\n",
              e.choice.cost_shuffle);
  std::printf("  Cost-HyJ = R + scheduled(S)  = %.0f block-costs\n",
              e.choice.cost_hyper);
  std::printf("  estimated C_HyJ              = %.2f\n", e.choice.c_hyj);
  std::printf("  planner chose:               %s\n",
              e.used_hyper ? "HYPER-JOIN" : "SHUFFLE JOIN");
  std::printf("  actual reads: R=%lld S=%lld, %.1f sim-s\n\n",
              static_cast<long long>(e.r_blocks_read),
              static_cast<long long>(e.s_blocks_read), r.seconds);
}

}  // namespace

int main(int argc, char** argv) {
  tpch::TpchConfig cfg;
  cfg.num_orders = 10000;
  const tpch::TpchData data = tpch::GenerateTpch(cfg);

  DatabaseOptions opts;
  opts.adapt.smooth.total_levels = 6;
  // A realistic per-worker buffer: far below the table's block count.
  opts.planner.memory_budget_blocks = 8;
  Database db(opts);
  ADB_CHECK_OK(LoadTpch(&db, data, 6, 5, 4));

  Query join;
  join.name = "lo";
  join.tables = {{"lineitem", {}}, {"orders", {}}};
  join.joins = {{"lineitem", tpch::kLOrderKey, "orders", tpch::kOOrderKey}};

  auto before = db.RunQuery(join);
  ADB_CHECK_OK(before.status());
  Explain("[before adaptation] workload-oblivious trees:", before.ValueOrDie());

  for (int i = 0; i < 11; ++i) ADB_CHECK_OK(db.RunQuery(join).status());

  auto after = db.RunQuery(join);
  ADB_CHECK_OK(after.status());
  Explain("[after adaptation] two-phase trees on the order key:",
          after.ValueOrDie());

  std::printf("result invariant: %lld rows before == %lld rows after\n",
              static_cast<long long>(before.ValueOrDie().output_rows),
              static_cast<long long>(after.ValueOrDie().output_rows));
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats") == 0) {
      std::printf("\n%s\n", db.Stats().ToString().c_str());
    }
  }
  return 0;
}
