// Workload shift: the scenario of paper §5.3 — a TPC-H mix moving from
// q12 (lineitem ⋈ orders on the order key) to q14 (lineitem ⋈ part on the
// part key). Smooth repartitioning migrates lineitem blocks between the
// two join trees, tracking the query mix, while queries keep answering
// correctly and per-query latency stays bounded.
//
//   ./build/examples/workload_shift

#include <cstdio>
#include <cstring>

#include "core/database.h"
#include "workload/drivers.h"
#include "workload/tpch.h"
#include "workload/tpch_queries.h"

using namespace adaptdb;

int main(int argc, char** argv) {
  tpch::TpchConfig cfg;
  cfg.num_orders = 6000;
  const tpch::TpchData data = tpch::GenerateTpch(cfg);

  DatabaseOptions opts;
  opts.adapt.smooth.total_levels = 6;
  Database db(opts);
  ADB_CHECK_OK(LoadTpch(&db, data, 6, 5, 4));

  Rng rng(7);
  std::printf("%-5s %-5s %-10s %10s %14s %16s\n", "query", "tmpl", "join",
              "sim-s", "repartitioned", "lineitem trees");
  for (int i = 0; i < 40; ++i) {
    // Probability of q14 ramps from 0 to 1 over the 40 queries.
    const bool use_q14 = rng.Flip(static_cast<double>(i) / 40.0);
    auto q = tpch::MakeQuery(use_q14 ? "q14" : "q12", &rng);
    ADB_CHECK_OK(q.status());
    auto run = db.RunQuery(q.ValueOrDie());
    ADB_CHECK_OK(run.status());
    const auto& r = run.ValueOrDie();
    Table* li = db.GetTable("lineitem").ValueOrDie();
    std::string trees;
    for (AttrId a : li->trees()->Attrs()) {
      if (!trees.empty()) trees += ",";
      if (a == kUpfrontTree) {
        trees += "upfront";
      } else if (a == tpch::kLOrderKey) {
        trees += "orderkey";
      } else if (a == tpch::kLPartKey) {
        trees += "partkey";
      } else {
        trees += "a" + std::to_string(a);
      }
    }
    std::printf("%-5d %-5s %-10s %10.1f %14lld %16s\n", i,
                q.ValueOrDie().name.c_str(),
                r.edges.empty() ? "-"
                                : (r.edges[0].used_hyper ? "hyper" : "shuffle"),
                r.seconds, static_cast<long long>(r.records_repartitioned),
                trees.c_str());
  }

  // Final distribution of lineitem data across its trees.
  Table* li = db.GetTable("lineitem").ValueOrDie();
  std::printf("\nfinal lineitem data distribution:\n");
  for (AttrId a : li->trees()->Attrs()) {
    const std::string label =
        a == kUpfrontTree ? "upfront" : "attr " + std::to_string(a);
    std::printf("  tree %s: %lld records\n", label.c_str(),
                static_cast<long long>(
                    li->trees()->RecordsUnder(a, *li->store())));
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats") == 0) {
      std::printf("\n%s\n", db.Stats().ToString().c_str());
    }
  }
  return 0;
}
