// Tests for exec/: scans, the hash-join kernel, shuffle join, hyper-join
// and the repartitioning iterator — including algorithm-equivalence checks
// against a nested-loop oracle.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/hyper_join.h"
#include "exec/repartition.h"
#include "exec/scan.h"
#include "exec/shuffle_join.h"
#include "join/grouping.h"
#include "testing_util.h"

namespace adaptdb {
namespace {

// A small two-table fixture: R(key, val), S(key, val) with controlled keys.
struct JoinFixture {
  MemBlockStore r_store{2};
  MemBlockStore s_store{2};
  std::vector<BlockId> r_blocks, s_blocks;
  ClusterSim cluster;

  // R: 4 blocks of 25 records, key ranges [0,99],[100,199],...
  // S: 4 blocks of 10 records, key ranges offset by 50.
  explicit JoinFixture(uint64_t seed = 1) {
    Rng rng(seed);
    for (int b = 0; b < 4; ++b) {
      const BlockId id = r_store.CreateBlock();
      MutableBlockRef blk = r_store.GetMutable(id).ValueOrDie();
      for (int i = 0; i < 25; ++i) {
        blk->Add({Value(b * 100 + rng.UniformRange(0, 99)),
                  Value(rng.UniformRange(0, 999))});
      }
      r_blocks.push_back(id);
      cluster.PlaceBlock(id);
    }
    for (int b = 0; b < 4; ++b) {
      const BlockId id = s_store.CreateBlock();
      MutableBlockRef blk = s_store.GetMutable(id).ValueOrDie();
      for (int i = 0; i < 10; ++i) {
        blk->Add({Value(b * 100 + 50 + rng.UniformRange(0, 99)),
                  Value(rng.UniformRange(0, 999))});
      }
      s_blocks.push_back(id);
      cluster.PlaceBlock(id);
    }
  }

  // Nested-loop oracle over all records.
  JoinCounts Oracle(const PredicateSet& r_preds,
                    const PredicateSet& s_preds) const {
    JoinCounts counts;
    for (BlockId rb : r_blocks) {
      const BlockRef r = r_store.Get(rb).ValueOrDie();
      for (const Record& rr : r->MaterializeRecords()) {
        if (!MatchesAll(r_preds, rr)) continue;
        for (BlockId sb : s_blocks) {
          const BlockRef s = s_store.Get(sb).ValueOrDie();
          for (const Record& sr : s->MaterializeRecords()) {
            if (!MatchesAll(s_preds, sr)) continue;
            if (rr[0] == sr[0]) {
              ++counts.output_rows;
              counts.checksum += static_cast<uint64_t>(HashValue(rr[0])) | 1;
            }
          }
        }
      }
    }
    return counts;
  }
};

TEST(HashIndexTest, BuildAndProbeCounts) {
  Block build(0, 2), probe(1, 2);
  build.Add({Value(1), Value(10)});
  build.Add({Value(1), Value(11)});
  build.Add({Value(2), Value(12)});
  probe.Add({Value(1), Value(20)});
  probe.Add({Value(3), Value(21)});
  HashIndex index(0);
  index.AddBlock(build, {});
  EXPECT_EQ(index.BuildRows(), 3);
  JoinCounts counts;
  index.Probe(probe, 0, {}, &counts);
  EXPECT_EQ(counts.output_rows, 2);  // key 1 matches two build rows.
}

TEST(HashIndexTest, PredicatesFilterBothSides) {
  Block build(0, 2), probe(1, 2);
  build.Add({Value(1), Value(10)});
  build.Add({Value(1), Value(99)});
  probe.Add({Value(1), Value(20)});
  HashIndex index(0);
  index.AddBlock(build, {Predicate(1, CompareOp::kLt, 50)});
  EXPECT_EQ(index.BuildRows(), 1);
  JoinCounts counts;
  index.Probe(probe, 0, {Predicate(1, CompareOp::kGt, 50)}, &counts);
  EXPECT_EQ(counts.output_rows, 0);
}

TEST(HashIndexTest, MaterializesConcatenatedRecords) {
  Block build(0, 2), probe(1, 2);
  build.Add({Value(7), Value(10)});
  probe.Add({Value(7), Value(20)});
  HashIndex index(0);
  index.AddBlock(build, {});
  JoinCounts counts;
  std::vector<Record> out;
  index.Probe(probe, 0, {}, &counts, &out);
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0].size(), 4u);
  EXPECT_EQ(out[0][1], Value(10));  // Build columns first.
  EXPECT_EQ(out[0][3], Value(20));  // Probe columns after.
}

TEST(HashIndexTest, ClearEmptiesIndex) {
  Block build(0, 1);
  build.Add({Value(5)});
  HashIndex index(0);
  index.AddBlock(build, {});
  index.Clear();
  EXPECT_EQ(index.BuildRows(), 0);
  JoinCounts counts;
  index.Probe(build, 0, {}, &counts);
  EXPECT_EQ(counts.output_rows, 0);
}

TEST(ScanTest, CountsAndSkipsBlocks) {
  JoinFixture f;
  // Predicate selecting only keys < 100: only the first R block can match.
  PredicateSet preds = {Predicate(0, CompareOp::kLt, 100)};
  auto scan = ScanBlocks(f.r_store, f.r_blocks, preds, f.cluster);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan.ValueOrDie().blocks_read, 1);
  EXPECT_EQ(scan.ValueOrDie().blocks_skipped, 3);
  EXPECT_EQ(scan.ValueOrDie().rows_matched, 25);
  // Locality-scheduled scans read locally.
  EXPECT_EQ(scan.ValueOrDie().io.remote_block_reads, 0);
}

TEST(ScanTest, NoSkippingWhenDisabled) {
  JoinFixture f;
  PredicateSet preds = {Predicate(0, CompareOp::kLt, 100)};
  auto scan = ScanBlocks(f.r_store, f.r_blocks, preds, f.cluster, false);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan.ValueOrDie().blocks_read, 4);
  EXPECT_EQ(scan.ValueOrDie().rows_matched, 25);
}

TEST(ScanTest, UniformStoreScanMatchesRecordOracle) {
  // Uniform data gives every block the full [0, 999] range, so skipping
  // cannot help: the scan must read everything and still count exactly.
  auto fx = testing::MakeUniformBlockStore(6, 2, 31);
  const PredicateSet preds = {Predicate(1, CompareOp::kGe, 500)};
  int64_t expected = 0;
  for (BlockId id : fx.blocks) {
    for (const Record& rec : fx.store.Get(id).ValueOrDie()->MaterializeRecords()) {
      if (MatchesAll(preds, rec)) ++expected;
    }
  }
  auto scan = ScanBlocks(fx.store, fx.blocks, preds, fx.cluster);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan.ValueOrDie().rows_matched, expected);
  EXPECT_EQ(scan.ValueOrDie().blocks_read, 6);
  EXPECT_EQ(scan.ValueOrDie().blocks_skipped, 0);
}

TEST(ScanTest, MissingBlockIsError) {
  JoinFixture f;
  EXPECT_FALSE(ScanBlocks(f.r_store, {999}, {}, f.cluster).ok());
}

TEST(ShuffleJoinTest, MatchesOracle) {
  JoinFixture f;
  auto run = ShuffleJoin(f.r_store, f.r_blocks, 0, {}, f.s_store, f.s_blocks,
                         0, {}, f.cluster);
  ASSERT_TRUE(run.ok());
  const JoinCounts oracle = f.Oracle({}, {});
  EXPECT_EQ(run.ValueOrDie().counts.output_rows, oracle.output_rows);
  EXPECT_EQ(run.ValueOrDie().counts.checksum, oracle.checksum);
}

TEST(ShuffleJoinTest, AccountsShuffleIo) {
  JoinFixture f;
  auto run = ShuffleJoin(f.r_store, f.r_blocks, 0, {}, f.s_store, f.s_blocks,
                         0, {}, f.cluster);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.ValueOrDie().r_blocks_read, 4);
  EXPECT_EQ(run.ValueOrDie().s_blocks_read, 4);
  EXPECT_EQ(run.ValueOrDie().io.shuffled_blocks, 8);
}

TEST(ShuffleJoinTest, PredicatesApplyMapSide) {
  JoinFixture f;
  PredicateSet r_preds = {Predicate(0, CompareOp::kLt, 100)};
  auto run = ShuffleJoin(f.r_store, f.r_blocks, 0, r_preds, f.s_store,
                         f.s_blocks, 0, {}, f.cluster);
  ASSERT_TRUE(run.ok());
  const JoinCounts oracle = f.Oracle(r_preds, {});
  EXPECT_EQ(run.ValueOrDie().counts.output_rows, oracle.output_rows);
}

TEST(HyperJoinTest, MatchesOracleAndShuffle) {
  JoinFixture f;
  auto overlap =
      ComputeOverlap(f.r_store, f.r_blocks, 0, f.s_store, f.s_blocks, 0);
  ASSERT_TRUE(overlap.ok());
  for (int32_t budget : {1, 2, 4}) {
    auto grouping = BottomUpGrouping(overlap.ValueOrDie(), budget);
    ASSERT_TRUE(grouping.ok());
    auto run = HyperJoin(f.r_store, 0, {}, f.s_store, 0, {},
                         overlap.ValueOrDie(), grouping.ValueOrDie(),
                         f.cluster);
    ASSERT_TRUE(run.ok());
    const JoinCounts oracle = f.Oracle({}, {});
    EXPECT_EQ(run.ValueOrDie().counts.output_rows, oracle.output_rows)
        << "budget " << budget;
    EXPECT_EQ(run.ValueOrDie().counts.checksum, oracle.checksum);
  }
}

TEST(HyperJoinTest, ReadsMatchGroupingCost) {
  JoinFixture f;
  auto overlap =
      ComputeOverlap(f.r_store, f.r_blocks, 0, f.s_store, f.s_blocks, 0);
  ASSERT_TRUE(overlap.ok());
  auto grouping = BottomUpGrouping(overlap.ValueOrDie(), 2);
  ASSERT_TRUE(grouping.ok());
  auto run = HyperJoin(f.r_store, 0, {}, f.s_store, 0, {},
                       overlap.ValueOrDie(), grouping.ValueOrDie(), f.cluster);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.ValueOrDie().r_blocks_read, 4);
  EXPECT_EQ(run.ValueOrDie().s_blocks_read,
            GroupingCost(overlap.ValueOrDie(), grouping.ValueOrDie()));
  // Hyper-join never shuffles.
  EXPECT_EQ(run.ValueOrDie().io.shuffled_blocks, 0);
}

TEST(HyperJoinTest, MaterializationMatchesShuffleMaterialization) {
  JoinFixture f;
  auto overlap =
      ComputeOverlap(f.r_store, f.r_blocks, 0, f.s_store, f.s_blocks, 0);
  ASSERT_TRUE(overlap.ok());
  auto grouping = BottomUpGrouping(overlap.ValueOrDie(), 2);
  std::vector<Record> hyper_out, shuffle_out;
  ASSERT_TRUE(HyperJoin(f.r_store, 0, {}, f.s_store, 0, {},
                        overlap.ValueOrDie(), grouping.ValueOrDie(), f.cluster,
                        &hyper_out)
                  .ok());
  ASSERT_TRUE(ShuffleJoin(f.r_store, f.r_blocks, 0, {}, f.s_store, f.s_blocks,
                          0, {}, f.cluster, &shuffle_out)
                  .ok());
  EXPECT_EQ(hyper_out.size(), shuffle_out.size());
}

TEST(RepartitionTest, ClearDispositionKeepsEmptySources) {
  JoinFixture f;
  // Destination: a 2-leaf tree on the key.
  const BlockId left = f.r_store.CreateBlock();
  const BlockId right = f.r_store.CreateBlock();
  PartitionTree dest(PartitionTree::MakeInner(0, Value(199),
                                              PartitionTree::MakeLeaf(left),
                                              PartitionTree::MakeLeaf(right)));
  const size_t before = f.r_store.TotalRecords();
  auto moved = RepartitionBlocks(&f.r_store, f.r_blocks, dest, &f.cluster);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved.ValueOrDie().records_moved, static_cast<int64_t>(before));
  EXPECT_EQ(moved.ValueOrDie().sources_drained, 4);
  EXPECT_EQ(f.r_store.TotalRecords(), before);
  // HDFS-append semantics: drained sources remain as empty files and may
  // be re-filled by a later migration into their own tree.
  for (BlockId b : f.r_blocks) {
    ASSERT_TRUE(f.r_store.Contains(b));
    EXPECT_TRUE(f.r_store.Get(b).ValueOrDie()->empty());
  }
  // Routing respected: left block keys <= 199.
  const BlockRef lb = f.r_store.Get(left).ValueOrDie();
  EXPECT_TRUE(lb->range(0).hi <= Value(199));
}

TEST(RepartitionTest, DeleteDispositionRemovesSources) {
  JoinFixture f;
  const BlockId leaf = f.r_store.CreateBlock();
  PartitionTree dest(PartitionTree::MakeLeaf(leaf));
  auto moved = RepartitionBlocks(&f.r_store, f.r_blocks, dest, &f.cluster,
                                 SourceDisposition::kDelete);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved.ValueOrDie().sources_drained, 4);
  for (BlockId b : f.r_blocks) EXPECT_FALSE(f.r_store.Contains(b));
}

TEST(RepartitionTest, RejectsDuplicateSourcesAndMissingDestLeaf) {
  JoinFixture f;
  const BlockId leaf = f.r_store.CreateBlock();
  PartitionTree dest(PartitionTree::MakeLeaf(leaf));
  EXPECT_FALSE(RepartitionBlocks(&f.r_store, {f.r_blocks[0], f.r_blocks[0]},
                                 dest, &f.cluster)
                   .ok());
  PartitionTree dead_dest(PartitionTree::MakeLeaf(12345));
  EXPECT_FALSE(
      RepartitionBlocks(&f.r_store, {f.r_blocks[0]}, dead_dest, &f.cluster)
          .ok());
}

TEST(RepartitionTest, AccountsReadAndWriteIo) {
  JoinFixture f;
  const BlockId leaf = f.r_store.CreateBlock();
  PartitionTree dest(PartitionTree::MakeLeaf(leaf));
  auto moved = RepartitionBlocks(&f.r_store, {f.r_blocks[0], f.r_blocks[1]},
                                 dest, &f.cluster);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved.ValueOrDie().io.TotalReads(), 2);
  EXPECT_EQ(moved.ValueOrDie().io.block_writes, 2);
}

TEST(RepartitionTest, RejectsSourceInsideDestination) {
  JoinFixture f;
  PartitionTree dest(PartitionTree::MakeLeaf(f.r_blocks[0]));
  auto moved =
      RepartitionBlocks(&f.r_store, {f.r_blocks[0]}, dest, &f.cluster);
  EXPECT_FALSE(moved.ok());
  // And nothing was deleted.
  EXPECT_TRUE(f.r_store.Contains(f.r_blocks[0]));
}

TEST(RepartitionTest, RejectsMissingSource) {
  JoinFixture f;
  const BlockId leaf = f.r_store.CreateBlock();
  PartitionTree dest(PartitionTree::MakeLeaf(leaf));
  EXPECT_FALSE(RepartitionBlocks(&f.r_store, {1234}, dest, &f.cluster).ok());
}

// Parameterized equivalence sweep: shuffle == hyper == oracle across seeds
// and predicate shapes.
class JoinEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinEquivalence, AllAlgorithmsAgree) {
  JoinFixture f(GetParam());
  Rng rng(GetParam() * 7 + 1);
  for (int trial = 0; trial < 5; ++trial) {
    PredicateSet r_preds, s_preds;
    if (rng.Flip(0.6)) {
      r_preds.emplace_back(1, CompareOp::kLt, Value(rng.UniformRange(0, 999)));
    }
    if (rng.Flip(0.6)) {
      s_preds.emplace_back(1, CompareOp::kGe, Value(rng.UniformRange(0, 999)));
    }
    const JoinCounts oracle = f.Oracle(r_preds, s_preds);
    auto shuffle = ShuffleJoin(f.r_store, f.r_blocks, 0, r_preds, f.s_store,
                               f.s_blocks, 0, s_preds, f.cluster);
    ASSERT_TRUE(shuffle.ok());
    EXPECT_EQ(shuffle.ValueOrDie().counts.output_rows, oracle.output_rows);
    EXPECT_EQ(shuffle.ValueOrDie().counts.checksum, oracle.checksum);

    auto overlap =
        ComputeOverlap(f.r_store, f.r_blocks, 0, f.s_store, f.s_blocks, 0);
    ASSERT_TRUE(overlap.ok());
    const int32_t budget = 1 + static_cast<int32_t>(rng.Uniform(4));
    auto grouping = BottomUpGrouping(overlap.ValueOrDie(), budget);
    ASSERT_TRUE(grouping.ok());
    auto hyper =
        HyperJoin(f.r_store, 0, r_preds, f.s_store, 0, s_preds,
                  overlap.ValueOrDie(), grouping.ValueOrDie(), f.cluster);
    ASSERT_TRUE(hyper.ok());
    EXPECT_EQ(hyper.ValueOrDie().counts.output_rows, oracle.output_rows);
    EXPECT_EQ(hyper.ValueOrDie().counts.checksum, oracle.checksum);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinEquivalence,
                         ::testing::Values(2, 3, 4, 5, 6, 7));

}  // namespace
}  // namespace adaptdb
