// Tests for join/: overlap matrices, grouping heuristics, cost model.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "join/cost_model.h"
#include "join/grouping.h"
#include "join/overlap.h"

namespace adaptdb {
namespace {

// Builds the paper's Fig. 4 instance: R blocks with join ranges
// [0,99],[100,199],[200,299],[300,399]; S blocks [0,149],[150,249],
// [250,349],[350,399]. Expected V = {1000, 1100, 0110, 0011}.
struct Fig4 {
  MemBlockStore r_store{1};
  MemBlockStore s_store{1};
  std::vector<BlockId> r_blocks, s_blocks;

  Fig4() {
    const int64_t r_ranges[4][2] = {{0, 99}, {100, 199}, {200, 299},
                                    {300, 399}};
    const int64_t s_ranges[4][2] = {{0, 149}, {150, 249}, {250, 349},
                                    {350, 399}};
    for (auto& rr : r_ranges) {
      const BlockId b = r_store.CreateBlock();
      MutableBlockRef blk = r_store.GetMutable(b).ValueOrDie();
      blk->Add({Value(rr[0])});
      blk->Add({Value(rr[1])});
      r_blocks.push_back(b);
    }
    for (auto& sr : s_ranges) {
      const BlockId b = s_store.CreateBlock();
      MutableBlockRef blk = s_store.GetMutable(b).ValueOrDie();
      blk->Add({Value(sr[0])});
      blk->Add({Value(sr[1])});
      s_blocks.push_back(b);
    }
  }

  OverlapMatrix Overlap() {
    return ComputeOverlap(r_store, r_blocks, 0, s_store, s_blocks, 0)
        .ValueOrDie();
  }
};

TEST(OverlapTest, MatchesPaperFig4) {
  Fig4 fig;
  OverlapMatrix m = fig.Overlap();
  ASSERT_EQ(m.NumR(), 4u);
  ASSERT_EQ(m.NumS(), 4u);
  EXPECT_EQ(m.vectors[0].ToString(), "1000");
  EXPECT_EQ(m.vectors[1].ToString(), "1100");
  EXPECT_EQ(m.vectors[2].ToString(), "0110");
  EXPECT_EQ(m.vectors[3].ToString(), "0011");
  EXPECT_EQ(m.TotalOverlaps(), 7u);
}

TEST(OverlapTest, EmptyBlocksOverlapNothing) {
  MemBlockStore r(1), s(1);
  const BlockId re = r.CreateBlock();  // Left empty.
  const BlockId sb = s.CreateBlock();
  s.GetMutable(sb).ValueOrDie()->Add({Value(5)});
  auto m = ComputeOverlap(r, {re}, 0, s, {sb}, 0);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.ValueOrDie().vectors[0].Count(), 0u);
}

TEST(OverlapTest, MissingBlockIsError) {
  MemBlockStore r(1), s(1);
  EXPECT_FALSE(ComputeOverlap(r, {42}, 0, s, {}, 0).ok());
}

TEST(OverlapTest, AgreesWithRecordLevelOracleOnRandomData) {
  Rng rng(17);
  MemBlockStore r(1), s(1);
  std::vector<BlockId> r_blocks, s_blocks;
  for (int i = 0; i < 12; ++i) {
    const BlockId b = r.CreateBlock();
    MutableBlockRef blk = r.GetMutable(b).ValueOrDie();
    const int64_t base = rng.UniformRange(0, 900);
    for (int j = 0; j < 20; ++j) {
      blk->Add({Value(base + rng.UniformRange(0, 99))});
    }
    r_blocks.push_back(b);
  }
  for (int i = 0; i < 10; ++i) {
    const BlockId b = s.CreateBlock();
    MutableBlockRef blk = s.GetMutable(b).ValueOrDie();
    const int64_t base = rng.UniformRange(0, 900);
    for (int j = 0; j < 20; ++j) {
      blk->Add({Value(base + rng.UniformRange(0, 99))});
    }
    s_blocks.push_back(b);
  }
  OverlapMatrix m =
      ComputeOverlap(r, r_blocks, 0, s, s_blocks, 0).ValueOrDie();
  // The range-based bit must be set whenever the record-level oracle finds
  // a candidate (ranges are conservative).
  for (size_t i = 0; i < r_blocks.size(); ++i) {
    for (size_t j = 0; j < s_blocks.size(); ++j) {
      const bool oracle =
          OverlapByRecords(r, r_blocks[i], 0, s, s_blocks[j], 0).ValueOrDie();
      if (oracle) {
        EXPECT_TRUE(m.vectors[i].Get(j));
      }
    }
  }
}

TEST(GroupingCostTest, PaperExample1) {
  // Example 1: A1~{B1,B2}, A2~{B1,B2,B3}, A3~{B2,B3}; B = 2.
  OverlapMatrix m;
  m.r_blocks = {0, 1, 2};
  m.s_blocks = {0, 1, 2};
  m.vectors.assign(3, BitVector(3));
  m.vectors[0].Set(0);
  m.vectors[0].Set(1);
  m.vectors[1].Set(0);
  m.vectors[1].Set(1);
  m.vectors[1].Set(2);
  m.vectors[2].Set(1);
  m.vectors[2].Set(2);
  // {A1,A3},{A2}: reads 3 + 3 = 6.
  Grouping bad{{{0, 2}, {1}}};
  EXPECT_EQ(GroupingCost(m, bad), 6);
  // {A1,A2},{A3}: reads 3 + 2 = 5 (the paper's better choice).
  Grouping good{{{0, 1}, {2}}};
  EXPECT_EQ(GroupingCost(m, good), 5);
}

TEST(GroupingCostTest, Fig4OptimalIsFive) {
  Fig4 fig;
  OverlapMatrix m = fig.Overlap();
  Grouping p{{{0, 1}, {2, 3}}};
  EXPECT_EQ(GroupingCost(m, p), 5);  // The paper's C(P) = 5.
}

TEST(ValidateGroupingTest, AcceptsWellFormed) {
  Fig4 fig;
  OverlapMatrix m = fig.Overlap();
  Grouping p{{{0, 1}, {2, 3}}};
  EXPECT_TRUE(ValidateGrouping(m, p, 2).ok());
}

TEST(ValidateGroupingTest, RejectsViolations) {
  Fig4 fig;
  OverlapMatrix m = fig.Overlap();
  EXPECT_FALSE(ValidateGrouping(m, Grouping{{{0, 1, 2}, {3}}}, 2).ok());
  EXPECT_FALSE(ValidateGrouping(m, Grouping{{{0, 1}, {2}}}, 2).ok());
  EXPECT_FALSE(ValidateGrouping(m, Grouping{{{0, 1}, {1, 2}, {3}}}, 2).ok());
  EXPECT_FALSE(ValidateGrouping(m, Grouping{{{0, 9}, {1, 2}}}, 2).ok());
  // Too many groups for the c = ceil(n/B) constraint is allowed up to n but
  // fewer than c is impossible; 4 singleton groups is valid packing-wise.
  EXPECT_TRUE(ValidateGrouping(m, Grouping{{{0}, {1}, {2}, {3}}}, 2).ok());
}

TEST(BottomUpGroupingTest, FindsFig4Optimal) {
  Fig4 fig;
  OverlapMatrix m = fig.Overlap();
  auto g = BottomUpGrouping(m, 2);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(ValidateGrouping(m, g.ValueOrDie(), 2).ok());
  EXPECT_EQ(GroupingCost(m, g.ValueOrDie()), 5);
}

TEST(BottomUpGroupingTest, BudgetOneIsSingletons) {
  Fig4 fig;
  OverlapMatrix m = fig.Overlap();
  auto g = BottomUpGrouping(m, 1);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.ValueOrDie().NumGroups(), 4u);
  EXPECT_EQ(GroupingCost(m, g.ValueOrDie()),
            static_cast<int64_t>(m.TotalOverlaps()));
}

TEST(BottomUpGroupingTest, LargeBudgetIsOneGroup) {
  Fig4 fig;
  OverlapMatrix m = fig.Overlap();
  auto g = BottomUpGrouping(m, 16);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.ValueOrDie().NumGroups(), 1u);
  EXPECT_EQ(GroupingCost(m, g.ValueOrDie()), 4);  // Each S block once.
}

TEST(BottomUpGroupingTest, RejectsNonPositiveBudget) {
  Fig4 fig;
  OverlapMatrix m = fig.Overlap();
  EXPECT_FALSE(BottomUpGrouping(m, 0).ok());
}

TEST(GreedyGroupingTest, ValidAndNoWorseThanSequentialOnIntervals) {
  Fig4 fig;
  OverlapMatrix m = fig.Overlap();
  auto greedy = GreedyGrouping(m, 2);
  auto seq = SequentialGrouping(m, 2);
  ASSERT_TRUE(greedy.ok());
  ASSERT_TRUE(seq.ok());
  EXPECT_TRUE(ValidateGrouping(m, greedy.ValueOrDie(), 2).ok());
  EXPECT_LE(GroupingCost(m, greedy.ValueOrDie()),
            GroupingCost(m, seq.ValueOrDie()));
}

TEST(GroupingTest, EmptyRelation) {
  OverlapMatrix m;
  auto g = BottomUpGrouping(m, 4);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.ValueOrDie().NumGroups(), 0u);
  EXPECT_EQ(GroupingCost(m, g.ValueOrDie()), 0);
}

// Property over random instances: all heuristics produce valid groupings,
// and bottom-up is never worse than 2x sequential on interval-structured
// vectors (the regime AdaptDB's trees produce).
class GroupingProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GroupingProperty, HeuristicsValidOnRandomMatrices) {
  Rng rng(GetParam());
  const size_t n = 2 + rng.Uniform(30);
  const size_t s = 2 + rng.Uniform(30);
  OverlapMatrix m;
  for (size_t i = 0; i < n; ++i) m.r_blocks.push_back(static_cast<BlockId>(i));
  for (size_t j = 0; j < s; ++j) m.s_blocks.push_back(static_cast<BlockId>(j));
  m.vectors.assign(n, BitVector(s));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < s; ++j) {
      if (rng.Flip(0.25)) m.vectors[i].Set(j);
    }
  }
  for (int32_t budget : {1, 2, 3, 7}) {
    auto bu = BottomUpGrouping(m, budget);
    auto gr = GreedyGrouping(m, budget);
    auto sq = SequentialGrouping(m, budget);
    ASSERT_TRUE(bu.ok());
    ASSERT_TRUE(gr.ok());
    ASSERT_TRUE(sq.ok());
    EXPECT_TRUE(ValidateGrouping(m, bu.ValueOrDie(), budget).ok());
    EXPECT_TRUE(ValidateGrouping(m, gr.ValueOrDie(), budget).ok());
    EXPECT_TRUE(ValidateGrouping(m, sq.ValueOrDie(), budget).ok());
    // Any grouping cost is at least the number of distinct S blocks needed
    // and at most the total overlap count.
    BitVector any(s);
    for (const auto& v : m.vectors) any.OrWith(v);
    EXPECT_GE(GroupingCost(m, bu.ValueOrDie()),
              static_cast<int64_t>(any.Count()));
    EXPECT_LE(GroupingCost(m, bu.ValueOrDie()),
              static_cast<int64_t>(m.TotalOverlaps()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupingProperty,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18, 19,
                                           20));

TEST(CostModelTest, ShuffleJoinLinearInBlocks) {
  CostModelConfig cfg;
  EXPECT_DOUBLE_EQ(ShuffleJoinCost(10, 20, cfg), 90.0);  // 3 * 30.
  cfg.c_sj = 2.0;
  EXPECT_DOUBLE_EQ(ShuffleJoinCost(10, 20, cfg), 60.0);
}

TEST(CostModelTest, HyperJoinCostFormula) {
  EXPECT_DOUBLE_EQ(HyperJoinCost(10, 25), 35.0);
}

TEST(CostModelTest, CHyJIsOneWhenCoPartitioned) {
  // Diagonal overlap: each R block overlaps exactly its twin S block.
  OverlapMatrix m;
  m.r_blocks = {0, 1, 2, 3};
  m.s_blocks = {0, 1, 2, 3};
  m.vectors.assign(4, BitVector(4));
  for (size_t i = 0; i < 4; ++i) m.vectors[i].Set(i);
  auto g = BottomUpGrouping(m, 2).ValueOrDie();
  EXPECT_DOUBLE_EQ(EstimateCHyJ(m, g), 1.0);
}

TEST(CostModelTest, CHyJGrowsWithOverlapDensity) {
  OverlapMatrix m;
  m.r_blocks = {0, 1, 2, 3};
  m.s_blocks = {0, 1, 2, 3};
  m.vectors.assign(4, BitVector(4));
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) m.vectors[i].Set(j);  // All overlap all.
  }
  auto g = BottomUpGrouping(m, 2).ValueOrDie();
  EXPECT_DOUBLE_EQ(EstimateCHyJ(m, g), 2.0);  // 2 groups x 4 reads / 4.
}

TEST(CostModelTest, ChooseJoinPrefersHyperWhenCoPartitioned) {
  OverlapMatrix m;
  m.r_blocks = {0, 1, 2, 3};
  m.s_blocks = {0, 1, 2, 3};
  m.vectors.assign(4, BitVector(4));
  for (size_t i = 0; i < 4; ++i) m.vectors[i].Set(i);
  JoinChoice c = ChooseJoin(m, 2);
  EXPECT_TRUE(c.use_hyper_join);
  EXPECT_DOUBLE_EQ(c.cost_shuffle, 24.0);
  EXPECT_DOUBLE_EQ(c.cost_hyper, 8.0);
}

TEST(CostModelTest, ChooseJoinFallsBackToShuffleWhenDense) {
  // Every R block overlaps every S block and the budget forces many groups:
  // hyper-join would read S many times.
  const size_t n = 12;
  OverlapMatrix m;
  m.vectors.assign(n, BitVector(n));
  for (size_t i = 0; i < n; ++i) {
    m.r_blocks.push_back(static_cast<BlockId>(i));
    m.s_blocks.push_back(static_cast<BlockId>(i));
    for (size_t j = 0; j < n; ++j) m.vectors[i].Set(j);
  }
  JoinChoice c = ChooseJoin(m, 2);  // 6 groups x 12 reads = 72 > 3*24.
  EXPECT_FALSE(c.use_hyper_join);
}

}  // namespace
}  // namespace adaptdb
