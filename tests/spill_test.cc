// Tests for the out-of-core execution subsystem: the AsyncIo backends, the
// SpillFile chunk format (including corruption fault injection), the
// spilling shuffle join's bitwise parity with the in-memory executor across
// thread counts and storage backends, the hyper join's grace-hash fallback,
// bounded buffer residency on a dataset several times the pool budget, and
// adaptive (byte-target) morsel sizing.

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "exec/hyper_join.h"
#include "exec/scan.h"
#include "exec/shuffle_join.h"
#include "exec/spill.h"
#include "io/async_io.h"
#include "io/disk_block_store.h"
#include "join/grouping.h"
#include "join/overlap.h"
#include "parallel/parallel_scan.h"
#include "testing_util.h"

namespace adaptdb {
namespace {

using adaptdb::testing::MakeUniformBlockStore;
using adaptdb::testing::StoreFixture;

void ExpectSameLogicalIo(const IoStats& a, const IoStats& b) {
  EXPECT_EQ(a.local_block_reads, b.local_block_reads);
  EXPECT_EQ(a.remote_block_reads, b.remote_block_reads);
  EXPECT_EQ(a.block_writes, b.block_writes);
  EXPECT_EQ(a.shuffled_blocks, b.shuffled_blocks);
}

/// Spill accounting is logical too: chunk boundaries derive from the fixed
/// morsel decomposition, so byte counts must match at any thread count.
void ExpectSameSpillIo(const IoStats& a, const IoStats& b) {
  EXPECT_EQ(a.spilled_partitions, b.spilled_partitions);
  EXPECT_EQ(a.spill_bytes_written, b.spill_bytes_written);
  EXPECT_EQ(a.spill_bytes_read, b.spill_bytes_read);
}

/// An unlinked temp file pre-filled with `contents`; closes on destruction.
struct TempFd {
  explicit TempFd(const std::string& contents = "") {
    char tmpl[] = "/tmp/adaptdb-asyncio-test-XXXXXX";
    fd = ::mkstemp(tmpl);
    EXPECT_GE(fd, 0);
    ::unlink(tmpl);
    if (!contents.empty()) {
      EXPECT_EQ(::pwrite(fd, contents.data(), contents.size(), 0),
                static_cast<ssize_t>(contents.size()));
    }
  }
  ~TempFd() {
    if (fd >= 0) ::close(fd);
  }
  int fd = -1;
};

// ---------------------------------------------------------------------------
// AsyncIo backends

TEST(AsyncIoTest, ThreadPoolReadWriteRoundTrip) {
  TempFd file;
  auto async = io::MakeThreadPoolAsyncIo(2);
  ASSERT_NE(async, nullptr);

  std::string payload = "spilled-bytes-0123456789";
  std::atomic<int32_t> completions{0};
  {
    io::AsyncIo::Op write;
    write.kind = io::AsyncIo::Op::Kind::kWrite;
    write.fd = file.fd;
    write.offset = 7;
    write.buf = &payload;
    write.done = [&](Status st) {
      EXPECT_TRUE(st.ok()) << st.ToString();
      completions.fetch_add(1);
    };
    std::vector<io::AsyncIo::Op> ops;
    ops.push_back(std::move(write));
    async->Submit(std::move(ops));
  }
  async->Drain();
  ASSERT_EQ(completions.load(), 1);

  std::string read_back;
  read_back.resize(payload.size());
  {
    io::AsyncIo::Op read;
    read.kind = io::AsyncIo::Op::Kind::kRead;
    read.fd = file.fd;
    read.offset = 7;
    read.buf = &read_back;
    read.done = [&](Status st) {
      EXPECT_TRUE(st.ok()) << st.ToString();
      completions.fetch_add(1);
    };
    std::vector<io::AsyncIo::Op> ops;
    ops.push_back(std::move(read));
    async->Submit(std::move(ops));
  }
  async->Drain();
  EXPECT_EQ(completions.load(), 2);
  EXPECT_EQ(read_back, payload);

  const io::AsyncIoStats stats = async->stats();
  EXPECT_EQ(stats.reads_submitted, 1);
  EXPECT_EQ(stats.reads_completed, 1);
  EXPECT_EQ(stats.writes_submitted, 1);
  EXPECT_EQ(stats.writes_completed, 1);
  EXPECT_EQ(stats.read_bytes, static_cast<int64_t>(payload.size()));
  EXPECT_EQ(stats.write_bytes, static_cast<int64_t>(payload.size()));
  EXPECT_EQ(stats.failures, 0);
  EXPECT_GE(stats.inflight_peak, 1);
}

TEST(AsyncIoTest, ShortReadSurfacesCorruption) {
  TempFd file("tiny");
  auto async = io::MakeThreadPoolAsyncIo(1);
  std::string buf;
  buf.resize(64);  // Far past EOF.
  Status seen;
  io::AsyncIo::Op read;
  read.kind = io::AsyncIo::Op::Kind::kRead;
  read.fd = file.fd;
  read.offset = 0;
  read.buf = &buf;
  read.done = [&](Status st) { seen = std::move(st); };
  std::vector<io::AsyncIo::Op> ops;
  ops.push_back(std::move(read));
  async->Submit(std::move(ops));
  async->Drain();
  EXPECT_TRUE(seen.code() == StatusCode::kCorruption) << seen.ToString();
  EXPECT_EQ(async->stats().failures, 1);
}

TEST(AsyncIoTest, BadFdSurfacesInternal) {
  // A closed (but non-negative) fd: the pread itself fails with EBADF.
  int dead_fd;
  {
    TempFd file;
    dead_fd = file.fd;
  }
  auto async = io::MakeThreadPoolAsyncIo(1);
  std::string buf;
  buf.resize(8);
  Status seen;
  io::AsyncIo::Op read;
  read.kind = io::AsyncIo::Op::Kind::kRead;
  read.fd = dead_fd;
  read.buf = &buf;
  read.done = [&](Status st) { seen = std::move(st); };
  std::vector<io::AsyncIo::Op> ops;
  ops.push_back(std::move(read));
  async->Submit(std::move(ops));
  async->Drain();
  EXPECT_TRUE(seen.code() == StatusCode::kInternal) << seen.ToString();
}

TEST(AsyncIoTest, FactoryAlwaysReturnsABackend) {
  // "uring" must fall back to the thread pool when liburing is absent from
  // the build (the container default) instead of returning null.
  auto async = io::MakeAsyncIo(2, "uring");
  ASSERT_NE(async, nullptr);
  if (!io::IoUringAvailable()) {
    EXPECT_STREQ(async->name(), "threads");
    EXPECT_EQ(io::MakeIoUringAsyncIo(8), nullptr);
  }
}

// ---------------------------------------------------------------------------
// SpillFile

Block MakeBlock(BlockId id, int64_t rows, int64_t salt) {
  Block b(id, 3);
  for (int64_t i = 0; i < rows; ++i) {
    b.Add({Value(i), Value(salt * 1000 + i), Value(i % 7)});
  }
  return b;
}

TEST(SpillFileTest, RoundTripSyncAndAsync) {
  for (const bool use_async : {false, true}) {
    auto async = use_async ? io::MakeThreadPoolAsyncIo(2) : nullptr;
    auto file = exec::SpillFile::Create("", async.get());
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    exec::SpillFile& spill = *file.ValueOrDie();

    std::vector<exec::SpillChunk> chunks;
    for (int64_t c = 0; c < 5; ++c) {
      auto chunk = spill.AppendBlock(MakeBlock(c, 16 + c, c));
      ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
      chunks.push_back(chunk.ValueOrDie());
      EXPECT_EQ(chunks.back().rows, 16 + c);
    }
    ASSERT_TRUE(spill.Finish().ok());
    EXPECT_GT(spill.bytes_written(), 0);

    // Read back out of order: chunks are independently addressable.
    for (int64_t c = 4; c >= 0; --c) {
      auto blk = spill.ReadChunk(chunks[static_cast<size_t>(c)], 3);
      ASSERT_TRUE(blk.ok()) << blk.status().ToString();
      const Block& b = blk.ValueOrDie();
      ASSERT_EQ(static_cast<int64_t>(b.num_records()), 16 + c);
      EXPECT_EQ(b.ValueAt(3, 1), Value(c * 1000 + 3));
    }
  }
}

TEST(SpillFileTest, TruncatedChunkIsCorruption) {
  auto file = exec::SpillFile::Create("", nullptr);
  ASSERT_TRUE(file.ok());
  exec::SpillFile& spill = *file.ValueOrDie();
  const exec::SpillChunk chunk =
      spill.AppendBlock(MakeBlock(0, 64, 1)).ValueOrDie();
  ASSERT_TRUE(spill.Finish().ok());

  // Chop the file mid-chunk: the read must fail cleanly, not fabricate rows.
  ASSERT_EQ(::ftruncate(spill.fd_for_testing(),
                        static_cast<off_t>(chunk.length / 2)),
            0);
  auto blk = spill.ReadChunk(chunk, 3);
  ASSERT_FALSE(blk.ok());
  EXPECT_TRUE(blk.status().code() == StatusCode::kCorruption) << blk.status().ToString();
}

TEST(SpillFileTest, BitFlipIsCorruption) {
  auto file = exec::SpillFile::Create("", nullptr);
  ASSERT_TRUE(file.ok());
  exec::SpillFile& spill = *file.ValueOrDie();
  const exec::SpillChunk chunk =
      spill.AppendBlock(MakeBlock(0, 64, 2)).ValueOrDie();
  ASSERT_TRUE(spill.Finish().ok());

  // Flip one byte in the middle of the encoded payload.
  const int fd = spill.fd_for_testing();
  const off_t victim = static_cast<off_t>(chunk.offset + chunk.length / 2);
  char byte = 0;
  ASSERT_EQ(::pread(fd, &byte, 1, victim), 1);
  byte = static_cast<char>(byte ^ 0x40);
  ASSERT_EQ(::pwrite(fd, &byte, 1, victim), 1);

  auto blk = spill.ReadChunk(chunk, 3);
  ASSERT_FALSE(blk.ok());
  EXPECT_TRUE(blk.status().code() == StatusCode::kCorruption) << blk.status().ToString();
}

/// AsyncIo wrapper that fails every write (or corrupts every read) while
/// delegating real I/O to a thread-pool backend — the spill path's
/// equivalent of concurrent_test's FaultyStore.
class FaultyAsyncIo : public io::AsyncIo {
 public:
  enum class Mode { kFailWrites, kCorruptReads };
  explicit FaultyAsyncIo(Mode mode)
      : inner_(io::MakeThreadPoolAsyncIo(1)), mode_(mode) {}

  void Submit(std::vector<Op> ops) override {
    std::vector<Op> pass;
    for (Op& op : ops) {
      if (mode_ == Mode::kFailWrites && op.kind == Op::Kind::kWrite) {
        op.done(Status::Internal("injected spill-write fault"));
        continue;
      }
      if (mode_ == Mode::kCorruptReads && op.kind == Op::Kind::kRead) {
        std::string* buf = op.buf;
        auto done = std::move(op.done);
        op.done = [buf, done = std::move(done)](Status st) {
          if (st.ok() && !buf->empty()) {
            (*buf)[buf->size() / 2] =
                static_cast<char>((*buf)[buf->size() / 2] ^ 0x20);
          }
          done(std::move(st));
        };
      }
      pass.push_back(std::move(op));
    }
    if (!pass.empty()) inner_->Submit(std::move(pass));
  }
  void Drain() override { inner_->Drain(); }
  io::AsyncIoStats stats() const override { return inner_->stats(); }
  const char* name() const override { return "faulty"; }

 private:
  std::unique_ptr<io::AsyncIo> inner_;
  Mode mode_;
};

TEST(SpillFileTest, FailingAsyncWriteSurfacesInFinish) {
  FaultyAsyncIo faulty(FaultyAsyncIo::Mode::kFailWrites);
  auto file = exec::SpillFile::Create("", &faulty);
  ASSERT_TRUE(file.ok());
  exec::SpillFile& spill = *file.ValueOrDie();
  // The append itself may succeed (the write is in flight); the barrier
  // must surface the failure.
  (void)spill.AppendBlock(MakeBlock(0, 8, 3));
  const Status finish = spill.Finish();
  EXPECT_FALSE(finish.ok());
  EXPECT_TRUE(finish.code() == StatusCode::kInternal) << finish.ToString();
}

// ---------------------------------------------------------------------------
// Spilling shuffle join: fault injection through the executor

class SpillJoinTest : public ::testing::Test {
 protected:
  SpillJoinTest()
      : r_(MakeUniformBlockStore(12, 3, /*seed=*/11)),
        s_(MakeUniformBlockStore(12, 3, /*seed=*/22)) {}

  ExecConfig SpillingConfig(int32_t threads) const {
    ExecConfig config;
    config.num_threads = threads;
    config.spill.enabled = true;
    config.spill.chunk_rows = 16;  // Several chunks per morsel+partition.
    return config;
  }

  StoreFixture r_;
  StoreFixture s_;
};

TEST_F(SpillJoinTest, FailingAsyncIoFailsJoinCleanly) {
  FaultyAsyncIo faulty(FaultyAsyncIo::Mode::kFailWrites);
  ExecConfig config = SpillingConfig(2);
  config.spill.async_io = &faulty;
  std::vector<Record> rows;
  auto run = exec::SpillingShuffleJoin(r_.store, r_.blocks, 0, {}, s_.store,
                                       s_.blocks, 0, {}, r_.cluster, config,
                                       &rows);
  ASSERT_FALSE(run.ok());
  EXPECT_TRUE(run.status().code() == StatusCode::kInternal) << run.status().ToString();
}

TEST_F(SpillJoinTest, CorruptedSpillReadFailsJoinCleanly) {
  FaultyAsyncIo faulty(FaultyAsyncIo::Mode::kCorruptReads);
  ExecConfig config = SpillingConfig(1);
  config.spill.async_io = &faulty;
  auto run = exec::SpillingShuffleJoin(r_.store, r_.blocks, 0, {}, s_.store,
                                       s_.blocks, 0, {}, r_.cluster, config);
  ASSERT_FALSE(run.ok());
  EXPECT_TRUE(run.status().code() == StatusCode::kCorruption) << run.status().ToString();
}

// ---------------------------------------------------------------------------
// Parity: spilling vs in-memory, across thread counts and backends

TEST_F(SpillJoinTest, MatchesInMemoryAcrossThreadCountsAndBackends) {
  const PredicateSet r_preds = {Predicate(1, CompareOp::kLt, int64_t{700})};
  const PredicateSet s_preds = {Predicate(2, CompareOp::kGe, int64_t{100})};

  std::vector<Record> baseline_rows;
  const JoinExecResult baseline =
      ShuffleJoin(r_.store, r_.blocks, 0, r_preds, s_.store, s_.blocks, 0,
                  s_preds, r_.cluster, &baseline_rows)
          .ValueOrDie();
  ASSERT_GT(baseline.counts.output_rows, 0);

  StorageConfig disk;
  disk.backend = StorageConfig::Backend::kDisk;
  disk.buffer_blocks = 3;
  StoreFixture r_disk = MakeUniformBlockStore(12, 3, 11, 32, disk);
  StoreFixture s_disk = MakeUniformBlockStore(12, 3, 22, 32, disk);
  ASSERT_TRUE(r_disk.store.Flush().ok());
  ASSERT_TRUE(s_disk.store.Flush().ok());

  IoStats first_spill_io;
  for (const bool on_disk : {false, true}) {
    StoreFixture& r = on_disk ? r_disk : r_;
    StoreFixture& s = on_disk ? s_disk : s_;
    for (int32_t threads : {1, 2, 8}) {
      std::vector<Record> rows;
      const JoinExecResult run =
          exec::SpillingShuffleJoin(r.store, r.blocks, 0, r_preds, s.store,
                                    s.blocks, 0, s_preds, r.cluster,
                                    SpillingConfig(threads), &rows)
              .ValueOrDie();
      SCOPED_TRACE((on_disk ? "disk" : "mem") + std::string(" threads=") +
                   std::to_string(threads));
      EXPECT_EQ(run.counts.output_rows, baseline.counts.output_rows);
      EXPECT_EQ(run.counts.checksum, baseline.counts.checksum);
      EXPECT_EQ(run.r_blocks_read, baseline.r_blocks_read);
      EXPECT_EQ(run.s_blocks_read, baseline.s_blocks_read);
      ExpectSameLogicalIo(run.io, baseline.io);
      // Bitwise: the spilling reduce replays the exact serial row order.
      EXPECT_EQ(rows, baseline_rows);
      EXPECT_GT(run.io.spilled_partitions, 0);
      EXPECT_GT(run.io.spill_bytes_written, 0);
      EXPECT_GE(run.io.spill_bytes_read, run.io.spill_bytes_written);
      // Chunking is decomposition-derived, so spill accounting is identical
      // at every thread count on every backend.
      if (first_spill_io.spill_bytes_written == 0) {
        first_spill_io = run.io;
      } else {
        ExpectSameSpillIo(run.io, first_spill_io);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Acceptance: dataset >= 4x the buffer budget, residency stays bounded

TEST(OutOfCoreAcceptanceTest, ShuffleJoinBoundedResidencyOnTinyBuffer) {
  constexpr int64_t kBudget = 4;
  constexpr int32_t kBlocksPerSide = 16;  // 32 total, 8x the budget.

  // In-memory baseline for correctness.
  StoreFixture r_mem = MakeUniformBlockStore(kBlocksPerSide, 3, 31);
  StoreFixture s_mem = MakeUniformBlockStore(kBlocksPerSide, 3, 41);
  std::vector<Record> expected_rows;
  const JoinExecResult expected =
      ShuffleJoin(r_mem.store, r_mem.blocks, 0, {}, s_mem.store, s_mem.blocks,
                  0, {}, r_mem.cluster, &expected_rows)
          .ValueOrDie();
  ASSERT_GT(expected.counts.output_rows, 0);

  for (int32_t threads : {1, 8}) {
    StorageConfig disk;
    disk.backend = StorageConfig::Backend::kDisk;
    disk.buffer_blocks = kBudget;
    StoreFixture r = MakeUniformBlockStore(kBlocksPerSide, 3, 31, 32, disk);
    StoreFixture s = MakeUniformBlockStore(kBlocksPerSide, 3, 41, 32, disk);
    ASSERT_TRUE(r.store.Flush().ok());
    ASSERT_TRUE(s.store.Flush().ok());

    ExecConfig config;
    config.num_threads = threads;
    config.spill.enabled = true;
    config.spill.chunk_rows = 64;
    std::vector<Record> rows;
    const JoinExecResult run =
        exec::SpillingShuffleJoin(r.store, r.blocks, 0, {}, s.store, s.blocks,
                                  0, {}, r.cluster, config, &rows)
            .ValueOrDie();
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(run.counts.output_rows, expected.counts.output_rows);
    EXPECT_EQ(run.counts.checksum, expected.counts.checksum);
    EXPECT_EQ(rows, expected_rows);

    // The whole point: peak residency is bounded by the pool budget plus
    // one transient pin per concurrent map task — never the input size.
    for (const auto* fx : {&r, &s}) {
      const auto* store = dynamic_cast<const DiskBlockStore*>(&fx->store);
      ASSERT_NE(store, nullptr);
      const int64_t peak = store->pool_stats().peak_resident;
      EXPECT_LE(peak, kBudget + threads)
          << "peak " << peak << " vs budget " << kBudget;
      EXPECT_LT(peak, kBlocksPerSide);
    }
  }
}

// ---------------------------------------------------------------------------
// Grace-hash fallback in the hyper join

class GraceHashJoinTest : public ::testing::Test {
 protected:
  GraceHashJoinTest()
      : r_(MakeUniformBlockStore(12, 3, /*seed=*/11)),
        s_(MakeUniformBlockStore(12, 3, /*seed=*/22)),
        overlap_(ComputeOverlap(r_.store, r_.blocks, 0, s_.store, s_.blocks, 0)
                     .ValueOrDie()),
        grouping_(BottomUpGrouping(overlap_, 6).ValueOrDie()) {}

  ExecConfig GraceConfig(int32_t threads) const {
    ExecConfig config;
    config.num_threads = threads;
    config.spill.enabled = true;
    config.spill.max_build_blocks = 2;  // Groups of up to 6 blocks: grace.
    config.spill.chunk_rows = 16;
    return config;
  }

  StoreFixture r_;
  StoreFixture s_;
  OverlapMatrix overlap_;
  Grouping grouping_;
};

TEST_F(GraceHashJoinTest, MatchesInMemoryHyperJoin) {
  std::vector<Record> mem_rows;
  const JoinExecResult mem =
      HyperJoin(r_.store, 0, {}, s_.store, 0, {}, overlap_, grouping_,
                r_.cluster, &mem_rows)
          .ValueOrDie();
  ASSERT_GT(mem.counts.output_rows, 0);

  std::vector<Record> serial_grace_rows;
  for (int32_t threads : {1, 2, 8}) {
    std::vector<Record> rows;
    const JoinExecResult run =
        HyperJoin(r_.store, 0, {}, s_.store, 0, {}, overlap_, grouping_,
                  r_.cluster, GraceConfig(threads), &rows)
            .ValueOrDie();
    SCOPED_TRACE("threads=" + std::to_string(threads));
    // Counts, checksum and logical I/O match the in-memory path exactly;
    // the checksum is order-independent, which absorbs the partitioned
    // output order.
    EXPECT_EQ(run.counts.output_rows, mem.counts.output_rows);
    EXPECT_EQ(run.counts.checksum, mem.counts.checksum);
    EXPECT_EQ(run.r_blocks_read, mem.r_blocks_read);
    EXPECT_EQ(run.s_blocks_read, mem.s_blocks_read);
    EXPECT_EQ(run.s_blocks_skipped, mem.s_blocks_skipped);
    ExpectSameLogicalIo(run.io, mem.io);
    EXPECT_GT(run.io.spilled_partitions, 0);
    EXPECT_GT(run.io.spill_bytes_written, 0);

    // Same multiset of rows as in-memory.
    std::vector<Record> sorted = rows;
    std::vector<Record> mem_sorted = mem_rows;
    std::sort(sorted.begin(), sorted.end());
    std::sort(mem_sorted.begin(), mem_sorted.end());
    EXPECT_EQ(sorted, mem_sorted);

    // And bitwise-deterministic across thread counts.
    if (threads == 1) {
      serial_grace_rows = std::move(rows);
    } else {
      EXPECT_EQ(rows, serial_grace_rows);
    }
  }
}

TEST_F(GraceHashJoinTest, PredicatesAndMetaSkipMatchInMemory) {
  const PredicateSet r_preds = {Predicate(1, CompareOp::kLt, int64_t{700})};
  const PredicateSet s_preds = {Predicate(0, CompareOp::kLt, int64_t{300})};
  const JoinExecResult mem =
      HyperJoin(r_.store, 0, r_preds, s_.store, 0, s_preds, overlap_,
                grouping_, r_.cluster, nullptr)
          .ValueOrDie();
  const JoinExecResult grace =
      HyperJoin(r_.store, 0, r_preds, s_.store, 0, s_preds, overlap_,
                grouping_, r_.cluster, GraceConfig(1), nullptr)
          .ValueOrDie();
  EXPECT_EQ(grace.counts.output_rows, mem.counts.output_rows);
  EXPECT_EQ(grace.counts.checksum, mem.counts.checksum);
  EXPECT_EQ(grace.s_blocks_skipped, mem.s_blocks_skipped);
  EXPECT_EQ(grace.s_blocks_read, mem.s_blocks_read);
  ExpectSameLogicalIo(grace.io, mem.io);
}

// ---------------------------------------------------------------------------
// Adaptive morsel sizing

TEST(AdaptiveMorselTest, ByteTargetAdaptsBoundaries) {
  MemBlockStore store(2);
  std::vector<BlockId> blocks;
  // Alternating fat (96 rows) and thin (4 rows) blocks.
  for (int32_t b = 0; b < 8; ++b) {
    const BlockId id = store.CreateBlock();
    auto blk = store.GetMutable(id).ValueOrDie();
    const int32_t rows = (b % 2 == 0) ? 96 : 4;
    for (int32_t i = 0; i < rows; ++i) blk->Add({Value(i), Value(b)});
    blocks.push_back(id);
  }
  const int64_t fat = store.SizeBytesHint(blocks[0]);
  ASSERT_GT(fat, 0);

  ExecConfig config;
  config.morsel_blocks = 8;
  config.morsel_bytes = fat;  // One fat block fills a morsel.
  const auto ranges = ComputeMorselRanges(store, blocks, config);

  // Coverage: contiguous, complete, every morsel non-empty.
  ASSERT_FALSE(ranges.empty());
  int64_t expect_lo = 0;
  for (const auto& [lo, hi] : ranges) {
    EXPECT_EQ(lo, expect_lo);
    EXPECT_GT(hi, lo);
    expect_lo = hi;
  }
  EXPECT_EQ(expect_lo, static_cast<int64_t>(blocks.size()));
  // Adapted: more morsels than the single fixed-split morsel, and each fat
  // block closes one (4 fat blocks => at least 4 morsels).
  EXPECT_GE(ranges.size(), 4u);

  // morsel_bytes == 0 keeps the legacy fixed split.
  config.morsel_bytes = 0;
  const auto fixed = ComputeMorselRanges(store, blocks, config);
  ASSERT_EQ(fixed.size(), 1u);
  EXPECT_EQ(fixed[0], std::make_pair(int64_t{0}, int64_t{8}));
}

/// Store wrapper with no size hints — must force the fixed fallback.
class HintlessStore : public BlockStore {
 public:
  explicit HintlessStore(BlockStore* inner)
      : BlockStore(inner->num_attrs()), inner_(inner) {}
  BlockId CreateBlock() override { return inner_->CreateBlock(); }
  Result<BlockRef> Get(BlockId id) const override { return inner_->Get(id); }
  Result<MutableBlockRef> GetMutable(BlockId id) override {
    return inner_->GetMutable(id);
  }
  bool Contains(BlockId id) const override { return inner_->Contains(id); }
  Result<size_t> RecordCount(BlockId id) const override {
    return inner_->RecordCount(id);
  }
  bool MayMatchMeta(BlockId id, const PredicateSet& preds) const override {
    return inner_->MayMatchMeta(id, preds);
  }
  int64_t SizeBytesHint(BlockId) const override { return -1; }
  Status Delete(BlockId id) override { return inner_->Delete(id); }
  std::vector<BlockId> BlockIds() const override { return inner_->BlockIds(); }
  size_t num_blocks() const override { return inner_->num_blocks(); }
  size_t TotalRecords() const override { return inner_->TotalRecords(); }

 private:
  BlockStore* inner_;
};

TEST(AdaptiveMorselTest, MissingHintsFallBackToFixedSplit) {
  auto fx = MakeUniformBlockStore(10, 2, 51);
  HintlessStore hintless(&fx.store);
  ExecConfig config;
  config.morsel_blocks = 4;
  config.morsel_bytes = 1024;
  const auto ranges = ComputeMorselRanges(hintless, fx.blocks, config);
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0], std::make_pair(int64_t{0}, int64_t{4}));
  EXPECT_EQ(ranges[2], std::make_pair(int64_t{8}, int64_t{10}));
}

TEST(AdaptiveMorselTest, AggregateInvariantAcrossThreadCounts) {
  auto fx = MakeUniformBlockStore(16, 3, 61);
  const PredicateSet preds = {Predicate(2, CompareOp::kGe, int64_t{50})};
  AggregateResult baseline;
  for (int32_t threads : {1, 2, 8}) {
    ExecConfig config;
    config.num_threads = threads;
    config.morsel_bytes = 2048;  // Adaptive decomposition on all runs.
    const AggregateResult run =
        ParallelScanAggregate(fx.store, fx.blocks, preds, fx.cluster, 1,
                              AggFn::kAvg, config)
            .ValueOrDie();
    if (threads == 1) {
      baseline = run;
      EXPECT_GT(run.rows_aggregated, 0);
    } else {
      // Bitwise: same decomposition => same fp grouping => same double.
      EXPECT_EQ(run.value, baseline.value) << threads;
      EXPECT_EQ(run.rows_aggregated, baseline.rows_aggregated);
      EXPECT_EQ(run.scan.rows_matched, baseline.scan.rows_matched);
    }
  }
}

// ---------------------------------------------------------------------------
// Environment overrides

TEST(SpillEnvTest, ParsesOverrides) {
  ::setenv("ADAPTDB_SPILL", "1", 1);
  ::setenv("ADAPTDB_SPILL_ROWS", "123", 1);
  ::setenv("ADAPTDB_SPILL_BUILD_BLOCKS", "9", 1);
  ::setenv("ADAPTDB_SPILL_IO_THREADS", "0", 1);
  ::setenv("ADAPTDB_SPILL_DIR", "/tmp", 1);
  const SpillConfig spill = ApplySpillEnv(SpillConfig{});
  ::unsetenv("ADAPTDB_SPILL");
  ::unsetenv("ADAPTDB_SPILL_ROWS");
  ::unsetenv("ADAPTDB_SPILL_BUILD_BLOCKS");
  ::unsetenv("ADAPTDB_SPILL_IO_THREADS");
  ::unsetenv("ADAPTDB_SPILL_DIR");
  EXPECT_TRUE(spill.enabled);
  EXPECT_EQ(spill.chunk_rows, 123);
  EXPECT_EQ(spill.max_build_blocks, 9);
  EXPECT_EQ(spill.io_threads, 0);
  EXPECT_EQ(spill.dir, "/tmp");

  ::setenv("ADAPTDB_SPILL", "0", 1);
  SpillConfig on;
  on.enabled = true;
  const SpillConfig off = ApplySpillEnv(on);
  ::unsetenv("ADAPTDB_SPILL");
  EXPECT_FALSE(off.enabled);
}

}  // namespace
}  // namespace adaptdb
