// Integration tests for the simulated cost accounting: the executors'
// accounted I/O must match the §4.2 cost model's structure, and end-to-end
// workloads must show the paper's qualitative orderings.

#include <gtest/gtest.h>

#include "baselines/full_scan.h"
#include "core/database.h"
#include "exec/hyper_join.h"
#include "exec/shuffle_join.h"
#include "workload/cmt.h"
#include "workload/drivers.h"
#include "workload/tpch.h"
#include "workload/tpch_queries.h"

namespace adaptdb {
namespace {

struct TwoTableFixture {
  MemBlockStore r_store{1}, s_store{1};
  std::vector<BlockId> r_blocks, s_blocks;
  ClusterSim cluster;

  TwoTableFixture() {
    Rng rng(3);
    for (int b = 0; b < 8; ++b) {
      const BlockId id = r_store.CreateBlock();
      MutableBlockRef blk = r_store.GetMutable(id).ValueOrDie();
      for (int i = 0; i < 20; ++i) {
        blk->Add({Value(b * 100 + rng.UniformRange(0, 99))});
      }
      r_blocks.push_back(id);
      cluster.PlaceBlock(id);
    }
    for (int b = 0; b < 4; ++b) {
      const BlockId id = s_store.CreateBlock();
      MutableBlockRef blk = s_store.GetMutable(id).ValueOrDie();
      for (int i = 0; i < 20; ++i) {
        blk->Add({Value(b * 200 + rng.UniformRange(0, 199))});
      }
      s_blocks.push_back(id);
      cluster.PlaceBlock(id);
    }
  }
};

TEST(CostAccountingTest, ShuffleJoinChargesCSjPerBlock) {
  TwoTableFixture f;
  auto run = ShuffleJoin(f.r_store, f.r_blocks, 0, {}, f.s_store, f.s_blocks,
                         0, {}, f.cluster);
  ASSERT_TRUE(run.ok());
  const IoStats& io = run.ValueOrDie().io;
  // Every input block is read once and shuffled once.
  EXPECT_EQ(io.TotalReads(), 12);
  EXPECT_EQ(io.shuffled_blocks, 12);
  // With default constants, total cost per block ~ 3.25 reads: the paper's
  // C_SJ = 3 within 10%.
  const double per_block =
      f.cluster.SimulatedSeconds(io) * f.cluster.num_nodes() / 12.0;
  const double c_sj_effective =
      per_block / f.cluster.config().block_read_seconds;
  EXPECT_NEAR(c_sj_effective, 3.0, 0.5);
}

TEST(CostAccountingTest, HyperJoinChargesExactlyScheduledReads) {
  TwoTableFixture f;
  auto overlap =
      ComputeOverlap(f.r_store, f.r_blocks, 0, f.s_store, f.s_blocks, 0);
  ASSERT_TRUE(overlap.ok());
  for (int32_t budget : {2, 4, 8}) {
    auto grouping = BottomUpGrouping(overlap.ValueOrDie(), budget);
    ASSERT_TRUE(grouping.ok());
    auto run = HyperJoin(f.r_store, 0, {}, f.s_store, 0, {},
                         overlap.ValueOrDie(), grouping.ValueOrDie(),
                         f.cluster);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run.ValueOrDie().r_blocks_read, 8);
    EXPECT_EQ(run.ValueOrDie().s_blocks_read,
              GroupingCost(overlap.ValueOrDie(), grouping.ValueOrDie()));
    EXPECT_EQ(run.ValueOrDie().io.shuffled_blocks, 0);
    EXPECT_EQ(run.ValueOrDie().io.block_writes, 0);
  }
}

TEST(CostAccountingTest, HyperJoinCostDecreasesWithBudget) {
  TwoTableFixture f;
  auto overlap =
      ComputeOverlap(f.r_store, f.r_blocks, 0, f.s_store, f.s_blocks, 0);
  ASSERT_TRUE(overlap.ok());
  int64_t prev = INT64_MAX;
  for (int32_t budget : {1, 2, 4, 8}) {
    auto grouping = BottomUpGrouping(overlap.ValueOrDie(), budget);
    ASSERT_TRUE(grouping.ok());
    const int64_t cost =
        GroupingCost(overlap.ValueOrDie(), grouping.ValueOrDie());
    EXPECT_LE(cost, prev) << "budget " << budget;
    prev = cost;
  }
}

TEST(CostAccountingTest, SimulatedSecondsComposition) {
  ClusterSim cluster;
  const ClusterConfig& cfg = cluster.config();
  IoStats io;
  io.local_block_reads = 10;
  io.remote_block_reads = 4;
  io.block_writes = 2;
  io.shuffled_blocks = 6;
  const double want =
      (10 * cfg.block_read_seconds +
       4 * cfg.block_read_seconds * cfg.remote_penalty +
       2 * cfg.durable_write_seconds +
       6 * (cfg.block_read_seconds * cfg.remote_penalty +
            cfg.spill_write_seconds)) /
      cfg.num_nodes;
  EXPECT_DOUBLE_EQ(cluster.SimulatedSeconds(io), want);
}

TEST(EndToEndOrderingTest, AdaptiveBeatsFullScanOnRepeatedTemplates) {
  tpch::TpchConfig cfg;
  cfg.num_orders = 2000;
  const tpch::TpchData data = tpch::GenerateTpch(cfg);
  DatabaseOptions opts;
  opts.adapt.smooth.total_levels = 5;
  Database adaptive(opts);
  ASSERT_TRUE(LoadTpch(&adaptive, data, 5, 4, 3).ok());
  Database fullscan(FullScanOptions(DatabaseOptions{}));
  ASSERT_TRUE(LoadTpch(&fullscan, data, 5, 4, 3).ok());

  Rng rng(1);
  std::vector<Query> stream;
  for (int i = 0; i < 20; ++i) {
    stream.push_back(tpch::MakeQuery("q12", &rng).ValueOrDie());
  }
  auto a = RunWorkload(&adaptive, stream);
  auto f = RunWorkload(&fullscan, stream);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(f.ok());
  // After convergence (last 5 queries) the adaptive system must be at
  // least 1.5x faster per query.
  EXPECT_LT(a.ValueOrDie().MeanSeconds(15, 20) * 1.5,
            f.ValueOrDie().MeanSeconds(15, 20));
}

TEST(EndToEndOrderingTest, CmtTraceRunsAndAdapts) {
  cmt::CmtConfig cfg;
  cfg.num_trips = 4000;
  const cmt::CmtData data = cmt::GenerateCmt(cfg);
  DatabaseOptions opts;
  opts.adapt.smooth.total_levels = 5;
  Database db(opts);
  TableOptions t;
  t.upfront_levels = 5;
  ASSERT_TRUE(db.CreateTable("trips", data.trips_schema, data.trips, t).ok());
  ASSERT_TRUE(
      db.CreateTable("history", data.history_schema, data.history, t).ok());
  TableOptions lt;
  lt.upfront_levels = 4;
  ASSERT_TRUE(
      db.CreateTable("latest", data.latest_schema, data.latest, lt).ok());
  auto trace = cmt::MakeTrace(data, 5);
  auto result = RunWorkload(&db, trace);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.ValueOrDie().seconds.size(), 103u);
  // The trips table should have acquired a trip_id join tree.
  EXPECT_TRUE(
      db.GetTable("trips").ValueOrDie()->trees()->Has(cmt::kTripId));
}

TEST(EndToEndOrderingTest, WindowFiveConvergesNoSlowerThanThirtyFive) {
  tpch::TpchConfig cfg;
  cfg.num_orders = 2000;
  const tpch::TpchData data = tpch::GenerateTpch(cfg);
  auto run_with = [&](int32_t w) {
    DatabaseOptions opts;
    opts.adapt.window_size = w;
    opts.adapt.smooth.total_levels = 5;
    Database db(opts);
    ADB_CHECK_OK(LoadTpch(&db, data, 5, 4, 3));
    Rng rng(9);
    std::vector<Query> stream;
    for (int i = 0; i < 15; ++i) {
      stream.push_back(tpch::MakeQuery("q12", &rng).ValueOrDie());
    }
    auto result = RunWorkload(&db, stream);
    ADB_CHECK_OK(result.status());
    return result.ValueOrDie().MeanSeconds(10, 15);
  };
  // After 15 identical queries the small window must have converged at
  // least as far as the big one (Fig. 15's "first to converge").
  EXPECT_LE(run_with(5), run_with(35) * 1.05);
}

}  // namespace
}  // namespace adaptdb
