// Robustness and failure-injection tests: degenerate data distributions
// (heavy skew, constant keys, single rows), serialization round-trip fuzz,
// and the catalog inspection surface.

#include <gtest/gtest.h>

#include "core/database.h"
#include "join/exact_grouping.h"
#include "tree/two_phase_partitioner.h"
#include "tree/upfront_partitioner.h"

namespace adaptdb {
namespace {

Schema KV() {
  return Schema({{"key", DataType::kInt64, 8}, {"val", DataType::kInt64, 8}});
}

TEST(SkewTest, AllDuplicateJoinKeysStillJoinCorrectly) {
  // Every record shares one join key: the worst skew. Result must be the
  // full cross product |R| x |S|, under both join algorithms, while the
  // system adapts.
  DatabaseOptions opts;
  opts.adapt.smooth.total_levels = 3;
  Database db(opts);
  std::vector<Record> r_rows, s_rows;
  Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    r_rows.push_back({Value(int64_t{42}), Value(rng.UniformRange(0, 99))});
  }
  for (int i = 0; i < 50; ++i) {
    s_rows.push_back({Value(int64_t{42}), Value(rng.UniformRange(0, 99))});
  }
  TableOptions t;
  t.upfront_levels = 3;
  ASSERT_TRUE(db.CreateTable("r", KV(), r_rows, t).ok());
  ASSERT_TRUE(db.CreateTable("s", KV(), s_rows, t).ok());
  Query join;
  join.tables = {{"r", {}}, {"s", {}}};
  join.joins = {{"r", 0, "s", 0}};
  for (int i = 0; i < 6; ++i) {
    auto run = db.RunQuery(join);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run.ValueOrDie().output_rows, 300 * 50);
  }
}

TEST(SkewTest, ZipfianKeysKeepBlocksBounded) {
  // 80% of records hit 16 hot keys; median-based two-phase splits must not
  // put everything into one leaf.
  Schema schema = KV();
  Rng rng(2);
  std::vector<Record> rows;
  for (int i = 0; i < 4000; ++i) {
    const int64_t key = rng.Flip(0.8) ? rng.UniformRange(0, 15)
                                      : rng.UniformRange(16, 100000);
    rows.push_back({Value(key), Value(rng.UniformRange(0, 999))});
  }
  Reservoir sample(2000, 3);
  sample.AddAll(rows);
  MemBlockStore store(2);
  TwoPhaseOptions opts;
  opts.join_attr = 0;
  opts.join_levels = 3;
  opts.total_levels = 5;
  TwoPhasePartitioner p(schema, opts);
  auto tree = p.Build(sample, &store);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(LoadRecords(rows, tree.ValueOrDie(), &store).ok());
  size_t largest = 0;
  for (BlockId b : store.BlockIds()) {
    largest = std::max(largest, store.Get(b).ValueOrDie()->num_records());
  }
  // A single hot key can force one heavy leaf, but medians must keep it
  // under ~40% of the data (range partitioning would put 80% together).
  EXPECT_LT(largest, 1600u);
}

TEST(SkewTest, SingleRecordTable) {
  Database db;
  TableOptions t;
  t.upfront_levels = 3;
  std::vector<Record> one = {{Value(int64_t{5}), Value(int64_t{7})}};
  ASSERT_TRUE(db.CreateTable("tiny", KV(), one, t).ok());
  Query q;
  q.tables = {{"tiny", {Predicate(0, CompareOp::kEq, int64_t{5})}}};
  auto run = db.RunQuery(q);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.ValueOrDie().output_rows, 1);
}

TEST(SkewTest, ConstantAttributeTableStillQueries) {
  Database db;
  TableOptions t;
  t.upfront_levels = 4;
  std::vector<Record> rows(500, Record{Value(int64_t{1}), Value(int64_t{2})});
  ASSERT_TRUE(db.CreateTable("c", KV(), rows, t).ok());
  Query q;
  q.tables = {{"c", {}}};
  EXPECT_EQ(db.RunQuery(q).ValueOrDie().output_rows, 500);
  Query none;
  none.tables = {{"c", {Predicate(0, CompareOp::kGt, int64_t{1})}}};
  EXPECT_EQ(db.RunQuery(none).ValueOrDie().output_rows, 0);
}

TEST(FuzzTest, SerializeParseRoundTripRandomTrees) {
  // Random trees of random shapes round-trip exactly.
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    // Build a random tree by repeated leaf expansion.
    PartitionTree tree(PartitionTree::MakeLeaf(0));
    const int expansions = 1 + static_cast<int>(rng.Uniform(12));
    BlockId next_block = 1;
    for (int e = 0; e < expansions; ++e) {
      // Walk to a random leaf and split it.
      TreeNode* node = tree.mutable_root();
      while (!node->is_leaf) {
        node = rng.Flip(0.5) ? node->left.get() : node->right.get();
      }
      node->is_leaf = false;
      node->attr = static_cast<AttrId>(rng.Uniform(10));
      node->cut = rng.Flip(0.3)
                      ? Value(static_cast<double>(rng.UniformRange(-50, 50)))
                      : Value(rng.UniformRange(-1000, 1000));
      node->left = PartitionTree::MakeLeaf(next_block++);
      node->right = PartitionTree::MakeLeaf(next_block++);
    }
    const std::string text = tree.Serialize();
    auto parsed = PartitionTree::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_EQ(parsed.ValueOrDie().Serialize(), text);
    EXPECT_EQ(parsed.ValueOrDie().NumLeaves(), tree.NumLeaves());
  }
}

TEST(FuzzTest, ParseNeverCrashesOnMutatedInput) {
  Rng rng(13);
  const std::string base = "(a0 50 (a1 7 (leaf 1) (leaf 2)) (leaf 3))";
  for (int trial = 0; trial < 200; ++trial) {
    std::string s = base;
    const int edits = 1 + static_cast<int>(rng.Uniform(4));
    for (int e = 0; e < edits; ++e) {
      const size_t pos = rng.Uniform(s.size());
      switch (rng.Uniform(3)) {
        case 0:
          s[pos] = static_cast<char>('!' + rng.Uniform(90));
          break;
        case 1:
          s.erase(pos, 1);
          break;
        default:
          s.insert(pos, 1, static_cast<char>('!' + rng.Uniform(90)));
      }
    }
    // Must return (ok or error) without crashing; on ok, the result must
    // re-serialize stably.
    auto parsed = PartitionTree::Parse(s);
    if (parsed.ok()) {
      const std::string once = parsed.ValueOrDie().Serialize();
      auto again = PartitionTree::Parse(once);
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(again.ValueOrDie().Serialize(), once);
    }
  }
}

TEST(CatalogTest, DescribeLayoutAndDumpCatalog) {
  DatabaseOptions opts;
  opts.adapt.smooth.total_levels = 3;
  Database db(opts);
  TableOptions t;
  t.upfront_levels = 3;
  Rng rng(4);
  std::vector<Record> rows;
  for (int i = 0; i < 400; ++i) {
    rows.push_back({Value(rng.UniformRange(0, 99)),
                    Value(rng.UniformRange(0, 99))});
  }
  ASSERT_TRUE(db.CreateTable("r", KV(), rows, t).ok());
  ASSERT_TRUE(db.CreateTable("s", KV(), rows, t).ok());
  Query join;
  join.tables = {{"r", {}}, {"s", {}}};
  join.joins = {{"r", 0, "s", 0}};
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(db.RunQuery(join).ok());

  const std::string catalog = db.DumpCatalog();
  EXPECT_NE(catalog.find("table r"), std::string::npos);
  EXPECT_NE(catalog.find("table s"), std::string::npos);
  EXPECT_NE(catalog.find("join=key"), std::string::npos);  // Adapted tree.
  // Every serialized tree in the catalog parses back.
  size_t pos = 0;
  int trees_parsed = 0;
  while ((pos = catalog.find("    (", pos)) != std::string::npos) {
    const size_t end = catalog.find('\n', pos);
    const std::string text = catalog.substr(pos + 4, end - pos - 4);
    auto parsed = PartitionTree::Parse(text);
    EXPECT_TRUE(parsed.ok()) << text.substr(0, 60);
    ++trees_parsed;
    pos = end;
  }
  EXPECT_GE(trees_parsed, 2);
}

TEST(RobustnessTest, ExactSolverHandlesAllIdenticalVectors) {
  // Every block overlaps the same S blocks: any balanced grouping is
  // optimal; the solver must terminate quickly via dominance pruning.
  OverlapMatrix m;
  m.vectors.assign(12, BitVector(6));
  for (size_t i = 0; i < 12; ++i) {
    m.r_blocks.push_back(static_cast<BlockId>(i));
    m.vectors[i].Set(1);
    m.vectors[i].Set(4);
  }
  for (size_t j = 0; j < 6; ++j) m.s_blocks.push_back(static_cast<BlockId>(j));
  auto exact = ExactGrouping(m, 4);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact.ValueOrDie().cost, 6);  // 3 groups x 2 bits.
}

TEST(RobustnessTest, HyperJoinWithDisjointRangesReadsNothing) {
  // R and S key ranges do not intersect: overlap matrix is empty, the
  // hyper-join reads R but no S blocks, and returns zero rows.
  MemBlockStore r(1), s(1);
  ClusterSim cluster;
  std::vector<BlockId> r_blocks, s_blocks;
  for (int b = 0; b < 3; ++b) {
    const BlockId id = r.CreateBlock();
    r.GetMutable(id).ValueOrDie()->Add({Value(int64_t{b})});
    r_blocks.push_back(id);
    cluster.PlaceBlock(id);
  }
  for (int b = 0; b < 3; ++b) {
    const BlockId id = s.CreateBlock();
    s.GetMutable(id).ValueOrDie()->Add({Value(int64_t{1000 + b})});
    s_blocks.push_back(id);
    cluster.PlaceBlock(id);
  }
  auto overlap = ComputeOverlap(r, r_blocks, 0, s, s_blocks, 0);
  ASSERT_TRUE(overlap.ok());
  EXPECT_EQ(overlap.ValueOrDie().TotalOverlaps(), 0u);
  auto grouping = BottomUpGrouping(overlap.ValueOrDie(), 2);
  ASSERT_TRUE(grouping.ok());
  EXPECT_EQ(GroupingCost(overlap.ValueOrDie(), grouping.ValueOrDie()), 0);
}

TEST(RobustnessTest, RepeatedAppendsGrowBlocksNotLoseRecords) {
  Database db;
  TableOptions t;
  t.upfront_levels = 2;
  Rng rng(5);
  std::vector<Record> rows;
  for (int i = 0; i < 100; ++i) {
    rows.push_back({Value(rng.UniformRange(0, 99)),
                    Value(rng.UniformRange(0, 99))});
  }
  ASSERT_TRUE(db.CreateTable("t", KV(), rows, t).ok());
  for (int round = 0; round < 10; ++round) {
    std::vector<Record> more;
    for (int i = 0; i < 50; ++i) {
      more.push_back({Value(rng.UniformRange(0, 99)),
                      Value(rng.UniformRange(0, 99))});
    }
    ASSERT_TRUE(db.AppendRows("t", more).ok());
  }
  EXPECT_EQ(db.GetTable("t").ValueOrDie()->num_records(), 100 + 10 * 50);
}

}  // namespace
}  // namespace adaptdb
