// Tests for the vectorized predicate kernels (exec/kernels.h) and
// dictionary-resident string execution: kernel-vs-MatchesAt bitwise parity
// across every (comparison op × column type) pair including edge values
// (NaN, ±0.0, INT64_MIN/MAX, empty strings, the 256-entry dictionary
// boundary), dictionary columns behaving exactly like their plain-string
// equivalents (filters, hashes, joins, appends, re-encoding), the
// cost-based predicate ordering, and ADAPTDB_NO_KERNELS kill-switch parity
// over full scan/join pipelines.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "exec/hyper_join.h"
#include "exec/kernels.h"
#include "exec/scan.h"
#include "exec/shuffle_join.h"
#include "io/disk_block_store.h"
#include "io/format.h"
#include "join/grouping.h"
#include "join/overlap.h"
#include "storage/block_store.h"
#include "storage/cluster.h"

namespace adaptdb {
namespace {

constexpr CompareOp kAllOps[] = {CompareOp::kLt, CompareOp::kLe,
                                 CompareOp::kGt, CompareOp::kGe,
                                 CompareOp::kEq, CompareOp::kNeq};

/// Restores the kernel kill switch to its ambient state on scope exit, so
/// tests that flip it (and the CI run with ADAPTDB_NO_KERNELS=1) stay
/// independent.
struct KernelSwitchGuard {
  bool ambient = kernels::Enabled();
  ~KernelSwitchGuard() { kernels::SetEnabled(ambient); }
};

/// Asserts every kernel entry point agrees bitwise with the row-at-a-time
/// MatchesAt path for (col, pred): full sweep, count, and a refine over an
/// every-other-row subset.
void ExpectKernelParity(const Column& col, const Predicate& pred) {
  ASSERT_TRUE(kernels::Supported(col, pred)) << pred.ToString();
  SelectionVector expect;
  for (size_t row = 0; row < col.size(); ++row) {
    if (col.MatchesAt(pred, row)) {
      expect.push_back(static_cast<uint32_t>(row));
    }
  }
  SelectionVector full;
  kernels::FilterFull(pred, col, &full);
  EXPECT_EQ(full, expect) << pred.ToString();
  EXPECT_EQ(kernels::CountFull(pred, col), expect.size()) << pred.ToString();

  SelectionVector subset;
  for (size_t row = 0; row < col.size(); row += 2) {
    subset.push_back(static_cast<uint32_t>(row));
  }
  SelectionVector expect_subset;
  for (const uint32_t row : subset) {
    if (col.MatchesAt(pred, row)) expect_subset.push_back(row);
  }
  SelectionVector refined = subset;
  kernels::FilterRefine(pred, col, &refined);
  EXPECT_EQ(refined, expect_subset) << pred.ToString();
  EXPECT_EQ(kernels::CountRefine(pred, col, subset), expect_subset.size())
      << pred.ToString();
}

// ---------------------------------------------------------------------------
// Kernel-vs-MatchesAt parity, per (op × type), on edge values.

TEST(KernelParityTest, Int64AllOpsIncludingExtremes) {
  const Column col = Column::OfInts(
      {INT64_MIN, INT64_MIN + 1, -1, 0, 1, 42, 42, INT64_MAX - 1, INT64_MAX,
       0, -7});
  for (const CompareOp op : kAllOps) {
    for (const int64_t c : {INT64_MIN, int64_t{-1}, int64_t{0}, int64_t{42},
                            INT64_MAX}) {
      ExpectKernelParity(col, Predicate(0, op, Value(c)));
    }
  }
}

TEST(KernelParityTest, DoubleAllOpsIncludingNaNAndSignedZero) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const Column col =
      Column::OfDoubles({nan, -0.0, 0.0, -inf, inf, 1.5, -2.25, 1.5, 1e308});
  for (const CompareOp op : kAllOps) {
    for (const double c : {nan, -0.0, 0.0, inf, -inf, 1.5}) {
      ExpectKernelParity(col, Predicate(0, op, Value(c)));
    }
  }
}

TEST(KernelParityTest, MixedNumericAllOpsBothDirections) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const Column ints = Column::OfInts({INT64_MIN, -2, -1, 0, 1, 2, INT64_MAX});
  const Column doubles =
      Column::OfDoubles({nan, -0.5, -0.0, 0.0, 0.5, 1.0, 2.0});
  for (const CompareOp op : kAllOps) {
    // int64 column vs double constant: kLe acts as kLt, kGe as kGt, kEq
    // matches nothing, kNeq everything — including a NaN constant.
    for (const double c : {0.5, 0.0, -0.0, 1.0, nan}) {
      ExpectKernelParity(ints, Predicate(0, op, Value(c)));
    }
    // double column vs int64 constant.
    for (const int64_t c : {int64_t{0}, int64_t{1}, int64_t{-1}}) {
      ExpectKernelParity(doubles, Predicate(0, op, Value(c)));
    }
  }
}

TEST(KernelParityTest, PlainStringsAllOpsIncludingEmpty) {
  const Column col = Column::OfStrings(
      {"", "a", "abc", "abd", "zzz", "", "a", std::string(1, '\0')});
  for (const CompareOp op : kAllOps) {
    for (const char* c : {"", "a", "abc", "nope", "zzzz"}) {
      ExpectKernelParity(col, Predicate(0, op, Value(c)));
    }
  }
}

TEST(KernelParityTest, UnsupportedCombinationsFallBack) {
  Column mixed;
  mixed.Append(Value(int64_t{1}));
  mixed.Append(Value("demoted"));
  ASSERT_TRUE(mixed.mixed());
  EXPECT_FALSE(kernels::Supported(mixed, Predicate(0, CompareOp::kEq,
                                                   Value(int64_t{1}))));
  // Cross string/numeric keeps the fallback's Value semantics.
  const Column ints = Column::OfInts({1, 2, 3});
  EXPECT_FALSE(kernels::Supported(ints, Predicate(0, CompareOp::kEq,
                                                  Value("one"))));
  const Column strs = Column::OfStrings({"a", "b"});
  EXPECT_FALSE(kernels::Supported(strs, Predicate(0, CompareOp::kLt,
                                                  Value(int64_t{5}))));
  EXPECT_TRUE(kernels::Supported(strs, Predicate(0, CompareOp::kLt,
                                                 Value("b"))));
  Column untyped;
  EXPECT_FALSE(kernels::Supported(untyped, Predicate(0, CompareOp::kEq,
                                                     Value(int64_t{0}))));
}

// ---------------------------------------------------------------------------
// Dictionary-resident strings.

/// Encodes `vals` as one string column through format v2 and decodes it
/// back; asserts the round trip produced the expected representation.
Column RoundTripStringColumn(const std::vector<std::string>& vals,
                             bool expect_dict) {
  Block block(1, 1);
  for (const std::string& s : vals) block.Add({Value(s)});
  auto decoded = io::DecodeBlock(io::EncodeBlock(block), 1);
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  Column col = decoded.ValueOrDie().column(0);
  EXPECT_EQ(col.dict_coded(), expect_dict);
  EXPECT_EQ(col.size(), vals.size());
  return col;
}

TEST(DictColumnTest, DecodeKeepsCodesResidentAndValuesExact) {
  std::vector<std::string> vals;
  for (int i = 0; i < 100; ++i) vals.push_back(i % 2 ? "hot" : "cold");
  const Column col = RoundTripStringColumn(vals, true);
  ASSERT_EQ(col.dict().size(), 2u);  // First-appearance order.
  EXPECT_EQ(col.dict()[0], "cold");
  EXPECT_EQ(col.dict()[1], "hot");
  EXPECT_EQ(col.type(), DataType::kString);
  for (size_t i = 0; i < vals.size(); ++i) {
    EXPECT_EQ(col.ValueAt(i), Value(vals[i]));
  }
  EXPECT_EQ(col.FindCode("hot"), 1);
  EXPECT_EQ(col.FindCode("absent"), -1);
}

TEST(DictColumnTest, MatchesHashesAndEqualityAgreeWithPlainStrings) {
  Rng rng(11);
  const char* pool[] = {"", "alpha", "beta", "gamma", "delta-delta"};
  std::vector<std::string> vals;
  for (int i = 0; i < 200; ++i) vals.push_back(pool[rng.Uniform(5)]);
  const Column dict = RoundTripStringColumn(vals, true);
  const Column plain = Column::OfStrings(vals);
  for (size_t row = 0; row < vals.size(); ++row) {
    EXPECT_EQ(dict.HashAt(row), plain.HashAt(row));
    EXPECT_EQ(dict.SizeBytes(), plain.SizeBytes());
    EXPECT_TRUE(dict.EqualsValueAt(row, Value(vals[row])));
    EXPECT_FALSE(dict.EqualsValueAt(row, Value(vals[row] + "x")));
    EXPECT_FALSE(dict.EqualsValueAt(row, Value(int64_t{0})));
  }
  for (const CompareOp op : kAllOps) {
    for (const char* c : {"", "alpha", "gamma", "absent", "zzz"}) {
      const Predicate pred(0, op, Value(c));
      ExpectKernelParity(dict, pred);
      // Dict and plain agree row by row (MatchesAt path)...
      for (size_t row = 0; row < vals.size(); ++row) {
        EXPECT_EQ(dict.MatchesAt(pred, row), plain.MatchesAt(pred, row));
      }
      // ...and kernel to kernel.
      SelectionVector dict_sel, plain_sel;
      kernels::FilterFull(pred, dict, &dict_sel);
      kernels::FilterFull(pred, plain, &plain_sel);
      EXPECT_EQ(dict_sel, plain_sel) << pred.ToString();
    }
  }
}

TEST(DictColumnTest, BoundaryAt256DistinctEntries) {
  // Exactly 256 distinct values over more rows: still dictionary-coded.
  std::vector<std::string> at;
  for (int i = 0; i < 512; ++i) at.push_back("k" + std::to_string(i % 256));
  const Column dict = RoundTripStringColumn(at, true);
  EXPECT_EQ(dict.dict().size(), 256u);
  for (const CompareOp op : kAllOps) {
    ExpectKernelParity(dict, Predicate(0, op, Value("k128")));
    ExpectKernelParity(dict, Predicate(0, op, Value("missing")));
  }
  // 257 distinct: past the one-byte code space, stays plain.
  std::vector<std::string> over;
  for (int i = 0; i < 514; ++i) over.push_back("k" + std::to_string(i % 257));
  RoundTripStringColumn(over, false);
}

TEST(DictColumnTest, AppendExtendsDictionaryOrDemotesToMixed) {
  const Column base = RoundTripStringColumn({"x", "y", "x", "y"}, true);
  Column col = base;
  col.Append(Value("x"));  // Existing entry: code reused.
  col.Append(Value("z"));  // New entry: dictionary grows.
  ASSERT_TRUE(col.dict_coded());
  EXPECT_EQ(col.dict().size(), 3u);
  EXPECT_EQ(col.size(), 6u);
  EXPECT_EQ(col.ValueAt(4), Value("x"));
  EXPECT_EQ(col.ValueAt(5), Value("z"));
  EXPECT_EQ(col.HashAt(5), std::hash<std::string>{}(std::string("z")));
  // A non-string append demotes to mixed storage, values preserved.
  Column demoted = base;
  demoted.Append(Value(int64_t{7}));
  ASSERT_TRUE(demoted.mixed());
  EXPECT_EQ(demoted.ValueAt(0), Value("x"));
  EXPECT_EQ(demoted.ValueAt(4), Value(int64_t{7}));
}

TEST(DictColumnTest, ReencodeIsByteIdentical) {
  std::vector<std::string> vals;
  for (int i = 0; i < 64; ++i) vals.push_back("v" + std::to_string(i % 5));
  Block block(3, 2);
  for (size_t i = 0; i < vals.size(); ++i) {
    block.Add({Value(vals[i]), Value(static_cast<int64_t>(i))});
  }
  const std::string bytes = io::EncodeBlock(block);
  auto decoded = io::DecodeBlock(bytes, 2);
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded.ValueOrDie().column(0).dict_coded());
  // Dirty write-back path: the decoded (dict-resident) block re-encodes
  // to exactly the bytes it came from.
  EXPECT_EQ(io::EncodeBlock(decoded.ValueOrDie()), bytes);
  // Ranges rebuilt from the dictionary match the incremental originals.
  EXPECT_EQ(decoded.ValueOrDie().ranges(), block.ranges());
}

TEST(DictColumnTest, GrowingPastCodeSpaceFallsBackToPlainEncoding) {
  std::vector<std::string> vals;
  for (int i = 0; i < 300; ++i) vals.push_back("s" + std::to_string(i % 4));
  Block block(4, 1);
  for (const std::string& s : vals) block.Add({Value(s)});
  auto decoded = io::DecodeBlock(io::EncodeBlock(block), 1);
  ASSERT_TRUE(decoded.ok());
  Block grown = decoded.ValueOrDie();
  ASSERT_TRUE(grown.column(0).dict_coded());
  // Appends push the dictionary past 256 entries; the encoder must
  // materialize and emit a valid plain segment.
  for (int i = 0; i < 300; ++i) {
    grown.Add({Value("grown-" + std::to_string(i))});
  }
  ASSERT_TRUE(grown.column(0).dict_coded());
  EXPECT_GT(grown.column(0).dict().size(), 256u);
  auto round = io::DecodeBlock(io::EncodeBlock(grown), 1);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_FALSE(round.ValueOrDie().column(0).dict_coded());
  EXPECT_EQ(round.ValueOrDie().MaterializeRecords(),
            grown.MaterializeRecords());
}

// ---------------------------------------------------------------------------
// Block-level routing: kill switch, predicate ordering, CountMatches.

Block MakeMixedTypeBlock(uint64_t seed, int32_t rows) {
  Rng rng(seed);
  const char* flags[] = {"A", "B", "C"};
  Block b(7, 3);
  for (int32_t i = 0; i < rows; ++i) {
    b.Add({Value(rng.UniformRange(0, 999)),
           Value(static_cast<double>(rng.UniformRange(0, 10000)) / 100.0),
           Value(std::string(flags[rng.Uniform(3)]))});
  }
  return b;
}

TEST(BlockFilterTest, KillSwitchParityOnMultiPredicateConjunctions) {
  KernelSwitchGuard guard;
  const Block block = MakeMixedTypeBlock(21, 500);
  const std::vector<PredicateSet> cases = {
      {Predicate(0, CompareOp::kLt, Value(int64_t{500}))},
      {Predicate(2, CompareOp::kEq, Value("B"))},
      {Predicate(2, CompareOp::kNeq, Value("C")),
       Predicate(0, CompareOp::kGe, Value(int64_t{250}))},
      {Predicate(1, CompareOp::kGt, Value(42.5)),
       Predicate(2, CompareOp::kEq, Value("A")),
       Predicate(0, CompareOp::kLe, Value(int64_t{800}))},
      // Mixed numeric: double constant against the int64 column.
      {Predicate(0, CompareOp::kLe, Value(499.5)),
       Predicate(1, CompareOp::kLt, Value(int64_t{80}))},
      // Contradiction: empty result, early-exit path.
      {Predicate(0, CompareOp::kLt, Value(int64_t{0})),
       Predicate(2, CompareOp::kEq, Value("A"))},
  };
  for (const PredicateSet& preds : cases) {
    kernels::SetEnabled(true);
    const SelectionVector on = block.FilterRows(preds);
    const size_t count_on = block.CountMatches(preds);
    kernels::SetEnabled(false);
    const SelectionVector off = block.FilterRows(preds);
    const size_t count_off = block.CountMatches(preds);
    EXPECT_EQ(on, off) << PredicateSetToString(preds);
    EXPECT_EQ(count_on, count_off);
    EXPECT_EQ(count_on, on.size());
    // Output is row-ascending regardless of evaluation order.
    EXPECT_TRUE(std::is_sorted(on.begin(), on.end()));
  }
}

TEST(BlockFilterTest, CostOrderingSeedsFromCheapestColumn) {
  // String predicate listed first, int64 predicate second: the result must
  // be identical to the naive order (ordering is pure evaluation policy).
  const Block block = MakeMixedTypeBlock(33, 300);
  const PredicateSet string_first = {
      Predicate(2, CompareOp::kEq, Value("B")),
      Predicate(0, CompareOp::kLt, Value(int64_t{700}))};
  const PredicateSet int_first = {
      Predicate(0, CompareOp::kLt, Value(int64_t{700})),
      Predicate(2, CompareOp::kEq, Value("B"))};
  EXPECT_EQ(block.FilterRows(string_first), block.FilterRows(int_first));
  EXPECT_EQ(block.CountMatches(string_first),
            block.CountMatches(int_first));
  SelectionVector expect;
  for (size_t row = 0; row < block.num_records(); ++row) {
    if (block.column(2).MatchesAt(string_first[0], row) &&
        block.column(0).MatchesAt(string_first[1], row)) {
      expect.push_back(static_cast<uint32_t>(row));
    }
  }
  EXPECT_EQ(block.FilterRows(string_first), expect);
}

TEST(BlockFilterTest, MixedColumnConjunctionsStayExact) {
  KernelSwitchGuard guard;
  // One attribute demotes to mixed numeric storage: its predicate takes
  // the fallback while the other attribute's still kernels.
  Block b(8, 2);
  for (int i = 0; i < 50; ++i) {
    b.Add({Value(static_cast<int64_t>(i)), Value(static_cast<int64_t>(i))});
  }
  b.Add({Value(int64_t{50}), Value(99.5)});
  ASSERT_TRUE(b.column(1).mixed());
  const PredicateSet preds = {
      Predicate(1, CompareOp::kLt, Value(int64_t{10})),
      Predicate(0, CompareOp::kGe, Value(int64_t{3}))};
  kernels::SetEnabled(true);
  const SelectionVector on = b.FilterRows(preds);
  const size_t count_on = b.CountMatches(preds);
  kernels::SetEnabled(false);
  EXPECT_EQ(on, b.FilterRows(preds));
  EXPECT_EQ(count_on, b.CountMatches(preds));
  EXPECT_EQ(on.size(), 7u);  // Rows 3..9.
}

// ---------------------------------------------------------------------------
// Dictionary-resident join parity: hyper + shuffle, mem + disk, 1/2/8
// threads, with the string attribute as the join key (dict-coded on the
// disk side, plain in memory — results must be bitwise identical).

struct DictJoinFixture {
  std::unique_ptr<MemBlockStore> r_mem, s_mem;
  std::unique_ptr<DiskBlockStore> r_disk, s_disk;
  std::vector<BlockId> r_blocks, s_blocks;
  ClusterSim cluster;
};

DictJoinFixture MakeDictJoinFixture() {
  DictJoinFixture fx;
  fx.r_mem = std::make_unique<MemBlockStore>(2);
  fx.s_mem = std::make_unique<MemBlockStore>(2);
  StorageConfig config;
  config.buffer_blocks = 2;  // Constant eviction: dict decodes are real.
  fx.r_disk = std::move(DiskBlockStore::Open(2, config)).ValueOrDie();
  fx.s_disk = std::move(DiskBlockStore::Open(2, config)).ValueOrDie();
  const char* keys[] = {"ash", "birch", "cedar", "fir", "oak", "pine"};
  for (const bool r_side : {true, false}) {
    BlockStore* stores[] = {
        r_side ? static_cast<BlockStore*>(fx.r_mem.get())
               : static_cast<BlockStore*>(fx.s_mem.get()),
        r_side ? static_cast<BlockStore*>(fx.r_disk.get())
               : static_cast<BlockStore*>(fx.s_disk.get())};
    for (BlockStore* store : stores) {
      Rng rng(r_side ? 5 : 6);
      for (int b = 0; b < (r_side ? 8 : 6); ++b) {
        const BlockId id = store->CreateBlock();
        auto blk = store->GetMutable(id);
        for (int i = 0; i < 24; ++i) {
          blk.ValueOrDie()->Add({Value(std::string(keys[rng.Uniform(6)])),
                                 Value(rng.UniformRange(0, 99))});
        }
      }
    }
  }
  fx.r_blocks = fx.r_mem->BlockIds();
  fx.s_blocks = fx.s_mem->BlockIds();
  EXPECT_EQ(fx.r_blocks, fx.r_disk->BlockIds());
  EXPECT_EQ(fx.s_blocks, fx.s_disk->BlockIds());
  for (BlockId b : fx.r_blocks) fx.cluster.PlaceBlock(b);
  for (BlockId b : fx.s_blocks) fx.cluster.PlaceBlock(b);
  return fx;
}

TEST(DictJoinParityTest, StringKeyJoinsAcrossBackendsThreadsAndKernels) {
  KernelSwitchGuard guard;
  DictJoinFixture fx = MakeDictJoinFixture();
  // The disk side must actually be running on dictionary columns.
  ASSERT_TRUE(
      fx.r_disk->Get(fx.r_blocks[0]).ValueOrDie()->column(0).dict_coded());
  const PredicateSet s_preds = {Predicate(0, CompareOp::kNeq, Value("oak"))};
  const OverlapMatrix overlap_mem =
      ComputeOverlap(*fx.r_mem, fx.r_blocks, 0, *fx.s_mem, fx.s_blocks, 0)
          .ValueOrDie();
  const OverlapMatrix overlap_disk =
      ComputeOverlap(*fx.r_disk, fx.r_blocks, 0, *fx.s_disk, fx.s_blocks, 0)
          .ValueOrDie();
  const Grouping grouping = BottomUpGrouping(overlap_mem, 3).ValueOrDie();
  ASSERT_EQ(BottomUpGrouping(overlap_disk, 3).ValueOrDie().groups,
            grouping.groups);

  std::vector<Record> reference_rows;
  uint64_t reference_checksum = 0;
  bool have_reference = false;
  for (const bool kernels_on : {true, false}) {
    kernels::SetEnabled(kernels_on);
    for (const int32_t threads : {1, 2, 8}) {
      ExecConfig config;
      config.num_threads = threads;
      std::vector<Record> hyper_mem_rows, hyper_disk_rows;
      const JoinExecResult hyper_mem =
          HyperJoin(*fx.r_mem, 0, {}, *fx.s_mem, 0, s_preds, overlap_mem,
                    grouping, fx.cluster, config, &hyper_mem_rows)
              .ValueOrDie();
      const JoinExecResult hyper_disk =
          HyperJoin(*fx.r_disk, 0, {}, *fx.s_disk, 0, s_preds, overlap_disk,
                    grouping, fx.cluster, config, &hyper_disk_rows)
              .ValueOrDie();
      EXPECT_EQ(hyper_mem_rows, hyper_disk_rows)
          << "kernels=" << kernels_on << " threads=" << threads;
      EXPECT_EQ(hyper_mem.counts.checksum, hyper_disk.counts.checksum);
      EXPECT_EQ(hyper_mem.io.TotalReads(), hyper_disk.io.TotalReads());

      std::vector<Record> shuffle_mem_rows, shuffle_disk_rows;
      const JoinExecResult shuffle_mem =
          ShuffleJoin(*fx.r_mem, fx.r_blocks, 0, {}, *fx.s_mem, fx.s_blocks,
                      0, s_preds, fx.cluster, config, &shuffle_mem_rows)
              .ValueOrDie();
      const JoinExecResult shuffle_disk =
          ShuffleJoin(*fx.r_disk, fx.r_blocks, 0, {}, *fx.s_disk,
                      fx.s_blocks, 0, s_preds, fx.cluster, config,
                      &shuffle_disk_rows)
              .ValueOrDie();
      EXPECT_EQ(shuffle_mem_rows, shuffle_disk_rows)
          << "kernels=" << kernels_on << " threads=" << threads;
      EXPECT_EQ(shuffle_mem.counts.checksum, shuffle_disk.counts.checksum);
      EXPECT_EQ(hyper_disk.counts.output_rows,
                shuffle_disk.counts.output_rows);
      EXPECT_EQ(hyper_disk.counts.checksum, shuffle_disk.counts.checksum);

      // Every (kernel switch × thread count × backend × algorithm) cell
      // produces the same rows and checksum as the first.
      if (!have_reference) {
        reference_rows = hyper_mem_rows;
        reference_checksum = hyper_mem.counts.checksum;
        have_reference = true;
        EXPECT_GT(reference_rows.size(), 0u);
      }
      EXPECT_EQ(hyper_mem_rows, reference_rows)
          << "kernels=" << kernels_on << " threads=" << threads;
      EXPECT_EQ(hyper_mem.counts.checksum, reference_checksum);
    }
  }
}

TEST(DictJoinParityTest, ScanAggregateParityWithKernelsOnAndOff) {
  KernelSwitchGuard guard;
  DictJoinFixture fx = MakeDictJoinFixture();
  const PredicateSet preds = {Predicate(0, CompareOp::kGe, Value("cedar")),
                              Predicate(1, CompareOp::kLt, Value(int64_t{80}))};
  int64_t reference_rows = -1;
  for (const bool kernels_on : {true, false}) {
    kernels::SetEnabled(kernels_on);
    for (const int32_t threads : {1, 2, 8}) {
      ExecConfig config;
      config.num_threads = threads;
      const ScanResult mem =
          ScanBlocks(*fx.r_mem, fx.r_blocks, preds, fx.cluster, config)
              .ValueOrDie();
      const ScanResult disk =
          ScanBlocks(*fx.r_disk, fx.r_blocks, preds, fx.cluster, config)
              .ValueOrDie();
      EXPECT_EQ(mem.rows_matched, disk.rows_matched);
      EXPECT_EQ(mem.blocks_read, disk.blocks_read);
      EXPECT_EQ(mem.io.local_block_reads, disk.io.local_block_reads);
      if (reference_rows < 0) reference_rows = mem.rows_matched;
      EXPECT_EQ(mem.rows_matched, reference_rows)
          << "kernels=" << kernels_on << " threads=" << threads;
      const AggregateResult agg_mem =
          ScanAggregate(*fx.r_mem, fx.r_blocks, preds, fx.cluster, 1,
                        AggFn::kSum, config)
              .ValueOrDie();
      const AggregateResult agg_disk =
          ScanAggregate(*fx.r_disk, fx.r_blocks, preds, fx.cluster, 1,
                        AggFn::kSum, config)
              .ValueOrDie();
      EXPECT_EQ(agg_mem.value, agg_disk.value);
    }
  }
  EXPECT_GT(reference_rows, 0);
}

}  // namespace
}  // namespace adaptdb
