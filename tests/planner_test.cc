// Tests for planner/: strategy choice and multi-relation execution.

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/rng.h"
#include "planner/join_planner.h"
#include "sample/reservoir.h"
#include "tree/two_phase_partitioner.h"
#include "tree/upfront_partitioner.h"

namespace adaptdb {
namespace {

// Two tables R(key, val) and S(key, val) plus a dimension D(key, group).
struct PlannerFixture {
  Schema schema2;
  MemBlockStore r_store{2}, s_store{2}, d_store{2};
  TreeSet r_trees, s_trees, d_trees;
  ClusterSim cluster;
  std::vector<Record> r_records, s_records, d_records;

  // join_partitioned: build R and S with two-phase trees on the key so
  // hyper-join is attractive; otherwise use selection-only upfront trees.
  explicit PlannerFixture(bool join_partitioned, uint64_t seed = 3)
      : schema2(Schema({{"key", DataType::kInt64, 8},
                        {"val", DataType::kInt64, 8}})) {
    Rng rng(seed);
    for (int i = 0; i < 3000; ++i) {
      r_records.push_back(
          {Value(rng.UniformRange(0, 999)), Value(rng.UniformRange(0, 99))});
    }
    for (int i = 0; i < 1500; ++i) {
      s_records.push_back(
          {Value(rng.UniformRange(0, 999)), Value(rng.UniformRange(0, 99))});
    }
    for (int i = 0; i < 100; ++i) {
      d_records.push_back({Value(int64_t{i}), Value(rng.UniformRange(0, 9))});
    }
    Build(&r_store, &r_trees, r_records, join_partitioned, seed);
    Build(&s_store, &s_trees, s_records, join_partitioned, seed + 1);
    Build(&d_store, &d_trees, d_records, false, seed + 2);
  }

  void Build(BlockStore* store, TreeSet* trees,
             const std::vector<Record>& records, bool join_partitioned,
             uint64_t seed) {
    Reservoir sample(1000, seed);
    sample.AddAll(records);
    PartitionTree tree;
    if (join_partitioned) {
      TwoPhaseOptions opts;
      opts.join_attr = 0;
      opts.join_levels = 3;
      opts.total_levels = 4;
      opts.seed = seed;
      TwoPhasePartitioner p(schema2, opts);
      tree = std::move(p.Build(sample, store)).ValueOrDie();
    } else {
      UpfrontOptions opts;
      opts.num_levels = 4;
      opts.attrs = {1};  // Selection attribute only: bad for joins.
      opts.seed = seed;
      UpfrontPartitioner p(schema2, opts);
      tree = std::move(p.Build(sample, store)).ValueOrDie();
    }
    ADB_CHECK_OK(LoadRecords(records, tree, store));
    for (BlockId b : tree.Leaves()) cluster.PlaceBlock(b);
    trees->Add(join_partitioned ? 0 : kUpfrontTree, std::move(tree));
  }

  std::vector<TableContext> Contexts() {
    return {TableContext{"r", &schema2, &r_store, &r_trees, r_trees.Snapshot()},
            TableContext{"s", &schema2, &s_store, &s_trees, s_trees.Snapshot()},
            TableContext{"d", &schema2, &d_store, &d_trees, d_trees.Snapshot()}};
  }

  int64_t OracleJoinCount() const {
    std::unordered_map<int64_t, int64_t> s_keys;
    for (const Record& rec : s_records) ++s_keys[rec[0].AsInt64()];
    int64_t n = 0;
    for (const Record& rec : r_records) {
      auto it = s_keys.find(rec[0].AsInt64());
      if (it != s_keys.end()) n += it->second;
    }
    return n;
  }
};

Query TwoTableJoin() {
  Query q;
  q.name = "rj";
  q.tables = {{"r", {}}, {"s", {}}};
  q.joins = {{"r", 0, "s", 0}};
  return q;
}

TEST(PlannerTest, SelectionOnlyQueryScans) {
  PlannerFixture f(false);
  JoinPlanner planner(PlannerConfig{});
  Query q;
  q.name = "scan";
  q.tables = {{"r", {Predicate(1, CompareOp::kLt, 50)}}};
  auto run = planner.Execute(q, f.Contexts(), f.cluster);
  ASSERT_TRUE(run.ok());
  int64_t expect = 0;
  for (const Record& rec : f.r_records) {
    if (rec[1].AsInt64() < 50) ++expect;
  }
  EXPECT_EQ(run.ValueOrDie().output_rows, expect);
  EXPECT_GT(run.ValueOrDie().blocks_scanned, 0);
  // Partitioned on attr 1: the scan must prune some blocks.
  EXPECT_LT(run.ValueOrDie().blocks_scanned,
            static_cast<int64_t>(f.r_store.num_blocks()));
}

TEST(PlannerTest, ChoosesHyperJoinWhenCoPartitioned) {
  PlannerFixture f(true);
  JoinPlanner planner(PlannerConfig{});
  auto run = planner.Execute(TwoTableJoin(), f.Contexts(), f.cluster);
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run.ValueOrDie().edges.size(), 1u);
  EXPECT_TRUE(run.ValueOrDie().edges[0].used_hyper);
  EXPECT_EQ(run.ValueOrDie().output_rows, f.OracleJoinCount());
  EXPECT_EQ(run.ValueOrDie().io.shuffled_blocks, 0);
}

TEST(PlannerTest, FallsBackToShuffleWhenNotJoinPartitioned) {
  PlannerFixture f(false);
  // A memory budget far below |R| (the paper's regime): with dense overlap
  // vectors, hyper-join would re-read S once per group and must lose.
  PlannerConfig small_budget;
  small_budget.memory_budget_blocks = 2;
  JoinPlanner planner(small_budget);
  auto run = planner.Execute(TwoTableJoin(), f.Contexts(), f.cluster);
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run.ValueOrDie().edges[0].used_hyper);
  EXPECT_EQ(run.ValueOrDie().output_rows, f.OracleJoinCount());
  EXPECT_GT(run.ValueOrDie().io.shuffled_blocks, 0);
}

TEST(PlannerTest, ForcedStrategiesOverrideCostModel) {
  PlannerFixture f(true);
  PlannerConfig cfg;
  cfg.strategy = PlannerConfig::Strategy::kForceShuffle;
  JoinPlanner planner(cfg);
  auto run = planner.Execute(TwoTableJoin(), f.Contexts(), f.cluster);
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run.ValueOrDie().edges[0].used_hyper);
  EXPECT_EQ(run.ValueOrDie().output_rows, f.OracleJoinCount());

  PlannerFixture g(false);
  cfg.strategy = PlannerConfig::Strategy::kForceHyper;
  JoinPlanner forced(cfg);
  auto run2 = forced.Execute(TwoTableJoin(), g.Contexts(), g.cluster);
  ASSERT_TRUE(run2.ok());
  EXPECT_TRUE(run2.ValueOrDie().edges[0].used_hyper);
  EXPECT_EQ(run2.ValueOrDie().output_rows, g.OracleJoinCount());
}

TEST(PlannerTest, HyperCostsLessThanShuffleWhenCoPartitioned) {
  PlannerFixture f(true);
  JoinPlanner planner(PlannerConfig{});
  auto hyper = planner.Execute(TwoTableJoin(), f.Contexts(), f.cluster);
  ASSERT_TRUE(hyper.ok());
  planner.mutable_config()->strategy = PlannerConfig::Strategy::kForceShuffle;
  auto shuffle = planner.Execute(TwoTableJoin(), f.Contexts(), f.cluster);
  ASSERT_TRUE(shuffle.ok());
  const double hyper_s = f.cluster.SimulatedSeconds(hyper.ValueOrDie().io);
  const double shuffle_s = f.cluster.SimulatedSeconds(shuffle.ValueOrDie().io);
  EXPECT_LT(hyper_s, shuffle_s);
}

TEST(PlannerTest, IgnorePartitioningReadsEverything) {
  PlannerFixture f(false);
  PlannerConfig cfg;
  cfg.ignore_partitioning = true;
  cfg.strategy = PlannerConfig::Strategy::kForceShuffle;
  JoinPlanner planner(cfg);
  Query q;
  q.tables = {{"r", {Predicate(1, CompareOp::kLt, 5)}}};
  auto run = planner.Execute(q, f.Contexts(), f.cluster);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.ValueOrDie().blocks_scanned,
            static_cast<int64_t>(f.r_store.num_blocks()));
}

TEST(PlannerTest, MultiJoinMatchesOracle) {
  PlannerFixture f(true);
  JoinPlanner planner(PlannerConfig{});
  Query q;
  q.name = "three";
  q.tables = {{"r", {}}, {"s", {}}, {"d", {}}};
  q.joins = {{"r", 0, "s", 0}, {"s", 1, "d", 0}};
  auto run = planner.Execute(q, f.Contexts(), f.cluster);
  ASSERT_TRUE(run.ok());
  // Oracle: r ⋈ s on key, then s.val ⋈ d.key.
  std::unordered_map<int64_t, int64_t> d_keys;
  for (const Record& rec : f.d_records) ++d_keys[rec[0].AsInt64()];
  std::unordered_map<int64_t, std::vector<int64_t>> s_by_key;
  for (const Record& rec : f.s_records) {
    s_by_key[rec[0].AsInt64()].push_back(rec[1].AsInt64());
  }
  int64_t expect = 0;
  for (const Record& rec : f.r_records) {
    auto it = s_by_key.find(rec[0].AsInt64());
    if (it == s_by_key.end()) continue;
    for (int64_t sval : it->second) {
      auto dit = d_keys.find(sval);
      if (dit != d_keys.end()) expect += dit->second;
    }
  }
  EXPECT_EQ(run.ValueOrDie().output_rows, expect);
  EXPECT_EQ(run.ValueOrDie().edges.size(), 2u);
}

TEST(PlannerTest, BushyPlanMatchesLeftDeepPlan) {
  // §4.3: (r ⋈ s) ⋈ (d ⋈ e) must produce the same result as the left-deep
  // r ⋈ s ⋈ d ⋈ e order.
  PlannerFixture f(true);
  // A fourth table e(key, grp) joining d on key.
  Schema e_schema = f.schema2;
  MemBlockStore e_store(2);
  TreeSet e_trees;
  std::vector<Record> e_records;
  Rng rng(77);
  for (int i = 0; i < 80; ++i) {
    e_records.push_back(
        {Value(rng.UniformRange(0, 99)), Value(rng.UniformRange(0, 9))});
  }
  {
    Reservoir sample(200, 9);
    sample.AddAll(e_records);
    UpfrontOptions opts;
    opts.num_levels = 3;
    UpfrontPartitioner p(e_schema, opts);
    PartitionTree tree = std::move(p.Build(sample, &e_store)).ValueOrDie();
    ADB_CHECK_OK(LoadRecords(e_records, tree, &e_store));
    for (BlockId b : tree.Leaves()) f.cluster.PlaceBlock(b);
    e_trees.Add(kUpfrontTree, std::move(tree));
  }
  auto contexts = f.Contexts();
  contexts.push_back(TableContext{"e", &e_schema, &e_store, &e_trees, e_trees.Snapshot()});

  Query bushy;
  bushy.name = "bushy";
  bushy.tables = {{"r", {}}, {"s", {}}, {"d", {}}, {"e", {}}};
  bushy.joins = {{"r", 0, "s", 0},   // Fragment 1.
                 {"d", 0, "e", 0},   // Fragment 2.
                 {"r", 1, "d", 0}};  // Bushy merge on r.val = d.key.
  Query left_deep = bushy;
  left_deep.name = "left_deep";
  left_deep.joins = {{"r", 0, "s", 0}, {"r", 1, "d", 0}, {"d", 0, "e", 0}};

  JoinPlanner planner(PlannerConfig{});
  auto b = planner.Execute(bushy, contexts, f.cluster);
  auto l = planner.Execute(left_deep, contexts, f.cluster);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_TRUE(l.ok()) << l.status().ToString();
  EXPECT_EQ(b.ValueOrDie().output_rows, l.ValueOrDie().output_rows);
  EXPECT_EQ(b.ValueOrDie().checksum, l.ValueOrDie().checksum);
  EXPECT_GT(b.ValueOrDie().output_rows, 0);
  EXPECT_EQ(b.ValueOrDie().edges.size(), 3u);
}

TEST(PlannerTest, LeftoverFragmentsAreRejected) {
  PlannerFixture f(true);
  JoinPlanner planner(PlannerConfig{});
  Query q;
  q.tables = {{"r", {}}, {"s", {}}, {"d", {}}};
  // r ⋈ s leaves d's self-join fragment disconnected.
  q.joins = {{"r", 0, "s", 0}, {"d", 0, "d", 0}};
  auto run = planner.Execute(q, f.Contexts(), f.cluster);
  EXPECT_FALSE(run.ok());
}

TEST(PlannerTest, DisconnectedEdgeIsRejected) {
  PlannerFixture f(true);
  JoinPlanner planner(PlannerConfig{});
  Query q;
  q.tables = {{"r", {}}, {"s", {}}, {"d", {}}};
  // Second edge references tables not in the running intermediate.
  q.joins = {{"r", 0, "s", 0}, {"d", 0, "d", 0}};
  EXPECT_FALSE(planner.Execute(q, f.Contexts(), f.cluster).ok());
}

TEST(PlannerTest, UnknownTableIsRejected) {
  PlannerFixture f(true);
  JoinPlanner planner(PlannerConfig{});
  Query q;
  q.tables = {{"nope", {}}};
  EXPECT_FALSE(planner.Execute(q, f.Contexts(), f.cluster).ok());
}

TEST(PlannerTest, ChoiceReportsCostsAndCHyJ) {
  PlannerFixture f(true);
  JoinPlanner planner(PlannerConfig{});
  auto run = planner.Execute(TwoTableJoin(), f.Contexts(), f.cluster);
  ASSERT_TRUE(run.ok());
  const JoinChoice& c = run.ValueOrDie().edges[0].choice;
  EXPECT_GT(c.cost_shuffle, 0);
  EXPECT_GT(c.cost_hyper, 0);
  EXPECT_GE(c.c_hyj, 1.0);
  EXPECT_LT(c.c_hyj, 3.0);  // Two-phase partitioning keeps overlap low.
}

}  // namespace
}  // namespace adaptdb
