// Tests for schema/: Value ordering, ValueRange, Schema, predicates.

#include <gtest/gtest.h>

#include "schema/predicate.h"
#include "schema/schema.h"
#include "schema/value.h"

namespace adaptdb {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value(int64_t{5}).type(), DataType::kInt64);
  EXPECT_EQ(Value(5).type(), DataType::kInt64);
  EXPECT_EQ(Value(2.5).type(), DataType::kDouble);
  EXPECT_EQ(Value("abc").type(), DataType::kString);
  EXPECT_EQ(Value(int64_t{7}).AsInt64(), 7);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("xy").AsString(), "xy");
}

TEST(ValueTest, IntOrderIsTotalAndStrict) {
  EXPECT_TRUE(Value(1) < Value(2));
  EXPECT_FALSE(Value(2) < Value(1));
  EXPECT_FALSE(Value(2) < Value(2));
  EXPECT_TRUE(Value(2) <= Value(2));
  EXPECT_TRUE(Value(3) > Value(2));
  EXPECT_TRUE(Value(3) >= Value(3));
}

TEST(ValueTest, MixedNumericComparison) {
  EXPECT_TRUE(Value(1) < Value(1.5));
  EXPECT_TRUE(Value(1.5) < Value(2));
  EXPECT_FALSE(Value(int64_t{2}) == Value(2.0));  // Distinct types.
}

TEST(ValueTest, StringOrder) {
  EXPECT_TRUE(Value("apple") < Value("banana"));
  EXPECT_TRUE(Value("a") <= Value("a"));
  EXPECT_EQ(Value("a"), Value("a"));
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "\"hi\"");
}

TEST(ValueRangeTest, OverlapsIsSymmetricAndTight) {
  ValueRange a{Value(0), Value(100)};
  ValueRange b{Value(100), Value(200)};  // Touching endpoints overlap.
  ValueRange c{Value(101), Value(200)};
  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_TRUE(b.Overlaps(a));
  EXPECT_FALSE(a.Overlaps(c));
  EXPECT_FALSE(c.Overlaps(a));
}

TEST(ValueRangeTest, PaperFig4Overlaps) {
  // R blocks [0,100),[100,200),[200,300),[300,400) vs
  // S blocks [0,150),[150,250),[250,350),[350,400) as closed ranges on the
  // generated data (open upper bounds become the max value present).
  ValueRange r1{Value(0), Value(99)};
  ValueRange r2{Value(100), Value(199)};
  ValueRange s1{Value(0), Value(149)};
  ValueRange s2{Value(150), Value(249)};
  EXPECT_TRUE(r1.Overlaps(s1));
  EXPECT_FALSE(r1.Overlaps(s2));
  EXPECT_TRUE(r2.Overlaps(s1));
  EXPECT_TRUE(r2.Overlaps(s2));
}

TEST(ValueRangeTest, ContainsAndExtend) {
  ValueRange r{Value(10), Value(20)};
  EXPECT_TRUE(r.Contains(Value(10)));
  EXPECT_TRUE(r.Contains(Value(20)));
  EXPECT_FALSE(r.Contains(Value(9)));
  r.Extend(Value(5));
  EXPECT_TRUE(r.Contains(Value(5)));
  r.ExtendRange(ValueRange{Value(30), Value(40)});
  EXPECT_TRUE(r.Contains(Value(35)));
}

Schema TestSchema() {
  return Schema({{"id", DataType::kInt64, 8},
                 {"price", DataType::kDouble, 8},
                 {"name", DataType::kString, 16}});
}

TEST(SchemaTest, FieldsAndWidth) {
  Schema s = TestSchema();
  EXPECT_EQ(s.num_attrs(), 3);
  EXPECT_EQ(s.field(0).name, "id");
  EXPECT_EQ(s.RecordWidth(), 32);
}

TEST(SchemaTest, AttrByName) {
  Schema s = TestSchema();
  EXPECT_EQ(s.AttrByName("price").ValueOrDie(), 1);
  EXPECT_FALSE(s.AttrByName("nope").ok());
}

TEST(SchemaTest, ValidateRecord) {
  Schema s = TestSchema();
  EXPECT_TRUE(s.ValidateRecord({Value(1), Value(2.0), Value("x")}).ok());
  EXPECT_FALSE(s.ValidateRecord({Value(1), Value(2.0)}).ok());  // Arity.
  EXPECT_FALSE(
      s.ValidateRecord({Value(1), Value(2), Value("x")}).ok());  // Type.
}

TEST(PredicateTest, MatchesAllOps) {
  EXPECT_TRUE(Predicate(0, CompareOp::kLt, 5).Matches(Value(4)));
  EXPECT_FALSE(Predicate(0, CompareOp::kLt, 5).Matches(Value(5)));
  EXPECT_TRUE(Predicate(0, CompareOp::kLe, 5).Matches(Value(5)));
  EXPECT_TRUE(Predicate(0, CompareOp::kGt, 5).Matches(Value(6)));
  EXPECT_FALSE(Predicate(0, CompareOp::kGt, 5).Matches(Value(5)));
  EXPECT_TRUE(Predicate(0, CompareOp::kGe, 5).Matches(Value(5)));
  EXPECT_TRUE(Predicate(0, CompareOp::kEq, 5).Matches(Value(5)));
  EXPECT_FALSE(Predicate(0, CompareOp::kEq, 5).Matches(Value(6)));
  EXPECT_TRUE(Predicate(0, CompareOp::kNeq, 5).Matches(Value(6)));
  EXPECT_FALSE(Predicate(0, CompareOp::kNeq, 5).Matches(Value(5)));
}

TEST(PredicateTest, AdmitsRangeBoundaries) {
  const ValueRange r{Value(10), Value(20)};
  EXPECT_TRUE(Predicate(0, CompareOp::kLt, 11).AdmitsRange(r));
  EXPECT_FALSE(Predicate(0, CompareOp::kLt, 10).AdmitsRange(r));
  EXPECT_TRUE(Predicate(0, CompareOp::kLe, 10).AdmitsRange(r));
  EXPECT_TRUE(Predicate(0, CompareOp::kGt, 19).AdmitsRange(r));
  EXPECT_FALSE(Predicate(0, CompareOp::kGt, 20).AdmitsRange(r));
  EXPECT_TRUE(Predicate(0, CompareOp::kGe, 20).AdmitsRange(r));
  EXPECT_TRUE(Predicate(0, CompareOp::kEq, 15).AdmitsRange(r));
  EXPECT_FALSE(Predicate(0, CompareOp::kEq, 21).AdmitsRange(r));
  EXPECT_TRUE(Predicate(0, CompareOp::kNeq, 15).AdmitsRange(r));
  const ValueRange point{Value(5), Value(5)};
  EXPECT_FALSE(Predicate(0, CompareOp::kNeq, 5).AdmitsRange(point));
}

TEST(PredicateTest, TreeBranchPruning) {
  // Split: attr <= 10 goes left, > 10 goes right.
  const Value cut(10);
  EXPECT_TRUE(Predicate(0, CompareOp::kLt, 5).CanMatchLeft(cut));
  EXPECT_FALSE(Predicate(0, CompareOp::kLt, 5).CanMatchRight(cut));
  EXPECT_FALSE(Predicate(0, CompareOp::kLt, 10).CanMatchRight(cut));
  EXPECT_TRUE(Predicate(0, CompareOp::kLe, 11).CanMatchRight(cut));
  EXPECT_FALSE(Predicate(0, CompareOp::kGt, 10).CanMatchLeft(cut));
  EXPECT_TRUE(Predicate(0, CompareOp::kGt, 9).CanMatchLeft(cut));
  EXPECT_TRUE(Predicate(0, CompareOp::kGe, 10).CanMatchLeft(cut));
  EXPECT_FALSE(Predicate(0, CompareOp::kGe, 11).CanMatchLeft(cut));
  EXPECT_TRUE(Predicate(0, CompareOp::kEq, 10).CanMatchLeft(cut));
  EXPECT_FALSE(Predicate(0, CompareOp::kEq, 10).CanMatchRight(cut));
  EXPECT_TRUE(Predicate(0, CompareOp::kEq, 11).CanMatchRight(cut));
  EXPECT_TRUE(Predicate(0, CompareOp::kNeq, 10).CanMatchLeft(cut));
  EXPECT_TRUE(Predicate(0, CompareOp::kNeq, 10).CanMatchRight(cut));
}

TEST(PredicateTest, MatchesAllConjunction) {
  PredicateSet preds = {Predicate(0, CompareOp::kGe, 5),
                        Predicate(0, CompareOp::kLt, 10)};
  EXPECT_TRUE(MatchesAll(preds, {Value(7)}));
  EXPECT_FALSE(MatchesAll(preds, {Value(4)}));
  EXPECT_FALSE(MatchesAll(preds, {Value(10)}));
  EXPECT_TRUE(MatchesAll({}, {Value(1)}));  // Empty set matches everything.
}

TEST(PredicateTest, RangesAdmitConjunction) {
  std::vector<ValueRange> ranges = {{Value(0), Value(100)},
                                    {Value(50), Value(60)}};
  EXPECT_TRUE(RangesAdmit({Predicate(1, CompareOp::kGe, 55)}, ranges));
  EXPECT_FALSE(RangesAdmit({Predicate(1, CompareOp::kGt, 60)}, ranges));
  EXPECT_FALSE(RangesAdmit({Predicate(0, CompareOp::kLt, 50),
                            Predicate(1, CompareOp::kGt, 60)},
                           ranges));
}

TEST(PredicateTest, ToStringRendering) {
  EXPECT_EQ(Predicate(3, CompareOp::kLe, 42).ToString(), "a3 <= 42");
  EXPECT_EQ(PredicateSetToString({}), "TRUE");
  EXPECT_EQ(PredicateSetToString({Predicate(0, CompareOp::kEq, 1),
                                  Predicate(1, CompareOp::kGt, 2)}),
            "a0 = 1 AND a1 > 2");
}

// Property: AdmitsRange is conservative — if any value in a range matches,
// AdmitsRange must be true (checked over a dense grid).
class AdmitsRangeProperty : public ::testing::TestWithParam<CompareOp> {};

TEST_P(AdmitsRangeProperty, NeverPrunesAMatch) {
  const CompareOp op = GetParam();
  for (int64_t pv = 0; pv <= 12; ++pv) {
    const Predicate pred(0, op, Value(pv));
    for (int64_t lo = 0; lo <= 12; ++lo) {
      for (int64_t hi = lo; hi <= 12; ++hi) {
        bool any_match = false;
        for (int64_t v = lo; v <= hi; ++v) any_match |= pred.Matches(Value(v));
        const ValueRange r{Value(lo), Value(hi)};
        if (any_match) {
          EXPECT_TRUE(pred.AdmitsRange(r))
              << pred.ToString() << " range [" << lo << "," << hi << "]";
        }
      }
    }
  }
}

// Property: branch pruning is conservative w.r.t. routing: a value that
// matches and routes left implies CanMatchLeft (resp. right).
TEST_P(AdmitsRangeProperty, BranchPruningConservative) {
  const CompareOp op = GetParam();
  for (int64_t pv = 0; pv <= 10; ++pv) {
    const Predicate pred(0, op, Value(pv));
    for (int64_t cut = 0; cut <= 10; ++cut) {
      bool left_match = false, right_match = false;
      for (int64_t v = -2; v <= 13; ++v) {
        if (!pred.Matches(Value(v))) continue;
        (v <= cut ? left_match : right_match) = true;
      }
      if (left_match) {
        EXPECT_TRUE(pred.CanMatchLeft(Value(cut)));
      }
      if (right_match) {
        EXPECT_TRUE(pred.CanMatchRight(Value(cut)));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, AdmitsRangeProperty,
                         ::testing::Values(CompareOp::kLt, CompareOp::kLe,
                                           CompareOp::kGt, CompareOp::kGe,
                                           CompareOp::kEq, CompareOp::kNeq));

}  // namespace
}  // namespace adaptdb
