// Tests for sample/: reservoir sampling and quantiles.

#include <gtest/gtest.h>

#include "sample/reservoir.h"

namespace adaptdb {
namespace {

Record Rec(int64_t a, int64_t b = 0) { return {Value(a), Value(b)}; }

TEST(ReservoirTest, KeepsEverythingUnderCapacity) {
  Reservoir r(10);
  for (int64_t i = 0; i < 5; ++i) r.Add(Rec(i));
  EXPECT_EQ(r.records().size(), 5u);
  EXPECT_EQ(r.seen(), 5u);
}

TEST(ReservoirTest, CapsAtCapacity) {
  Reservoir r(10);
  for (int64_t i = 0; i < 1000; ++i) r.Add(Rec(i));
  EXPECT_EQ(r.records().size(), 10u);
  EXPECT_EQ(r.seen(), 1000u);
}

TEST(ReservoirTest, SampleIsRoughlyUniform) {
  // Mean of a uniform sample over [0, 9999] should be near 5000.
  Reservoir r(500, 21);
  for (int64_t i = 0; i < 10000; ++i) r.Add(Rec(i));
  double sum = 0;
  for (const Record& rec : r.records()) {
    sum += static_cast<double>(rec[0].AsInt64());
  }
  EXPECT_NEAR(sum / 500.0, 5000.0, 700.0);
}

TEST(ReservoirTest, SortedAttrIsSorted) {
  Reservoir r(100, 3);
  for (int64_t i = 0; i < 50; ++i) r.Add(Rec(50 - i));
  auto vals = r.SortedAttr(0);
  ASSERT_EQ(vals.size(), 50u);
  for (size_t i = 1; i < vals.size(); ++i) {
    EXPECT_TRUE(vals[i - 1] <= vals[i]);
  }
}

TEST(ReservoirTest, MedianOfSmallSample) {
  Reservoir r(100);
  for (int64_t v : {1, 2, 3, 4, 100}) r.Add(Rec(v));
  EXPECT_EQ(r.Median(0).AsInt64(), 3);
}

TEST(ReservoirTest, MedianResistsSkew) {
  // 90% of values are 1, 10% spread out: median must be 1, not the mean.
  Reservoir r(1000, 5);
  for (int64_t i = 0; i < 900; ++i) r.Add(Rec(1));
  for (int64_t i = 0; i < 100; ++i) r.Add(Rec(1000 + i));
  EXPECT_EQ(r.Median(0).AsInt64(), 1);
}

TEST(ReservoirTest, QuantileEndpoints) {
  Reservoir r(100);
  for (int64_t i = 0; i < 100; ++i) r.Add(Rec(i));
  EXPECT_EQ(r.Quantile(0, 0.0).AsInt64(), 0);
  EXPECT_EQ(r.Quantile(0, 1.0).AsInt64(), 99);
  EXPECT_NEAR(static_cast<double>(r.Quantile(0, 0.25).AsInt64()), 25.0, 2.0);
}

TEST(ReservoirTest, QuantileOnEmptySampleIsZero) {
  Reservoir r(10);
  EXPECT_EQ(r.Median(0).AsInt64(), 0);
}

TEST(ReservoirTest, ConditionalMedianRespectsPredicates) {
  Reservoir r(1000);
  for (int64_t i = 0; i < 100; ++i) r.Add(Rec(i, i % 2));
  // Median of attr 0 restricted to records with attr1 == 0 (even values).
  const Value med =
      r.ConditionalMedian(0, {Predicate(1, CompareOp::kEq, int64_t{0})});
  EXPECT_EQ(med.AsInt64() % 2, 0);
}

TEST(ReservoirTest, ConditionalMedianFallsBackWhenEmpty) {
  Reservoir r(100);
  for (int64_t i = 0; i < 100; ++i) r.Add(Rec(i, 0));
  const Value med =
      r.ConditionalMedian(0, {Predicate(1, CompareOp::kEq, int64_t{7})});
  EXPECT_EQ(med, r.Median(0));
}

TEST(ReservoirTest, SameSeedReproducesSample) {
  Reservoir a(50, 9), b(50, 9);
  for (int64_t i = 0; i < 5000; ++i) {
    a.Add(Rec(i));
    b.Add(Rec(i));
  }
  ASSERT_EQ(a.records().size(), b.records().size());
  for (size_t i = 0; i < a.records().size(); ++i) {
    EXPECT_EQ(a.records()[i], b.records()[i]);
  }
}

TEST(ReservoirTest, SampleValuesComeFromThePopulation) {
  Reservoir r(64, 11);
  for (int64_t i = 0; i < 4000; ++i) r.Add(Rec(i * 3));  // Multiples of 3.
  for (const Record& rec : r.records()) {
    const int64_t v = rec[0].AsInt64();
    EXPECT_EQ(v % 3, 0);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 12000);
  }
}

TEST(ReservoirTest, QuantilesAreMonotoneAndBracketedByMinMax) {
  Reservoir r(400, 13);
  for (int64_t i = 0; i < 20000; ++i) r.Add(Rec(i));
  Value prev = r.Quantile(0, 0.0);
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    const Value cur = r.Quantile(0, q);
    EXPECT_LE(prev, cur) << "quantile " << q;
    prev = cur;
  }
  EXPECT_EQ(r.Quantile(0, 0.5), r.Median(0));
}

TEST(ReservoirTest, BucketOccupancyIsBalancedUnderFixedSeed) {
  // 500 samples from [0, 10000) split into 10 equal buckets: each bucket
  // expects 50; allow a generous +/- 60% band so the test stays stable
  // across any correct sampler while still catching gross bias.
  Reservoir r(500, 17);
  for (int64_t i = 0; i < 10000; ++i) r.Add(Rec(i));
  int buckets[10] = {0};
  for (const Record& rec : r.records()) {
    ++buckets[rec[0].AsInt64() / 1000];
  }
  for (int b = 0; b < 10; ++b) {
    EXPECT_GE(buckets[b], 20) << "bucket " << b;
    EXPECT_LE(buckets[b], 80) << "bucket " << b;
  }
}

TEST(EquiDepthCutsTest, SplitsIntoNearEqualRuns) {
  std::vector<Value> sorted;
  for (int64_t i = 0; i < 100; ++i) sorted.push_back(Value(i));
  auto cuts = EquiDepthCuts(sorted, 3);
  ASSERT_EQ(cuts.size(), 3u);
  EXPECT_EQ(cuts[0].AsInt64(), 25);
  EXPECT_EQ(cuts[1].AsInt64(), 50);
  EXPECT_EQ(cuts[2].AsInt64(), 75);
}

TEST(EquiDepthCutsTest, EmptyAndDegenerateInputs) {
  EXPECT_TRUE(EquiDepthCuts({}, 3).empty());
  EXPECT_TRUE(EquiDepthCuts({Value(1)}, 0).empty());
  auto cuts = EquiDepthCuts({Value(5)}, 2);
  ASSERT_EQ(cuts.size(), 2u);
  EXPECT_EQ(cuts[0].AsInt64(), 5);
}

}  // namespace
}  // namespace adaptdb
