// Concurrent query serving: N client threads against one Database must
// produce exactly the results of a serial replay (JoinCounts checksums are
// order-independent, so results are layout- and schedule-invariant), with
// adaptation, ingest and config toggles running underneath. These tests are
// the TSan regression suite for the epoch-versioned tree snapshots, the
// shared worker pool and the per-table reader-writer locks.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/query_scheduler.h"
#include "testing_util.h"
#include "workload/cmt.h"

namespace adaptdb {
namespace {

Schema TwoColSchema() {
  return Schema({{"key", DataType::kInt64, 8}, {"val", DataType::kInt64, 8}});
}

std::vector<Record> TwoColRecords(size_t n, int64_t key_range, uint64_t seed) {
  Rng rng(seed);
  std::vector<Record> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back({Value(rng.UniformRange(0, key_range - 1)),
                   Value(rng.UniformRange(0, 999))});
  }
  return out;
}

/// Loads the small CMT dataset into `db` the way the fig18 harness does.
void LoadCmt(Database* db, const cmt::CmtData& data) {
  TableOptions trips;
  trips.upfront_levels = 4;
  ASSERT_TRUE(
      db->CreateTable("trips", data.trips_schema, data.trips, trips).ok());
  TableOptions hist;
  hist.upfront_levels = 4;
  ASSERT_TRUE(
      db->CreateTable("history", data.history_schema, data.history, hist)
          .ok());
  TableOptions latest;
  latest.upfront_levels = 3;
  ASSERT_TRUE(
      db->CreateTable("latest", data.latest_schema, data.latest, latest).ok());
}

struct QueryOutcome {
  int64_t output_rows = 0;
  uint64_t checksum = 0;
  bool ok = false;
};

/// Runs `trace` with `clients` threads claiming queries by atomic index;
/// outcome i always lands in slot i regardless of which thread ran it.
std::vector<QueryOutcome> RunConcurrently(Database* db,
                                          const std::vector<Query>& trace,
                                          int clients) {
  std::vector<QueryOutcome> outcomes(trace.size());
  std::atomic<size_t> next{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= trace.size()) return;
        auto run = db->RunQuery(trace[i]);
        if (run.ok()) {
          outcomes[i].output_rows = run.ValueOrDie().output_rows;
          outcomes[i].checksum = run.ValueOrDie().checksum;
          outcomes[i].ok = true;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  return outcomes;
}

// The tentpole acceptance check at test scale: 8 client threads over the
// CMT trace with adaptation enabled produce, query for query, the same row
// counts and checksums as a serial replay on an identically built Database
// — even though the two runs adapt in different orders and end up with
// different physical layouts.
TEST(ConcurrentServingTest, MatchesSerialReplay) {
  cmt::CmtConfig cfg;
  cfg.num_trips = 1500;
  const cmt::CmtData data = cmt::GenerateCmt(cfg);
  std::vector<Query> trace = cmt::MakeTrace(data, 18);
  trace.resize(std::min<size_t>(trace.size(), 48));

  DatabaseOptions options;
  options.planner.exec.num_threads = 2;  // Exercise the shared pool.
  Database serial_db(options);
  LoadCmt(&serial_db, data);
  std::vector<QueryOutcome> serial;
  for (const Query& q : trace) {
    auto run = serial_db.RunQuery(q);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    serial.push_back({run.ValueOrDie().output_rows,
                      run.ValueOrDie().checksum, true});
  }

  Database db(options);
  LoadCmt(&db, data);
  const std::vector<QueryOutcome> concurrent = RunConcurrently(&db, trace, 8);

  for (size_t i = 0; i < trace.size(); ++i) {
    ASSERT_TRUE(concurrent[i].ok) << "query " << i << " failed";
    EXPECT_EQ(concurrent[i].output_rows, serial[i].output_rows)
        << "query " << i << " (" << trace[i].name << ")";
    EXPECT_EQ(concurrent[i].checksum, serial[i].checksum)
        << "query " << i << " (" << trace[i].name << ")";
  }

  const DatabaseStats stats = db.Stats();
  EXPECT_EQ(stats.queries_started, static_cast<int64_t>(trace.size()));
  EXPECT_EQ(stats.queries_finished, static_cast<int64_t>(trace.size()));
  EXPECT_EQ(stats.queries_failed, 0);
  EXPECT_EQ(stats.queries_in_flight, 0);
  EXPECT_EQ(stats.queue_depth, 0);
  EXPECT_EQ(stats.latency_samples, static_cast<int64_t>(trace.size()));
  EXPECT_GT(stats.tree_epoch_sum, 0u);  // Adaptation installed new versions.
}

// Ingest runs concurrently with queries: each append takes the table's
// writer lock, so a full-count query observes none or all of a batch —
// per-thread counts are non-decreasing — and after quiescing the count is
// exactly base + appended.
TEST(ConcurrentServingTest, IngestDuringQueries) {
  constexpr int64_t kBase = 2000;
  constexpr int kBatches = 20;
  constexpr int64_t kBatchRows = 50;

  Database db;
  TableOptions opts;
  opts.upfront_levels = 3;
  ASSERT_TRUE(
      db.CreateTable("t", TwoColSchema(), TwoColRecords(kBase, 100, 21), opts)
          .ok());

  Query count_all;
  count_all.name = "count";
  count_all.tables = {{"t", {Predicate(0, CompareOp::kGe, 0)}}};

  std::atomic<bool> failed{false};
  std::thread ingester([&] {
    for (int b = 0; b < kBatches; ++b) {
      auto batch = TwoColRecords(kBatchRows, 100, 100 + static_cast<uint64_t>(b));
      if (!db.AppendRows("t", batch).ok()) failed = true;
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      int64_t last = 0;
      for (int i = 0; i < 30; ++i) {
        auto run = db.RunQuery(count_all);
        if (!run.ok()) {
          failed = true;
          return;
        }
        const int64_t rows = run.ValueOrDie().output_rows;
        // Batch atomicity: counts only grow, by whole batches.
        if (rows < last || (rows - kBase) % kBatchRows != 0) failed = true;
        last = rows;
      }
    });
  }
  ingester.join();
  for (auto& t : readers) t.join();
  EXPECT_FALSE(failed);

  auto final_run = db.RunQuery(count_all);
  ASSERT_TRUE(final_run.ok());
  EXPECT_EQ(final_run.ValueOrDie().output_rows,
            kBase + kBatches * kBatchRows);
}

// Regression for the pool-rewiring race: multi-threaded execution config
// plus concurrent clients used to recreate the TaskPool mid-flight while
// peers held the old pointer. The pool is now created once and multiplexed;
// under TSan this test fails on the old code.
TEST(ConcurrentServingTest, SharedPoolManyClients) {
  DatabaseOptions options;
  options.planner.exec.num_threads = 3;
  Database db(options);
  TableOptions opts;
  opts.upfront_levels = 4;
  ASSERT_TRUE(
      db.CreateTable("r", TwoColSchema(), TwoColRecords(3000, 1000, 31), opts)
          .ok());
  ASSERT_TRUE(
      db.CreateTable("s", TwoColSchema(), TwoColRecords(1500, 1000, 32), opts)
          .ok());

  Query join;
  join.name = "join";
  join.tables = {{"r", {Predicate(1, CompareOp::kLt, 700)}}, {"s", {}}};
  join.joins = {{"r", 0, "s", 0}};
  std::vector<Query> trace(24, join);

  const auto outcomes = RunConcurrently(&db, trace, 6);
  for (size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok) << "query " << i;
    EXPECT_EQ(outcomes[i].output_rows, outcomes[0].output_rows);
    EXPECT_EQ(outcomes[i].checksum, outcomes[0].checksum);
  }
  EXPECT_EQ(db.Stats().pool_threads, 3);
}

// set_adapt_enabled and SetPlannerConfig are documented safe while serving:
// togglers flip them mid-run and every query still returns the right
// answer (each query works on the config copy it took at admission).
TEST(ConcurrentServingTest, ConfigTogglesDuringServing) {
  Database db;
  TableOptions opts;
  opts.upfront_levels = 4;
  ASSERT_TRUE(
      db.CreateTable("t", TwoColSchema(), TwoColRecords(4000, 1000, 41), opts)
          .ok());

  Query sel;
  sel.name = "sel";
  sel.tables = {{"t", {Predicate(0, CompareOp::kLt, 400)}}};
  std::vector<Query> trace(40, sel);

  std::atomic<bool> done{false};
  std::thread toggler([&] {
    PlannerConfig scan_config = db.planner_config();
    scan_config.ignore_partitioning = true;
    const PlannerConfig pruned_config = db.planner_config();
    bool flip = false;
    while (!done.load()) {
      db.set_adapt_enabled(flip);
      db.SetPlannerConfig(flip ? scan_config : pruned_config);
      flip = !flip;
      std::this_thread::yield();
    }
  });
  const auto outcomes = RunConcurrently(&db, trace, 4);
  done = true;
  toggler.join();

  for (size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok) << "query " << i;
    // Full scans and pruned scans agree on the answer.
    EXPECT_EQ(outcomes[i].output_rows, outcomes[0].output_rows);
    EXPECT_EQ(outcomes[i].checksum, outcomes[0].checksum);
  }
}

// The FIFO scheduler never exceeds its cap and admits everyone.
TEST(QuerySchedulerTest, CapsInFlight) {
  QueryScheduler scheduler(2);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_seen{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      QueryScheduler::Admission slot = scheduler.Admit();
      const int now = ++in_flight;
      int prev = max_seen.load();
      while (now > prev && !max_seen.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      --in_flight;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(max_seen.load(), 2);
  EXPECT_EQ(scheduler.TotalAdmitted(), 8);
  EXPECT_EQ(scheduler.InFlight(), 0);
  EXPECT_EQ(scheduler.QueueDepth(), 0);
}

// An Admission releases its slot on destruction even when moved around.
TEST(QuerySchedulerTest, AdmissionIsRaii) {
  QueryScheduler scheduler(1);
  {
    QueryScheduler::Admission a = scheduler.Admit();
    EXPECT_EQ(scheduler.InFlight(), 1);
    QueryScheduler::Admission b = std::move(a);
    EXPECT_EQ(scheduler.InFlight(), 1);
  }
  EXPECT_EQ(scheduler.InFlight(), 0);
  // The slot is reusable after release.
  QueryScheduler::Admission c = scheduler.Admit();
  EXPECT_EQ(scheduler.InFlight(), 1);
}

// Database-level cap: queries queue FIFO inside RunQuery instead of
// overcommitting the engine.
TEST(ConcurrentServingTest, MaxConcurrentQueriesHonored) {
  DatabaseOptions options;
  options.max_concurrent_queries = 1;
  Database db(options);
  TableOptions opts;
  opts.upfront_levels = 3;
  ASSERT_TRUE(
      db.CreateTable("t", TwoColSchema(), TwoColRecords(1000, 100, 51), opts)
          .ok());
  Query sel;
  sel.name = "sel";
  sel.tables = {{"t", {Predicate(0, CompareOp::kLt, 50)}}};
  const auto outcomes = RunConcurrently(&db, std::vector<Query>(12, sel), 4);
  for (const auto& o : outcomes) ASSERT_TRUE(o.ok);
  const DatabaseStats stats = db.Stats();
  EXPECT_EQ(stats.queries_finished, 12);
  EXPECT_EQ(stats.queries_in_flight, 0);
}

// Background maintenance: with background_adapt the query path never pays
// repartitioning I/O (adapt_io stays empty), the maintenance thread still
// converges the layout, and WaitForMaintenance quiesces cleanly.
TEST(ConcurrentServingTest, BackgroundAdaptationOffQueryPath) {
  DatabaseOptions options;
  options.background_adapt = true;
  Database db(options);
  TableOptions opts;
  opts.upfront_levels = 4;
  ASSERT_TRUE(
      db.CreateTable("r", TwoColSchema(), TwoColRecords(3000, 1000, 61), opts)
          .ok());
  ASSERT_TRUE(
      db.CreateTable("s", TwoColSchema(), TwoColRecords(1500, 1000, 62), opts)
          .ok());
  Query join;
  join.name = "join";
  join.tables = {{"r", {}}, {"s", {}}};
  join.joins = {{"r", 0, "s", 0}};
  for (int i = 0; i < 6; ++i) {
    auto run = db.RunQuery(join);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run.ValueOrDie().adapt_io.TotalReads(), 0);
    EXPECT_EQ(run.ValueOrDie().records_repartitioned, 0);
  }
  ASSERT_TRUE(db.WaitForMaintenance().ok());
  const DatabaseStats stats = db.Stats();
  EXPECT_EQ(stats.maintenance_pending, 0);
  EXPECT_GT(stats.maintenance_runs, 0);
  EXPECT_EQ(stats.maintenance_failures, 0);
}

/// Forwards to an inner store but fails selected operations: the planner
/// and executor must propagate these errors instead of returning a wrong
/// (silently truncated) answer.
class FaultyStore : public BlockStore {
 public:
  explicit FaultyStore(BlockStore* inner)
      : BlockStore(inner->num_attrs()), inner_(inner) {}

  bool fail_record_count = false;
  bool fail_get = false;

  BlockId CreateBlock() override { return inner_->CreateBlock(); }
  Result<BlockRef> Get(BlockId id) const override {
    if (fail_get) return Status::Internal("injected Get fault");
    return inner_->Get(id);
  }
  Result<MutableBlockRef> GetMutable(BlockId id) override {
    return inner_->GetMutable(id);
  }
  bool Contains(BlockId id) const override { return inner_->Contains(id); }
  Result<size_t> RecordCount(BlockId id) const override {
    if (fail_record_count) return Status::Internal("injected metadata fault");
    return inner_->RecordCount(id);
  }
  bool MayMatchMeta(BlockId id, const PredicateSet& preds) const override {
    return inner_->MayMatchMeta(id, preds);
  }
  Status Delete(BlockId id) override { return inner_->Delete(id); }
  std::vector<BlockId> BlockIds() const override { return inner_->BlockIds(); }
  size_t num_blocks() const override { return inner_->num_blocks(); }
  size_t TotalRecords() const override { return inner_->TotalRecords(); }

 private:
  BlockStore* inner_;
};

// Satellite regression: a failing block-metadata or block-read call turns
// into a query error, never into a silently wrong result.
TEST(ErrorPropagationTest, StoreFaultsFailTheQuery) {
  auto fx = testing::MakeUniformBlockStore(4, 2, 71);
  FaultyStore faulty(&fx.store);
  TreeSet trees;
  Schema schema = TwoColSchema();
  std::vector<TableContext> contexts = {
      TableContext{"t", &schema, &faulty, &trees, trees.Snapshot()}};

  PlannerConfig config;
  config.ignore_partitioning = true;  // Visit every block via the store.
  JoinPlanner planner(config);

  Query sel;
  sel.name = "sel";
  sel.tables = {{"t", {Predicate(0, CompareOp::kLt, 500)}}};

  auto ok_run = planner.Execute(sel, contexts, fx.cluster);
  ASSERT_TRUE(ok_run.ok());
  ASSERT_GT(ok_run.ValueOrDie().output_rows, 0);

  faulty.fail_record_count = true;
  auto metadata_fault = planner.Execute(sel, contexts, fx.cluster);
  EXPECT_FALSE(metadata_fault.ok());

  faulty.fail_record_count = false;
  faulty.fail_get = true;
  auto read_fault = planner.Execute(sel, contexts, fx.cluster);
  EXPECT_FALSE(read_fault.ok());
}

// Tree snapshots are immutable versions: a snapshot taken before an
// adaptation step keeps answering lookups against the old tree while the
// set's current epoch moves on.
TEST(TreeSnapshotTest, OldSnapshotSurvivesDetachForWrite) {
  auto fx = testing::MakeUniformBlockStore(4, 2, 81);
  TreeSet trees;
  PartitionTree tree(0);
  trees.Add(0, std::move(tree));

  TreeSnapshotRef before = trees.Snapshot();
  const uint64_t epoch_before = before->epoch();

  // Detach-for-write: the mutable tree is a private copy; `before` still
  // points at the old version.
  auto mutable_tree = trees.Tree(0);
  ASSERT_TRUE(mutable_tree.ok());
  ASSERT_TRUE(before->Has(0));
  EXPECT_EQ(before->epoch(), epoch_before);
  EXPECT_GT(trees.epoch(), epoch_before);
  auto old_tree = before->Tree(0);
  ASSERT_TRUE(old_tree.ok());
  EXPECT_NE(old_tree.ValueOrDie(),
            static_cast<const PartitionTree*>(mutable_tree.ValueOrDie()));

  trees.Remove(0);
  EXPECT_FALSE(trees.Has(0));
  EXPECT_TRUE(before->Has(0));  // The old version is unaffected.
}

}  // namespace
}  // namespace adaptdb
