/// \file testing_util.h
/// \brief Shared fixtures for the test suites: a deterministic uniform
/// block-store builder and a cached tiny TPC-H dataset, so individual suites
/// stop hand-rolling the same setup.

#ifndef ADAPTDB_TESTS_TESTING_UTIL_H_
#define ADAPTDB_TESTS_TESTING_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "io/disk_block_store.h"
#include "schema/schema.h"
#include "storage/block_store.h"
#include "storage/cluster.h"
#include "workload/tpch.h"

namespace adaptdb::testing {

/// Creates a store through the backend factory, so ADAPTDB_STORAGE=disk
/// runs the suites against the disk-backed store unchanged. Pass an
/// explicit config to force a backend (the parity tests do).
inline std::unique_ptr<BlockStore> MakeStore(int32_t num_attrs,
                                             const StorageConfig& config = {}) {
  return std::move(MakeBlockStore(num_attrs, config)).ValueOrDie();
}

/// A BlockStore plus the block-id list and cluster placement that nearly
/// every exec/join test re-derives by hand.
struct StoreFixture {
  explicit StoreFixture(int32_t num_attrs, const StorageConfig& config = {})
      : store_owner(MakeStore(num_attrs, config)), store(*store_owner) {}

  StoreFixture(StoreFixture&&) = default;

  std::unique_ptr<BlockStore> store_owner;
  BlockStore& store;  ///< Points into store_owner; stable across moves.
  std::vector<BlockId> blocks;
  ClusterSim cluster;
};

/// Builds `n_blocks` blocks of `records_per_block` records each, every
/// attribute drawn uniformly from [0, 1000). Fully deterministic in `seed`:
/// the same arguments always produce byte-identical stores.
inline StoreFixture MakeUniformBlockStore(int32_t n_blocks, int32_t n_attrs,
                                          uint64_t seed,
                                          int32_t records_per_block = 32,
                                          const StorageConfig& config = {}) {
  StoreFixture fx(n_attrs, config);
  Rng rng(seed);
  for (int32_t b = 0; b < n_blocks; ++b) {
    const BlockId id = fx.store.CreateBlock();
    MutableBlockRef blk = fx.store.GetMutable(id).ValueOrDie();
    for (int32_t i = 0; i < records_per_block; ++i) {
      Record rec;
      rec.reserve(n_attrs);
      for (int32_t a = 0; a < n_attrs; ++a) {
        rec.push_back(Value(rng.UniformRange(0, 999)));
      }
      blk->Add(rec);
    }
    fx.blocks.push_back(id);
    fx.cluster.PlaceBlock(id);
  }
  return fx;
}

/// A small deterministic TPC-H dataset (~200 orders, ~600 lineitems),
/// generated once and shared by every suite in the binary. Cheap enough for
/// unit tests, large enough to exercise multi-block layouts.
inline const tpch::TpchData& TinyTpch() {
  static const tpch::TpchData* data = [] {
    tpch::TpchConfig cfg;
    cfg.num_orders = 200;
    cfg.avg_lines_per_order = 3;
    cfg.seed = 7;
    return new tpch::TpchData(tpch::GenerateTpch(cfg));
  }();
  return *data;
}

/// Sorts a materialized join output so two results can be compared as
/// multisets regardless of execution order.
inline std::vector<Record> SortedRecords(std::vector<Record> records) {
  std::sort(records.begin(), records.end());
  return records;
}

}  // namespace adaptdb::testing

#endif  // ADAPTDB_TESTS_TESTING_UTIL_H_
