// Tests for the parallel execution engine: TaskPool scheduling semantics
// (nested submit, exception propagation, pool-of-one == serial) and bitwise
// determinism of the parallel drivers against the serial executors at
// several thread counts.

#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "exec/hyper_join.h"
#include "exec/scan.h"
#include "exec/shuffle_join.h"
#include "join/grouping.h"
#include "join/overlap.h"
#include "parallel/task_pool.h"
#include "testing_util.h"

namespace adaptdb {
namespace {

using adaptdb::testing::MakeUniformBlockStore;
using adaptdb::testing::StoreFixture;

void ExpectSameIo(const IoStats& a, const IoStats& b) {
  EXPECT_EQ(a.local_block_reads, b.local_block_reads);
  EXPECT_EQ(a.remote_block_reads, b.remote_block_reads);
  EXPECT_EQ(a.block_writes, b.block_writes);
  EXPECT_EQ(a.shuffled_blocks, b.shuffled_blocks);
}

ExecConfig Threaded(int32_t n) {
  ExecConfig config;
  config.num_threads = n;
  return config;
}

// ---------------------------------------------------------------------------
// TaskPool

TEST(TaskPoolTest, PoolOfSizeOneMatchesSerial) {
  std::vector<int64_t> serial(100), pooled(100);
  for (int64_t i = 0; i < 100; ++i) serial[static_cast<size_t>(i)] = i * i;
  TaskPool pool(1);
  pool.ParallelFor(0, 100,
                   [&](int64_t i) { pooled[static_cast<size_t>(i)] = i * i; });
  EXPECT_EQ(serial, pooled);
}

TEST(TaskPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  constexpr int64_t kN = 5000;
  std::vector<std::atomic<int32_t>> hits(kN);
  for (auto& h : hits) h.store(0);
  TaskPool pool(8);
  pool.ParallelFor(0, kN, [&](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(TaskPoolTest, EmptyAndSingletonRanges) {
  TaskPool pool(4);
  int64_t calls = 0;
  pool.ParallelFor(5, 5, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(7, 8, [&](int64_t i) {
    EXPECT_EQ(i, 7);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

// A task that submits subtasks and waits on them must not deadlock — the
// waiting worker helps run queued tasks — even on a pool of size 1.
TEST(TaskPoolTest, NestedSubmitAndWaitDoesNotDeadlock) {
  for (int32_t size : {1, 4}) {
    TaskPool pool(size);
    std::atomic<int64_t> total{0};
    TaskGroup outer(&pool);
    for (int32_t t = 0; t < 4; ++t) {
      outer.Submit([&pool, &total] {
        TaskGroup inner(&pool);
        for (int32_t s = 0; s < 4; ++s) {
          inner.Submit(
              [&total] { total.fetch_add(1, std::memory_order_relaxed); });
        }
        inner.Wait();
      });
    }
    outer.Wait();
    EXPECT_EQ(total.load(), 16) << "pool size " << size;
  }
}

TEST(TaskPoolTest, ExceptionsPropagateToWait) {
  TaskPool pool(4);
  std::atomic<int64_t> completed{0};
  TaskGroup group(&pool);
  for (int32_t t = 0; t < 8; ++t) {
    group.Submit([&completed, t] {
      if (t == 3) throw std::runtime_error("boom");
      completed.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_THROW(group.Wait(), std::runtime_error);
  // All non-throwing tasks still ran, and the pool stays usable.
  EXPECT_EQ(completed.load(), 7);
  std::atomic<int64_t> after{0};
  pool.ParallelFor(0, 10, [&](int64_t) {
    after.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(after.load(), 10);
}

TEST(TaskPoolTest, ParallelForRethrowsBodyException) {
  TaskPool pool(4);
  EXPECT_THROW(pool.ParallelFor(0, 100,
                                [](int64_t i) {
                                  if (i == 42) {
                                    throw std::runtime_error("bad index");
                                  }
                                }),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Parallel drivers vs serial executors

class ParallelExecTest : public ::testing::Test {
 protected:
  ParallelExecTest()
      : r_(MakeUniformBlockStore(12, 3, /*seed=*/11)),
        s_(MakeUniformBlockStore(12, 3, /*seed=*/22)) {}

  StoreFixture r_;
  StoreFixture s_;
};

TEST_F(ParallelExecTest, HyperJoinIdenticalAcrossThreadCounts) {
  const OverlapMatrix overlap =
      ComputeOverlap(r_.store, r_.blocks, 0, s_.store, s_.blocks, 0)
          .ValueOrDie();
  const Grouping grouping = BottomUpGrouping(overlap, 3).ValueOrDie();
  ASSERT_GT(grouping.NumGroups(), 1u);

  std::vector<Record> serial_rows;
  const JoinExecResult serial =
      HyperJoin(r_.store, 0, {}, s_.store, 0, {}, overlap, grouping,
                r_.cluster, &serial_rows)
          .ValueOrDie();
  ASSERT_GT(serial.counts.output_rows, 0);

  for (int32_t threads : {1, 2, 8}) {
    std::vector<Record> rows;
    const JoinExecResult run =
        HyperJoin(r_.store, 0, {}, s_.store, 0, {}, overlap, grouping,
                  r_.cluster, Threaded(threads), &rows)
            .ValueOrDie();
    EXPECT_EQ(run.counts.output_rows, serial.counts.output_rows) << threads;
    EXPECT_EQ(run.counts.checksum, serial.counts.checksum) << threads;
    EXPECT_EQ(run.r_blocks_read, serial.r_blocks_read) << threads;
    EXPECT_EQ(run.s_blocks_read, serial.s_blocks_read) << threads;
    ExpectSameIo(run.io, serial.io);
    // Stronger than multiset equality: the merge order reproduces the
    // serial output sequence exactly.
    EXPECT_EQ(rows, serial_rows) << threads;
  }
}

TEST_F(ParallelExecTest, ShuffleJoinIdenticalAcrossThreadCounts) {
  const PredicateSet r_preds = {Predicate(1, CompareOp::kLt, int64_t{700})};
  const PredicateSet s_preds = {Predicate(2, CompareOp::kGe, int64_t{100})};
  std::vector<Record> serial_rows;
  const JoinExecResult serial =
      ShuffleJoin(r_.store, r_.blocks, 0, r_preds, s_.store, s_.blocks, 0,
                  s_preds, r_.cluster, &serial_rows)
          .ValueOrDie();
  ASSERT_GT(serial.counts.output_rows, 0);

  for (int32_t threads : {1, 2, 8}) {
    std::vector<Record> rows;
    const JoinExecResult run =
        ShuffleJoin(r_.store, r_.blocks, 0, r_preds, s_.store, s_.blocks, 0,
                    s_preds, r_.cluster, Threaded(threads), &rows)
            .ValueOrDie();
    EXPECT_EQ(run.counts.output_rows, serial.counts.output_rows) << threads;
    EXPECT_EQ(run.counts.checksum, serial.counts.checksum) << threads;
    EXPECT_EQ(run.r_blocks_read, serial.r_blocks_read) << threads;
    EXPECT_EQ(run.s_blocks_read, serial.s_blocks_read) << threads;
    ExpectSameIo(run.io, serial.io);
    EXPECT_EQ(rows, serial_rows) << threads;
  }
}

TEST_F(ParallelExecTest, ScanIdenticalAcrossThreadCounts) {
  const PredicateSet preds = {Predicate(0, CompareOp::kLt, int64_t{500})};
  const ScanResult serial =
      ScanBlocks(r_.store, r_.blocks, preds, r_.cluster).ValueOrDie();
  ASSERT_GT(serial.rows_matched, 0);
  for (int32_t threads : {1, 2, 8}) {
    ExecConfig config = Threaded(threads);
    config.morsel_blocks = 2;  // Several morsels even on 12 blocks.
    const ScanResult run =
        ScanBlocks(r_.store, r_.blocks, preds, r_.cluster, config)
            .ValueOrDie();
    EXPECT_EQ(run.rows_matched, serial.rows_matched) << threads;
    EXPECT_EQ(run.blocks_read, serial.blocks_read) << threads;
    EXPECT_EQ(run.blocks_skipped, serial.blocks_skipped) << threads;
    ExpectSameIo(run.io, serial.io);
  }
}

TEST_F(ParallelExecTest, ScanAggregateMatchesSerialOnIntegerData) {
  const PredicateSet preds = {Predicate(1, CompareOp::kGe, int64_t{200})};
  for (AggFn fn :
       {AggFn::kCount, AggFn::kSum, AggFn::kMin, AggFn::kMax, AggFn::kAvg}) {
    const AggregateResult serial =
        ScanAggregate(r_.store, r_.blocks, preds, r_.cluster, 2, fn)
            .ValueOrDie();
    for (int32_t threads : {1, 2, 8}) {
      ExecConfig config = Threaded(threads);
      config.morsel_blocks = 3;
      const AggregateResult run =
          ScanAggregate(r_.store, r_.blocks, preds, r_.cluster, 2, fn,
                        config)
              .ValueOrDie();
      EXPECT_EQ(run.rows_aggregated, serial.rows_aggregated);
      // Integer attribute values: per-morsel double sums are exact, so
      // even kSum/kAvg match the serial running sum bit-for-bit.
      EXPECT_EQ(run.value, serial.value);
      ExpectSameIo(run.scan.io, serial.scan.io);
    }
  }
}

TEST_F(ParallelExecTest, ParallelErrorsMatchSerial) {
  // A missing block must surface the same NotFound either way.
  std::vector<BlockId> bad = r_.blocks;
  bad.push_back(9999);
  const auto serial =
      ShuffleJoin(r_.store, bad, 0, {}, s_.store, s_.blocks, 0, {},
                  r_.cluster);
  const auto parallel =
      ShuffleJoin(r_.store, bad, 0, {}, s_.store, s_.blocks, 0, {},
                  r_.cluster, Threaded(4));
  ASSERT_FALSE(serial.ok());
  ASSERT_FALSE(parallel.ok());
  EXPECT_EQ(parallel.status().code(), serial.status().code());
  EXPECT_EQ(parallel.status().message(), serial.status().message());
}

}  // namespace
}  // namespace adaptdb
