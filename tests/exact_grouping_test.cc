// Tests for the exact (branch-and-bound) grouping solver against brute
// force and the heuristics.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "common/rng.h"
#include "join/exact_grouping.h"

namespace adaptdb {
namespace {

OverlapMatrix RandomMatrix(size_t n, size_t m, double density, uint64_t seed) {
  Rng rng(seed);
  OverlapMatrix out;
  for (size_t i = 0; i < n; ++i) out.r_blocks.push_back(static_cast<BlockId>(i));
  for (size_t j = 0; j < m; ++j) out.s_blocks.push_back(static_cast<BlockId>(j));
  out.vectors.assign(n, BitVector(m));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      if (rng.Flip(density)) out.vectors[i].Set(j);
    }
  }
  return out;
}

/// Interval-structured matrix like two-phase partitioned tables produce.
/// `noise` adds an extra random overlap per block with that probability
/// (0 = the clean band real two-phase trees yield).
OverlapMatrix IntervalMatrix(size_t n, size_t m, uint64_t seed,
                             double noise = 0.0) {
  Rng rng(seed);
  OverlapMatrix out;
  for (size_t i = 0; i < n; ++i) out.r_blocks.push_back(static_cast<BlockId>(i));
  for (size_t j = 0; j < m; ++j) out.s_blocks.push_back(static_cast<BlockId>(j));
  out.vectors.assign(n, BitVector(m));
  for (size_t i = 0; i < n; ++i) {
    const double lo = static_cast<double>(i) / static_cast<double>(n);
    const double hi = static_cast<double>(i + 1) / static_cast<double>(n);
    for (size_t j = 0; j < m; ++j) {
      const double slo = static_cast<double>(j) / static_cast<double>(m);
      const double shi = static_cast<double>(j + 1) / static_cast<double>(m);
      if (hi >= slo && shi >= lo) out.vectors[i].Set(j);
    }
    if (noise > 0 && rng.Flip(noise)) out.vectors[i].Set(rng.Uniform(m));
  }
  return out;
}

/// Brute force: enumerate every assignment of n blocks into groups in
/// canonical order. Only usable for tiny n.
int64_t BruteForceOptimum(const OverlapMatrix& m, int32_t budget) {
  const size_t n = m.NumR();
  const size_t c = (n + static_cast<size_t>(budget) - 1) /
                   static_cast<size_t>(budget);
  std::vector<size_t> assign(n, 0);
  int64_t best = std::numeric_limits<int64_t>::max();
  while (true) {
    // Check sizes.
    std::vector<size_t> sizes(c, 0);
    bool feasible = true;
    for (size_t a : assign) {
      if (++sizes[a] > static_cast<size_t>(budget)) {
        feasible = false;
        break;
      }
    }
    if (feasible) {
      Grouping g;
      g.groups.assign(c, {});
      for (size_t i = 0; i < n; ++i) g.groups[assign[i]].push_back(i);
      g.groups.erase(std::remove_if(g.groups.begin(), g.groups.end(),
                                    [](const auto& x) { return x.empty(); }),
                     g.groups.end());
      if (!g.groups.empty()) {
        const int64_t cost = GroupingCost(m, g);
        if (cost < best) best = cost;
      }
    }
    // Increment the base-c counter.
    size_t i = 0;
    while (i < n && ++assign[i] == c) {
      assign[i] = 0;
      ++i;
    }
    if (i == n) break;
  }
  return best;
}

TEST(ExactGroupingTest, EmptyInstance) {
  OverlapMatrix m;
  auto r = ExactGrouping(m, 4);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.ValueOrDie().proven_optimal);
  EXPECT_EQ(r.ValueOrDie().cost, 0);
}

TEST(ExactGroupingTest, RejectsBadBudget) {
  OverlapMatrix m = RandomMatrix(4, 4, 0.5, 1);
  EXPECT_FALSE(ExactGrouping(m, 0).ok());
}

TEST(ExactGroupingTest, SolvesPaperExample1Optimally) {
  OverlapMatrix m;
  m.r_blocks = {0, 1, 2};
  m.s_blocks = {0, 1, 2};
  m.vectors.assign(3, BitVector(3));
  m.vectors[0].Set(0);
  m.vectors[0].Set(1);
  m.vectors[1].Set(0);
  m.vectors[1].Set(1);
  m.vectors[1].Set(2);
  m.vectors[2].Set(1);
  m.vectors[2].Set(2);
  auto r = ExactGrouping(m, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().cost, 5);  // The paper's optimum.
  EXPECT_TRUE(ValidateGrouping(m, r.ValueOrDie().grouping, 2).ok());
}

class ExactVsBruteForce : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExactVsBruteForce, MatchesBruteForceOnSmallRandomInstances) {
  OverlapMatrix m = RandomMatrix(7, 6, 0.35, GetParam());
  for (int32_t budget : {2, 3, 4}) {
    auto exact = ExactGrouping(m, budget);
    ASSERT_TRUE(exact.ok()) << exact.status().ToString();
    const int64_t brute = BruteForceOptimum(m, budget);
    EXPECT_EQ(exact.ValueOrDie().cost, brute)
        << "budget " << budget << " seed " << GetParam();
    EXPECT_EQ(GroupingCost(m, exact.ValueOrDie().grouping),
              exact.ValueOrDie().cost);
    EXPECT_TRUE(
        ValidateGrouping(m, exact.ValueOrDie().grouping, budget).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactVsBruteForce,
                         ::testing::Values(31, 32, 33, 34, 35, 36));

TEST(ExactGroupingTest, NeverWorseThanHeuristics) {
  for (uint64_t seed = 50; seed < 56; ++seed) {
    OverlapMatrix m = IntervalMatrix(16, 12, seed, 0.2);
    for (int32_t budget : {2, 4, 8}) {
      auto exact = ExactGrouping(m, budget);
      ASSERT_TRUE(exact.ok());
      auto bu = BottomUpGrouping(m, budget);
      auto gr = GreedyGrouping(m, budget);
      ASSERT_TRUE(bu.ok());
      ASSERT_TRUE(gr.ok());
      EXPECT_LE(exact.ValueOrDie().cost, GroupingCost(m, bu.ValueOrDie()));
      EXPECT_LE(exact.ValueOrDie().cost, GroupingCost(m, gr.ValueOrDie()));
    }
  }
}

TEST(ExactGroupingTest, IntervalInstancesSolveFast) {
  // The Fig. 17 regime, scaled: band-structured overlaps (what two-phase
  // trees yield) close quickly thanks to the DP incumbent, the bound and
  // dominance memoization.
  OverlapMatrix m = IntervalMatrix(48, 16, 99);
  auto exact = ExactGrouping(m, 12);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  EXPECT_TRUE(exact.ValueOrDie().proven_optimal);
  EXPECT_TRUE(ValidateGrouping(m, exact.ValueOrDie().grouping, 12).ok());
  EXPECT_LT(exact.ValueOrDie().nodes_expanded, 1'000'000);
}

TEST(ExactGroupingTest, Fig17RegimeBudgetSweep) {
  // 128 blocks like the paper's SF-10 setup: generous budgets close, the
  // tightest one exhausts the budget (the paper's ">96 hours" at 16).
  OverlapMatrix m = IntervalMatrix(128, 32, 4);
  auto b64 = ExactGrouping(m, 64);
  ASSERT_TRUE(b64.ok());
  auto b32 = ExactGrouping(m, 32);
  ASSERT_TRUE(b32.ok());
  EXPECT_LE(b64.ValueOrDie().cost, b32.ValueOrDie().cost);
  ExactOptions tight;
  tight.max_nodes = 2'000'000;
  auto b16 = ExactGrouping(m, 16, tight);
  EXPECT_FALSE(b16.ok());
  EXPECT_EQ(b16.status().code(), StatusCode::kResourceExhausted);
}

TEST(ExactGroupingTest, ContiguousDpMatchesExactOnBands) {
  // On clean band instances the contiguous restriction is lossless.
  for (uint64_t seed : {1u, 2u, 3u}) {
    OverlapMatrix m = IntervalMatrix(24, 12, seed);
    for (int32_t budget : {4, 6, 12}) {
      auto exact = ExactGrouping(m, budget);
      auto dp = ContiguousDpGrouping(m, budget);
      ASSERT_TRUE(exact.ok());
      ASSERT_TRUE(dp.ok());
      EXPECT_EQ(GroupingCost(m, dp.ValueOrDie()), exact.ValueOrDie().cost);
    }
  }
}

TEST(ExactGroupingTest, NodeBudgetExhaustionIsReported) {
  // A dense random instance with a two-node budget must bail out like the
  // paper's ">96 hours" entry.
  OverlapMatrix m = RandomMatrix(24, 24, 0.5, 7);
  ExactOptions opts;
  opts.max_nodes = 50;
  auto r = ExactGrouping(m, 3, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace adaptdb
