// Tests for the extension features: online ingestion (Table::Append, §8),
// aggregate scans, and workload-driven join-level selection (§7.4's
// suggested future work).

#include <gtest/gtest.h>

#include "adapt/smooth_repartitioner.h"
#include "core/database.h"
#include "exec/scan.h"

namespace adaptdb {
namespace {

Schema KV() {
  return Schema({{"key", DataType::kInt64, 8}, {"val", DataType::kInt64, 8}});
}

std::vector<Record> KVRecords(size_t n, int64_t keys, uint64_t seed) {
  Rng rng(seed);
  std::vector<Record> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back({Value(rng.UniformRange(0, keys - 1)),
                   Value(rng.UniformRange(0, 999))});
  }
  return out;
}

TEST(AppendTest, NewRowsBecomeVisibleToQueries) {
  Database db;
  TableOptions opts;
  opts.upfront_levels = 3;
  ASSERT_TRUE(db.CreateTable("t", KV(), KVRecords(500, 100, 1), opts).ok());
  Query all;
  all.tables = {{"t", {}}};
  const int64_t before = db.RunQuery(all).ValueOrDie().output_rows;
  ASSERT_TRUE(db.AppendRows("t", KVRecords(100, 100, 2)).ok());
  EXPECT_EQ(db.RunQuery(all).ValueOrDie().output_rows, before + 100);
}

TEST(AppendTest, RoutesByTreeAndExtendsRanges) {
  Database db;
  TableOptions opts;
  opts.upfront_levels = 3;
  ASSERT_TRUE(db.CreateTable("t", KV(), KVRecords(500, 100, 3), opts).ok());
  // Append rows outside the loaded key range; a predicate query must find
  // exactly them.
  std::vector<Record> outliers;
  for (int64_t i = 0; i < 20; ++i) {
    outliers.push_back({Value(10000 + i), Value(int64_t{1})});
  }
  ASSERT_TRUE(db.AppendRows("t", outliers).ok());
  Query q;
  q.tables = {{"t", {Predicate(0, CompareOp::kGe, 10000)}}};
  EXPECT_EQ(db.RunQuery(q).ValueOrDie().output_rows, 20);
}

TEST(AppendTest, AppendToJoinTreeKeepsHyperJoinWorking) {
  DatabaseOptions opts;
  opts.adapt.smooth.total_levels = 4;
  Database db(opts);
  TableOptions t;
  t.upfront_levels = 4;
  ASSERT_TRUE(db.CreateTable("r", KV(), KVRecords(2000, 500, 4), t).ok());
  ASSERT_TRUE(db.CreateTable("s", KV(), KVRecords(1000, 500, 5), t).ok());
  Query join;
  join.tables = {{"r", {}}, {"s", {}}};
  join.joins = {{"r", 0, "s", 0}};
  for (int i = 0; i < 12; ++i) ASSERT_TRUE(db.RunQuery(join).ok());
  const int64_t before = db.RunQuery(join).ValueOrDie().output_rows;
  // One new s row with a known key; count the extra matches it causes.
  Query key_count;
  key_count.tables = {{"r", {Predicate(0, CompareOp::kEq, int64_t{7})}}};
  const int64_t r7 = db.RunQuery(key_count).ValueOrDie().output_rows;
  ASSERT_TRUE(db.AppendRows("s", {{Value(int64_t{7}), Value(int64_t{1})}}).ok());
  auto after = db.RunQuery(join);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.ValueOrDie().output_rows, before + r7);
}

TEST(AppendTest, FailsOnUnloadedTableAndBadRecords) {
  Database db;
  EXPECT_FALSE(db.AppendRows("ghost", KVRecords(5, 5, 1)).ok());
  TableOptions opts;
  opts.upfront_levels = 2;
  ASSERT_TRUE(db.CreateTable("t", KV(), KVRecords(100, 10, 6), opts).ok());
  std::vector<Record> bad = {{Value(1)}};
  EXPECT_FALSE(db.AppendRows("t", bad).ok());
}

struct AggFixture {
  MemBlockStore store{2};
  ClusterSim cluster;
  std::vector<BlockId> blocks;

  AggFixture() {
    // Two blocks: keys 0..49 with val = key, keys 50..99 with val = key.
    for (int b = 0; b < 2; ++b) {
      const BlockId id = store.CreateBlock();
      MutableBlockRef blk = store.GetMutable(id).ValueOrDie();
      for (int64_t i = 0; i < 50; ++i) {
        const int64_t key = b * 50 + i;
        blk->Add({Value(key), Value(key)});
      }
      blocks.push_back(id);
      cluster.PlaceBlock(id);
    }
  }
};

TEST(AggregateTest, CountSumMinMaxAvg) {
  AggFixture f;
  auto count =
      ScanAggregate(f.store, f.blocks, {}, f.cluster, 1, AggFn::kCount);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.ValueOrDie().value.AsInt64(), 100);

  auto sum = ScanAggregate(f.store, f.blocks, {}, f.cluster, 1, AggFn::kSum);
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(sum.ValueOrDie().value.AsDouble(), 4950.0);

  auto mn = ScanAggregate(f.store, f.blocks, {}, f.cluster, 1, AggFn::kMin);
  ASSERT_TRUE(mn.ok());
  EXPECT_EQ(mn.ValueOrDie().value.AsInt64(), 0);

  auto mx = ScanAggregate(f.store, f.blocks, {}, f.cluster, 1, AggFn::kMax);
  ASSERT_TRUE(mx.ok());
  EXPECT_EQ(mx.ValueOrDie().value.AsInt64(), 99);

  auto avg = ScanAggregate(f.store, f.blocks, {}, f.cluster, 1, AggFn::kAvg);
  ASSERT_TRUE(avg.ok());
  EXPECT_DOUBLE_EQ(avg.ValueOrDie().value.AsDouble(), 49.5);
}

TEST(AggregateTest, PredicatesAndBlockSkipping) {
  AggFixture f;
  // Keys < 50 live entirely in block 0: block 1 must be skipped.
  PredicateSet preds = {Predicate(0, CompareOp::kLt, 50)};
  auto sum = ScanAggregate(f.store, f.blocks, preds, f.cluster, 1, AggFn::kSum);
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(sum.ValueOrDie().value.AsDouble(), 1225.0);
  EXPECT_EQ(sum.ValueOrDie().scan.blocks_read, 1);
  EXPECT_EQ(sum.ValueOrDie().scan.blocks_skipped, 1);
}

TEST(AggregateTest, EmptyResultAndStringErrors) {
  AggFixture f;
  PredicateSet none = {Predicate(0, CompareOp::kGt, 1000)};
  auto avg = ScanAggregate(f.store, f.blocks, none, f.cluster, 1, AggFn::kAvg);
  ASSERT_TRUE(avg.ok());
  EXPECT_EQ(avg.ValueOrDie().rows_aggregated, 0);
  EXPECT_EQ(avg.ValueOrDie().value.AsInt64(), 0);

  MemBlockStore str_store(1);
  const BlockId sb = str_store.CreateBlock();
  str_store.GetMutable(sb).ValueOrDie()->Add({Value("abc")});
  auto bad = ScanAggregate(str_store, {sb}, {}, f.cluster, 0, AggFn::kSum);
  EXPECT_FALSE(bad.ok());
  // Min/max over strings is fine (ordered type).
  auto mn = ScanAggregate(str_store, {sb}, {}, f.cluster, 0, AggFn::kMin);
  ASSERT_TRUE(mn.ok());
  EXPECT_EQ(mn.ValueOrDie().value.AsString(), "abc");
}

TEST(JoinLevelsHeuristicTest, UnselectiveWindowsGoDeep) {
  Reservoir sample(500, 1);
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    sample.Add({Value(rng.UniformRange(0, 999)),
                Value(rng.UniformRange(0, 999))});
  }
  QueryWindow window(10);
  Query unselective;
  unselective.tables = {{"t", {}}};  // No predicate: selectivity 1.
  unselective.joins = {{"t", 0, "u", 0}};
  for (int i = 0; i < 5; ++i) window.Add(unselective);
  EXPECT_EQ(RecommendJoinLevels("t", window, sample, 8), 6);  // 3/4 of 8.
}

TEST(JoinLevelsHeuristicTest, SelectiveWindowsStayShallow) {
  Reservoir sample(500, 1);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    sample.Add({Value(rng.UniformRange(0, 999)),
                Value(rng.UniformRange(0, 999))});
  }
  QueryWindow window(10);
  Query selective;
  selective.tables = {{"t", {Predicate(1, CompareOp::kLt, 5)}}};  // ~0.5%.
  selective.joins = {{"t", 0, "u", 0}};
  for (int i = 0; i < 5; ++i) window.Add(selective);
  EXPECT_EQ(RecommendJoinLevels("t", window, sample, 8), 2);  // 1/4 of 8.
}

TEST(JoinLevelsHeuristicTest, DefaultsToHalfWithoutEvidence) {
  Reservoir sample(10, 1);
  sample.Add({Value(1), Value(2)});
  QueryWindow window(10);
  EXPECT_EQ(RecommendJoinLevels("t", window, sample, 8), 4);
  EXPECT_EQ(RecommendJoinLevels("t", window, sample, 7), 4);  // Ceil half.
}

TEST(JoinLevelsHeuristicTest, AutoModeWiresIntoSmoothRepartitioner) {
  Schema schema = KV();
  auto records = KVRecords(2000, 500, 7);
  Reservoir sample(1000, 7);
  sample.AddAll(records);
  MemBlockStore store(2);
  TreeSet trees;
  ClusterSim cluster;
  {
    UpfrontOptions opts;
    opts.num_levels = 4;
    UpfrontPartitioner p(schema, opts);
    PartitionTree tree = std::move(p.Build(sample, &store)).ValueOrDie();
    ADB_CHECK_OK(LoadRecords(records, tree, &store));
    for (BlockId b : tree.Leaves()) cluster.PlaceBlock(b);
    trees.Add(kUpfrontTree, std::move(tree));
  }
  SmoothConfig cfg;
  cfg.total_levels = 8;
  cfg.join_levels = kAutoJoinLevels;
  SmoothRepartitioner smooth(schema, cfg);
  QueryWindow window(10);
  Query unselective;
  unselective.name = "u";
  unselective.tables = {{"t", {}}};
  unselective.joins = {{"t", 0, "other", 0}};
  window.Add(unselective);
  auto report =
      smooth.Step("t", 0, window, sample, &trees, &store, &cluster);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(trees.Has(0));
  EXPECT_EQ(trees.Tree(0).ValueOrDie()->join_levels(), 6);  // 3/4 of 8.
}

}  // namespace
}  // namespace adaptdb
