// Tests for storage/: Block, BlockStore, ClusterSim and I/O accounting.

#include <gtest/gtest.h>

#include "storage/block.h"
#include "storage/block_store.h"
#include "storage/cluster.h"
#include "testing_util.h"

namespace adaptdb {
namespace {

Record Rec(int64_t a, int64_t b) { return {Value(a), Value(b)}; }

TEST(BlockTest, TracksRangesPerAttribute) {
  Block b(0, 2);
  b.Add(Rec(5, 100));
  b.Add(Rec(2, 300));
  b.Add(Rec(9, 200));
  EXPECT_EQ(b.num_records(), 3u);
  EXPECT_EQ(b.range(0).lo, Value(2));
  EXPECT_EQ(b.range(0).hi, Value(9));
  EXPECT_EQ(b.range(1).lo, Value(100));
  EXPECT_EQ(b.range(1).hi, Value(300));
}

TEST(BlockTest, MayMatchUsesRanges) {
  Block b(0, 2);
  b.Add(Rec(5, 100));
  b.Add(Rec(9, 200));
  EXPECT_TRUE(b.MayMatch({Predicate(0, CompareOp::kGe, 7)}));
  EXPECT_FALSE(b.MayMatch({Predicate(0, CompareOp::kGt, 9)}));
  EXPECT_FALSE(b.MayMatch({Predicate(1, CompareOp::kLt, 100)}));
}

TEST(BlockTest, EmptyBlockNeverMatches) {
  Block b(0, 2);
  EXPECT_TRUE(b.empty());
  EXPECT_FALSE(b.MayMatch({}));
}

TEST(BlockTest, ClearResetsRanges) {
  Block b(0, 1);
  b.Add({Value(5)});
  b.ClearRecords();
  EXPECT_TRUE(b.empty());
  b.Add({Value(50)});
  EXPECT_EQ(b.range(0).lo, Value(50));
}

TEST(BlockTest, SizeBytesScalesWithRecords) {
  Block b(0, 1);
  b.Add({Value(1)});
  b.Add({Value(2)});
  EXPECT_EQ(b.SizeBytes(16), 32);
}

TEST(BlockStoreTest, CreateGetDelete) {
  MemBlockStore store(2);
  const BlockId a = store.CreateBlock();
  const BlockId b = store.CreateBlock();
  EXPECT_NE(a, b);
  EXPECT_TRUE(store.Contains(a));
  ASSERT_TRUE(store.Get(a).ok());
  ASSERT_TRUE(store.Delete(a).ok());
  EXPECT_FALSE(store.Contains(a));
  EXPECT_FALSE(store.Get(a).ok());
  EXPECT_FALSE(store.Delete(a).ok());
  EXPECT_EQ(store.num_blocks(), 1u);
}

TEST(BlockStoreTest, IdsNeverReused) {
  MemBlockStore store(1);
  const BlockId a = store.CreateBlock();
  ASSERT_TRUE(store.Delete(a).ok());
  const BlockId b = store.CreateBlock();
  EXPECT_GT(b, a);
}

TEST(BlockStoreTest, TotalRecordsSumsLiveBlocks) {
  MemBlockStore store(1);
  const BlockId a = store.CreateBlock();
  const BlockId b = store.CreateBlock();
  store.GetMutable(a).ValueOrDie()->Add({Value(1)});
  store.GetMutable(a).ValueOrDie()->Add({Value(2)});
  store.GetMutable(b).ValueOrDie()->Add({Value(3)});
  EXPECT_EQ(store.TotalRecords(), 3u);
  ASSERT_TRUE(store.Delete(a).ok());
  EXPECT_EQ(store.TotalRecords(), 1u);
}

TEST(BlockStoreTest, BlockIdsSortedAscending) {
  MemBlockStore store(1);
  store.CreateBlock();
  store.CreateBlock();
  store.CreateBlock();
  auto ids = store.BlockIds();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_LT(ids[0], ids[1]);
  EXPECT_LT(ids[1], ids[2]);
}

TEST(ClusterSimTest, RoundRobinPlacement) {
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  ClusterSim cluster(cfg);
  EXPECT_EQ(cluster.PlaceBlock(0), 0);
  EXPECT_EQ(cluster.PlaceBlock(1), 1);
  EXPECT_EQ(cluster.PlaceBlock(2), 2);
  EXPECT_EQ(cluster.PlaceBlock(3), 0);
  EXPECT_EQ(cluster.Locate(2).ValueOrDie(), 2);
  EXPECT_FALSE(cluster.Locate(99).ok());
}

TEST(ClusterSimTest, EvictForgetsPlacement) {
  ClusterSim cluster;
  cluster.PlaceBlock(7);
  cluster.Evict(7);
  EXPECT_FALSE(cluster.Locate(7).ok());
}

TEST(ClusterSimTest, LocalVsRemoteReads) {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  ClusterSim cluster(cfg);
  cluster.PlaceBlockAt(0, 0);
  cluster.PlaceBlockAt(1, 1);
  IoStats io;
  cluster.ReadBlock(0, 0, &io);  // Local.
  cluster.ReadBlock(1, 0, &io);  // Remote.
  cluster.ReadBlock(99, 0, &io);  // Unplaced counts as remote.
  EXPECT_EQ(io.local_block_reads, 1);
  EXPECT_EQ(io.remote_block_reads, 2);
}

TEST(ClusterSimTest, ScheduleTaskPicksPluralityNode) {
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  ClusterSim cluster(cfg);
  cluster.PlaceBlockAt(0, 2);
  cluster.PlaceBlockAt(1, 2);
  cluster.PlaceBlockAt(2, 1);
  EXPECT_EQ(cluster.ScheduleTask({0, 1, 2}), 2);
  EXPECT_EQ(cluster.ScheduleTask({}), 0);
  EXPECT_EQ(cluster.ScheduleTask({42}), 0);  // Unplaced: default node.
}

TEST(ClusterSimTest, SimulatedSecondsMonotoneInIo) {
  ClusterSim cluster;
  IoStats a, b;
  a.local_block_reads = 10;
  b.local_block_reads = 20;
  EXPECT_LT(cluster.SimulatedSeconds(a), cluster.SimulatedSeconds(b));
  IoStats c = a;
  c.shuffled_blocks = 10;
  EXPECT_LT(cluster.SimulatedSeconds(a), cluster.SimulatedSeconds(c));
}

TEST(ClusterSimTest, RemoteReadsCostMoreThanLocal) {
  ClusterSim cluster;
  IoStats local, remote;
  local.local_block_reads = 100;
  remote.remote_block_reads = 100;
  EXPECT_LT(cluster.SimulatedSeconds(local), cluster.SimulatedSeconds(remote));
  // Penalty ratio matches the config.
  EXPECT_NEAR(cluster.SimulatedSeconds(remote) / cluster.SimulatedSeconds(local),
              cluster.config().remote_penalty, 1e-9);
}

TEST(ClusterSimTest, LocalityFraction) {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  ClusterSim cluster(cfg);
  cluster.PlaceBlockAt(0, 0);
  cluster.PlaceBlockAt(1, 0);
  cluster.PlaceBlockAt(2, 1);
  cluster.PlaceBlockAt(3, 1);
  EXPECT_DOUBLE_EQ(cluster.LocalityFraction({0, 1, 2, 3}, 0), 0.5);
  EXPECT_DOUBLE_EQ(cluster.LocalityFraction({0, 1}, 0), 1.0);
  EXPECT_DOUBLE_EQ(cluster.LocalityFraction({}, 0), 1.0);
}

TEST(StoreFixtureTest, UniformBlockStoreIsDeterministicInSeed) {
  auto a = testing::MakeUniformBlockStore(4, 3, 99);
  auto b = testing::MakeUniformBlockStore(4, 3, 99);
  auto c = testing::MakeUniformBlockStore(4, 3, 100);
  ASSERT_EQ(a.blocks, b.blocks);
  EXPECT_EQ(a.store.TotalRecords(), 4u * 32u);
  bool any_diff = false;
  for (BlockId id : a.blocks) {
    const BlockRef ab = a.store.Get(id).ValueOrDie();
    const BlockRef bb = b.store.Get(id).ValueOrDie();
    const BlockRef cb = c.store.Get(id).ValueOrDie();
    ASSERT_EQ(ab->records().size(), bb->records().size());
    for (size_t i = 0; i < ab->records().size(); ++i) {
      EXPECT_EQ(ab->records()[i], bb->records()[i]);
      if (ab->records()[i] != cb->records()[i]) any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);  // A different seed produces different data.
}

TEST(StoreFixtureTest, UniformBlockStorePlacesEveryBlock) {
  auto fx = testing::MakeUniformBlockStore(6, 2, 5, /*records_per_block=*/8);
  EXPECT_EQ(fx.store.num_blocks(), 6u);
  EXPECT_EQ(fx.store.TotalRecords(), 48u);
  for (BlockId id : fx.blocks) {
    EXPECT_TRUE(fx.cluster.Locate(id).ok());
  }
}

TEST(IoStatsTest, MergeAndReset) {
  IoStats a, b;
  a.local_block_reads = 1;
  a.shuffled_blocks = 2;
  b.local_block_reads = 3;
  b.block_writes = 4;
  a.Merge(b);
  EXPECT_EQ(a.local_block_reads, 4);
  EXPECT_EQ(a.block_writes, 4);
  EXPECT_EQ(a.shuffled_blocks, 2);
  EXPECT_EQ(a.TotalReads(), 4);
  a.Reset();
  EXPECT_EQ(a.local_block_reads, 0);
  EXPECT_EQ(a.TotalReads(), 0);
}

}  // namespace
}  // namespace adaptdb
