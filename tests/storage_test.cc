// Tests for storage/: Block, BlockStore, ClusterSim and I/O accounting.

#include <gtest/gtest.h>

#include "exec/hash_join.h"
#include "storage/block.h"
#include "storage/block_store.h"
#include "storage/cluster.h"
#include "testing_util.h"

namespace adaptdb {
namespace {

Record Rec(int64_t a, int64_t b) { return {Value(a), Value(b)}; }

TEST(BlockTest, TracksRangesPerAttribute) {
  Block b(0, 2);
  b.Add(Rec(5, 100));
  b.Add(Rec(2, 300));
  b.Add(Rec(9, 200));
  EXPECT_EQ(b.num_records(), 3u);
  EXPECT_EQ(b.range(0).lo, Value(2));
  EXPECT_EQ(b.range(0).hi, Value(9));
  EXPECT_EQ(b.range(1).lo, Value(100));
  EXPECT_EQ(b.range(1).hi, Value(300));
}

TEST(BlockTest, MayMatchUsesRanges) {
  Block b(0, 2);
  b.Add(Rec(5, 100));
  b.Add(Rec(9, 200));
  EXPECT_TRUE(b.MayMatch({Predicate(0, CompareOp::kGe, 7)}));
  EXPECT_FALSE(b.MayMatch({Predicate(0, CompareOp::kGt, 9)}));
  EXPECT_FALSE(b.MayMatch({Predicate(1, CompareOp::kLt, 100)}));
}

TEST(BlockTest, EmptyBlockNeverMatches) {
  Block b(0, 2);
  EXPECT_TRUE(b.empty());
  EXPECT_FALSE(b.MayMatch({}));
}

TEST(BlockTest, ClearResetsRanges) {
  Block b(0, 1);
  b.Add({Value(5)});
  b.ClearRecords();
  EXPECT_TRUE(b.empty());
  b.Add({Value(50)});
  EXPECT_EQ(b.range(0).lo, Value(50));
}

TEST(BlockTest, SizeBytesIsExactFromColumnFootprints) {
  Block b(0, 2);
  b.Add({Value(1), Value("ab")});
  b.Add({Value(2), Value("cdef")});
  // int64 column: 2 * 8 bytes; string column: (4 + 2) + (4 + 4) bytes.
  EXPECT_EQ(b.SizeBytes(), 16 + 14);
  b.Add({Value(3), Value("")});
  EXPECT_EQ(b.SizeBytes(), 24 + 18);
}

TEST(BlockTest, ColumnarAccessorsAndGather) {
  Block b(0, 3);
  b.Add({Value(1), Value(0.5), Value("x")});
  b.Add({Value(2), Value(1.5), Value("y")});
  EXPECT_EQ(b.column(0).ints(), (std::vector<int64_t>{1, 2}));
  EXPECT_EQ(b.column(1).doubles(), (std::vector<double>{0.5, 1.5}));
  EXPECT_EQ(b.column(2).strings(), (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(b.GatherRecord(1), (Record{Value(2), Value(1.5), Value("y")}));
  EXPECT_EQ(b.ValueAt(0, 2), Value("x"));
  EXPECT_EQ(b.MaterializeRecords().size(), 2u);
}

TEST(BlockTest, FilterRowsEvaluatesColumnAtATime) {
  Block b(0, 2);
  for (int64_t i = 0; i < 10; ++i) b.Add({Value(i), Value(i * 10)});
  // Single predicate.
  EXPECT_EQ(b.FilterRows({Predicate(0, CompareOp::kGe, 7)}),
            (SelectionVector{7, 8, 9}));
  // Conjunction narrows the seeded selection.
  EXPECT_EQ(b.FilterRows({Predicate(0, CompareOp::kGe, 5),
                          Predicate(1, CompareOp::kLt, 80)}),
            (SelectionVector{5, 6, 7}));
  // Empty predicate set selects everything.
  EXPECT_EQ(b.FilterRows({}).size(), 10u);
  EXPECT_EQ(b.CountMatches({Predicate(0, CompareOp::kLt, 3)}), 3u);
  EXPECT_EQ(b.CountMatches({}), 10u);
}

TEST(ColumnTest, MixedTypeAppendFallsBackToValues) {
  // Heterogeneous appends demote a column to the vector<Value> fallback
  // without losing data. (Block::Add cannot reach this path — its range
  // tracking has never supported mixed types within one attribute — but
  // Column survives it for direct constructions.)
  Column c;
  c.Append(Value(5));
  c.Append(Value("zz"));
  ASSERT_TRUE(c.mixed());
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.ValueAt(0), Value(5));
  EXPECT_EQ(c.ValueAt(1), Value("zz"));
  EXPECT_TRUE(c.MatchesAt(Predicate(0, CompareOp::kEq, Value("zz")), 1));
  EXPECT_FALSE(c.MatchesAt(Predicate(0, CompareOp::kEq, Value("zz")), 0));
  EXPECT_EQ(c.HashAt(0), HashValue(Value(5)));
  // Tag + 8 scalar bytes, tag + length prefix + 2 chars.
  EXPECT_EQ(c.SizeBytes(), 9 + 7);
}

TEST(BlockStoreTest, CreateGetDelete) {
  MemBlockStore store(2);
  const BlockId a = store.CreateBlock();
  const BlockId b = store.CreateBlock();
  EXPECT_NE(a, b);
  EXPECT_TRUE(store.Contains(a));
  ASSERT_TRUE(store.Get(a).ok());
  ASSERT_TRUE(store.Delete(a).ok());
  EXPECT_FALSE(store.Contains(a));
  EXPECT_FALSE(store.Get(a).ok());
  EXPECT_FALSE(store.Delete(a).ok());
  EXPECT_EQ(store.num_blocks(), 1u);
}

TEST(BlockStoreTest, IdsNeverReused) {
  MemBlockStore store(1);
  const BlockId a = store.CreateBlock();
  ASSERT_TRUE(store.Delete(a).ok());
  const BlockId b = store.CreateBlock();
  EXPECT_GT(b, a);
}

TEST(BlockStoreTest, TotalRecordsSumsLiveBlocks) {
  MemBlockStore store(1);
  const BlockId a = store.CreateBlock();
  const BlockId b = store.CreateBlock();
  store.GetMutable(a).ValueOrDie()->Add({Value(1)});
  store.GetMutable(a).ValueOrDie()->Add({Value(2)});
  store.GetMutable(b).ValueOrDie()->Add({Value(3)});
  EXPECT_EQ(store.TotalRecords(), 3u);
  ASSERT_TRUE(store.Delete(a).ok());
  EXPECT_EQ(store.TotalRecords(), 1u);
}

TEST(BlockStoreTest, BlockIdsSortedAscending) {
  MemBlockStore store(1);
  store.CreateBlock();
  store.CreateBlock();
  store.CreateBlock();
  auto ids = store.BlockIds();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_LT(ids[0], ids[1]);
  EXPECT_LT(ids[1], ids[2]);
}

TEST(ClusterSimTest, RoundRobinPlacement) {
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  ClusterSim cluster(cfg);
  EXPECT_EQ(cluster.PlaceBlock(0), 0);
  EXPECT_EQ(cluster.PlaceBlock(1), 1);
  EXPECT_EQ(cluster.PlaceBlock(2), 2);
  EXPECT_EQ(cluster.PlaceBlock(3), 0);
  EXPECT_EQ(cluster.Locate(2).ValueOrDie(), 2);
  EXPECT_FALSE(cluster.Locate(99).ok());
}

TEST(ClusterSimTest, EvictForgetsPlacement) {
  ClusterSim cluster;
  cluster.PlaceBlock(7);
  cluster.Evict(7);
  EXPECT_FALSE(cluster.Locate(7).ok());
}

TEST(ClusterSimTest, LocalVsRemoteReads) {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  ClusterSim cluster(cfg);
  cluster.PlaceBlockAt(0, 0);
  cluster.PlaceBlockAt(1, 1);
  IoStats io;
  cluster.ReadBlock(0, 0, &io);  // Local.
  cluster.ReadBlock(1, 0, &io);  // Remote.
  cluster.ReadBlock(99, 0, &io);  // Unplaced counts as remote.
  EXPECT_EQ(io.local_block_reads, 1);
  EXPECT_EQ(io.remote_block_reads, 2);
}

TEST(ClusterSimTest, ScheduleTaskPicksPluralityNode) {
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  ClusterSim cluster(cfg);
  cluster.PlaceBlockAt(0, 2);
  cluster.PlaceBlockAt(1, 2);
  cluster.PlaceBlockAt(2, 1);
  EXPECT_EQ(cluster.ScheduleTask({0, 1, 2}), 2);
  EXPECT_EQ(cluster.ScheduleTask({}), 0);
  EXPECT_EQ(cluster.ScheduleTask({42}), 0);  // Unplaced: default node.
}

TEST(ClusterSimTest, SimulatedSecondsMonotoneInIo) {
  ClusterSim cluster;
  IoStats a, b;
  a.local_block_reads = 10;
  b.local_block_reads = 20;
  EXPECT_LT(cluster.SimulatedSeconds(a), cluster.SimulatedSeconds(b));
  IoStats c = a;
  c.shuffled_blocks = 10;
  EXPECT_LT(cluster.SimulatedSeconds(a), cluster.SimulatedSeconds(c));
}

TEST(ClusterSimTest, RemoteReadsCostMoreThanLocal) {
  ClusterSim cluster;
  IoStats local, remote;
  local.local_block_reads = 100;
  remote.remote_block_reads = 100;
  EXPECT_LT(cluster.SimulatedSeconds(local), cluster.SimulatedSeconds(remote));
  // Penalty ratio matches the config.
  EXPECT_NEAR(cluster.SimulatedSeconds(remote) / cluster.SimulatedSeconds(local),
              cluster.config().remote_penalty, 1e-9);
}

TEST(ClusterSimTest, LocalityFraction) {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  ClusterSim cluster(cfg);
  cluster.PlaceBlockAt(0, 0);
  cluster.PlaceBlockAt(1, 0);
  cluster.PlaceBlockAt(2, 1);
  cluster.PlaceBlockAt(3, 1);
  EXPECT_DOUBLE_EQ(cluster.LocalityFraction({0, 1, 2, 3}, 0), 0.5);
  EXPECT_DOUBLE_EQ(cluster.LocalityFraction({0, 1}, 0), 1.0);
  EXPECT_DOUBLE_EQ(cluster.LocalityFraction({}, 0), 1.0);
}

TEST(StoreFixtureTest, UniformBlockStoreIsDeterministicInSeed) {
  auto a = testing::MakeUniformBlockStore(4, 3, 99);
  auto b = testing::MakeUniformBlockStore(4, 3, 99);
  auto c = testing::MakeUniformBlockStore(4, 3, 100);
  ASSERT_EQ(a.blocks, b.blocks);
  EXPECT_EQ(a.store.TotalRecords(), 4u * 32u);
  bool any_diff = false;
  for (BlockId id : a.blocks) {
    const std::vector<Record> ar =
        a.store.Get(id).ValueOrDie()->MaterializeRecords();
    const std::vector<Record> br =
        b.store.Get(id).ValueOrDie()->MaterializeRecords();
    const std::vector<Record> cr =
        c.store.Get(id).ValueOrDie()->MaterializeRecords();
    ASSERT_EQ(ar.size(), br.size());
    for (size_t i = 0; i < ar.size(); ++i) {
      EXPECT_EQ(ar[i], br[i]);
      if (ar[i] != cr[i]) any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);  // A different seed produces different data.
}

TEST(StoreFixtureTest, UniformBlockStorePlacesEveryBlock) {
  auto fx = testing::MakeUniformBlockStore(6, 2, 5, /*records_per_block=*/8);
  EXPECT_EQ(fx.store.num_blocks(), 6u);
  EXPECT_EQ(fx.store.TotalRecords(), 48u);
  for (BlockId id : fx.blocks) {
    EXPECT_TRUE(fx.cluster.Locate(id).ok());
  }
}

TEST(IoStatsTest, MergeAndReset) {
  IoStats a, b;
  a.local_block_reads = 1;
  a.shuffled_blocks = 2;
  b.local_block_reads = 3;
  b.block_writes = 4;
  a.Merge(b);
  EXPECT_EQ(a.local_block_reads, 4);
  EXPECT_EQ(a.block_writes, 4);
  EXPECT_EQ(a.shuffled_blocks, 2);
  EXPECT_EQ(a.TotalReads(), 4);
  a.Reset();
  EXPECT_EQ(a.local_block_reads, 0);
  EXPECT_EQ(a.TotalReads(), 0);
}

}  // namespace
}  // namespace adaptdb
