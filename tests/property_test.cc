// Cross-module randomized property sweeps (TEST_P):
//  * end-to-end join-result equivalence across adaptation states,
//  * grouping-algorithm cost ordering (exact <= bottom-up <= singletons),
//  * data conservation under continuous adaptation,
//  * cost-model consistency between estimate and execution.

#include <gtest/gtest.h>

#include "core/database.h"
#include "join/exact_grouping.h"
#include "workload/drivers.h"
#include "workload/tpch.h"
#include "workload/tpch_queries.h"

namespace adaptdb {
namespace {

Schema KV() {
  return Schema({{"key", DataType::kInt64, 8}, {"val", DataType::kInt64, 8}});
}

std::vector<Record> KVRecords(size_t n, int64_t keys, uint64_t seed) {
  Rng rng(seed);
  std::vector<Record> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back({Value(rng.UniformRange(0, keys - 1)),
                   Value(rng.UniformRange(0, 999))});
  }
  return out;
}

class EndToEndEquivalence : public ::testing::TestWithParam<uint64_t> {};

// The core soundness property: the join result (rows + checksum) never
// changes while AdaptDB migrates blocks between trees underneath it.
TEST_P(EndToEndEquivalence, ResultsStableUnderAdaptation) {
  const uint64_t seed = GetParam();
  DatabaseOptions opts;
  opts.adapt.smooth.total_levels = 4;
  Database db(opts);
  TableOptions t;
  t.upfront_levels = 4;
  t.seed = seed;
  ASSERT_TRUE(db.CreateTable("r", KV(), KVRecords(3000, 500, seed), t).ok());
  ASSERT_TRUE(
      db.CreateTable("s", KV(), KVRecords(1500, 500, seed + 1), t).ok());

  Rng rng(seed + 2);
  // Alternate join attributes (key vs val) so trees keep migrating.
  Query join_key, join_val;
  join_key.name = "jk";
  join_key.tables = {{"r", {}}, {"s", {}}};
  join_key.joins = {{"r", 0, "s", 0}};
  join_val.name = "jv";
  join_val.tables = {{"r", {}}, {"s", {}}};
  join_val.joins = {{"r", 1, "s", 1}};

  int64_t key_rows = -1;
  uint64_t key_sum = 0;
  int64_t val_rows = -1;
  uint64_t val_sum = 0;
  for (int i = 0; i < 16; ++i) {
    const bool use_key = rng.Flip(0.5);
    auto run = db.RunQuery(use_key ? join_key : join_val);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    if (use_key) {
      if (key_rows < 0) {
        key_rows = run.ValueOrDie().output_rows;
        key_sum = run.ValueOrDie().checksum;
      }
      EXPECT_EQ(run.ValueOrDie().output_rows, key_rows) << "iteration " << i;
      EXPECT_EQ(run.ValueOrDie().checksum, key_sum);
    } else {
      if (val_rows < 0) {
        val_rows = run.ValueOrDie().output_rows;
        val_sum = run.ValueOrDie().checksum;
      }
      EXPECT_EQ(run.ValueOrDie().output_rows, val_rows) << "iteration " << i;
      EXPECT_EQ(run.ValueOrDie().checksum, val_sum);
    }
    // Conservation: adaptation never loses or duplicates records.
    EXPECT_EQ(db.GetTable("r").ValueOrDie()->num_records(), 3000);
    EXPECT_EQ(db.GetTable("s").ValueOrDie()->num_records(), 1500);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndEquivalence,
                         ::testing::Values(101, 102, 103, 104, 105));

class GroupingOrdering : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GroupingOrdering, ExactNeverWorseBottomUpNeverWorseThanSingletons) {
  Rng rng(GetParam());
  const size_t n = 6 + rng.Uniform(8);
  const size_t m = 6 + rng.Uniform(8);
  OverlapMatrix mat;
  mat.vectors.assign(n, BitVector(m));
  for (size_t i = 0; i < n; ++i) {
    mat.r_blocks.push_back(static_cast<BlockId>(i));
    for (size_t j = 0; j < m; ++j) {
      if (rng.Flip(0.3)) mat.vectors[i].Set(j);
    }
  }
  for (size_t j = 0; j < m; ++j) mat.s_blocks.push_back(static_cast<BlockId>(j));

  const int32_t budget = 2 + static_cast<int32_t>(rng.Uniform(3));
  auto exact = ExactGrouping(mat, budget);
  auto bu = BottomUpGrouping(mat, budget);
  auto singles = BottomUpGrouping(mat, 1);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(bu.ok());
  ASSERT_TRUE(singles.ok());
  const int64_t c_exact = exact.ValueOrDie().cost;
  const int64_t c_bu = GroupingCost(mat, bu.ValueOrDie());
  const int64_t c_single = GroupingCost(mat, singles.ValueOrDie());
  EXPECT_LE(c_exact, c_bu);
  EXPECT_LE(c_bu, c_single);  // Grouping can only share reads.
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupingOrdering,
                         ::testing::Values(201, 202, 203, 204, 205, 206, 207,
                                           208));

class CostModelConsistency : public ::testing::TestWithParam<uint64_t> {};

// The planner's estimated scheduled-reads must equal the reads the
// hyper-join executor actually performs.
TEST_P(CostModelConsistency, EstimateMatchesExecution) {
  const uint64_t seed = GetParam();
  DatabaseOptions opts;
  opts.adapt.smooth.total_levels = 4;
  Database db(opts);
  TableOptions t;
  t.upfront_levels = 4;
  t.seed = seed;
  ASSERT_TRUE(db.CreateTable("r", KV(), KVRecords(2500, 400, seed), t).ok());
  ASSERT_TRUE(
      db.CreateTable("s", KV(), KVRecords(1200, 400, seed + 1), t).ok());
  Query q;
  q.tables = {{"r", {}}, {"s", {}}};
  q.joins = {{"r", 0, "s", 0}};
  // Converge, then compare estimate vs actual on the final run.
  for (int i = 0; i < 12; ++i) ASSERT_TRUE(db.RunQuery(q).ok());
  auto run = db.RunQuery(q);
  ASSERT_TRUE(run.ok());
  const EdgeReport& edge = run.ValueOrDie().edges[0];
  if (edge.used_hyper) {
    EXPECT_DOUBLE_EQ(edge.choice.cost_hyper,
                     static_cast<double>(edge.r_blocks_read) +
                         static_cast<double>(edge.s_blocks_read));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostModelConsistency,
                         ::testing::Values(301, 302, 303));

class TpchEquivalenceSweep : public ::testing::TestWithParam<std::string> {};

// Every joinful template produces identical results on the adaptive system
// and on the no-pruning full scan configuration, before and after the
// system has adapted to it.
TEST_P(TpchEquivalenceSweep, AdaptiveMatchesFullScan) {
  const std::string name = GetParam();
  tpch::TpchConfig cfg;
  cfg.num_orders = 1200;
  const tpch::TpchData data = tpch::GenerateTpch(cfg);
  DatabaseOptions opts;
  opts.adapt.smooth.total_levels = 4;
  Database adaptive(opts);
  ASSERT_TRUE(LoadTpch(&adaptive, data, 4, 4, 3).ok());
  DatabaseOptions fs;
  fs.adapt_enabled = false;
  fs.planner.ignore_partitioning = true;
  fs.planner.strategy = PlannerConfig::Strategy::kForceShuffle;
  Database fullscan(fs);
  ASSERT_TRUE(LoadTpch(&fullscan, data, 4, 4, 3).ok());

  Rng rng(11);
  for (int rep = 0; rep < 4; ++rep) {
    Rng r1(rng.Next());
    Rng r2 = r1;
    Query qa = tpch::MakeQuery(name, &r1).ValueOrDie();
    Query qb = tpch::MakeQuery(name, &r2).ValueOrDie();
    auto a = adaptive.RunQuery(qa);
    auto b = fullscan.RunQuery(qb);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a.ValueOrDie().output_rows, b.ValueOrDie().output_rows)
        << name << " rep " << rep;
    EXPECT_EQ(a.ValueOrDie().checksum, b.ValueOrDie().checksum);
  }
}

INSTANTIATE_TEST_SUITE_P(Templates, TpchEquivalenceSweep,
                         ::testing::Values("q3", "q5", "q6", "q8", "q10",
                                           "q12", "q14", "q19"));

}  // namespace
}  // namespace adaptdb
