// Tests for adapt/: query model, query window, tree sets, smooth
// repartitioning and the Amoeba adapter.

#include <gtest/gtest.h>

#include "adapt/amoeba_adapter.h"
#include "adapt/optimizer.h"
#include "adapt/query_window.h"
#include "adapt/smooth_repartitioner.h"
#include "adapt/tree_set.h"
#include "common/rng.h"
#include "tree/two_phase_partitioner.h"
#include "tree/upfront_partitioner.h"

namespace adaptdb {
namespace {

Query JoinQuery(const std::string& name, const std::string& left, AttrId la,
                const std::string& right, AttrId ra,
                PredicateSet left_preds = {}) {
  Query q;
  q.name = name;
  q.tables = {{left, std::move(left_preds)}, {right, {}}};
  q.joins = {{left, la, right, ra}};
  return q;
}

TEST(QueryTest, AccessorsAndJoinAttr) {
  Query q = JoinQuery("j", "r", 2, "s", 0,
                      {Predicate(1, CompareOp::kLt, 5)});
  EXPECT_TRUE(q.References("r"));
  EXPECT_TRUE(q.References("s"));
  EXPECT_FALSE(q.References("t"));
  EXPECT_EQ(q.JoinAttrFor("r"), 2);
  EXPECT_EQ(q.JoinAttrFor("s"), 0);
  EXPECT_EQ(q.JoinAttrFor("t"), -1);
  EXPECT_EQ(q.PredsFor("r").size(), 1u);
  EXPECT_TRUE(q.PredsFor("s").empty());
  EXPECT_EQ(q.PredicateAttrsFor("r"), std::vector<AttrId>{1});
}

TEST(QueryTest, ToStringIsInformative) {
  Query q = JoinQuery("demo", "r", 2, "s", 0);
  const std::string s = q.ToString();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("r.a2=s.a0"), std::string::npos);
}

TEST(QueryWindowTest, EvictsOldest) {
  QueryWindow w(3);
  for (int i = 0; i < 5; ++i) {
    Query q;
    q.name = "q" + std::to_string(i);
    w.Add(q);
  }
  EXPECT_EQ(w.size(), 3u);
  EXPECT_EQ(w.queries().front().name, "q2");
  EXPECT_EQ(w.queries().back().name, "q4");
}

TEST(QueryWindowTest, CountJoinsPerAttr) {
  QueryWindow w(10);
  w.Add(JoinQuery("a", "r", 0, "s", 0));
  w.Add(JoinQuery("b", "r", 0, "s", 0));
  w.Add(JoinQuery("c", "r", 1, "t", 0));
  EXPECT_EQ(w.CountJoins("r", 0), 2);
  EXPECT_EQ(w.CountJoins("r", 1), 1);
  EXPECT_EQ(w.CountJoins("r", 2), 0);
  EXPECT_EQ(w.CountJoins("s", 0), 2);
  EXPECT_EQ(w.JoinAttrsFor("r"), (std::vector<AttrId>{0, 1}));
}

TEST(QueryWindowTest, PredicateAttrsAggregated) {
  QueryWindow w(10);
  w.Add(JoinQuery("a", "r", 0, "s", 0, {Predicate(3, CompareOp::kLt, 5)}));
  w.Add(JoinQuery("b", "r", 0, "s", 0,
                  {Predicate(2, CompareOp::kGt, 1), Predicate(3, CompareOp::kEq, 2)}));
  EXPECT_EQ(w.PredicateAttrsFor("r"), (std::vector<AttrId>{2, 3}));
  EXPECT_TRUE(w.PredicateAttrsFor("s").empty());
}

TEST(QueryWindowTest, MinimumCapacityIsOne) {
  QueryWindow w(0);
  EXPECT_EQ(w.capacity(), 1);
}

struct TableFixture {
  Schema schema;
  std::vector<Record> records;
  MemBlockStore store{3};
  TreeSet trees;
  Reservoir sample{1000, 77};
  ClusterSim cluster;

  explicit TableFixture(uint64_t seed = 9, size_t n = 2000)
      : schema(Schema({{"a0", DataType::kInt64, 8},
                       {"a1", DataType::kInt64, 8},
                       {"a2", DataType::kInt64, 8}})) {
    Rng rng(seed);
    for (size_t i = 0; i < n; ++i) {
      records.push_back({Value(rng.UniformRange(0, 9999)),
                         Value(rng.UniformRange(0, 9999)),
                         Value(rng.UniformRange(0, 9999))});
    }
    sample.AddAll(records);
    UpfrontOptions opts;
    opts.num_levels = 4;
    opts.seed = seed;
    UpfrontPartitioner p(schema, opts);
    auto tree = p.Build(sample, &store);
    ADB_CHECK_OK(tree.status());
    ADB_CHECK_OK(LoadRecords(records, tree.ValueOrDie(), &store));
    for (BlockId b : tree.ValueOrDie().Leaves()) cluster.PlaceBlock(b);
    trees.Add(kUpfrontTree, std::move(tree).ValueOrDie());
  }
};

TEST(TreeSetTest, AddRemoveLookup) {
  TableFixture f;
  EXPECT_TRUE(f.trees.Has(kUpfrontTree));
  EXPECT_EQ(f.trees.Attrs(), std::vector<AttrId>{kUpfrontTree});
  EXPECT_FALSE(f.trees.Has(0));
  EXPECT_FALSE(f.trees.Remove(0).ok());
  EXPECT_FALSE(f.trees.Tree(0).ok());
  const auto all = f.trees.LookupAll({}, f.store);
  EXPECT_EQ(all.size(), f.store.num_blocks());
}

TEST(TreeSetTest, LiveLeavesSkipDeletedBlocks) {
  TableFixture f;
  auto leaves = f.trees.LiveLeaves(kUpfrontTree, f.store);
  const size_t before = leaves.size();
  ASSERT_TRUE(f.store.Delete(leaves[0]).ok());
  EXPECT_EQ(f.trees.LiveLeaves(kUpfrontTree, f.store).size(), before - 1);
}

TEST(TreeSetTest, RecordsUnderSumsTree) {
  TableFixture f;
  EXPECT_EQ(f.trees.RecordsUnder(kUpfrontTree, f.store),
            static_cast<int64_t>(f.records.size()));
}

TEST(TreeSetTest, PruneEmptyKeepsTargetAndDeletesLeaves) {
  TableFixture f;
  // Drain the upfront tree manually (clear, HDFS-append style).
  for (BlockId b : f.trees.LiveLeaves(kUpfrontTree, f.store)) {
    f.store.GetMutable(b).ValueOrDie()->ClearRecords();
  }
  // keep == upfront: nothing pruned.
  auto kept = f.trees.PruneEmpty(&f.store, &f.cluster, kUpfrontTree);
  EXPECT_TRUE(kept.empty());
  // keep != upfront: tree pruned and its empty leaf files deleted.
  auto removed = f.trees.PruneEmpty(&f.store, &f.cluster, 0);
  EXPECT_EQ(removed, std::vector<AttrId>{kUpfrontTree});
  EXPECT_EQ(f.trees.size(), 0u);
  EXPECT_EQ(f.store.num_blocks(), 0u);
}

TEST(SmoothRepartitionerTest, NoOpWithoutJoinAttr) {
  TableFixture f;
  QueryWindow w(10);
  SmoothRepartitioner smooth(f.schema, SmoothConfig{});
  auto report =
      smooth.Step("t", -1, w, f.sample, &f.trees, &f.store, &f.cluster);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.ValueOrDie().target_attr, -1);
  EXPECT_EQ(report.ValueOrDie().blocks_moved, 0);
}

TEST(SmoothRepartitionerTest, CreatesTreeAndMovesWindowFraction) {
  TableFixture f;
  QueryWindow w(10);
  Query q = JoinQuery("j", "t", 0, "other", 0);
  w.Add(q);
  SmoothConfig cfg;
  cfg.total_levels = 4;
  SmoothRepartitioner smooth(f.schema, cfg);
  auto report =
      smooth.Step("t", 0, w, f.sample, &f.trees, &f.store, &f.cluster);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.ValueOrDie().created_tree);
  EXPECT_TRUE(f.trees.Has(0));
  // Fig. 11: one of 10 window slots => ~10% of data moves.
  const double frac =
      static_cast<double>(report.ValueOrDie().records_moved) /
      static_cast<double>(f.records.size());
  EXPECT_GT(frac, 0.02);
  EXPECT_LT(frac, 0.35);
  // Total records preserved.
  EXPECT_EQ(f.store.TotalRecords(), f.records.size());
}

TEST(SmoothRepartitionerTest, ConvergesAsWindowFills) {
  TableFixture f;
  QueryWindow w(10);
  SmoothConfig cfg;
  cfg.total_levels = 4;
  SmoothRepartitioner smooth(f.schema, cfg);
  Query q = JoinQuery("j", "t", 0, "other", 0);
  for (int i = 0; i < 12; ++i) {
    w.Add(q);
    auto report =
        smooth.Step("t", 0, w, f.sample, &f.trees, &f.store, &f.cluster);
    ASSERT_TRUE(report.ok());
  }
  // All data should now live under the join tree and the upfront tree is
  // gone (the paper's final state in Fig. 10).
  EXPECT_EQ(f.trees.RecordsUnder(0, f.store),
            static_cast<int64_t>(f.records.size()));
  EXPECT_FALSE(f.trees.Has(kUpfrontTree));
}

TEST(SmoothRepartitionerTest, MinFrequencyGatesTreeCreation) {
  TableFixture f;
  QueryWindow w(10);
  SmoothConfig cfg;
  cfg.min_frequency = 3;
  SmoothRepartitioner smooth(f.schema, cfg);
  Query q = JoinQuery("j", "t", 0, "other", 0);
  w.Add(q);
  auto r1 = smooth.Step("t", 0, w, f.sample, &f.trees, &f.store, &f.cluster);
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(f.trees.Has(0));
  w.Add(q);
  w.Add(q);
  auto r2 = smooth.Step("t", 0, w, f.sample, &f.trees, &f.store, &f.cluster);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(f.trees.Has(0));
}

TEST(SmoothRepartitionerTest, SplitsDataBetweenTwoJoinAttrs) {
  TableFixture f;
  QueryWindow w(10);
  SmoothConfig cfg;
  cfg.total_levels = 4;
  SmoothRepartitioner smooth(f.schema, cfg);
  // 5 queries joining on attr 0, then 5 on attr 1.
  for (int i = 0; i < 5; ++i) {
    w.Add(JoinQuery("a", "t", 0, "x", 0));
    ASSERT_TRUE(
        smooth.Step("t", 0, w, f.sample, &f.trees, &f.store, &f.cluster).ok());
  }
  for (int i = 0; i < 5; ++i) {
    w.Add(JoinQuery("b", "t", 1, "y", 0));
    ASSERT_TRUE(
        smooth.Step("t", 1, w, f.sample, &f.trees, &f.store, &f.cluster).ok());
  }
  ASSERT_TRUE(f.trees.Has(0));
  ASSERT_TRUE(f.trees.Has(1));
  const int64_t under0 = f.trees.RecordsUnder(0, f.store);
  const int64_t under1 = f.trees.RecordsUnder(1, f.store);
  const int64_t total = static_cast<int64_t>(f.records.size());
  // Both trees hold a meaningful share, tracking the 50/50 window mix.
  EXPECT_GT(under0, total / 5);
  EXPECT_GT(under1, total / 5);
  EXPECT_EQ(f.store.TotalRecords(), f.records.size());
}

TEST(AmoebaAdapterTest, NoOpWithoutPredicates) {
  TableFixture f;
  QueryWindow w(10);
  AmoebaAdapter adapter(f.schema, AmoebaConfig{});
  auto tree = f.trees.Tree(kUpfrontTree);
  ASSERT_TRUE(tree.ok());
  auto report = adapter.Step("t", w, f.sample, tree.ValueOrDie(), &f.store,
                             &f.cluster);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.ValueOrDie().applied);
}

TEST(AmoebaAdapterTest, AdaptsToRepeatedSelectivePredicates) {
  // A narrow skewed workload: tree should adapt to cut on attr 2 more.
  TableFixture f(31);
  QueryWindow w(10);
  AmoebaConfig cfg;
  cfg.block_write_cost = 0.5;  // Eager adaptation for the test.
  AmoebaAdapter adapter(f.schema, cfg);
  Query q;
  q.name = "sel";
  q.tables = {{"t", {Predicate(2, CompareOp::kLt, 1000)}}};
  auto tree = f.trees.Tree(kUpfrontTree);
  ASSERT_TRUE(tree.ok());

  const int64_t before =
      static_cast<int64_t>(tree.ValueOrDie()->Lookup(q.PredsFor("t")).size());
  bool any_applied = false;
  for (int i = 0; i < 6; ++i) {
    w.Add(q);
    auto report = adapter.Step("t", w, f.sample, tree.ValueOrDie(), &f.store,
                               &f.cluster);
    ASSERT_TRUE(report.ok());
    any_applied |= report.ValueOrDie().applied;
  }
  const int64_t after =
      static_cast<int64_t>(tree.ValueOrDie()->Lookup(q.PredsFor("t")).size());
  EXPECT_TRUE(any_applied);
  EXPECT_LT(after, before);
  // Adaptation must not lose records.
  EXPECT_EQ(f.store.TotalRecords(), f.records.size());
}

TEST(AmoebaAdapterTest, PreservesJoinLevelsOfTwoPhaseTrees) {
  TableFixture f(32);
  // Build a two-phase tree on attr 0 and migrate everything into it.
  TwoPhaseOptions tp;
  tp.join_attr = 0;
  tp.join_levels = 2;
  tp.total_levels = 4;
  TwoPhasePartitioner partitioner(f.schema, tp);
  auto built = partitioner.Build(f.sample, &f.store);
  ASSERT_TRUE(built.ok());
  for (BlockId b : built.ValueOrDie().Leaves()) f.cluster.PlaceBlock(b);
  PartitionTree tree = std::move(built).ValueOrDie();

  QueryWindow w(10);
  AmoebaConfig cfg;
  cfg.block_write_cost = 0.1;
  AmoebaAdapter adapter(f.schema, cfg);
  Query q;
  q.name = "sel";
  q.tables = {{"t", {Predicate(2, CompareOp::kLt, 500)}}};
  for (int i = 0; i < 5; ++i) {
    w.Add(q);
    ASSERT_TRUE(
        adapter.Step("t", w, f.sample, &tree, &f.store, &f.cluster).ok());
  }
  // The join levels must still split on attr 0.
  EXPECT_EQ(tree.root()->attr, 0);
  EXPECT_EQ(tree.root()->left->attr, 0);
  EXPECT_EQ(tree.root()->right->attr, 0);
}

TEST(OptimizerTest, FullRepartitioningWaitsForHalfWindow) {
  TableFixture f;
  AdaptConfig cfg;
  cfg.full_repartitioning = true;
  cfg.smooth.total_levels = 4;
  Optimizer opt(f.schema, cfg);
  QueryWindow w(10);
  Query q = JoinQuery("j", "t", 0, "other", 0);
  // 4 queries: under half the window, nothing happens.
  for (int i = 0; i < 4; ++i) {
    w.Add(q);
    auto report =
        opt.OnQuery("t", q, w, f.sample, &f.trees, &f.store, &f.cluster);
    ASSERT_TRUE(report.ok());
    EXPECT_FALSE(f.trees.Has(0));
  }
  // 5th query crosses the threshold: everything moves at once.
  w.Add(q);
  auto report =
      opt.OnQuery("t", q, w, f.sample, &f.trees, &f.store, &f.cluster);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(f.trees.Has(0));
  EXPECT_EQ(f.trees.RecordsUnder(0, f.store),
            static_cast<int64_t>(f.records.size()));
  EXPECT_GT(report.ValueOrDie().smooth.records_moved, 0);
}

TEST(OptimizerTest, SmoothModeMovesIncrementally) {
  TableFixture f;
  AdaptConfig cfg;
  cfg.enable_amoeba = false;
  cfg.smooth.total_levels = 4;
  Optimizer opt(f.schema, cfg);
  QueryWindow w(10);
  Query q = JoinQuery("j", "t", 0, "other", 0);
  w.Add(q);
  auto report =
      opt.OnQuery("t", q, w, f.sample, &f.trees, &f.store, &f.cluster);
  ASSERT_TRUE(report.ok());
  const int64_t moved = report.ValueOrDie().smooth.records_moved;
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, static_cast<int64_t>(f.records.size()) / 2);
}

}  // namespace
}  // namespace adaptdb
