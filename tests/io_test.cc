// Tests for the persistent storage engine (src/io/): block serialization
// round-trips and malformed-input handling, segment files, BufferPool
// semantics (hits/misses, eviction, pin protection, dirty write-back), the
// DiskBlockStore surface, and — the core contract — exact parity between
// the in-memory and disk-backed stores: the full partition → scan →
// hyper-join vs shuffle-join pipeline must produce identical results and
// identical logical IoStats at 1, 2 and 8 threads, even when the buffer is
// far smaller than the dataset (eviction + re-read).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdlib>

#include <map>
#include <string>
#include <vector>

#include "core/database.h"
#include "exec/hyper_join.h"
#include "exec/scan.h"
#include "exec/shuffle_join.h"
#include "io/buffer_pool.h"
#include "io/disk_block_store.h"
#include "io/format.h"
#include "io/segment_file.h"
#include "join/grouping.h"
#include "join/overlap.h"
#include "testing_util.h"
#include "tree/upfront_partitioner.h"
#include "workload/tpch.h"

namespace adaptdb {
namespace {

using adaptdb::testing::TinyTpch;

// ---------------------------------------------------------------------------
// Serialization format.

Block MakeBlock(BlockId id, const std::vector<Record>& records,
                int32_t num_attrs) {
  Block b(id, num_attrs);
  for (const Record& r : records) b.Add(r);
  return b;
}

void ExpectBlocksEqual(const Block& a, const Block& b) {
  EXPECT_EQ(a.id(), b.id());
  EXPECT_EQ(a.num_attrs(), b.num_attrs());
  ASSERT_EQ(a.num_records(), b.num_records());
  EXPECT_EQ(a.MaterializeRecords(), b.MaterializeRecords());
  EXPECT_EQ(a.ranges(), b.ranges());
}

TEST(FormatTest, RoundTripsMixedTypes) {
  const Block block = MakeBlock(
      7,
      {{Value(int64_t{42}), Value(3.5), Value("hello")},
       {Value(int64_t{-1}), Value(-0.0), Value("")},
       {Value(int64_t{INT64_MIN}), Value(1e-308), Value("snow\0man")}},
      3);
  auto decoded = io::DecodeBlock(io::EncodeBlock(block), 3);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectBlocksEqual(block, decoded.ValueOrDie());
  // -0.0 must survive bit-exactly (operator== treats it equal to 0.0).
  EXPECT_TRUE(std::signbit(decoded.ValueOrDie().column(1).doubles()[1]));
}

TEST(FormatTest, RoundTripsEmptyBlock) {
  const Block block(11, 4);
  auto decoded = io::DecodeBlock(io::EncodeBlock(block), 4);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectBlocksEqual(block, decoded.ValueOrDie());
  EXPECT_TRUE(decoded.ValueOrDie().empty());
}

TEST(FormatTest, RoundTripsMaxWidthRecords) {
  // Wide records of long strings: stresses length framing.
  Record wide;
  for (int i = 0; i < 64; ++i) {
    wide.push_back(Value(std::string(1000 + i, 'x')));
  }
  const Block block = MakeBlock(3, {wide, wide}, 64);
  auto decoded = io::DecodeBlock(io::EncodeBlock(block), 64);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectBlocksEqual(block, decoded.ValueOrDie());
}

TEST(FormatTest, TruncatedBufferIsCleanCorruption) {
  const Block block =
      MakeBlock(1, {{Value(int64_t{1}), Value(int64_t{2})}}, 2);
  const std::string bytes = io::EncodeBlock(block);
  for (const size_t cut :
       {size_t{0}, size_t{10}, io::kBlockHeaderBytes - 1,
        io::kBlockHeaderBytes, bytes.size() - 1}) {
    auto decoded = io::DecodeBlock(std::string_view(bytes).substr(0, cut), 2);
    ASSERT_FALSE(decoded.ok()) << "cut at " << cut;
    EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
  }
}

TEST(FormatTest, BadChecksumRejected) {
  const Block block =
      MakeBlock(1, {{Value(int64_t{1}), Value("abc")}}, 2);
  std::string bytes = io::EncodeBlock(block);
  bytes[bytes.size() - 1] ^= 0x40;  // Flip a payload bit.
  auto decoded = io::DecodeBlock(bytes, 2);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
  EXPECT_NE(decoded.status().message().find("checksum"), std::string::npos);
}

TEST(FormatTest, VersionMismatchRejected) {
  const Block block = MakeBlock(1, {{Value(int64_t{5})}}, 1);
  std::string bytes = io::EncodeBlock(block);
  bytes[4] = 99;  // Version field (little-endian u16 at offset 4).
  auto decoded = io::DecodeBlock(bytes, 1);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("version"), std::string::npos);
}

TEST(FormatTest, BadMagicAndWrongSchemaRejected) {
  const Block block = MakeBlock(1, {{Value(int64_t{5})}}, 1);
  std::string bytes = io::EncodeBlock(block);
  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_EQ(io::DecodeBlock(bad_magic, 1).status().code(),
            StatusCode::kCorruption);
  // Attribute count mismatch against the reading schema.
  EXPECT_EQ(io::DecodeBlock(bytes, 2).status().code(),
            StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// Segment files.

TEST(SegmentFileTest, AppendReadRoundTripAndRollover) {
  auto store = std::move(DiskBlockStore::Open(1, {})).ValueOrDie();
  // Tiny segments force rollover.
  auto mgr = std::move(io::SegmentManager::Open(store->dir() + "/segtest",
                                                /*segment_max_bytes=*/64))
                 .ValueOrDie();
  std::vector<io::BlockLocation> locs;
  std::vector<std::string> payloads;
  for (int i = 0; i < 10; ++i) {
    payloads.push_back(std::string(40, static_cast<char>('a' + i)));
    locs.push_back(std::move(mgr->Append(payloads.back())).ValueOrDie());
  }
  EXPECT_GT(locs.back().segment_id, 0u);  // Rolled over at least once.
  for (int i = 0; i < 10; ++i) {
    std::string out;
    ASSERT_TRUE(mgr->ReadAt(locs[static_cast<size_t>(i)], &out).ok());
    EXPECT_EQ(out, payloads[static_cast<size_t>(i)]);
  }
  EXPECT_EQ(mgr->TotalBytes(), 400);
}

TEST(SegmentFileTest, TruncatedFileIsCleanCorruption) {
  auto base = std::move(DiskBlockStore::Open(1, {})).ValueOrDie();
  const std::string dir = base->dir() + "/trunc";
  auto mgr =
      std::move(io::SegmentManager::Open(dir, 1 << 20)).ValueOrDie();
  const auto loc = std::move(mgr->Append(std::string(100, 'z'))).ValueOrDie();
  ASSERT_TRUE(mgr->Sync().ok());
  ASSERT_EQ(::truncate((dir + "/seg-000000.adb").c_str(), 50), 0);
  std::string out;
  const Status st = mgr->ReadAt(loc, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
}

TEST(SegmentFileTest, RefusesToReopenNonEmptyDirectory) {
  auto base = std::move(DiskBlockStore::Open(1, {})).ValueOrDie();
  const std::string dir = base->dir() + "/reopen";
  {
    auto mgr = std::move(io::SegmentManager::Open(dir, 1 << 20)).ValueOrDie();
    ASSERT_TRUE(mgr->Append("some data").ok());
  }
  // A second manager over the same files would append from offset 0 and
  // clobber them; it must fail loudly instead.
  auto reopened = io::SegmentManager::Open(dir, 1 << 20);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// BufferPool.

/// An in-memory BlockSource that counts physical traffic.
class FakeSource : public io::BlockSource {
 public:
  explicit FakeSource(int32_t num_attrs) : num_attrs_(num_attrs) {}

  Result<Block> LoadBlock(BlockId id) override {
    ++loads_;
    auto it = disk_.find(id);
    if (it == disk_.end()) {
      return Status::NotFound("block " + std::to_string(id));
    }
    return io::DecodeBlock(it->second, num_attrs_);
  }

  Status WriteBack(const Block& block) override {
    ++writebacks_;
    disk_[block.id()] = io::EncodeBlock(block);
    return Status::OK();
  }

  void Put(const Block& block) { disk_[block.id()] = io::EncodeBlock(block); }
  bool Has(BlockId id) const { return disk_.count(id) > 0; }
  int64_t loads() const { return loads_; }
  int64_t writebacks() const { return writebacks_; }

 private:
  int32_t num_attrs_;
  std::map<BlockId, std::string> disk_;
  int64_t loads_ = 0;
  int64_t writebacks_ = 0;
};

TEST(BufferPoolTest, HitsAndMissesCounted) {
  FakeSource source(1);
  for (BlockId id = 0; id < 3; ++id) {
    source.Put(MakeBlock(id, {{Value(id)}}, 1));
  }
  io::BufferPool pool(2, &source);
  ASSERT_TRUE(pool.Pin(0).ok());
  ASSERT_TRUE(pool.Pin(0).ok());
  ASSERT_TRUE(pool.Pin(1).ok());
  const io::BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(source.loads(), 2);
  EXPECT_EQ(pool.resident_blocks(), 2);
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsedUnpinned) {
  FakeSource source(1);
  for (BlockId id = 0; id < 3; ++id) {
    source.Put(MakeBlock(id, {{Value(id)}}, 1));
  }
  io::BufferPool pool(2, &source);
  ASSERT_TRUE(pool.Pin(0).ok());
  ASSERT_TRUE(pool.Pin(1).ok());
  ASSERT_TRUE(pool.Pin(0).ok());  // 0 is now MRU.
  ASSERT_TRUE(pool.Pin(2).ok());  // Evicts 1 (LRU, unpinned, clean).
  EXPECT_EQ(pool.resident_blocks(), 2);
  EXPECT_EQ(pool.Peek(1), nullptr);
  EXPECT_NE(pool.Peek(0), nullptr);
  EXPECT_EQ(pool.stats().evictions, 1);
  EXPECT_EQ(source.writebacks(), 0);  // Clean eviction writes nothing.
  // Re-pinning 1 is a fresh load.
  ASSERT_TRUE(pool.Pin(1).ok());
  EXPECT_EQ(source.loads(), 4);
}

TEST(BufferPoolTest, PinnedBlocksSurviveEvictionPressure) {
  FakeSource source(1);
  for (BlockId id = 0; id < 4; ++id) {
    source.Put(MakeBlock(id, {{Value(id)}}, 1));
  }
  io::BufferPool pool(1, &source);
  auto pinned = std::move(pool.Pin(0)).ValueOrDie();
  // Churn through other blocks: 0 stays resident (soft overshoot), the
  // record data behind `pinned` is never freed.
  for (BlockId id = 1; id < 4; ++id) {
    ASSERT_TRUE(pool.Pin(id).ok());
  }
  EXPECT_EQ(pinned->ValueAt(0, 0).AsInt64(), 0);
  EXPECT_NE(pool.Peek(0), nullptr);
  pinned.reset();
  // The next miss triggers eviction, and 0 is now evictable.
  ASSERT_TRUE(pool.Pin(1).ok());
  EXPECT_EQ(pool.resident_blocks(), 1);
  EXPECT_EQ(pool.Peek(0), nullptr);
}

TEST(BufferPoolTest, DirtyEvictionWritesBackAndReloads) {
  FakeSource source(1);
  io::BufferPool pool(1, &source);
  pool.Insert(0, MakeBlock(0, {}, 1));
  {
    auto mut = std::move(pool.PinMutable(0)).ValueOrDie();
    mut->Add({Value(int64_t{77})});
  }
  EXPECT_FALSE(source.Has(0));  // Dirty data still only in the pool.
  pool.Insert(1, MakeBlock(1, {}, 1));  // Evicts 0 → write-back.
  EXPECT_TRUE(source.Has(0));
  EXPECT_EQ(source.writebacks(), 1);
  auto reloaded = std::move(pool.Pin(0)).ValueOrDie();
  ASSERT_EQ(reloaded->num_records(), 1u);
  EXPECT_EQ(reloaded->ValueAt(0, 0).AsInt64(), 77);
}

TEST(BufferPoolTest, FlushDoesNotLoseMutationsThroughHeldPins) {
  FakeSource source(1);
  io::BufferPool pool(1, &source);
  pool.Insert(0, MakeBlock(0, {}, 1));
  auto mut = std::move(pool.PinMutable(0)).ValueOrDie();
  ASSERT_TRUE(pool.FlushAll().ok());  // Snapshot written, pin still held.
  mut->Add({Value(int64_t{5})});      // Mutation after the flush.
  mut.reset();
  pool.Insert(1, MakeBlock(1, {}, 1));  // Evicts 0 — must write back again.
  auto reloaded = std::move(pool.Pin(0)).ValueOrDie();
  ASSERT_EQ(reloaded->num_records(), 1u);
  EXPECT_EQ(reloaded->ValueAt(0, 0).AsInt64(), 5);
}

TEST(BufferPoolTest, FlushAllPersistsDirtyFrames) {
  FakeSource source(1);
  io::BufferPool pool(8, &source);
  pool.Insert(0, MakeBlock(0, {{Value(int64_t{1})}}, 1));
  pool.Insert(1, MakeBlock(1, {{Value(int64_t{2})}}, 1));
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_TRUE(source.Has(0));
  EXPECT_TRUE(source.Has(1));
  // A second flush writes nothing: frames are clean now.
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(source.writebacks(), 2);
}

// ---------------------------------------------------------------------------
// DiskBlockStore surface.

TEST(DiskBlockStoreTest, CrudMatchesMemStoreSemantics) {
  auto store = std::move(DiskBlockStore::Open(2, {})).ValueOrDie();
  const BlockId a = store->CreateBlock();
  const BlockId b = store->CreateBlock();
  EXPECT_EQ(store->BlockIds(), (std::vector<BlockId>{a, b}));
  EXPECT_TRUE(store->Contains(a));
  store->GetMutable(a).ValueOrDie()->Add({Value(int64_t{1}), Value("x")});
  store->GetMutable(a).ValueOrDie()->Add({Value(int64_t{2}), Value("y")});
  EXPECT_EQ(store->TotalRecords(), 2u);
  EXPECT_EQ(store->num_blocks(), 2u);
  ASSERT_TRUE(store->Delete(b).ok());
  EXPECT_FALSE(store->Contains(b));
  EXPECT_EQ(store->Get(b).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store->GetOrNull(b), nullptr);
  EXPECT_EQ(store->Delete(b).code(), StatusCode::kNotFound);
  // Same NotFound message shape as the in-memory store.
  EXPECT_EQ(store->Get(b).status().message(),
            "block " + std::to_string(b));
}

TEST(DiskBlockStoreTest, DataSurvivesEvictionThroughRealFiles) {
  StorageConfig config;
  config.buffer_blocks = 2;
  auto store = std::move(DiskBlockStore::Open(1, config)).ValueOrDie();
  constexpr int kBlocks = 10;
  for (BlockId id = 0; id < kBlocks; ++id) {
    ASSERT_EQ(store->CreateBlock(), id);
    auto blk = store->GetMutable(id);
    ASSERT_TRUE(blk.ok());
    for (int64_t i = 0; i < 5; ++i) {
      blk.ValueOrDie()->Add({Value(id * 100 + i)});
    }
  }
  // Far more blocks than the pool holds: most were evicted (written back).
  EXPECT_LE(store->resident_blocks(), 3);
  EXPECT_GT(store->segment_bytes(), 0);
  EXPECT_EQ(store->TotalRecords(), static_cast<size_t>(kBlocks) * 5);
  for (BlockId id = 0; id < kBlocks; ++id) {
    auto blk = store->Get(id);
    ASSERT_TRUE(blk.ok()) << blk.status().ToString();
    ASSERT_EQ(blk.ValueOrDie()->num_records(), 5u);
    EXPECT_EQ(blk.ValueOrDie()->ValueAt(3, 0).AsInt64(), id * 100 + 3);
    EXPECT_EQ(blk.ValueOrDie()->range(0).lo, Value(id * 100));
    EXPECT_EQ(blk.ValueOrDie()->range(0).hi, Value(id * 100 + 4));
  }
  const StorageCounters counters = store->counters();
  EXPECT_GT(counters.buffer_misses, 0);
  EXPECT_GT(counters.physical_block_writes, 0);
}

TEST(DiskBlockStoreTest, RecordCountIsExactWithoutPhysicalReads) {
  StorageConfig config;
  config.buffer_blocks = 1;
  auto store = std::move(DiskBlockStore::Open(1, config)).ValueOrDie();
  for (BlockId id = 0; id < 4; ++id) {
    store->CreateBlock();
    auto blk = store->GetMutable(id);
    for (int64_t i = 0; i <= id; ++i) blk.ValueOrDie()->Add({Value(i)});
  }
  // Blocks 0..2 were evicted (written back); 3 may be resident and dirty.
  const io::BufferPoolStats before = store->pool_stats();
  for (BlockId id = 0; id < 4; ++id) {
    auto count = store->RecordCount(id);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(count.ValueOrDie(), static_cast<size_t>(id) + 1);
  }
  // Counting is metadata-only: no pool misses were incurred.
  EXPECT_EQ(store->pool_stats().misses, before.misses);
  EXPECT_EQ(store->RecordCount(99).status().code(), StatusCode::kNotFound);
}

TEST(DiskBlockStoreTest, SizeBytesHintIsResidencyIndependent) {
  StorageConfig config;
  config.buffer_blocks = 2;
  auto store = std::move(DiskBlockStore::Open(1, config)).ValueOrDie();
  for (BlockId id = 0; id < 4; ++id) {
    store->CreateBlock();
    auto blk = store->GetMutable(id);
    for (int64_t i = 0; i <= id * 3; ++i) blk.ValueOrDie()->Add({Value(i)});
  }
  ASSERT_TRUE(store->Flush().ok());  // Every block now has an extent.
  std::vector<int64_t> cold;
  for (BlockId id = 0; id < 4; ++id) cold.push_back(store->SizeBytesHint(id));
  for (BlockId id = 0; id < 4; ++id) {
    EXPECT_GT(cold[static_cast<size_t>(id)], 0);
    auto pin = store->Get(id);  // Make the block resident.
    ASSERT_TRUE(pin.ok());
    // Residency must not change the hint: ComputeMorselRanges' adaptive
    // decomposition is a pure function of persisted metadata, so the hint
    // cannot vary with buffer-pool state at call time.
    EXPECT_EQ(store->SizeBytesHint(id), cold[static_cast<size_t>(id)]) << id;
  }
  // A freshly created block has no persisted extent: unknown, not a guess
  // from the dirty resident copy.
  const BlockId fresh = store->CreateBlock();
  EXPECT_EQ(store->SizeBytesHint(fresh), -1);
}

TEST(DiskBlockStoreTest, HandleMaySafelyOutliveTheStore) {
  BlockRef survivor;
  {
    auto store = std::move(DiskBlockStore::Open(1, {})).ValueOrDie();
    const BlockId a = store->CreateBlock();
    store->GetMutable(a).ValueOrDie()->Add({Value(int64_t{123})});
    survivor = store->Get(a).ValueOrDie();
  }
  // The store, its pool and its segment files are gone; the pinned block's
  // memory is not (ASan validates the unpin path on destruction).
  ASSERT_EQ(survivor->num_records(), 1u);
  EXPECT_EQ(survivor->ValueAt(0, 0).AsInt64(), 123);
  survivor.reset();
}

TEST(DiskBlockStoreTest, FlushThenCorruptSurfacesCleanError) {
  StorageConfig config;
  config.buffer_blocks = 1;
  auto store = std::move(DiskBlockStore::Open(1, config)).ValueOrDie();
  const BlockId a = store->CreateBlock();
  store->GetMutable(a).ValueOrDie()->Add({Value(int64_t{9})});
  ASSERT_TRUE(store->Flush().ok());
  store->CreateBlock();  // Evict `a` so the next Get must re-read the file.
  ASSERT_TRUE(store->Flush().ok());
  // Smash the first segment.
  const std::string seg = store->dir() + "/seg-000000.adb";
  FILE* f = fopen(seg.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  fputc('Z', f);
  fclose(f);
  auto blk = store->Get(a);
  if (blk.ok()) {
    GTEST_SKIP() << "block still resident; eviction order changed";
  }
  EXPECT_EQ(blk.status().code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// Parity: the disk-backed store must be observationally identical to the
// in-memory one — results AND logical IoStats — at any thread count.

struct ParityFixture {
  std::unique_ptr<MemBlockStore> mem;
  std::unique_ptr<DiskBlockStore> disk;
  std::vector<BlockId> blocks;
  ClusterSim cluster;
};

/// Builds the same deterministic dataset into both backends. The disk store
/// gets a buffer far below the block count, so execution evicts and
/// re-reads constantly.
ParityFixture MakeParityFixture(int32_t n_blocks, int32_t n_attrs,
                                uint64_t seed) {
  ParityFixture fx;
  fx.mem = std::make_unique<MemBlockStore>(n_attrs);
  StorageConfig config;
  config.buffer_blocks = 2;
  fx.disk = std::move(DiskBlockStore::Open(n_attrs, config)).ValueOrDie();
  for (BlockStore* store :
       {static_cast<BlockStore*>(fx.mem.get()),
        static_cast<BlockStore*>(fx.disk.get())}) {
    Rng rng(seed);
    for (int32_t b = 0; b < n_blocks; ++b) {
      const BlockId id = store->CreateBlock();
      auto blk = store->GetMutable(id);
      for (int32_t i = 0; i < 32; ++i) {
        Record rec;
        for (int32_t a = 0; a < n_attrs; ++a) {
          rec.push_back(Value(rng.UniformRange(0, 999)));
        }
        blk.ValueOrDie()->Add(rec);
      }
    }
  }
  fx.blocks = fx.mem->BlockIds();
  EXPECT_EQ(fx.blocks, fx.disk->BlockIds());
  for (BlockId b : fx.blocks) fx.cluster.PlaceBlock(b);
  return fx;
}

void ExpectLogicalIoEqual(const IoStats& mem, const IoStats& disk) {
  EXPECT_EQ(mem.local_block_reads, disk.local_block_reads);
  EXPECT_EQ(mem.remote_block_reads, disk.remote_block_reads);
  EXPECT_EQ(mem.block_writes, disk.block_writes);
  EXPECT_EQ(mem.shuffled_blocks, disk.shuffled_blocks);
}

TEST(StorageParityTest, ScanIdenticalAcrossBackendsAndThreads) {
  ParityFixture fx = MakeParityFixture(24, 3, 5);
  const PredicateSet preds = {Predicate(1, CompareOp::kLt, int64_t{400})};
  for (const int32_t threads : {1, 2, 8}) {
    ExecConfig config;
    config.num_threads = threads;
    const ScanResult mem =
        ScanBlocks(*fx.mem, fx.blocks, preds, fx.cluster, config)
            .ValueOrDie();
    const ScanResult disk =
        ScanBlocks(*fx.disk, fx.blocks, preds, fx.cluster, config)
            .ValueOrDie();
    EXPECT_EQ(mem.rows_matched, disk.rows_matched) << threads;
    EXPECT_EQ(mem.blocks_read, disk.blocks_read) << threads;
    EXPECT_EQ(mem.blocks_skipped, disk.blocks_skipped) << threads;
    ExpectLogicalIoEqual(mem.io, disk.io);
  }
  // The small buffer really did miss: the disk store did physical reads.
  EXPECT_GT(fx.disk->pool_stats().misses, 0);
}

TEST(StorageParityTest, JoinsIdenticalAcrossBackendsAndThreads) {
  ParityFixture r = MakeParityFixture(16, 2, 21);
  ParityFixture s = MakeParityFixture(12, 2, 22);
  // One cluster so scheduling matches across backends.
  ClusterSim cluster;
  for (BlockId b : r.blocks) cluster.PlaceBlock(b);
  for (BlockId b : s.blocks) cluster.PlaceBlock(b);

  const OverlapMatrix overlap_mem =
      ComputeOverlap(*r.mem, r.blocks, 0, *s.mem, s.blocks, 0).ValueOrDie();
  const OverlapMatrix overlap_disk =
      ComputeOverlap(*r.disk, r.blocks, 0, *s.disk, s.blocks, 0).ValueOrDie();
  const Grouping grouping = BottomUpGrouping(overlap_mem, 4).ValueOrDie();
  ASSERT_EQ(BottomUpGrouping(overlap_disk, 4).ValueOrDie().groups,
            grouping.groups);

  for (const int32_t threads : {1, 2, 8}) {
    ExecConfig config;
    config.num_threads = threads;

    std::vector<Record> hyper_mem_rows, hyper_disk_rows;
    const JoinExecResult hyper_mem =
        HyperJoin(*r.mem, 0, {}, *s.mem, 0, {}, overlap_mem, grouping,
                  cluster, config, &hyper_mem_rows)
            .ValueOrDie();
    const JoinExecResult hyper_disk =
        HyperJoin(*r.disk, 0, {}, *s.disk, 0, {}, overlap_disk, grouping,
                  cluster, config, &hyper_disk_rows)
            .ValueOrDie();
    // Exact sequence equality, not just multisets: both backends must walk
    // blocks in the same order.
    EXPECT_EQ(hyper_mem_rows, hyper_disk_rows) << threads;
    EXPECT_EQ(hyper_mem.counts.output_rows, hyper_disk.counts.output_rows);
    EXPECT_EQ(hyper_mem.counts.checksum, hyper_disk.counts.checksum);
    EXPECT_EQ(hyper_mem.r_blocks_read, hyper_disk.r_blocks_read);
    EXPECT_EQ(hyper_mem.s_blocks_read, hyper_disk.s_blocks_read);
    ExpectLogicalIoEqual(hyper_mem.io, hyper_disk.io);

    std::vector<Record> shuffle_mem_rows, shuffle_disk_rows;
    const JoinExecResult shuffle_mem =
        ShuffleJoin(*r.mem, r.blocks, 0, {}, *s.mem, s.blocks, 0, {},
                    cluster, config, &shuffle_mem_rows)
            .ValueOrDie();
    const JoinExecResult shuffle_disk =
        ShuffleJoin(*r.disk, r.blocks, 0, {}, *s.disk, s.blocks, 0, {},
                    cluster, config, &shuffle_disk_rows)
            .ValueOrDie();
    EXPECT_EQ(shuffle_mem_rows, shuffle_disk_rows) << threads;
    EXPECT_EQ(shuffle_mem.counts.checksum, shuffle_disk.counts.checksum);
    ExpectLogicalIoEqual(shuffle_mem.io, shuffle_disk.io);

    // And the two algorithms agree with each other, per backend.
    EXPECT_EQ(hyper_disk.counts.output_rows, shuffle_disk.counts.output_rows);
    EXPECT_EQ(hyper_disk.counts.checksum, shuffle_disk.counts.checksum);
  }
}

TEST(StorageParityTest, FullPipelineThroughDatabaseMatches) {
  // Two Databases over TinyTpch — one per backend, adaptation enabled — run
  // the same join workload; every run's results, logical I/O and simulated
  // seconds must match. The disk database's buffer is smaller than its
  // block count, so the adaptive repartitioning path (block migration,
  // deletion, tree rebuilds) also executes under eviction.
  DatabaseOptions mem_opts;
  mem_opts.planner.exec.num_threads = 2;
  DatabaseOptions disk_opts = mem_opts;
  disk_opts.cluster.storage.backend = StorageConfig::Backend::kDisk;
  disk_opts.cluster.storage.buffer_blocks = 4;

  Database mem_db(mem_opts), disk_db(disk_opts);
  for (Database* db : {&mem_db, &disk_db}) {
    TableOptions topt;
    topt.upfront_levels = 4;
    ASSERT_TRUE(db->CreateTable("lineitem", TinyTpch().lineitem_schema,
                                TinyTpch().lineitem, topt)
                    .ok());
    ASSERT_TRUE(db->CreateTable("orders", TinyTpch().orders_schema,
                                TinyTpch().orders, topt)
                    .ok());
  }

  Query join;
  join.name = "lo";
  join.tables = {{"lineitem", {}}, {"orders", {}}};
  join.joins = {{"lineitem", tpch::kLOrderKey, "orders", tpch::kOOrderKey}};
  for (int round = 0; round < 4; ++round) {
    const QueryRunResult mem = mem_db.RunQuery(join).ValueOrDie();
    const QueryRunResult disk = disk_db.RunQuery(join).ValueOrDie();
    EXPECT_EQ(mem.output_rows, disk.output_rows) << round;
    EXPECT_EQ(mem.checksum, disk.checksum) << round;
    EXPECT_EQ(mem.records_repartitioned, disk.records_repartitioned) << round;
    ExpectLogicalIoEqual(mem.io, disk.io);
    EXPECT_DOUBLE_EQ(mem.seconds, disk.seconds) << round;
    // The in-memory backend reports no physical traffic; the disk one does.
    // (Unless ADAPTDB_STORAGE=disk put both databases on disk.)
    if (std::getenv("ADAPTDB_STORAGE") == nullptr) {
      EXPECT_EQ(mem.io.buffer_misses, 0);
    }
  }
  EXPECT_GT(disk_db.GetTable("lineitem")
                .ValueOrDie()
                ->store()
                ->counters()
                .buffer_misses,
            0);
}

}  // namespace
}  // namespace adaptdb
