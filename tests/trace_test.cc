/// \file trace_test.cc
/// \brief Event tracer + introspection server tests: ring semantics, global
/// ordering, Chrome JSON export, concurrent record/export safety, and the
/// HTTP endpoints served over a real localhost socket.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "obs/trace.h"
#include "testing_util.h"
#include "workload/drivers.h"
#include "workload/tpch.h"

namespace adaptdb {
namespace {

using adaptdb::testing::TinyTpch;

/// The tracer is process-global: every test drains it on entry (discarding
/// other tests' leftovers) and disables it on exit.
class TracerGuard {
 public:
  TracerGuard() {
    obs::Tracer::Instance().Snapshot(/*drain=*/true);
    obs::Tracer::Instance().SetEnabled(true);
  }
  ~TracerGuard() {
    obs::Tracer::Instance().SetEnabled(false);
    obs::Tracer::Instance().Snapshot(/*drain=*/true);
    obs::Tracer::Instance().SetBufferCapacity(
        obs::Tracer::kDefaultBufferCapacity);
  }
};

/// Events of one category, in snapshot (sequence) order.
std::vector<obs::TraceEvent> OfCategory(
    const std::vector<obs::TraceEvent>& events, const char* category) {
  std::vector<obs::TraceEvent> out;
  for (const obs::TraceEvent& e : events) {
    if (std::strcmp(e.category, category) == 0) out.push_back(e);
  }
  return out;
}

TEST(TraceTest, SpansAndInstantsOrderedBySequence) {
  if (!obs::kTracingCompiled) {
    EXPECT_TRUE(obs::Tracer::Instance().Snapshot().empty());
    GTEST_SKIP() << "tracing compiled out";
  }
  TracerGuard guard;
  {
    obs::TraceSpan outer("trace_test_order", "outer");
    obs::Tracer::Instant("trace_test_order", "mark", "i", 1);
    {
      obs::TraceSpan inner("trace_test_order", "inner", "i", 2);
    }
  }
  const auto events =
      OfCategory(obs::Tracer::Instance().Snapshot(), "trace_test_order");
  // Spans record at scope *exit*: mark, inner, outer.
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "mark");
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_STREQ(events[2].name, "outer");
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LT(events[1].seq, events[2].seq);
  // The instant has no duration; the spans do, and outer contains inner.
  EXPECT_EQ(events[0].dur_nanos, -1);
  EXPECT_GE(events[1].dur_nanos, 0);
  EXPECT_GE(events[2].dur_nanos, 0);
  EXPECT_LE(events[2].ts_nanos, events[1].ts_nanos);
  EXPECT_GE(events[2].ts_nanos + events[2].dur_nanos,
            events[1].ts_nanos + events[1].dur_nanos);
  // Arguments round-trip.
  EXPECT_STREQ(events[1].arg_name, "i");
  EXPECT_EQ(events[1].arg_value, 2);
}

TEST(TraceTest, RingOverwriteKeepsNewestEvents) {
  if (!obs::kTracingCompiled) GTEST_SKIP() << "tracing compiled out";
  TracerGuard guard;
  obs::Tracer::Instance().SetBufferCapacity(16);
  // A fresh thread leases a fresh (resized, reset) buffer, so exactly the
  // newest 16 of its 40 events survive.
  std::thread t([] {
    for (int64_t i = 0; i < 40; ++i) {
      obs::Tracer::Instant("trace_test_ring", "e", "i", i);
    }
  });
  t.join();
  const auto events =
      OfCategory(obs::Tracer::Instance().Snapshot(), "trace_test_ring");
  ASSERT_EQ(events.size(), 16u);
  for (size_t k = 0; k < events.size(); ++k) {
    EXPECT_EQ(events[k].arg_value, 24 + static_cast<int64_t>(k));
  }
}

TEST(TraceTest, DisabledRecordsNothing) {
  TracerGuard guard;
  obs::Tracer::Instance().SetEnabled(false);
  {
    obs::TraceSpan span("trace_test_off", "s");
    obs::Tracer::Instant("trace_test_off", "i");
  }
  EXPECT_TRUE(
      OfCategory(obs::Tracer::Instance().Snapshot(), "trace_test_off")
          .empty());
}

/// Minimal structural JSON check: quotes-aware brace/bracket balance.
bool BalancedJson(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

TEST(TraceTest, ChromeJsonWellFormed) {
  TracerGuard guard;
  { obs::TraceSpan span("trace_test_json", "span", "rows", 7); }
  obs::Tracer::Instant("trace_test_json", "tick");
  const std::string json = obs::Tracer::Instance().ToChromeJson();
  EXPECT_TRUE(BalancedJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  if (obs::kTracingCompiled) {
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"rows\":7"), std::string::npos) << json;
  } else {
    EXPECT_EQ(json, "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
  }
}

// 8 writer threads race concurrent drains; nothing is lost or duplicated:
// every drained snapshot plus the final one partition the recorded events.
// This is the TSan regression test for the per-buffer mutex design.
TEST(TraceTest, ConcurrentRecordAndDrain) {
  if (!obs::kTracingCompiled) GTEST_SKIP() << "tracing compiled out";
  TracerGuard guard;
  constexpr int kThreads = 8;
  constexpr int64_t kPerThread = 2000;
  // Entry and exit barriers keep all 8 leases alive simultaneously, so
  // every writer owns a distinct ring and no ring sees more than
  // kPerThread (< capacity) events. Without the exit barrier a fast writer
  // exits, the next thread reuses its freelisted ring, the accumulated
  // count wraps the ring before the (starved, on one core) reader drains —
  // the documented overwrite semantics, but not what this test measures.
  std::atomic<int> ready{0};
  std::atomic<int> done{0};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&ready, &done] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      for (int64_t i = 0; i < kPerThread; ++i) {
        obs::TraceSpan span("trace_test_conc", "work", "i", i);
      }
      done.fetch_add(1);
      while (done.load() < kThreads) std::this_thread::yield();
    });
  }
  std::atomic<bool> stop{false};
  int64_t drained = 0;
  std::thread reader([&] {
    while (!stop.load()) {
      drained += static_cast<int64_t>(
          OfCategory(obs::Tracer::Instance().Snapshot(/*drain=*/true),
                     "trace_test_conc")
              .size());
    }
  });
  for (std::thread& w : writers) w.join();
  stop.store(true);
  reader.join();
  drained += static_cast<int64_t>(
      OfCategory(obs::Tracer::Instance().Snapshot(/*drain=*/true),
                 "trace_test_conc")
          .size());
  // Continuous draining keeps every ring far below capacity, so no event
  // of this category was ever overwritten.
  EXPECT_EQ(drained, kThreads * kPerThread);
}

// --- End-to-end: a real query leaves events in every hot subsystem -------

Query JoinQuery() {
  Query q;
  q.name = "lo_join";
  q.tables = {{"lineitem", {}}, {"orders", {}}};
  q.joins = {{"lineitem", tpch::kLOrderKey, "orders", tpch::kOOrderKey}};
  return q;
}

// The acceptance bar for the instrumentation: one join on the disk backend
// with a tiny buffer pool leaves events from the task pool, the parallel
// drivers, the scheduler, the buffer pool and the query loop.
TEST(TraceTest, QueryTracesSpanAllSubsystems) {
  if (!obs::kTracingCompiled) GTEST_SKIP() << "tracing compiled out";
  TracerGuard guard;
  DatabaseOptions opts;
  opts.adapt_enabled = false;
  opts.planner.exec.num_threads = 4;
  opts.planner.strategy = PlannerConfig::Strategy::kForceShuffle;
  opts.cluster.storage.backend = StorageConfig::Backend::kDisk;
  opts.cluster.storage.buffer_blocks = 4;  // Force misses and evictions.
  Database db(opts);
  ASSERT_TRUE(LoadTpch(&db, TinyTpch(), 4, 3, 2).ok());
  obs::Tracer::Instance().Snapshot(/*drain=*/true);  // Drop load-time events.

  auto run = db.RunQuery(JoinQuery());
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  std::set<std::string> categories;
  std::set<std::string> names;
  for (const obs::TraceEvent& e : obs::Tracer::Instance().Snapshot()) {
    categories.insert(e.category);
    names.insert(e.name);
  }
  for (const char* want : {"task", "exec", "scheduler", "buffer", "query"}) {
    EXPECT_TRUE(categories.count(want)) << "no events from subsystem " << want;
  }
  EXPECT_TRUE(names.count("task_run"));
  // The spilling executor (ADAPTDB_SPILL=1, as the out-of-core CI job sets)
  // emits spill_map_morsel spans in place of shuffle_map_morsel.
  EXPECT_TRUE(names.count("shuffle_map_morsel") ||
              names.count("spill_map_morsel"));
  EXPECT_TRUE(names.count("admission_wait"));
  EXPECT_TRUE(names.count("miss_load"));
  EXPECT_TRUE(names.count("run_query"));
}

// --- IntrospectionServer over a real socket ------------------------------

/// Blocking HTTP/1.1 GET against 127.0.0.1:`port`; returns the full
/// response (status line + headers + body) or "" on connect failure.
std::string HttpGet(int32_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: localhost\r\n"
                              "Connection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string HttpBody(const std::string& response) {
  const size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

TEST(IntrospectionServerTest, DisabledByDefault) {
  Database db;
  EXPECT_EQ(db.introspection_port(), -1);
}

TEST(IntrospectionServerTest, ServesStatsMetricsProfileAndTrace) {
  TracerGuard guard;
  DatabaseOptions opts;
  opts.adapt_enabled = false;
  opts.http_port = 0;  // Ephemeral: no port collisions across CI runs.
  opts.planner.collect_profile = true;
  Database db(opts);
  const int32_t port = db.introspection_port();
  ASSERT_GT(port, 0);
  ASSERT_TRUE(LoadTpch(&db, TinyTpch(), 4, 3, 2).ok());
  ASSERT_TRUE(db.RunQuery(JoinQuery()).ok());

  const std::string stats = HttpGet(port, "/stats");
  EXPECT_NE(stats.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(stats.find("application/json"), std::string::npos);
  EXPECT_NE(stats.find("\"queries_started\":1"), std::string::npos) << stats;
  EXPECT_TRUE(BalancedJson(HttpBody(stats)));

  const std::string metrics = HttpGet(port, "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  const std::string metrics_body = HttpBody(metrics);
  EXPECT_NE(metrics_body.find("# TYPE adaptdb_queries_started_total counter"),
            std::string::npos)
      << metrics_body;
  EXPECT_NE(metrics_body.find("adaptdb_queries_started_total 1"),
            std::string::npos);
  EXPECT_NE(metrics_body.find("# TYPE adaptdb_queries_in_flight gauge"),
            std::string::npos);
  EXPECT_NE(metrics_body.find("adaptdb_build_info{"), std::string::npos);

  const std::string profile = HttpGet(port, "/profile");
  EXPECT_NE(profile.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(profile.find("lo_join"), std::string::npos);

  const std::string trace = HttpGet(port, "/trace?drain=1");
  EXPECT_NE(trace.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_TRUE(BalancedJson(HttpBody(trace)));

  const std::string missing = HttpGet(port, "/nope");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);

  EXPECT_GE(db.Stats().queries_finished, 1);
}

TEST(IntrospectionServerTest, SamplerRatesAppearInStatsAndMetrics) {
  DatabaseOptions opts;
  opts.adapt_enabled = false;
  opts.http_port = 0;
  opts.sampler_interval_millis = 5;
  Database db(opts);
  const int32_t port = db.introspection_port();
  ASSERT_GT(port, 0);
  // Two sampling intervals must elapse before rates are defined.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  const DatabaseStats stats = db.Stats();
  EXPECT_TRUE(stats.sampler_running);
  ASSERT_FALSE(stats.counter_rates.empty());
  bool saw_tasks_executed = false;
  for (const auto& [name, rate] : stats.counter_rates) {
    if (name == "tasks_executed") saw_tasks_executed = true;
    EXPECT_GE(rate, 0.0) << name;
  }
  EXPECT_TRUE(saw_tasks_executed);

  const std::string body = HttpBody(HttpGet(port, "/metrics"));
  EXPECT_NE(body.find("adaptdb_tasks_executed_rate"), std::string::npos)
      << body;
  EXPECT_NE(HttpBody(HttpGet(port, "/stats")).find("\"sampler_running\":true"),
            std::string::npos);
}

}  // namespace
}  // namespace adaptdb
