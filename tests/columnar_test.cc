// Tests for the columnar block layout: format v2 round-trip edge cases
// (frame-of-reference int64, dictionary strings, per-column truncation,
// column-subset decodes, v1 rejection), the scan path's metadata skipping
// and read-ahead counters, the hyper-join's range-based S-block pruning,
// and a mem-vs-disk / 1-2-8-thread parity suite over a mixed-type schema
// (mirroring tests/io_test.cc's parity contract on the columnar layout).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "exec/hyper_join.h"
#include "exec/scan.h"
#include "exec/shuffle_join.h"
#include "io/disk_block_store.h"
#include "io/format.h"
#include "join/grouping.h"
#include "join/overlap.h"
#include "storage/block_store.h"
#include "storage/cluster.h"
#include "testing_util.h"

namespace adaptdb {
namespace {

Block MakeBlock(BlockId id, const std::vector<Record>& records,
                int32_t num_attrs) {
  Block b(id, num_attrs);
  for (const Record& r : records) b.Add(r);
  return b;
}

void ExpectBlocksEqual(const Block& a, const Block& b) {
  EXPECT_EQ(a.id(), b.id());
  EXPECT_EQ(a.num_attrs(), b.num_attrs());
  ASSERT_EQ(a.num_records(), b.num_records());
  EXPECT_EQ(a.MaterializeRecords(), b.MaterializeRecords());
  EXPECT_EQ(a.ranges(), b.ranges());
}

/// The encoding tag of `attr`'s column directory entry in encoded `bytes`.
uint8_t EncodingOf(const std::string& bytes, int32_t attr) {
  const size_t off = io::kBlockHeaderBytes +
                     static_cast<size_t>(attr) * io::kColumnDirEntryBytes + 1;
  return static_cast<uint8_t>(bytes[off]);
}

// ---------------------------------------------------------------------------
// Format v2 edge cases.

TEST(ColumnarFormatTest, EmptyColumnsRoundTrip) {
  const Block block(9, 5);
  const std::string bytes = io::EncodeBlock(block);
  auto decoded = io::DecodeBlock(bytes, 5);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectBlocksEqual(block, decoded.ValueOrDie());
  // A column subset of an empty block also decodes (to empty columns).
  auto subset = io::DecodeBlockColumns(bytes, 5, {0, 4});
  ASSERT_TRUE(subset.ok()) << subset.status().ToString();
  EXPECT_EQ(subset.ValueOrDie().num_records, 0u);
  EXPECT_EQ(subset.ValueOrDie().columns.size(), 2u);
  EXPECT_EQ(subset.ValueOrDie().columns[0].size(), 0u);
}

TEST(ColumnarFormatTest, AllEqualStringColumnDictionaryEncodes) {
  std::vector<Record> recs;
  for (int i = 0; i < 100; ++i) {
    recs.push_back({Value("constant-string-value"), Value(int64_t{i})});
  }
  const Block block = MakeBlock(2, recs, 2);
  const std::string bytes = io::EncodeBlock(block);
  // Attribute 0 must have dictionary-coded: 1 entry + 100 one-byte codes
  // beats 100 length-prefixed copies by an order of magnitude.
  EXPECT_EQ(EncodingOf(bytes, 0), 2u);  // kEncDict
  auto decoded = io::DecodeBlock(bytes, 2);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectBlocksEqual(block, decoded.ValueOrDie());
  // The dictionary segment is far smaller than the plain payload.
  const int64_t plain = block.column(0).SizeBytes();
  EXPECT_LT(static_cast<int64_t>(bytes.size()) -
                block.column(1).SizeBytes() -
                static_cast<int64_t>(io::kBlockHeaderBytes),
            plain);
}

TEST(ColumnarFormatTest, HighCardinalityStringsStayPlain) {
  std::vector<Record> recs;
  for (int i = 0; i < 300; ++i) {
    recs.push_back({Value("s" + std::to_string(i))});
  }
  const Block block = MakeBlock(2, recs, 1);
  const std::string bytes = io::EncodeBlock(block);
  EXPECT_EQ(EncodingOf(bytes, 0), 0u);  // kEncPlain: 300 distinct > 256.
  auto decoded = io::DecodeBlock(bytes, 1);
  ASSERT_TRUE(decoded.ok());
  ExpectBlocksEqual(block, decoded.ValueOrDie());
}

TEST(ColumnarFormatTest, FrameOfReferenceNegativeAndExtremeDeltas) {
  // Narrow span far from zero: FOR packs 1-byte deltas off a negative min.
  const Block narrow = MakeBlock(
      1, {{Value(int64_t{-1000000})}, {Value(int64_t{-999801})}, {Value(int64_t{-999950})}}, 1);
  const std::string narrow_bytes = io::EncodeBlock(narrow);
  EXPECT_EQ(EncodingOf(narrow_bytes, 0), 1u);  // kEncFor
  auto narrow_dec = io::DecodeBlock(narrow_bytes, 1);
  ASSERT_TRUE(narrow_dec.ok()) << narrow_dec.status().ToString();
  ExpectBlocksEqual(narrow, narrow_dec.ValueOrDie());

  // INT64_MIN base with a small span still FOR-encodes and round-trips.
  const Block extreme_min = MakeBlock(
      2, {{Value(int64_t{INT64_MIN})}, {Value(int64_t{INT64_MIN + 200})}}, 1);
  const std::string min_bytes = io::EncodeBlock(extreme_min);
  EXPECT_EQ(EncodingOf(min_bytes, 0), 1u);
  auto min_dec = io::DecodeBlock(min_bytes, 1);
  ASSERT_TRUE(min_dec.ok()) << min_dec.status().ToString();
  ExpectBlocksEqual(extreme_min, min_dec.ValueOrDie());

  // Full-range span (INT64_MIN..INT64_MAX) cannot narrow: plain, exact.
  const Block full = MakeBlock(
      3, {{Value(int64_t{INT64_MIN})}, {Value(int64_t{INT64_MAX})}, {Value(int64_t{0})}}, 1);
  const std::string full_bytes = io::EncodeBlock(full);
  EXPECT_EQ(EncodingOf(full_bytes, 0), 0u);  // kEncPlain
  auto full_dec = io::DecodeBlock(full_bytes, 1);
  ASSERT_TRUE(full_dec.ok()) << full_dec.status().ToString();
  ExpectBlocksEqual(full, full_dec.ValueOrDie());

  // All-equal int64 column: width-0 FOR (min only, zero delta bytes).
  const Block all_equal = MakeBlock(
      4, {{Value(int64_t{77})}, {Value(int64_t{77})}, {Value(int64_t{77})}}, 1);
  const std::string eq_bytes = io::EncodeBlock(all_equal);
  EXPECT_EQ(EncodingOf(eq_bytes, 0), 1u);
  auto eq_dec = io::DecodeBlock(eq_bytes, 1);
  ASSERT_TRUE(eq_dec.ok());
  ExpectBlocksEqual(all_equal, eq_dec.ValueOrDie());
}

TEST(ColumnarFormatTest, TruncationAtColumnBoundariesIsCleanCorruption) {
  std::vector<Record> recs;
  for (int i = 0; i < 20; ++i) {
    recs.push_back({Value(int64_t{i * 1000}), Value(0.5 * i),
                    Value(std::string(30, static_cast<char>('a' + i % 3)))});
  }
  const Block block = MakeBlock(5, recs, 3);
  const std::string bytes = io::EncodeBlock(block);
  const size_t dir_end =
      io::kBlockHeaderBytes + 3 * io::kColumnDirEntryBytes;
  // Cut mid-directory, at the directory end, and inside each column.
  for (const size_t cut : {io::kBlockHeaderBytes + 5, dir_end, dir_end + 3,
                           dir_end + 20 * 2 + 1, bytes.size() - 7}) {
    ASSERT_LT(cut, bytes.size());
    auto decoded =
        io::DecodeBlock(std::string_view(bytes).substr(0, cut), 3);
    ASSERT_FALSE(decoded.ok()) << "cut at " << cut;
    EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption) << cut;
  }
}

TEST(ColumnarFormatTest, V1HeaderRejectedCleanly) {
  // A v1 file: same fixed header shape, version = 1, row-major tagged
  // payload. The decoder must reject it on the version field alone.
  const Block block = MakeBlock(1, {{Value(int64_t{5})}}, 1);
  std::string bytes = io::EncodeBlock(block);
  bytes[4] = 1;  // Version u16 little-endian at offset 4.
  bytes[5] = 0;
  auto decoded = io::DecodeBlock(bytes, 1);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("version 1"), std::string::npos);
  // Same for column-subset reads.
  EXPECT_FALSE(io::DecodeBlockColumns(bytes, 1, {0}).ok());
}

TEST(ColumnarFormatTest, ColumnSubsetReadsFewerBytes) {
  Rng rng(7);
  std::vector<Record> recs;
  for (int i = 0; i < 256; ++i) {
    recs.push_back({Value(rng.UniformRange(0, 1 << 30)),
                    Value(static_cast<double>(i) * 1.5),
                    Value(std::string(64, 'q') + std::to_string(i)),
                    Value(rng.UniformRange(-100, 100))});
  }
  const Block block = MakeBlock(6, recs, 4);
  const std::string bytes = io::EncodeBlock(block);

  auto one = io::DecodeBlockColumns(bytes, 4, {3});
  auto two = io::DecodeBlockColumns(bytes, 4, {0, 3});
  auto full = io::DecodeBlock(bytes, 4);
  ASSERT_TRUE(one.ok() && two.ok() && full.ok());
  // Values come back exactly, per requested attribute.
  EXPECT_EQ(one.ValueOrDie().columns[0].ints(), block.column(3).ints());
  EXPECT_EQ(two.ValueOrDie().columns[0].ints(), block.column(0).ints());
  EXPECT_EQ(two.ValueOrDie().columns[1].ints(), block.column(3).ints());
  EXPECT_EQ(one.ValueOrDie().num_records, 256u);
  // Pruned reads touch strictly fewer bytes the fewer columns they decode.
  EXPECT_LT(one.ValueOrDie().bytes_read, two.ValueOrDie().bytes_read);
  EXPECT_LT(two.ValueOrDie().bytes_read, bytes.size());
}

TEST(ColumnarFormatTest, SubsetReadValidatesOnlyTouchedColumns) {
  std::vector<Record> recs;
  for (int i = 0; i < 32; ++i) {
    recs.push_back({Value(int64_t{i}), Value(std::string(50, 'z'))});
  }
  const Block block = MakeBlock(8, recs, 2);
  std::string bytes = io::EncodeBlock(block);
  // Flip a bit in the *last* byte: the string column's segment.
  bytes[bytes.size() - 1] ^= 0x10;
  // Reading only the int column skips the damaged segment entirely...
  auto ints = io::DecodeBlockColumns(bytes, 2, {0});
  ASSERT_TRUE(ints.ok()) << ints.status().ToString();
  EXPECT_EQ(ints.ValueOrDie().columns[0].ints(), block.column(0).ints());
  // ...while touching it trips its per-column checksum.
  auto strings = io::DecodeBlockColumns(bytes, 2, {1});
  ASSERT_FALSE(strings.ok());
  EXPECT_EQ(strings.status().code(), StatusCode::kCorruption);
  // And the full decode fails the whole-payload checksum.
  EXPECT_FALSE(io::DecodeBlock(bytes, 2).ok());
}

// ---------------------------------------------------------------------------
// Scan metadata skipping + read-ahead.

TEST(ColumnarScanTest, MetadataSkipAvoidsLoadingExcludedBlocks) {
  StorageConfig config;
  config.buffer_blocks = 2;
  auto store = std::move(DiskBlockStore::Open(2, config)).ValueOrDie();
  ClusterSim cluster;
  std::vector<BlockId> blocks;
  // 8 blocks with disjoint key ranges [1000b, 1000b+99].
  for (int64_t b = 0; b < 8; ++b) {
    const BlockId id = store->CreateBlock();
    auto blk = store->GetMutable(id);
    for (int64_t i = 0; i < 20; ++i) {
      blk.ValueOrDie()->Add({Value(b * 1000 + i * 5), Value(i)});
    }
    blocks.push_back(id);
    cluster.PlaceBlock(id);
  }
  ASSERT_TRUE(store->Flush().ok());

  // Only blocks 0 and 1 admit key < 1100; the rest must be skipped from
  // directory metadata without a single pool load.
  const PredicateSet preds = {Predicate(0, CompareOp::kLt, int64_t{1100})};
  const auto before = store->pool_stats();
  auto scan = ScanBlocks(*store, blocks, preds, cluster);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan.ValueOrDie().blocks_read, 2);
  EXPECT_EQ(scan.ValueOrDie().blocks_skipped, 6);
  EXPECT_EQ(scan.ValueOrDie().rows_matched, 40);
  const auto after = store->pool_stats();
  // At most the two matching blocks were loaded (however they got in).
  EXPECT_LE(after.misses - before.misses, 2);
  // Parity: the in-memory store skips exactly the same blocks.
  MemBlockStore mem(2);
  std::vector<BlockId> mem_blocks;
  for (int64_t b = 0; b < 8; ++b) {
    const BlockId id = mem.CreateBlock();
    auto blk = mem.GetMutable(id);
    for (int64_t i = 0; i < 20; ++i) {
      blk.ValueOrDie()->Add({Value(b * 1000 + i * 5), Value(i)});
    }
    mem_blocks.push_back(id);
  }
  auto mem_scan = ScanBlocks(mem, mem_blocks, preds, cluster);
  ASSERT_TRUE(mem_scan.ok());
  EXPECT_EQ(mem_scan.ValueOrDie().blocks_read, scan.ValueOrDie().blocks_read);
  EXPECT_EQ(mem_scan.ValueOrDie().blocks_skipped,
            scan.ValueOrDie().blocks_skipped);
  EXPECT_EQ(mem_scan.ValueOrDie().rows_matched,
            scan.ValueOrDie().rows_matched);
}

TEST(ColumnarScanTest, SerialScanPrefetchesTheNextWindow) {
  StorageConfig config;
  config.buffer_blocks = 1;  // Evict everything while loading...
  auto store = std::move(DiskBlockStore::Open(1, config)).ValueOrDie();
  ClusterSim cluster;
  std::vector<BlockId> blocks;
  for (int64_t b = 0; b < 12; ++b) {
    const BlockId id = store->CreateBlock();
    store->GetMutable(id).ValueOrDie()->Add({Value(b)});
    blocks.push_back(id);
    cluster.PlaceBlock(id);
  }
  ASSERT_TRUE(store->Flush().ok());
  store->set_buffer_capacity(16);  // ...then scan with an ample budget.

  auto scan = ScanBlocks(*store, blocks, {}, cluster);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan.ValueOrDie().blocks_read, 12);
  // Window 8: while blocks [0,8) are consumed, [8,12) loads ahead (block
  // 11 may still be resident from its creation under the 1-block budget).
  EXPECT_GE(scan.ValueOrDie().io.prefetched, 3);
  EXPECT_LE(scan.ValueOrDie().io.prefetched, 4);
  // Every prefetched block turns its consumption read into a pool hit.
  EXPECT_GE(store->pool_stats().hits, scan.ValueOrDie().io.prefetched);

  // The in-memory store reports no prefetching.
  MemBlockStore mem(1);
  std::vector<BlockId> mem_blocks;
  for (int64_t b = 0; b < 12; ++b) {
    const BlockId id = mem.CreateBlock();
    mem.GetMutable(id).ValueOrDie()->Add({Value(b)});
    mem_blocks.push_back(id);
  }
  auto mem_scan = ScanBlocks(mem, mem_blocks, {}, cluster);
  ASSERT_TRUE(mem_scan.ok());
  EXPECT_EQ(mem_scan.ValueOrDie().io.prefetched, 0);
  // Logical results identical, of course.
  EXPECT_EQ(mem_scan.ValueOrDie().rows_matched,
            scan.ValueOrDie().rows_matched);
}

// ---------------------------------------------------------------------------
// Hyper-join S-block pruning (range metadata consulted before pinning).

struct HyperSkipFixture {
  std::unique_ptr<DiskBlockStore> r_store, s_store;
  std::vector<BlockId> r_blocks, s_blocks;
  ClusterSim cluster;
  OverlapMatrix overlap;
  Grouping grouping;
};

/// R: 4 blocks over key [0, 400). S: 8 blocks, each covering half the key
/// space and carrying a category attribute (attr 1) that is *constant per
/// block* — so a category predicate excludes exactly half the S blocks by
/// range metadata alone.
HyperSkipFixture MakeHyperSkipFixture() {
  HyperSkipFixture fx;
  StorageConfig config;
  config.buffer_blocks = 2;  // Far below the block count: loads are real.
  fx.r_store = std::move(DiskBlockStore::Open(2, config)).ValueOrDie();
  fx.s_store = std::move(DiskBlockStore::Open(2, config)).ValueOrDie();
  Rng rng(99);
  for (int64_t b = 0; b < 4; ++b) {
    const BlockId id = fx.r_store->CreateBlock();
    auto blk = fx.r_store->GetMutable(id);
    for (int i = 0; i < 25; ++i) {
      blk.ValueOrDie()->Add(
          {Value(b * 100 + rng.UniformRange(0, 99)), Value(int64_t{0})});
    }
    fx.r_blocks.push_back(id);
    fx.cluster.PlaceBlock(id);
  }
  for (int64_t b = 0; b < 8; ++b) {
    const BlockId id = fx.s_store->CreateBlock();
    auto blk = fx.s_store->GetMutable(id);
    const int64_t category = b % 2;  // Constant within the block.
    for (int i = 0; i < 10; ++i) {
      blk.ValueOrDie()->Add(
          {Value((b / 2) * 100 + rng.UniformRange(0, 99)), Value(category)});
    }
    fx.s_blocks.push_back(id);
    fx.cluster.PlaceBlock(id);
  }
  EXPECT_TRUE(fx.r_store->Flush().ok());
  EXPECT_TRUE(fx.s_store->Flush().ok());
  fx.overlap = ComputeOverlap(*fx.r_store, fx.r_blocks, 0, *fx.s_store,
                              fx.s_blocks, 0)
                   .ValueOrDie();
  fx.grouping = BottomUpGrouping(fx.overlap, 2).ValueOrDie();
  return fx;
}

TEST(HyperJoinSkipTest, RangeExcludedSBlocksAreNeverPinned) {
  HyperSkipFixture fx = MakeHyperSkipFixture();
  const PredicateSet s_cat = {Predicate(1, CompareOp::kEq, int64_t{0})};

  // Baseline: no S predicate — every scheduled S block is read.
  const auto misses_before_all = fx.s_store->pool_stats().misses;
  auto all = HyperJoin(*fx.r_store, 0, {}, *fx.s_store, 0, {}, fx.overlap,
                       fx.grouping, fx.cluster);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.ValueOrDie().s_blocks_skipped, 0);
  const auto misses_all =
      fx.s_store->pool_stats().misses - misses_before_all;

  // With the category predicate, half the scheduled S reads are pruned by
  // directory range metadata before pinning: fewer buffer misses.
  const auto misses_before_skip = fx.s_store->pool_stats().misses;
  auto skip = HyperJoin(*fx.r_store, 0, {}, *fx.s_store, 0, s_cat,
                        fx.overlap, fx.grouping, fx.cluster);
  ASSERT_TRUE(skip.ok());
  const auto misses_skip =
      fx.s_store->pool_stats().misses - misses_before_skip;
  EXPECT_GT(skip.ValueOrDie().s_blocks_skipped, 0);
  EXPECT_EQ(skip.ValueOrDie().s_blocks_read +
                skip.ValueOrDie().s_blocks_skipped,
            all.ValueOrDie().s_blocks_read);
  EXPECT_LT(misses_skip, misses_all);
  // Accounted S I/O shrinks identically.
  EXPECT_LT(skip.ValueOrDie().io.TotalReads(), all.ValueOrDie().io.TotalReads());

  // Correctness: the shuffle join (which cannot skip) agrees exactly.
  auto shuffle = ShuffleJoin(*fx.r_store, fx.r_blocks, 0, {}, *fx.s_store,
                             fx.s_blocks, 0, s_cat, fx.cluster);
  ASSERT_TRUE(shuffle.ok());
  EXPECT_EQ(skip.ValueOrDie().counts.output_rows,
            shuffle.ValueOrDie().counts.output_rows);
  EXPECT_EQ(skip.ValueOrDie().counts.checksum,
            shuffle.ValueOrDie().counts.checksum);
}

TEST(HyperJoinSkipTest, SkipIsIdenticalAcrossBackendsAndThreads) {
  HyperSkipFixture fx = MakeHyperSkipFixture();
  // The same data on in-memory stores.
  MemBlockStore r_mem(2), s_mem(2);
  for (BlockId id : fx.r_blocks) {
    const BlockId mid = r_mem.CreateBlock();
    auto blk = r_mem.GetMutable(mid);
    const BlockRef src = fx.r_store->Get(id).ValueOrDie();
    for (const Record& rec : src->MaterializeRecords()) {
      blk.ValueOrDie()->Add(rec);
    }
  }
  for (BlockId id : fx.s_blocks) {
    const BlockId mid = s_mem.CreateBlock();
    auto blk = s_mem.GetMutable(mid);
    const BlockRef src = fx.s_store->Get(id).ValueOrDie();
    for (const Record& rec : src->MaterializeRecords()) {
      blk.ValueOrDie()->Add(rec);
    }
  }
  const PredicateSet s_cat = {Predicate(1, CompareOp::kEq, int64_t{1})};
  for (const int32_t threads : {1, 2, 8}) {
    ExecConfig config;
    config.num_threads = threads;
    std::vector<Record> disk_rows, mem_rows;
    auto disk = HyperJoin(*fx.r_store, 0, {}, *fx.s_store, 0, s_cat,
                          fx.overlap, fx.grouping, fx.cluster, config,
                          &disk_rows);
    auto mem = HyperJoin(r_mem, 0, {}, s_mem, 0, s_cat, fx.overlap,
                         fx.grouping, fx.cluster, config, &mem_rows);
    ASSERT_TRUE(disk.ok() && mem.ok());
    EXPECT_EQ(disk_rows, mem_rows) << threads;
    EXPECT_EQ(disk.ValueOrDie().counts.checksum,
              mem.ValueOrDie().counts.checksum);
    EXPECT_EQ(disk.ValueOrDie().s_blocks_read,
              mem.ValueOrDie().s_blocks_read);
    EXPECT_EQ(disk.ValueOrDie().s_blocks_skipped,
              mem.ValueOrDie().s_blocks_skipped);
    EXPECT_GT(disk.ValueOrDie().s_blocks_skipped, 0);
    EXPECT_EQ(disk.ValueOrDie().io.TotalReads(),
              mem.ValueOrDie().io.TotalReads());
  }
}

// ---------------------------------------------------------------------------
// Columnar parity: mixed-type schema, mem vs disk, 1/2/8 threads.

struct TypedParityFixture {
  std::unique_ptr<MemBlockStore> mem;
  std::unique_ptr<DiskBlockStore> disk;
  std::vector<BlockId> blocks;
  ClusterSim cluster;
};

/// int64 key, double price, low-cardinality string flag — every column
/// representation (FOR-eligible ints, raw doubles, dictionary strings)
/// crosses the v2 format on the disk side.
TypedParityFixture MakeTypedParityFixture(int32_t n_blocks, uint64_t seed) {
  TypedParityFixture fx;
  fx.mem = std::make_unique<MemBlockStore>(3);
  StorageConfig config;
  config.buffer_blocks = 2;  // Constant eviction + re-decode.
  fx.disk = std::move(DiskBlockStore::Open(3, config)).ValueOrDie();
  const char* flags[] = {"A", "B", "C"};
  for (BlockStore* store :
       {static_cast<BlockStore*>(fx.mem.get()),
        static_cast<BlockStore*>(fx.disk.get())}) {
    Rng rng(seed);
    for (int32_t b = 0; b < n_blocks; ++b) {
      const BlockId id = store->CreateBlock();
      auto blk = store->GetMutable(id);
      for (int32_t i = 0; i < 24; ++i) {
        blk.ValueOrDie()->Add(
            {Value(rng.UniformRange(0, 999)),
             Value(static_cast<double>(rng.UniformRange(0, 10000)) / 100.0),
             Value(std::string(flags[rng.Uniform(3)]))});
      }
    }
  }
  fx.blocks = fx.mem->BlockIds();
  EXPECT_EQ(fx.blocks, fx.disk->BlockIds());
  for (BlockId b : fx.blocks) fx.cluster.PlaceBlock(b);
  return fx;
}

void ExpectLogicalIoEqual(const IoStats& mem, const IoStats& disk) {
  EXPECT_EQ(mem.local_block_reads, disk.local_block_reads);
  EXPECT_EQ(mem.remote_block_reads, disk.remote_block_reads);
  EXPECT_EQ(mem.block_writes, disk.block_writes);
  EXPECT_EQ(mem.shuffled_blocks, disk.shuffled_blocks);
  // buffer_hits/misses/prefetched are physical-layer counters and differ
  // by design (the mem store has none of them).
}

TEST(ColumnarParityTest, ScanAndAggregateAcrossBackendsAndThreads) {
  TypedParityFixture fx = MakeTypedParityFixture(20, 17);
  const PredicateSet preds = {Predicate(0, CompareOp::kLt, int64_t{600}),
                              Predicate(2, CompareOp::kEq, Value("B"))};
  for (const int32_t threads : {1, 2, 8}) {
    ExecConfig config;
    config.num_threads = threads;
    const ScanResult mem =
        ScanBlocks(*fx.mem, fx.blocks, preds, fx.cluster, config)
            .ValueOrDie();
    const ScanResult disk =
        ScanBlocks(*fx.disk, fx.blocks, preds, fx.cluster, config)
            .ValueOrDie();
    EXPECT_EQ(mem.rows_matched, disk.rows_matched) << threads;
    EXPECT_EQ(mem.blocks_read, disk.blocks_read) << threads;
    EXPECT_EQ(mem.blocks_skipped, disk.blocks_skipped) << threads;
    ExpectLogicalIoEqual(mem.io, disk.io);

    for (const AggFn fn :
         {AggFn::kCount, AggFn::kSum, AggFn::kAvg, AggFn::kMin, AggFn::kMax}) {
      const AggregateResult mem_agg =
          ScanAggregate(*fx.mem, fx.blocks, preds, fx.cluster, 1, fn, config)
              .ValueOrDie();
      const AggregateResult disk_agg =
          ScanAggregate(*fx.disk, fx.blocks, preds, fx.cluster, 1, fn,
                        config)
              .ValueOrDie();
      // Bitwise-equal aggregates: doubles decode bit-exactly and the
      // morsel grouping is thread-count- and backend-invariant.
      EXPECT_EQ(mem_agg.value, disk_agg.value)
          << threads << " fn " << static_cast<int>(fn);
      EXPECT_EQ(mem_agg.rows_aggregated, disk_agg.rows_aggregated);
      ExpectLogicalIoEqual(mem_agg.scan.io, disk_agg.scan.io);
    }
  }
  EXPECT_GT(fx.disk->pool_stats().misses, 0);
}

TEST(ColumnarParityTest, JoinsAcrossBackendsAndThreads) {
  TypedParityFixture r = MakeTypedParityFixture(12, 31);
  TypedParityFixture s = MakeTypedParityFixture(10, 32);
  ClusterSim cluster;
  for (BlockId b : r.blocks) cluster.PlaceBlock(b);
  for (BlockId b : s.blocks) cluster.PlaceBlock(b);
  const PredicateSet s_preds = {Predicate(2, CompareOp::kNeq, Value("C"))};

  const OverlapMatrix overlap_mem =
      ComputeOverlap(*r.mem, r.blocks, 0, *s.mem, s.blocks, 0).ValueOrDie();
  const OverlapMatrix overlap_disk =
      ComputeOverlap(*r.disk, r.blocks, 0, *s.disk, s.blocks, 0)
          .ValueOrDie();
  const Grouping grouping = BottomUpGrouping(overlap_mem, 4).ValueOrDie();
  ASSERT_EQ(BottomUpGrouping(overlap_disk, 4).ValueOrDie().groups,
            grouping.groups);

  for (const int32_t threads : {1, 2, 8}) {
    ExecConfig config;
    config.num_threads = threads;
    std::vector<Record> hyper_mem_rows, hyper_disk_rows;
    const JoinExecResult hyper_mem =
        HyperJoin(*r.mem, 0, {}, *s.mem, 0, s_preds, overlap_mem, grouping,
                  cluster, config, &hyper_mem_rows)
            .ValueOrDie();
    const JoinExecResult hyper_disk =
        HyperJoin(*r.disk, 0, {}, *s.disk, 0, s_preds, overlap_disk,
                  grouping, cluster, config, &hyper_disk_rows)
            .ValueOrDie();
    // Exact output sequence — including double and string attributes that
    // round-tripped through the columnar format on the disk side.
    EXPECT_EQ(hyper_mem_rows, hyper_disk_rows) << threads;
    EXPECT_EQ(hyper_mem.counts.output_rows, hyper_disk.counts.output_rows);
    EXPECT_EQ(hyper_mem.counts.checksum, hyper_disk.counts.checksum);
    EXPECT_EQ(hyper_mem.s_blocks_read, hyper_disk.s_blocks_read);
    EXPECT_EQ(hyper_mem.s_blocks_skipped, hyper_disk.s_blocks_skipped);
    ExpectLogicalIoEqual(hyper_mem.io, hyper_disk.io);

    std::vector<Record> shuffle_mem_rows, shuffle_disk_rows;
    const JoinExecResult shuffle_mem =
        ShuffleJoin(*r.mem, r.blocks, 0, {}, *s.mem, s.blocks, 0, s_preds,
                    cluster, config, &shuffle_mem_rows)
            .ValueOrDie();
    const JoinExecResult shuffle_disk =
        ShuffleJoin(*r.disk, r.blocks, 0, {}, *s.disk, s.blocks, 0, s_preds,
                    cluster, config, &shuffle_disk_rows)
            .ValueOrDie();
    EXPECT_EQ(shuffle_mem_rows, shuffle_disk_rows) << threads;
    EXPECT_EQ(shuffle_mem.counts.checksum, shuffle_disk.counts.checksum);
    ExpectLogicalIoEqual(shuffle_mem.io, shuffle_disk.io);

    // The two algorithms agree with each other, per backend.
    EXPECT_EQ(hyper_disk.counts.output_rows,
              shuffle_disk.counts.output_rows);
    EXPECT_EQ(hyper_disk.counts.checksum, shuffle_disk.counts.checksum);
  }
}

}  // namespace
}  // namespace adaptdb
