// Tests for tree/: partitioning trees, upfront and two-phase partitioners.

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/rng.h"
#include "sample/reservoir.h"
#include "storage/block_store.h"
#include "tree/partition_tree.h"
#include "tree/two_phase_partitioner.h"
#include "tree/upfront_partitioner.h"

namespace adaptdb {
namespace {

// A fixed two-level tree: a0 <= 50 then a1 <= 10 / a1 <= 20.
PartitionTree FixedTree() {
  auto root = PartitionTree::MakeInner(
      0, Value(50),
      PartitionTree::MakeInner(1, Value(10), PartitionTree::MakeLeaf(0),
                               PartitionTree::MakeLeaf(1)),
      PartitionTree::MakeInner(1, Value(20), PartitionTree::MakeLeaf(2),
                               PartitionTree::MakeLeaf(3)));
  return PartitionTree(std::move(root));
}

TEST(PartitionTreeTest, RouteFollowsCuts) {
  PartitionTree t = FixedTree();
  EXPECT_EQ(t.Route({Value(50), Value(10)}).ValueOrDie(), 0);  // <= goes left.
  EXPECT_EQ(t.Route({Value(50), Value(11)}).ValueOrDie(), 1);
  EXPECT_EQ(t.Route({Value(51), Value(20)}).ValueOrDie(), 2);
  EXPECT_EQ(t.Route({Value(51), Value(21)}).ValueOrDie(), 3);
}

TEST(PartitionTreeTest, RouteOnEmptyTreeFails) {
  PartitionTree t;
  EXPECT_FALSE(t.Route({Value(1)}).ok());
  EXPECT_TRUE(t.empty());
}

TEST(PartitionTreeTest, LookupPrunesByPredicates) {
  PartitionTree t = FixedTree();
  // No predicates: everything.
  EXPECT_EQ(t.Lookup({}).size(), 4u);
  // a0 > 50: right subtree only.
  auto right = t.Lookup({Predicate(0, CompareOp::kGt, 50)});
  EXPECT_EQ(std::set<BlockId>(right.begin(), right.end()),
            (std::set<BlockId>{2, 3}));
  // a0 <= 50 and a1 <= 10: single leaf.
  auto one = t.Lookup(
      {Predicate(0, CompareOp::kLe, 50), Predicate(1, CompareOp::kLe, 10)});
  EXPECT_EQ(one, (std::vector<BlockId>{0}));
  // a1 > 20 prunes leaf 0 and 2 (left children of both a1 splits).
  auto gt20 = t.Lookup({Predicate(1, CompareOp::kGt, 20)});
  EXPECT_EQ(std::set<BlockId>(gt20.begin(), gt20.end()),
            (std::set<BlockId>{1, 3}));
}

TEST(PartitionTreeTest, LeavesLeftToRightAndDepth) {
  PartitionTree t = FixedTree();
  EXPECT_EQ(t.Leaves(), (std::vector<BlockId>{0, 1, 2, 3}));
  EXPECT_EQ(t.NumLeaves(), 4u);
  EXPECT_EQ(t.Depth(), 2);
}

TEST(PartitionTreeTest, AttrUsageCount) {
  PartitionTree t = FixedTree();
  EXPECT_EQ(t.AttrUsageCount(0), 1);
  EXPECT_EQ(t.AttrUsageCount(1), 2);
  EXPECT_EQ(t.AttrUsageCount(9), 0);
}

TEST(PartitionTreeTest, CloneIsDeepAndEqual) {
  PartitionTree t = FixedTree();
  t.set_join_attr(0);
  t.set_join_levels(1);
  PartitionTree c = t.Clone();
  EXPECT_EQ(c.Serialize(), t.Serialize());
  EXPECT_EQ(c.join_attr(), 0);
  EXPECT_EQ(c.join_levels(), 1);
  // Mutating the clone must not affect the original.
  c.mutable_root()->attr = 1;
  EXPECT_NE(c.Serialize(), t.Serialize());
}

TEST(PartitionTreeTest, SerializeParseRoundTrip) {
  PartitionTree t = FixedTree();
  const std::string text = t.Serialize();
  auto parsed = PartitionTree::Parse(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.ValueOrDie().Serialize(), text);
}

TEST(PartitionTreeTest, SerializeParseDoubleAndStringCuts) {
  auto root = PartitionTree::MakeInner(
      0, Value(2.5),
      PartitionTree::MakeLeaf(1),
      PartitionTree::MakeInner(1, Value("m"), PartitionTree::MakeLeaf(2),
                               PartitionTree::MakeLeaf(3)));
  PartitionTree t(std::move(root));
  auto parsed = PartitionTree::Parse(t.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.ValueOrDie().Serialize(), t.Serialize());
}

TEST(PartitionTreeTest, ParseRejectsGarbage) {
  EXPECT_FALSE(PartitionTree::Parse("(a0 5 (leaf 1)").ok());
  EXPECT_FALSE(PartitionTree::Parse("nonsense").ok());
  EXPECT_FALSE(PartitionTree::Parse("(a0 5 (leaf 1) (leaf 2)) extra").ok());
}

TEST(PartitionTreeTest, ParseEmptyTree) {
  auto parsed = PartitionTree::Parse("()");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.ValueOrDie().empty());
}

std::vector<Record> UniformRecords(size_t n, int32_t attrs, uint64_t seed) {
  Rng rng(seed);
  std::vector<Record> recs;
  recs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Record r;
    for (int32_t a = 0; a < attrs; ++a) {
      r.push_back(Value(rng.UniformRange(0, 9999)));
    }
    recs.push_back(std::move(r));
  }
  return recs;
}

Schema UniformSchema(int32_t attrs) {
  std::vector<Field> fields;
  for (int32_t a = 0; a < attrs; ++a) {
    fields.push_back({"a" + std::to_string(a), DataType::kInt64, 8});
  }
  return Schema(std::move(fields));
}

TEST(UpfrontPartitionerTest, BuildsFullDepthTreeOnUniformData) {
  Schema schema = UniformSchema(4);
  auto records = UniformRecords(2000, 4, 1);
  Reservoir sample(1000);
  sample.AddAll(records);
  MemBlockStore store(4);
  UpfrontOptions opts;
  opts.num_levels = 4;
  UpfrontPartitioner p(schema, opts);
  auto tree = p.Build(sample, &store);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree.ValueOrDie().NumLeaves(), 16u);
  EXPECT_EQ(tree.ValueOrDie().Depth(), 4);
  EXPECT_EQ(store.num_blocks(), 16u);
}

TEST(UpfrontPartitionerTest, HeterogeneousBranchingBalancesAttrs) {
  // 4 attributes, depth 4 => 15 inner nodes; each attribute should be used
  // at least twice under balanced assignment.
  Schema schema = UniformSchema(4);
  auto records = UniformRecords(4000, 4, 2);
  Reservoir sample(2000);
  sample.AddAll(records);
  MemBlockStore store(4);
  UpfrontOptions opts;
  opts.num_levels = 4;
  UpfrontPartitioner p(schema, opts);
  auto tree = p.Build(sample, &store);
  ASSERT_TRUE(tree.ok());
  for (AttrId a = 0; a < 4; ++a) {
    EXPECT_GE(tree.ValueOrDie().AttrUsageCount(a), 2) << "attr " << a;
  }
}

TEST(UpfrontPartitionerTest, RoutingIsTotalAndBlocksBalanced) {
  Schema schema = UniformSchema(3);
  auto records = UniformRecords(3000, 3, 3);
  Reservoir sample(1500);
  sample.AddAll(records);
  MemBlockStore store(3);
  UpfrontOptions opts;
  opts.num_levels = 3;  // 8 blocks.
  UpfrontPartitioner p(schema, opts);
  auto tree = p.Build(sample, &store);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(LoadRecords(records, tree.ValueOrDie(), &store).ok());
  EXPECT_EQ(store.TotalRecords(), records.size());
  // Median cuts from a large sample should keep blocks within 3x of mean.
  const double mean = 3000.0 / 8.0;
  for (BlockId b : store.BlockIds()) {
    const double n =
        static_cast<double>(store.Get(b).ValueOrDie()->num_records());
    EXPECT_LT(n, mean * 3.0);
  }
}

TEST(UpfrontPartitionerTest, ConstantAttributeFallsBack) {
  // One attribute is constant; the tree must still build using the other.
  Schema schema = UniformSchema(2);
  std::vector<Record> records;
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    records.push_back({Value(int64_t{7}), Value(rng.UniformRange(0, 999))});
  }
  Reservoir sample(500);
  sample.AddAll(records);
  MemBlockStore store(2);
  UpfrontOptions opts;
  opts.num_levels = 2;
  UpfrontPartitioner p(schema, opts);
  auto tree = p.Build(sample, &store);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree.ValueOrDie().AttrUsageCount(0), 0);
  EXPECT_GE(tree.ValueOrDie().AttrUsageCount(1), 1);
}

TEST(UpfrontPartitionerTest, RejectsEmptySample) {
  Schema schema = UniformSchema(2);
  Reservoir sample(10);
  MemBlockStore store(2);
  UpfrontPartitioner p(schema, UpfrontOptions{});
  EXPECT_FALSE(p.Build(sample, &store).ok());
}

TEST(TwoPhasePartitionerTest, TopLevelsSplitOnJoinAttr) {
  Schema schema = UniformSchema(3);
  auto records = UniformRecords(2000, 3, 5);
  Reservoir sample(1000);
  sample.AddAll(records);
  MemBlockStore store(3);
  TwoPhaseOptions opts;
  opts.join_attr = 1;
  opts.join_levels = 2;
  opts.total_levels = 4;
  TwoPhasePartitioner p(schema, opts);
  auto built = p.Build(sample, &store);
  ASSERT_TRUE(built.ok());
  const PartitionTree& tree = built.ValueOrDie();
  EXPECT_EQ(tree.join_attr(), 1);
  EXPECT_EQ(tree.join_levels(), 2);
  // Root and both its children must split on the join attribute.
  ASSERT_FALSE(tree.root()->is_leaf);
  EXPECT_EQ(tree.root()->attr, 1);
  EXPECT_EQ(tree.root()->left->attr, 1);
  EXPECT_EQ(tree.root()->right->attr, 1);
  // Below the join levels, splits use other attributes.
  const TreeNode* sel = tree.root()->left->left.get();
  ASSERT_FALSE(sel->is_leaf);
  EXPECT_NE(sel->attr, 1);
}

TEST(TwoPhasePartitionerTest, JoinRangesOfLeavesAreDisjoint) {
  Schema schema = UniformSchema(2);
  auto records = UniformRecords(4000, 2, 6);
  Reservoir sample(2000);
  sample.AddAll(records);
  MemBlockStore store(2);
  TwoPhaseOptions opts;
  opts.join_attr = 0;
  opts.join_levels = 3;
  opts.total_levels = 3;  // Join levels only => 8 leaves.
  TwoPhasePartitioner p(schema, opts);
  auto built = p.Build(sample, &store);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(LoadRecords(records, built.ValueOrDie(), &store).ok());
  // Collect per-leaf join-attr ranges in leaf order; they must be
  // non-overlapping and ordered.
  std::vector<ValueRange> ranges;
  for (BlockId b : built.ValueOrDie().Leaves()) {
    const MutableBlockRef blk = store.GetMutable(b).ValueOrDie();
    if (!blk->empty()) ranges.push_back(blk->range(0));
  }
  ASSERT_GE(ranges.size(), 4u);
  for (size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_TRUE(ranges[i - 1].hi <= ranges[i].lo)
        << "leaf " << i - 1 << " " << ranges[i - 1].ToString() << " vs "
        << ranges[i].ToString();
  }
}

TEST(TwoPhasePartitionerTest, MedianSplitsBalanceSkewedJoinKeys) {
  // Zipf-ish skew: half the records share key values < 10.
  Schema schema = UniformSchema(2);
  Rng rng(7);
  std::vector<Record> records;
  for (int i = 0; i < 4000; ++i) {
    const int64_t key =
        rng.Flip(0.5) ? rng.UniformRange(0, 9) : rng.UniformRange(10, 9999);
    records.push_back({Value(key), Value(rng.UniformRange(0, 999))});
  }
  Reservoir sample(2000);
  sample.AddAll(records);
  MemBlockStore store(2);
  TwoPhaseOptions opts;
  opts.join_attr = 0;
  opts.join_levels = 2;
  opts.total_levels = 2;
  TwoPhasePartitioner p(schema, opts);
  auto built = p.Build(sample, &store);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(LoadRecords(records, built.ValueOrDie(), &store).ok());
  // With median (not range) splits, no block should hold > 60% of the data.
  for (BlockId b : store.BlockIds()) {
    EXPECT_LT(store.Get(b).ValueOrDie()->num_records(), 2400u);
  }
}

TEST(TwoPhasePartitionerTest, ValidatesOptions) {
  Schema schema = UniformSchema(2);
  Reservoir sample(10);
  sample.Add({Value(1), Value(2)});
  MemBlockStore store(2);
  TwoPhaseOptions bad_attr;
  bad_attr.join_attr = 9;
  EXPECT_FALSE(TwoPhasePartitioner(schema, bad_attr).Build(sample, &store).ok());
  TwoPhaseOptions bad_levels;
  bad_levels.join_attr = 0;
  bad_levels.join_levels = 5;
  bad_levels.total_levels = 3;
  EXPECT_FALSE(
      TwoPhasePartitioner(schema, bad_levels).Build(sample, &store).ok());
}

TEST(TwoPhasePartitionerTest, DefaultJoinLevelsIsHalf) {
  EXPECT_EQ(TwoPhasePartitioner::DefaultJoinLevels(6), 3);
  EXPECT_EQ(TwoPhasePartitioner::DefaultJoinLevels(7), 4);
}

// Property: for random trees built from data, Lookup is conservative —
// every block containing a record matching the predicates is returned.
class TreeLookupProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TreeLookupProperty, LookupIsConservative) {
  const uint64_t seed = GetParam();
  Schema schema = UniformSchema(3);
  auto records = UniformRecords(1500, 3, seed);
  Reservoir sample(700, seed);
  sample.AddAll(records);
  MemBlockStore store(3);
  UpfrontOptions opts;
  opts.num_levels = 4;
  opts.seed = seed;
  UpfrontPartitioner p(schema, opts);
  auto tree = p.Build(sample, &store);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(LoadRecords(records, tree.ValueOrDie(), &store).ok());

  Rng rng(seed + 100);
  for (int trial = 0; trial < 20; ++trial) {
    PredicateSet preds;
    const AttrId attr = static_cast<AttrId>(rng.Uniform(3));
    const int64_t v = rng.UniformRange(0, 9999);
    const CompareOp op = static_cast<CompareOp>(rng.Uniform(6));
    preds.emplace_back(attr, op, Value(v));

    auto found = tree.ValueOrDie().Lookup(preds);
    std::unordered_set<BlockId> found_set(found.begin(), found.end());
    for (BlockId b : store.BlockIds()) {
      const MutableBlockRef blk = store.GetMutable(b).ValueOrDie();
      bool has_match = false;
      for (const Record& rec : blk->MaterializeRecords()) {
        if (MatchesAll(preds, rec)) {
          has_match = true;
          break;
        }
      }
      if (has_match) {
        EXPECT_TRUE(found_set.count(b) > 0)
            << "block " << b << " pruned despite matching "
            << PredicateSetToString(preds);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeLookupProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace adaptdb
