// Tests for workload/: TPC-H generator invariants, query templates,
// CMT generator/trace and workload drivers.

#include <gtest/gtest.h>

#include <unordered_set>

#include "workload/cmt.h"
#include "workload/drivers.h"
#include "workload/tpch.h"
#include "workload/tpch_queries.h"

namespace adaptdb {
namespace {

TEST(TpchGeneratorTest, CardinalityRatios) {
  tpch::TpchConfig cfg;
  cfg.num_orders = 3000;
  const tpch::TpchData d = tpch::GenerateTpch(cfg);
  EXPECT_EQ(d.orders.size(), 3000u);
  EXPECT_EQ(d.num_parts, 400);
  EXPECT_EQ(d.num_customers, 300);
  EXPECT_EQ(d.num_suppliers, 20);
  // ~4 lineitems per order.
  EXPECT_GT(d.lineitem.size(), 2u * d.orders.size());
  EXPECT_LT(d.lineitem.size(), 7u * d.orders.size());
}

TEST(TpchGeneratorTest, SchemasMatchRecords) {
  tpch::TpchConfig cfg;
  cfg.num_orders = 200;
  const tpch::TpchData d = tpch::GenerateTpch(cfg);
  EXPECT_TRUE(d.lineitem_schema.ValidateRecord(d.lineitem.front()).ok());
  EXPECT_TRUE(d.orders_schema.ValidateRecord(d.orders.front()).ok());
  EXPECT_TRUE(d.customer_schema.ValidateRecord(d.customer.front()).ok());
  EXPECT_TRUE(d.part_schema.ValidateRecord(d.part.front()).ok());
  EXPECT_TRUE(d.supplier_schema.ValidateRecord(d.supplier.front()).ok());
  EXPECT_EQ(d.lineitem_schema.num_attrs(), 16);
  EXPECT_EQ(d.orders_schema.num_attrs(), 9);
}

TEST(TpchGeneratorTest, ForeignKeyIntegrity) {
  tpch::TpchConfig cfg;
  cfg.num_orders = 500;
  const tpch::TpchData d = tpch::GenerateTpch(cfg);
  std::unordered_set<int64_t> orderkeys, partkeys, suppkeys, custkeys;
  for (const Record& r : d.orders) orderkeys.insert(r[tpch::kOOrderKey].AsInt64());
  for (const Record& r : d.part) partkeys.insert(r[tpch::kPPartKey].AsInt64());
  for (const Record& r : d.supplier) {
    suppkeys.insert(r[tpch::kSSuppKey].AsInt64());
  }
  for (const Record& r : d.customer) {
    custkeys.insert(r[tpch::kCCustKey].AsInt64());
  }
  for (const Record& r : d.lineitem) {
    ASSERT_TRUE(orderkeys.count(r[tpch::kLOrderKey].AsInt64()) > 0);
    ASSERT_TRUE(partkeys.count(r[tpch::kLPartKey].AsInt64()) > 0);
    ASSERT_TRUE(suppkeys.count(r[tpch::kLSuppKey].AsInt64()) > 0);
  }
  for (const Record& r : d.orders) {
    ASSERT_TRUE(custkeys.count(r[tpch::kOCustKey].AsInt64()) > 0);
  }
}

TEST(TpchGeneratorTest, DatesWithinRange) {
  tpch::TpchConfig cfg;
  cfg.num_orders = 300;
  const tpch::TpchData d = tpch::GenerateTpch(cfg);
  for (const Record& r : d.lineitem) {
    ASSERT_GE(r[tpch::kLShipDate].AsInt64(), tpch::kMinDate);
    ASSERT_LE(r[tpch::kLReceiptDate].AsInt64(), tpch::kMaxDate + 160);
    ASSERT_GE(r[tpch::kLReceiptDate], r[tpch::kLShipDate]);
  }
}

TEST(TpchGeneratorTest, Deterministic) {
  tpch::TpchConfig cfg;
  cfg.num_orders = 100;
  const tpch::TpchData a = tpch::GenerateTpch(cfg);
  const tpch::TpchData b = tpch::GenerateTpch(cfg);
  ASSERT_EQ(a.lineitem.size(), b.lineitem.size());
  EXPECT_EQ(a.lineitem[0], b.lineitem[0]);
  EXPECT_EQ(a.lineitem.back(), b.lineitem.back());
}

TEST(TpchGeneratorTest, YearStartMonotone) {
  for (int y = 1992; y < 1999; ++y) {
    EXPECT_LT(tpch::YearStart(y), tpch::YearStart(y + 1));
  }
}

TEST(TpchQueriesTest, TemplatesWellFormed) {
  Rng rng(3);
  for (const std::string& name : tpch::TemplateNames()) {
    auto q = tpch::MakeQuery(name, &rng);
    ASSERT_TRUE(q.ok()) << name;
    EXPECT_EQ(q.ValueOrDie().name, name);
    EXPECT_FALSE(q.ValueOrDie().tables.empty());
    // Join edges only reference listed tables.
    for (const JoinSpec& j : q.ValueOrDie().joins) {
      EXPECT_TRUE(q.ValueOrDie().References(j.left_table)) << name;
      EXPECT_TRUE(q.ValueOrDie().References(j.right_table)) << name;
    }
  }
  EXPECT_FALSE(tpch::MakeQuery("q99", &rng).ok());
}

TEST(TpchQueriesTest, JoinAttrsMatchTpchSemantics) {
  Rng rng(4);
  Query q12 = tpch::MakeQ12(&rng);
  EXPECT_EQ(q12.JoinAttrFor("lineitem"), tpch::kLOrderKey);
  EXPECT_EQ(q12.JoinAttrFor("orders"), tpch::kOOrderKey);
  Query q14 = tpch::MakeQ14(&rng);
  EXPECT_EQ(q14.JoinAttrFor("lineitem"), tpch::kLPartKey);
  Query q8 = tpch::MakeQ8(&rng);
  EXPECT_EQ(q8.JoinAttrFor("lineitem"), tpch::kLPartKey);  // First edge.
  Query q6 = tpch::MakeQ6(&rng);
  EXPECT_TRUE(q6.joins.empty());
  EXPECT_EQ(q6.JoinAttrFor("lineitem"), -1);
}

TEST(TpchQueriesTest, PredicateConstantsVaryAcrossDraws) {
  Rng rng(5);
  const Query a = tpch::MakeQ3(&rng);
  const Query b = tpch::MakeQ3(&rng);
  EXPECT_FALSE(a.PredsFor("lineitem") == b.PredsFor("lineitem"));
}

TEST(TpchQueriesTest, Q5AndQ8HaveNoLineitemPredicate) {
  Rng rng(6);
  EXPECT_TRUE(tpch::MakeQ5(&rng).PredsFor("lineitem").empty());
  EXPECT_TRUE(tpch::MakeQ8(&rng).PredsFor("lineitem").empty());
}

TEST(CmtGeneratorTest, SizesAndSchemas) {
  cmt::CmtConfig cfg;
  cfg.num_trips = 1000;
  const cmt::CmtData d = cmt::GenerateCmt(cfg);
  EXPECT_EQ(d.trips.size(), 1000u);
  EXPECT_EQ(d.latest.size(), 1000u);  // Exactly one latest row per trip.
  EXPECT_GE(d.history.size(), d.trips.size());
  EXPECT_TRUE(d.trips_schema.ValidateRecord(d.trips.front()).ok());
  EXPECT_TRUE(d.history_schema.ValidateRecord(d.history.front()).ok());
  EXPECT_TRUE(d.latest_schema.ValidateRecord(d.latest.front()).ok());
}

TEST(CmtGeneratorTest, HistoryReferencesTrips) {
  cmt::CmtConfig cfg;
  cfg.num_trips = 500;
  const cmt::CmtData d = cmt::GenerateCmt(cfg);
  for (const Record& r : d.history) {
    ASSERT_GE(r[cmt::kHTripId].AsInt64(), 1);
    ASSERT_LE(r[cmt::kHTripId].AsInt64(), 500);
  }
}

TEST(CmtTraceTest, Has103QueriesWithBigBatchInMiddle) {
  cmt::CmtConfig cfg;
  cfg.num_trips = 2000;
  const cmt::CmtData d = cmt::GenerateCmt(cfg);
  auto trace = cmt::MakeTrace(d, 9);
  EXPECT_EQ(trace.size(), 103u);
  int big = 0;
  for (size_t i = 30; i < 50; ++i) {
    if (trace[i].name == "cmt_big_join") ++big;
  }
  EXPECT_GE(big, 5);  // The paper's heavy mid-trace batch.
  for (size_t i = 0; i < 30; ++i) EXPECT_NE(trace[i].name, "cmt_big_join");
}

TEST(DriversTest, SwitchingWorkloadShape) {
  auto stream = SwitchingWorkload(tpch::TemplateNames(), 20, 1);
  EXPECT_EQ(stream.size(), 160u);  // 8 templates x 20.
  // First 20 are q3, next 20 q5, ...
  for (size_t i = 0; i < 20; ++i) EXPECT_EQ(stream[i].name, "q3");
  for (size_t i = 20; i < 40; ++i) EXPECT_EQ(stream[i].name, "q5");
  EXPECT_EQ(stream.back().name, "q19");
}

TEST(DriversTest, ShiftingWorkloadShape) {
  auto stream = ShiftingWorkload(tpch::TemplateNames(), 20, 2);
  EXPECT_EQ(stream.size(), 140u);  // 7 transitions x 20.
  // Early in a transition the old template dominates; late, the new one.
  int q3_early = 0, q3_late = 0;
  for (size_t i = 0; i < 6; ++i) q3_early += stream[i].name == "q3";
  for (size_t i = 14; i < 20; ++i) q3_late += stream[i].name == "q3";
  EXPECT_GE(q3_early, q3_late);
}

TEST(DriversTest, WindowSizeWorkloadShape) {
  auto stream = WindowSizeWorkload(3);
  EXPECT_EQ(stream.size(), 70u);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(stream[i].name, "q14");
  for (size_t i = 30; i < 40; ++i) EXPECT_EQ(stream[i].name, "q19");
  for (size_t i = 60; i < 70; ++i) EXPECT_EQ(stream[i].name, "q14");
}

TEST(DriversTest, MeanSecondsWindows) {
  WorkloadResult r;
  r.seconds = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(r.MeanSeconds(0, 2), 1.5);
  EXPECT_DOUBLE_EQ(r.MeanSeconds(2, 99), 3.5);
  EXPECT_DOUBLE_EQ(r.MeanSeconds(3, 3), 0);
}

TEST(DriversTest, RunWorkloadCollectsPerQueryLatency) {
  tpch::TpchConfig cfg;
  cfg.num_orders = 600;
  const tpch::TpchData data = tpch::GenerateTpch(cfg);
  DatabaseOptions opts;
  opts.adapt.smooth.total_levels = 4;
  Database db(opts);
  ASSERT_TRUE(LoadTpch(&db, data, 4, 4, 3).ok());
  Rng rng(1);
  std::vector<Query> stream;
  for (int i = 0; i < 5; ++i) {
    stream.push_back(tpch::MakeQuery("q12", &rng).ValueOrDie());
  }
  auto result = RunWorkload(&db, stream);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie().seconds.size(), 5u);
  EXPECT_GT(result.ValueOrDie().total_seconds, 0);
}

}  // namespace
}  // namespace adaptdb
