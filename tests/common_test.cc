// Tests for common/: Status, Result, BitVector, Rng.

#include <gtest/gtest.h>

#include <set>

#include "common/bitvector.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace adaptdb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad arg");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad arg");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad arg");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    ADB_RETURN_NOT_OK(Status::NotFound("inner"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kNotFound);
  auto succeeds = []() -> Status {
    ADB_RETURN_NOT_OK(Status::OK());
    return Status::Internal("reached");
  };
  EXPECT_EQ(succeeds().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string s = std::move(r).ValueOrDie();
  EXPECT_EQ(s, "hello");
}

TEST(BitVectorTest, StartsClear) {
  BitVector v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.Count(), 0u);
  for (size_t i = 0; i < 130; ++i) EXPECT_FALSE(v.Get(i));
}

TEST(BitVectorTest, SetGetClear) {
  BitVector v(70);
  v.Set(0);
  v.Set(63);
  v.Set(64);
  v.Set(69);
  EXPECT_TRUE(v.Get(0));
  EXPECT_TRUE(v.Get(63));
  EXPECT_TRUE(v.Get(64));
  EXPECT_TRUE(v.Get(69));
  EXPECT_EQ(v.Count(), 4u);
  v.Clear(63);
  EXPECT_FALSE(v.Get(63));
  EXPECT_EQ(v.Count(), 3u);
}

TEST(BitVectorTest, OrWithMatchesManualUnion) {
  BitVector a(100), b(100);
  a.Set(1);
  a.Set(50);
  b.Set(50);
  b.Set(99);
  a.OrWith(b);
  EXPECT_TRUE(a.Get(1));
  EXPECT_TRUE(a.Get(50));
  EXPECT_TRUE(a.Get(99));
  EXPECT_EQ(a.Count(), 3u);
}

TEST(BitVectorTest, CountOrEqualsMaterializedUnion) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 1 + rng.Uniform(200);
    BitVector a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      if (rng.Flip(0.3)) a.Set(i);
      if (rng.Flip(0.3)) b.Set(i);
    }
    BitVector u = a;
    u.OrWith(b);
    EXPECT_EQ(a.CountOr(b), u.Count());
    EXPECT_EQ(b.CountOr(a), u.Count());
  }
}

TEST(BitVectorTest, CountAndAndIntersects) {
  BitVector a(80), b(80);
  a.Set(10);
  a.Set(20);
  b.Set(20);
  b.Set(30);
  EXPECT_EQ(a.CountAnd(b), 1u);
  EXPECT_TRUE(a.Intersects(b));
  b.Clear(20);
  EXPECT_FALSE(a.Intersects(b));
  EXPECT_EQ(a.CountAnd(b), 0u);
}

TEST(BitVectorTest, SetBitsRoundTrip) {
  BitVector v(300);
  std::set<size_t> want = {0, 7, 64, 65, 128, 299};
  for (size_t i : want) v.Set(i);
  auto got = v.SetBits();
  EXPECT_EQ(std::set<size_t>(got.begin(), got.end()), want);
}

TEST(BitVectorTest, ResetClearsEverything) {
  BitVector v(64);
  for (size_t i = 0; i < 64; i += 3) v.Set(i);
  v.Reset();
  EXPECT_EQ(v.Count(), 0u);
}

TEST(BitVectorTest, ToStringMatchesPaperExample) {
  // Paper Fig. 4: v2 = 1100.
  BitVector v(4);
  v.Set(0);
  v.Set(1);
  EXPECT_EQ(v.ToString(), "1100");
}

TEST(BitVectorTest, EqualityComparesContent) {
  BitVector a(10), b(10), c(11);
  a.Set(3);
  b.Set(3);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  b.Set(4);
  EXPECT_FALSE(a == b);
}

TEST(BitVectorTest, ZeroWidthVectorIsInert) {
  BitVector v(0);
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.Count(), 0u);
  EXPECT_TRUE(v.SetBits().empty());
  EXPECT_EQ(v.ToString(), "");
  EXPECT_EQ(v, BitVector());
  // Combining with a zero-width vector changes nothing.
  BitVector a(10);
  a.Set(9);
  a.OrWith(v);
  EXPECT_EQ(a.Count(), 1u);
  EXPECT_EQ(a.CountOr(v), 1u);
  EXPECT_EQ(a.CountAnd(v), 0u);
  EXPECT_FALSE(a.Intersects(v));
  EXPECT_EQ(v.CountOr(a), 1u);
}

TEST(BitVectorTest, WordBoundarySizes) {
  for (size_t n : {63u, 64u, 65u}) {
    BitVector v(n);
    EXPECT_EQ(v.size(), n);
    v.Set(0);
    v.Set(n - 1);
    EXPECT_EQ(v.Count(), 2u);
    EXPECT_TRUE(v.Get(n - 1));
    EXPECT_EQ(v.SetBits(), (std::vector<size_t>{0, n - 1}));
    EXPECT_EQ(v.ToString().size(), n);
    v.Clear(n - 1);
    EXPECT_EQ(v.Count(), 1u);
    v.Reset();
    EXPECT_EQ(v.Count(), 0u);
  }
}

TEST(BitVectorTest, MismatchedLengthsTreatMissingBitsAsZero) {
  BitVector shorter(3), longer(65);
  shorter.Set(1);
  longer.Set(1);
  longer.Set(64);

  EXPECT_EQ(shorter.CountAnd(longer), 1u);
  EXPECT_EQ(longer.CountAnd(shorter), 1u);
  EXPECT_TRUE(shorter.Intersects(longer));
  EXPECT_TRUE(longer.Intersects(shorter));
  // CountOr counts the longer tail regardless of receiver.
  EXPECT_EQ(shorter.CountOr(longer), 2u);
  EXPECT_EQ(longer.CountOr(shorter), 2u);

  // OrWith is a true union: the receiver widens to the larger width, so
  // its post-union Count always equals the CountOr predicted beforehand.
  BitVector acc(3);
  const size_t predicted = acc.CountOr(longer);
  acc.OrWith(longer);
  EXPECT_EQ(acc.size(), 65u);
  EXPECT_EQ(acc.Count(), predicted);
  EXPECT_EQ(acc.SetBits(), (std::vector<size_t>{1, 64}));
  // Widening receiver keeps its own zero tail plus the donor's bits.
  BitVector wide(65);
  wide.OrWith(shorter);
  EXPECT_EQ(wide.size(), 65u);
  EXPECT_EQ(wide.SetBits(), (std::vector<size_t>{1}));

  // Donor bits inside the shared word are preserved by the widening union.
  BitVector donor(64);
  donor.Set(5);
  BitVector narrow(3);
  narrow.OrWith(donor);
  EXPECT_EQ(narrow.size(), 64u);
  EXPECT_EQ(narrow.SetBits(), (std::vector<size_t>{5}));
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.Next() != b.Next());
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformRangeInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformRange(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(RngTest, FlipProbabilityRoughlyHolds) {
  Rng rng(11);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.Flip(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / 10000.0, 0.25, 0.03);
}

}  // namespace
}  // namespace adaptdb
