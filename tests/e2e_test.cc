// End-to-end smoke test: load a tiny TPC-H dataset, build upfront
// partitioning trees, run a predicate scan, then execute the same join as a
// hyper-join and as a shuffle join and assert the result multisets match.

#include <gtest/gtest.h>

#include <vector>

#include "exec/hyper_join.h"
#include "exec/scan.h"
#include "exec/shuffle_join.h"
#include "join/grouping.h"
#include "join/overlap.h"
#include "sample/reservoir.h"
#include "testing_util.h"
#include "tree/upfront_partitioner.h"
#include "workload/tpch.h"

namespace adaptdb {
namespace {

using adaptdb::testing::SortedRecords;
using adaptdb::testing::TinyTpch;

// A table partitioned by the upfront partitioner and fully loaded. The
// store comes from the backend factory, so ADAPTDB_STORAGE=disk runs this
// suite against the disk-backed store.
struct LoadedTable {
  explicit LoadedTable(int32_t num_attrs)
      : store_owner(testing::MakeStore(num_attrs)), store(*store_owner) {}

  LoadedTable(LoadedTable&&) = default;

  std::unique_ptr<BlockStore> store_owner;
  BlockStore& store;
  std::vector<BlockId> blocks;
};

LoadedTable LoadUpfront(const Schema& schema,
                        const std::vector<Record>& records, int32_t levels,
                        uint64_t seed, ClusterSim* cluster) {
  LoadedTable table(schema.num_attrs());
  Reservoir sample(1000, seed);
  sample.AddAll(records);
  UpfrontOptions opts;
  opts.num_levels = levels;
  opts.seed = seed;
  UpfrontPartitioner partitioner(schema, opts);
  PartitionTree tree =
      std::move(partitioner.Build(sample, &table.store)).ValueOrDie();
  EXPECT_TRUE(LoadRecords(records, tree, &table.store).ok());
  table.blocks = table.store.BlockIds();
  for (BlockId b : table.blocks) cluster->PlaceBlock(b);
  return table;
}

class E2ETest : public ::testing::Test {
 protected:
  E2ETest()
      : lineitem_(LoadUpfront(TinyTpch().lineitem_schema, TinyTpch().lineitem,
                              4, 1, &cluster_)),
        orders_(LoadUpfront(TinyTpch().orders_schema, TinyTpch().orders, 3, 2,
                            &cluster_)) {}

  ClusterSim cluster_;
  LoadedTable lineitem_;
  LoadedTable orders_;
};

TEST_F(E2ETest, LoadPreservesEveryRecord) {
  EXPECT_EQ(lineitem_.store.TotalRecords(), TinyTpch().lineitem.size());
  EXPECT_EQ(orders_.store.TotalRecords(), TinyTpch().orders.size());
  EXPECT_GT(lineitem_.store.num_blocks(), 1u);
  EXPECT_GT(orders_.store.num_blocks(), 1u);
}

TEST_F(E2ETest, PredicateScanMatchesRecordLevelOracle) {
  const PredicateSet preds = {
      Predicate(tpch::kLShipDate, CompareOp::kLt, int64_t{1000})};
  int64_t expected = 0;
  for (const Record& rec : TinyTpch().lineitem) {
    if (MatchesAll(preds, rec)) ++expected;
  }
  const ScanResult with_skip =
      ScanBlocks(lineitem_.store, lineitem_.blocks, preds, cluster_,
                 /*skip_by_ranges=*/true)
          .ValueOrDie();
  const ScanResult without_skip =
      ScanBlocks(lineitem_.store, lineitem_.blocks, preds, cluster_,
                 /*skip_by_ranges=*/false)
          .ValueOrDie();
  EXPECT_EQ(with_skip.rows_matched, expected);
  EXPECT_EQ(without_skip.rows_matched, expected);
  // Range skipping must never read more blocks than the full scan.
  EXPECT_LE(with_skip.blocks_read, without_skip.blocks_read);
}

TEST_F(E2ETest, HyperJoinAndShuffleJoinProduceIdenticalMultisets) {
  const OverlapMatrix overlap =
      ComputeOverlap(lineitem_.store, lineitem_.blocks, tpch::kLOrderKey,
                     orders_.store, orders_.blocks, tpch::kOOrderKey)
          .ValueOrDie();
  const Grouping grouping = BottomUpGrouping(overlap, 4).ValueOrDie();
  ASSERT_TRUE(ValidateGrouping(overlap, grouping, 4).ok());

  std::vector<Record> hyper_out, shuffle_out;
  const JoinExecResult hyper =
      HyperJoin(lineitem_.store, tpch::kLOrderKey, {}, orders_.store,
                tpch::kOOrderKey, {}, overlap, grouping, cluster_, &hyper_out)
          .ValueOrDie();
  const JoinExecResult shuffle =
      ShuffleJoin(lineitem_.store, lineitem_.blocks, tpch::kLOrderKey, {},
                  orders_.store, orders_.blocks, tpch::kOOrderKey, {},
                  cluster_, &shuffle_out)
          .ValueOrDie();

  // Every lineitem joins its order exactly once.
  EXPECT_EQ(hyper.counts.output_rows,
            static_cast<int64_t>(TinyTpch().lineitem.size()));
  EXPECT_EQ(hyper.counts.output_rows, shuffle.counts.output_rows);
  EXPECT_EQ(hyper.counts.checksum, shuffle.counts.checksum);
  EXPECT_EQ(SortedRecords(std::move(hyper_out)),
            SortedRecords(std::move(shuffle_out)));
}

TEST_F(E2ETest, PredicatedJoinsAgreeToo) {
  const PredicateSet li_preds = {
      Predicate(tpch::kLQuantity, CompareOp::kLe, int64_t{25})};
  const PredicateSet ord_preds = {
      Predicate(tpch::kOOrderDate, CompareOp::kGt, int64_t{800})};
  const OverlapMatrix overlap =
      ComputeOverlap(lineitem_.store, lineitem_.blocks, tpch::kLOrderKey,
                     orders_.store, orders_.blocks, tpch::kOOrderKey)
          .ValueOrDie();
  const Grouping grouping = BottomUpGrouping(overlap, 4).ValueOrDie();

  std::vector<Record> hyper_out, shuffle_out;
  ASSERT_TRUE(HyperJoin(lineitem_.store, tpch::kLOrderKey, li_preds,
                        orders_.store, tpch::kOOrderKey, ord_preds, overlap,
                        grouping, cluster_, &hyper_out)
                  .ok());
  ASSERT_TRUE(ShuffleJoin(lineitem_.store, lineitem_.blocks, tpch::kLOrderKey,
                          li_preds, orders_.store, orders_.blocks,
                          tpch::kOOrderKey, ord_preds, cluster_, &shuffle_out)
                  .ok());
  EXPECT_FALSE(hyper_out.empty());
  EXPECT_EQ(SortedRecords(std::move(hyper_out)),
            SortedRecords(std::move(shuffle_out)));
}

}  // namespace
}  // namespace adaptdb
