// End-to-end tests for core/: Database create/load/query/adapt loop.

#include <gtest/gtest.h>

#include "baselines/full_scan.h"
#include "core/database.h"
#include "workload/drivers.h"
#include "workload/tpch.h"
#include "workload/tpch_queries.h"

namespace adaptdb {
namespace {

Schema TwoColSchema() {
  return Schema({{"key", DataType::kInt64, 8}, {"val", DataType::kInt64, 8}});
}

std::vector<Record> TwoColRecords(size_t n, int64_t key_range, uint64_t seed) {
  Rng rng(seed);
  std::vector<Record> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back({Value(rng.UniformRange(0, key_range - 1)),
                   Value(rng.UniformRange(0, 999))});
  }
  return out;
}

TEST(DatabaseTest, CreateAndGetTable) {
  Database db;
  TableOptions opts;
  opts.upfront_levels = 3;
  ASSERT_TRUE(
      db.CreateTable("t", TwoColSchema(), TwoColRecords(500, 100, 1), opts)
          .ok());
  auto table = db.GetTable("t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.ValueOrDie()->num_records(), 500);
  EXPECT_FALSE(db.GetTable("missing").ok());
  EXPECT_FALSE(
      db.CreateTable("t", TwoColSchema(), TwoColRecords(10, 10, 2)).ok());
  EXPECT_EQ(db.TableNames(), std::vector<std::string>{"t"});
}

TEST(DatabaseTest, RejectsEmptyLoadAndBadRecords) {
  Database db;
  EXPECT_FALSE(db.CreateTable("e", TwoColSchema(), {}).ok());
  std::vector<Record> bad = {{Value(1)}};
  EXPECT_FALSE(db.CreateTable("b", TwoColSchema(), bad).ok());
}

TEST(DatabaseTest, SelectionQueryCountsRows) {
  Database db;
  TableOptions opts;
  opts.upfront_levels = 3;
  auto records = TwoColRecords(1000, 100, 3);
  ASSERT_TRUE(db.CreateTable("t", TwoColSchema(), records, opts).ok());
  Query q;
  q.name = "sel";
  q.tables = {{"t", {Predicate(0, CompareOp::kLt, 50)}}};
  auto run = db.RunQuery(q);
  ASSERT_TRUE(run.ok());
  int64_t expect = 0;
  for (const Record& r : records) {
    if (r[0].AsInt64() < 50) ++expect;
  }
  EXPECT_EQ(run.ValueOrDie().output_rows, expect);
  EXPECT_GT(run.ValueOrDie().seconds, 0);
}

TEST(DatabaseTest, RepeatedJoinsConvergeToHyperJoin) {
  DatabaseOptions opts;
  opts.adapt.smooth.total_levels = 4;
  Database db(opts);
  TableOptions t;
  t.upfront_levels = 4;
  ASSERT_TRUE(
      db.CreateTable("r", TwoColSchema(), TwoColRecords(4000, 1000, 5), t)
          .ok());
  ASSERT_TRUE(
      db.CreateTable("s", TwoColSchema(), TwoColRecords(2000, 1000, 6), t)
          .ok());
  Query q;
  q.name = "join";
  q.tables = {{"r", {}}, {"s", {}}};
  q.joins = {{"r", 0, "s", 0}};

  bool hyper_seen = false;
  int64_t rows_first = -1;
  for (int i = 0; i < 12; ++i) {
    auto run = db.RunQuery(q);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    if (rows_first < 0) rows_first = run.ValueOrDie().output_rows;
    // Result stays identical while the layout adapts underneath.
    EXPECT_EQ(run.ValueOrDie().output_rows, rows_first);
    if (!run.ValueOrDie().edges.empty()) {
      hyper_seen |= run.ValueOrDie().edges[0].used_hyper;
    }
  }
  EXPECT_TRUE(hyper_seen) << "adaptation never enabled hyper-join";
  // After convergence both tables have join trees and the last query used
  // hyper-join with low C_HyJ.
  auto last = db.RunQuery(q);
  ASSERT_TRUE(last.ok());
  EXPECT_TRUE(last.ValueOrDie().edges[0].used_hyper);
  EXPECT_LT(last.ValueOrDie().edges[0].choice.c_hyj, 2.5);
}

TEST(DatabaseTest, AdaptationLatencyIsBounded) {
  // Smooth repartitioning must never move more than ~2 window slots worth
  // of data in one query once the window is warm.
  DatabaseOptions opts;
  opts.adapt.smooth.total_levels = 4;
  Database db(opts);
  TableOptions t;
  t.upfront_levels = 4;
  auto r_records = TwoColRecords(4000, 1000, 8);
  ASSERT_TRUE(db.CreateTable("r", TwoColSchema(), r_records, t).ok());
  ASSERT_TRUE(
      db.CreateTable("s", TwoColSchema(), TwoColRecords(2000, 1000, 9), t)
          .ok());
  Query q;
  q.tables = {{"r", {}}, {"s", {}}};
  q.joins = {{"r", 0, "s", 0}};
  for (int i = 0; i < 10; ++i) {
    auto run = db.RunQuery(q);
    ASSERT_TRUE(run.ok());
    EXPECT_LE(run.ValueOrDie().records_repartitioned,
              static_cast<int64_t>(r_records.size()) * 2 * 2 / 10)
        << "query " << i;
  }
}

TEST(DatabaseTest, DisabledAdaptationKeepsLayout) {
  DatabaseOptions opts;
  opts.adapt_enabled = false;
  Database db(opts);
  TableOptions t;
  t.upfront_levels = 3;
  ASSERT_TRUE(
      db.CreateTable("r", TwoColSchema(), TwoColRecords(1000, 100, 10), t)
          .ok());
  ASSERT_TRUE(
      db.CreateTable("s", TwoColSchema(), TwoColRecords(500, 100, 11), t)
          .ok());
  Query q;
  q.tables = {{"r", {}}, {"s", {}}};
  q.joins = {{"r", 0, "s", 0}};
  for (int i = 0; i < 5; ++i) {
    auto run = db.RunQuery(q);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run.ValueOrDie().records_repartitioned, 0);
  }
  // Only the upfront tree exists.
  EXPECT_EQ(db.GetTable("r").ValueOrDie()->trees()->size(), 1u);
}

TEST(DatabaseTest, ChecksumInvariantAcrossConfigurations) {
  // The same TPC-H query must produce identical results on an adaptive
  // database and on the full-scan baseline.
  tpch::TpchConfig cfg;
  cfg.num_orders = 1500;
  const tpch::TpchData data = tpch::GenerateTpch(cfg);

  DatabaseOptions adaptive_opts;
  adaptive_opts.adapt.smooth.total_levels = 4;
  Database adaptive(adaptive_opts);
  ASSERT_TRUE(LoadTpch(&adaptive, data, 5, 4, 3).ok());
  Database fullscan(FullScanOptions(DatabaseOptions{}));
  ASSERT_TRUE(LoadTpch(&fullscan, data, 5, 4, 3).ok());

  Rng rng(1);
  for (const char* name : {"q12", "q14", "q19"}) {
    Rng q_rng(rng.Next());
    Rng q_rng2 = q_rng;  // Same constants for both systems.
    Query q1 = tpch::MakeQuery(name, &q_rng).ValueOrDie();
    Query q2 = tpch::MakeQuery(name, &q_rng2).ValueOrDie();
    for (int rep = 0; rep < 3; ++rep) {
      auto a = adaptive.RunQuery(q1);
      auto b = fullscan.RunQuery(q2);
      ASSERT_TRUE(a.ok()) << a.status().ToString();
      ASSERT_TRUE(b.ok()) << b.status().ToString();
      EXPECT_EQ(a.ValueOrDie().output_rows, b.ValueOrDie().output_rows)
          << name << " rep " << rep;
      EXPECT_EQ(a.ValueOrDie().checksum, b.ValueOrDie().checksum);
    }
  }
}

TEST(DatabaseTest, TpchTemplatesAllExecute) {
  tpch::TpchConfig cfg;
  cfg.num_orders = 1000;
  const tpch::TpchData data = tpch::GenerateTpch(cfg);
  DatabaseOptions opts;
  opts.adapt.smooth.total_levels = 4;
  Database db(opts);
  ASSERT_TRUE(LoadTpch(&db, data, 5, 4, 3).ok());
  Rng rng(2);
  for (const std::string& name : tpch::TemplateNames()) {
    auto q = tpch::MakeQuery(name, &rng);
    ASSERT_TRUE(q.ok());
    auto run = db.RunQuery(q.ValueOrDie());
    ASSERT_TRUE(run.ok()) << name << ": " << run.status().ToString();
    EXPECT_GE(run.ValueOrDie().output_rows, 0) << name;
  }
}

}  // namespace
}  // namespace adaptdb
