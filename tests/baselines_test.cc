// Tests for baselines/: configuration factories and the PREF comparator.

#include <gtest/gtest.h>

#include "baselines/amoeba_baseline.h"
#include "baselines/full_repartitioning.h"
#include "baselines/full_scan.h"
#include "baselines/pref.h"
#include "workload/drivers.h"
#include "workload/tpch.h"
#include "workload/tpch_queries.h"

namespace adaptdb {
namespace {

TEST(BaselineOptionsTest, FullScanConfig) {
  DatabaseOptions opts = FullScanOptions(DatabaseOptions{});
  EXPECT_FALSE(opts.adapt_enabled);
  EXPECT_TRUE(opts.planner.ignore_partitioning);
  EXPECT_EQ(opts.planner.strategy, PlannerConfig::Strategy::kForceShuffle);
}

TEST(BaselineOptionsTest, FullRepartitioningConfig) {
  DatabaseOptions opts = FullRepartitioningOptions(DatabaseOptions{});
  EXPECT_TRUE(opts.adapt_enabled);
  EXPECT_TRUE(opts.adapt.full_repartitioning);
  EXPECT_EQ(opts.planner.strategy, PlannerConfig::Strategy::kAuto);
}

TEST(BaselineOptionsTest, AmoebaConfigForcesShuffle) {
  DatabaseOptions opts = AmoebaOptions(DatabaseOptions{});
  EXPECT_TRUE(opts.adapt_enabled);
  EXPECT_FALSE(opts.adapt.enable_smooth);
  EXPECT_TRUE(opts.adapt.enable_amoeba);
  EXPECT_EQ(opts.planner.strategy, PlannerConfig::Strategy::kForceShuffle);
}

struct PrefFixture {
  tpch::TpchData data;
  PrefLayout layout;

  PrefFixture()
      : data(tpch::GenerateTpch([] {
          tpch::TpchConfig cfg;
          cfg.num_orders = 1200;
          return cfg;
        }())),
        layout([] {
          PrefConfig cfg;
          cfg.num_partitions = 8;
          cfg.records_per_block = 300;
          return cfg;
        }()) {
    ADB_CHECK_OK(layout.AddFact("lineitem", data.lineitem_schema,
                                data.lineitem, tpch::kLOrderKey));
    ADB_CHECK_OK(layout.AddReplicated("orders", data.orders_schema,
                                      data.orders, "lineitem",
                                      tpch::kLOrderKey, tpch::kOOrderKey));
    ADB_CHECK_OK(layout.AddReplicated("part", data.part_schema, data.part,
                                      "lineitem", tpch::kLPartKey,
                                      tpch::kPPartKey));
    ADB_CHECK_OK(layout.AddReplicated("customer", data.customer_schema,
                                      data.customer, "orders",
                                      tpch::kOCustKey, tpch::kCCustKey));
  }
};

TEST(PrefTest, ReplicationFactorsReflectReferenceFanOut) {
  PrefFixture f;
  // orders co-partitions with lineitem: each order lives in one partition.
  EXPECT_NEAR(f.layout.ReplicationFactor("orders"), 1.0, 0.01);
  // Each part is referenced by ~30 lineitems spread over 8 partitions, so
  // parts replicate heavily; customers (fewer orders each) replicate less.
  EXPECT_GT(f.layout.ReplicationFactor("part"), 3.0);
  EXPECT_GT(f.layout.ReplicationFactor("customer"), 1.0);
  EXPECT_GT(f.layout.TotalBlocks("part"), 0);
  EXPECT_EQ(f.layout.TotalBlocks("nope"), 0);
}

TEST(PrefTest, RejectsDuplicateTablesAndMissingParent) {
  PrefFixture f;
  EXPECT_FALSE(f.layout
                   .AddFact("lineitem", f.data.lineitem_schema,
                            f.data.lineitem, tpch::kLOrderKey)
                   .ok());
  PrefLayout other((PrefConfig()));
  EXPECT_FALSE(other
                   .AddReplicated("part", f.data.part_schema, f.data.part,
                                  "ghost", 0, 0)
                   .ok());
}

TEST(PrefTest, JoinMatchesAdaptDbResult) {
  PrefFixture f;
  // Same data into an (adaptation-off) Database for ground truth.
  Database db(FullScanOptions(DatabaseOptions{}));
  ASSERT_TRUE(LoadTpch(&db, f.data, 4, 4, 3).ok());

  Rng rng(5);
  Rng rng2 = rng;
  Query q_pref = tpch::MakeQ14(&rng);
  Query q_db = tpch::MakeQ14(&rng2);
  auto pref_run = f.layout.RunQuery(q_pref);
  auto db_run = db.RunQuery(q_db);
  ASSERT_TRUE(pref_run.ok()) << pref_run.status().ToString();
  ASSERT_TRUE(db_run.ok());
  EXPECT_EQ(pref_run.ValueOrDie().output_rows, db_run.ValueOrDie().output_rows);
  EXPECT_EQ(pref_run.ValueOrDie().checksum, db_run.ValueOrDie().checksum);
}

TEST(PrefTest, MultiJoinQ3Matches) {
  PrefFixture f;
  Database db(FullScanOptions(DatabaseOptions{}));
  ASSERT_TRUE(LoadTpch(&db, f.data, 4, 4, 3).ok());
  Rng rng(7);
  Rng rng2 = rng;
  Query q_pref = tpch::MakeQ3(&rng);
  Query q_db = tpch::MakeQ3(&rng2);
  auto pref_run = f.layout.RunQuery(q_pref);
  auto db_run = db.RunQuery(q_db);
  ASSERT_TRUE(pref_run.ok()) << pref_run.status().ToString();
  ASSERT_TRUE(db_run.ok());
  EXPECT_EQ(pref_run.ValueOrDie().output_rows, db_run.ValueOrDie().output_rows);
}

TEST(PrefTest, NoShuffleIo) {
  PrefFixture f;
  Rng rng(8);
  Query q = tpch::MakeQ12(&rng);
  auto run = f.layout.RunQuery(q);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.ValueOrDie().io.shuffled_blocks, 0);
  EXPECT_GT(run.ValueOrDie().io.TotalReads(), 0);
}

TEST(PrefTest, UnknownTableIsError) {
  PrefFixture f;
  Query q;
  q.tables = {{"lineitem", {}}, {"supplier", {}}};
  q.joins = {{"lineitem", tpch::kLSuppKey, "supplier", tpch::kSSuppKey}};
  EXPECT_FALSE(f.layout.RunQuery(q).ok());  // supplier never added.
}

TEST(PrefTest, SelectiveQueriesStillReadEverything) {
  // PREF has no selection-attribute partitioning: a highly selective q19
  // reads the whole fact table and the whole (replicated) part table.
  PrefFixture f;
  Rng rng(9);
  Query q19 = tpch::MakeQ19(&rng);
  auto run = f.layout.RunQuery(q19);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const int64_t fact_blocks = f.layout.TotalBlocks("lineitem");
  const int64_t part_blocks = f.layout.TotalBlocks("part");
  EXPECT_EQ(run.ValueOrDie().edges[0].r_blocks_read, fact_blocks);
  EXPECT_EQ(run.ValueOrDie().edges[0].s_blocks_read, part_blocks);
}

}  // namespace
}  // namespace adaptdb
