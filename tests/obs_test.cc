/// \file obs_test.cc
/// \brief Observability subsystem tests: JSON writer, sharded metrics
/// registry, sampler, and end-to-end QueryProfile consistency.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/query_profile.h"
#include "testing_util.h"
#include "workload/drivers.h"
#include "workload/tpch.h"

namespace adaptdb {
namespace {

using adaptdb::testing::TinyTpch;

// --- JsonWriter ----------------------------------------------------------

TEST(JsonWriterTest, ObjectsArraysAndScalars) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Field("name", "adaptdb");
  w.Field("count", int64_t{42});
  w.Field("ratio", 0.5);
  w.Field("flag", true);
  w.Key("list").BeginArray();
  w.Int(1).Int(2).Int(3);
  w.EndArray();
  w.Key("nested").BeginObject();
  w.Field("inner", int64_t{-7});
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"name\":\"adaptdb\",\"count\":42,\"ratio\":0.5,\"flag\":true,"
            "\"list\":[1,2,3],\"nested\":{\"inner\":-7}}");
}

TEST(JsonWriterTest, EscapesControlAndQuoteCharacters) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Field("k", std::string("a\"b\\c\n\t\x01z"));
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"k\":\"a\\\"b\\\\c\\n\\t\\u0001z\"}");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  obs::JsonWriter w;
  w.BeginArray();
  w.Double(std::nan(""));
  w.Double(1.0 / 0.0);
  w.Double(1.5);
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null,1.5]");
}

// --- MetricsRegistry -----------------------------------------------------

// Shard aggregation must be exact under concurrent writers: the registry is
// process-global, so the test asserts on the *delta* across its own work.
TEST(MetricsRegistryTest, AggregationExactUnderConcurrentWriters) {
  auto& reg = obs::MetricsRegistry::Instance();
  const obs::MetricsSnapshot before = reg.Aggregate();

  constexpr int kThreads = 8;
  constexpr int64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int64_t i = 0; i < kPerThread; ++i) {
        obs::Count(obs::Counter::kTasksExecuted);
        if (i % 2 == 0) obs::Count(obs::Counter::kBufferHits, 3);
      }
    });
  }
  for (auto& t : threads) t.join();

  const obs::MetricsSnapshot delta = reg.Aggregate().Delta(before);
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(delta[obs::Counter::kTasksExecuted], kThreads * kPerThread);
    EXPECT_EQ(delta[obs::Counter::kBufferHits],
              kThreads * (kPerThread / 2) * 3);
    EXPECT_GE(reg.num_shards(), 1);
  } else {
    EXPECT_EQ(delta[obs::Counter::kTasksExecuted], 0);
  }
}

// Counts survive thread exit: increments made on a short-lived thread stay
// visible in Aggregate() after the thread (and its shard lease) is gone.
TEST(MetricsRegistryTest, CountsSurviveThreadExit) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  auto& reg = obs::MetricsRegistry::Instance();
  const obs::MetricsSnapshot before = reg.Aggregate();
  std::thread([] { obs::Count(obs::Counter::kAdaptSteps, 17); }).join();
  EXPECT_EQ(reg.Aggregate().Delta(before)[obs::Counter::kAdaptSteps], 17);
}

TEST(MetricsRegistryTest, ScopedNanosRecordsElapsedTime) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  auto& reg = obs::MetricsRegistry::Instance();
  const obs::MetricsSnapshot before = reg.Aggregate();
  {
    obs::ScopedNanos timer(obs::Counter::kWorkerIdleNanos);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(reg.Aggregate().Delta(before)[obs::Counter::kWorkerIdleNanos],
            1'000'000);
}

TEST(MetricsSamplerTest, CollectsMonotoneSamples) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::MetricsSampler sampler(/*interval_millis=*/1, /*capacity=*/16);
  sampler.Start();
  for (int i = 0; i < 50; ++i) {
    obs::Count(obs::Counter::kBlocksSkippedMeta);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (sampler.Samples().size() >= 3) break;
  }
  sampler.Stop();
  const std::vector<obs::MetricsSampler::Sample> samples = sampler.Samples();
  ASSERT_GE(samples.size(), 2u);
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].elapsed_seconds, samples[i - 1].elapsed_seconds);
    EXPECT_GE(samples[i].snapshot[obs::Counter::kBlocksSkippedMeta],
              samples[i - 1].snapshot[obs::Counter::kBlocksSkippedMeta]);
  }
}

// Stop() must be safe to race against itself (and against the destructor's
// implicit Stop): only one caller may join the sampling thread. Before the
// thread was claimed under the lock, this test aborted on a double join.
TEST(MetricsSamplerTest, ConcurrentStopIsSafe) {
  obs::MetricsSampler sampler(/*interval_millis=*/1, /*capacity=*/8);
  sampler.Start();
  std::vector<std::thread> stoppers;
  stoppers.reserve(4);
  for (int i = 0; i < 4; ++i) {
    stoppers.emplace_back([&sampler] { sampler.Stop(); });
  }
  for (std::thread& t : stoppers) t.join();
  EXPECT_FALSE(sampler.running());
  sampler.Stop();  // Idempotent after the race too.
}

// --- QueryProfile --------------------------------------------------------

bool SameLogicalIo(const IoStats& a, const IoStats& b) {
  return a.local_block_reads == b.local_block_reads &&
         a.remote_block_reads == b.remote_block_reads &&
         a.block_writes == b.block_writes &&
         a.shuffled_blocks == b.shuffled_blocks;
}

// Recursively checks the by-construction invariants: children's wall times
// sum to at most the parent's, and every interior span's IoStats equal the
// exact field-wise sum of its children's.
void CheckSpanConsistency(const obs::ProfileSpan& span) {
  if (span.children.empty()) return;
  double child_wall = 0;
  IoStats sum;
  for (const obs::ProfileSpan& child : span.children) {
    child_wall += child.wall_seconds;
    sum.Merge(child.io);
    CheckSpanConsistency(child);
  }
  EXPECT_LE(child_wall, span.wall_seconds + 2e-3)
      << "children of '" << span.name << "' outlast their parent";
  EXPECT_EQ(sum.local_block_reads, span.io.local_block_reads) << span.name;
  EXPECT_EQ(sum.remote_block_reads, span.io.remote_block_reads) << span.name;
  EXPECT_EQ(sum.block_writes, span.io.block_writes) << span.name;
  EXPECT_EQ(sum.shuffled_blocks, span.io.shuffled_blocks) << span.name;
  EXPECT_EQ(sum.buffer_hits, span.io.buffer_hits) << span.name;
  EXPECT_EQ(sum.buffer_misses, span.io.buffer_misses) << span.name;
  EXPECT_EQ(sum.physical_block_writes, span.io.physical_block_writes)
      << span.name;
  EXPECT_EQ(sum.prefetched, span.io.prefetched) << span.name;
}

// Flattened (depth, name, logical io) signature used to compare profile
// trees across thread counts: structure and logical IoStats are part of the
// engine's determinism contract; wall times and physical counters are not.
std::vector<std::string> LogicalSignature(const obs::ProfileSpan& span,
                                          int depth = 0) {
  std::vector<std::string> out;
  out.push_back(std::to_string(depth) + ":" + span.name + ":" +
                std::to_string(span.io.local_block_reads) + "," +
                std::to_string(span.io.remote_block_reads) + "," +
                std::to_string(span.io.block_writes) + "," +
                std::to_string(span.io.shuffled_blocks));
  for (const obs::ProfileSpan& child : span.children) {
    const std::vector<std::string> sub = LogicalSignature(child, depth + 1);
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

std::unique_ptr<Database> MakeTpchDb(int32_t threads, bool disk,
                                     PlannerConfig::Strategy strategy,
                                     bool adapt = false) {
  DatabaseOptions opts;
  opts.adapt_enabled = adapt;
  opts.planner.collect_profile = true;
  opts.planner.exec.num_threads = threads;
  opts.planner.strategy = strategy;
  opts.planner.memory_budget_blocks = 4;
  if (disk) {
    opts.cluster.storage.backend = StorageConfig::Backend::kDisk;
    opts.cluster.storage.buffer_blocks = 8;
  }
  auto db = std::make_unique<Database>(opts);
  EXPECT_TRUE(LoadTpch(db.get(), TinyTpch(), 4, 3, 2).ok());
  return db;
}

Query ScanQuery() {
  Query q;
  q.name = "li_scan";
  q.tables = {{"lineitem",
               {Predicate(tpch::kLOrderKey, CompareOp::kLt, Value(100))}}};
  return q;
}

Query JoinQuery() {
  Query q;
  q.name = "lo_join";
  q.tables = {{"lineitem", {}}, {"orders", {}}};
  q.joins = {{"lineitem", tpch::kLOrderKey, "orders", tpch::kOOrderKey}};
  return q;
}

struct ProfileCase {
  const char* label;
  PlannerConfig::Strategy strategy;
  bool join;
};

const ProfileCase kProfileCases[] = {
    {"scan", PlannerConfig::Strategy::kAuto, false},
    {"hyper", PlannerConfig::Strategy::kForceHyper, true},
    {"shuffle", PlannerConfig::Strategy::kForceShuffle, true},
};

// collect_profile=true yields an internally consistent profile whose root
// logical IoStats equal the query's reported totals, for scan, hyper-join
// and shuffle-join, on both backends, at 1 and 8 threads.
TEST(QueryProfileTest, ConsistentAcrossOperatorsBackendsAndThreads) {
  for (const bool disk : {false, true}) {
    for (const ProfileCase& pc : kProfileCases) {
      for (const int32_t threads : {1, 8}) {
        SCOPED_TRACE(std::string(pc.label) + (disk ? "/disk" : "/mem") + "/" +
                     std::to_string(threads) + "t");
        auto db = MakeTpchDb(threads, disk, pc.strategy);
        const Query q = pc.join ? JoinQuery() : ScanQuery();
        auto run = db->RunQuery(q);
        ASSERT_TRUE(run.ok()) << run.status().ToString();
        const QueryRunResult& r = run.ValueOrDie();
        ASSERT_NE(r.profile, nullptr);
        const obs::QueryProfile& profile = *r.profile;
        EXPECT_EQ(profile.query_name, q.name);
        EXPECT_EQ(profile.threads, threads);
        EXPECT_EQ(profile.root.name, "query");
        EXPECT_GT(r.output_rows, 0);
        CheckSpanConsistency(profile.root);
        EXPECT_TRUE(SameLogicalIo(profile.root.io, r.io))
            << profile.ToString();
        // The rendered forms exist and carry the tree.
        EXPECT_NE(profile.ToString().find("query"), std::string::npos);
        EXPECT_NE(profile.ToJson().find("\"wall_seconds\""),
                  std::string::npos);
      }
    }
  }
}

// Thread-count invariance: the span tree's structure and logical IoStats
// are identical at 1 and 8 threads (wall times and physical counters may
// differ, and are excluded from the signature).
TEST(QueryProfileTest, TreeDeterministicAcrossThreadCounts) {
  for (const ProfileCase& pc : kProfileCases) {
    SCOPED_TRACE(pc.label);
    const Query q = pc.join ? JoinQuery() : ScanQuery();
    auto db1 = MakeTpchDb(1, /*disk=*/false, pc.strategy);
    auto db8 = MakeTpchDb(8, /*disk=*/false, pc.strategy);
    auto run1 = db1->RunQuery(q);
    auto run8 = db8->RunQuery(q);
    ASSERT_TRUE(run1.ok() && run8.ok());
    ASSERT_NE(run1.ValueOrDie().profile, nullptr);
    ASSERT_NE(run8.ValueOrDie().profile, nullptr);
    EXPECT_EQ(LogicalSignature(run1.ValueOrDie().profile->root),
              LogicalSignature(run8.ValueOrDie().profile->root));
    EXPECT_EQ(run1.ValueOrDie().output_rows, run8.ValueOrDie().output_rows);
    EXPECT_EQ(run1.ValueOrDie().checksum, run8.ValueOrDie().checksum);
  }
}

// With adaptation on, per-table adapt spans attribute exactly the
// repartitioning io/records the query reports.
TEST(QueryProfileTest, AdaptSpansMatchQueryTotals) {
  auto db = MakeTpchDb(1, /*disk=*/false, PlannerConfig::Strategy::kAuto,
                       /*adapt=*/true);
  const Query q = JoinQuery();
  std::shared_ptr<const obs::QueryProfile> with_adapt;
  int64_t reported_moved = 0;
  for (int i = 0; i < 10; ++i) {
    auto run = db->RunQuery(q);
    ASSERT_TRUE(run.ok());
    if (run.ValueOrDie().records_repartitioned > 0) {
      with_adapt = run.ValueOrDie().profile;
      reported_moved = run.ValueOrDie().records_repartitioned;
      break;
    }
  }
  ASSERT_NE(with_adapt, nullptr) << "no query triggered repartitioning";
  const obs::ProfileSpan* adapt_span = nullptr;
  for (const obs::ProfileSpan& child : with_adapt->root.children) {
    if (child.name == "adapt") adapt_span = &child;
  }
  ASSERT_NE(adapt_span, nullptr);
  int64_t span_moved = 0;
  for (const obs::ProfileSpan& table : adapt_span->children) {
    span_moved += table.Attr("records_moved");
  }
  EXPECT_EQ(span_moved, reported_moved);
  CheckSpanConsistency(with_adapt->root);
}

TEST(QueryProfileTest, ProfileLastQueryNullWhenDisabled) {
  DatabaseOptions opts;
  opts.adapt_enabled = false;
  Database db(opts);
  ASSERT_TRUE(LoadTpch(&db, TinyTpch(), 4, 3, 2).ok());
  ASSERT_TRUE(db.RunQuery(ScanQuery()).ok());
  EXPECT_EQ(db.ProfileLastQuery(), nullptr);

  PlannerConfig config = db.planner_config();
  config.collect_profile = true;
  db.SetPlannerConfig(config);
  auto run = db.RunQuery(ScanQuery());
  ASSERT_TRUE(run.ok());
  auto last = db.ProfileLastQuery();
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last.get(), run.ValueOrDie().profile.get());
}

// --- DatabaseStats export surfaces ---------------------------------------

TEST(DatabaseStatsTest, RegistryFieldsAndJson) {
  auto db = MakeTpchDb(2, /*disk=*/false, PlannerConfig::Strategy::kAuto);
  ASSERT_TRUE(db->RunQuery(ScanQuery()).ok());
  const DatabaseStats stats = db->Stats();
  EXPECT_EQ(stats.queries_started, 1);
  EXPECT_EQ(stats.queries_finished, 1);
  if (obs::kMetricsEnabled) {
    EXPECT_GE(stats.queries_admitted, 1);
    EXPECT_GE(stats.metric_shards, 1);
  }
  const std::string text = stats.ToString();
  EXPECT_NE(text.find("admitted="), std::string::npos);
  const std::string json = stats.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"queries_admitted\""), std::string::npos);
  EXPECT_NE(json.find("\"blocks_skipped_meta\""), std::string::npos);
}

}  // namespace
}  // namespace adaptdb
