// Microbenchmark: parallel execution engine thread-count sweep.
//
// Builds a synthetic co-partitioned R ⋈ S workload (block-diagonal overlap
// matrix, so the hyper-join grouping yields many balanced groups), enables
// emulated per-block read latency to put the simulator in the I/O-bound
// regime the paper's cluster operates in (§4.2), and sweeps the engine
// thread count over scan, hyper-join and shuffle-join.
//
// For every operator the harness asserts bitwise determinism — the output
// record sequence, JoinCounts and IoStats at N threads must equal the
// serial executor's — and reports wall-clock speedup. Exits non-zero if
// any thread count produces a result differing from serial.
//
// Usage: micro_parallel [--smoke] [--threads N]   (N extends the sweep)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "exec/hyper_join.h"
#include "exec/scan.h"
#include "exec/shuffle_join.h"
#include "join/grouping.h"
#include "join/overlap.h"

using namespace adaptdb;

namespace {

struct Workload {
  Workload(int32_t num_attrs) : r_store(num_attrs), s_store(num_attrs) {}

  MemBlockStore r_store;
  MemBlockStore s_store;
  std::vector<BlockId> r_blocks;
  std::vector<BlockId> s_blocks;
};

// Fills `store` with `n_blocks` blocks whose join keys (attribute 0) tile
// consecutive ranges of `keys_per_block`, so R and S built with the same
// tiling co-partition and the overlap matrix is block-diagonal.
void FillTiled(BlockStore* store, std::vector<BlockId>* ids, int32_t n_blocks,
               int32_t records_per_block, int64_t keys_per_block,
               ClusterSim* cluster, uint64_t seed) {
  Rng rng(seed);
  for (int32_t b = 0; b < n_blocks; ++b) {
    const BlockId id = store->CreateBlock();
    MutableBlockRef blk = store->GetMutable(id).ValueOrDie();
    const int64_t lo = b * keys_per_block;
    for (int32_t i = 0; i < records_per_block; ++i) {
      Record rec;
      rec.reserve(2);
      rec.push_back(Value(lo + static_cast<int64_t>(rng.Uniform(
                                   static_cast<uint64_t>(keys_per_block)))));
      rec.push_back(Value(rng.UniformRange(0, 999)));
      blk->Add(rec);
    }
    ids->push_back(id);
    cluster->PlaceBlock(id);
  }
}

double WallMs(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

bool SameIo(const IoStats& a, const IoStats& b) {
  return a.local_block_reads == b.local_block_reads &&
         a.remote_block_reads == b.remote_block_reads &&
         a.block_writes == b.block_writes &&
         a.shuffled_blocks == b.shuffled_blocks;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  const int32_t n_blocks = bench::SmokeScale<int32_t>(128, 64);
  const int32_t records_per_block = bench::SmokeScale<int32_t>(512, 64);
  const int64_t latency_us = bench::SmokeScale<int64_t>(500, 400);
  const int32_t budget = n_blocks / 16;  // >= 16 hyper-join groups.

  ClusterConfig cluster_cfg;
  cluster_cfg.emulate_read_latency_micros = latency_us;
  ClusterSim cluster(cluster_cfg);
  Workload w(2);
  FillTiled(&w.r_store, &w.r_blocks, n_blocks, records_per_block, 1000,
            &cluster, 1);
  FillTiled(&w.s_store, &w.s_blocks, n_blocks, records_per_block, 1000,
            &cluster, 2);

  const OverlapMatrix overlap =
      ComputeOverlap(w.r_store, w.r_blocks, 0, w.s_store, w.s_blocks, 0)
          .ValueOrDie();
  const Grouping grouping = BottomUpGrouping(overlap, budget).ValueOrDie();

  std::vector<int32_t> sweep = {1, 2, 4, 8};
  if (std::find(sweep.begin(), sweep.end(), bench::Threads()) ==
      sweep.end()) {
    sweep.push_back(bench::Threads());
  }

  bench::PrintHeader(
      "micro_parallel",
      "thread sweep (" + std::to_string(n_blocks) + "+" +
          std::to_string(n_blocks) + " blocks, " +
          std::to_string(records_per_block) + " rec/block, " +
          std::to_string(latency_us) + "us emulated read latency)");

  bool all_match = true;
  double hyper_speedup_at_8 = 0;

  // --- Scan -------------------------------------------------------------
  ScanResult scan_base;
  double scan_t1 = 0;
  for (int32_t threads : sweep) {
    ExecConfig config;
    config.num_threads = threads;
    const auto t0 = std::chrono::steady_clock::now();
    const ScanResult r =
        ScanBlocks(w.r_store, w.r_blocks, {}, cluster, config,
                   /*skip_by_ranges=*/false)
            .ValueOrDie();
    const double ms = WallMs(t0);
    if (threads == 1) {
      scan_base = r;
      scan_t1 = ms;
    }
    const bool match = r.rows_matched == scan_base.rows_matched &&
                       r.blocks_read == scan_base.blocks_read &&
                       SameIo(r.io, scan_base.io);
    all_match = all_match && match;
    char label[64];
    std::snprintf(label, sizeof(label), "scan         %2d thread(s) [%s]",
                  threads, match ? "ok" : "MISMATCH");
    std::printf("%-42s %9.1f wall-ms  %5.2fx\n", label, ms, scan_t1 / ms);
    bench::ReportMetric("scan_ms_" + std::to_string(threads) + "t", ms, "ms");
  }

  // --- Hyper-join -------------------------------------------------------
  JoinExecResult hyper_base;
  std::vector<Record> hyper_base_rows;
  double hyper_t1 = 0;
  for (int32_t threads : sweep) {
    ExecConfig config;
    config.num_threads = threads;
    std::vector<Record> rows;
    const auto t0 = std::chrono::steady_clock::now();
    const JoinExecResult r =
        HyperJoin(w.r_store, 0, {}, w.s_store, 0, {}, overlap, grouping,
                  cluster, config, &rows)
            .ValueOrDie();
    const double ms = WallMs(t0);
    if (threads == 1) {
      hyper_base = r;
      hyper_base_rows = std::move(rows);
      hyper_t1 = ms;
    }
    const bool match =
        r.counts.output_rows == hyper_base.counts.output_rows &&
        r.counts.checksum == hyper_base.counts.checksum &&
        r.r_blocks_read == hyper_base.r_blocks_read &&
        r.s_blocks_read == hyper_base.s_blocks_read &&
        SameIo(r.io, hyper_base.io) &&
        (threads == 1 || rows == hyper_base_rows);
    all_match = all_match && match;
    if (threads == 8) hyper_speedup_at_8 = hyper_t1 / ms;
    char label[64];
    std::snprintf(label, sizeof(label), "hyper-join   %2d thread(s) [%s]",
                  threads, match ? "ok" : "MISMATCH");
    std::printf("%-42s %9.1f wall-ms  %5.2fx\n", label, ms, hyper_t1 / ms);
    bench::ReportMetric("hyper_ms_" + std::to_string(threads) + "t", ms,
                        "ms");
  }

  // --- Shuffle join -----------------------------------------------------
  JoinExecResult shuffle_base;
  std::vector<Record> shuffle_base_rows;
  double shuffle_t1 = 0;
  for (int32_t threads : sweep) {
    ExecConfig config;
    config.num_threads = threads;
    std::vector<Record> rows;
    const auto t0 = std::chrono::steady_clock::now();
    const JoinExecResult r =
        ShuffleJoin(w.r_store, w.r_blocks, 0, {}, w.s_store, w.s_blocks, 0,
                    {}, cluster, config, &rows)
            .ValueOrDie();
    const double ms = WallMs(t0);
    if (threads == 1) {
      shuffle_base = r;
      shuffle_base_rows = std::move(rows);
      shuffle_t1 = ms;
    }
    const bool match =
        r.counts.output_rows == shuffle_base.counts.output_rows &&
        r.counts.checksum == shuffle_base.counts.checksum &&
        SameIo(r.io, shuffle_base.io) &&
        (threads == 1 || rows == shuffle_base_rows);
    all_match = all_match && match;
    char label[64];
    std::snprintf(label, sizeof(label), "shuffle-join %2d thread(s) [%s]",
                  threads, match ? "ok" : "MISMATCH");
    std::printf("%-42s %9.1f wall-ms  %5.2fx\n", label, ms, shuffle_t1 / ms);
    bench::ReportMetric("shuffle_ms_" + std::to_string(threads) + "t", ms,
                        "ms");
  }

  std::printf("\nhyper-join speedup at 8 threads: %.2fx (target >= 2x)\n",
              hyper_speedup_at_8);
  std::printf("determinism across thread counts: %s\n",
              all_match ? "ok (outputs, counts and IoStats identical)"
                        : "FAILED");
  bench::ReportMetric("hyper_speedup_8t", hyper_speedup_at_8, "x");
  bench::BenchReport::Instance().Meta("determinism_ok", all_match);
  bench::BenchReport::Instance().Meta("metrics_enabled",
                                      obs::kMetricsEnabled);
  return all_match ? 0 : 1;
}
