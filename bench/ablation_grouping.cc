// Ablation: the hyper-join design choices DESIGN.md calls out.
//
// (1) Grouping algorithm: sequential (structure-oblivious) vs the paper's
//     Fig. 5 greedy vs the Fig. 6 bottom-up vs contiguous DP vs the exact
//     optimum, across overlap structures (clean band = converged two-phase
//     trees; noisy band = mid-migration; random = workload-oblivious) and
//     buffer sizes. Shows why AdaptDB ships the bottom-up heuristic: within
//     a few blocks of optimal on the structures its trees produce, at
//     microsecond cost.
// (2) Join-level selection (§7.4 extension): fixed-half vs workload-driven
//     auto levels on a selective and an unselective join workload.

#include "bench_util.h"
#include "common/rng.h"
#include "join/exact_grouping.h"
#include "workload/tpch_queries.h"

using namespace adaptdb;

namespace {

OverlapMatrix MakeMatrix(const std::string& kind, size_t n, size_t m,
                         uint64_t seed) {
  Rng rng(seed);
  OverlapMatrix out;
  for (size_t i = 0; i < n; ++i) out.r_blocks.push_back(static_cast<BlockId>(i));
  for (size_t j = 0; j < m; ++j) out.s_blocks.push_back(static_cast<BlockId>(j));
  out.vectors.assign(n, BitVector(m));
  for (size_t i = 0; i < n; ++i) {
    if (kind == "random") {
      for (size_t j = 0; j < m; ++j) {
        if (rng.Flip(0.2)) out.vectors[i].Set(j);
      }
      if (out.vectors[i].Count() == 0) out.vectors[i].Set(rng.Uniform(m));
      continue;
    }
    const double lo = static_cast<double>(i) / static_cast<double>(n);
    const double hi = static_cast<double>(i + 1) / static_cast<double>(n);
    for (size_t j = 0; j < m; ++j) {
      const double slo = static_cast<double>(j) / static_cast<double>(m);
      const double shi = static_cast<double>(j + 1) / static_cast<double>(m);
      if (hi >= slo && shi >= lo) out.vectors[i].Set(j);
    }
    if (kind == "noisy_band" && rng.Flip(0.3)) {
      out.vectors[i].Set(rng.Uniform(m));
    }
  }
  return out;
}

int64_t CostOf(Result<Grouping> g, const OverlapMatrix& m) {
  ADB_CHECK_OK(g.status());
  return GroupingCost(m, g.ValueOrDie());
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  bench::PrintHeader("Ablation 1", "grouping algorithms x overlap structure");
  std::printf("%-12s %-8s %10s %10s %10s %10s %10s\n", "structure", "budget",
              "sequential", "greedy", "bottom-up", "contig-DP", "exact");
  for (const char* kind : {"band", "noisy_band", "random"}) {
    for (int32_t budget : {8, 16, 32}) {
      const OverlapMatrix m =
          MakeMatrix(kind, bench::SmokeScale<size_t>(64, 16), 32, 5);
      const int64_t seq = CostOf(SequentialGrouping(m, budget), m);
      const int64_t greedy = CostOf(GreedyGrouping(m, budget), m);
      const int64_t bottom = CostOf(BottomUpGrouping(m, budget), m);
      const int64_t dp = CostOf(ContiguousDpGrouping(m, budget), m);
      ExactOptions opts;
      opts.max_nodes = bench::SmokeScale<int64_t>(5'000'000, 50'000);
      auto exact = ExactGrouping(m, budget, opts);
      char exact_buf[16];
      if (exact.ok()) {
        std::snprintf(exact_buf, sizeof(exact_buf), "%lld",
                      static_cast<long long>(exact.ValueOrDie().cost));
      } else {
        std::snprintf(exact_buf, sizeof(exact_buf), ">budget");
      }
      std::printf("%-12s %-8d %10lld %10lld %10lld %10lld %10s\n", kind,
                  budget, static_cast<long long>(seq),
                  static_cast<long long>(greedy),
                  static_cast<long long>(bottom), static_cast<long long>(dp),
                  exact_buf);
    }
  }

  bench::PrintHeader("Ablation 2",
                     "join levels: fixed half vs workload-driven (§7.4)");
  tpch::TpchConfig cfg;
  cfg.num_orders = bench::SmokeScale<int64_t>(8000, 1000);
  const tpch::TpchData data = tpch::GenerateTpch(cfg);
  std::printf("%-22s %14s %14s\n", "workload", "fixed half", "auto levels");
  // q5 is unselective on lineitem (join levels should deepen); q19 is very
  // selective (selection levels should win).
  for (const char* tmpl : {"q5", "q19"}) {
    double totals[2] = {0, 0};
    for (int mode = 0; mode < 2; ++mode) {
      DatabaseOptions opts;
      opts.adapt.smooth.total_levels = 8;
      opts.adapt.smooth.join_levels = mode == 0 ? -1 : kAutoJoinLevels;
      Database db(bench::WithThreads(opts));
      ADB_CHECK_OK(LoadTpch(&db, data, 8, 6, 4));
      Rng rng(3);
      for (int i = 0; i < bench::SmokeScale(12, 2); ++i) {
        auto q = tpch::MakeQuery(tmpl, &rng);
        ADB_CHECK_OK(q.status());
        ADB_CHECK_OK(db.RunQuery(q.ValueOrDie()).status());
      }
      db.set_adapt_enabled(false);
      for (int i = 0; i < bench::SmokeScale(5, 1); ++i) {
        auto q = tpch::MakeQuery(tmpl, &rng);
        ADB_CHECK_OK(q.status());
        auto run = db.RunQuery(q.ValueOrDie());
        ADB_CHECK_OK(run.status());
        totals[mode] += run.ValueOrDie().seconds;
      }
    }
    const double rounds = bench::SmokeScale(5.0, 1.0);
    std::printf("%-22s %14.1f %14.1f\n", tmpl, totals[0] / rounds,
                totals[1] / rounds);
  }
  std::printf(
      "expectation: auto levels <= fixed half on both extremes (Fig. 16's "
      "two regimes)\n");
  return 0;
}
