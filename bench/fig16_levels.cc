// Figure 16: effect of the number of tree levels reserved for the join
// attribute, as a (lineitem levels) x (orders levels) grid of the number of
// orders blocks scanned while probing hyper-join hash tables.
//
// Paper setup: a handcrafted q10 without the customer table (selective
// predicates on both lineitem and orders) for (a), and the predicate-free
// join for (b); lineitem levels 0-14, orders levels 0-11, 4 GB buffer.
// Findings: (a) the minimum sits around half the levels on both sides;
// (b) without predicates, more join levels is always better.
//
// Here: lineitem depth 7 (128 blocks), orders depth 6 (64 blocks); the
// buffer is 16 build blocks (the 4 GB analog at this scale).
//
// Usage: fig16_levels [--mode=predicates|nopredicates]

#include <cstring>

#include "bench_util.h"
#include "join/grouping.h"
#include "sample/reservoir.h"
#include "tree/two_phase_partitioner.h"
#include "tree/upfront_partitioner.h"
#include "workload/tpch_queries.h"

using namespace adaptdb;

namespace {

constexpr int32_t kLiLevels = 7;
constexpr int32_t kOrdLevels = 6;
constexpr int32_t kBudget = 16;

struct Built {
  explicit Built(int32_t num_attrs) : store(num_attrs) {}

  MemBlockStore store;
  PartitionTree tree;
};

/// Builds a table with `join_levels` top levels on the join attribute and
/// the remainder on the given selection attributes.
std::unique_ptr<Built> BuildTable(const Schema& schema,
                                  const std::vector<Record>& records,
                                  AttrId join_attr, int32_t join_levels,
                                  int32_t total_levels,
                                  std::vector<AttrId> sel_attrs,
                                  ClusterSim* cluster, uint64_t seed) {
  auto out = std::make_unique<Built>(schema.num_attrs());
  Reservoir sample(3000, seed);
  sample.AddAll(records);
  if (join_levels > 0) {
    TwoPhaseOptions opts;
    opts.join_attr = join_attr;
    opts.join_levels = join_levels;
    opts.total_levels = total_levels;
    opts.selection_attrs = std::move(sel_attrs);
    opts.seed = seed;
    TwoPhasePartitioner p(schema, opts);
    out->tree = std::move(p.Build(sample, &out->store)).ValueOrDie();
  } else {
    UpfrontOptions opts;
    opts.num_levels = total_levels;
    opts.attrs = std::move(sel_attrs);
    opts.seed = seed;
    UpfrontPartitioner p(schema, opts);
    out->tree = std::move(p.Build(sample, &out->store)).ValueOrDie();
  }
  ADB_CHECK_OK(LoadRecords(records, out->tree, &out->store));
  for (BlockId b : out->tree.Leaves()) cluster->PlaceBlock(b);
  return out;
}

}  // namespace

namespace {
void RunGrid(bool with_preds);
}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  bool both = true;
  bool with_preds = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mode=nopredicates") == 0) {
      with_preds = false;
      both = false;
    }
    if (std::strcmp(argv[i], "--mode=predicates") == 0) both = false;
  }
  if (both) {
    RunGrid(true);
    RunGrid(false);
  } else {
    RunGrid(with_preds);
  }
  return 0;
}

namespace {
void RunGrid(bool with_preds) {
  tpch::TpchConfig cfg;
  cfg.num_orders = bench::SmokeScale<int64_t>(12000, 1500);
  const tpch::TpchData data = tpch::GenerateTpch(cfg);

  // The handcrafted q10 variant: lineitem.returnflag = 2,
  // orders.orderdate within one quarter (customer discarded).
  PredicateSet li_preds, ord_preds;
  if (with_preds) {
    li_preds = {Predicate(tpch::kLReturnFlag, CompareOp::kEq, int64_t{2})};
    ord_preds = {
        Predicate(tpch::kOOrderDate, CompareOp::kGe, tpch::YearStart(1993)),
        Predicate(tpch::kOOrderDate, CompareOp::kLt,
                  tpch::YearStart(1993) + 91)};
  }

  bench::PrintHeader(
      std::string("Figure 16") + (with_preds ? "a" : "b"),
      std::string("orders blocks read vs join levels (") +
          (with_preds ? "q10 w/o customer" : "no predicates") + ")");
  std::printf("rows: orders join levels 0..%d; cols: lineitem join levels "
              "0..%d; budget %d blocks\n      ",
              kOrdLevels, kLiLevels, kBudget);
  for (int32_t li = 0; li <= kLiLevels; ++li) std::printf("%7d", li);
  std::printf("\n");

  ClusterSim cluster;
  // Pre-build lineitem variants once per column.
  std::vector<std::unique_ptr<Built>> li_variants;
  for (int32_t li_lvls = 0; li_lvls <= kLiLevels; ++li_lvls) {
    li_variants.push_back(BuildTable(
        data.lineitem_schema, data.lineitem, tpch::kLOrderKey, li_lvls,
        kLiLevels, {tpch::kLReturnFlag, tpch::kLShipDate}, &cluster,
        100 + static_cast<uint64_t>(li_lvls)));
  }

  for (int32_t ord_lvls = 0; ord_lvls <= kOrdLevels; ++ord_lvls) {
    auto ord = BuildTable(data.orders_schema, data.orders, tpch::kOOrderKey,
                          ord_lvls, kOrdLevels,
                          {tpch::kOOrderDate, tpch::kOTotalPrice}, &cluster,
                          200 + static_cast<uint64_t>(ord_lvls));
    std::printf("%5d ", ord_lvls);
    for (int32_t li_lvls = 0; li_lvls <= kLiLevels; ++li_lvls) {
      const Built& li = *li_variants[static_cast<size_t>(li_lvls)];
      // Relevant blocks after predicate pruning + range skipping.
      std::vector<BlockId> li_blocks, ord_blocks;
      for (BlockId b : li.tree.Lookup(li_preds)) {
        auto blk = li.store.Get(b);
        if (blk.ok() && blk.ValueOrDie()->MayMatch(li_preds)) {
          li_blocks.push_back(b);
        }
      }
      for (BlockId b : ord->tree.Lookup(ord_preds)) {
        auto blk = ord->store.Get(b);
        if (blk.ok() && blk.ValueOrDie()->MayMatch(ord_preds)) {
          ord_blocks.push_back(b);
        }
      }
      auto overlap =
          ComputeOverlap(li.store, li_blocks, tpch::kLOrderKey, ord->store,
                         ord_blocks, tpch::kOOrderKey);
      ADB_CHECK_OK(overlap.status());
      auto grouping = BottomUpGrouping(overlap.ValueOrDie(), kBudget);
      ADB_CHECK_OK(grouping.status());
      std::printf("%7lld", static_cast<long long>(GroupingCost(
                               overlap.ValueOrDie(), grouping.ValueOrDie())));
    }
    std::printf("\n");
  }
  std::printf(
      "expectation: (a) minimum near half the levels on both axes; "
      "(b) monotonically better with more join levels (paper Fig. 16)\n");
}
}  // namespace
