// Figure 17: the exact (MIP) grouping vs the approximate algorithm, varying
// the buffer size.
//
// Paper setup: TPC-H SF 10 (the solver does not scale further), lineitem in
// 128 blocks, orders in 32 blocks, hash tables on lineitem. (a) blocks read
// from orders: the approximate algorithm is close to the ILP optimum at
// every buffer size; (b) solver runtime: the ILP takes ~17 s at buffer 64,
// ~20 min at 32 and does not finish in 96 hours at 16, while the
// approximate algorithm answers in ~a millisecond.
//
// Here: the same 128/32-block two-phase layout; the exact branch-and-bound
// replaces GLPK, with a node budget standing in for the 96-hour timeout.

#include <chrono>

#include "bench_util.h"
#include "join/exact_grouping.h"
#include "sample/reservoir.h"
#include "tree/two_phase_partitioner.h"
#include "tree/upfront_partitioner.h"

using namespace adaptdb;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  tpch::TpchConfig cfg;
  cfg.num_orders = bench::SmokeScale<int64_t>(16000, 1500);
  const tpch::TpchData data = tpch::GenerateTpch(cfg);
  ClusterSim cluster;

  MemBlockStore li_store(data.lineitem_schema.num_attrs());
  Reservoir li_sample(4000, 3);
  li_sample.AddAll(data.lineitem);
  TwoPhaseOptions li_opts;
  li_opts.join_attr = tpch::kLOrderKey;
  li_opts.join_levels = 7;
  li_opts.total_levels = 7;  // 128 lineitem blocks, all levels on the key.
  TwoPhasePartitioner li_part(data.lineitem_schema, li_opts);
  PartitionTree li_tree =
      std::move(li_part.Build(li_sample, &li_store)).ValueOrDie();
  ADB_CHECK_OK(LoadRecords(data.lineitem, li_tree, &li_store));

  MemBlockStore ord_store(data.orders_schema.num_attrs());
  Reservoir ord_sample(4000, 4);
  ord_sample.AddAll(data.orders);
  TwoPhaseOptions ord_opts;
  ord_opts.join_attr = tpch::kOOrderKey;
  ord_opts.join_levels = 5;
  ord_opts.total_levels = 5;  // 32 orders blocks.
  TwoPhasePartitioner ord_part(data.orders_schema, ord_opts);
  PartitionTree ord_tree =
      std::move(ord_part.Build(ord_sample, &ord_store)).ValueOrDie();
  ADB_CHECK_OK(LoadRecords(data.orders, ord_tree, &ord_store));

  auto overlap = ComputeOverlap(li_store, li_tree.Leaves(), tpch::kLOrderKey,
                                ord_store, ord_tree.Leaves(),
                                tpch::kOOrderKey);
  ADB_CHECK_OK(overlap.status());
  std::printf("lineitem blocks: %zu, orders blocks: %zu, overlaps: %zu\n",
              overlap.ValueOrDie().NumR(), overlap.ValueOrDie().NumS(),
              overlap.ValueOrDie().TotalOverlaps());

  bench::PrintHeader("Figure 17", "Exact (B&B, GLPK stand-in) vs approximate");
  std::printf("%-18s %14s %14s %16s %16s\n", "buffer (blocks)", "exact reads",
              "approx reads", "exact ms", "approx ms");
  for (int32_t budget : {16, 32, 64, 128}) {
    using Clock = std::chrono::steady_clock;
    const auto a0 = Clock::now();
    auto approx = BottomUpGrouping(overlap.ValueOrDie(), budget);
    const double approx_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - a0).count();
    ADB_CHECK_OK(approx.status());
    const int64_t approx_cost =
        GroupingCost(overlap.ValueOrDie(), approx.ValueOrDie());

    ExactOptions exact_opts;
    // The "96 hours" stand-in; smoke mode keeps the search token-sized.
    exact_opts.max_nodes = bench::SmokeScale<int64_t>(30'000'000, 50'000);
    const auto e0 = Clock::now();
    auto exact = ExactGrouping(overlap.ValueOrDie(), budget, exact_opts);
    const double exact_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - e0).count();

    if (exact.ok()) {
      std::printf("%-18d %14lld %14lld %16.2f %16.4f\n", budget,
                  static_cast<long long>(exact.ValueOrDie().cost),
                  static_cast<long long>(approx_cost), exact_ms, approx_ms);
    } else {
      std::printf("%-18d %14s %14lld %16s %16.4f\n", budget, "> budget",
                  static_cast<long long>(approx_cost), "> budget (cf. >96h)",
                  approx_ms);
    }
  }
  std::printf(
      "expectation: approximate within a few blocks of the optimum, exact "
      "blows up as the buffer shrinks (paper Fig. 17)\n");
  return 0;
}
