// Figure 1: shuffle join vs co-partitioned join.
//
// Paper setup: lineitem ⋈ orders, TPC-H SF 1000, 10 nodes. The shuffle join
// takes ~9500 s; the co-partitioned join ~5000 s (about 2x faster).
//
// Here: the same join over the simulated cluster, once against
// selection-partitioned tables with a forced shuffle (the "Shuffle Join"
// bar) and once against two-phase co-partitioned tables with hyper-join
// (the "Co-partitioned Join" bar).

#include "baselines/full_scan.h"
#include "bench_util.h"
#include "workload/tpch_queries.h"

using namespace adaptdb;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  tpch::TpchConfig cfg;
  cfg.num_orders = bench::SmokeScale<int64_t>(20000, 1500);
  const tpch::TpchData data = tpch::GenerateTpch(cfg);
  const Query join = bench::LineitemOrdersJoin();

  // Shuffle join over workload-oblivious partitioning.
  DatabaseOptions shuffle_opts;
  shuffle_opts.adapt_enabled = false;
  shuffle_opts.planner.strategy = PlannerConfig::Strategy::kForceShuffle;
  Database shuffle_db(bench::WithThreads(shuffle_opts));
  ADB_CHECK_OK(LoadTpch(&shuffle_db, data, 7, 6, 4));
  auto shuffle_run = shuffle_db.RunQuery(join);
  ADB_CHECK_OK(shuffle_run.status());

  // Co-partitioned join: converge the adaptive loop, then measure.
  DatabaseOptions hyper_opts;
  hyper_opts.adapt.smooth.total_levels = 7;
  Database hyper_db(bench::WithThreads(hyper_opts));
  ADB_CHECK_OK(LoadTpch(&hyper_db, data, 7, 6, 4));
  ADB_CHECK_OK(
      bench::ConvergeOnJoin(&hyper_db, join, bench::SmokeScale(12, 2)));
  hyper_db.set_adapt_enabled(false);
  auto hyper_run = hyper_db.RunQuery(join);
  ADB_CHECK_OK(hyper_run.status());

  bench::PrintHeader("Figure 1", "Shuffle vs co-partitioned joins");
  bench::PrintRow("Shuffle Join", shuffle_run.ValueOrDie().seconds,
                  "sim-seconds");
  bench::PrintRow("Co-partitioned Join", hyper_run.ValueOrDie().seconds,
                  "sim-seconds");
  std::printf("speedup: %.2fx (paper: ~1.9x)\n",
              shuffle_run.ValueOrDie().seconds /
                  hyper_run.ValueOrDie().seconds);
  return 0;
}
