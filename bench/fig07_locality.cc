// Figure 7: map-job response time vs data locality.
//
// Paper setup: a Hadoop map-only aggregation over HDFS with block locality
// forced to 100/71/46/27%; even at 27% locality the job is only ~18% slower.
//
// Here: a full scan over one table with the reader of each block chosen
// local with the target probability, on the simulated cluster whose remote
// penalty is calibrated to that measurement.

#include "bench_util.h"

using namespace adaptdb;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  tpch::TpchConfig cfg;
  cfg.num_orders = bench::SmokeScale<int64_t>(20000, 1500);
  const tpch::TpchData data = tpch::GenerateTpch(cfg);

  Database db(bench::WithThreads({}));
  ADB_CHECK_OK(LoadTpch(&db, data, 7, 6, 4));
  Table* lineitem = db.GetTable("lineitem").ValueOrDie();
  const std::vector<BlockId> blocks = lineitem->store()->BlockIds();
  ClusterSim* cluster = db.cluster();

  bench::PrintHeader("Figure 7", "Response time vs data locality");
  double t100 = 0;
  for (double locality : {1.00, 0.71, 0.46, 0.27}) {
    Rng rng(7);
    IoStats io;
    for (BlockId b : blocks) {
      const NodeId owner = cluster->Locate(b).ValueOrDie();
      const NodeId reader =
          rng.Flip(locality)
              ? owner
              : (owner + 1 + static_cast<NodeId>(
                                 rng.Uniform(static_cast<uint64_t>(
                                     cluster->num_nodes() - 1)))) %
                    cluster->num_nodes();
      cluster->ReadBlock(b, reader, &io);
    }
    const double seconds = cluster->SimulatedSeconds(io);
    if (locality == 1.00) t100 = seconds;
    char label[64];
    std::snprintf(label, sizeof(label), "locality %3.0f%%", locality * 100);
    bench::PrintRow(label, seconds, "sim-seconds");
  }
  Rng rng(7);
  IoStats io27;
  for (BlockId b : blocks) {
    const NodeId owner = cluster->Locate(b).ValueOrDie();
    const NodeId reader =
        rng.Flip(0.27) ? owner
                       : (owner + 1) % cluster->num_nodes();
    cluster->ReadBlock(b, reader, &io27);
  }
  std::printf("slowdown at 27%% locality: %.0f%% (paper: ~18%%)\n",
              (cluster->SimulatedSeconds(io27) / t100 - 1.0) * 100.0);
  return 0;
}
