/// \file bench_util.h
/// \brief Shared helpers for the figure-reproduction harnesses: fixed-width
/// table printing and common dataset/loading shortcuts.

#ifndef ADAPTDB_BENCH_BENCH_UTIL_H_
#define ADAPTDB_BENCH_BENCH_UTIL_H_

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/database.h"
#include "workload/drivers.h"
#include "workload/tpch.h"

namespace adaptdb::bench {

/// True when the binary was launched with --smoke: run one scaled-down
/// iteration with no timing claims, so CI can build-and-launch every bench
/// cheaply. Set by ParseBenchArgs.
inline bool g_smoke = false;

/// Execution-engine worker threads, set by --threads N (default 1 so the
/// published figure numbers stay comparable to the serial engine).
inline int32_t g_threads = 1;

/// Scans argv for harness-level flags (--smoke, --threads N/--threads=N).
/// Leaves benchmark-specific flags alone, so it composes with per-figure
/// parsing.
inline void ParseBenchArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc &&
               std::isdigit(static_cast<unsigned char>(argv[i + 1][0]))) {
      // The digit check keeps `--threads --smoke` from eating the next flag.
      g_threads = static_cast<int32_t>(std::atoi(argv[++i]));
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      g_threads = static_cast<int32_t>(std::atoi(argv[i] + 10));
    }
  }
  if (g_threads < 1) g_threads = 1;
}

/// True in smoke mode (see g_smoke).
inline bool Smoke() { return g_smoke; }

/// Worker threads requested via --threads (>= 1).
inline int32_t Threads() { return g_threads; }

/// The ExecConfig implied by --threads, for benches calling executors
/// directly.
inline ExecConfig ThreadedExecConfig() {
  ExecConfig config;
  config.num_threads = g_threads;
  return config;
}

/// Applies --threads to a DatabaseOptions, for benches running queries
/// through Database/JoinPlanner.
inline DatabaseOptions WithThreads(DatabaseOptions opts) {
  opts.planner.exec.num_threads = g_threads;
  return opts;
}

/// Picks the full-size knob normally and the cheap one under --smoke.
template <typename T>
inline T SmokeScale(T full, T smoke) {
  return g_smoke ? smoke : full;
}

inline void PrintHeader(const std::string& figure, const std::string& what) {
  std::printf("\n=== %s: %s ===\n", figure.c_str(), what.c_str());
}

inline void PrintRow(const std::string& label, double value,
                     const char* unit) {
  std::printf("%-34s %12.1f %s\n", label.c_str(), value, unit);
}

/// Builds two-phase co-partitioned lineitem/orders Tables inside a Database
/// by converging the adaptive loop on a q12-shaped join (used by several
/// figures that start from a converged layout).
inline Status ConvergeOnJoin(Database* db, const Query& q, int32_t rounds) {
  for (int32_t i = 0; i < rounds; ++i) {
    auto run = db->RunQuery(q);
    if (!run.ok()) return run.status();
  }
  return Status::OK();
}

/// A plain lineitem ⋈ orders equi-join query with no predicates.
inline Query LineitemOrdersJoin() {
  Query q;
  q.name = "lo_join";
  q.tables = {{"lineitem", {}}, {"orders", {}}};
  q.joins = {{"lineitem", tpch::kLOrderKey, "orders", tpch::kOOrderKey}};
  return q;
}

}  // namespace adaptdb::bench

#endif  // ADAPTDB_BENCH_BENCH_UTIL_H_
