/// \file bench_util.h
/// \brief Shared helpers for the figure-reproduction harnesses: fixed-width
/// table printing and common dataset/loading shortcuts.

#ifndef ADAPTDB_BENCH_BENCH_UTIL_H_
#define ADAPTDB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "core/database.h"
#include "workload/drivers.h"
#include "workload/tpch.h"

namespace adaptdb::bench {

inline void PrintHeader(const std::string& figure, const std::string& what) {
  std::printf("\n=== %s: %s ===\n", figure.c_str(), what.c_str());
}

inline void PrintRow(const std::string& label, double value,
                     const char* unit) {
  std::printf("%-34s %12.1f %s\n", label.c_str(), value, unit);
}

/// Builds two-phase co-partitioned lineitem/orders Tables inside a Database
/// by converging the adaptive loop on a q12-shaped join (used by several
/// figures that start from a converged layout).
inline Status ConvergeOnJoin(Database* db, const Query& q, int32_t rounds) {
  for (int32_t i = 0; i < rounds; ++i) {
    auto run = db->RunQuery(q);
    if (!run.ok()) return run.status();
  }
  return Status::OK();
}

/// A plain lineitem ⋈ orders equi-join query with no predicates.
inline Query LineitemOrdersJoin() {
  Query q;
  q.name = "lo_join";
  q.tables = {{"lineitem", {}}, {"orders", {}}};
  q.joins = {{"lineitem", tpch::kLOrderKey, "orders", tpch::kOOrderKey}};
  return q;
}

}  // namespace adaptdb::bench

#endif  // ADAPTDB_BENCH_BENCH_UTIL_H_
