/// \file bench_util.h
/// \brief Shared helpers for the figure-reproduction harnesses: fixed-width
/// table printing, machine-readable telemetry (BenchReport), and common
/// dataset/loading shortcuts.

#ifndef ADAPTDB_BENCH_BENCH_UTIL_H_
#define ADAPTDB_BENCH_BENCH_UTIL_H_

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/database.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/drivers.h"
#include "workload/tpch.h"

namespace adaptdb::bench {

/// True when the binary was launched with --smoke: run one scaled-down
/// iteration with no timing claims, so CI can build-and-launch every bench
/// cheaply. Set by ParseBenchArgs.
inline bool g_smoke = false;

/// Execution-engine worker threads, set by --threads N (default 1 so the
/// published figure numbers stay comparable to the serial engine).
inline int32_t g_threads = 1;

/// True when launched with --stats: dump the engine's process-global
/// counter registry at exit. Set by ParseBenchArgs.
inline bool g_stats = false;

/// True when launched with --trace: enable the event tracer for the run
/// and write TRACE_<name>.json (Chrome trace_event format, loadable in
/// chrome://tracing / Perfetto) at exit. Set by ParseBenchArgs.
inline bool g_trace = false;

/// Wall-clock origin for the harness-level bench_wall_seconds metric.
inline std::chrono::steady_clock::time_point g_bench_start{};

/// \brief Machine-readable telemetry every bench binary emits at exit.
///
/// One flat JSON document per run, written to `BENCH_<name>.json` in the
/// working directory (the schema CI's validator checks):
///
///   {
///     "name": "<binary basename>",
///     "threads": N,              // --threads
///     "backend": "mem"|"disk",   // ADAPTDB_STORAGE env, default "mem"
///     "smoke": true|false,       // --smoke
///     "metrics": { "<key>": {"value": 1.5, "unit": "ms"}, ... },
///     "meta":    { "<key>": <string|int|bool>, ... }
///   }
///
/// PrintRow() records every table row it prints as a metric (label
/// sanitized to a snake_case key), so existing benches get telemetry for
/// free; benches add headline numbers explicitly via Metric(). The
/// harness always appends `bench_wall_seconds`, so the file is schema-
/// valid (>= 1 numeric metric) even for a bench that prints no rows.
class BenchReport {
 public:
  static BenchReport& Instance() {
    static BenchReport report;
    return report;
  }

  void SetName(std::string name) { name_ = std::move(name); }
  const std::string& name() const { return name_; }

  /// Records (or overwrites) one named scalar.
  void Metric(const std::string& key, double value, std::string unit = "") {
    for (auto& m : metrics_) {
      if (m.key == key) {
        m.value = value;
        m.unit = std::move(unit);
        return;
      }
    }
    metrics_.push_back({key, value, std::move(unit)});
  }

  /// Free-form metadata (strings, flags, sizes) for humans and trend
  /// tooling; not required by the schema.
  void Meta(const std::string& key, std::string value) {
    meta_.push_back({key, MetaEntry::kString, std::move(value), 0, false});
  }
  void Meta(const std::string& key, const char* value) {
    Meta(key, std::string(value));
  }
  void Meta(const std::string& key, int64_t value) {
    meta_.push_back({key, MetaEntry::kInt, "", value, false});
  }
  void Meta(const std::string& key, bool value) {
    meta_.push_back({key, MetaEntry::kBool, "", 0, value});
  }

  /// Lowercases and snake_cases a table label into a metric key:
  /// "hyper-join  2 thread(s) [ok]" -> "hyper_join_2_thread_s_ok".
  static std::string SanitizeKey(const std::string& label) {
    std::string key;
    key.reserve(label.size());
    for (const char ch : label) {
      const auto c = static_cast<unsigned char>(ch);
      if (std::isalnum(c)) {
        key += static_cast<char>(std::tolower(c));
      } else if (!key.empty() && key.back() != '_') {
        key += '_';
      }
    }
    while (!key.empty() && key.back() == '_') key.pop_back();
    return key.empty() ? "metric" : key;
  }

  std::string ToJson() const {
    obs::JsonWriter w;
    w.BeginObject();
    w.Field("name", name_);
    w.Field("threads", static_cast<int64_t>(g_threads));
    const char* backend = std::getenv("ADAPTDB_STORAGE");
    w.Field("backend",
            backend != nullptr && *backend != '\0' ? backend : "mem");
    w.Field("smoke", g_smoke);
    w.Key("metrics").BeginObject();
    for (const auto& m : metrics_) {
      w.Key(m.key).BeginObject();
      w.Field("value", m.value);
      w.Field("unit", m.unit);
      w.EndObject();
    }
    w.EndObject();
    w.Key("meta").BeginObject();
    for (const auto& e : meta_) {
      switch (e.kind) {
        case MetaEntry::kString: w.Field(e.key, e.str); break;
        case MetaEntry::kInt: w.Field(e.key, e.num); break;
        case MetaEntry::kBool: w.Field(e.key, e.flag); break;
      }
    }
    w.EndObject();
    w.EndObject();
    return w.str();
  }

  /// Writes BENCH_<name>.json next to the binary's working directory.
  void WriteFile() const {
    if (name_.empty()) return;
    const std::string path = "BENCH_" + name_ + ".json";
    if (FILE* f = std::fopen(path.c_str(), "w")) {
      const std::string json = ToJson();
      std::fwrite(json.data(), 1, json.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
    }
  }

 private:
  struct MetricEntry {
    std::string key;
    double value;
    std::string unit;
  };
  struct MetaEntry {
    std::string key;
    enum Kind { kString, kInt, kBool } kind;
    std::string str;
    int64_t num;
    bool flag;
  };

  std::string name_;
  std::vector<MetricEntry> metrics_;
  std::vector<MetaEntry> meta_;
};

/// Shorthand for BenchReport::Instance().Metric(...).
inline void ReportMetric(const std::string& key, double value,
                         std::string unit = "") {
  BenchReport::Instance().Metric(key, value, std::move(unit));
}

/// atexit hook: stamp the harness wall clock, emit BENCH_<name>.json, and
/// honor --stats with a registry dump.
inline void WriteBenchReportAtExit() {
  BenchReport::Instance().Metric(
      "bench_wall_seconds",
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    g_bench_start)
          .count(),
      "s");
  BenchReport::Instance().WriteFile();
  if (g_trace && !BenchReport::Instance().name().empty()) {
    const std::string path = "TRACE_" + BenchReport::Instance().name() +
                             ".json";
    if (FILE* f = std::fopen(path.c_str(), "w")) {
      const std::string json = obs::Tracer::Instance().ToChromeJson();
      std::fwrite(json.data(), 1, json.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("trace written to %s (%lld events buffered, %lld total)\n",
                  path.c_str(),
                  static_cast<long long>(
                      obs::Tracer::Instance().BufferedEvents()),
                  static_cast<long long>(obs::Tracer::Instance().TotalEvents()));
    }
  }
  if (g_stats) {
    const obs::MetricsSnapshot m = obs::MetricsRegistry::Instance().Aggregate();
    std::printf("\n--- engine counters (process-global; see obs/metrics.h) "
                "---\n");
    for (int32_t i = 0; i < obs::kNumCounters; ++i) {
      const auto c = static_cast<obs::Counter>(i);
      std::printf("%-24s %lld\n", std::string(obs::CounterName(c)).c_str(),
                  static_cast<long long>(m[c]));
    }
  }
}

/// Scans argv for harness-level flags (--smoke, --stats, --trace,
/// --threads N/--threads=N). Leaves benchmark-specific flags alone, so it composes
/// with per-figure parsing. Also names the BenchReport after the binary
/// and registers the at-exit telemetry writer.
inline void ParseBenchArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      g_stats = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      g_trace = true;
      obs::Tracer::Instance().SetEnabled(true);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc &&
               std::isdigit(static_cast<unsigned char>(argv[i + 1][0]))) {
      // The digit check keeps `--threads --smoke` from eating the next flag.
      g_threads = static_cast<int32_t>(std::atoi(argv[++i]));
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      g_threads = static_cast<int32_t>(std::atoi(argv[i] + 10));
    }
  }
  if (g_threads < 1) g_threads = 1;
  if (argc >= 1 && argv[0] != nullptr) {
    std::string name = argv[0];
    const size_t slash = name.find_last_of('/');
    if (slash != std::string::npos) name = name.substr(slash + 1);
    BenchReport::Instance().SetName(name);
  }
  g_bench_start = std::chrono::steady_clock::now();
  std::atexit(&WriteBenchReportAtExit);
}

/// True in smoke mode (see g_smoke).
inline bool Smoke() { return g_smoke; }

/// Worker threads requested via --threads (>= 1).
inline int32_t Threads() { return g_threads; }

/// The ExecConfig implied by --threads, for benches calling executors
/// directly.
inline ExecConfig ThreadedExecConfig() {
  ExecConfig config;
  config.num_threads = g_threads;
  return config;
}

/// Applies --threads to a DatabaseOptions, for benches running queries
/// through Database/JoinPlanner.
inline DatabaseOptions WithThreads(DatabaseOptions opts) {
  opts.planner.exec.num_threads = g_threads;
  return opts;
}

/// Picks the full-size knob normally and the cheap one under --smoke.
template <typename T>
inline T SmokeScale(T full, T smoke) {
  return g_smoke ? smoke : full;
}

inline void PrintHeader(const std::string& figure, const std::string& what) {
  std::printf("\n=== %s: %s ===\n", figure.c_str(), what.c_str());
}

inline void PrintRow(const std::string& label, double value,
                     const char* unit) {
  std::printf("%-34s %12.1f %s\n", label.c_str(), value, unit);
  // Every printed row doubles as a telemetry metric (see BenchReport).
  ReportMetric(BenchReport::SanitizeKey(label), value, unit);
}

/// Builds two-phase co-partitioned lineitem/orders Tables inside a Database
/// by converging the adaptive loop on a q12-shaped join (used by several
/// figures that start from a converged layout).
inline Status ConvergeOnJoin(Database* db, const Query& q, int32_t rounds) {
  for (int32_t i = 0; i < rounds; ++i) {
    auto run = db->RunQuery(q);
    if (!run.ok()) return run.status();
  }
  return Status::OK();
}

/// A plain lineitem ⋈ orders equi-join query with no predicates.
inline Query LineitemOrdersJoin() {
  Query q;
  q.name = "lo_join";
  q.tables = {{"lineitem", {}}, {"orders", {}}};
  q.joins = {{"lineitem", tpch::kLOrderKey, "orders", tpch::kOOrderKey}};
  return q;
}

}  // namespace adaptdb::bench

#endif  // ADAPTDB_BENCH_BENCH_UTIL_H_
