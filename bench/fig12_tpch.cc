// Figure 12: per-template execution time on TPC-H for four systems:
//   AdaptDB w/ hyper-join, AdaptDB w/ shuffle join, Amoeba, and PREF.
//
// Paper setup: SF 1000 on 10 nodes; templates q3, q5, q8, q10, q12, q14,
// q19 (q6 has no join). For each template the smooth repartitioner runs
// until one tree with the join attribute exists, then the mean of 10 runs
// is reported. Headline: hyper-join beats shuffle join on every template,
// 1.60x mean and 2.16x max; AdaptDB/HyJ also beats Amoeba and PREF, while
// PREF beats AdaptDB/SJ on the unselective q3/q5/q8 and loses on the
// selective q10/q12/q14/q19.

#include "baselines/amoeba_baseline.h"
#include "baselines/pref.h"
#include "bench_util.h"
#include "workload/tpch_queries.h"

using namespace adaptdb;

namespace {

constexpr int32_t kConvergeRounds = 12;
constexpr int32_t kMeasureRounds = 5;

double MeasureTemplate(Database* db, const std::string& name, uint64_t seed) {
  Rng rng(seed);
  double total = 0;
  for (int32_t i = 0; i < kMeasureRounds; ++i) {
    auto q = tpch::MakeQuery(name, &rng);
    ADB_CHECK_OK(q.status());
    auto run = db->RunQuery(q.ValueOrDie());
    ADB_CHECK_OK(run.status());
    total += run.ValueOrDie().seconds;
  }
  return total / kMeasureRounds;
}

void Converge(Database* db, const std::string& name, uint64_t seed) {
  Rng rng(seed);
  for (int32_t i = 0; i < kConvergeRounds; ++i) {
    auto q = tpch::MakeQuery(name, &rng);
    ADB_CHECK_OK(q.status());
    ADB_CHECK_OK(db->RunQuery(q.ValueOrDie()).status());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  tpch::TpchConfig cfg;
  cfg.num_orders = bench::SmokeScale<int64_t>(12000, 1500);
  const tpch::TpchData data = tpch::GenerateTpch(cfg);
  const std::vector<std::string> templates =
      bench::Smoke() ? std::vector<std::string>{"q3", "q12"}
                     : std::vector<std::string>{"q3", "q5", "q8", "q10",
                                                "q12", "q14", "q19"};

  // PREF: fact table partitioned once, every other table replicated along
  // its reference edge.
  PrefConfig pref_cfg;
  pref_cfg.num_partitions = 64;
  pref_cfg.records_per_block = 190;  // Matches AdaptDB's ~190-record blocks.
  PrefLayout pref(pref_cfg);
  ADB_CHECK_OK(pref.AddFact("lineitem", data.lineitem_schema, data.lineitem,
                            tpch::kLOrderKey));
  ADB_CHECK_OK(pref.AddReplicated("orders", data.orders_schema, data.orders,
                                  "lineitem", tpch::kLOrderKey,
                                  tpch::kOOrderKey));
  ADB_CHECK_OK(pref.AddReplicated("customer", data.customer_schema,
                                  data.customer, "orders", tpch::kOCustKey,
                                  tpch::kCCustKey));
  ADB_CHECK_OK(pref.AddReplicated("part", data.part_schema, data.part,
                                  "lineitem", tpch::kLPartKey,
                                  tpch::kPPartKey));
  ADB_CHECK_OK(pref.AddReplicated("supplier", data.supplier_schema,
                                  data.supplier, "lineitem", tpch::kLSuppKey,
                                  tpch::kSSuppKey));
  std::printf("PREF replication factors: orders %.1fx, customer %.1fx, "
              "part %.1fx, supplier %.1fx\n",
              pref.ReplicationFactor("orders"),
              pref.ReplicationFactor("customer"),
              pref.ReplicationFactor("part"),
              pref.ReplicationFactor("supplier"));

  bench::PrintHeader("Figure 12", "Execution time per TPC-H template");
  std::printf("%-6s %14s %14s %14s %14s\n", "tmpl", "AdaptDB/HyJ",
              "AdaptDB/SJ", "Amoeba", "PREF");

  double sum_ratio = 0, max_ratio = 0;
  for (const std::string& name : templates) {
    // AdaptDB: converge the adaptive loop, then measure with the auto
    // planner (hyper-join) and with shuffle forced on the same layout.
    DatabaseOptions adb_opts;
    adb_opts.adapt.smooth.total_levels = 8;
    Database adb(bench::WithThreads(adb_opts));
    ADB_CHECK_OK(LoadTpch(&adb, data, 8, 6, 4));
    Converge(&adb, name, 1);
    adb.set_adapt_enabled(false);
    const double t_hyj = MeasureTemplate(&adb, name, 2);
    adb.mutable_planner_config()->strategy =
        PlannerConfig::Strategy::kForceShuffle;
    const double t_sj = MeasureTemplate(&adb, name, 2);
    adb.mutable_planner_config()->strategy = PlannerConfig::Strategy::kAuto;

    // Amoeba: selection-only adaptation, shuffle joins.
    Database amoeba(bench::WithThreads(AmoebaOptions(DatabaseOptions{})));
    ADB_CHECK_OK(LoadTpch(&amoeba, data, 8, 6, 4));
    Converge(&amoeba, name, 1);
    const double t_amoeba = MeasureTemplate(&amoeba, name, 2);

    // PREF.
    Rng pref_rng(2);
    double t_pref = 0;
    for (int32_t i = 0; i < kMeasureRounds; ++i) {
      auto q = tpch::MakeQuery(name, &pref_rng);
      ADB_CHECK_OK(q.status());
      auto run = pref.RunQuery(q.ValueOrDie());
      ADB_CHECK_OK(run.status());
      t_pref += run.ValueOrDie().seconds;
    }
    t_pref /= kMeasureRounds;

    std::printf("%-6s %14.1f %14.1f %14.1f %14.1f\n", name.c_str(), t_hyj,
                t_sj, t_amoeba, t_pref);
    const double ratio = t_sj / t_hyj;
    sum_ratio += ratio;
    if (ratio > max_ratio) max_ratio = ratio;
  }
  std::printf(
      "hyper-join speedup over shuffle join: mean %.2fx, max %.2fx "
      "(paper: 1.60x mean, 2.16x max)\n",
      sum_ratio / static_cast<double>(templates.size()), max_ratio);
  return 0;
}
