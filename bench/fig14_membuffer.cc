// Figure 14: effect of the hyper-join memory buffer.
//
// Paper setup: lineitem ⋈ orders without predicates, both tables two-phase
// partitioned on the order key; the buffer varies from 64 MB to 16 GB.
// (a) runtime falls until 4 GB then flattens; (b) the number of orders
// blocks read falls from ~150k toward the co-partitioned minimum and stops
// improving once the buffer stops reducing repeat reads.
//
// Here: the buffer is expressed in build-side blocks (1 block ~ 64 MB), so
// the sweep 1..256 blocks maps onto the paper's 64 MB..16 GB axis.

#include "bench_util.h"
#include "exec/hyper_join.h"
#include "sample/reservoir.h"
#include "tree/two_phase_partitioner.h"
#include "tree/upfront_partitioner.h"

using namespace adaptdb;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  tpch::TpchConfig cfg;
  cfg.num_orders = bench::SmokeScale<int64_t>(30000, 2000);
  const tpch::TpchData data = tpch::GenerateTpch(cfg);

  ClusterSim cluster;
  // Two-phase partition both tables fully on the join attribute.
  BlockStore li_store(data.lineitem_schema.num_attrs());
  Reservoir li_sample(4000, 1);
  li_sample.AddAll(data.lineitem);
  TwoPhaseOptions li_opts;
  li_opts.join_attr = tpch::kLOrderKey;
  li_opts.join_levels = 4;
  li_opts.total_levels = 8;  // 256 lineitem blocks.
  TwoPhasePartitioner li_part(data.lineitem_schema, li_opts);
  PartitionTree li_tree =
      std::move(li_part.Build(li_sample, &li_store)).ValueOrDie();
  ADB_CHECK_OK(LoadRecords(data.lineitem, li_tree, &li_store));
  for (BlockId b : li_tree.Leaves()) cluster.PlaceBlock(b);

  BlockStore ord_store(data.orders_schema.num_attrs());
  Reservoir ord_sample(4000, 2);
  ord_sample.AddAll(data.orders);
  TwoPhaseOptions ord_opts;
  ord_opts.join_attr = tpch::kOOrderKey;
  ord_opts.join_levels = 3;
  ord_opts.total_levels = 6;  // 64 orders blocks.
  TwoPhasePartitioner ord_part(data.orders_schema, ord_opts);
  PartitionTree ord_tree =
      std::move(ord_part.Build(ord_sample, &ord_store)).ValueOrDie();
  ADB_CHECK_OK(LoadRecords(data.orders, ord_tree, &ord_store));
  for (BlockId b : ord_tree.Leaves()) cluster.PlaceBlock(b);

  auto overlap = ComputeOverlap(li_store, li_tree.Leaves(), tpch::kLOrderKey,
                                ord_store, ord_tree.Leaves(),
                                tpch::kOOrderKey);
  ADB_CHECK_OK(overlap.status());

  bench::PrintHeader("Figure 14",
                     "Varying hyper-join memory buffer (1 block ~ 64 MB)");
  std::printf("%-22s %16s %20s\n", "buffer (blocks)", "runtime (sim-s)",
              "orders blocks read");
  for (int32_t budget : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    auto grouping = BottomUpGrouping(overlap.ValueOrDie(), budget);
    ADB_CHECK_OK(grouping.status());
    auto run = HyperJoin(li_store, tpch::kLOrderKey, {}, ord_store,
                         tpch::kOOrderKey, {}, overlap.ValueOrDie(),
                         grouping.ValueOrDie(), cluster,
                         bench::ThreadedExecConfig());
    ADB_CHECK_OK(run.status());
    std::printf("%-22d %16.1f %20lld\n", budget,
                cluster.SimulatedSeconds(run.ValueOrDie().io),
                static_cast<long long>(run.ValueOrDie().s_blocks_read));
  }
  std::printf(
      "shape check: reads flatten once the buffer covers the overlap run "
      "length (paper: flat beyond 4 GB)\n");
  return 0;
}
