// Figure 14: effect of the hyper-join memory buffer.
//
// Paper setup: lineitem ⋈ orders without predicates, both tables two-phase
// partitioned on the order key; the buffer varies from 64 MB to 16 GB.
// (a) runtime falls until 4 GB then flattens; (b) the number of orders
// blocks read falls from ~150k toward the co-partitioned minimum and stops
// improving once the buffer stops reducing repeat reads.
//
// Here the buffer is REAL: both tables live on the disk-backed store
// (src/io/), and `--buffer-blocks` sets the BufferPool budget. The same
// budget feeds the hyper-join grouping (the paper's B: build blocks per
// group must fit the buffer). Each sweep point reports the simulated
// runtime, the logical orders blocks read, the pool's measured hit rate
// and the real wall clock — misses are actual preads, so the wall-clock
// column is measured I/O, not the emulate_read_latency_micros shim.
//
// Usage: fig14_membuffer [--smoke] [--threads N] [--buffer-blocks N,N,...]

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstring>

#include "bench_util.h"
#include "exec/hyper_join.h"
#include "io/disk_block_store.h"
#include "sample/reservoir.h"
#include "tree/two_phase_partitioner.h"
#include "tree/upfront_partitioner.h"

using namespace adaptdb;

namespace {

/// Builds a two-phase partitioned table on its own disk-backed store.
std::unique_ptr<DiskBlockStore> BuildDiskTable(
    const Schema& schema, const std::vector<Record>& records, AttrId join_attr,
    int32_t join_levels, int32_t total_levels, uint64_t seed,
    ClusterSim* cluster, PartitionTree* tree_out) {
  StorageConfig config;
  config.backend = StorageConfig::Backend::kDisk;
  config.buffer_blocks = 1 << 20;  // Effectively unbounded during load.
  auto store = std::move(DiskBlockStore::Open(schema.num_attrs(), config))
                   .ValueOrDie();
  Reservoir sample(4000, seed);
  sample.AddAll(records);
  TwoPhaseOptions opts;
  opts.join_attr = join_attr;
  opts.join_levels = join_levels;
  opts.total_levels = total_levels;
  TwoPhasePartitioner partitioner(schema, opts);
  *tree_out = std::move(partitioner.Build(sample, store.get())).ValueOrDie();
  ADB_CHECK_OK(LoadRecords(records, *tree_out, store.get()));
  for (BlockId b : tree_out->Leaves()) cluster->PlaceBlock(b);
  ADB_CHECK_OK(store->Flush());
  return store;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  std::vector<int32_t> sweep = bench::Smoke()
                                   ? std::vector<int32_t>{1, 4, 16, 64}
                                   : std::vector<int32_t>{1, 2, 4, 8, 16, 32,
                                                          64, 128, 256};
  for (int i = 1; i < argc; ++i) {
    const char* arg = nullptr;
    if (std::strcmp(argv[i], "--buffer-blocks") == 0 && i + 1 < argc &&
        std::isdigit(static_cast<unsigned char>(argv[i + 1][0]))) {
      // The digit check keeps `--buffer-blocks --smoke` from eating the
      // next flag (same guard as bench_util's --threads).
      arg = argv[i + 1];
    } else if (std::strncmp(argv[i], "--buffer-blocks=", 16) == 0) {
      arg = argv[i] + 16;
    }
    if (arg != nullptr) {
      sweep.clear();
      for (const char* p = arg; *p != '\0';) {
        if (std::isdigit(static_cast<unsigned char>(*p))) {
          sweep.push_back(static_cast<int32_t>(std::atoi(p)));
        } else {
          std::fprintf(stderr, "ignoring non-numeric --buffer-blocks entry\n");
        }
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
      break;
    }
  }
  if (sweep.empty()) {
    std::fprintf(stderr, "--buffer-blocks produced an empty sweep\n");
    return 1;
  }

  tpch::TpchConfig cfg;
  cfg.num_orders = bench::SmokeScale<int64_t>(30000, 2000);
  const tpch::TpchData data = tpch::GenerateTpch(cfg);

  ClusterSim cluster;
  PartitionTree li_tree, ord_tree;
  // 256 lineitem blocks / 64 orders blocks at full scale.
  auto li_store = BuildDiskTable(data.lineitem_schema, data.lineitem,
                                 tpch::kLOrderKey, 4, 8, 1, &cluster,
                                 &li_tree);
  auto ord_store = BuildDiskTable(data.orders_schema, data.orders,
                                  tpch::kOOrderKey, 3, 6, 2, &cluster,
                                  &ord_tree);

  auto overlap = ComputeOverlap(*li_store, li_tree.Leaves(), tpch::kLOrderKey,
                                *ord_store, ord_tree.Leaves(),
                                tpch::kOOrderKey);
  ADB_CHECK_OK(overlap.status());

  bench::PrintHeader(
      "Figure 14",
      "Varying the buffer-pool budget of the disk-backed store (1 block ~ "
      "64 MB in the paper)");
  std::printf("%-18s %14s %16s %12s %14s\n", "buffer (blocks)", "sim (s)",
              "orders reads", "hit rate", "wall (ms)");
  for (int32_t budget : sweep) {
    if (budget < 1) continue;
    // The grouping's build-side budget is the paper's per-worker B; the
    // pool gets B per worker because with --threads N the parallel
    // hyper-join keeps up to N groups' build sides pinned at once (the
    // paper's buffer is likewise per node).
    const int64_t pool_budget =
        static_cast<int64_t>(budget) * std::max(1, bench::Threads());
    li_store->set_buffer_capacity(pool_budget);
    ord_store->set_buffer_capacity(pool_budget);
    auto grouping = BottomUpGrouping(overlap.ValueOrDie(), budget);
    ADB_CHECK_OK(grouping.status());

    const io::BufferPoolStats li_before = li_store->pool_stats();
    const io::BufferPoolStats ord_before = ord_store->pool_stats();
    const auto t0 = std::chrono::steady_clock::now();
    auto run = HyperJoin(*li_store, tpch::kLOrderKey, {}, *ord_store,
                         tpch::kOOrderKey, {}, overlap.ValueOrDie(),
                         grouping.ValueOrDie(), cluster,
                         bench::ThreadedExecConfig());
    const auto t1 = std::chrono::steady_clock::now();
    ADB_CHECK_OK(run.status());

    const io::BufferPoolStats li_after = li_store->pool_stats();
    const io::BufferPoolStats ord_after = ord_store->pool_stats();
    const int64_t hits = (li_after.hits - li_before.hits) +
                         (ord_after.hits - ord_before.hits);
    const int64_t misses = (li_after.misses - li_before.misses) +
                           (ord_after.misses - ord_before.misses);
    const double hit_rate =
        hits + misses > 0
            ? static_cast<double>(hits) / static_cast<double>(hits + misses)
            : 1.0;
    const double wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    std::printf("%-18d %14.1f %16lld %11.1f%% %14.2f\n", budget,
                cluster.SimulatedSeconds(run.ValueOrDie().io),
                static_cast<long long>(run.ValueOrDie().s_blocks_read),
                100.0 * hit_rate, wall_ms);
    const std::string suffix = "_b" + std::to_string(budget);
    bench::ReportMetric("orders_reads" + suffix,
                        static_cast<double>(run.ValueOrDie().s_blocks_read),
                        "blocks");
    bench::ReportMetric("hit_rate" + suffix, 100.0 * hit_rate, "%");
    bench::ReportMetric("wall_ms" + suffix, wall_ms, "ms");
  }
  std::printf(
      "shape check: reads and misses flatten once the buffer covers the "
      "overlap run length (paper: flat beyond 4 GB)\n");
  return 0;
}
