// Microbenchmark: concurrent query serving on one Database.
//
// Phase 1 — client sweep: N client threads drain the CMT trace (mixed
// point/range/join traffic) against a shared Database with adaptation
// enabled, claiming queries by atomic index. Every per-query row count and
// checksum must equal a serial replay on an identically built Database:
// results are schedule- and layout-invariant even though the concurrent
// run adapts in a different order. Emulated per-block read latency puts
// the run in the I/O-bound regime (§4.2), so client-level speedup comes
// from overlapped I/O waits, not core count.
//
// Phase 2 — trickle ingest: one thread appends batches to trips while
// clients run full-count queries; counts must only ever grow by whole
// batches (per-table writer lock = batch atomicity) and the quiesced final
// count must be exact.
//
// Writes BENCH_micro_concurrent.json and exits non-zero on any mismatch.
//
// Usage: micro_concurrent [--smoke] [--threads N] [--clients N]
//   --threads N  execution-engine workers per query (shared TaskPool)
//   --clients N  extends the client sweep with N

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "workload/cmt.h"

using namespace adaptdb;

namespace {

struct Outcome {
  int64_t output_rows = 0;
  uint64_t checksum = 0;
  bool ok = false;
};

Status LoadCmt(Database* db, const cmt::CmtData& data) {
  TableOptions trips;
  trips.upfront_levels = 6;
  ADB_RETURN_NOT_OK(
      db->CreateTable("trips", data.trips_schema, data.trips, trips));
  TableOptions hist;
  hist.upfront_levels = 6;
  ADB_RETURN_NOT_OK(
      db->CreateTable("history", data.history_schema, data.history, hist));
  TableOptions latest;
  latest.upfront_levels = 5;
  ADB_RETURN_NOT_OK(
      db->CreateTable("latest", data.latest_schema, data.latest, latest));
  return Status::OK();
}

double WallMs(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Drains `trace` with `clients` threads; outcome i lands in slot i.
std::vector<Outcome> RunClients(Database* db, const std::vector<Query>& trace,
                                int32_t clients) {
  std::vector<Outcome> outcomes(trace.size());
  std::atomic<size_t> next{0};
  std::vector<std::thread> threads;
  for (int32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= trace.size()) return;
        auto run = db->RunQuery(trace[i]);
        if (run.ok()) {
          outcomes[i] = {run.ValueOrDie().output_rows,
                         run.ValueOrDie().checksum, true};
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  return outcomes;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  int32_t extra_clients = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      extra_clients = static_cast<int32_t>(std::atoi(argv[i + 1]));
    } else if (std::strncmp(argv[i], "--clients=", 10) == 0) {
      extra_clients = static_cast<int32_t>(std::atoi(argv[i] + 10));
    }
  }

  cmt::CmtConfig cfg;
  cfg.num_trips = bench::SmokeScale<int64_t>(24000, 2000);
  const cmt::CmtData data = cmt::GenerateCmt(cfg);
  std::vector<Query> trace = cmt::MakeTrace(data, 18);
  if (bench::Smoke()) trace.resize(std::min<size_t>(trace.size(), 24));

  DatabaseOptions options = bench::WithThreads(DatabaseOptions{});
  options.cluster.emulate_read_latency_micros =
      bench::SmokeScale<int64_t>(300, 150);

  bench::PrintHeader("micro_concurrent",
                     "client sweep over the CMT trace (" +
                         std::to_string(trace.size()) + " queries, " +
                         std::to_string(cfg.num_trips) + " trips)");

  // Golden results: a serial replay on its own Database.
  Database serial_db(options);
  ADB_CHECK_OK(LoadCmt(&serial_db, data));
  std::vector<Outcome> golden;
  const auto serial_t0 = std::chrono::steady_clock::now();
  for (const Query& q : trace) {
    auto run = serial_db.RunQuery(q);
    ADB_CHECK_OK(run.status());
    golden.push_back(
        {run.ValueOrDie().output_rows, run.ValueOrDie().checksum, true});
  }
  const double serial_ms = WallMs(serial_t0);
  bench::PrintRow("serialized submission", serial_ms, "ms");

  std::vector<int32_t> sweep =
      bench::Smoke() ? std::vector<int32_t>{1, 4} : std::vector<int32_t>{1, 2, 4, 8};
  if (extra_clients > 0 &&
      std::find(sweep.begin(), sweep.end(), extra_clients) == sweep.end()) {
    sweep.push_back(extra_clients);
  }

  bool all_match = true;
  std::vector<double> sweep_ms;
  std::vector<double> sweep_p99;
  for (int32_t clients : sweep) {
    Database db(options);
    ADB_CHECK_OK(LoadCmt(&db, data));
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<Outcome> outcomes = RunClients(&db, trace, clients);
    const double ms = WallMs(t0);
    size_t mismatches = 0;
    for (size_t i = 0; i < trace.size(); ++i) {
      if (!outcomes[i].ok || outcomes[i].output_rows != golden[i].output_rows ||
          outcomes[i].checksum != golden[i].checksum) {
        ++mismatches;
      }
    }
    if (mismatches > 0) {
      all_match = false;
      std::printf("  !! %zu/%zu queries differ from serial replay at %d "
                  "clients\n",
                  mismatches, trace.size(), clients);
    }
    const DatabaseStats stats = db.Stats();
    sweep_ms.push_back(ms);
    sweep_p99.push_back(stats.latency_p99_seconds);
    bench::PrintRow(std::to_string(clients) + " clients (speedup " +
                        std::to_string(serial_ms / ms).substr(0, 4) + "x)",
                    ms, "ms");
    if (clients == sweep.back()) std::printf("  %s\n", stats.ToString().c_str());
  }

  // Phase 2: trickle ingest under load. Counts must grow by whole batches
  // and land exactly once the ingester finishes.
  const int32_t kBatches = bench::SmokeScale<int32_t>(16, 6);
  const size_t kBatchRows = 64;
  bool ingest_ok = true;
  {
    Database db(options);
    ADB_CHECK_OK(LoadCmt(&db, data));
    Query count_all;
    count_all.name = "count_trips";
    count_all.tables = {
        {"trips", {Predicate(cmt::kTripId, CompareOp::kGe, 0)}}};

    std::atomic<bool> failed{false};
    std::thread ingester([&] {
      for (int32_t b = 0; b < kBatches; ++b) {
        std::vector<Record> batch(
            data.trips.begin(),
            data.trips.begin() + static_cast<ptrdiff_t>(kBatchRows));
        if (!db.AppendRows("trips", batch).ok()) failed = true;
      }
    });
    std::vector<std::thread> readers;
    for (int32_t r = 0; r < 3; ++r) {
      readers.emplace_back([&] {
        int64_t last = 0;
        for (int32_t i = 0; i < 12; ++i) {
          auto run = db.RunQuery(count_all);
          if (!run.ok()) {
            failed = true;
            return;
          }
          const int64_t rows = run.ValueOrDie().output_rows;
          const int64_t base = static_cast<int64_t>(data.trips.size());
          if (rows < last ||
              (rows - base) % static_cast<int64_t>(kBatchRows) != 0) {
            failed = true;
          }
          last = rows;
        }
      });
    }
    ingester.join();
    for (auto& t : readers) t.join();
    auto final_run = db.RunQuery(count_all);
    ADB_CHECK_OK(final_run.status());
    const int64_t expect =
        static_cast<int64_t>(data.trips.size()) +
        static_cast<int64_t>(kBatches) * static_cast<int64_t>(kBatchRows);
    ingest_ok = !failed.load() &&
                final_run.ValueOrDie().output_rows == expect;
    bench::PrintRow(std::string("trickle ingest (") +
                        (ingest_ok ? "exact" : "MISMATCH") + ")",
                    static_cast<double>(final_run.ValueOrDie().output_rows),
                    "rows");
  }

  // Machine-readable artifact for CI trend tracking, on the shared
  // BenchReport schema (per-client points are individual metrics; the
  // serial row and per-client rows were already recorded by PrintRow).
  for (size_t i = 0; i < sweep.size(); ++i) {
    const std::string suffix = "_" + std::to_string(sweep[i]) + "_clients";
    bench::ReportMetric("wall_ms" + suffix, sweep_ms[i], "ms");
    bench::ReportMetric("p99_seconds" + suffix, sweep_p99[i], "s");
  }
  bench::ReportMetric("serial_ms", serial_ms, "ms");
  bench::ReportMetric("speedup_at_max_clients", serial_ms / sweep_ms.back(),
                      "x");
  bench::BenchReport::Instance().Meta("queries",
                                      static_cast<int64_t>(trace.size()));
  bench::BenchReport::Instance().Meta("results_match_serial", all_match);
  bench::BenchReport::Instance().Meta("ingest_exact", ingest_ok);

  if (!all_match || !ingest_ok) {
    std::printf("FAILED: concurrent serving diverged from serial replay\n");
    return 1;
  }
  std::printf("OK: all client counts matched the serial replay\n");
  return 0;
}
