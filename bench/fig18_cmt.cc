// Figure 18: the CMT production trace (103 queries) on four systems:
// Full Scan, (full) Repartitioning, a hand-tuned "Best Guess" fixed
// partitioning, and AdaptDB.
//
// Paper findings: AdaptDB finishes the trace in 9h51m vs 20h47m for full
// scans; full repartitioning is 40 min faster overall but its query 5
// spikes to ~2945 s; AdaptDB converges to the hand-tuned layout's
// performance within the first ~10 queries (the lines overlap after that);
// queries ~30-50 spike on every system (they fetch a large data fraction).

#include "baselines/full_repartitioning.h"
#include "baselines/full_scan.h"
#include "bench_util.h"
#include "exec/repartition.h"
#include "tree/two_phase_partitioner.h"
#include "workload/cmt.h"

using namespace adaptdb;

namespace {

Status LoadCmt(Database* db, const cmt::CmtData& data) {
  TableOptions trips;
  trips.upfront_levels = 6;
  ADB_RETURN_NOT_OK(
      db->CreateTable("trips", data.trips_schema, data.trips, trips));
  TableOptions hist;
  hist.upfront_levels = 6;
  ADB_RETURN_NOT_OK(
      db->CreateTable("history", data.history_schema, data.history, hist));
  TableOptions latest;
  latest.upfront_levels = 5;
  ADB_RETURN_NOT_OK(
      db->CreateTable("latest", data.latest_schema, data.latest, latest));
  return Status::OK();
}

/// Hand-tunes one table: a two-phase tree on `join_attr` with the trace's
/// known selection attributes below, everything migrated into it upfront.
Status HandTune(Database* db, const std::string& name, AttrId join_attr,
                std::vector<AttrId> sel_attrs, int32_t levels) {
  Table* t = db->GetTable(name).ValueOrDie();
  TwoPhaseOptions opts;
  opts.join_attr = join_attr;
  opts.join_levels = levels / 2 + levels % 2;
  opts.total_levels = levels;
  opts.selection_attrs = std::move(sel_attrs);
  TwoPhasePartitioner partitioner(t->schema(), opts);
  auto tree = partitioner.Build(t->sample(), t->store());
  if (!tree.ok()) return tree.status();
  for (BlockId b : tree.ValueOrDie().Leaves()) {
    db->cluster()->PlaceBlock(b);
  }
  std::vector<BlockId> donors;
  for (AttrId attr : t->trees()->Attrs()) {
    for (BlockId b : t->trees()->LiveLeaves(attr, *t->store())) {
      auto blk = t->store()->Get(b);
      if (blk.ok() && !blk.ValueOrDie()->empty()) donors.push_back(b);
    }
  }
  auto moved = RepartitionBlocks(t->store(), donors, tree.ValueOrDie(),
                                 db->cluster());
  if (!moved.ok()) return moved.status();
  t->trees()->Add(join_attr, std::move(tree).ValueOrDie());
  t->trees()->PruneEmpty(t->store(), db->cluster(), join_attr);
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  cmt::CmtConfig cfg;
  cfg.num_trips = bench::SmokeScale<int64_t>(24000, 2000);
  const cmt::CmtData data = cmt::GenerateCmt(cfg);
  const std::vector<Query> trace = cmt::MakeTrace(data, 18);

  auto run_system = [&](Database* db) {
    auto result = RunWorkload(db, trace);
    ADB_CHECK_OK(result.status());
    return std::move(result).ValueOrDie();
  };

  Database full_scan_db(bench::WithThreads(FullScanOptions(DatabaseOptions{})));
  ADB_CHECK_OK(LoadCmt(&full_scan_db, data));
  const WorkloadResult full_scan = run_system(&full_scan_db);

  DatabaseOptions repart_opts = FullRepartitioningOptions(DatabaseOptions{});
  repart_opts.adapt.smooth.total_levels = 6;
  Database repart_db(bench::WithThreads(repart_opts));
  ADB_CHECK_OK(LoadCmt(&repart_db, data));
  const WorkloadResult repart = run_system(&repart_db);

  // Best-guess fixed partitioning: attributes picked by reading the trace.
  DatabaseOptions fixed_opts;
  fixed_opts.adapt_enabled = false;
  Database fixed_db(bench::WithThreads(fixed_opts));
  ADB_CHECK_OK(LoadCmt(&fixed_db, data));
  ADB_CHECK_OK(HandTune(&fixed_db, "trips", cmt::kTripId,
                        {cmt::kStartTime, cmt::kUserId}, 6));
  ADB_CHECK_OK(HandTune(&fixed_db, "history", cmt::kHTripId,
                        {cmt::kHProcessedTime}, 6));
  ADB_CHECK_OK(
      HandTune(&fixed_db, "latest", cmt::kRTripId, {cmt::kRScore}, 5));
  const WorkloadResult fixed = run_system(&fixed_db);

  DatabaseOptions adb_opts;
  adb_opts.adapt.smooth.total_levels = 6;
  Database adb(bench::WithThreads(adb_opts));
  ADB_CHECK_OK(LoadCmt(&adb, data));
  const WorkloadResult adaptdb = run_system(&adb);

  bench::PrintHeader("Figure 18", "CMT trace (103 queries)");
  std::printf("%-26s %12s %12s %12s %12s\n", "phase", "FullScan", "Repart",
              "BestGuess", "AdaptDB");
  const struct {
    const char* label;
    size_t lo, hi;
  } phases[] = {{"queries 0-9 (adapting)", 0, 10},
                {"queries 10-29", 10, 30},
                {"queries 30-49 (big batch)", 30, 50},
                {"queries 50-102", 50, 103}};
  for (const auto& p : phases) {
    std::printf("%-26s %12.1f %12.1f %12.1f %12.1f\n", p.label,
                full_scan.MeanSeconds(p.lo, p.hi), repart.MeanSeconds(p.lo, p.hi),
                fixed.MeanSeconds(p.lo, p.hi), adaptdb.MeanSeconds(p.lo, p.hi));
  }
  auto max_of = [](const WorkloadResult& r) {
    double m = 0;
    for (double s : r.seconds) m = m > s ? m : s;
    return m;
  };
  std::printf("%-26s %12.1f %12.1f %12.1f %12.1f\n", "max spike",
              max_of(full_scan), max_of(repart), max_of(fixed),
              max_of(adaptdb));
  std::printf("%-26s %12.1f %12.1f %12.1f %12.1f\n", "total",
              full_scan.total_seconds, repart.total_seconds,
              fixed.total_seconds, adaptdb.total_seconds);
  std::printf(
      "expectation: AdaptDB ~2x faster than full scan overall, converging "
      "to the hand-tuned layout after ~10 queries; Repartitioning's total "
      "is similar but its early spike dwarfs AdaptDB's (paper Fig. 18)\n");
  return 0;
}
