// google-benchmark micro-benchmarks for the hyper-join machinery:
// overlap-matrix construction and the grouping algorithms. The paper's
// §4.1.5/§7.5 claim is that the practical algorithms answer "in a
// millisecond or less for reasonably sized datasets" (128 blocks).

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "join/exact_grouping.h"
#include "join/grouping.h"

namespace adaptdb {
namespace {

OverlapMatrix BandMatrix(size_t n, size_t m) {
  OverlapMatrix out;
  for (size_t i = 0; i < n; ++i) out.r_blocks.push_back(static_cast<BlockId>(i));
  for (size_t j = 0; j < m; ++j) out.s_blocks.push_back(static_cast<BlockId>(j));
  out.vectors.assign(n, BitVector(m));
  for (size_t i = 0; i < n; ++i) {
    const double lo = static_cast<double>(i) / static_cast<double>(n);
    const double hi = static_cast<double>(i + 1) / static_cast<double>(n);
    for (size_t j = 0; j < m; ++j) {
      const double slo = static_cast<double>(j) / static_cast<double>(m);
      const double shi = static_cast<double>(j + 1) / static_cast<double>(m);
      if (hi >= slo && shi >= lo) out.vectors[i].Set(j);
    }
  }
  return out;
}

void BM_BottomUpGrouping(benchmark::State& state) {
  const OverlapMatrix m =
      BandMatrix(static_cast<size_t>(state.range(0)), 32);
  for (auto _ : state) {
    auto g = BottomUpGrouping(m, 16);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_BottomUpGrouping)->Arg(32)->Arg(128)->Arg(512);

void BM_GreedyGrouping(benchmark::State& state) {
  const OverlapMatrix m =
      BandMatrix(static_cast<size_t>(state.range(0)), 32);
  for (auto _ : state) {
    auto g = GreedyGrouping(m, 16);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_GreedyGrouping)->Arg(32)->Arg(128)->Arg(512);

void BM_ContiguousDpGrouping(benchmark::State& state) {
  const OverlapMatrix m =
      BandMatrix(static_cast<size_t>(state.range(0)), 32);
  for (auto _ : state) {
    auto g = ContiguousDpGrouping(m, 16);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_ContiguousDpGrouping)->Arg(32)->Arg(128)->Arg(512);

void BM_ExactGroupingBand128(benchmark::State& state) {
  const OverlapMatrix m = BandMatrix(128, 32);
  for (auto _ : state) {
    auto g = ExactGrouping(m, static_cast<int32_t>(state.range(0)));
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_ExactGroupingBand128)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_GroupingCost(benchmark::State& state) {
  const OverlapMatrix m = BandMatrix(128, 32);
  const Grouping g = BottomUpGrouping(m, 16).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(GroupingCost(m, g));
  }
}
BENCHMARK(BM_GroupingCost);

}  // namespace
}  // namespace adaptdb

// Custom main so --smoke (see bench/README.md) maps onto google-benchmark:
// a near-zero min time runs each benchmark for a single short burst, which
// is enough for CI to prove the binary launches and the kernels execute.
int main(int argc, char** argv) {
  std::vector<char*> args;
  // Bare seconds, not "0.001s": benchmark 1.7 rejects (and silently
  // ignores) the suffixed form, while 1.8 accepts both and only warns.
  char min_time[] = "--benchmark_min_time=0.001";
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  if (smoke) args.push_back(min_time);
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
