// Microbenchmark: out-of-core shuffle join (spilling) vs the in-memory
// executor on a disk-backed store whose buffer budget is a small fraction
// of the input.
//
// The in-memory shuffle join pins both inputs for the join's duration, so
// its peak block residency equals the dataset size regardless of the pool
// budget. The spilling executor writes map-side partitions to checksummed
// spill files and streams them back one partition at a time; its peak
// residency is bounded by the budget plus one transient pin per worker.
// This bench measures both on the same data — wall clock, spill volume and
// the pools' measured residency high-water marks — and checks the results
// agree exactly.
//
// Usage: micro_spill [--smoke] [--threads N]

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "exec/shuffle_join.h"
#include "exec/spill.h"
#include "io/disk_block_store.h"

using namespace adaptdb;

namespace {

/// A disk-backed store of `n_blocks` uniform blocks. Loaded under the
/// benchmark's real buffer budget (not an unbounded load buffer) so the
/// pool's residency high-water mark reflects execution, not ingest.
std::unique_ptr<DiskBlockStore> BuildStore(int32_t n_blocks,
                                           int32_t records_per_block,
                                           int64_t budget, uint64_t seed,
                                           ClusterSim* cluster,
                                           std::vector<BlockId>* blocks) {
  StorageConfig config;
  config.backend = StorageConfig::Backend::kDisk;
  config.buffer_blocks = budget;
  auto store = std::move(DiskBlockStore::Open(3, config)).ValueOrDie();
  Rng rng(seed);
  for (int32_t b = 0; b < n_blocks; ++b) {
    const BlockId id = store->CreateBlock();
    MutableBlockRef blk = store->GetMutable(id).ValueOrDie();
    for (int32_t i = 0; i < records_per_block; ++i) {
      blk->Add({Value(rng.UniformRange(0, 9999)),
                Value(rng.UniformRange(0, 999)),
                Value(rng.UniformRange(0, 999))});
    }
    blocks->push_back(id);
    cluster->PlaceBlock(id);
  }
  ADB_CHECK_OK(store->Flush());
  return store;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  const int32_t n_blocks = bench::SmokeScale<int32_t>(64, 16);
  const int32_t rows_per_block = bench::SmokeScale<int32_t>(1024, 128);
  const int64_t budget = 8;  // Blocks resident; dataset is 2*n_blocks.

  ClusterSim cluster;
  std::vector<BlockId> r_blocks, s_blocks;
  auto r_store =
      BuildStore(n_blocks, rows_per_block, budget, 11, &cluster, &r_blocks);
  auto s_store =
      BuildStore(n_blocks, rows_per_block, budget, 22, &cluster, &s_blocks);

  bench::PrintHeader(
      "micro_spill",
      "Shuffle join on " + std::to_string(2 * n_blocks) +
          " disk blocks with an " + std::to_string(budget) +
          "-block buffer: spilling executor vs in-memory (pins everything)");

  // Spilling run first: the pool's peak_resident is a high-water mark, so
  // the bounded run must be measured before the pinning run raises it.
  ExecConfig spilling = bench::ThreadedExecConfig();
  spilling.spill.enabled = true;
  spilling.spill.chunk_rows = 2048;
  const auto t0 = std::chrono::steady_clock::now();
  auto spill_run = exec::SpillingShuffleJoin(*r_store, r_blocks, 0, {},
                                             *s_store, s_blocks, 0, {},
                                             cluster, spilling);
  const auto t1 = std::chrono::steady_clock::now();
  ADB_CHECK_OK(spill_run.status());
  const int64_t peak_spill =
      std::max(r_store->pool_stats().peak_resident,
               s_store->pool_stats().peak_resident);

  const auto t2 = std::chrono::steady_clock::now();
  auto mem_run = ShuffleJoin(*r_store, r_blocks, 0, {}, *s_store, s_blocks, 0,
                             {}, cluster, bench::ThreadedExecConfig());
  const auto t3 = std::chrono::steady_clock::now();
  ADB_CHECK_OK(mem_run.status());
  const int64_t peak_mem = std::max(r_store->pool_stats().peak_resident,
                                    s_store->pool_stats().peak_resident);

  const JoinExecResult& spill_res = spill_run.ValueOrDie();
  const JoinExecResult& mem_res = mem_run.ValueOrDie();
  if (spill_res.counts.output_rows != mem_res.counts.output_rows ||
      spill_res.counts.checksum != mem_res.counts.checksum) {
    std::fprintf(stderr, "FAIL: spilling and in-memory results differ\n");
    return 1;
  }

  const double spill_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double mem_ms =
      std::chrono::duration<double, std::milli>(t3 - t2).count();
  bench::PrintRow("output rows", static_cast<double>(mem_res.counts.output_rows),
                  "rows");
  bench::PrintRow("in-memory wall", mem_ms, "ms");
  bench::PrintRow("spilling wall", spill_ms, "ms");
  bench::PrintRow("in-memory peak resident", static_cast<double>(peak_mem),
                  "blocks");
  bench::PrintRow("spilling peak resident", static_cast<double>(peak_spill),
                  "blocks");
  bench::PrintRow("spill written",
                  static_cast<double>(spill_res.io.spill_bytes_written) / 1e6,
                  "MB");
  bench::PrintRow("spill read",
                  static_cast<double>(spill_res.io.spill_bytes_read) / 1e6,
                  "MB");
  bench::PrintRow("spilled partitions",
                  static_cast<double>(spill_res.io.spilled_partitions),
                  "parts");
  // Scheduling-dependent (thread timing), so telemetry meta rather than a
  // gated metric: bench_diff would flag its run-to-run variance.
  std::printf("%-34s %12.1f ops\n", "async inflight peak",
              static_cast<double>(spill_res.io.async_reads_inflight_peak));
  bench::BenchReport::Instance().Meta(
      "async_inflight_peak", spill_res.io.async_reads_inflight_peak);
  bench::BenchReport::Instance().Meta("budget_blocks", budget);
  bench::BenchReport::Instance().Meta("dataset_blocks",
                                      static_cast<int64_t>(2 * n_blocks));
  std::printf(
      "shape check: spilling residency stays near the budget (%lld blocks) "
      "while the in-memory join pins all %d\n",
      static_cast<long long>(budget), 2 * n_blocks);
  return 0;
}
