// Figure 13: per-query execution time under changing workloads, for
// Full Scan, (full) Repartitioning, and AdaptDB.
//
// Paper setup (a) switching: 20 queries per template in order q3, q5, q6,
// q8, q10, q12, q14, q19 (160 queries). (b) shifting: cross-fade between
// consecutive templates over 20 queries each (140 queries). Repartitioning
// shows tall spikes when it rebuilds everything at once; AdaptDB spreads
// the cost out; both end ~2x+ faster than full scans with shuffle joins.
//
// Usage: fig13_adaptivity [--mode=switching|shifting] [--csv]

#include <algorithm>
#include <cstring>

#include "baselines/full_repartitioning.h"
#include "baselines/full_scan.h"
#include "bench_util.h"

using namespace adaptdb;

namespace {
void RunMode(const std::string& mode, bool csv);
}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  std::string mode;
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mode=shifting") == 0) mode = "shifting";
    if (std::strcmp(argv[i], "--mode=switching") == 0) mode = "switching";
    if (std::strcmp(argv[i], "--csv") == 0) csv = true;
  }
  if (mode.empty()) {
    RunMode("switching", csv);
    RunMode("shifting", csv);
  } else {
    RunMode(mode, csv);
  }
  return 0;
}

namespace {
void RunMode(const std::string& mode, bool csv) {

  tpch::TpchConfig cfg;
  cfg.num_orders = bench::SmokeScale<int64_t>(12000, 1500);
  const tpch::TpchData data = tpch::GenerateTpch(cfg);
  const int32_t per_template = bench::SmokeScale(20, 3);
  const std::vector<Query> stream =
      mode == "switching"
          ? SwitchingWorkload(tpch::TemplateNames(), per_template, 13)
          : ShiftingWorkload(tpch::TemplateNames(), per_template, 13);

  auto run_system = [&](DatabaseOptions opts) {
    Database db(bench::WithThreads(opts));
    ADB_CHECK_OK(LoadTpch(&db, data, 8, 6, 4));
    auto result = RunWorkload(&db, stream);
    ADB_CHECK_OK(result.status());
    return std::move(result).ValueOrDie();
  };

  DatabaseOptions adaptdb_opts;
  adaptdb_opts.adapt.smooth.total_levels = 8;
  WorkloadResult full_scan = run_system(FullScanOptions(DatabaseOptions{}));
  DatabaseOptions repart_opts = FullRepartitioningOptions(DatabaseOptions{});
  repart_opts.adapt.smooth.total_levels = 8;
  WorkloadResult repart = run_system(repart_opts);
  WorkloadResult adaptdb = run_system(adaptdb_opts);

  bench::PrintHeader("Figure 13" + std::string(mode == "switching" ? "a" : "b"),
                     mode + " workload (" + std::to_string(stream.size()) +
                         " queries)");
  if (csv) {
    std::printf("query,template,full_scan,repartitioning,adaptdb\n");
    for (size_t i = 0; i < stream.size(); ++i) {
      std::printf("%zu,%s,%.1f,%.1f,%.1f\n", i, stream[i].name.c_str(),
                  full_scan.seconds[i], repart.seconds[i],
                  adaptdb.seconds[i]);
    }
  } else {
    // Per-20-query-phase means, plus the largest single-query spike.
    std::printf("%-24s %12s %12s %12s\n", "phase", "FullScan", "Repart",
                "AdaptDB");
    for (size_t lo = 0; lo < stream.size(); lo += 20) {
      const size_t hi = std::min(lo + 20, stream.size());
      char label[64];
      std::snprintf(label, sizeof(label), "queries %3zu-%3zu (%s)", lo,
                    hi - 1, stream[lo].name.c_str());
      std::printf("%-24s %12.1f %12.1f %12.1f\n", label,
                  full_scan.MeanSeconds(lo, hi), repart.MeanSeconds(lo, hi),
                  adaptdb.MeanSeconds(lo, hi));
    }
    auto max_of = [](const WorkloadResult& r) {
      double m = 0;
      for (double s : r.seconds) m = std::max(m, s);
      return m;
    };
    std::printf("%-24s %12.1f %12.1f %12.1f\n", "max single-query spike",
                max_of(full_scan), max_of(repart), max_of(adaptdb));
    std::printf("%-24s %12.1f %12.1f %12.1f\n", "total",
                full_scan.total_seconds, repart.total_seconds,
                adaptdb.total_seconds);
    std::printf(
        "AdaptDB total speedup over full scan: %.2fx (paper: ~2x); "
        "spike ratio Repart/AdaptDB: %.1fx\n",
        full_scan.total_seconds / adaptdb.total_seconds,
        max_of(repart) / max_of(adaptdb));
  }
}
}  // namespace
