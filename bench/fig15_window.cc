// Figure 15: effect of the query-window length.
//
// Paper setup: a 70-query workload over q14 and q19 (both join lineitem
// with part, so only selection adaptation is in play): 10xq14, 20-query
// shift to q19, 10xq19, 20-query shift back, 10xq14. Window 5 converges
// first but spikes harder; window 35 spreads repartitioning out.

#include "bench_util.h"

using namespace adaptdb;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  tpch::TpchConfig cfg;
  cfg.num_orders = bench::SmokeScale<int64_t>(8000, 1000);
  const tpch::TpchData data = tpch::GenerateTpch(cfg);
  const std::vector<Query> stream = WindowSizeWorkload(15);

  bench::PrintHeader("Figure 15", "Execution time vs query window length");
  std::printf("%-26s %14s %14s\n", "phase", "window=5", "window=35");

  auto run_with_window = [&](int32_t w) {
    DatabaseOptions opts;
    opts.adapt.window_size = w;
    opts.adapt.smooth.total_levels = 6;
    Database db(bench::WithThreads(opts));
    ADB_CHECK_OK(LoadTpch(&db, data, 6, 5, 4));
    auto result = RunWorkload(&db, stream);
    ADB_CHECK_OK(result.status());
    return std::move(result).ValueOrDie();
  };
  const WorkloadResult w5 = run_with_window(5);
  const WorkloadResult w35 = run_with_window(35);

  const struct {
    const char* label;
    size_t lo, hi;
  } phases[] = {{"q14 warmup (0-9)", 0, 10},
                {"q14->q19 shift (10-29)", 10, 30},
                {"q19 steady (30-39)", 30, 40},
                {"q19->q14 shift (40-59)", 40, 60},
                {"q14 steady (60-69)", 60, 70}};
  for (const auto& p : phases) {
    std::printf("%-26s %14.1f %14.1f\n", p.label, w5.MeanSeconds(p.lo, p.hi),
                w35.MeanSeconds(p.lo, p.hi));
  }
  auto max_of = [](const WorkloadResult& r) {
    double m = 0;
    for (double s : r.seconds) m = m > s ? m : s;
    return m;
  };
  std::printf("%-26s %14.1f %14.1f\n", "max single-query spike", max_of(w5),
              max_of(w35));
  std::printf("%-26s %14.1f %14.1f\n", "total", w5.total_seconds,
              w35.total_seconds);
  std::printf(
      "expectation: window=5 converges faster in steady phases but spikes "
      "higher during shifts (paper Fig. 15)\n");
  return 0;
}
