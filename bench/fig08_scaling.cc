// Figure 8: shuffle-join running time vs dataset size.
//
// Paper setup: lineitem ⋈ orders at 175/320/453/580 GB; running time grows
// linearly with dataset size (~3000 to ~9200 s), which is what justifies
// the block-count cost model of §4.2.
//
// Here: the same join at four scales with the *block size held constant*
// (the HDFS regime: block count grows with data). Scales are powers of two
// so the balanced trees hit the records-per-block target exactly; the
// harness reports simulated runtime and the R^2 of a least-squares fit.
// A second section sweeps the parallel engine's thread count at the
// smallest scale with emulated per-block read latency, reporting real
// wall-clock per thread count (the paper's Fig. 8 scaling argument, here
// demonstrated intra-node).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

#include "bench_util.h"

using namespace adaptdb;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  bench::PrintHeader("Figure 8", "Shuffle join runtime vs dataset size");
  // orders count and the tree depths that keep ~500 lineitems and ~250
  // orders per block at each scale.
  const struct {
    int64_t orders;
    int32_t li_levels;
    int32_t ord_levels;
  } scales[] = {{4000, 5, 4}, {8000, 6, 5}, {16000, 7, 6}, {32000, 8, 7}};
  // Smoke mode keeps the two smallest scales (two points still define the
  // regression, so the output shape is unchanged).
  const size_t num_scales = bench::SmokeScale<size_t>(std::size(scales), 2);
  std::vector<double> xs, ys;
  for (size_t s = 0; s < num_scales; ++s) {
    const auto& scale = scales[s];
    tpch::TpchConfig cfg;
    cfg.num_orders = scale.orders;
    const tpch::TpchData data = tpch::GenerateTpch(cfg);
    DatabaseOptions opts;
    opts.adapt_enabled = false;
    opts.planner.strategy = PlannerConfig::Strategy::kForceShuffle;
    Database db(bench::WithThreads(opts));
    ADB_CHECK_OK(LoadTpch(&db, data, scale.li_levels, scale.ord_levels, 4));
    auto run = db.RunQuery(bench::LineitemOrdersJoin());
    ADB_CHECK_OK(run.status());
    char label[80];
    std::snprintf(label, sizeof(label), "%lld orders (~%lld lineitems)",
                  static_cast<long long>(scale.orders),
                  static_cast<long long>(data.lineitem.size()));
    bench::PrintRow(label, run.ValueOrDie().seconds, "sim-seconds");
    xs.push_back(static_cast<double>(data.lineitem.size()));
    ys.push_back(run.ValueOrDie().seconds);
  }
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  const double n = static_cast<double>(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double r = (n * sxy - sx * sy) /
                   std::sqrt((n * sxx - sx * sx) * (n * syy - sy * sy));
  std::printf("linearity R^2 = %.4f (paper: visually linear)\n", r * r);
  bench::ReportMetric("linearity_r2", r * r, "r2");

  // Thread-count sweep: same join, smallest scale, I/O-bound in real time
  // via emulated block-read latency so wall-clock reflects overlap.
  bench::PrintHeader("Figure 8b", "Shuffle join wall-clock vs threads");
  tpch::TpchConfig sweep_cfg;
  sweep_cfg.num_orders = scales[0].orders;
  const tpch::TpchData sweep_data = tpch::GenerateTpch(sweep_cfg);
  std::vector<int32_t> sweep = {1, 2, 4, 8};
  if (std::find(sweep.begin(), sweep.end(), bench::Threads()) ==
      sweep.end()) {
    sweep.push_back(bench::Threads());
  }
  for (int32_t threads : sweep) {
    DatabaseOptions opts;
    opts.adapt_enabled = false;
    opts.planner.strategy = PlannerConfig::Strategy::kForceShuffle;
    opts.planner.exec.num_threads = threads;
    opts.cluster.emulate_read_latency_micros =
        bench::SmokeScale<int64_t>(500, 250);
    Database db(opts);
    ADB_CHECK_OK(LoadTpch(&db, sweep_data, scales[0].li_levels,
                          scales[0].ord_levels, 4));
    const auto t0 = std::chrono::steady_clock::now();
    auto run = db.RunQuery(bench::LineitemOrdersJoin());
    ADB_CHECK_OK(run.status());
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    char label[48];
    std::snprintf(label, sizeof(label), "%d thread(s)", threads);
    bench::PrintRow(label, ms, "wall-ms");
    bench::ReportMetric("join_wall_ms_" + std::to_string(threads) + "t", ms,
                        "ms");
  }
  return 0;
}
