// Figure 8: shuffle-join running time vs dataset size.
//
// Paper setup: lineitem ⋈ orders at 175/320/453/580 GB; running time grows
// linearly with dataset size (~3000 to ~9200 s), which is what justifies
// the block-count cost model of §4.2.
//
// Here: the same join at four scales with the *block size held constant*
// (the HDFS regime: block count grows with data). Scales are powers of two
// so the balanced trees hit the records-per-block target exactly; the
// harness reports simulated runtime and the R^2 of a least-squares fit.

#include <cmath>

#include "bench_util.h"

using namespace adaptdb;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  bench::PrintHeader("Figure 8", "Shuffle join runtime vs dataset size");
  // orders count and the tree depths that keep ~500 lineitems and ~250
  // orders per block at each scale.
  const struct {
    int64_t orders;
    int32_t li_levels;
    int32_t ord_levels;
  } scales[] = {{4000, 5, 4}, {8000, 6, 5}, {16000, 7, 6}, {32000, 8, 7}};
  // Smoke mode keeps the two smallest scales (two points still define the
  // regression, so the output shape is unchanged).
  const size_t num_scales = bench::SmokeScale<size_t>(std::size(scales), 2);
  std::vector<double> xs, ys;
  for (size_t s = 0; s < num_scales; ++s) {
    const auto& scale = scales[s];
    tpch::TpchConfig cfg;
    cfg.num_orders = scale.orders;
    const tpch::TpchData data = tpch::GenerateTpch(cfg);
    DatabaseOptions opts;
    opts.adapt_enabled = false;
    opts.planner.strategy = PlannerConfig::Strategy::kForceShuffle;
    Database db(opts);
    ADB_CHECK_OK(LoadTpch(&db, data, scale.li_levels, scale.ord_levels, 4));
    auto run = db.RunQuery(bench::LineitemOrdersJoin());
    ADB_CHECK_OK(run.status());
    char label[80];
    std::snprintf(label, sizeof(label), "%lld orders (~%lld lineitems)",
                  static_cast<long long>(scale.orders),
                  static_cast<long long>(data.lineitem.size()));
    bench::PrintRow(label, run.ValueOrDie().seconds, "sim-seconds");
    xs.push_back(static_cast<double>(data.lineitem.size()));
    ys.push_back(run.ValueOrDie().seconds);
  }
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  const double n = static_cast<double>(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double r = (n * sxy - sx * sy) /
                   std::sqrt((n * sxx - sx * sx) * (n * syy - sy * sy));
  std::printf("linearity R^2 = %.4f (paper: visually linear)\n", r * r);
  return 0;
}
