/// \file micro_scan.cc
/// \brief Columnar scan microbenchmark: selectivity x projected-column
/// sweep over the v2 block format.
///
/// Measures two effects of the columnar layout:
///   1. Payload bytes touched: a column-pruned read (io::DecodeBlockColumns
///      over predicate + projected columns only) vs a full-row decode of
///      the same blocks. The harness *asserts* (exits non-zero otherwise)
///      that pruned scans read strictly fewer payload bytes than full-row
///      scans whenever at most 2 columns are projected.
///   2. In-memory kernel time: the column-at-a-time ScanBlocks counting
///      kernel across selectivities.
///
/// Usage: micro_scan [--smoke] [--threads N]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "exec/kernels.h"
#include "exec/scan.h"
#include "io/format.h"
#include "storage/block_store.h"
#include "storage/cluster.h"

namespace adaptdb {
namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

constexpr int32_t kNumAttrs = 6;

/// Schema: a0 uniform key (the predicate column), a1/a2 extra int64s, a3
/// double, a4 low-cardinality flag string, a5 a long payload string — so
/// pruning a5 is where the byte savings concentrate, exactly the shape of
/// a TPC-H lineitem scan that never touches l_comment.
Record MakeRecord(Rng* rng) {
  static const char* flags[] = {"A", "N", "R"};
  return {Value(rng->UniformRange(0, 999)),
          Value(rng->UniformRange(0, 1 << 20)),
          Value(rng->UniformRange(-500, 500)),
          Value(static_cast<double>(rng->UniformRange(0, 99999)) / 100.0),
          Value(std::string(flags[rng->Uniform(3)])),
          Value("payload-" + std::string(48, 'x') +
                std::to_string(rng->Uniform(1000)))};
}

struct Sweep {
  int64_t pruned_bytes = 0;
  int64_t full_bytes = 0;
  int64_t rows_matched = 0;
  double pruned_ms = 0;
  double full_ms = 0;
};

/// One (selectivity, projection) cell: decode-and-scan every encoded block
/// both ways, tracking payload bytes touched and matched rows.
Sweep RunCell(const std::vector<std::string>& encoded,
              const PredicateSet& preds, int32_t num_projected) {
  // Column set a pruned reader needs: the first `num_projected` attributes
  // (gathered for surviving rows) plus any predicate column not already in
  // that prefix. pred_cols[p] is predicate p's index into the decoded
  // column vector, whichever side of the prefix its attribute fell on.
  std::vector<AttrId> attrs;
  for (AttrId a = 0; a < num_projected; ++a) attrs.push_back(a);
  std::vector<size_t> pred_cols;
  for (const Predicate& p : preds) {
    if (p.attr < num_projected) {
      pred_cols.push_back(static_cast<size_t>(p.attr));
    } else {
      pred_cols.push_back(attrs.size());
      attrs.push_back(p.attr);
    }
  }

  Sweep out;
  auto pruned_start = Clock::now();
  for (const std::string& bytes : encoded) {
    auto subset = io::DecodeBlockColumns(bytes, kNumAttrs, attrs);
    if (!subset.ok()) {
      std::fprintf(stderr, "pruned decode failed: %s\n",
                   subset.status().ToString().c_str());
      std::exit(1);
    }
    const io::ColumnSubset& s = subset.ValueOrDie();
    out.pruned_bytes += static_cast<int64_t>(s.bytes_read);
    for (uint32_t row = 0; row < s.num_records; ++row) {
      bool match = true;
      for (size_t p = 0; p < preds.size(); ++p) {
        if (!s.columns[pred_cols[p]].MatchesAt(preds[p], row)) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      ++out.rows_matched;
      // Gather the projected attributes of the surviving row.
      Record projected;
      projected.reserve(static_cast<size_t>(num_projected));
      for (AttrId a = 0; a < num_projected; ++a) {
        s.columns[static_cast<size_t>(a)].AppendTo(&projected, row);
      }
    }
  }
  out.pruned_ms = MillisSince(pruned_start);

  auto full_start = Clock::now();
  int64_t full_matched = 0;
  for (const std::string& bytes : encoded) {
    auto block = io::DecodeBlock(bytes, kNumAttrs);
    if (!block.ok()) {
      std::fprintf(stderr, "full decode failed: %s\n",
                   block.status().ToString().c_str());
      std::exit(1);
    }
    // A full-row reader touches the whole payload.
    out.full_bytes += static_cast<int64_t>(bytes.size());
    const Block& b = block.ValueOrDie();
    const SelectionVector sel = b.FilterRows(preds);
    full_matched += static_cast<int64_t>(sel.size());
    for (const uint32_t row : sel) {
      Record projected;
      projected.reserve(static_cast<size_t>(num_projected));
      for (AttrId a = 0; a < num_projected; ++a) {
        b.column(a).AppendTo(&projected, row);
      }
    }
  }
  out.full_ms = MillisSince(full_start);
  if (full_matched != out.rows_matched) {
    std::fprintf(stderr, "pruned/full row-count mismatch: %lld vs %lld\n",
                 static_cast<long long>(out.rows_matched),
                 static_cast<long long>(full_matched));
    std::exit(1);
  }
  return out;
}

struct KernelsAB {
  double on_ms = 0;   // Per-sweep with vectorized kernels.
  double off_ms = 0;  // Per-sweep on the per-row MatchesAt fallback.
  int64_t rows = 0;   // Matching rows per sweep (identical both ways).
};

/// A/B of one predicate set over `blocks`: first a parity gate (the kernel
/// and fallback paths must produce identical selection vectors row for
/// row — any divergence exits non-zero), then a timed CountMatches sweep
/// per path. Each measurement repeats full sweeps until the window is at
/// least 20ms wide so the speedup ratio is meaningful in smoke mode too.
KernelsAB TimeKernelsAB(const std::vector<Block>& blocks,
                        const PredicateSet& preds) {
  KernelsAB out;
  const bool ambient = kernels::Enabled();
  for (const Block& b : blocks) {
    kernels::SetEnabled(true);
    const SelectionVector on = b.FilterRows(preds);
    kernels::SetEnabled(false);
    const SelectionVector off = b.FilterRows(preds);
    if (on != off) {
      std::fprintf(stderr,
                   "FAIL: kernel/fallback selection divergence on block "
                   "%lld (%zu vs %zu rows)\n",
                   static_cast<long long>(b.id()), on.size(), off.size());
      std::exit(1);
    }
    out.rows += static_cast<int64_t>(on.size());
  }
  for (const bool on : {true, false}) {
    kernels::SetEnabled(on);
    // Best of 3 windows, each at least 10ms wide: the minimum per-sweep
    // time is robust against transient load on shared CI runners.
    double best = 1e300;
    for (int pass = 0; pass < 3; ++pass) {
      int64_t reps = 0;
      int64_t counted = 0;
      const auto start = Clock::now();
      double ms = 0;
      do {
        for (const Block& b : blocks) {
          counted += static_cast<int64_t>(b.CountMatches(preds));
        }
        ++reps;
        ms = MillisSince(start);
      } while (ms < 10.0);
      if (counted != out.rows * reps) {
        std::fprintf(stderr, "FAIL: CountMatches diverged from FilterRows "
                             "(kernels=%d)\n", on ? 1 : 0);
        std::exit(1);
      }
      best = std::min(best, ms / static_cast<double>(reps));
    }
    (on ? out.on_ms : out.off_ms) = best;
  }
  kernels::SetEnabled(ambient);
  return out;
}

/// Builds, encodes and re-decodes single-attribute string blocks whose
/// values cycle through `cardinality` distinct strings — decoded columns
/// are dictionary-resident whenever the cardinality fits a byte of code
/// space (<= 256).
std::vector<Block> MakeDictBlocks(int32_t n_blocks, int32_t rows_per_block,
                                  int32_t cardinality) {
  std::vector<Block> out;
  Rng rng(7);
  for (int32_t bi = 0; bi < n_blocks; ++bi) {
    Block b(bi, 1);
    for (int32_t i = 0; i < rows_per_block; ++i) {
      b.Add({Value("entry-" +
                   std::to_string(rng.Uniform(
                       static_cast<uint64_t>(cardinality))))});
    }
    auto decoded = io::DecodeBlock(io::EncodeBlock(b), 1);
    if (!decoded.ok()) {
      std::fprintf(stderr, "dict decode failed: %s\n",
                   decoded.status().ToString().c_str());
      std::exit(1);
    }
    out.push_back(std::move(decoded).ValueOrDie());
  }
  return out;
}

}  // namespace
}  // namespace adaptdb

int main(int argc, char** argv) {
  using namespace adaptdb;
  bench::ParseBenchArgs(argc, argv);

  const int32_t n_blocks = bench::SmokeScale(256, 16);
  const int32_t records_per_block = bench::SmokeScale(512, 128);

  // Build and encode the dataset once (the "segment files").
  Rng rng(42);
  MemBlockStore store(kNumAttrs);
  std::vector<BlockId> blocks;
  std::vector<std::string> encoded;
  ClusterSim cluster;
  for (int32_t b = 0; b < n_blocks; ++b) {
    const BlockId id = store.CreateBlock();
    auto blk = store.GetMutable(id).ValueOrDie();
    for (int32_t i = 0; i < records_per_block; ++i) blk->Add(MakeRecord(&rng));
    encoded.push_back(io::EncodeBlock(*blk));
    blocks.push_back(id);
    cluster.PlaceBlock(id);
  }

  bench::PrintHeader("micro_scan",
                     "columnar scans: selectivity x projected columns");
  std::printf("%d blocks x %d records, %d attrs; payload bytes are per full "
              "sweep over all blocks\n\n",
              n_blocks, records_per_block, kNumAttrs);
  std::printf("%-12s %-10s %14s %14s %8s %10s %10s\n", "selectivity",
              "projected", "pruned_bytes", "full_bytes", "ratio",
              "pruned_ms", "full_ms");

  const std::vector<std::pair<const char*, int64_t>> selectivities = {
      {"1%", 10}, {"10%", 100}, {"50%", 500}, {"100%", 1000}};
  const std::vector<int32_t> projections = {1, 2, 4, kNumAttrs};
  bool ok = true;
  for (const auto& [sel_name, cut] : selectivities) {
    const PredicateSet preds = {Predicate(0, CompareOp::kLt, Value(cut))};
    for (const int32_t proj : projections) {
      const auto cell = RunCell(encoded, preds, proj);
      const double ratio = 100.0 * static_cast<double>(cell.pruned_bytes) /
                           static_cast<double>(cell.full_bytes);
      std::printf("%-12s %-10d %14lld %14lld %7.2f%% %10.1f %10.1f\n",
                  sel_name, proj, static_cast<long long>(cell.pruned_bytes),
                  static_cast<long long>(cell.full_bytes), ratio,
                  cell.pruned_ms, cell.full_ms);
      bench::ReportMetric("bytes_ratio_sel" + std::to_string(cut) + "_proj" +
                              std::to_string(proj),
                          ratio, "%");
      // Acceptance gate: at <= 2 projected columns a pruned scan must read
      // strictly fewer payload bytes than the full-row scan.
      if (proj <= 2 && cell.pruned_bytes >= cell.full_bytes) {
        std::fprintf(stderr,
                     "FAIL: pruned scan read %lld bytes >= full scan %lld "
                     "at %d projected columns\n",
                     static_cast<long long>(cell.pruned_bytes),
                     static_cast<long long>(cell.full_bytes), proj);
        ok = false;
      }
    }
  }

  // In-memory counting kernel across selectivities (column-at-a-time
  // predicate evaluation; no materialization at all).
  std::printf("\n%-12s %10s %12s\n", "selectivity", "rows", "scan_ms");
  for (const auto& [sel_name, cut] : selectivities) {
    const PredicateSet preds = {Predicate(0, CompareOp::kLt, Value(cut))};
    auto start = std::chrono::steady_clock::now();
    auto scan = ScanBlocks(store, blocks, preds, cluster,
                           bench::ThreadedExecConfig(),
                           /*skip_by_ranges=*/false);
    if (!scan.ok()) {
      std::fprintf(stderr, "scan failed: %s\n",
                   scan.status().ToString().c_str());
      return 1;
    }
    const double scan_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    std::printf("%-12s %10lld %12.1f\n", sel_name,
                static_cast<long long>(scan.ValueOrDie().rows_matched),
                scan_ms);
    bench::ReportMetric("scan_ms_sel" + std::to_string(cut), scan_ms, "ms");
  }

  // Vectorized kernels vs the per-row fallback, over decoded blocks (so
  // string columns are dictionary-resident, as they are after any disk
  // read). Every cell is parity-gated: the two paths must select exactly
  // the same rows or the bench exits non-zero.
  std::vector<Block> decoded;
  for (const std::string& bytes : encoded) {
    auto block = io::DecodeBlock(bytes, kNumAttrs);
    if (!block.ok()) {
      std::fprintf(stderr, "decode failed: %s\n",
                   block.status().ToString().c_str());
      return 1;
    }
    decoded.push_back(std::move(block).ValueOrDie());
  }

  std::printf("\n%-26s %10s %12s %12s %9s\n", "kernel cell", "rows",
              "kernel_ms", "perrow_ms", "speedup");
  const auto report_cell = [&](const char* label, const std::string& key,
                               const KernelsAB& ab) {
    const double speedup = ab.off_ms / ab.on_ms;
    std::printf("%-26s %10lld %12.3f %12.3f %8.2fx\n", label,
                static_cast<long long>(ab.rows), ab.on_ms, ab.off_ms,
                speedup);
    bench::ReportMetric(key, speedup, "x");
    return speedup;
  };

  // Int64 selectivity sweep — the headline kernel_speedup_sel<s> metrics.
  double worst_selective_int64 = 1e300;
  for (const auto& [sel_name, cut] : selectivities) {
    const PredicateSet preds = {Predicate(0, CompareOp::kLt, Value(cut))};
    const auto ab = TimeKernelsAB(decoded, preds);
    const std::string label = std::string("int64 ") + sel_name;
    const double speedup = report_cell(
        label.c_str(), "kernel_speedup_sel" + std::to_string(cut), ab);
    if (cut <= 100) {
      worst_selective_int64 = std::min(worst_selective_int64, speedup);
    }
  }

  // Double column, 10% selectivity.
  report_cell("double 10%", "kernel_speedup_double",
              TimeKernelsAB(decoded, {Predicate(3, CompareOp::kLt,
                                                Value(100.0))}));

  // Dictionary-resident string equality on the 3-value flag column
  // (decoded a4), then an equality + range sweep across dictionary
  // cardinalities on dedicated single-attribute datasets.
  report_cell("dict eq card3",
              "kernel_speedup_dict_eq_card3",
              TimeKernelsAB(decoded, {Predicate(4, CompareOp::kEq,
                                                Value("A"))}));
  for (const int32_t card : {8, 64, 256}) {
    const std::vector<Block> dict_blocks =
        MakeDictBlocks(bench::SmokeScale(64, 8), records_per_block, card);
    const std::string label = "dict eq card" + std::to_string(card);
    report_cell(label.c_str(),
                "kernel_speedup_dict_eq_card" + std::to_string(card),
                TimeKernelsAB(dict_blocks, {Predicate(0, CompareOp::kEq,
                                                      Value("entry-0"))}));
    if (card == 256) {
      report_cell("dict range card256",
                  "kernel_speedup_dict_range_card256",
                  TimeKernelsAB(dict_blocks,
                                {Predicate(0, CompareOp::kLe,
                                           Value("entry-3"))}));
    }
  }

  // Acceptance gate (full mode only — smoke datasets are too small for a
  // stable ratio): selective int64 scans must be at least 1.5x faster
  // through the kernels than row at a time.
  if (!bench::Smoke() && worst_selective_int64 < 1.5) {
    std::fprintf(stderr,
                 "FAIL: selective int64 kernel speedup %.2fx < 1.5x\n",
                 worst_selective_int64);
    ok = false;
  }

  if (!ok) return 1;
  std::printf("\ncolumn-pruned scans read strictly fewer payload bytes than "
              "full-row scans at <= 2 projected columns: OK\n");
  return 0;
}
