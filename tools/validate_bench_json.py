#!/usr/bin/env python3
"""Validates observability artifacts the engine emits.

Default mode checks BENCH_*.json telemetry files against the BenchReport
schema (emitted by bench/bench_util.h):
  {
    "name": "<bench binary name>",        # required, non-empty string
    "threads": N,                         # required, int >= 1
    "backend": "mem"|"disk"|...,          # required, non-empty string
    "smoke": true|false,                  # required, bool
    "metrics": {"key": {"value": x, "unit": "..."}, ...},  # >= 1 entry,
                                          # every value a finite number
    "meta": {...}                         # optional free-form object
  }

--trace checks Chrome trace_event JSON (obs::Tracer::ToChromeJson and the
TRACE_*.json files benches write under --trace): a "traceEvents" array of
"X"/"i" phase events with name/cat/ts/pid/tid, "dur" on complete spans.

--prom checks Prometheus text exposition 0.0.4 (what GET /metrics serves):
legal metric/label names, parseable sample values, HELP/TYPE comments
naming the sample family they precede.

Usage: validate_bench_json.py [--trace|--prom] FILE [FILE...]
Exits non-zero and prints one line per problem if any file fails.
"""

import json
import math
import re
import sys


def validate(path):
    problems = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or invalid JSON: {e}"]

    if not isinstance(doc, dict):
        return [f"{path}: top-level value must be an object"]

    name = doc.get("name")
    if not isinstance(name, str) or not name:
        problems.append(f"{path}: 'name' must be a non-empty string")
    elif f"BENCH_{name}.json" not in path:
        problems.append(
            f"{path}: 'name' ({name!r}) does not match the file name")

    threads = doc.get("threads")
    if not isinstance(threads, int) or isinstance(threads, bool) or threads < 1:
        problems.append(f"{path}: 'threads' must be an integer >= 1")

    backend = doc.get("backend")
    if not isinstance(backend, str) or not backend:
        problems.append(f"{path}: 'backend' must be a non-empty string")

    if not isinstance(doc.get("smoke"), bool):
        problems.append(f"{path}: 'smoke' must be a boolean")

    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        problems.append(f"{path}: 'metrics' must be a non-empty object")
    else:
        for key, entry in metrics.items():
            if not isinstance(entry, dict):
                problems.append(f"{path}: metric {key!r} must be an object")
                continue
            value = entry.get("value")
            if (not isinstance(value, (int, float)) or isinstance(value, bool)
                    or not math.isfinite(value)):
                problems.append(
                    f"{path}: metric {key!r} needs a finite numeric 'value'")
            if not isinstance(entry.get("unit", ""), str):
                problems.append(f"{path}: metric {key!r} 'unit' must be a "
                                "string")

    if "meta" in doc and not isinstance(doc["meta"], dict):
        problems.append(f"{path}: 'meta' must be an object when present")

    return problems


def validate_trace(path):
    """Chrome trace_event JSON: what chrome://tracing / Perfetto load."""
    problems = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or invalid JSON: {e}"]

    if not isinstance(doc, dict):
        return [f"{path}: top-level value must be an object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: 'traceEvents' must be an array"]
    for i, e in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(e, dict):
            problems.append(f"{where}: must be an object")
            continue
        ph = e.get("ph")
        if ph not in ("X", "i", "B", "E", "M"):
            problems.append(f"{where}: unsupported phase {ph!r}")
        if not isinstance(e.get("name"), str) or not e.get("name"):
            problems.append(f"{where}: 'name' must be a non-empty string")
        if not isinstance(e.get("cat", ""), str):
            problems.append(f"{where}: 'cat' must be a string")
        for key in ("ts", "pid", "tid"):
            v = e.get(key)
            if not isinstance(v, (int, float)) or isinstance(v, bool) \
                    or not math.isfinite(v):
                problems.append(f"{where}: {key!r} must be a finite number")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) \
                    or not math.isfinite(dur) or dur < 0:
                problems.append(
                    f"{where}: complete event needs a non-negative 'dur'")
    return problems


_PROM_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_PROM_LABEL = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# metric_name{labels} value  — labels optional; value then end of line.
_PROM_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$")
_PROM_LABEL_PAIR = re.compile(
    r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$')


def validate_prom(path):
    """Prometheus text exposition 0.0.4: what GET /metrics serves."""
    problems = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        return [f"{path}: unreadable: {e}"]

    samples = 0
    pending_family = None  # Family named by the last HELP/TYPE comment.
    for n, line in enumerate(lines, start=1):
        where = f"{path}:{n}"
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3 or not _PROM_NAME.match(parts[2]):
                    problems.append(f"{where}: malformed {parts[1]} comment")
                else:
                    pending_family = parts[2]
                if parts[1] == "TYPE" and (
                        len(parts) < 4 or parts[3] not in (
                            "counter", "gauge", "histogram", "summary",
                            "untyped")):
                    problems.append(f"{where}: unknown metric type")
            continue
        m = _PROM_SAMPLE.match(line)
        if not m:
            problems.append(f"{where}: unparseable sample line: {line!r}")
            continue
        samples += 1
        if pending_family is not None and m.group("name") != pending_family:
            problems.append(
                f"{where}: sample {m.group('name')!r} does not match the "
                f"preceding HELP/TYPE family {pending_family!r}")
        pending_family = None
        value = m.group("value")
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                problems.append(f"{where}: unparseable value {value!r}")
        labels = m.group("labels")
        if labels:
            for pair in re.split(r",(?=[a-zA-Z_])", labels):
                lm = _PROM_LABEL_PAIR.match(pair)
                if not lm:
                    problems.append(f"{where}: malformed label pair {pair!r}")
                elif not _PROM_LABEL.match(lm.group("key")):
                    problems.append(
                        f"{where}: illegal label name {lm.group('key')!r}")
    if samples == 0:
        problems.append(f"{path}: no samples found")
    return problems


def main(argv):
    mode = validate
    kind = "telemetry"
    if len(argv) > 1 and argv[1] in ("--trace", "--prom"):
        mode = validate_trace if argv[1] == "--trace" else validate_prom
        kind = "trace" if argv[1] == "--trace" else "prometheus"
        argv = argv[:1] + argv[2:]
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    all_problems = []
    for path in argv[1:]:
        all_problems.extend(mode(path))
    for problem in all_problems:
        print(problem, file=sys.stderr)
    if not all_problems:
        print(f"OK: {len(argv) - 1} {kind} file(s) schema-valid")
    return 1 if all_problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
