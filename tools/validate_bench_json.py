#!/usr/bin/env python3
"""Validates BENCH_*.json telemetry files against the BenchReport schema.

Schema (emitted by bench/bench_util.h):
  {
    "name": "<bench binary name>",        # required, non-empty string
    "threads": N,                         # required, int >= 1
    "backend": "mem"|"disk"|...,          # required, non-empty string
    "smoke": true|false,                  # required, bool
    "metrics": {"key": {"value": x, "unit": "..."}, ...},  # >= 1 entry,
                                          # every value a finite number
    "meta": {...}                         # optional free-form object
  }

Usage: validate_bench_json.py FILE [FILE...]
Exits non-zero and prints one line per problem if any file fails.
"""

import json
import math
import sys


def validate(path):
    problems = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or invalid JSON: {e}"]

    if not isinstance(doc, dict):
        return [f"{path}: top-level value must be an object"]

    name = doc.get("name")
    if not isinstance(name, str) or not name:
        problems.append(f"{path}: 'name' must be a non-empty string")
    elif f"BENCH_{name}.json" not in path:
        problems.append(
            f"{path}: 'name' ({name!r}) does not match the file name")

    threads = doc.get("threads")
    if not isinstance(threads, int) or isinstance(threads, bool) or threads < 1:
        problems.append(f"{path}: 'threads' must be an integer >= 1")

    backend = doc.get("backend")
    if not isinstance(backend, str) or not backend:
        problems.append(f"{path}: 'backend' must be a non-empty string")

    if not isinstance(doc.get("smoke"), bool):
        problems.append(f"{path}: 'smoke' must be a boolean")

    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        problems.append(f"{path}: 'metrics' must be a non-empty object")
    else:
        for key, entry in metrics.items():
            if not isinstance(entry, dict):
                problems.append(f"{path}: metric {key!r} must be an object")
                continue
            value = entry.get("value")
            if (not isinstance(value, (int, float)) or isinstance(value, bool)
                    or not math.isfinite(value)):
                problems.append(
                    f"{path}: metric {key!r} needs a finite numeric 'value'")
            if not isinstance(entry.get("unit", ""), str):
                problems.append(f"{path}: metric {key!r} 'unit' must be a "
                                "string")

    if "meta" in doc and not isinstance(doc["meta"], dict):
        problems.append(f"{path}: 'meta' must be an object when present")

    return problems


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    all_problems = []
    for path in argv[1:]:
        all_problems.extend(validate(path))
    for problem in all_problems:
        print(problem, file=sys.stderr)
    if not all_problems:
        print(f"OK: {len(argv) - 1} telemetry file(s) schema-valid")
    return 1 if all_problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
