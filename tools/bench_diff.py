#!/usr/bin/env python3
"""Compares BENCH_*.json telemetry against committed baseline snapshots.

Baselines live in bench/baselines/ (one BENCH_<name>.json per bench binary,
recorded in --smoke mode; see bench/README.md for the refresh procedure).
This tool pairs each current file with its baseline by bench name and flags
metrics that moved beyond tolerance in the *bad* direction:

  - Timing metrics (unit "ms" or "s") regress when they grow. Smoke-mode
    numbers on shared CI hardware are noisy, so the default timing
    tolerance is generous (a metric must grow by more than
    --timing-tolerance, default 3.0 = 4x, to fail).
  - Higher-is-better metrics (keys ending in "_speedup" or "_hit_rate",
    or starting with "kernel_speedup") regress when they shrink by more
    than --tolerance.
  - Everything else (counts, ratios, sizes — deterministic in smoke mode)
    regresses when it moves in either direction by more than --tolerance
    (default 0.25).

Relative change uses max(|baseline|, epsilon) as the denominator so zero
baselines do not divide by zero. Metrics present only on one side are
reported as informational, never failures (benches gain and lose rows).

Usage:
  bench_diff.py [--baselines DIR] [--tolerance R] [--timing-tolerance R]
                [--strict] FILE [FILE...]

Exit status: 0 when no metric regressed, 1 otherwise; 2 on usage errors.
With --strict, missing baselines for a given file are also failures.
"""

import argparse
import json
import math
import os
import sys

TIMING_UNITS = {"ms", "s"}
HIGHER_BETTER_SUFFIXES = ("_speedup", "_hit_rate")
HIGHER_BETTER_PREFIXES = ("kernel_speedup",)
# Harness wall time measures the whole binary (including load), is the
# noisiest number in the file, and is already covered by per-phase timings.
SKIP_KEYS = {"bench_wall_seconds"}
EPSILON = 1e-9


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def metric_values(doc):
    out = {}
    for key, entry in doc.get("metrics", {}).items():
        if not isinstance(entry, dict):
            continue
        value = entry.get("value")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        if not math.isfinite(value):
            continue
        out[key] = (float(value), str(entry.get("unit", "")))
    return out


def classify(key, unit):
    """'timing' (lower is better, noisy), 'higher' or 'exact'."""
    if key.endswith(HIGHER_BETTER_SUFFIXES) or \
            key.startswith(HIGHER_BETTER_PREFIXES):
        return "higher"
    if unit in TIMING_UNITS:
        return "timing"
    return "exact"


def compare(current_path, baseline_path, args):
    """Returns (regressions, notes) for one current/baseline pair."""
    current = load(current_path)
    baseline = load(baseline_path)
    regressions = []
    notes = []

    if current.get("smoke") != baseline.get("smoke") or \
            current.get("threads") != baseline.get("threads") or \
            current.get("backend") != baseline.get("backend"):
        notes.append(
            f"{current_path}: run shape differs from baseline "
            f"(smoke/threads/backend); comparison may not be meaningful")

    cur = metric_values(current)
    base = metric_values(baseline)
    for key in sorted(base):
        if key in SKIP_KEYS:
            continue
        if key not in cur:
            notes.append(f"{current_path}: metric {key!r} dropped "
                         f"(present only in baseline)")
            continue
        cur_v, cur_unit = cur[key]
        base_v, _ = base[key]
        kind = classify(key, cur_unit)
        denom = max(abs(base_v), EPSILON)
        delta = (cur_v - base_v) / denom
        if kind == "timing":
            if delta > args.timing_tolerance:
                regressions.append(
                    f"{current_path}: {key} = {cur_v:g}{cur_unit} vs "
                    f"baseline {base_v:g} (+{delta * 100:.0f}%, timing "
                    f"tolerance {args.timing_tolerance * 100:.0f}%)")
        elif kind == "higher":
            if -delta > args.tolerance:
                regressions.append(
                    f"{current_path}: {key} = {cur_v:g} vs baseline "
                    f"{base_v:g} ({delta * 100:.0f}%, tolerance "
                    f"{args.tolerance * 100:.0f}%)")
        else:
            if abs(delta) > args.tolerance:
                regressions.append(
                    f"{current_path}: {key} = {cur_v:g} vs baseline "
                    f"{base_v:g} ({delta * 100:+.0f}%, tolerance "
                    f"{args.tolerance * 100:.0f}%)")
    for key in sorted(set(cur) - set(base)):
        notes.append(f"{current_path}: new metric {key!r} (no baseline)")
    return regressions, notes


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("files", nargs="+", help="current BENCH_*.json files")
    parser.add_argument("--baselines", default="bench/baselines",
                        help="directory of baseline BENCH_*.json snapshots")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="relative tolerance for deterministic metrics")
    parser.add_argument("--timing-tolerance", type=float, default=3.0,
                        help="relative growth tolerance for timing metrics")
    parser.add_argument("--strict", action="store_true",
                        help="treat a missing baseline as a failure")
    args = parser.parse_args(argv[1:])

    failures = []
    compared = 0
    for path in args.files:
        baseline_path = os.path.join(args.baselines, os.path.basename(path))
        if not os.path.exists(baseline_path):
            msg = f"{path}: no baseline at {baseline_path}"
            if args.strict:
                failures.append(msg)
            else:
                print(f"note: {msg}")
            continue
        try:
            regressions, notes = compare(path, baseline_path, args)
        except (OSError, json.JSONDecodeError) as e:
            failures.append(f"{path}: unreadable: {e}")
            continue
        compared += 1
        for note in notes:
            print(f"note: {note}")
        failures.extend(regressions)

    for failure in failures:
        print(f"REGRESSION: {failure}" if "no baseline" not in failure
              and "unreadable" not in failure else f"ERROR: {failure}",
              file=sys.stderr)
    if not failures:
        print(f"OK: {compared} bench file(s) within tolerance")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
