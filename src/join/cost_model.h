/// \file cost_model.h
/// \brief The shuffle-join vs hyper-join cost model (paper §4.2, eqs. 1–2).
///
/// Cost-SJ(q)  = C_SJ * (|lookup(T_R, q)| + |lookup(T_S, q)|)
/// Cost-HyJ(q) = |lookup(T_R, q)| + C_HyJ * |lookup(T_S, q)|
///
/// where C_SJ (empirically 3) folds in the read + spill + re-read legs of a
/// shuffle, and C_HyJ is the average number of times an S block is read by
/// the hyper-join schedule. The planner (§5.4) estimates C_HyJ by running
/// the bottom-up grouping and counting scheduled reads.
///
/// Cost-model delta under columnar block payloads (the canonical note —
/// every byte-sized consumer refers here). Block::SizeBytes() is now exact:
/// the sum of the per-column footprints (8 bytes per numeric value,
/// length + 4 per string) instead of the old records() * record_width
/// approximation, and Schema::RecordWidth survives only as an a-priori
/// estimate for sizing decisions made before data exists. Neither equation
/// above changes: both cost joins in *block-read units*, and a block
/// remains one I/O whether its payload is row-major or columnar — so
/// ChooseJoin, BottomUpGrouping budgets (memory_budget_blocks) and the
/// fig14 buffer sweep are all denominated exactly as before. What does
/// change is the physical bytes behind each unit: per-column encodings
/// (frame-of-reference int64, dictionary strings) shrink segments, and
/// column-pruned reads (io::DecodeBlockColumns) touch only the projected
/// columns' bytes — bench/micro_scan quantifies that payload-byte delta.

#ifndef ADAPTDB_JOIN_COST_MODEL_H_
#define ADAPTDB_JOIN_COST_MODEL_H_

#include <cstdint>

#include "join/grouping.h"
#include "join/overlap.h"

namespace adaptdb {

/// \brief Cost model constants.
struct CostModelConfig {
  /// Blocks-worth of I/O charged per input block of a shuffle join
  /// (read + partitioned spill write + re-read; the paper sets 3).
  double c_sj = 3.0;
};

/// Cost-SJ of eq. 1 in block units.
double ShuffleJoinCost(int64_t r_blocks, int64_t s_blocks,
                       const CostModelConfig& config = {});

/// Cost-HyJ of eq. 2 in block units, given the scheduled S reads
/// (= GroupingCost of the chosen grouping).
double HyperJoinCost(int64_t r_blocks, int64_t scheduled_s_reads);

/// The achieved C_HyJ: scheduled S reads divided by distinct S blocks that
/// must be read at least once. 1.0 means perfectly co-partitioned. Returns
/// 0 when no S block overlaps anything.
double EstimateCHyJ(const OverlapMatrix& overlap, const Grouping& grouping);

/// \brief The planner's decision with its inputs, for explainability.
struct JoinChoice {
  bool use_hyper_join = false;
  double cost_shuffle = 0;
  double cost_hyper = 0;
  double c_hyj = 0;
};

/// Applies §5.4: run the (bottom-up) grouping, estimate C_HyJ, evaluate both
/// equations, pick the cheaper strategy.
JoinChoice ChooseJoin(const OverlapMatrix& overlap, int32_t budget,
                      const CostModelConfig& config = {});

}  // namespace adaptdb

#endif  // ADAPTDB_JOIN_COST_MODEL_H_
