/// \file grouping.h
/// \brief Heuristic hyper-join block grouping (paper §4.1.3 and §4.1.5).
///
/// Given the overlap matrix and a memory budget of B blocks per hash table,
/// these algorithms partition R's blocks into groups of at most B such that
/// the total number of S-block reads — sum over groups of popcount(union of
/// member vectors) — is small. Finding the optimum is NP-hard (§4.1.4);
/// see exact_grouping.h for the branch-and-bound optimum.

#ifndef ADAPTDB_JOIN_GROUPING_H_
#define ADAPTDB_JOIN_GROUPING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "join/overlap.h"

namespace adaptdb {

/// \brief A partitioning P of R's blocks: groups of indices into
/// OverlapMatrix::r_blocks. Groups are disjoint and cover all blocks.
struct Grouping {
  std::vector<std::vector<size_t>> groups;

  /// Number of groups (hash tables to build).
  size_t NumGroups() const { return groups.size(); }

  std::string ToString() const;
};

/// The paper's C(P): total S blocks scheduled for reading,
/// sum over groups of popcount(OR of member overlap vectors).
int64_t GroupingCost(const OverlapMatrix& overlap, const Grouping& grouping);

/// Checks the Problem 1 constraints: disjoint cover of all R blocks with
/// every group size <= budget and (for n > 0) ceil(n/B) groups or fewer.
Status ValidateGrouping(const OverlapMatrix& overlap, const Grouping& grouping,
                        int32_t budget);

/// \brief The bottom-up algorithm of Fig. 6: grow one partition at a time by
/// repeatedly merging the unplaced block with the smallest
/// delta(v_i OR union(P)); close the partition at B blocks. O(n^2) unions.
Result<Grouping> BottomUpGrouping(const OverlapMatrix& overlap, int32_t budget);

/// \brief The approximate algorithm of Fig. 5: iteratively emit the partition
/// of min(B, |R|) blocks with (heuristically) smallest union, seeded at the
/// sparsest remaining vector (picking the true min-union subset is itself
/// NP-hard, §4.1.4).
Result<Grouping> GreedyGrouping(const OverlapMatrix& overlap, int32_t budget);

/// \brief Baseline: blocks grouped in id order (no optimization). This is
/// what a system oblivious to overlap structure would do; used by ablations.
Result<Grouping> SequentialGrouping(const OverlapMatrix& overlap,
                                    int32_t budget);

/// \brief Optimal *contiguous* grouping by dynamic programming: partitions
/// the blocks, in their given order, into consecutive runs of at most B
/// minimizing total cost. For relations range-partitioned on the join
/// attribute (two-phase trees), blocks in leaf order have interval-shaped
/// overlap vectors and the contiguous optimum is typically the global
/// optimum; the exact solver uses it as its starting incumbent.
/// O(n^2 * ceil(n/B)) time.
Result<Grouping> ContiguousDpGrouping(const OverlapMatrix& overlap,
                                      int32_t budget);

}  // namespace adaptdb

#endif  // ADAPTDB_JOIN_GROUPING_H_
