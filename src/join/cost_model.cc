#include "join/cost_model.h"

namespace adaptdb {

double ShuffleJoinCost(int64_t r_blocks, int64_t s_blocks,
                       const CostModelConfig& config) {
  return config.c_sj * static_cast<double>(r_blocks + s_blocks);
}

double HyperJoinCost(int64_t r_blocks, int64_t scheduled_s_reads) {
  return static_cast<double>(r_blocks) +
         static_cast<double>(scheduled_s_reads);
}

double EstimateCHyJ(const OverlapMatrix& overlap, const Grouping& grouping) {
  // Distinct S blocks that some R block overlaps.
  BitVector any(overlap.NumS());
  for (const BitVector& v : overlap.vectors) any.OrWith(v);
  const int64_t distinct = static_cast<int64_t>(any.Count());
  if (distinct == 0) return 0.0;
  const int64_t scheduled = GroupingCost(overlap, grouping);
  return static_cast<double>(scheduled) / static_cast<double>(distinct);
}

JoinChoice ChooseJoin(const OverlapMatrix& overlap, int32_t budget,
                      const CostModelConfig& config) {
  JoinChoice choice;
  auto grouping = BottomUpGrouping(overlap, budget);
  if (!grouping.ok()) {
    // Degenerate budget: fall back to shuffle join.
    choice.use_hyper_join = false;
    return choice;
  }
  const int64_t scheduled = GroupingCost(overlap, grouping.ValueOrDie());
  const int64_t n_r = static_cast<int64_t>(overlap.NumR());
  const int64_t n_s = static_cast<int64_t>(overlap.NumS());
  choice.cost_shuffle = ShuffleJoinCost(n_r, n_s, config);
  choice.cost_hyper = HyperJoinCost(n_r, scheduled);
  choice.c_hyj = EstimateCHyJ(overlap, grouping.ValueOrDie());
  choice.use_hyper_join = choice.cost_hyper < choice.cost_shuffle;
  return choice;
}

}  // namespace adaptdb
