/// \file exact_grouping.h
/// \brief Optimal hyper-join grouping (paper §4.1.2).
///
/// The paper formulates minimal partitioning as a mixed-integer program and
/// solves it with GLPK as an accuracy baseline, noting it is exponential and
/// impractical ("around 20 minutes" at buffer 32; ">96 hours" at buffer 16
/// on 128 blocks, Fig. 17). We replace the external solver with a
/// branch-and-bound search over block-to-partition assignments that returns
/// the same optimum, with:
///   * an incumbent initialized from the bottom-up heuristic,
///   * an admissible lower bound (bits required by unassigned blocks that no
///     open partition already covers must be paid at least once), and
///   * partition-symmetry breaking (a block may open at most one new group).
/// A node budget bounds runtime; exceeding it returns ResourceExhausted,
/// mirroring the paper's ">96 hours" entry.

#ifndef ADAPTDB_JOIN_EXACT_GROUPING_H_
#define ADAPTDB_JOIN_EXACT_GROUPING_H_

#include <cstdint>

#include "common/result.h"
#include "join/grouping.h"

namespace adaptdb {

/// \brief Options for the exact solver.
struct ExactOptions {
  /// Maximum search-tree nodes to expand before giving up.
  int64_t max_nodes = 20'000'000;
};

/// \brief Result of the exact solver, including search statistics.
struct ExactResult {
  Grouping grouping;
  int64_t cost = 0;
  /// Search nodes expanded.
  int64_t nodes_expanded = 0;
  /// True iff the search completed (result is provably optimal).
  bool proven_optimal = false;
};

/// Solves Problem 1 exactly: partition R's blocks into ceil(n/B) groups of
/// size <= B minimizing the total S reads. Returns ResourceExhausted when
/// the node budget is exceeded (the incumbent so far is not returned, since
/// the paper reports such runs as failures).
Result<ExactResult> ExactGrouping(const OverlapMatrix& overlap, int32_t budget,
                                  ExactOptions options = {});

}  // namespace adaptdb

#endif  // ADAPTDB_JOIN_EXACT_GROUPING_H_
