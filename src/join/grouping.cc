#include "join/grouping.h"

#include <algorithm>
#include <limits>

namespace adaptdb {

std::string Grouping::ToString() const {
  std::string out = "{";
  for (size_t g = 0; g < groups.size(); ++g) {
    if (g > 0) out += ", ";
    out += "[";
    for (size_t i = 0; i < groups[g].size(); ++i) {
      if (i > 0) out += " ";
      out += std::to_string(groups[g][i]);
    }
    out += "]";
  }
  out += "}";
  return out;
}

int64_t GroupingCost(const OverlapMatrix& overlap, const Grouping& grouping) {
  int64_t cost = 0;
  for (const auto& group : grouping.groups) {
    if (group.empty()) continue;
    BitVector acc(overlap.NumS());
    for (size_t i : group) acc.OrWith(overlap.vectors[i]);
    cost += static_cast<int64_t>(acc.Count());
  }
  return cost;
}

Status ValidateGrouping(const OverlapMatrix& overlap, const Grouping& grouping,
                        int32_t budget) {
  const size_t n = overlap.NumR();
  std::vector<bool> seen(n, false);
  size_t covered = 0;
  for (const auto& group : grouping.groups) {
    if (group.size() > static_cast<size_t>(budget)) {
      return Status::InvalidArgument("group exceeds budget");
    }
    for (size_t i : group) {
      if (i >= n) return Status::OutOfRange("block index out of range");
      if (seen[i]) return Status::InvalidArgument("block assigned twice");
      seen[i] = true;
      ++covered;
    }
  }
  if (covered != n) return Status::InvalidArgument("not all blocks covered");
  if (n > 0) {
    const size_t c = (n + static_cast<size_t>(budget) - 1) /
                     static_cast<size_t>(budget);
    if (grouping.NumGroups() > n || grouping.NumGroups() < c) {
      return Status::InvalidArgument("wrong number of groups");
    }
  }
  return Status::OK();
}

Result<Grouping> BottomUpGrouping(const OverlapMatrix& overlap,
                                  int32_t budget) {
  if (budget <= 0) return Status::InvalidArgument("budget must be positive");
  const size_t n = overlap.NumR();
  Grouping out;
  std::vector<bool> placed(n, false);
  size_t remaining = n;

  while (remaining > 0) {
    std::vector<size_t> group;
    BitVector acc(overlap.NumS());
    while (group.size() < static_cast<size_t>(budget) && remaining > 0) {
      size_t best = std::numeric_limits<size_t>::max();
      size_t best_cost = std::numeric_limits<size_t>::max();
      for (size_t i = 0; i < n; ++i) {
        if (placed[i]) continue;
        const size_t cost = acc.CountOr(overlap.vectors[i]);
        if (cost < best_cost) {
          best_cost = cost;
          best = i;
        }
      }
      placed[best] = true;
      acc.OrWith(overlap.vectors[best]);
      group.push_back(best);
      --remaining;
    }
    out.groups.push_back(std::move(group));
  }
  return out;
}

Result<Grouping> GreedyGrouping(const OverlapMatrix& overlap, int32_t budget) {
  if (budget <= 0) return Status::InvalidArgument("budget must be positive");
  const size_t n = overlap.NumR();
  Grouping out;
  std::vector<bool> placed(n, false);
  size_t remaining = n;

  while (remaining > 0) {
    // Seed the partition at the sparsest unplaced vector, then grow to
    // min(B, remaining) members minimizing union growth (the tractable
    // relaxation of Fig. 5's "B blocks with smallest delta").
    size_t seed = std::numeric_limits<size_t>::max();
    size_t seed_bits = std::numeric_limits<size_t>::max();
    for (size_t i = 0; i < n; ++i) {
      if (placed[i]) continue;
      const size_t bits = overlap.vectors[i].Count();
      if (bits < seed_bits) {
        seed_bits = bits;
        seed = i;
      }
    }
    std::vector<size_t> group{seed};
    placed[seed] = true;
    --remaining;
    BitVector acc = overlap.vectors[seed];
    const size_t target =
        std::min(static_cast<size_t>(budget), remaining + 1);
    while (group.size() < target) {
      size_t best = std::numeric_limits<size_t>::max();
      size_t best_cost = std::numeric_limits<size_t>::max();
      for (size_t i = 0; i < n; ++i) {
        if (placed[i]) continue;
        const size_t cost = acc.CountOr(overlap.vectors[i]);
        if (cost < best_cost) {
          best_cost = cost;
          best = i;
        }
      }
      placed[best] = true;
      acc.OrWith(overlap.vectors[best]);
      group.push_back(best);
      --remaining;
    }
    out.groups.push_back(std::move(group));
  }
  return out;
}

Result<Grouping> ContiguousDpGrouping(const OverlapMatrix& overlap,
                                      int32_t budget) {
  if (budget <= 0) return Status::InvalidArgument("budget must be positive");
  const size_t n = overlap.NumR();
  Grouping out;
  if (n == 0) return out;
  const size_t b = static_cast<size_t>(budget);
  // cost[j][i]: popcount of the union of blocks j..i (j > i - B).
  // dp[i]: min cost over partitions of blocks [0, i) into runs of <= B.
  constexpr int64_t kInf = std::numeric_limits<int64_t>::max() / 4;
  std::vector<int64_t> dp(n + 1, kInf);
  std::vector<size_t> cut(n + 1, 0);
  dp[0] = 0;
  for (size_t i = 1; i <= n; ++i) {
    BitVector acc(overlap.NumS());
    // Grow the candidate last run backwards from block i-1.
    for (size_t len = 1; len <= b && len <= i; ++len) {
      const size_t j = i - len;
      acc.OrWith(overlap.vectors[j]);
      const int64_t cost = dp[j] + static_cast<int64_t>(acc.Count());
      if (cost < dp[i]) {
        dp[i] = cost;
        cut[i] = j;
      }
    }
  }
  size_t i = n;
  while (i > 0) {
    std::vector<size_t> group;
    for (size_t k = cut[i]; k < i; ++k) group.push_back(k);
    out.groups.push_back(std::move(group));
    i = cut[i];
  }
  std::reverse(out.groups.begin(), out.groups.end());
  return out;
}

Result<Grouping> SequentialGrouping(const OverlapMatrix& overlap,
                                    int32_t budget) {
  if (budget <= 0) return Status::InvalidArgument("budget must be positive");
  Grouping out;
  std::vector<size_t> group;
  for (size_t i = 0; i < overlap.NumR(); ++i) {
    group.push_back(i);
    if (group.size() == static_cast<size_t>(budget)) {
      out.groups.push_back(std::move(group));
      group.clear();
    }
  }
  if (!group.empty()) out.groups.push_back(std::move(group));
  return out;
}

}  // namespace adaptdb
