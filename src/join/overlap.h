/// \file overlap.h
/// \brief Hyper-join overlap vectors (paper §4.1.1).
///
/// For a join R ⋈_t S over block sets {r_1..r_n} and {s_1..s_m}, the overlap
/// matrix V holds one m-bit vector per R block: bit j of v_i is set iff
/// Range_t(r_i) ∩ Range_t(s_j) ≠ ∅. V is computed in O(nm) from block range
/// metadata, exactly as the paper describes.

#ifndef ADAPTDB_JOIN_OVERLAP_H_
#define ADAPTDB_JOIN_OVERLAP_H_

#include <vector>

#include "common/bitvector.h"
#include "common/result.h"
#include "storage/block_store.h"

namespace adaptdb {

/// \brief The overlap structure of one join: R block ids, S block ids, and
/// one bit vector per R block over the S blocks.
struct OverlapMatrix {
  std::vector<BlockId> r_blocks;
  std::vector<BlockId> s_blocks;
  /// vectors[i].Get(j) == blocks r_blocks[i] and s_blocks[j] overlap.
  std::vector<BitVector> vectors;

  /// Number of R blocks (n).
  size_t NumR() const { return r_blocks.size(); }
  /// Number of S blocks (m).
  size_t NumS() const { return s_blocks.size(); }

  /// Total set bits: the cost of joining every R block in its own partition.
  size_t TotalOverlaps() const;
};

/// Computes the overlap matrix from block range metadata. Empty blocks
/// (no records, hence no ranges) overlap nothing.
/// \param r_attr join attribute id in R's schema
/// \param s_attr join attribute id in S's schema
Result<OverlapMatrix> ComputeOverlap(const BlockStore& r_store,
                                     const std::vector<BlockId>& r_blocks,
                                     AttrId r_attr, const BlockStore& s_store,
                                     const std::vector<BlockId>& s_blocks,
                                     AttrId s_attr);

/// Brute-force oracle used by tests: recomputes bit (i, j) by scanning the
/// actual records of both blocks.
Result<bool> OverlapByRecords(const BlockStore& r_store, BlockId r,
                              AttrId r_attr, const BlockStore& s_store,
                              BlockId s, AttrId s_attr);

}  // namespace adaptdb

#endif  // ADAPTDB_JOIN_OVERLAP_H_
