#include "join/overlap.h"

namespace adaptdb {

size_t OverlapMatrix::TotalOverlaps() const {
  size_t n = 0;
  for (const BitVector& v : vectors) n += v.Count();
  return n;
}

Result<OverlapMatrix> ComputeOverlap(const BlockStore& r_store,
                                     const std::vector<BlockId>& r_blocks,
                                     AttrId r_attr, const BlockStore& s_store,
                                     const std::vector<BlockId>& s_blocks,
                                     AttrId s_attr) {
  OverlapMatrix out;
  out.r_blocks = r_blocks;
  out.s_blocks = s_blocks;
  out.vectors.reserve(r_blocks.size());

  // Materialize S ranges once. Only the tiny {non-empty, range} summary is
  // kept — copying it and dropping each pin immediately keeps the resident
  // set O(1) on buffered stores (pinning the whole S side would exempt it
  // from eviction and defeat the pool budget).
  struct SRange {
    bool nonempty = false;
    ValueRange range;
  };
  std::vector<SRange> s_ranges;
  s_ranges.reserve(s_blocks.size());
  for (BlockId sb : s_blocks) {
    auto blk = s_store.Get(sb);
    if (!blk.ok()) return blk.status();
    const BlockRef& s = blk.ValueOrDie();
    if (s->empty()) {
      s_ranges.push_back(SRange{});
    } else {
      s_ranges.push_back(SRange{true, s->range(s_attr)});
    }
  }

  for (BlockId rb : r_blocks) {
    auto blk = r_store.Get(rb);
    if (!blk.ok()) return blk.status();
    const BlockRef& r = blk.ValueOrDie();
    BitVector v(s_blocks.size());
    if (!r->empty()) {
      const ValueRange& rr = r->range(r_attr);
      for (size_t j = 0; j < s_ranges.size(); ++j) {
        if (s_ranges[j].nonempty && rr.Overlaps(s_ranges[j].range)) {
          v.Set(j);
        }
      }
    }
    out.vectors.push_back(std::move(v));
  }
  return out;
}

Result<bool> OverlapByRecords(const BlockStore& r_store, BlockId r,
                              AttrId r_attr, const BlockStore& s_store,
                              BlockId s, AttrId s_attr) {
  auto rb = r_store.Get(r);
  if (!rb.ok()) return rb.status();
  auto sb = s_store.Get(s);
  if (!sb.ok()) return sb.status();
  if (rb.ValueOrDie()->empty() || sb.ValueOrDie()->empty()) return false;
  // Only the two join-attribute columns are touched; no row materializes.
  const ValueRange& sr = sb.ValueOrDie()->range(s_attr);
  const Column& r_col = rb.ValueOrDie()->column(r_attr);
  for (size_t row = 0; row < r_col.size(); ++row) {
    if (sr.Contains(r_col.ValueAt(row))) return true;
  }
  // Range containment of individual R values in S's range is necessary but
  // not sufficient for record-level matches; the paper's definition is
  // range-intersection, which we mirror here by also testing the converse.
  const ValueRange& rr = rb.ValueOrDie()->range(r_attr);
  const Column& s_col = sb.ValueOrDie()->column(s_attr);
  for (size_t row = 0; row < s_col.size(); ++row) {
    if (rr.Contains(s_col.ValueAt(row))) return true;
  }
  return false;
}

}  // namespace adaptdb
