#include "join/exact_grouping.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

namespace adaptdb {

namespace {

/// Depth-first branch-and-bound over block assignments.
class Solver {
 public:
  Solver(const OverlapMatrix& overlap, int32_t budget, int64_t max_nodes)
      : overlap_(overlap),
        n_(overlap.NumR()),
        m_(overlap.NumS()),
        budget_(static_cast<size_t>(budget)),
        max_nodes_(max_nodes) {
    num_groups_ = (n_ + budget_ - 1) / budget_;
    group_bits_.assign(num_groups_, BitVector(m_));
    group_sizes_.assign(num_groups_, 0);
    assignment_.assign(n_, 0);
    // Suffix unions: bits needed by blocks i..n-1. Used by the lower bound.
    suffix_union_.assign(n_ + 1, BitVector(m_));
    for (size_t i = n_; i-- > 0;) {
      suffix_union_[i] = suffix_union_[i + 1];
      suffix_union_[i].OrWith(overlap_.vectors[order_index(i)]);
    }
  }

  Status Run(const Grouping& incumbent_grouping, int64_t incumbent_cost) {
    best_cost_ = incumbent_cost;
    best_ = incumbent_grouping;
    const Status st = Dfs(0, 0, 0);
    if (!st.ok()) return st;
    return Status::OK();
  }

  const Grouping& best() const { return best_; }
  int64_t best_cost() const { return best_cost_; }
  int64_t nodes() const { return nodes_; }

 private:
  // Blocks are assigned in their natural order; for range-partitioned
  // relations this is roughly interval order, which makes the bound tight.
  size_t order_index(size_t i) const { return i; }

  /// Admissible lower bound increment: every bit required by a remaining
  /// block that no group currently holds must be read at least once more.
  int64_t LowerBound(size_t next, int64_t cost_so_far) const {
    BitVector covered(m_);
    for (size_t g = 0; g < num_groups_; ++g) {
      if (group_sizes_[g] < budget_) covered.OrWith(group_bits_[g]);
    }
    const size_t needed = suffix_union_[next].Count();
    const size_t shareable = suffix_union_[next].CountAnd(covered);
    return cost_so_far + static_cast<int64_t>(needed - shareable);
  }

  Status Dfs(size_t next, int64_t cost_so_far, size_t open_groups) {
    if (++nodes_ > max_nodes_) {
      return Status::ResourceExhausted(
          "exact grouping exceeded node budget of " +
          std::to_string(max_nodes_));
    }
    if (next == n_) {
      if (cost_so_far < best_cost_) {
        best_cost_ = cost_so_far;
        best_.groups.assign(num_groups_, {});
        for (size_t i = 0; i < n_; ++i) {
          best_.groups[assignment_[i]].push_back(order_index(i));
        }
        // Drop groups left empty (possible when n % B != 0 and the search
        // packed blocks more tightly than round-robin).
        best_.groups.erase(
            std::remove_if(best_.groups.begin(), best_.groups.end(),
                           [](const std::vector<size_t>& g) { return g.empty(); }),
            best_.groups.end());
      }
      return Status::OK();
    }
    if (LowerBound(next, cost_so_far) >= best_cost_) return Status::OK();

    // Dominance: group labels are interchangeable, so two search nodes with
    // the same `next` and the same multiset of (size, contents) group states
    // are equivalent; only the cheaper one can lead to an improvement.
    // States are keyed by a 64-bit signature (collision probability is
    // negligible at the node counts the budget allows).
    const uint64_t sig = StateSignature(next);
    auto [it, inserted] = visited_.try_emplace(sig, cost_so_far);
    if (!inserted) {
      if (it->second <= cost_so_far) return Status::OK();
      it->second = cost_so_far;
    }

    const BitVector& v = overlap_.vectors[order_index(next)];
    // Feasibility: remaining blocks must fit into remaining capacity; a new
    // group may be opened only if at least one is still closed.
    const size_t remaining_after = n_ - next - 1;

    // Order candidate groups by marginal cost so good solutions are found
    // early and the bound prunes aggressively. Groups with identical
    // contents and fill are interchangeable: trying one of them suffices
    // (this collapses the empty-group symmetry and the duplicate-union
    // states interval-structured instances produce).
    std::vector<std::pair<int64_t, size_t>> candidates;
    const size_t tryable = std::min(open_groups + 1, num_groups_);
    for (size_t g = 0; g < tryable; ++g) {
      if (group_sizes_[g] >= budget_) continue;
      bool duplicate = false;
      for (size_t h = 0; h < g; ++h) {
        if (group_sizes_[h] == group_sizes_[g] &&
            group_bits_[h] == group_bits_[g]) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      const int64_t delta =
          static_cast<int64_t>(group_bits_[g].CountOr(v)) -
          static_cast<int64_t>(group_bits_[g].Count());
      candidates.emplace_back(delta, g);
    }
    std::sort(candidates.begin(), candidates.end());

    for (const auto& [delta, g] : candidates) {
      // Capacity feasibility: after placing here, the rest must still fit.
      size_t capacity = 0;
      for (size_t h = 0; h < num_groups_; ++h) {
        capacity += budget_ - group_sizes_[h];
      }
      if (capacity - 1 < remaining_after) continue;

      const BitVector saved = group_bits_[g];
      group_bits_[g].OrWith(v);
      ++group_sizes_[g];
      assignment_[next] = g;
      const size_t new_open = std::max(open_groups, g + 1);
      const Status st = Dfs(next + 1, cost_so_far + delta, new_open);
      group_bits_[g] = saved;
      --group_sizes_[g];
      if (!st.ok()) return st;
    }
    return Status::OK();
  }

  uint64_t StateSignature(size_t next) const {
    std::vector<uint64_t> sigs;
    sigs.reserve(num_groups_);
    for (size_t g = 0; g < num_groups_; ++g) {
      sigs.push_back(group_bits_[g].Hash() * 31 + group_sizes_[g]);
    }
    std::sort(sigs.begin(), sigs.end());
    uint64_t h = 1469598103934665603ull ^ (next * 0x9e3779b97f4a7c15ull);
    for (uint64_t s : sigs) {
      h ^= s;
      h *= 1099511628211ull;
    }
    return h;
  }

  const OverlapMatrix& overlap_;
  size_t n_;
  size_t m_;
  size_t budget_;
  int64_t max_nodes_;
  size_t num_groups_ = 0;

  std::vector<BitVector> group_bits_;
  std::vector<size_t> group_sizes_;
  std::vector<size_t> assignment_;
  std::vector<BitVector> suffix_union_;

  Grouping best_;
  int64_t best_cost_ = std::numeric_limits<int64_t>::max();
  int64_t nodes_ = 0;
  std::unordered_map<uint64_t, int64_t> visited_;
};

}  // namespace

Result<ExactResult> ExactGrouping(const OverlapMatrix& overlap, int32_t budget,
                                  ExactOptions options) {
  if (budget <= 0) return Status::InvalidArgument("budget must be positive");
  if (overlap.NumR() == 0) {
    ExactResult r;
    r.proven_optimal = true;
    return r;
  }
  // Start from the best cheap incumbent: the bottom-up heuristic or the
  // contiguous DP (usually optimal for interval-structured instances).
  auto incumbent = BottomUpGrouping(overlap, budget);
  if (!incumbent.ok()) return incumbent.status();
  int64_t inc_cost = GroupingCost(overlap, incumbent.ValueOrDie());
  auto dp = ContiguousDpGrouping(overlap, budget);
  if (!dp.ok()) return dp.status();
  const int64_t dp_cost = GroupingCost(overlap, dp.ValueOrDie());
  if (dp_cost < inc_cost) {
    incumbent = std::move(dp);
    inc_cost = dp_cost;
  }

  Solver solver(overlap, budget, options.max_nodes);
  const Status st = solver.Run(incumbent.ValueOrDie(), inc_cost);
  if (!st.ok()) return st;

  ExactResult r;
  r.grouping = solver.best();
  r.cost = solver.best_cost();
  r.nodes_expanded = solver.nodes();
  r.proven_optimal = true;
  return r;
}

}  // namespace adaptdb
