#include "tree/upfront_partitioner.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace adaptdb {

namespace {

/// Recursive builder state shared across the whole tree so attribute usage
/// balancing is global (heterogeneous branching, §3.1).
struct BuildState {
  const std::vector<AttrId>* attrs;
  std::unordered_map<AttrId, int32_t> usage;
  Rng rng;
  BlockStore* store;
};

Value MedianOf(std::vector<const Record*>& recs, AttrId attr) {
  std::vector<Value> vals;
  vals.reserve(recs.size());
  for (const Record* r : recs) vals.push_back((*r)[static_cast<size_t>(attr)]);
  std::sort(vals.begin(), vals.end());
  return vals[vals.size() / 2];
}

/// Picks the least-used candidate attribute that actually splits the
/// subsample (both sides non-empty at the median); returns -1 if none does.
AttrId PickAttr(std::vector<const Record*>& recs, BuildState* st,
                Value* cut_out) {
  std::vector<AttrId> order = *st->attrs;
  // Sort by usage, then randomized tie-break for heterogeneous branching.
  std::vector<std::pair<int64_t, AttrId>> keyed;
  keyed.reserve(order.size());
  for (AttrId a : order) {
    const int64_t key = static_cast<int64_t>(st->usage[a]) * 1000 +
                        static_cast<int64_t>(st->rng.Uniform(1000));
    keyed.emplace_back(key, a);
  }
  std::sort(keyed.begin(), keyed.end());
  for (const auto& [key, attr] : keyed) {
    const Value cut = MedianOf(recs, attr);
    // The split is attr <= cut; it is degenerate when every record lands on
    // one side (e.g. constant attribute).
    size_t left = 0;
    for (const Record* r : recs) {
      if ((*r)[static_cast<size_t>(attr)] <= cut) ++left;
    }
    if (left > 0 && left < recs.size()) {
      *cut_out = cut;
      return attr;
    }
  }
  return -1;
}

std::unique_ptr<TreeNode> BuildRec(std::vector<const Record*> recs,
                                   int32_t levels_left, BuildState* st) {
  if (levels_left <= 0 || recs.size() < 2) {
    return PartitionTree::MakeLeaf(st->store->CreateBlock());
  }
  Value cut;
  const AttrId attr = PickAttr(recs, st, &cut);
  if (attr < 0) {
    return PartitionTree::MakeLeaf(st->store->CreateBlock());
  }
  ++st->usage[attr];
  std::vector<const Record*> left_recs, right_recs;
  left_recs.reserve(recs.size() / 2 + 1);
  right_recs.reserve(recs.size() / 2 + 1);
  for (const Record* r : recs) {
    if ((*r)[static_cast<size_t>(attr)] <= cut) {
      left_recs.push_back(r);
    } else {
      right_recs.push_back(r);
    }
  }
  auto left = BuildRec(std::move(left_recs), levels_left - 1, st);
  auto right = BuildRec(std::move(right_recs), levels_left - 1, st);
  return PartitionTree::MakeInner(attr, cut, std::move(left), std::move(right));
}

}  // namespace

UpfrontPartitioner::UpfrontPartitioner(const Schema& schema,
                                       UpfrontOptions options)
    : schema_(schema), options_(std::move(options)) {}

Result<PartitionTree> UpfrontPartitioner::Build(const Reservoir& sample,
                                                BlockStore* store) {
  if (store == nullptr) return Status::InvalidArgument("null store");
  if (sample.records().empty()) {
    return Status::InvalidArgument("empty sample");
  }
  std::vector<AttrId> attrs = options_.attrs;
  if (attrs.empty()) {
    for (AttrId a = 0; a < schema_.num_attrs(); ++a) attrs.push_back(a);
  }
  BuildState st{&attrs, {}, Rng(options_.seed), store};
  std::vector<const Record*> recs;
  recs.reserve(sample.records().size());
  for (const Record& r : sample.records()) recs.push_back(&r);
  auto root = BuildRec(std::move(recs), options_.num_levels, &st);
  return PartitionTree(std::move(root));
}

Status LoadRecords(const std::vector<Record>& records,
                   const PartitionTree& tree, BlockStore* store) {
  if (store == nullptr) return Status::InvalidArgument("null store");
  // Route everything first, then append with one mutable pin per leaf:
  // pinning per record would, on a buffered store whose pool is smaller
  // than the leaf count, re-read and write back a block per record.
  std::map<BlockId, std::vector<const Record*>> per_leaf;
  for (const Record& rec : records) {
    auto leaf = tree.Route(rec);
    if (!leaf.ok()) return leaf.status();
    per_leaf[leaf.ValueOrDie()].push_back(&rec);
  }
  for (const auto& [leaf, recs] : per_leaf) {
    auto block = store->GetMutable(leaf);
    if (!block.ok()) return block.status();
    for (const Record* rec : recs) block.ValueOrDie()->Add(*rec);
  }
  return Status::OK();
}

}  // namespace adaptdb
