/// \file upfront_partitioner.h
/// \brief Amoeba's workload-oblivious upfront partitioner (paper §3.1).
///
/// Builds a balanced binary partitioning tree from a data sample without any
/// workload knowledge: each inner node splits on an attribute at the sample
/// median (conditioned on the path), and attributes are spread across the
/// tree with heterogeneous branching so that every attribute is partitioned
/// roughly the same number of ways (Fig. 3b).

#ifndef ADAPTDB_TREE_UPFRONT_PARTITIONER_H_
#define ADAPTDB_TREE_UPFRONT_PARTITIONER_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "sample/reservoir.h"
#include "storage/block_store.h"
#include "tree/partition_tree.h"

namespace adaptdb {

/// \brief Options for the upfront partitioner.
struct UpfrontOptions {
  /// Tree depth: up to 2^num_levels leaf blocks are created. Chosen by the
  /// caller as ceil(log2(table_bytes / block_bytes)), per §3.1.
  int32_t num_levels = 4;
  /// Candidate split attributes; empty means every schema attribute.
  std::vector<AttrId> attrs;
  /// Seed for tie-breaking among equally-used attributes.
  uint64_t seed = 1;
};

/// \brief Builds Amoeba upfront partitioning trees.
class UpfrontPartitioner {
 public:
  UpfrontPartitioner(const Schema& schema, UpfrontOptions options);

  /// Builds the tree structure from `sample` and allocates one empty block
  /// per leaf in `store`. Degenerate splits (attribute constant within a
  /// subsample) fall back to other attributes or produce early leaves.
  Result<PartitionTree> Build(const Reservoir& sample, BlockStore* store);

 private:
  const Schema& schema_;
  UpfrontOptions options_;
};

/// Routes every record through `tree` into the blocks of `store`.
/// Each placed block write can be accounted by the caller via the returned
/// count of populated blocks.
Status LoadRecords(const std::vector<Record>& records,
                   const PartitionTree& tree, BlockStore* store);

}  // namespace adaptdb

#endif  // ADAPTDB_TREE_UPFRONT_PARTITIONER_H_
