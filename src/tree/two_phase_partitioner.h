/// \file two_phase_partitioner.h
/// \brief Two-phase partitioning (paper §5.1, Fig. 9).
///
/// Builds a tree whose top `join_levels` levels split on the join attribute
/// at medians (recursively computed over the sorted sample, avoiding skew),
/// and whose remaining levels split on selection attributes exactly like the
/// Amoeba upfront partitioner. The resulting leaf blocks partition the join
/// attribute into near-equal-frequency disjoint ranges, which is what makes
/// hyper-join overlap vectors sparse.

#ifndef ADAPTDB_TREE_TWO_PHASE_PARTITIONER_H_
#define ADAPTDB_TREE_TWO_PHASE_PARTITIONER_H_

#include <vector>

#include "common/result.h"
#include "sample/reservoir.h"
#include "storage/block_store.h"
#include "tree/partition_tree.h"

namespace adaptdb {

/// \brief Options for the two-phase partitioner.
struct TwoPhaseOptions {
  /// The join attribute injected at the top of the tree.
  AttrId join_attr = 0;
  /// Levels reserved for the join attribute (paper default: half the tree).
  int32_t join_levels = 2;
  /// Total tree depth (join_levels + selection levels).
  int32_t total_levels = 4;
  /// Lower-level candidate attributes, typically the predicate attributes of
  /// the query that triggered tree creation (§5.2); empty = all attributes.
  std::vector<AttrId> selection_attrs;
  /// Tie-break seed for the selection phase.
  uint64_t seed = 1;
};

/// \brief Builds two-phase partitioning trees.
class TwoPhasePartitioner {
 public:
  TwoPhasePartitioner(const Schema& schema, TwoPhaseOptions options);

  /// Builds the tree and allocates empty leaf blocks in `store`.
  Result<PartitionTree> Build(const Reservoir& sample, BlockStore* store);

  /// Heuristic from the paper's default setup: reserve half the levels for
  /// the join attribute (§7.1, validated by Fig. 16a).
  static int32_t DefaultJoinLevels(int32_t total_levels) {
    return total_levels / 2 + (total_levels % 2);
  }

 private:
  const Schema& schema_;
  TwoPhaseOptions options_;
};

}  // namespace adaptdb

#endif  // ADAPTDB_TREE_TWO_PHASE_PARTITIONER_H_
