#include "tree/partition_tree.h"

#include <cctype>
#include <cstdlib>

namespace adaptdb {

std::unique_ptr<TreeNode> TreeNode::Clone() const {
  auto n = std::make_unique<TreeNode>();
  n->is_leaf = is_leaf;
  n->attr = attr;
  n->cut = cut;
  n->block = block;
  if (left) n->left = left->Clone();
  if (right) n->right = right->Clone();
  return n;
}

PartitionTree::PartitionTree(std::unique_ptr<TreeNode> root, AttrId join_attr,
                             int32_t join_levels)
    : root_(std::move(root)), join_attr_(join_attr), join_levels_(join_levels) {}

namespace {

void LookupRec(const TreeNode* node, const PredicateSet& preds,
               std::vector<BlockId>* out) {
  if (node == nullptr) return;
  if (node->is_leaf) {
    out->push_back(node->block);
    return;
  }
  bool go_left = true;
  bool go_right = true;
  for (const Predicate& p : preds) {
    if (p.attr != node->attr) continue;
    if (!p.CanMatchLeft(node->cut)) go_left = false;
    if (!p.CanMatchRight(node->cut)) go_right = false;
  }
  if (go_left) LookupRec(node->left.get(), preds, out);
  if (go_right) LookupRec(node->right.get(), preds, out);
}

void LeavesRec(const TreeNode* node, std::vector<BlockId>* out) {
  if (node == nullptr) return;
  if (node->is_leaf) {
    out->push_back(node->block);
    return;
  }
  LeavesRec(node->left.get(), out);
  LeavesRec(node->right.get(), out);
}

int32_t DepthRec(const TreeNode* node) {
  if (node == nullptr || node->is_leaf) return 0;
  const int32_t l = DepthRec(node->left.get());
  const int32_t r = DepthRec(node->right.get());
  return 1 + (l > r ? l : r);
}

void VisitRec(const TreeNode* node,
              const std::function<void(const TreeNode&)>& fn) {
  if (node == nullptr) return;
  fn(*node);
  VisitRec(node->left.get(), fn);
  VisitRec(node->right.get(), fn);
}

void SerializeRec(const TreeNode* node, std::string* out) {
  if (node->is_leaf) {
    *out += "(leaf " + std::to_string(node->block) + ")";
    return;
  }
  *out += "(a" + std::to_string(node->attr) + " ";
  if (node->cut.type() == DataType::kString) {
    *out += "\"" + node->cut.AsString() + "\"";
  } else if (node->cut.type() == DataType::kDouble) {
    *out += "d" + std::to_string(node->cut.AsDouble());
  } else {
    *out += std::to_string(node->cut.AsInt64());
  }
  *out += " ";
  SerializeRec(node->left.get(), out);
  *out += " ";
  SerializeRec(node->right.get(), out);
  *out += ")";
}

// Minimal recursive-descent parser for the Serialize() grammar.
class TreeParser {
 public:
  explicit TreeParser(const std::string& text) : s_(text) {}

  Result<std::unique_ptr<TreeNode>> Parse() {
    auto node = ParseNode();
    if (!node.ok()) return node.status();
    SkipWs();
    if (pos_ != s_.size()) {
      return Status::InvalidArgument("trailing characters at " +
                                     std::to_string(pos_));
    }
    return node;
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::unique_ptr<TreeNode>> ParseNode() {
    if (!Consume('(')) return Status::InvalidArgument("expected '('");
    SkipWs();
    if (s_.compare(pos_, 4, "leaf") == 0) {
      pos_ += 4;
      SkipWs();
      char* end = nullptr;
      const long long b = std::strtoll(s_.c_str() + pos_, &end, 10);
      pos_ = static_cast<size_t>(end - s_.c_str());
      if (!Consume(')')) return Status::InvalidArgument("expected ')'");
      return PartitionTree::MakeLeaf(static_cast<BlockId>(b));
    }
    if (pos_ >= s_.size() || s_[pos_] != 'a') {
      return Status::InvalidArgument("expected 'a<attr>'");
    }
    ++pos_;
    char* end = nullptr;
    const long long attr = std::strtoll(s_.c_str() + pos_, &end, 10);
    pos_ = static_cast<size_t>(end - s_.c_str());
    SkipWs();
    Value cut;
    if (pos_ < s_.size() && s_[pos_] == '"') {
      ++pos_;
      std::string str;
      while (pos_ < s_.size() && s_[pos_] != '"') str.push_back(s_[pos_++]);
      if (!Consume('"')) return Status::InvalidArgument("unterminated string");
      cut = Value(std::move(str));
    } else if (pos_ < s_.size() && s_[pos_] == 'd') {
      ++pos_;
      cut = Value(std::strtod(s_.c_str() + pos_, &end));
      pos_ = static_cast<size_t>(end - s_.c_str());
    } else {
      cut = Value(static_cast<int64_t>(std::strtoll(s_.c_str() + pos_, &end, 10)));
      pos_ = static_cast<size_t>(end - s_.c_str());
    }
    auto left = ParseNode();
    if (!left.ok()) return left.status();
    auto right = ParseNode();
    if (!right.ok()) return right.status();
    if (!Consume(')')) return Status::InvalidArgument("expected ')'");
    return PartitionTree::MakeInner(static_cast<AttrId>(attr), cut,
                                    std::move(left).ValueOrDie(),
                                    std::move(right).ValueOrDie());
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

std::vector<BlockId> PartitionTree::Lookup(const PredicateSet& preds) const {
  std::vector<BlockId> out;
  LookupRec(root_.get(), preds, &out);
  return out;
}

Result<BlockId> PartitionTree::Route(const Record& rec) const {
  const TreeNode* node = root_.get();
  if (node == nullptr) return Status::NotFound("empty tree");
  while (!node->is_leaf) {
    const Value& v = rec[static_cast<size_t>(node->attr)];
    node = (v <= node->cut) ? node->left.get() : node->right.get();
    if (node == nullptr) return Status::Internal("malformed tree");
  }
  return node->block;
}

std::vector<BlockId> PartitionTree::Leaves() const {
  std::vector<BlockId> out;
  LeavesRec(root_.get(), &out);
  return out;
}

int32_t PartitionTree::Depth() const { return DepthRec(root_.get()); }

void PartitionTree::Visit(
    const std::function<void(const TreeNode&)>& fn) const {
  VisitRec(root_.get(), fn);
}

int32_t PartitionTree::AttrUsageCount(AttrId attr) const {
  int32_t n = 0;
  Visit([&](const TreeNode& node) {
    if (!node.is_leaf && node.attr == attr) ++n;
  });
  return n;
}

PartitionTree PartitionTree::Clone() const {
  PartitionTree t;
  if (root_) t.root_ = root_->Clone();
  t.join_attr_ = join_attr_;
  t.join_levels_ = join_levels_;
  return t;
}

std::string PartitionTree::Serialize() const {
  if (!root_) return "()";
  std::string out;
  SerializeRec(root_.get(), &out);
  return out;
}

Result<PartitionTree> PartitionTree::Parse(const std::string& text) {
  if (text == "()") return PartitionTree();
  TreeParser parser(text);
  auto root = parser.Parse();
  if (!root.ok()) return root.status();
  return PartitionTree(std::move(root).ValueOrDie());
}

std::unique_ptr<TreeNode> PartitionTree::MakeLeaf(BlockId block) {
  auto n = std::make_unique<TreeNode>();
  n->is_leaf = true;
  n->block = block;
  return n;
}

std::unique_ptr<TreeNode> PartitionTree::MakeInner(
    AttrId attr, Value cut, std::unique_ptr<TreeNode> left,
    std::unique_ptr<TreeNode> right) {
  auto n = std::make_unique<TreeNode>();
  n->is_leaf = false;
  n->attr = attr;
  n->cut = std::move(cut);
  n->left = std::move(left);
  n->right = std::move(right);
  return n;
}

}  // namespace adaptdb
