/// \file partition_tree.h
/// \brief Binary partitioning trees (paper §3.1, Fig. 3).
///
/// A partitioning tree recursively splits a table: every inner node is a
/// predicate `attr <= cut` routing records left (<=) or right (>), and every
/// leaf names a storage block. Queries are answered by pruning subtrees
/// whose split predicate excludes all matches (predicate-based data access),
/// and records are loaded by routing them root-to-leaf.
///
/// AdaptDB extends the plain Amoeba tree with two-phase structure (§5.1):
/// the top `join_levels` levels split on `join_attr` at medians; lower
/// levels split on selection attributes.

#ifndef ADAPTDB_TREE_PARTITION_TREE_H_
#define ADAPTDB_TREE_PARTITION_TREE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "schema/predicate.h"
#include "storage/block.h"

namespace adaptdb {

/// \brief One node of a partitioning tree: inner split or leaf block.
struct TreeNode {
  /// True for leaves (block holders), false for splits.
  bool is_leaf = true;
  /// Split attribute (inner nodes only).
  AttrId attr = -1;
  /// Split cut point: records with attr <= cut go left (inner nodes only).
  Value cut;
  std::unique_ptr<TreeNode> left;
  std::unique_ptr<TreeNode> right;
  /// Block held by this leaf (leaves only).
  BlockId block = -1;

  /// Deep-copies this subtree.
  std::unique_ptr<TreeNode> Clone() const;
};

/// \brief A partitioning tree over one table (possibly one of several; see
/// adapt/tree_set.h for the multi-tree smooth-repartitioning state).
class PartitionTree {
 public:
  /// Constructs an empty tree (no data routed to it yet).
  PartitionTree() = default;

  /// Takes ownership of a built tree.
  /// \param root    the tree structure (may be null for an empty tree)
  /// \param join_attr attribute the top levels split on, or -1 for plain
  ///                  Amoeba trees
  /// \param join_levels number of top levels reserved for join_attr
  PartitionTree(std::unique_ptr<TreeNode> root, AttrId join_attr = -1,
                int32_t join_levels = 0);

  PartitionTree(PartitionTree&&) = default;
  PartitionTree& operator=(PartitionTree&&) = default;

  /// True iff the tree has no structure.
  bool empty() const { return root_ == nullptr; }

  /// Root node (null when empty).
  const TreeNode* root() const { return root_.get(); }
  /// Mutable root, used by the adaptive repartitioner.
  TreeNode* mutable_root() { return root_.get(); }
  /// Replaces the entire structure.
  void SetRoot(std::unique_ptr<TreeNode> root) { root_ = std::move(root); }
  /// Releases ownership of the structure, leaving the tree empty. Used when
  /// a freshly built subtree is spliced into an existing tree.
  std::unique_ptr<TreeNode> TakeRoot() { return std::move(root_); }

  /// Join attribute of a two-phase tree, or -1.
  AttrId join_attr() const { return join_attr_; }
  void set_join_attr(AttrId a) { join_attr_ = a; }
  /// Number of top levels splitting on the join attribute.
  int32_t join_levels() const { return join_levels_; }
  void set_join_levels(int32_t n) { join_levels_ = n; }

  /// The paper's lookup(T, q): blocks whose subtree is not pruned by the
  /// conjunction `preds`. Conservative (superset of true matches).
  std::vector<BlockId> Lookup(const PredicateSet& preds) const;

  /// Routes a record to its leaf block.
  Result<BlockId> Route(const Record& rec) const;

  /// All leaf blocks, left-to-right.
  std::vector<BlockId> Leaves() const;

  /// Number of leaves.
  size_t NumLeaves() const { return Leaves().size(); }

  /// Maximum root-to-leaf depth (leaf-only tree has depth 0).
  int32_t Depth() const;

  /// Invokes `fn` on every node, pre-order.
  void Visit(const std::function<void(const TreeNode&)>& fn) const;

  /// Number of inner nodes splitting on `attr`.
  int32_t AttrUsageCount(AttrId attr) const;

  /// Deep-copies the tree (structure only; blocks are shared ids).
  PartitionTree Clone() const;

  /// Serializes to a parenthesized text form, e.g.
  /// "(a0 50 (leaf 1) (a2 7 (leaf 2) (leaf 3)))".
  std::string Serialize() const;

  /// Parses the Serialize() format.
  static Result<PartitionTree> Parse(const std::string& text);

  /// Creates a leaf node.
  static std::unique_ptr<TreeNode> MakeLeaf(BlockId block);
  /// Creates an inner node.
  static std::unique_ptr<TreeNode> MakeInner(AttrId attr, Value cut,
                                             std::unique_ptr<TreeNode> left,
                                             std::unique_ptr<TreeNode> right);

 private:
  std::unique_ptr<TreeNode> root_;
  AttrId join_attr_ = -1;
  int32_t join_levels_ = 0;
};

}  // namespace adaptdb

#endif  // ADAPTDB_TREE_PARTITION_TREE_H_
