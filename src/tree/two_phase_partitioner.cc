#include "tree/two_phase_partitioner.h"

#include <algorithm>
#include <unordered_map>

namespace adaptdb {

namespace {

struct SelState {
  const std::vector<AttrId>* attrs;
  std::unordered_map<AttrId, int32_t> usage;
  Rng rng;
  BlockStore* store;
};

Value MedianOf(const std::vector<const Record*>& recs, AttrId attr) {
  std::vector<Value> vals;
  vals.reserve(recs.size());
  for (const Record* r : recs) vals.push_back((*r)[static_cast<size_t>(attr)]);
  std::sort(vals.begin(), vals.end());
  return vals[vals.size() / 2];
}

AttrId PickSelAttr(const std::vector<const Record*>& recs, SelState* st,
                   Value* cut_out) {
  std::vector<std::pair<int64_t, AttrId>> keyed;
  for (AttrId a : *st->attrs) {
    keyed.emplace_back(static_cast<int64_t>(st->usage[a]) * 1000 +
                           static_cast<int64_t>(st->rng.Uniform(1000)),
                       a);
  }
  std::sort(keyed.begin(), keyed.end());
  for (const auto& [key, attr] : keyed) {
    const Value cut = MedianOf(recs, attr);
    size_t left = 0;
    for (const Record* r : recs) {
      if ((*r)[static_cast<size_t>(attr)] <= cut) ++left;
    }
    if (left > 0 && left < recs.size()) {
      *cut_out = cut;
      return attr;
    }
  }
  return -1;
}

std::unique_ptr<TreeNode> BuildSelection(std::vector<const Record*> recs,
                                         int32_t levels_left, SelState* st) {
  if (levels_left <= 0 || recs.size() < 2) {
    return PartitionTree::MakeLeaf(st->store->CreateBlock());
  }
  Value cut;
  const AttrId attr = PickSelAttr(recs, st, &cut);
  if (attr < 0) return PartitionTree::MakeLeaf(st->store->CreateBlock());
  ++st->usage[attr];
  std::vector<const Record*> l, r;
  for (const Record* rec : recs) {
    ((*rec)[static_cast<size_t>(attr)] <= cut ? l : r).push_back(rec);
  }
  auto left = BuildSelection(std::move(l), levels_left - 1, st);
  auto right = BuildSelection(std::move(r), levels_left - 1, st);
  return PartitionTree::MakeInner(attr, cut, std::move(left), std::move(right));
}

/// First phase: recursive median splits on the join attribute over records
/// sorted by that attribute. `lo`/`hi` delimit the current slice.
std::unique_ptr<TreeNode> BuildJoinPhase(
    const std::vector<const Record*>& sorted, size_t lo, size_t hi,
    AttrId join_attr, int32_t join_levels_left, int32_t sel_levels,
    SelState* st) {
  if (join_levels_left <= 0 || hi - lo < 2) {
    std::vector<const Record*> slice(sorted.begin() + static_cast<long>(lo),
                                     sorted.begin() + static_cast<long>(hi));
    return BuildSelection(std::move(slice), sel_levels, st);
  }
  const size_t mid = lo + (hi - lo) / 2;
  const Value cut = (*sorted[mid - 1])[static_cast<size_t>(join_attr)];
  // Degenerate medians (heavy duplicates) still route correctly because the
  // split is <=; but if every value in the slice equals the cut, stop
  // splitting on the join attribute here.
  const Value& last = (*sorted[hi - 1])[static_cast<size_t>(join_attr)];
  if (!(cut < last)) {
    std::vector<const Record*> slice(sorted.begin() + static_cast<long>(lo),
                                     sorted.begin() + static_cast<long>(hi));
    return BuildSelection(std::move(slice), sel_levels, st);
  }
  // Advance the boundary so records equal to the cut all land on the left.
  size_t split = mid;
  while (split < hi && !(cut < (*sorted[split])[static_cast<size_t>(join_attr)])) {
    ++split;
  }
  auto left = BuildJoinPhase(sorted, lo, split, join_attr,
                             join_levels_left - 1, sel_levels, st);
  auto right = BuildJoinPhase(sorted, split, hi, join_attr,
                              join_levels_left - 1, sel_levels, st);
  return PartitionTree::MakeInner(join_attr, cut, std::move(left),
                                  std::move(right));
}

}  // namespace

TwoPhasePartitioner::TwoPhasePartitioner(const Schema& schema,
                                         TwoPhaseOptions options)
    : schema_(schema), options_(std::move(options)) {}

Result<PartitionTree> TwoPhasePartitioner::Build(const Reservoir& sample,
                                                 BlockStore* store) {
  if (store == nullptr) return Status::InvalidArgument("null store");
  if (sample.records().empty()) return Status::InvalidArgument("empty sample");
  if (options_.join_attr < 0 || options_.join_attr >= schema_.num_attrs()) {
    return Status::InvalidArgument("join_attr out of range");
  }
  if (options_.join_levels > options_.total_levels) {
    return Status::InvalidArgument("join_levels exceeds total_levels");
  }
  std::vector<AttrId> sel_attrs = options_.selection_attrs;
  if (sel_attrs.empty()) {
    for (AttrId a = 0; a < schema_.num_attrs(); ++a) {
      if (a != options_.join_attr) sel_attrs.push_back(a);
    }
  }
  if (sel_attrs.empty()) sel_attrs.push_back(options_.join_attr);

  std::vector<const Record*> sorted;
  sorted.reserve(sample.records().size());
  for (const Record& r : sample.records()) sorted.push_back(&r);
  const AttrId ja = options_.join_attr;
  std::sort(sorted.begin(), sorted.end(),
            [ja](const Record* a, const Record* b) {
              return (*a)[static_cast<size_t>(ja)] < (*b)[static_cast<size_t>(ja)];
            });

  SelState st{&sel_attrs, {}, Rng(options_.seed), store};
  auto root = BuildJoinPhase(sorted, 0, sorted.size(), ja,
                             options_.join_levels,
                             options_.total_levels - options_.join_levels, &st);
  return PartitionTree(std::move(root), ja, options_.join_levels);
}

}  // namespace adaptdb
