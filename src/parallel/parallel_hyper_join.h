/// \file parallel_hyper_join.h
/// \brief Task-parallel hyper-join driver.
///
/// The hyper-join is embarrassingly parallel by construction (paper §4.1):
/// each grouping group builds one hash table and probes its overlapping S
/// blocks independently. The driver runs one task per group on a
/// work-stealing TaskPool; every task accumulates into its own
/// JoinExecResult and output buffer, and the partials merge in group order
/// — producing the exact output sequence and IoStats of the serial
/// HyperJoin at any thread count.

#ifndef ADAPTDB_PARALLEL_PARALLEL_HYPER_JOIN_H_
#define ADAPTDB_PARALLEL_PARALLEL_HYPER_JOIN_H_

#include <vector>

#include "common/result.h"
#include "exec/exec_config.h"
#include "exec/shuffle_join.h"
#include "join/grouping.h"
#include "join/overlap.h"

namespace adaptdb {

/// Parallel hyper-join: same contract and (deterministically) identical
/// results as the serial HyperJoin.
Result<JoinExecResult> ParallelHyperJoin(
    const BlockStore& r_store, AttrId r_attr, const PredicateSet& r_preds,
    const BlockStore& s_store, AttrId s_attr, const PredicateSet& s_preds,
    const OverlapMatrix& overlap, const Grouping& grouping,
    const ClusterSim& cluster, const ExecConfig& config,
    std::vector<Record>* output = nullptr);

}  // namespace adaptdb

#endif  // ADAPTDB_PARALLEL_PARALLEL_HYPER_JOIN_H_
