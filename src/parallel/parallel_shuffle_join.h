/// \file parallel_shuffle_join.h
/// \brief Task-parallel shuffle-join driver.
///
/// Phase 1 (map side) is morsel-parallel: fixed-size chunks of each
/// relation's blocks are read, filtered and hash-partitioned into per-morsel
/// buckets, which concatenate per destination partition in morsel order —
/// yielding the same per-partition record sequence as the serial executor.
/// Phase 2 runs one build/probe task per destination partition, each with
/// its own counters and output buffer, merged in partition order. Results
/// are therefore identical to the serial ShuffleJoin at any thread count.

#ifndef ADAPTDB_PARALLEL_PARALLEL_SHUFFLE_JOIN_H_
#define ADAPTDB_PARALLEL_PARALLEL_SHUFFLE_JOIN_H_

#include <vector>

#include "common/result.h"
#include "exec/exec_config.h"
#include "exec/shuffle_join.h"

namespace adaptdb {

/// Parallel shuffle join: same contract and (deterministically) identical
/// results as the serial ShuffleJoin.
Result<JoinExecResult> ParallelShuffleJoin(
    const BlockStore& r_store, const std::vector<BlockId>& r_blocks,
    AttrId r_attr, const PredicateSet& r_preds, const BlockStore& s_store,
    const std::vector<BlockId>& s_blocks, AttrId s_attr,
    const PredicateSet& s_preds, const ClusterSim& cluster,
    const ExecConfig& config, std::vector<Record>* output = nullptr);

}  // namespace adaptdb

#endif  // ADAPTDB_PARALLEL_PARALLEL_SHUFFLE_JOIN_H_
