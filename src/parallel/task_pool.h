/// \file task_pool.h
/// \brief Work-stealing task scheduler for the parallel execution engine.
///
/// A TaskPool owns a fixed set of worker threads, each with its own deque:
/// a worker pushes and pops its own deque LIFO (cache-friendly for nested
/// task graphs) and steals FIFO from other workers when its deque drains.
/// Tasks are submitted through a TaskGroup, whose Wait() *helps* — it runs
/// pool tasks while waiting — so a task may submit subtasks and block on
/// them without deadlocking, even on a pool of size 1.
///
/// Determinism contract: the pool makes no ordering guarantees between
/// tasks, so callers that need reproducible results (every driver in
/// src/parallel/) must write into disjoint per-task slots and merge them in
/// task-index order after Wait() returns. The drivers' merge order is the
/// serial execution order, which is what makes parallel results identical
/// to single-threaded ones.

#ifndef ADAPTDB_PARALLEL_TASK_POOL_H_
#define ADAPTDB_PARALLEL_TASK_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace adaptdb {

class TaskPool;

/// \brief A set of tasks whose completion can be awaited as a unit.
///
/// Submit() enqueues a task on the owning pool; Wait() blocks until every
/// submitted task (including ones submitted while waiting) has finished,
/// running queued pool tasks itself in the meantime. The first exception
/// thrown by any task is captured and rethrown from Wait() after all tasks
/// have drained; later exceptions are dropped.
///
/// A TaskGroup may be used from multiple threads, but Wait() must be called
/// before destruction (the destructor waits, swallowing any exception, as a
/// safety net).
class TaskGroup {
 public:
  explicit TaskGroup(TaskPool* pool) : pool_(pool) {}
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues `task`. Safe to call from inside another task of the same
  /// pool (nested submit); such tasks go to the submitting worker's own
  /// deque.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks are done, helping to run pool tasks
  /// while waiting. Rethrows the first captured exception.
  void Wait();

 private:
  friend class TaskPool;

  TaskPool* pool_;
  std::mutex mu_;
  std::condition_variable done_cv_;
  int64_t outstanding_ = 0;
  std::exception_ptr first_error_;
};

/// \brief Fixed-size work-stealing thread pool.
class TaskPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit TaskPool(int32_t num_threads);

  /// Joins all workers. All TaskGroups must have been waited on.
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  int32_t num_threads() const { return static_cast<int32_t>(workers_.size()); }

  /// Runs `body(i)` for every i in [begin, end), distributing iterations
  /// across workers via an atomic claim counter, and blocks until all
  /// complete. Iteration-to-worker assignment is nondeterministic: bodies
  /// must write only to disjoint per-index state. Rethrows the first
  /// exception thrown by any body; remaining iterations claimed by that
  /// worker are skipped.
  void ParallelFor(int64_t begin, int64_t end,
                   const std::function<void(int64_t)>& body);

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group;
  };

  /// One worker's deque. A plain mutex-guarded deque: the owner pops the
  /// back, thieves pop the front. Contention is low (steals only happen on
  /// imbalance) and the locking is trivially race-free under TSan.
  struct WorkerQueue {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  void WorkerLoop(size_t self);
  void Enqueue(Task task);
  /// Pops and runs one queued task; returns false if every deque was empty.
  bool RunOneTask();
  static void Execute(Task* task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex sleep_mu_;
  std::condition_variable work_cv_;
  std::atomic<int64_t> queued_{0};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> next_queue_{0};
};

/// \brief A pool to run on: the shared one when available, otherwise a
/// transient pool owned by the lease.
///
/// Parallel drivers take their pool through this so a Database-owned pool
/// is reused across queries (amortizing thread creation for short queries)
/// while direct executor calls without a shared pool keep working.
class PoolLease {
 public:
  /// Uses `shared` when non-null; otherwise creates a `num_threads` pool
  /// that lives as long as the lease.
  PoolLease(TaskPool* shared, int32_t num_threads)
      : owned_(shared == nullptr ? std::make_unique<TaskPool>(num_threads)
                                 : nullptr),
        pool_(shared != nullptr ? shared : owned_.get()) {}

  TaskPool* get() const { return pool_; }
  TaskPool* operator->() const { return pool_; }

 private:
  std::unique_ptr<TaskPool> owned_;
  TaskPool* pool_;
};

/// \brief Tracks the smallest failing task index of a parallel loop, so
/// later tasks can be cancelled.
///
/// Serial executors abort at the first bad block; without cancellation a
/// parallel driver would run every remaining morsel (each paying real
/// emulated I/O latency) before surfacing the error. Tasks call
/// ShouldRun(i) at the top — false once any task with a *smaller* index
/// has failed — and Record(i) on failure. Tasks before the earliest
/// recorded failure still run, so the merge's first-in-index-order error
/// (the returned status) is exactly the serial executor's.
class FirstFailure {
 public:
  bool ShouldRun(int64_t i) const {
    return i < first_.load(std::memory_order_relaxed);
  }

  void Record(int64_t i) {
    int64_t cur = first_.load(std::memory_order_relaxed);
    while (i < cur &&
           !first_.compare_exchange_weak(cur, i, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<int64_t> first_{INT64_MAX};
};

}  // namespace adaptdb

#endif  // ADAPTDB_PARALLEL_TASK_POOL_H_
