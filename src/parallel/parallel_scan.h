/// \file parallel_scan.h
/// \brief Morsel-parallel scan drivers.
///
/// Blocks are split into fixed-size morsels (ExecConfig::morsel_blocks,
/// independent of thread count) and scanned by a work-stealing TaskPool;
/// each morsel accumulates into its own ScanResult/aggregate slot and the
/// slots merge in morsel order. ParallelScanAggregate applies the morsel
/// decomposition even at num_threads <= 1 (inline, without a pool), so its
/// results — including kSum/kAvg floating-point grouping — are
/// bit-identical at every thread count. Integer counters additionally match
/// the legacy serial executor exactly; double-attribute sums may differ
/// from the legacy single-running-sum path in the last ulp.

#ifndef ADAPTDB_PARALLEL_PARALLEL_SCAN_H_
#define ADAPTDB_PARALLEL_PARALLEL_SCAN_H_

#include <vector>

#include "common/result.h"
#include "exec/exec_config.h"
#include "exec/scan.h"

namespace adaptdb {

/// Parallel ScanBlocks: same contract and results as the serial overload.
Result<ScanResult> ParallelScan(const BlockStore& store,
                                const std::vector<BlockId>& blocks,
                                const PredicateSet& preds,
                                const ClusterSim& cluster,
                                const ExecConfig& config,
                                bool skip_by_ranges = true);

/// Parallel ScanAggregate: same contract as the serial overload (see the
/// file comment for the floating-point caveat on kSum/kAvg).
Result<AggregateResult> ParallelScanAggregate(
    const BlockStore& store, const std::vector<BlockId>& blocks,
    const PredicateSet& preds, const ClusterSim& cluster, AttrId attr,
    AggFn fn, const ExecConfig& config, bool skip_by_ranges = true);

}  // namespace adaptdb

#endif  // ADAPTDB_PARALLEL_PARALLEL_SCAN_H_
