/// \file parallel_scan.h
/// \brief Morsel-parallel scan drivers.
///
/// Blocks are split into fixed-size morsels (ExecConfig::morsel_blocks,
/// independent of thread count) and scanned by a work-stealing TaskPool;
/// each morsel accumulates into its own ScanResult/aggregate slot and the
/// slots merge in morsel order. ParallelScanAggregate applies the morsel
/// decomposition even at num_threads <= 1 (inline, without a pool), so its
/// results — including kSum/kAvg floating-point grouping — are
/// bit-identical at every thread count. Integer counters additionally match
/// the legacy serial executor exactly; double-attribute sums may differ
/// from the legacy single-running-sum path in the last ulp.

#ifndef ADAPTDB_PARALLEL_PARALLEL_SCAN_H_
#define ADAPTDB_PARALLEL_PARALLEL_SCAN_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "exec/exec_config.h"
#include "exec/scan.h"

namespace adaptdb {

/// \brief Morsel decomposition of `blocks` as [lo, hi) index ranges.
///
/// With config.morsel_bytes <= 0 this is the legacy fixed split of
/// morsel_blocks blocks per morsel. With morsel_bytes > 0 *and* a size
/// hint available for every block (BlockStore::SizeBytesHint >= 0),
/// boundaries adapt to block payload instead: each morsel covers at least
/// one block and closes once its accumulated bytes reach morsel_bytes —
/// so skewed block sizes yield balanced work per task. Any unknown hint
/// falls the whole decomposition back to the fixed split (never a mixed
/// scheme), keeping mem-vs-disk parity independent of backend estimates.
/// Either way the result is a pure function of config and block metadata —
/// never of num_threads — so per-morsel floating-point grouping (and hence
/// aggregate results) cannot vary with parallelism.
std::vector<std::pair<int64_t, int64_t>> ComputeMorselRanges(
    const BlockStore& store, const std::vector<BlockId>& blocks,
    const ExecConfig& config);

/// Parallel ScanBlocks: same contract and results as the serial overload.
Result<ScanResult> ParallelScan(const BlockStore& store,
                                const std::vector<BlockId>& blocks,
                                const PredicateSet& preds,
                                const ClusterSim& cluster,
                                const ExecConfig& config,
                                bool skip_by_ranges = true);

/// Parallel ScanAggregate: same contract as the serial overload (see the
/// file comment for the floating-point caveat on kSum/kAvg).
Result<AggregateResult> ParallelScanAggregate(
    const BlockStore& store, const std::vector<BlockId>& blocks,
    const PredicateSet& preds, const ClusterSim& cluster, AttrId attr,
    AggFn fn, const ExecConfig& config, bool skip_by_ranges = true);

}  // namespace adaptdb

#endif  // ADAPTDB_PARALLEL_PARALLEL_SCAN_H_
