#include "parallel/parallel_hyper_join.h"

#include <chrono>
#include <iterator>
#include <utility>

#include "exec/hyper_join.h"
#include "obs/trace.h"
#include "parallel/task_pool.h"

namespace adaptdb {

Result<JoinExecResult> ParallelHyperJoin(
    const BlockStore& r_store, AttrId r_attr, const PredicateSet& r_preds,
    const BlockStore& s_store, AttrId s_attr, const PredicateSet& s_preds,
    const OverlapMatrix& overlap, const Grouping& grouping,
    const ClusterSim& cluster, const ExecConfig& config,
    std::vector<Record>* output) {
  const int64_t num_groups = static_cast<int64_t>(grouping.groups.size());
  const SpillConfig spill = ApplySpillEnv(config.spill);
  if (config.num_threads <= 1 || num_groups <= 1) {
    return HyperJoin(r_store, r_attr, r_preds, s_store, s_attr, s_preds,
                     overlap, grouping, cluster, spill, output);
  }

  // One task per group: each runs the serial executor over a single-group
  // grouping into its own slot, so per-group behavior cannot drift from
  // the serial path.
  struct Partial {
    Status status;
    JoinExecResult result;
    std::vector<Record> rows;
  };
  std::vector<Partial> partials(static_cast<size_t>(num_groups));
  const bool materialize = output != nullptr;
  const auto phase_start = std::chrono::steady_clock::now();
  FirstFailure failed;
  PoolLease pool(config.pool, config.num_threads);
  pool->ParallelFor(0, num_groups, [&](int64_t g) {
    if (!failed.ShouldRun(g)) return;  // Serial would have aborted by here.
    obs::TraceSpan group_span("exec", "hyper_group", "group", g);
    Partial& p = partials[static_cast<size_t>(g)];
    Grouping one;
    one.groups.push_back(grouping.groups[static_cast<size_t>(g)]);
    auto run = HyperJoin(r_store, r_attr, r_preds, s_store, s_attr, s_preds,
                         overlap, one, cluster, spill,
                         materialize ? &p.rows : nullptr);
    if (run.ok()) {
      p.result = std::move(run).ValueOrDie();
    } else {
      p.status = run.status();
      failed.Record(g);
    }
  });

  // Merge in group order: the serial executor processes groups in exactly
  // this order, so the concatenated output sequence is identical.
  JoinExecResult out;
  for (Partial& p : partials) {
    if (!p.status.ok()) return p.status;
    out.counts.Merge(p.result.counts);
    out.r_blocks_read += p.result.r_blocks_read;
    out.s_blocks_read += p.result.s_blocks_read;
    out.s_blocks_skipped += p.result.s_blocks_skipped;
    out.io.Merge(p.result.io);
    if (materialize) {
      output->insert(output->end(), std::make_move_iterator(p.rows.begin()),
                     std::make_move_iterator(p.rows.end()));
    }
  }
  // The per-group partials each carry a serial "build_probe" phase whose
  // walls overlap across workers; replace them with one orchestrator-
  // measured phase so phase walls stay sequential on the calling thread.
  out.phases.push_back(
      {"build_probe",
       std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                     phase_start)
           .count(),
       out.io, static_cast<int64_t>(grouping.groups.size())});
  return out;
}

}  // namespace adaptdb
