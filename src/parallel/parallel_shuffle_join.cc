#include "parallel/parallel_shuffle_join.h"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <utility>

#include "exec/shuffle_kernels.h"
#include "exec/spill.h"
#include "obs/trace.h"
#include "parallel/task_pool.h"

namespace adaptdb {

namespace {

double SecondsSince(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One map morsel's output: filtered row references bucketed by
/// destination partition, plus the I/O the morsel incurred.
struct MapPartial {
  Status status;
  std::vector<std::vector<RowRef>> parts;
  /// Keeps the morsel's blocks resident while `parts` points into them.
  std::vector<BlockRef> pins;
  IoStats io;
  int64_t blocks_read = 0;
};

/// Reads, filters and hash-partitions one fixed-size morsel of `blocks`
/// into `p`. Partials are indexed by morsel, so concatenating them in
/// morsel order reproduces the serial block-order record sequence.
void MapMorsel(const BlockStore& store, const std::vector<BlockId>& blocks,
               AttrId attr, const PredicateSet& preds,
               const ClusterSim& cluster, int32_t num_partitions,
               int64_t morsel, int64_t m, MapPartial* p) {
  p->parts.resize(static_cast<size_t>(num_partitions));
  const int64_t n = static_cast<int64_t>(blocks.size());
  const int64_t lo = m * morsel;
  const int64_t hi = std::min<int64_t>(n, lo + morsel);
  for (int64_t i = lo; i < hi; ++i) {
    const BlockId id = blocks[static_cast<size_t>(i)];
    p->status = shuffle_internal::MapBlock(store, id, attr, preds, cluster,
                                           &p->parts, &p->pins, &p->io);
    if (!p->status.ok()) return;
    ++p->blocks_read;
  }
}

/// Concatenates per-morsel buckets for `partition` in morsel order.
std::vector<RowRef> GatherPartition(
    const std::vector<MapPartial>& partials, size_t partition) {
  size_t total = 0;
  for (const MapPartial& p : partials) total += p.parts[partition].size();
  std::vector<RowRef> out;
  out.reserve(total);
  for (const MapPartial& p : partials) {
    out.insert(out.end(), p.parts[partition].begin(),
               p.parts[partition].end());
  }
  return out;
}

}  // namespace

Result<JoinExecResult> ParallelShuffleJoin(
    const BlockStore& r_store, const std::vector<BlockId>& r_blocks,
    AttrId r_attr, const PredicateSet& r_preds, const BlockStore& s_store,
    const std::vector<BlockId>& s_blocks, AttrId s_attr,
    const PredicateSet& s_preds, const ClusterSim& cluster,
    const ExecConfig& config, std::vector<Record>* output) {
  const SpillConfig spill = ApplySpillEnv(config.spill);
  if (spill.enabled) {
    ExecConfig spilling = config;
    spilling.spill = spill;
    return exec::SpillingShuffleJoin(r_store, r_blocks, r_attr, r_preds,
                                     s_store, s_blocks, s_attr, s_preds,
                                     cluster, spilling, output);
  }
  if (config.num_threads <= 1) {
    return ShuffleJoin(r_store, r_blocks, r_attr, r_preds, s_store, s_blocks,
                       s_attr, s_preds, cluster, output);
  }
  JoinExecResult out;
  const int32_t num_partitions = cluster.num_nodes();
  const int64_t morsel = std::max<int64_t>(1, config.morsel_blocks);
  PoolLease pool(config.pool, config.num_threads);

  // Phase 1: morsel-parallel map-side read + filter + hash partition. The
  // R and S sides are independent, so both run under one ParallelFor (a
  // barrier between them would idle workers at the R-phase tail).
  const int64_t r_morsels =
      (static_cast<int64_t>(r_blocks.size()) + morsel - 1) / morsel;
  const int64_t s_morsels =
      (static_cast<int64_t>(s_blocks.size()) + morsel - 1) / morsel;
  std::vector<MapPartial> r_map(static_cast<size_t>(r_morsels));
  std::vector<MapPartial> s_map(static_cast<size_t>(s_morsels));
  const auto map_start = std::chrono::steady_clock::now();
  FirstFailure failed;
  pool->ParallelFor(0, r_morsels + s_morsels, [&](int64_t m) {
    if (!failed.ShouldRun(m)) return;  // Serial would have aborted by here.
    obs::TraceSpan morsel_span("exec", "shuffle_map_morsel", "morsel", m);
    const MapPartial* p;
    if (m < r_morsels) {
      p = &r_map[static_cast<size_t>(m)];
      MapMorsel(r_store, r_blocks, r_attr, r_preds, cluster, num_partitions,
                morsel, m, &r_map[static_cast<size_t>(m)]);
    } else {
      p = &s_map[static_cast<size_t>(m - r_morsels)];
      MapMorsel(s_store, s_blocks, s_attr, s_preds, cluster, num_partitions,
                morsel, m - r_morsels,
                &s_map[static_cast<size_t>(m - r_morsels)]);
    }
    if (!p->status.ok()) failed.Record(m);
  });
  for (const MapPartial& p : r_map) {
    if (!p.status.ok()) return p.status;
    out.io.Merge(p.io);
    out.r_blocks_read += p.blocks_read;
  }
  for (const MapPartial& p : s_map) {
    if (!p.status.ok()) return p.status;
    out.io.Merge(p.io);
    out.s_blocks_read += p.blocks_read;
  }
  // Every input block's data crosses the shuffle (spill write + remote
  // read), exactly as in the serial executor.
  cluster.ShuffleBlocks(
      static_cast<int64_t>(r_blocks.size() + s_blocks.size()), &out.io);
  // Phase record, measured on the calling thread around the barrier: same
  // name, items and (deterministic) IoStats as the serial executor's.
  out.phases.push_back({"map", SecondsSince(map_start), out.io,
                        out.r_blocks_read + out.s_blocks_read});

  // Phase 2: one build/probe task per destination partition.
  const auto reduce_start = std::chrono::steady_clock::now();
  const IoStats io_after_map = out.io;
  struct ReducePartial {
    JoinCounts counts;
    std::vector<Record> rows;
  };
  std::vector<ReducePartial> reduced(static_cast<size_t>(num_partitions));
  const bool materialize = output != nullptr;
  pool->ParallelFor(0, num_partitions, [&](int64_t part) {
    obs::TraceSpan part_span("exec", "shuffle_reduce_partition", "partition",
                             part);
    ReducePartial& p = reduced[static_cast<size_t>(part)];
    const std::vector<RowRef> r_part =
        GatherPartition(r_map, static_cast<size_t>(part));
    const std::vector<RowRef> s_part =
        GatherPartition(s_map, static_cast<size_t>(part));
    shuffle_internal::BuildProbePartition(r_part, r_attr, s_part, s_attr,
                                          &p.counts,
                                          materialize ? &p.rows : nullptr);
  });

  // Merge in partition order: the serial executor's phase 2 loop order.
  for (ReducePartial& p : reduced) {
    out.counts.Merge(p.counts);
    if (materialize) {
      output->insert(output->end(), std::make_move_iterator(p.rows.begin()),
                     std::make_move_iterator(p.rows.end()));
    }
  }
  out.phases.push_back({"reduce", SecondsSince(reduce_start),
                        out.io.Minus(io_after_map),
                        static_cast<int64_t>(num_partitions)});
  return out;
}

}  // namespace adaptdb
