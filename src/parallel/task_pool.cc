#include "parallel/task_pool.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace adaptdb {

namespace {

// Identifies the pool (and worker slot) the current thread belongs to, so
// nested Submit() lands on the submitting worker's own deque and RunOneTask
// knows which deque to pop LIFO.
thread_local TaskPool* tls_pool = nullptr;
thread_local size_t tls_index = 0;

}  // namespace

TaskGroup::~TaskGroup() {
  try {
    Wait();
  } catch (...) {
    // Wait() was not called by the owner; the error has nowhere to go.
  }
}

void TaskGroup::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++outstanding_;
  }
  pool_->Enqueue(TaskPool::Task{std::move(task), this});
}

void TaskGroup::Wait() {
  for (;;) {
    if (pool_->RunOneTask()) continue;
    std::unique_lock<std::mutex> lk(mu_);
    if (outstanding_ == 0) break;
    // Every deque is empty but tasks of this group are still running on
    // workers. Each completion notifies, and a completing task may have
    // submitted subtasks, so re-scan the deques after every wakeup.
    done_cv_.wait(lk);
    if (outstanding_ == 0) break;
  }
  if (first_error_ != nullptr) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

TaskPool::TaskPool(int32_t num_threads) {
  const size_t n = static_cast<size_t>(std::max<int32_t>(1, num_threads));
  queues_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lk(sleep_mu_);
    stop_.store(true, std::memory_order_relaxed);
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void TaskPool::WorkerLoop(size_t self) {
  tls_pool = this;
  tls_index = self;
  for (;;) {
    if (RunOneTask()) continue;
    std::unique_lock<std::mutex> lk(sleep_mu_);
    {
      obs::ScopedNanos idle(obs::Counter::kWorkerIdleNanos);
      obs::TraceSpan idle_span("task", "worker_idle");
      work_cv_.wait(lk, [this] {
        return queued_.load(std::memory_order_relaxed) > 0 ||
               stop_.load(std::memory_order_relaxed);
      });
    }
    if (stop_.load(std::memory_order_relaxed) &&
        queued_.load(std::memory_order_relaxed) == 0) {
      return;
    }
  }
}

void TaskPool::Enqueue(Task task) {
  size_t target;
  if (tls_pool == this) {
    target = tls_index;  // Nested submit: stay on the submitting worker.
  } else {
    target = next_queue_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  }
  {
    std::lock_guard<std::mutex> lk(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_relaxed);
  // Serialize against a worker that just evaluated the sleep predicate:
  // passing through sleep_mu_ guarantees it is either not yet checking
  // (and will see queued_ > 0) or already blocked (and gets the notify).
  { std::lock_guard<std::mutex> lk(sleep_mu_); }
  work_cv_.notify_one();
}

bool TaskPool::RunOneTask() {
  const size_t n = queues_.size();
  const bool is_worker = tls_pool == this;
  const size_t start = is_worker ? tls_index
                                 : next_queue_.fetch_add(
                                       1, std::memory_order_relaxed) % n;
  for (size_t k = 0; k < n; ++k) {
    const size_t q = (start + k) % n;
    WorkerQueue& wq = *queues_[q];
    Task task;
    {
      std::lock_guard<std::mutex> lk(wq.mu);
      if (wq.tasks.empty()) continue;
      if (is_worker && q == tls_index) {
        task = std::move(wq.tasks.back());  // Own deque: LIFO.
        wq.tasks.pop_back();
      } else {
        task = std::move(wq.tasks.front());  // Steal: FIFO.
        wq.tasks.pop_front();
      }
    }
    queued_.fetch_sub(1, std::memory_order_relaxed);
    // A pop from any deque other than the runner's own is a steal — that
    // covers worker-to-worker steals and helping by Wait()-blocked threads.
    const bool stolen = !is_worker || q != tls_index;
    if (stolen) {
      obs::Count(obs::Counter::kTasksStolen);
    }
    {
      obs::ScopedNanos busy(obs::Counter::kTaskBusyNanos);
      obs::TraceSpan run_span("task", "task_run", "stolen", stolen ? 1 : 0);
      Execute(&task);
    }
    obs::Count(obs::Counter::kTasksExecuted);
    return true;
  }
  return false;
}

void TaskPool::Execute(Task* task) {
  TaskGroup* group = task->group;
  try {
    task->fn();
  } catch (...) {
    std::lock_guard<std::mutex> lk(group->mu_);
    if (group->first_error_ == nullptr) {
      group->first_error_ = std::current_exception();
    }
  }
  {
    std::lock_guard<std::mutex> lk(group->mu_);
    --group->outstanding_;
    // Notify on every completion, not just the last: a waiter may need to
    // re-scan the deques for subtasks this task submitted. Notifying under
    // the lock keeps this safe against the waiter destroying the group the
    // moment outstanding_ hits zero.
    group->done_cv_.notify_all();
  }
}

void TaskPool::ParallelFor(int64_t begin, int64_t end,
                           const std::function<void(int64_t)>& body) {
  if (end <= begin) return;
  const int64_t n = end - begin;
  const int64_t drivers = std::min<int64_t>(n, num_threads());
  if (drivers <= 1) {
    for (int64_t i = begin; i < end; ++i) body(i);
    return;
  }
  std::atomic<int64_t> next{begin};
  TaskGroup group(this);
  for (int64_t d = 0; d < drivers; ++d) {
    group.Submit([&next, end, &body] {
      for (int64_t i = next.fetch_add(1, std::memory_order_relaxed); i < end;
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        body(i);
      }
    });
  }
  group.Wait();
}

}  // namespace adaptdb
