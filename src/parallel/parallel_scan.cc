#include "parallel/parallel_scan.h"

#include <algorithm>

#include "obs/trace.h"
#include "parallel/task_pool.h"

namespace adaptdb {

namespace {

/// Number of fixed-size morsels covering `n` blocks.
int64_t NumMorsels(int64_t n, int64_t morsel) {
  return (n + morsel - 1) / morsel;
}

}  // namespace

Result<ScanResult> ParallelScan(const BlockStore& store,
                                const std::vector<BlockId>& blocks,
                                const PredicateSet& preds,
                                const ClusterSim& cluster,
                                const ExecConfig& config,
                                bool skip_by_ranges) {
  const int64_t n = static_cast<int64_t>(blocks.size());
  const int64_t morsel = std::max<int64_t>(1, config.morsel_blocks);
  const int64_t num_morsels = NumMorsels(n, morsel);
  if (config.num_threads <= 1 || num_morsels <= 1) {
    return ScanBlocks(store, blocks, preds, cluster, skip_by_ranges);
  }

  // Each morsel scans through the serial executor into its own slot; slots
  // merge in morsel order, so counters match the serial path exactly.
  struct Partial {
    Status status;
    ScanResult result;
  };
  std::vector<Partial> partials(static_cast<size_t>(num_morsels));
  FirstFailure failed;
  PoolLease pool(config.pool, config.num_threads);
  pool->ParallelFor(0, num_morsels, [&](int64_t i) {
    if (!failed.ShouldRun(i)) return;  // Serial would have aborted by here.
    obs::TraceSpan morsel_span("exec", "scan_morsel", "morsel", i);
    const int64_t lo = i * morsel;
    const int64_t hi = std::min<int64_t>(n, lo + morsel);
    const std::vector<BlockId> chunk(blocks.begin() + lo, blocks.begin() + hi);
    auto run = ScanBlocks(store, chunk, preds, cluster, skip_by_ranges);
    Partial& p = partials[static_cast<size_t>(i)];
    if (run.ok()) {
      p.result = std::move(run).ValueOrDie();
    } else {
      p.status = run.status();
      failed.Record(i);
    }
  });

  ScanResult out;
  for (const Partial& p : partials) {
    if (!p.status.ok()) return p.status;
    out.rows_matched += p.result.rows_matched;
    out.blocks_read += p.result.blocks_read;
    out.blocks_skipped += p.result.blocks_skipped;
    out.io.Merge(p.result.io);
  }
  return out;
}

Result<AggregateResult> ParallelScanAggregate(
    const BlockStore& store, const std::vector<BlockId>& blocks,
    const PredicateSet& preds, const ClusterSim& cluster, AttrId attr,
    AggFn fn, const ExecConfig& config, bool skip_by_ranges) {
  const int64_t n = static_cast<int64_t>(blocks.size());
  const int64_t morsel = std::max<int64_t>(1, config.morsel_blocks);
  const int64_t num_morsels = NumMorsels(n, morsel);
  if (num_morsels <= 1) {
    return ScanAggregate(store, blocks, preds, cluster, attr, fn,
                         skip_by_ranges);
  }

  // Per-morsel aggregation through the serial executor; kAvg decomposes
  // into per-morsel kSum (an average of averages would be wrong). The
  // morsel decomposition runs even at num_threads <= 1 (inline, no pool),
  // so this entry point's floating-point grouping — and hence its result —
  // is bit-identical at every thread count.
  const AggFn morsel_fn = fn == AggFn::kAvg ? AggFn::kSum : fn;
  struct Partial {
    Status status;
    AggregateResult result;
  };
  std::vector<Partial> partials(static_cast<size_t>(num_morsels));
  FirstFailure failed;
  auto run_morsel = [&](int64_t i) {
    if (!failed.ShouldRun(i)) return;  // Serial would have aborted by here.
    obs::TraceSpan morsel_span("exec", "agg_morsel", "morsel", i);
    const int64_t lo = i * morsel;
    const int64_t hi = std::min<int64_t>(n, lo + morsel);
    const std::vector<BlockId> chunk(blocks.begin() + lo, blocks.begin() + hi);
    auto run = ScanAggregate(store, chunk, preds, cluster, attr, morsel_fn,
                             skip_by_ranges);
    Partial& p = partials[static_cast<size_t>(i)];
    if (run.ok()) {
      p.result = std::move(run).ValueOrDie();
    } else {
      p.status = run.status();
      failed.Record(i);
    }
  };
  if (config.num_threads <= 1) {
    for (int64_t i = 0; i < num_morsels; ++i) run_morsel(i);
  } else {
    PoolLease pool(config.pool, config.num_threads);
    pool->ParallelFor(0, num_morsels, run_morsel);
  }

  AggregateResult out;
  double sum = 0;
  bool have_extreme = false;
  Value extreme;
  for (const Partial& p : partials) {
    if (!p.status.ok()) return p.status;
    out.rows_aggregated += p.result.rows_aggregated;
    out.scan.rows_matched += p.result.scan.rows_matched;
    out.scan.blocks_read += p.result.scan.blocks_read;
    out.scan.blocks_skipped += p.result.scan.blocks_skipped;
    out.scan.io.Merge(p.result.scan.io);
    if (p.result.rows_aggregated == 0) continue;
    switch (fn) {
      case AggFn::kCount:
        break;
      case AggFn::kSum:
      case AggFn::kAvg:
        sum += p.result.value.AsNumeric();
        break;
      case AggFn::kMin:
        if (!have_extreme || p.result.value < extreme) {
          extreme = p.result.value;
        }
        have_extreme = true;
        break;
      case AggFn::kMax:
        if (!have_extreme || extreme < p.result.value) {
          extreme = p.result.value;
        }
        have_extreme = true;
        break;
    }
  }
  switch (fn) {
    case AggFn::kCount:
      out.value = Value(out.rows_aggregated);
      break;
    case AggFn::kSum:
      out.value = Value(sum);
      break;
    case AggFn::kAvg:
      out.value = out.rows_aggregated > 0
                      ? Value(sum / static_cast<double>(out.rows_aggregated))
                      : Value(int64_t{0});
      break;
    case AggFn::kMin:
    case AggFn::kMax:
      out.value = have_extreme ? extreme : Value(int64_t{0});
      break;
  }
  return out;
}

}  // namespace adaptdb
