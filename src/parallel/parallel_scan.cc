#include "parallel/parallel_scan.h"

#include <algorithm>

#include "obs/trace.h"
#include "parallel/task_pool.h"

namespace adaptdb {

std::vector<std::pair<int64_t, int64_t>> ComputeMorselRanges(
    const BlockStore& store, const std::vector<BlockId>& blocks,
    const ExecConfig& config) {
  const int64_t n = static_cast<int64_t>(blocks.size());
  std::vector<std::pair<int64_t, int64_t>> ranges;
  if (n == 0) return ranges;
  if (config.morsel_bytes > 0) {
    // Adaptive split: close a morsel once it has accumulated morsel_bytes
    // of payload (always taking at least one block). Bail out to the fixed
    // split on the first unknown hint — a mixed scheme would make the
    // decomposition backend-dependent.
    ranges.reserve(static_cast<size_t>(n));
    int64_t lo = 0;
    int64_t acc = 0;
    bool hints_ok = true;
    for (int64_t i = 0; i < n; ++i) {
      const int64_t hint =
          store.SizeBytesHint(blocks[static_cast<size_t>(i)]);
      if (hint < 0) {
        hints_ok = false;
        break;
      }
      acc += hint;
      if (acc >= config.morsel_bytes) {
        ranges.emplace_back(lo, i + 1);
        lo = i + 1;
        acc = 0;
      }
    }
    if (hints_ok) {
      if (lo < n) ranges.emplace_back(lo, n);
      return ranges;
    }
    ranges.clear();
  }
  const int64_t morsel = std::max<int64_t>(1, config.morsel_blocks);
  for (int64_t lo = 0; lo < n; lo += morsel) {
    ranges.emplace_back(lo, std::min<int64_t>(n, lo + morsel));
  }
  return ranges;
}

Result<ScanResult> ParallelScan(const BlockStore& store,
                                const std::vector<BlockId>& blocks,
                                const PredicateSet& preds,
                                const ClusterSim& cluster,
                                const ExecConfig& config,
                                bool skip_by_ranges) {
  const auto ranges = ComputeMorselRanges(store, blocks, config);
  const int64_t num_morsels = static_cast<int64_t>(ranges.size());
  if (config.num_threads <= 1 || num_morsels <= 1) {
    return ScanBlocks(store, blocks, preds, cluster, skip_by_ranges);
  }

  // Each morsel scans through the serial executor into its own slot; slots
  // merge in morsel order, so counters match the serial path exactly.
  struct Partial {
    Status status;
    ScanResult result;
  };
  std::vector<Partial> partials(static_cast<size_t>(num_morsels));
  FirstFailure failed;
  PoolLease pool(config.pool, config.num_threads);
  pool->ParallelFor(0, num_morsels, [&](int64_t i) {
    if (!failed.ShouldRun(i)) return;  // Serial would have aborted by here.
    obs::TraceSpan morsel_span("exec", "scan_morsel", "morsel", i);
    const auto [lo, hi] = ranges[static_cast<size_t>(i)];
    const std::vector<BlockId> chunk(blocks.begin() + lo, blocks.begin() + hi);
    auto run = ScanBlocks(store, chunk, preds, cluster, skip_by_ranges);
    Partial& p = partials[static_cast<size_t>(i)];
    if (run.ok()) {
      p.result = std::move(run).ValueOrDie();
    } else {
      p.status = run.status();
      failed.Record(i);
    }
  });

  ScanResult out;
  for (const Partial& p : partials) {
    if (!p.status.ok()) return p.status;
    out.rows_matched += p.result.rows_matched;
    out.blocks_read += p.result.blocks_read;
    out.blocks_skipped += p.result.blocks_skipped;
    out.io.Merge(p.result.io);
  }
  return out;
}

Result<AggregateResult> ParallelScanAggregate(
    const BlockStore& store, const std::vector<BlockId>& blocks,
    const PredicateSet& preds, const ClusterSim& cluster, AttrId attr,
    AggFn fn, const ExecConfig& config, bool skip_by_ranges) {
  const auto ranges = ComputeMorselRanges(store, blocks, config);
  const int64_t num_morsels = static_cast<int64_t>(ranges.size());
  if (num_morsels <= 1) {
    return ScanAggregate(store, blocks, preds, cluster, attr, fn,
                         skip_by_ranges);
  }

  // Per-morsel aggregation through the serial executor; kAvg decomposes
  // into per-morsel kSum (an average of averages would be wrong). The
  // morsel decomposition runs even at num_threads <= 1 (inline, no pool),
  // so this entry point's floating-point grouping — and hence its result —
  // is bit-identical at every thread count.
  const AggFn morsel_fn = fn == AggFn::kAvg ? AggFn::kSum : fn;
  struct Partial {
    Status status;
    AggregateResult result;
  };
  std::vector<Partial> partials(static_cast<size_t>(num_morsels));
  FirstFailure failed;
  auto run_morsel = [&](int64_t i) {
    if (!failed.ShouldRun(i)) return;  // Serial would have aborted by here.
    obs::TraceSpan morsel_span("exec", "agg_morsel", "morsel", i);
    const auto [lo, hi] = ranges[static_cast<size_t>(i)];
    const std::vector<BlockId> chunk(blocks.begin() + lo, blocks.begin() + hi);
    auto run = ScanAggregate(store, chunk, preds, cluster, attr, morsel_fn,
                             skip_by_ranges);
    Partial& p = partials[static_cast<size_t>(i)];
    if (run.ok()) {
      p.result = std::move(run).ValueOrDie();
    } else {
      p.status = run.status();
      failed.Record(i);
    }
  };
  if (config.num_threads <= 1) {
    for (int64_t i = 0; i < num_morsels; ++i) run_morsel(i);
  } else {
    PoolLease pool(config.pool, config.num_threads);
    pool->ParallelFor(0, num_morsels, run_morsel);
  }

  AggregateResult out;
  double sum = 0;
  bool have_extreme = false;
  Value extreme;
  for (const Partial& p : partials) {
    if (!p.status.ok()) return p.status;
    out.rows_aggregated += p.result.rows_aggregated;
    out.scan.rows_matched += p.result.scan.rows_matched;
    out.scan.blocks_read += p.result.scan.blocks_read;
    out.scan.blocks_skipped += p.result.scan.blocks_skipped;
    out.scan.io.Merge(p.result.scan.io);
    if (p.result.rows_aggregated == 0) continue;
    switch (fn) {
      case AggFn::kCount:
        break;
      case AggFn::kSum:
      case AggFn::kAvg:
        sum += p.result.value.AsNumeric();
        break;
      case AggFn::kMin:
        if (!have_extreme || p.result.value < extreme) {
          extreme = p.result.value;
        }
        have_extreme = true;
        break;
      case AggFn::kMax:
        if (!have_extreme || extreme < p.result.value) {
          extreme = p.result.value;
        }
        have_extreme = true;
        break;
    }
  }
  switch (fn) {
    case AggFn::kCount:
      out.value = Value(out.rows_aggregated);
      break;
    case AggFn::kSum:
      out.value = Value(sum);
      break;
    case AggFn::kAvg:
      out.value = out.rows_aggregated > 0
                      ? Value(sum / static_cast<double>(out.rows_aggregated))
                      : Value(int64_t{0});
      break;
    case AggFn::kMin:
    case AggFn::kMax:
      out.value = have_extreme ? extreme : Value(int64_t{0});
      break;
  }
  return out;
}

}  // namespace adaptdb
