/// \file join_planner.h
/// \brief Query planning and execution (paper §5.4, §6 "Query Planner").
///
/// For the first join edge the planner evaluates the §4.2 cost model —
/// estimating C_HyJ by actually running the bottom-up grouping — and picks
/// hyper-join or shuffle join. The three §6 cases (both tables single-tree
/// on the join attribute / one mid-migration / neither partitioned usefully)
/// need no explicit casework: blocks from trees not keyed on the join
/// attribute have wide join-attribute ranges, which densifies the overlap
/// matrix and makes the cost model fall back to shuffling naturally.
///
/// Additional join edges (§4.3) probe dimension tables with the shuffled
/// intermediate result: the dimension's blocks are read once (hyper-join
/// style) and the intermediate is charged shuffle I/O.

#ifndef ADAPTDB_PLANNER_JOIN_PLANNER_H_
#define ADAPTDB_PLANNER_JOIN_PLANNER_H_

#include <string>
#include <vector>

#include "adapt/query.h"
#include "adapt/tree_set.h"
#include "exec/exec_config.h"
#include "exec/shuffle_join.h"
#include "join/cost_model.h"
#include "obs/query_profile.h"
#include "storage/cluster.h"

namespace adaptdb {

/// \brief Planner policy.
struct PlannerConfig {
  CostModelConfig cost_model;
  /// Execution-engine knobs (thread count, morsel size) threaded through to
  /// every scan and join this planner runs.
  ExecConfig exec;
  /// Blocks of the build relation that fit in one worker's memory (B).
  int32_t memory_budget_blocks = 64;
  /// Join strategy override, for baselines and ablations.
  enum class Strategy { kAuto, kForceShuffle, kForceHyper };
  Strategy strategy = Strategy::kAuto;
  /// Full-scan baseline: ignore partitioning trees and read every block.
  bool ignore_partitioning = false;
  /// Record a per-query trace-span tree (obs::QueryProfile): Database
  /// attaches it to QueryRunResult::profile and keeps the last one for
  /// ProfileLastQuery(). Off by default — recording costs two registry
  /// aggregations per span.
  bool collect_profile = false;
};

/// \brief Everything the planner needs to know about one table.
struct TableContext {
  std::string name;
  const Schema* schema = nullptr;
  BlockStore* store = nullptr;
  TreeSet* trees = nullptr;
  /// Pinned tree version this query plans against (Table::Context fills
  /// it). When null — contexts assembled by hand in tests — the planner
  /// falls back to capturing the current snapshot per lookup.
  TreeSnapshotRef snapshot;
};

/// \brief Per-join-edge planning/execution record.
struct EdgeReport {
  std::string left_table;
  std::string right_table;
  bool used_hyper = false;
  JoinChoice choice;
  /// Input block counts after tree pruning.
  int64_t r_blocks = 0;
  int64_t s_blocks = 0;
  /// Actual reads (hyper-join re-reads overlapping S blocks).
  int64_t r_blocks_read = 0;
  int64_t s_blocks_read = 0;
};

/// \brief The result of executing one query.
struct QueryRunResult {
  int64_t output_rows = 0;
  uint64_t checksum = 0;
  IoStats io;
  /// Simulated latency in seconds; filled by Database which also folds in
  /// adaptation I/O.
  double seconds = 0;
  std::vector<EdgeReport> edges;
  /// Blocks scanned on the selection-only path.
  int64_t blocks_scanned = 0;
  /// Adaptation overhead folded into this query by Database (§6 Type-2
  /// blocks): I/O and record count of any repartitioning it triggered.
  IoStats adapt_io;
  int64_t records_repartitioned = 0;
  bool created_tree = false;
  /// The query's trace-span tree; null unless PlannerConfig.collect_profile
  /// was set (filled by Database, not by the planner).
  std::shared_ptr<const obs::QueryProfile> profile;
};

/// \brief Plans and executes queries over simulated distributed storage.
class JoinPlanner {
 public:
  explicit JoinPlanner(PlannerConfig config) : config_(config) {}

  const PlannerConfig& config() const { return config_; }
  PlannerConfig* mutable_config() { return &config_; }

  /// Executes `q` against `tables` (which must include every referenced
  /// table), accounting all I/O against `cluster`, under the planner's own
  /// stored config. Not safe concurrently with mutable_config() writes;
  /// concurrent callers should use the explicit-config overload below.
  Result<QueryRunResult> Execute(const Query& q,
                                 const std::vector<TableContext>& tables,
                                 const ClusterSim& cluster) const {
    return Execute(q, tables, cluster, config_);
  }

  /// Executes `q` under an explicit per-query `config` copy. Touches no
  /// planner state, so any number of threads may run queries through one
  /// JoinPlanner concurrently (Database snapshots its config per query and
  /// calls this).
  Result<QueryRunResult> Execute(const Query& q,
                                 const std::vector<TableContext>& tables,
                                 const ClusterSim& cluster,
                                 const PlannerConfig& config) const {
    return Execute(q, tables, cluster, config, nullptr);
  }

  /// As above, recording prune/scan/join spans into `profile` (may be null
  /// or disabled; the planner's spans become children of whatever span the
  /// caller has open). Only the calling thread touches `profile`.
  Result<QueryRunResult> Execute(const Query& q,
                                 const std::vector<TableContext>& tables,
                                 const ClusterSim& cluster,
                                 const PlannerConfig& config,
                                 obs::ProfileBuilder* profile) const;

 private:
  const TableContext* Find(const std::vector<TableContext>& tables,
                           const std::string& name) const;

  /// Relevant blocks for a table reference under `config`. An unreadable
  /// block's metadata is an error, not a reason to prune it from the plan.
  Result<std::vector<BlockId>> RelevantBlocks(const TableContext& ctx,
                                              const PredicateSet& preds,
                                              const PlannerConfig& config)
      const;

  PlannerConfig config_;
};

}  // namespace adaptdb

#endif  // ADAPTDB_PLANNER_JOIN_PLANNER_H_
