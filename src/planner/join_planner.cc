#include "planner/join_planner.h"

#include <unordered_map>
#include <utility>

#include "exec/hash_join.h"
#include "exec/hyper_join.h"
#include "exec/scan.h"

namespace adaptdb {

namespace {

/// A partially joined set of tables: the concatenated records plus the
/// column offset of each folded-in table.
struct Fragment {
  std::unordered_map<std::string, int32_t> offsets;
  std::vector<Record> rows;
  int32_t width = 0;

  bool Has(const std::string& table) const { return offsets.count(table) > 0; }
};

/// Turns an executor's phase breakdown into child spans of the open
/// "execute" span. Phase walls were measured inside the executor on this
/// same thread, so they stay sequential; summed phase IoStats equal the
/// executor's total, keeping the interior-equals-sum-of-children invariant.
void AttachPhases(obs::ProfileBuilder* profile, const JoinExecResult& exec) {
  if (profile == nullptr) return;
  for (const ExecPhase& phase : exec.phases) {
    obs::ProfileSpan child;
    child.name = phase.name;
    child.wall_seconds = phase.wall_seconds;
    child.io = phase.io;
    child.attrs.emplace_back("items", phase.items);
    profile->AddChildSpan(std::move(child));
  }
}

}  // namespace

const TableContext* JoinPlanner::Find(const std::vector<TableContext>& tables,
                                      const std::string& name) const {
  for (const TableContext& t : tables) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

Result<std::vector<BlockId>> JoinPlanner::RelevantBlocks(
    const TableContext& ctx, const PredicateSet& preds,
    const PlannerConfig& config) const {
  std::vector<BlockId> candidates;
  if (config.ignore_partitioning) {
    candidates = ctx.store->BlockIds();
  } else if (ctx.snapshot != nullptr) {
    // Plan against the tree version pinned when the query started.
    candidates = ctx.snapshot->LookupAll(preds, *ctx.store);
  } else {
    candidates = ctx.trees->LookupAll(preds, *ctx.store);
  }
  // Drained leaves are empty HDFS files awaiting re-fill; reading them is
  // free, so they never enter a plan. RecordCount is directory metadata —
  // pruning never physically reads a block. A metadata *error* propagates:
  // silently dropping the block would return wrong results.
  std::vector<BlockId> out;
  out.reserve(candidates.size());
  for (BlockId b : candidates) {
    auto count = ctx.store->RecordCount(b);
    if (!count.ok()) return count.status();
    if (count.ValueOrDie() > 0) out.push_back(b);
  }
  return out;
}

Result<QueryRunResult> JoinPlanner::Execute(
    const Query& q, const std::vector<TableContext>& tables,
    const ClusterSim& cluster, const PlannerConfig& config,
    obs::ProfileBuilder* profile) const {
  QueryRunResult result;
  for (const TableRef& ref : q.tables) {
    if (Find(tables, ref.table) == nullptr) {
      return Status::NotFound("no table context for '" + ref.table + "'");
    }
  }

  // Selection-only query: prune + scan.
  if (q.joins.empty()) {
    for (const TableRef& ref : q.tables) {
      const TableContext* ctx = Find(tables, ref.table);
      obs::ProfileBuilder::Span prune_span(profile, "prune:" + ref.table);
      auto blocks = RelevantBlocks(*ctx, ref.preds, config);
      if (!blocks.ok()) return blocks.status();
      if (profile != nullptr) {
        profile->AddAttr("blocks",
                         static_cast<int64_t>(blocks.ValueOrDie().size()));
      }
      prune_span.Close();
      obs::ProfileBuilder::Span scan_span(profile, "scan:" + ref.table);
      auto scan = ScanBlocks(*ctx->store, blocks.ValueOrDie(), ref.preds,
                             cluster, config.exec, !config.ignore_partitioning);
      if (!scan.ok()) return scan.status();
      const ScanResult& sr = scan.ValueOrDie();
      result.output_rows += sr.rows_matched;
      result.blocks_scanned += sr.blocks_read;
      result.io.Merge(sr.io);
      if (profile != nullptr) {
        profile->AddIo(sr.io);
        profile->AddAttr("rows", sr.rows_matched);
        profile->AddAttr("blocks_read", sr.blocks_read);
        profile->AddAttr("blocks_skipped", sr.blocks_skipped);
      }
    }
    return result;
  }

  // Average records per block, used to express intermediate-result shuffles
  // in block-equivalents.
  int64_t total_records = 0, total_blocks = 0;
  for (const TableContext& t : tables) {
    total_records += static_cast<int64_t>(t.store->TotalRecords());
    total_blocks += static_cast<int64_t>(t.store->num_blocks());
  }
  const int64_t records_per_block =
      total_blocks > 0 ? std::max<int64_t>(1, total_records / total_blocks)
                       : 1;
  auto block_equivalents = [records_per_block](size_t rows) {
    return static_cast<int64_t>(
        (rows + static_cast<size_t>(records_per_block) - 1) /
        static_cast<size_t>(records_per_block));
  };

  // Fragment-based execution (§4.3): each edge either joins two base
  // tables (new fragment — hyper-join vs shuffle join by cost), folds a
  // base table into an existing fragment (dimension probe; the fragment is
  // shuffled once), or merges two fragments (bushy plans like q8's
  // (lineitem ⋈ part) ⋈ (orders ⋈ customer) — both fragments shuffle).
  std::vector<Fragment> fragments;
  JoinCounts counts;
  const bool single_edge = q.joins.size() == 1;

  auto find_fragment = [&](const std::string& table) -> int32_t {
    for (size_t f = 0; f < fragments.size(); ++f) {
      if (fragments[f].Has(table)) return static_cast<int32_t>(f);
    }
    return -1;
  };

  for (size_t e = 0; e < q.joins.size(); ++e) {
    const JoinSpec& spec = q.joins[e];
    const bool last = (e + 1 == q.joins.size());
    const int32_t lf = find_fragment(spec.left_table);
    const int32_t rf = find_fragment(spec.right_table);

    if (lf < 0 && rf < 0) {
      // Base-table x base-table: the hyper-join vs shuffle-join decision.
      obs::ProfileBuilder::Span edge_span(
          profile, "join:" + spec.left_table + "-" + spec.right_table);
      const TableContext* r_ctx = Find(tables, spec.left_table);
      const TableContext* s_ctx = Find(tables, spec.right_table);
      const PredicateSet& r_preds = q.PredsFor(spec.left_table);
      const PredicateSet& s_preds = q.PredsFor(spec.right_table);
      obs::ProfileBuilder::Span prune_l(profile, "prune:" + spec.left_table);
      auto r_result = RelevantBlocks(*r_ctx, r_preds, config);
      if (!r_result.ok()) return r_result.status();
      if (profile != nullptr) {
        profile->AddAttr("blocks",
                         static_cast<int64_t>(r_result.ValueOrDie().size()));
      }
      prune_l.Close();
      obs::ProfileBuilder::Span prune_r(profile, "prune:" + spec.right_table);
      auto s_result = RelevantBlocks(*s_ctx, s_preds, config);
      if (!s_result.ok()) return s_result.status();
      if (profile != nullptr) {
        profile->AddAttr("blocks",
                         static_cast<int64_t>(s_result.ValueOrDie().size()));
      }
      prune_r.Close();
      const std::vector<BlockId> r_blocks = std::move(r_result).ValueOrDie();
      const std::vector<BlockId> s_blocks = std::move(s_result).ValueOrDie();
      obs::ProfileBuilder::Span overlap_span(profile, "overlap");
      auto overlap = ComputeOverlap(*r_ctx->store, r_blocks, spec.left_attr,
                                    *s_ctx->store, s_blocks, spec.right_attr);
      if (!overlap.ok()) return overlap.status();
      overlap_span.Close();

      EdgeReport edge;
      edge.left_table = spec.left_table;
      edge.right_table = spec.right_table;
      edge.r_blocks = static_cast<int64_t>(r_blocks.size());
      edge.s_blocks = static_cast<int64_t>(s_blocks.size());
      edge.choice = ChooseJoin(overlap.ValueOrDie(),
                               config.memory_budget_blocks,
                               config.cost_model);
      switch (config.strategy) {
        case PlannerConfig::Strategy::kAuto:
          break;
        case PlannerConfig::Strategy::kForceShuffle:
          edge.choice.use_hyper_join = false;
          break;
        case PlannerConfig::Strategy::kForceHyper:
          edge.choice.use_hyper_join = true;
          break;
      }

      Fragment frag;
      std::vector<Record>* out = single_edge && last ? nullptr : &frag.rows;
      JoinExecResult exec;
      if (edge.choice.use_hyper_join) {
        obs::ProfileBuilder::Span grouping_span(profile, "grouping");
        auto grouping = BottomUpGrouping(overlap.ValueOrDie(),
                                         config.memory_budget_blocks);
        if (!grouping.ok()) return grouping.status();
        if (profile != nullptr) {
          profile->AddAttr(
              "groups",
              static_cast<int64_t>(grouping.ValueOrDie().groups.size()));
        }
        grouping_span.Close();
        obs::ProfileBuilder::Span exec_span(profile, "execute");
        auto run = HyperJoin(*r_ctx->store, spec.left_attr, r_preds,
                             *s_ctx->store, spec.right_attr, s_preds,
                             overlap.ValueOrDie(), grouping.ValueOrDie(),
                             cluster, config.exec, out);
        if (!run.ok()) return run.status();
        exec = std::move(run).ValueOrDie();
        edge.used_hyper = true;
        AttachPhases(profile, exec);
        exec_span.Close();
      } else {
        obs::ProfileBuilder::Span exec_span(profile, "execute");
        auto run = ShuffleJoin(*r_ctx->store, r_blocks, spec.left_attr,
                               r_preds, *s_ctx->store, s_blocks,
                               spec.right_attr, s_preds, cluster,
                               config.exec, out);
        if (!run.ok()) return run.status();
        exec = std::move(run).ValueOrDie();
        AttachPhases(profile, exec);
        exec_span.Close();
      }
      edge.r_blocks_read = exec.r_blocks_read;
      edge.s_blocks_read = exec.s_blocks_read;
      result.io.Merge(exec.io);
      result.edges.push_back(edge);
      counts = exec.counts;

      frag.offsets[spec.left_table] = 0;
      frag.offsets[spec.right_table] = r_ctx->schema->num_attrs();
      frag.width = r_ctx->schema->num_attrs() + s_ctx->schema->num_attrs();
      fragments.push_back(std::move(frag));
      continue;
    }

    if (lf >= 0 && rf >= 0) {
      if (lf == rf) {
        return Status::InvalidArgument(
            "join edge " + std::to_string(e) +
            " closes a cycle within one fragment");
      }
      // Fragment x fragment: the bushy merge of §4.3 — both intermediates
      // are shuffled on the join attribute, then hash-joined.
      obs::ProfileBuilder::Span merge_span(
          profile,
          "merge_fragments:" + spec.left_table + "-" + spec.right_table);
      Fragment& left = fragments[static_cast<size_t>(lf)];
      Fragment& right = fragments[static_cast<size_t>(rf)];
      const int32_t l_key = left.offsets.at(spec.left_table) + spec.left_attr;
      const int32_t r_key =
          right.offsets.at(spec.right_table) + spec.right_attr;

      EdgeReport edge;
      edge.left_table = spec.left_table;
      edge.right_table = spec.right_table;
      edge.r_blocks = block_equivalents(left.rows.size());
      edge.s_blocks = block_equivalents(right.rows.size());
      IoStats edge_io;
      cluster.ShuffleBlocks(edge.r_blocks + edge.s_blocks, &edge_io);
      result.io.Merge(edge_io);
      edge.r_blocks_read = edge.r_blocks;
      edge.s_blocks_read = edge.s_blocks;
      if (profile != nullptr) {
        profile->AddIo(edge_io);
        profile->AddAttr("left_rows", static_cast<int64_t>(left.rows.size()));
        profile->AddAttr("right_rows",
                         static_cast<int64_t>(right.rows.size()));
      }

      HashIndex index(r_key);
      index.AddRecords(right.rows, {});
      counts = JoinCounts{};
      std::vector<Record> merged;
      for (const Record& rec : left.rows) {
        index.ProbeRecord(rec, l_key, &counts, last ? nullptr : &merged);
      }
      // Materialized rows are right ++ left.
      Fragment next;
      for (const auto& [name, off] : right.offsets) next.offsets[name] = off;
      for (const auto& [name, off] : left.offsets) {
        next.offsets[name] = off + right.width;
      }
      next.width = left.width + right.width;
      next.rows = std::move(merged);
      fragments[static_cast<size_t>(lf)] = std::move(next);
      fragments.erase(fragments.begin() + rf);
      result.edges.push_back(edge);
      continue;
    }

    // Fragment x base table: fold the dimension in; the fragment crosses
    // the network once (it is shuffled on the new join attribute).
    const bool left_in_frag = lf >= 0;
    Fragment& frag =
        fragments[static_cast<size_t>(left_in_frag ? lf : rf)];
    const std::string& probe_table =
        left_in_frag ? spec.left_table : spec.right_table;
    const std::string& build_table =
        left_in_frag ? spec.right_table : spec.left_table;
    const AttrId probe_attr = left_in_frag ? spec.left_attr : spec.right_attr;
    const AttrId build_attr = left_in_frag ? spec.right_attr : spec.left_attr;
    if (frag.Has(build_table)) {
      return Status::InvalidArgument("table '" + build_table +
                                     "' joined twice");
    }
    obs::ProfileBuilder::Span probe_span(profile,
                                         "probe_dimension:" + build_table);
    const TableContext* d_ctx = Find(tables, build_table);
    if (d_ctx == nullptr) {
      return Status::NotFound("no table context for '" + build_table + "'");
    }
    const PredicateSet& d_preds = q.PredsFor(build_table);
    auto d_result = RelevantBlocks(*d_ctx, d_preds, config);
    if (!d_result.ok()) return d_result.status();
    const std::vector<BlockId> d_blocks = std::move(d_result).ValueOrDie();

    EdgeReport edge;
    edge.left_table = probe_table;
    edge.right_table = build_table;
    edge.r_blocks = block_equivalents(frag.rows.size());
    edge.s_blocks = static_cast<int64_t>(d_blocks.size());

    IoStats edge_io;
    HashIndex index(build_attr);
    std::vector<BlockRef> build_pins;  // Index references the blocks' rows.
    build_pins.reserve(d_blocks.size());
    for (BlockId b : d_blocks) {
      auto blk = d_ctx->store->Get(b);
      if (!blk.ok()) return blk.status();
      build_pins.push_back(blk.ValueOrDie());
      auto node = cluster.Locate(b);
      cluster.ReadBlock(b, node.ok() ? node.ValueOrDie() : 0, &edge_io);
      ++edge.s_blocks_read;
      index.AddBlock(*build_pins.back(), d_preds);
    }
    cluster.ShuffleBlocks(edge.r_blocks, &edge_io);
    result.io.Merge(edge_io);
    edge.r_blocks_read = edge.r_blocks;
    if (profile != nullptr) {
      profile->AddIo(edge_io);
      profile->AddAttr("dimension_blocks", edge.s_blocks_read);
      profile->AddAttr("probe_rows", static_cast<int64_t>(frag.rows.size()));
    }

    const int32_t key_idx = frag.offsets.at(probe_table) + probe_attr;
    counts = JoinCounts{};
    std::vector<Record> next;
    for (const Record& rec : frag.rows) {
      index.ProbeRecord(rec, key_idx, &counts, last ? nullptr : &next);
    }
    // Materialized rows are build ++ probe: shift existing offsets.
    const int32_t d_width = d_ctx->schema->num_attrs();
    for (auto& [name, off] : frag.offsets) off += d_width;
    frag.offsets[build_table] = 0;
    frag.width += d_width;
    frag.rows = std::move(next);
    result.edges.push_back(edge);
  }

  if (fragments.size() != 1) {
    return Status::InvalidArgument(
        "query's join edges leave " + std::to_string(fragments.size()) +
        " disconnected fragments");
  }
  result.output_rows = counts.output_rows;
  result.checksum = counts.checksum;
  return result;
}

}  // namespace adaptdb
