/// \file reservoir.h
/// \brief Reservoir sampling and per-attribute quantile extraction.
///
/// Amoeba (paper §3.1) collects a sample of the raw data and uses it to pick
/// cut points so blocks come out near-equally sized despite skew. AdaptDB's
/// two-phase partitioner additionally sorts the sample on the join attribute
/// and recursively takes medians (§5.1).

#ifndef ADAPTDB_SAMPLE_RESERVOIR_H_
#define ADAPTDB_SAMPLE_RESERVOIR_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "schema/predicate.h"
#include "schema/schema.h"

namespace adaptdb {

/// \brief A bounded uniform sample of records (Vitter's Algorithm R).
class Reservoir {
 public:
  /// Creates a reservoir holding at most `capacity` records.
  Reservoir(size_t capacity, uint64_t seed = 7);

  /// Offers one record to the sample.
  void Add(const Record& rec);

  /// Offers every record in `records`.
  void AddAll(const std::vector<Record>& records);

  /// The sampled records (at most capacity of them).
  const std::vector<Record>& records() const { return sample_; }

  /// Total records offered so far.
  size_t seen() const { return seen_; }

  /// Sorted values of one attribute across the sample.
  std::vector<Value> SortedAttr(AttrId attr) const;

  /// The sample median of one attribute. Returns int64 0 on empty sample.
  Value Median(AttrId attr) const;

  /// The q-quantile (0 <= q <= 1) of one attribute over the sample.
  Value Quantile(AttrId attr, double q) const;

  /// Median of `attr` restricted to sampled records matching `preds`.
  /// Falls back to the unrestricted median when nothing matches.
  Value ConditionalMedian(AttrId attr, const PredicateSet& preds) const;

 private:
  size_t capacity_;
  size_t seen_ = 0;
  Rng rng_;
  std::vector<Record> sample_;
};

/// Returns `k` cut points splitting `sorted` into k+1 near-equal runs
/// (the equi-depth boundaries used for n-way splits).
std::vector<Value> EquiDepthCuts(const std::vector<Value>& sorted, int k);

}  // namespace adaptdb

#endif  // ADAPTDB_SAMPLE_RESERVOIR_H_
