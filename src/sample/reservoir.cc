#include "sample/reservoir.h"

#include <algorithm>

namespace adaptdb {

Reservoir::Reservoir(size_t capacity, uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  sample_.reserve(capacity);
}

void Reservoir::Add(const Record& rec) {
  ++seen_;
  if (sample_.size() < capacity_) {
    sample_.push_back(rec);
    return;
  }
  const uint64_t j = rng_.Uniform(seen_);
  if (j < capacity_) sample_[j] = rec;
}

void Reservoir::AddAll(const std::vector<Record>& records) {
  for (const Record& r : records) Add(r);
}

std::vector<Value> Reservoir::SortedAttr(AttrId attr) const {
  std::vector<Value> vals;
  vals.reserve(sample_.size());
  for (const Record& r : sample_) vals.push_back(r[static_cast<size_t>(attr)]);
  std::sort(vals.begin(), vals.end());
  return vals;
}

Value Reservoir::Median(AttrId attr) const { return Quantile(attr, 0.5); }

Value Reservoir::Quantile(AttrId attr, double q) const {
  std::vector<Value> vals = SortedAttr(attr);
  if (vals.empty()) return Value(int64_t{0});
  q = std::clamp(q, 0.0, 1.0);
  size_t idx = static_cast<size_t>(q * static_cast<double>(vals.size()));
  if (idx >= vals.size()) idx = vals.size() - 1;
  return vals[idx];
}

Value Reservoir::ConditionalMedian(AttrId attr,
                                   const PredicateSet& preds) const {
  std::vector<Value> vals;
  for (const Record& r : sample_) {
    if (MatchesAll(preds, r)) vals.push_back(r[static_cast<size_t>(attr)]);
  }
  if (vals.empty()) return Median(attr);
  std::sort(vals.begin(), vals.end());
  return vals[vals.size() / 2];
}

std::vector<Value> EquiDepthCuts(const std::vector<Value>& sorted, int k) {
  std::vector<Value> cuts;
  if (sorted.empty() || k <= 0) return cuts;
  cuts.reserve(static_cast<size_t>(k));
  for (int i = 1; i <= k; ++i) {
    size_t idx = static_cast<size_t>(
        static_cast<double>(i) / (k + 1) * static_cast<double>(sorted.size()));
    if (idx >= sorted.size()) idx = sorted.size() - 1;
    cuts.push_back(sorted[idx]);
  }
  return cuts;
}

}  // namespace adaptdb
