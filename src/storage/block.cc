#include "storage/block.h"

#include <cassert>
#include <numeric>
#include <utility>

namespace adaptdb {

Block::Block(BlockId id, int32_t num_attrs)
    : id_(id),
      num_attrs_(num_attrs),
      cols_(static_cast<size_t>(num_attrs)),
      ranges_(static_cast<size_t>(num_attrs)) {}

void Block::Add(const Record& rec) {
  assert(rec.size() == static_cast<size_t>(num_attrs_));
  if (!ranges_initialized_) {
    for (int32_t a = 0; a < num_attrs_; ++a) {
      ranges_[static_cast<size_t>(a)] = ValueRange{rec[static_cast<size_t>(a)],
                                                   rec[static_cast<size_t>(a)]};
    }
    ranges_initialized_ = true;
  } else {
    for (int32_t a = 0; a < num_attrs_; ++a) {
      ranges_[static_cast<size_t>(a)].Extend(rec[static_cast<size_t>(a)]);
    }
  }
  for (int32_t a = 0; a < num_attrs_; ++a) {
    cols_[static_cast<size_t>(a)].Append(rec[static_cast<size_t>(a)]);
  }
  ++num_rows_;
}

Record Block::GatherRecord(size_t row) const {
  Record out;
  out.reserve(static_cast<size_t>(num_attrs_));
  AppendRowTo(row, &out);
  return out;
}

void Block::GatherRecord(size_t row, Record* out) const {
  out->clear();
  out->reserve(static_cast<size_t>(num_attrs_));
  AppendRowTo(row, out);
}

void Block::AppendRowTo(size_t row, Record* out) const {
  for (const Column& c : cols_) c.AppendTo(out, row);
}

std::vector<Record> Block::MaterializeRecords() const {
  std::vector<Record> out;
  out.reserve(num_rows_);
  for (size_t row = 0; row < num_rows_; ++row) {
    out.push_back(GatherRecord(row));
  }
  return out;
}

SelectionVector Block::FilterRows(const PredicateSet& preds) const {
  SelectionVector sel;
  if (num_rows_ == 0) return sel;
  if (preds.empty()) {
    sel.resize(num_rows_);
    std::iota(sel.begin(), sel.end(), 0u);
    return sel;
  }
  // First predicate seeds the selection from its column alone; the rest
  // narrow it, so each further predicate touches only surviving rows.
  {
    const Predicate& p = preds.front();
    const Column& c = cols_[static_cast<size_t>(p.attr)];
    sel.reserve(num_rows_);
    for (size_t row = 0; row < num_rows_; ++row) {
      if (c.MatchesAt(p, row)) sel.push_back(static_cast<uint32_t>(row));
    }
  }
  for (size_t i = 1; i < preds.size() && !sel.empty(); ++i) {
    FilterColumn(preds[i], cols_[static_cast<size_t>(preds[i].attr)], &sel);
  }
  return sel;
}

size_t Block::CountMatches(const PredicateSet& preds) const {
  if (preds.empty()) return num_rows_;
  if (preds.size() == 1) {
    const Predicate& p = preds.front();
    const Column& c = cols_[static_cast<size_t>(p.attr)];
    size_t n = 0;
    for (size_t row = 0; row < num_rows_; ++row) {
      if (c.MatchesAt(p, row)) ++n;
    }
    return n;
  }
  return FilterRows(preds).size();
}

int64_t Block::SizeBytes() const {
  int64_t bytes = 0;
  for (const Column& c : cols_) bytes += c.SizeBytes();
  return bytes;
}

void Block::ClearRecords() {
  for (Column& c : cols_) c.Clear();
  num_rows_ = 0;
  ranges_.assign(static_cast<size_t>(num_attrs_), ValueRange{});
  ranges_initialized_ = false;
}

std::string Block::ToString() const {
  return "Block{id=" + std::to_string(id_) +
         ", records=" + std::to_string(num_rows_) + "}";
}

Result<Block> Block::FromColumns(BlockId id, std::vector<Column> cols,
                                 size_t num_records) {
  Block block(id, static_cast<int32_t>(cols.size()));
  for (size_t a = 0; a < cols.size(); ++a) {
    if (cols[a].size() != num_records) {
      return Status::Corruption(
          "column " + std::to_string(a) + " holds " +
          std::to_string(cols[a].size()) + " values, block declares " +
          std::to_string(num_records) + " records");
    }
  }
  block.cols_ = std::move(cols);
  block.num_rows_ = num_records;
  // Ranges are a pure function of each column's values; rebuilding them
  // from the columns reproduces the incrementally-extended originals.
  if (num_records > 0) {
    for (size_t a = 0; a < block.cols_.size(); ++a) {
      const Column& c = block.cols_[a];
      ValueRange r{c.ValueAt(0), c.ValueAt(0)};
      for (size_t row = 1; row < num_records; ++row) {
        r.Extend(c.ValueAt(row));
      }
      block.ranges_[a] = std::move(r);
    }
    block.ranges_initialized_ = true;
  }
  return block;
}

}  // namespace adaptdb
