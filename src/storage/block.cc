#include "storage/block.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <utility>

#include "exec/kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace adaptdb {

namespace {

/// Relative cost of evaluating one predicate against a column, by
/// representation: int64 compares (0) beat double compares (1) beat
/// dictionary code compares (2) beat per-row string compares (3) beat
/// the mixed per-Value fallback (4). Used to pick which predicate seeds
/// the selection vector — the seed pays a full-column sweep, so it
/// should be the cheapest and every later predicate only touches its
/// survivors.
int PredicateCostRank(const Column& col) {
  if (!col.typed() || col.mixed()) return 4;
  if (col.dict_coded()) return 2;
  switch (col.type()) {
    case DataType::kInt64:
      return 0;
    case DataType::kDouble:
      return 1;
    case DataType::kString:
      return 3;
  }
  return 4;
}

}  // namespace

Block::Block(BlockId id, int32_t num_attrs)
    : id_(id),
      num_attrs_(num_attrs),
      cols_(static_cast<size_t>(num_attrs)),
      ranges_(static_cast<size_t>(num_attrs)) {}

void Block::Add(const Record& rec) {
  assert(rec.size() == static_cast<size_t>(num_attrs_));
  if (!ranges_initialized_) {
    for (int32_t a = 0; a < num_attrs_; ++a) {
      ranges_[static_cast<size_t>(a)] = ValueRange{rec[static_cast<size_t>(a)],
                                                   rec[static_cast<size_t>(a)]};
    }
    ranges_initialized_ = true;
  } else {
    for (int32_t a = 0; a < num_attrs_; ++a) {
      ranges_[static_cast<size_t>(a)].Extend(rec[static_cast<size_t>(a)]);
    }
  }
  for (int32_t a = 0; a < num_attrs_; ++a) {
    cols_[static_cast<size_t>(a)].Append(rec[static_cast<size_t>(a)]);
  }
  ++num_rows_;
}

Record Block::GatherRecord(size_t row) const {
  Record out;
  out.reserve(static_cast<size_t>(num_attrs_));
  AppendRowTo(row, &out);
  return out;
}

void Block::GatherRecord(size_t row, Record* out) const {
  out->clear();
  out->reserve(static_cast<size_t>(num_attrs_));
  AppendRowTo(row, out);
}

void Block::AppendRowTo(size_t row, Record* out) const {
  for (const Column& c : cols_) c.AppendTo(out, row);
}

std::vector<Record> Block::MaterializeRecords() const {
  std::vector<Record> out;
  out.reserve(num_rows_);
  for (size_t row = 0; row < num_rows_; ++row) {
    out.push_back(GatherRecord(row));
  }
  return out;
}

std::vector<uint32_t> Block::OrderPredicates(const PredicateSet& preds) const {
  // Evaluation order of a conjunction never changes the result set, and
  // the output stays row-ascending regardless of order: the seed sweep
  // emits rows in ascending order and every refine preserves the relative
  // order of its survivors. So we are free to let the cheapest column
  // representation (int64 < double < dict-string < plain-string < mixed)
  // pay the full-column seed sweep and give the pricier predicates the
  // already-narrowed selection.
  std::vector<uint32_t> order(preds.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](uint32_t a, uint32_t b) {
                     return PredicateCostRank(
                                cols_[static_cast<size_t>(preds[a].attr)]) <
                            PredicateCostRank(
                                cols_[static_cast<size_t>(preds[b].attr)]);
                   });
  return order;
}

SelectionVector Block::FilterRows(const PredicateSet& preds) const {
  SelectionVector sel;
  if (num_rows_ == 0) return sel;
  if (preds.empty()) {
    sel.resize(num_rows_);
    std::iota(sel.begin(), sel.end(), 0u);
    return sel;
  }
  const bool tracing = obs::Tracer::Enabled();
  const int64_t t0 = tracing ? obs::Tracer::NowNanos() : 0;
  const bool use_kernels = kernels::Enabled();
  const std::vector<uint32_t> order = OrderPredicates(preds);
  int64_t kernel_preds = 0;
  int64_t fallback_preds = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    const Predicate& p = preds[order[i]];
    const Column& c = cols_[static_cast<size_t>(p.attr)];
    if (i > 0 && sel.empty()) break;
    const bool kernel = use_kernels && kernels::Supported(c, p);
    kernel_preds += kernel ? 1 : 0;
    fallback_preds += kernel ? 0 : 1;
    if (i == 0) {
      if (kernel) {
        kernels::FilterFull(p, c, &sel);
      } else {
        sel.reserve(num_rows_);
        for (size_t row = 0; row < num_rows_; ++row) {
          if (c.MatchesAt(p, row)) sel.push_back(static_cast<uint32_t>(row));
        }
      }
    } else if (kernel) {
      kernels::FilterRefine(p, c, &sel);
    } else {
      FilterColumn(p, c, &sel);
    }
  }
  obs::Count(obs::Counter::kKernelFilters, kernel_preds);
  obs::Count(obs::Counter::kFilterFallbacks, fallback_preds);
  if (tracing) {
    const int64_t t1 = obs::Tracer::NowNanos();
    obs::Tracer::Complete(
        "exec", fallback_preds == 0 ? "filter_kernel" : "filter_fallback",
        t0, t1 - t0, "kernel_preds", kernel_preds);
  }
  return sel;
}

size_t Block::CountMatches(const PredicateSet& preds) const {
  if (preds.empty()) return num_rows_;
  if (num_rows_ == 0) return 0;
  const bool use_kernels = kernels::Enabled();
  // Single predicate: count directly, no selection vector at all.
  if (preds.size() == 1) {
    const Predicate& p = preds.front();
    const Column& c = cols_[static_cast<size_t>(p.attr)];
    if (use_kernels && kernels::Supported(c, p)) {
      obs::Count(obs::Counter::kKernelFilters);
      return kernels::CountFull(p, c);
    }
    obs::Count(obs::Counter::kFilterFallbacks);
    size_t n = 0;
    for (size_t row = 0; row < num_rows_; ++row) {
      if (c.MatchesAt(p, row)) ++n;
    }
    return n;
  }
  // Conjunction: the cheapest predicate seeds a selection, the middle
  // ones refine it, and the last one is counted over the surviving rows
  // without materializing the final narrowing.
  const std::vector<uint32_t> order = OrderPredicates(preds);
  SelectionVector sel;
  int64_t kernel_preds = 0;
  int64_t fallback_preds = 0;
  size_t count = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    const Predicate& p = preds[order[i]];
    const Column& c = cols_[static_cast<size_t>(p.attr)];
    if (i > 0 && sel.empty()) {
      count = 0;
      break;
    }
    const bool kernel = use_kernels && kernels::Supported(c, p);
    kernel_preds += kernel ? 1 : 0;
    fallback_preds += kernel ? 0 : 1;
    const bool last = i + 1 == order.size();
    if (i == 0) {
      if (kernel) {
        kernels::FilterFull(p, c, &sel);
      } else {
        sel.reserve(num_rows_);
        for (size_t row = 0; row < num_rows_; ++row) {
          if (c.MatchesAt(p, row)) sel.push_back(static_cast<uint32_t>(row));
        }
      }
      count = sel.size();
    } else if (!last) {
      if (kernel) {
        kernels::FilterRefine(p, c, &sel);
      } else {
        FilterColumn(p, c, &sel);
      }
      count = sel.size();
    } else {
      if (kernel) {
        count = kernels::CountRefine(p, c, sel);
      } else {
        count = 0;
        for (const uint32_t row : sel) {
          if (c.MatchesAt(p, row)) ++count;
        }
      }
    }
  }
  obs::Count(obs::Counter::kKernelFilters, kernel_preds);
  obs::Count(obs::Counter::kFilterFallbacks, fallback_preds);
  return count;
}

int64_t Block::SizeBytes() const {
  int64_t bytes = 0;
  for (const Column& c : cols_) bytes += c.SizeBytes();
  return bytes;
}

void Block::ClearRecords() {
  for (Column& c : cols_) c.Clear();
  num_rows_ = 0;
  ranges_.assign(static_cast<size_t>(num_attrs_), ValueRange{});
  ranges_initialized_ = false;
}

std::string Block::ToString() const {
  return "Block{id=" + std::to_string(id_) +
         ", records=" + std::to_string(num_rows_) + "}";
}

Result<Block> Block::FromColumns(BlockId id, std::vector<Column> cols,
                                 size_t num_records) {
  Block block(id, static_cast<int32_t>(cols.size()));
  for (size_t a = 0; a < cols.size(); ++a) {
    if (cols[a].size() != num_records) {
      return Status::Corruption(
          "column " + std::to_string(a) + " holds " +
          std::to_string(cols[a].size()) + " values, block declares " +
          std::to_string(num_records) + " records");
    }
  }
  block.cols_ = std::move(cols);
  block.num_rows_ = num_records;
  // Ranges are a pure function of each column's values; MinMaxInto
  // reproduces the incrementally-extended originals bitwise without
  // materializing a Value per row.
  if (num_records > 0) {
    for (size_t a = 0; a < block.cols_.size(); ++a) {
      block.cols_[a].MinMaxInto(&block.ranges_[a]);
    }
    block.ranges_initialized_ = true;
  }
  return block;
}

}  // namespace adaptdb
