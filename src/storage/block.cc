#include "storage/block.h"

namespace adaptdb {

Block::Block(BlockId id, int32_t num_attrs)
    : id_(id), num_attrs_(num_attrs), ranges_(static_cast<size_t>(num_attrs)) {}

void Block::Add(const Record& rec) {
  if (!ranges_initialized_) {
    for (int32_t a = 0; a < num_attrs_; ++a) {
      ranges_[static_cast<size_t>(a)] = ValueRange{rec[static_cast<size_t>(a)],
                                                   rec[static_cast<size_t>(a)]};
    }
    ranges_initialized_ = true;
  } else {
    for (int32_t a = 0; a < num_attrs_; ++a) {
      ranges_[static_cast<size_t>(a)].Extend(rec[static_cast<size_t>(a)]);
    }
  }
  records_.push_back(rec);
}

void Block::ClearRecords() {
  records_.clear();
  ranges_.assign(static_cast<size_t>(num_attrs_), ValueRange{});
  ranges_initialized_ = false;
}

std::string Block::ToString() const {
  return "Block{id=" + std::to_string(id_) +
         ", records=" + std::to_string(records_.size()) + "}";
}

}  // namespace adaptdb
