/// \file block_store.h
/// \brief Per-table block container with stable identifiers.

#ifndef ADAPTDB_STORAGE_BLOCK_STORE_H_
#define ADAPTDB_STORAGE_BLOCK_STORE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/block.h"

namespace adaptdb {

/// \brief Owns the blocks of one table. Blocks are created, looked up and
/// deleted by id; ids are never reused, mirroring append-only HDFS files.
///
/// Thread safety: the const read path (Get const, GetOrNull, Contains,
/// BlockIds, num_blocks, TotalRecords) is safe to call concurrently from
/// many threads as long as no thread mutates the store (CreateBlock,
/// Delete, or writes through a non-const Block*). The parallel execution
/// engine relies on this: during query execution blocks are immutable.
class BlockStore {
 public:
  /// Creates a store for records with `num_attrs` attributes.
  explicit BlockStore(int32_t num_attrs) : num_attrs_(num_attrs) {}

  /// Allocates a fresh empty block and returns its id.
  BlockId CreateBlock();

  /// Fetches a block by id.
  Result<Block*> Get(BlockId id);
  /// Fetches a block by id (const).
  Result<const Block*> Get(BlockId id) const;

  /// Single-lookup fast path for hot loops: the block, or nullptr when `id`
  /// is not live. No Status/Result construction on either path.
  const Block* GetOrNull(BlockId id) const {
    auto it = blocks_.find(id);
    return it == blocks_.end() ? nullptr : it->second.get();
  }

  /// True iff `id` names a live block.
  bool Contains(BlockId id) const {
    return blocks_.find(id) != blocks_.end();
  }

  /// Deletes a block (after migration to another tree).
  Status Delete(BlockId id);

  /// Ids of all live blocks, ascending.
  std::vector<BlockId> BlockIds() const;

  /// Number of live blocks.
  size_t num_blocks() const { return blocks_.size(); }

  /// Total records across live blocks.
  size_t TotalRecords() const;

  /// Attribute count blocks are created with.
  int32_t num_attrs() const { return num_attrs_; }

 private:
  int32_t num_attrs_;
  BlockId next_id_ = 0;
  std::unordered_map<BlockId, std::unique_ptr<Block>> blocks_;
};

}  // namespace adaptdb

#endif  // ADAPTDB_STORAGE_BLOCK_STORE_H_
