/// \file block_store.h
/// \brief Per-table block container with stable identifiers.
///
/// BlockStore is the abstract read/write surface the whole system executes
/// against. Two implementations exist:
///   - MemBlockStore (this file): a pure in-memory map, the original
///     simulator backend.
///   - DiskBlockStore (io/disk_block_store.h): file-backed blocks behind a
///     BufferPool, so "reading a block" is a real pread on a miss.
///
/// Access returns pinned references. A BlockRef is a shared handle: holding
/// it keeps the block alive (and, for the disk store, resident — the buffer
/// pool never frees a pinned block). Callers that stash raw Record pointers
/// into hash indexes must keep the corresponding BlockRefs alive for the
/// index's lifetime.

#ifndef ADAPTDB_STORAGE_BLOCK_STORE_H_
#define ADAPTDB_STORAGE_BLOCK_STORE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/block.h"

namespace adaptdb {

/// A pinned, read-only reference to a block. Valid as long as it is held;
/// copying shares the pin.
using BlockRef = std::shared_ptr<const Block>;

/// A pinned, mutable reference to a block. Obtaining one marks the block
/// dirty in buffered stores. Mutation is single-threaded by contract (see
/// the thread-safety note below).
using MutableBlockRef = std::shared_ptr<Block>;

/// \brief Storage-backend counters: buffer-pool hits/misses and physical
/// block writes. All zero for the in-memory store.
struct StorageCounters {
  /// Block accesses served from the buffer pool.
  int64_t buffer_hits = 0;
  /// Block accesses that required a real read from storage.
  int64_t buffer_misses = 0;
  /// Blocks physically written back to storage.
  int64_t physical_block_writes = 0;
  /// Read ops submitted through the store's AsyncIo backend (prefetch).
  int64_t async_reads = 0;
  /// High-water mark of in-flight async reads on the store's backend.
  int64_t async_inflight_peak = 0;
};

/// \brief Owns the blocks of one table. Blocks are created, looked up and
/// deleted by id; ids are never reused, mirroring append-only HDFS files.
///
/// Thread safety: the read path (Get, GetOrNull, Contains, BlockIds,
/// num_blocks, TotalRecords) is safe to call concurrently from many threads
/// as long as no thread mutates the store (CreateBlock, Delete, GetMutable,
/// or writes through a MutableBlockRef). The parallel execution engine
/// relies on this: during query execution blocks are immutable.
class BlockStore {
 public:
  /// Creates a store for records with `num_attrs` attributes.
  explicit BlockStore(int32_t num_attrs) : num_attrs_(num_attrs) {}
  virtual ~BlockStore() = default;

  BlockStore(const BlockStore&) = delete;
  BlockStore& operator=(const BlockStore&) = delete;

  /// Allocates a fresh empty block and returns its id.
  virtual BlockId CreateBlock() = 0;

  /// Fetches (and pins) a block by id. NotFound when `id` is not live;
  /// disk-backed stores may also surface I/O or corruption errors.
  virtual Result<BlockRef> Get(BlockId id) const = 0;

  /// Fetches (and pins) a block for mutation. Buffered stores mark the
  /// block dirty; it is written back on eviction or Flush.
  virtual Result<MutableBlockRef> GetMutable(BlockId id) = 0;

  /// Convenience wrapper that collapses every failure — NotFound, but also
  /// I/O errors and corruption on disk-backed stores — to nullptr. Use Get
  /// on production paths (the executors all do) so storage errors
  /// propagate; this survives mainly for tests and ad-hoc probing.
  virtual BlockRef GetOrNull(BlockId id) const {
    auto r = Get(id);
    return r.ok() ? std::move(r).ValueOrDie() : nullptr;
  }

  /// True iff `id` names a live block.
  virtual bool Contains(BlockId id) const = 0;

  /// Number of records in block `id` — O(1) metadata on both backends
  /// (the disk store answers from its directory without reading the
  /// payload). NotFound when `id` is not live. Planners and the adaptive
  /// optimizer use this to size/prune without incurring physical reads.
  virtual Result<size_t> RecordCount(BlockId id) const = 0;

  /// Metadata-only block skipping: could block `id` contain a record
  /// matching `preds`? Equivalent to Get(id)->MayMatch(preds) but never
  /// performs physical I/O — the disk store answers from the resident copy
  /// or from the per-attribute ranges recorded in its directory at
  /// write-back, so executors can skip (or decline to prefetch) a block
  /// without pinning it. Conservative: returns true when `id` is unknown
  /// or no range metadata is available; empty blocks never match (the
  /// Block::MayMatch contract).
  virtual bool MayMatchMeta(BlockId id, const PredicateSet& preds) const = 0;

  /// Scan read-ahead: loads `ids` into the block cache ahead of their
  /// consumption, returning how many were actually fetched from storage.
  /// A no-op (returning 0) for the in-memory store. Load failures are
  /// swallowed — the consumer's Get surfaces them. Backends may cap the
  /// batch below their cache budget to avoid evicting blocks ahead of use.
  virtual int64_t Prefetch(const std::vector<BlockId>& ids) const {
    (void)ids;
    return 0;
  }

  /// True iff Prefetch can ever fetch anything — executors skip assembling
  /// read-ahead batches (and their metadata filtering) entirely when not.
  virtual bool CanPrefetch() const { return false; }

  /// Approximate in-memory size of block `id` in bytes, answered from
  /// metadata only (never performs I/O). -1 when the backend cannot say
  /// without reading the block. Used by adaptive morsel sizing; callers
  /// must fall back to count-based decomposition on -1 so mem-vs-disk
  /// parity never depends on backend-specific size estimates.
  virtual int64_t SizeBytesHint(BlockId id) const {
    (void)id;
    return -1;
  }

  /// Deletes a block (after migration to another tree). Buffered stores
  /// drop the block without writing it back.
  virtual Status Delete(BlockId id) = 0;

  /// Ids of all live blocks, ascending.
  virtual std::vector<BlockId> BlockIds() const = 0;

  /// Number of live blocks.
  virtual size_t num_blocks() const = 0;

  /// Total records across live blocks.
  virtual size_t TotalRecords() const = 0;

  /// Writes all dirty state through to durable storage. No-op for the
  /// in-memory store.
  virtual Status Flush() { return Status::OK(); }

  /// Cumulative backend counters (zeros for the in-memory store).
  virtual StorageCounters counters() const { return {}; }

  /// Attribute count blocks are created with.
  int32_t num_attrs() const { return num_attrs_; }

 private:
  int32_t num_attrs_;
};

/// \brief The in-memory BlockStore: a hashmap of blocks, every access free.
class MemBlockStore final : public BlockStore {
 public:
  explicit MemBlockStore(int32_t num_attrs) : BlockStore(num_attrs) {}

  BlockId CreateBlock() override;
  Result<BlockRef> Get(BlockId id) const override;
  Result<MutableBlockRef> GetMutable(BlockId id) override;

  /// In-memory override: a map lookup plus one refcount bump (the only
  /// possible failure here is NotFound, so nothing is swallowed).
  BlockRef GetOrNull(BlockId id) const override {
    auto it = blocks_.find(id);
    return it == blocks_.end() ? nullptr : it->second;
  }

  bool Contains(BlockId id) const override {
    return blocks_.find(id) != blocks_.end();
  }

  Result<size_t> RecordCount(BlockId id) const override;

  bool MayMatchMeta(BlockId id, const PredicateSet& preds) const override {
    auto it = blocks_.find(id);
    return it == blocks_.end() || it->second->MayMatch(preds);
  }

  int64_t SizeBytesHint(BlockId id) const override {
    auto it = blocks_.find(id);
    return it == blocks_.end() ? -1
                               : static_cast<int64_t>(it->second->SizeBytes());
  }

  Status Delete(BlockId id) override;
  std::vector<BlockId> BlockIds() const override;
  size_t num_blocks() const override { return blocks_.size(); }
  size_t TotalRecords() const override;

 private:
  BlockId next_id_ = 0;
  std::unordered_map<BlockId, std::shared_ptr<Block>> blocks_;
};

}  // namespace adaptdb

#endif  // ADAPTDB_STORAGE_BLOCK_STORE_H_
