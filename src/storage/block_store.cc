#include "storage/block_store.h"

#include <algorithm>

namespace adaptdb {

BlockId BlockStore::CreateBlock() {
  const BlockId id = next_id_++;
  blocks_.emplace(id, std::make_unique<Block>(id, num_attrs_));
  return id;
}

Result<Block*> BlockStore::Get(BlockId id) {
  auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    return Status::NotFound("block " + std::to_string(id));
  }
  return it->second.get();
}

Result<const Block*> BlockStore::Get(BlockId id) const {
  const Block* blk = GetOrNull(id);
  if (blk == nullptr) {
    return Status::NotFound("block " + std::to_string(id));
  }
  return blk;
}

Status BlockStore::Delete(BlockId id) {
  if (blocks_.erase(id) == 0) {
    return Status::NotFound("block " + std::to_string(id));
  }
  return Status::OK();
}

std::vector<BlockId> BlockStore::BlockIds() const {
  std::vector<BlockId> ids;
  ids.reserve(blocks_.size());
  for (const auto& [id, _] : blocks_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

size_t BlockStore::TotalRecords() const {
  size_t n = 0;
  for (const auto& [_, b] : blocks_) n += b->num_records();
  return n;
}

}  // namespace adaptdb
