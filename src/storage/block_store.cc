#include "storage/block_store.h"

#include <algorithm>

namespace adaptdb {

BlockId MemBlockStore::CreateBlock() {
  const BlockId id = next_id_++;
  blocks_.emplace(id, std::make_shared<Block>(id, num_attrs()));
  return id;
}

Result<BlockRef> MemBlockStore::Get(BlockId id) const {
  auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    return Status::NotFound("block " + std::to_string(id));
  }
  return BlockRef(it->second);
}

Result<MutableBlockRef> MemBlockStore::GetMutable(BlockId id) {
  auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    return Status::NotFound("block " + std::to_string(id));
  }
  return it->second;
}

Result<size_t> MemBlockStore::RecordCount(BlockId id) const {
  auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    return Status::NotFound("block " + std::to_string(id));
  }
  return it->second->num_records();
}

Status MemBlockStore::Delete(BlockId id) {
  if (blocks_.erase(id) == 0) {
    return Status::NotFound("block " + std::to_string(id));
  }
  return Status::OK();
}

std::vector<BlockId> MemBlockStore::BlockIds() const {
  std::vector<BlockId> ids;
  ids.reserve(blocks_.size());
  for (const auto& [id, _] : blocks_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

size_t MemBlockStore::TotalRecords() const {
  size_t n = 0;
  for (const auto& [_, b] : blocks_) n += b->num_records();
  return n;
}

}  // namespace adaptdb
