/// \file block.h
/// \brief Data blocks: the unit of storage, I/O accounting and migration.
///
/// A block is the AdaptDB analogue of an HDFS block (paper §2): a bag of
/// records plus per-attribute min/max ranges. The ranges implement the
/// paper's Range_t(x) metadata used both for predicate-based block skipping
/// and for computing hyper-join overlap vectors (§4.1.1).
///
/// The payload is columnar: one typed Column per attribute (see
/// storage/column.h), so the engine reasons about attributes independently —
/// predicates evaluate column-at-a-time into selection vectors
/// (FilterRows), join keys gather straight from the key column, and full
/// rows materialize only on demand (GatherRecord, late materialization).

#ifndef ADAPTDB_STORAGE_BLOCK_H_
#define ADAPTDB_STORAGE_BLOCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "schema/predicate.h"
#include "schema/schema.h"
#include "storage/column.h"

namespace adaptdb {

/// Globally unique block identifier within a BlockStore.
using BlockId = int64_t;

/// A selection vector: indices of the rows of one block that passed a
/// filter, ascending.
using SelectionVector = std::vector<uint32_t>;

/// \brief A storage block: columnar records of one table + range metadata.
class Block {
 public:
  Block() = default;
  /// Creates an empty block with `num_attrs` columns and range slots.
  Block(BlockId id, int32_t num_attrs);

  /// This block's identifier.
  BlockId id() const { return id_; }

  /// Attribute count this block was created with.
  int32_t num_attrs() const { return num_attrs_; }

  /// Appends a record, extending the per-attribute ranges.
  void Add(const Record& rec);

  /// Number of records stored.
  size_t num_records() const { return num_rows_; }

  /// True iff the block holds no records.
  bool empty() const { return num_rows_ == 0; }

  /// The column of attribute `attr`.
  const Column& column(AttrId attr) const {
    return cols_[static_cast<size_t>(attr)];
  }

  /// Materializes the value at (`row`, `attr`).
  Value ValueAt(size_t row, AttrId attr) const {
    return cols_[static_cast<size_t>(attr)].ValueAt(row);
  }

  /// Late materialization: reassembles row `row` as a Record.
  Record GatherRecord(size_t row) const;

  /// Gathers row `row` into `out` (cleared first; reuses its capacity).
  void GatherRecord(size_t row, Record* out) const;

  /// Appends all attributes of row `row` to `out` (join output assembly).
  void AppendRowTo(size_t row, Record* out) const;

  /// Materializes every record, in row order. A full-width copy — test and
  /// cold-path convenience only; hot paths use columns + selection vectors.
  std::vector<Record> MaterializeRecords() const;

  /// Evaluates `preds` column-at-a-time: the first predicate seeds the
  /// selection from its column, each further predicate narrows it. Returns
  /// the surviving row indices, ascending (record order).
  SelectionVector FilterRows(const PredicateSet& preds) const;

  /// Number of records satisfying `preds` — FilterRows().size() without
  /// materializing the selection when no intermediate is needed.
  size_t CountMatches(const PredicateSet& preds) const;

  /// The min/max range of attribute `attr` over stored records.
  /// Precondition: the block is non-empty.
  const ValueRange& range(AttrId attr) const {
    return ranges_[static_cast<size_t>(attr)];
  }

  /// All per-attribute ranges (index = attribute id).
  const std::vector<ValueRange>& ranges() const { return ranges_; }

  /// Conservative test: could this block contain a record matching `preds`?
  bool MayMatch(const PredicateSet& preds) const {
    return !empty() && RangesAdmit(preds, ranges_);
  }

  /// Exact payload size: the sum of the column footprints (see
  /// Column::SizeBytes). Replaces the old records() * record_width
  /// approximation; the cost-model implications are documented in
  /// join/cost_model.h.
  int64_t SizeBytes() const;

  /// Removes all records, resetting columns and ranges.
  void ClearRecords();

  std::string ToString() const;

  /// Rebuilds a block from decoded columns (the I/O layer's entry point).
  /// Validates that every column holds exactly `num_records` values;
  /// recomputes the per-attribute ranges (a pure function of the values).
  static Result<Block> FromColumns(BlockId id, std::vector<Column> cols,
                                   size_t num_records);

 private:
  /// Evaluation order for a conjunction: predicate indices sorted stably
  /// by their column's representation cost, cheapest first (the seed pays
  /// a full-column sweep). Pure reordering — the result set and its
  /// row-ascending output order are unaffected.
  std::vector<uint32_t> OrderPredicates(const PredicateSet& preds) const;

  BlockId id_ = -1;
  int32_t num_attrs_ = 0;
  size_t num_rows_ = 0;
  bool ranges_initialized_ = false;
  std::vector<Column> cols_;
  std::vector<ValueRange> ranges_;
};

}  // namespace adaptdb

#endif  // ADAPTDB_STORAGE_BLOCK_H_
