/// \file block.h
/// \brief Data blocks: the unit of storage, I/O accounting and migration.
///
/// A block is the AdaptDB analogue of an HDFS block (paper §2): a bag of
/// records plus per-attribute min/max ranges. The ranges implement the
/// paper's Range_t(x) metadata used both for predicate-based block skipping
/// and for computing hyper-join overlap vectors (§4.1.1).

#ifndef ADAPTDB_STORAGE_BLOCK_H_
#define ADAPTDB_STORAGE_BLOCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "schema/predicate.h"
#include "schema/schema.h"

namespace adaptdb {

/// Globally unique block identifier within a BlockStore.
using BlockId = int64_t;

/// \brief A storage block: records of one table plus range metadata.
class Block {
 public:
  Block() = default;
  /// Creates an empty block with `num_attrs` range slots.
  Block(BlockId id, int32_t num_attrs);

  /// This block's identifier.
  BlockId id() const { return id_; }

  /// Attribute count this block was created with.
  int32_t num_attrs() const { return num_attrs_; }

  /// Appends a record, extending the per-attribute ranges.
  void Add(const Record& rec);

  /// Number of records stored.
  size_t num_records() const { return records_.size(); }

  /// True iff the block holds no records.
  bool empty() const { return records_.empty(); }

  /// The stored records.
  const std::vector<Record>& records() const { return records_; }

  /// The min/max range of attribute `attr` over stored records.
  /// Precondition: the block is non-empty.
  const ValueRange& range(AttrId attr) const {
    return ranges_[static_cast<size_t>(attr)];
  }

  /// All per-attribute ranges (index = attribute id).
  const std::vector<ValueRange>& ranges() const { return ranges_; }

  /// Conservative test: could this block contain a record matching `preds`?
  bool MayMatch(const PredicateSet& preds) const {
    return !empty() && RangesAdmit(preds, ranges_);
  }

  /// Approximate serialized size given a per-record width.
  int64_t SizeBytes(int64_t record_width) const {
    return static_cast<int64_t>(records_.size()) * record_width;
  }

  /// Removes all records, resetting ranges.
  void ClearRecords();

  std::string ToString() const;

 private:
  BlockId id_ = -1;
  int32_t num_attrs_ = 0;
  bool ranges_initialized_ = false;
  std::vector<Record> records_;
  std::vector<ValueRange> ranges_;
};

}  // namespace adaptdb

#endif  // ADAPTDB_STORAGE_BLOCK_H_
