/// \file column.h
/// \brief Typed column vectors: the physical payload of a columnar Block.
///
/// A Column stores the values of one attribute across all records of a
/// block as a single typed vector (int64/double/string), so predicate
/// evaluation and key gathering touch exactly one attribute's memory. The
/// type is fixed by the first value appended; a mismatched append demotes
/// the column to a row-major-style vector<Value> fallback ("mixed"), which
/// preserves the old Block semantics for heterogeneous inputs at the cost
/// of the columnar fast paths.
///
/// String columns additionally support a dictionary-resident form: one
/// uint32 code per row plus a dictionary of distinct strings (with their
/// hashes precomputed). The I/O layer decodes kEncDict segments straight
/// into this form, so predicates compare codes, join build/probe hashes
/// through the dictionary, and strings materialize only at output
/// (ValueAt/AppendTo). Logically a dict column is indistinguishable from a
/// plain string column: type() is kString and every accessor returns the
/// same values — only the physical representation (and the speed of
/// MatchesAt/HashAt/EqualsValueAt) differs.

#ifndef ADAPTDB_STORAGE_COLUMN_H_
#define ADAPTDB_STORAGE_COLUMN_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "schema/predicate.h"
#include "schema/value.h"

namespace adaptdb {

/// \brief One attribute's values across a block, stored contiguously.
class Column {
 public:
  /// Dictionary-resident string storage: per-row codes into a dictionary
  /// of distinct entries, kept in first-appearance order (the same order
  /// the on-disk kEncDict encoding assigns, so decode + re-encode is
  /// byte-identical). `hashes[i]` caches HashValue(Value(dict[i])) so
  /// HashAt is one table lookup instead of a string hash per row.
  struct DictStrings {
    std::vector<uint32_t> codes;
    std::vector<std::string> dict;
    std::vector<size_t> hashes;
  };

  Column() = default;

  /// True once at least one value has been appended (the type is known).
  bool typed() const { return data_.index() != 0; }

  /// True iff the column fell back to heterogeneous vector<Value> storage.
  bool mixed() const {
    return std::holds_alternative<std::vector<Value>>(data_);
  }

  /// True iff the column holds dictionary-resident strings.
  bool dict_coded() const {
    return std::holds_alternative<DictStrings>(data_);
  }

  /// The column's element type. Precondition: typed() and !mixed().
  /// Dictionary-resident columns report kString.
  DataType type() const;

  /// Number of stored values.
  size_t size() const;

  /// Appends one value, fixing the type on the first append and demoting
  /// to mixed storage if `v`'s type disagrees with the column's. A string
  /// appended to a dictionary-resident column extends the dictionary on
  /// first appearance and stays code-resident.
  void Append(const Value& v);

  /// Materializes the value at `row` (copies strings).
  Value ValueAt(size_t row) const;

  /// Appends the value at `row` to `out` (one Value push_back).
  void AppendTo(Record* out, size_t row) const;

  /// Hash of the value at `row`, identical to HashValue(ValueAt(row)) but
  /// without materializing a Value. Dictionary columns return the
  /// precomputed per-entry hash (one array lookup).
  size_t HashAt(size_t row) const;

  /// True iff the value at `row` satisfies `pred` — exactly
  /// pred.Matches(ValueAt(row)), with typed fast paths that avoid Value
  /// construction for same-type and numeric comparisons. This is the
  /// row-at-a-time path; the vectorized equivalents live in
  /// exec/kernels.h.
  bool MatchesAt(const Predicate& pred, size_t row) const;

  /// True iff ValueAt(row) == v, without materializing the value (Value
  /// equality: same type and equal scalar; join-probe key comparisons).
  /// Dictionary columns compare through the dictionary entry in place.
  bool EqualsValueAt(size_t row, const Value& v) const;

  /// Exact in-memory payload footprint: 8 bytes per numeric value; string
  /// columns charge each string's length plus a 4-byte length prefix
  /// (mirroring the serialized plain encoding); mixed columns charge each
  /// value as above plus a 1-byte type tag. Dictionary columns charge the
  /// same as their plain-string equivalent, so cost-model accounting is
  /// representation- (and backend-) invariant.
  int64_t SizeBytes() const;

  /// Computes the min/max over all values into `*r` without materializing
  /// a Value per row (dictionary columns compare only the referenced
  /// dictionary entries). Returns false on an empty column. Matches the
  /// incremental ValueRange::Extend result bitwise, including NaN and
  /// signed-zero tie-breaking (first extremum wins).
  bool MinMaxInto(ValueRange* r) const;

  /// Typed accessors. Precondition: the column holds that representation
  /// (strings() requires plain — not dictionary-resident — storage).
  const std::vector<int64_t>& ints() const {
    return std::get<std::vector<int64_t>>(data_);
  }
  const std::vector<double>& doubles() const {
    return std::get<std::vector<double>>(data_);
  }
  const std::vector<std::string>& strings() const {
    return std::get<std::vector<std::string>>(data_);
  }
  const std::vector<Value>& values() const {
    return std::get<std::vector<Value>>(data_);
  }
  /// Dictionary accessors. Precondition: dict_coded().
  const std::vector<uint32_t>& codes() const {
    return std::get<DictStrings>(data_).codes;
  }
  const std::vector<std::string>& dict() const {
    return std::get<DictStrings>(data_).dict;
  }
  const std::vector<size_t>& dict_hashes() const {
    return std::get<DictStrings>(data_).hashes;
  }

  /// The code of `s` in the dictionary, or -1 if absent. Precondition:
  /// dict_coded(). Linear scan — dictionaries are small (≤256 from disk)
  /// and this runs once per predicate, not once per row.
  int64_t FindCode(const std::string& s) const;

  /// Removes all values and forgets the type.
  void Clear() { data_ = std::monostate{}; }

  /// Builders for the I/O layer (decode paths construct columns wholesale).
  static Column OfInts(std::vector<int64_t> v);
  static Column OfDoubles(std::vector<double> v);
  static Column OfStrings(std::vector<std::string> v);
  static Column OfValues(std::vector<Value> v);
  /// Dictionary-resident strings. Precondition: every code < dict.size().
  static Column OfDictStrings(std::vector<uint32_t> codes,
                              std::vector<std::string> dict);

 private:
  std::variant<std::monostate, std::vector<int64_t>, std::vector<double>,
               std::vector<std::string>, std::vector<Value>, DictStrings>
      data_;
};

/// Narrows `sel` (row indices into `col`) to the rows satisfying `pred`,
/// in place, row at a time. The fallback refine step of the scan path;
/// the dispatch-once kernels in exec/kernels.h replace it on typed
/// columns.
void FilterColumn(const Predicate& pred, const Column& col,
                  std::vector<uint32_t>* sel);

}  // namespace adaptdb

#endif  // ADAPTDB_STORAGE_COLUMN_H_
