/// \file column.h
/// \brief Typed column vectors: the physical payload of a columnar Block.
///
/// A Column stores the values of one attribute across all records of a
/// block as a single typed vector (int64/double/string), so predicate
/// evaluation and key gathering touch exactly one attribute's memory. The
/// type is fixed by the first value appended; a mismatched append demotes
/// the column to a row-major-style vector<Value> fallback ("mixed"), which
/// preserves the old Block semantics for heterogeneous inputs at the cost
/// of the columnar fast paths.

#ifndef ADAPTDB_STORAGE_COLUMN_H_
#define ADAPTDB_STORAGE_COLUMN_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "schema/predicate.h"
#include "schema/value.h"

namespace adaptdb {

/// \brief One attribute's values across a block, stored contiguously.
class Column {
 public:
  Column() = default;

  /// True once at least one value has been appended (the type is known).
  bool typed() const { return data_.index() != 0; }

  /// True iff the column fell back to heterogeneous vector<Value> storage.
  bool mixed() const {
    return std::holds_alternative<std::vector<Value>>(data_);
  }

  /// The column's element type. Precondition: typed() and !mixed().
  DataType type() const;

  /// Number of stored values.
  size_t size() const;

  /// Appends one value, fixing the type on the first append and demoting
  /// to mixed storage if `v`'s type disagrees with the column's.
  void Append(const Value& v);

  /// Materializes the value at `row` (copies strings).
  Value ValueAt(size_t row) const;

  /// Appends the value at `row` to `out` (one Value push_back).
  void AppendTo(Record* out, size_t row) const;

  /// Hash of the value at `row`, identical to HashValue(ValueAt(row)) but
  /// without materializing a Value.
  size_t HashAt(size_t row) const;

  /// True iff the value at `row` satisfies `pred` — exactly
  /// pred.Matches(ValueAt(row)), with typed fast paths that avoid Value
  /// construction for same-type and numeric comparisons.
  bool MatchesAt(const Predicate& pred, size_t row) const;

  /// True iff ValueAt(row) == v, without materializing the value (Value
  /// equality: same type and equal scalar; join-probe key comparisons).
  bool EqualsValueAt(size_t row, const Value& v) const;

  /// Exact in-memory payload footprint: 8 bytes per numeric value; string
  /// columns charge each string's length plus a 4-byte length prefix
  /// (mirroring the serialized plain encoding); mixed columns charge each
  /// value as above plus a 1-byte type tag.
  int64_t SizeBytes() const;

  /// Typed accessors. Precondition: the column holds that representation.
  const std::vector<int64_t>& ints() const {
    return std::get<std::vector<int64_t>>(data_);
  }
  const std::vector<double>& doubles() const {
    return std::get<std::vector<double>>(data_);
  }
  const std::vector<std::string>& strings() const {
    return std::get<std::vector<std::string>>(data_);
  }
  const std::vector<Value>& values() const {
    return std::get<std::vector<Value>>(data_);
  }

  /// Removes all values and forgets the type.
  void Clear() { data_ = std::monostate{}; }

  /// Builders for the I/O layer (decode paths construct columns wholesale).
  static Column OfInts(std::vector<int64_t> v);
  static Column OfDoubles(std::vector<double> v);
  static Column OfStrings(std::vector<std::string> v);
  static Column OfValues(std::vector<Value> v);

 private:
  std::variant<std::monostate, std::vector<int64_t>, std::vector<double>,
               std::vector<std::string>, std::vector<Value>>
      data_;
};

/// Narrows `sel` (row indices into `col`) to the rows satisfying `pred`,
/// in place. The column-at-a-time kernel of the scan path.
void FilterColumn(const Predicate& pred, const Column& col,
                  std::vector<uint32_t>* sel);

}  // namespace adaptdb

#endif  // ADAPTDB_STORAGE_COLUMN_H_
