#include "storage/cluster.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <shared_mutex>
#include <thread>

namespace adaptdb {

void IoStats::Merge(const IoStats& other) {
  local_block_reads += other.local_block_reads;
  remote_block_reads += other.remote_block_reads;
  block_writes += other.block_writes;
  shuffled_blocks += other.shuffled_blocks;
  spilled_partitions += other.spilled_partitions;
  spill_bytes_written += other.spill_bytes_written;
  spill_bytes_read += other.spill_bytes_read;
  buffer_hits += other.buffer_hits;
  buffer_misses += other.buffer_misses;
  physical_block_writes += other.physical_block_writes;
  prefetched += other.prefetched;
  async_reads_inflight_peak =
      std::max(async_reads_inflight_peak, other.async_reads_inflight_peak);
}

IoStats IoStats::Minus(const IoStats& other) const {
  IoStats d;
  d.local_block_reads = local_block_reads - other.local_block_reads;
  d.remote_block_reads = remote_block_reads - other.remote_block_reads;
  d.block_writes = block_writes - other.block_writes;
  d.shuffled_blocks = shuffled_blocks - other.shuffled_blocks;
  d.spilled_partitions = spilled_partitions - other.spilled_partitions;
  d.spill_bytes_written = spill_bytes_written - other.spill_bytes_written;
  d.spill_bytes_read = spill_bytes_read - other.spill_bytes_read;
  d.buffer_hits = buffer_hits - other.buffer_hits;
  d.buffer_misses = buffer_misses - other.buffer_misses;
  d.physical_block_writes = physical_block_writes - other.physical_block_writes;
  d.prefetched = prefetched - other.prefetched;
  // A high-water mark has no meaningful delta; keep the minuend's value.
  d.async_reads_inflight_peak = async_reads_inflight_peak;
  return d;
}

std::string IoStats::ToString() const {
  return "IoStats{local=" + std::to_string(local_block_reads) +
         ", remote=" + std::to_string(remote_block_reads) +
         ", writes=" + std::to_string(block_writes) +
         ", shuffled=" + std::to_string(shuffled_blocks) +
         ", spilled_parts=" + std::to_string(spilled_partitions) +
         ", spill_written=" + std::to_string(spill_bytes_written) +
         ", spill_read=" + std::to_string(spill_bytes_read) +
         ", pool_hits=" + std::to_string(buffer_hits) +
         ", pool_misses=" + std::to_string(buffer_misses) +
         ", phys_writes=" + std::to_string(physical_block_writes) +
         ", prefetched=" + std::to_string(prefetched) +
         ", async_inflight_peak=" +
         std::to_string(async_reads_inflight_peak) + "}";
}

ClusterSim::ClusterSim(ClusterConfig config) : config_(config) {}

NodeId ClusterSim::PlaceBlock(BlockId block, IoStats* stats) {
  NodeId node;
  {
    std::unique_lock<std::shared_mutex> lock(*mu_);
    node = next_node_;
    next_node_ = (next_node_ + 1) % config_.num_nodes;
    placement_[block] = node;
  }
  if (stats != nullptr) ++stats->block_writes;
  return node;
}

void ClusterSim::PlaceBlockAt(BlockId block, NodeId node) {
  std::unique_lock<std::shared_mutex> lock(*mu_);
  placement_[block] = node % config_.num_nodes;
}

Result<NodeId> ClusterSim::Locate(BlockId block) const {
  std::shared_lock<std::shared_mutex> lock(*mu_);
  auto it = placement_.find(block);
  if (it == placement_.end()) {
    return Status::NotFound("block " + std::to_string(block) + " not placed");
  }
  return it->second;
}

void ClusterSim::Evict(BlockId block) {
  std::unique_lock<std::shared_mutex> lock(*mu_);
  placement_.erase(block);
}

NodeId ClusterSim::ScheduleTask(const std::vector<BlockId>& blocks) const {
  std::shared_lock<std::shared_mutex> lock(*mu_);
  std::vector<int32_t> votes(static_cast<size_t>(config_.num_nodes), 0);
  bool any = false;
  for (BlockId b : blocks) {
    auto it = placement_.find(b);
    if (it != placement_.end()) {
      ++votes[static_cast<size_t>(it->second)];
      any = true;
    }
  }
  if (!any) return 0;
  return static_cast<NodeId>(
      std::max_element(votes.begin(), votes.end()) - votes.begin());
}

void ClusterSim::ReadBlock(BlockId block, NodeId reader,
                           IoStats* stats) const {
  {
    std::shared_lock<std::shared_mutex> lock(*mu_);
    auto it = placement_.find(block);
    const bool local = it != placement_.end() && it->second == reader;
    if (local) {
      ++stats->local_block_reads;
    } else {
      ++stats->remote_block_reads;
    }
  }
  // The emulated I/O wait happens outside the lock so concurrent readers
  // overlap their latencies instead of serializing on the placement map.
  if (config_.emulate_read_latency_micros > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(config_.emulate_read_latency_micros));
  }
}

void ClusterSim::WriteBlocks(int64_t n, IoStats* stats) const {
  stats->block_writes += n;
}

void ClusterSim::ShuffleBlocks(int64_t n, IoStats* stats) const {
  stats->shuffled_blocks += n;
}

double ClusterSim::SimulatedSeconds(const IoStats& stats) const {
  // A shuffled block is read once, spilled once and re-read remotely: the
  // paper folds this into C_SJ = 3 block-costs (§4.2); we charge the read
  // and write legs explicitly.
  const double read_cost =
      static_cast<double>(stats.local_block_reads) * config_.block_read_seconds +
      static_cast<double>(stats.remote_block_reads) *
          config_.block_read_seconds * config_.remote_penalty;
  const double write_cost =
      static_cast<double>(stats.block_writes) * config_.durable_write_seconds;
  const double shuffle_cost =
      static_cast<double>(stats.shuffled_blocks) *
      (config_.block_read_seconds * config_.remote_penalty +
       config_.spill_write_seconds);
  const double total = read_cost + write_cost + shuffle_cost;
  return total / static_cast<double>(config_.num_nodes);
}

double ClusterSim::LocalityFraction(const std::vector<BlockId>& blocks,
                                    NodeId node) const {
  if (blocks.empty()) return 1.0;
  std::shared_lock<std::shared_mutex> lock(*mu_);
  int64_t local = 0, placed = 0;
  for (BlockId b : blocks) {
    auto it = placement_.find(b);
    if (it == placement_.end()) continue;
    ++placed;
    if (it->second == node) ++local;
  }
  if (placed == 0) return 1.0;
  return static_cast<double>(local) / static_cast<double>(placed);
}

}  // namespace adaptdb
