#include "storage/column.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <utility>

namespace adaptdb {

namespace {

/// Applies `op` to an already-ordered pair. Shared by every typed fast path
/// where operands compare with the native <, ==.
template <typename T>
bool ApplyOp(CompareOp op, const T& lhs, const T& rhs) {
  switch (op) {
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNeq:
      return lhs != rhs;
  }
  return false;
}

/// Mixed int64/double comparison with Value semantics: ordering compares
/// through AsNumeric (both sides widened to double); equality across the
/// two variant alternatives is always false.
bool ApplyOpMixedNumeric(CompareOp op, double lhs, double rhs) {
  switch (op) {
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs < rhs;  // <= is < || ==; mixed == is false.
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs > rhs;  // >= is > || ==; mixed == is false.
    case CompareOp::kEq:
      return false;
    case CompareOp::kNeq:
      return true;
  }
  return false;
}

/// Min/max of a typed vector into `*r`. min_element/max_element both keep
/// the FIRST extremum on ties (they update only on a strict comparison),
/// exactly like the incremental ValueRange::Extend loop — which is what
/// makes the rebuilt range bitwise identical, including -0.0/0.0 ties and
/// a leading NaN (NaN sticks as both bounds when first, is ignored later,
/// in both formulations).
template <typename T>
void MinMaxTyped(const std::vector<T>& v, ValueRange* r) {
  r->lo = Value(*std::min_element(v.begin(), v.end()));
  r->hi = Value(*std::max_element(v.begin(), v.end()));
}

}  // namespace

DataType Column::type() const {
  switch (data_.index()) {
    case 1:
      return DataType::kInt64;
    case 2:
      return DataType::kDouble;
    default:
      assert(data_.index() == 3 || data_.index() == 5);
      return DataType::kString;
  }
}

size_t Column::size() const {
  return std::visit(
      [](const auto& v) -> size_t {
        using V = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<V, std::monostate>) {
          return 0;
        } else if constexpr (std::is_same_v<V, DictStrings>) {
          return v.codes.size();
        } else {
          return v.size();
        }
      },
      data_);
}

void Column::Append(const Value& v) {
  if (!typed()) {
    switch (v.type()) {
      case DataType::kInt64:
        data_ = std::vector<int64_t>{v.AsInt64()};
        return;
      case DataType::kDouble:
        data_ = std::vector<double>{v.AsDouble()};
        return;
      case DataType::kString:
        data_ = std::vector<std::string>{v.AsString()};
        return;
    }
  }
  if (mixed()) {
    std::get<std::vector<Value>>(data_).push_back(v);
    return;
  }
  if (dict_coded() && v.type() == DataType::kString) {
    // Stay code-resident: reuse the entry's code or extend the dictionary
    // (first-appearance order, same as the on-disk encoder assigns).
    DictStrings& d = std::get<DictStrings>(data_);
    int64_t code = FindCode(v.AsString());
    if (code < 0) {
      code = static_cast<int64_t>(d.dict.size());
      d.dict.push_back(v.AsString());
      d.hashes.push_back(std::hash<std::string>{}(v.AsString()));
    }
    d.codes.push_back(static_cast<uint32_t>(code));
    return;
  }
  if (v.type() != type()) {
    // Heterogeneous input: demote to vector<Value> storage.
    std::vector<Value> all;
    all.reserve(size() + 1);
    for (size_t i = 0; i < size(); ++i) all.push_back(ValueAt(i));
    all.push_back(v);
    data_ = std::move(all);
    return;
  }
  switch (type()) {
    case DataType::kInt64:
      std::get<std::vector<int64_t>>(data_).push_back(v.AsInt64());
      break;
    case DataType::kDouble:
      std::get<std::vector<double>>(data_).push_back(v.AsDouble());
      break;
    case DataType::kString:
      std::get<std::vector<std::string>>(data_).push_back(v.AsString());
      break;
  }
}

Value Column::ValueAt(size_t row) const {
  switch (data_.index()) {
    case 1:
      return Value(std::get<std::vector<int64_t>>(data_)[row]);
    case 2:
      return Value(std::get<std::vector<double>>(data_)[row]);
    case 3:
      return Value(std::get<std::vector<std::string>>(data_)[row]);
    case 4:
      return std::get<std::vector<Value>>(data_)[row];
    case 5: {
      const DictStrings& d = std::get<DictStrings>(data_);
      return Value(d.dict[d.codes[row]]);
    }
    default:
      assert(false && "ValueAt on an untyped column");
      return Value();
  }
}

void Column::AppendTo(Record* out, size_t row) const {
  out->push_back(ValueAt(row));
}

size_t Column::HashAt(size_t row) const {
  switch (data_.index()) {
    case 1:
      return std::hash<int64_t>{}(std::get<std::vector<int64_t>>(data_)[row]);
    case 2:
      return std::hash<double>{}(std::get<std::vector<double>>(data_)[row]);
    case 3:
      return std::hash<std::string>{}(
          std::get<std::vector<std::string>>(data_)[row]);
    case 4: {
      const Value& v = std::get<std::vector<Value>>(data_)[row];
      switch (v.type()) {
        case DataType::kInt64:
          return std::hash<int64_t>{}(v.AsInt64());
        case DataType::kDouble:
          return std::hash<double>{}(v.AsDouble());
        case DataType::kString:
          return std::hash<std::string>{}(v.AsString());
      }
      return 0;
    }
    case 5: {
      // One lookup instead of re-hashing the string per row.
      const DictStrings& d = std::get<DictStrings>(data_);
      return d.hashes[d.codes[row]];
    }
    default:
      assert(false && "HashAt on an untyped column");
      return 0;
  }
}

bool Column::MatchesAt(const Predicate& pred, size_t row) const {
  const DataType pt = pred.value.type();
  switch (data_.index()) {
    case 1: {
      const int64_t v = std::get<std::vector<int64_t>>(data_)[row];
      if (pt == DataType::kInt64) return ApplyOp(pred.op, v, pred.value.AsInt64());
      if (pt == DataType::kDouble) {
        return ApplyOpMixedNumeric(pred.op, static_cast<double>(v),
                                   pred.value.AsDouble());
      }
      break;
    }
    case 2: {
      const double v = std::get<std::vector<double>>(data_)[row];
      if (pt == DataType::kDouble) {
        return ApplyOp(pred.op, v, pred.value.AsDouble());
      }
      if (pt == DataType::kInt64) {
        return ApplyOpMixedNumeric(
            pred.op, v, static_cast<double>(pred.value.AsInt64()));
      }
      break;
    }
    case 3: {
      if (pt == DataType::kString) {
        return ApplyOp(pred.op, std::get<std::vector<std::string>>(data_)[row],
                       pred.value.AsString());
      }
      break;
    }
    case 4:
      return pred.Matches(std::get<std::vector<Value>>(data_)[row]);
    case 5: {
      if (pt == DataType::kString) {
        const DictStrings& d = std::get<DictStrings>(data_);
        return ApplyOp(pred.op, d.dict[d.codes[row]], pred.value.AsString());
      }
      break;
    }
    default:
      assert(false && "MatchesAt on an untyped column");
      return false;
  }
  // Cross-type string/numeric comparison: defer to Value semantics (which
  // assert in debug builds exactly as the row-major path did).
  return pred.Matches(ValueAt(row));
}

bool Column::EqualsValueAt(size_t row, const Value& v) const {
  switch (data_.index()) {
    case 1:
      return v.type() == DataType::kInt64 &&
             std::get<std::vector<int64_t>>(data_)[row] == v.AsInt64();
    case 2:
      // double == double matches Value's variant equality (-0.0 == 0.0,
      // NaN != NaN).
      return v.type() == DataType::kDouble &&
             std::get<std::vector<double>>(data_)[row] == v.AsDouble();
    case 3:
      return v.type() == DataType::kString &&
             std::get<std::vector<std::string>>(data_)[row] == v.AsString();
    case 4:
      return std::get<std::vector<Value>>(data_)[row] == v;
    case 5: {
      const DictStrings& d = std::get<DictStrings>(data_);
      return v.type() == DataType::kString &&
             d.dict[d.codes[row]] == v.AsString();
    }
    default:
      assert(false && "EqualsValueAt on an untyped column");
      return false;
  }
}

int64_t Column::SizeBytes() const {
  switch (data_.index()) {
    case 1:
      return static_cast<int64_t>(size()) * 8;
    case 2:
      return static_cast<int64_t>(size()) * 8;
    case 3: {
      int64_t bytes = 0;
      for (const std::string& s : std::get<std::vector<std::string>>(data_)) {
        bytes += 4 + static_cast<int64_t>(s.size());
      }
      return bytes;
    }
    case 4: {
      int64_t bytes = 0;
      for (const Value& v : std::get<std::vector<Value>>(data_)) {
        bytes += 1;  // Type tag.
        bytes += v.type() == DataType::kString
                     ? 4 + static_cast<int64_t>(v.AsString().size())
                     : 8;
      }
      return bytes;
    }
    case 5: {
      // Charge the plain-string-equivalent bytes so the cost model (and
      // logical IoStats derived from it) can't tell the representations
      // apart: mem-built blocks stay plain, decoded blocks are dict.
      const DictStrings& d = std::get<DictStrings>(data_);
      std::vector<int64_t> per_entry(d.dict.size());
      for (size_t i = 0; i < d.dict.size(); ++i) {
        per_entry[i] = 4 + static_cast<int64_t>(d.dict[i].size());
      }
      int64_t bytes = 0;
      for (const uint32_t code : d.codes) bytes += per_entry[code];
      return bytes;
    }
    default:
      return 0;
  }
}

bool Column::MinMaxInto(ValueRange* r) const {
  if (size() == 0) return false;
  switch (data_.index()) {
    case 1:
      MinMaxTyped(std::get<std::vector<int64_t>>(data_), r);
      return true;
    case 2:
      MinMaxTyped(std::get<std::vector<double>>(data_), r);
      return true;
    case 3:
      MinMaxTyped(std::get<std::vector<std::string>>(data_), r);
      return true;
    case 5: {
      // Distinct dictionary entries can't tie, so comparing only the
      // referenced entries gives the same bounds as the row-order sweep.
      const DictStrings& d = std::get<DictStrings>(data_);
      std::vector<uint8_t> used(d.dict.size(), 0);
      for (const uint32_t code : d.codes) used[code] = 1;
      const std::string* lo = nullptr;
      const std::string* hi = nullptr;
      for (size_t i = 0; i < d.dict.size(); ++i) {
        if (!used[i]) continue;
        if (lo == nullptr || d.dict[i] < *lo) lo = &d.dict[i];
        if (hi == nullptr || *hi < d.dict[i]) hi = &d.dict[i];
      }
      r->lo = Value(*lo);
      r->hi = Value(*hi);
      return true;
    }
    default: {
      // Mixed storage: replicate the incremental Extend loop exactly.
      *r = ValueRange{ValueAt(0), ValueAt(0)};
      for (size_t row = 1; row < size(); ++row) r->Extend(ValueAt(row));
      return true;
    }
  }
}

int64_t Column::FindCode(const std::string& s) const {
  const DictStrings& d = std::get<DictStrings>(data_);
  for (size_t i = 0; i < d.dict.size(); ++i) {
    if (d.dict[i] == s) return static_cast<int64_t>(i);
  }
  return -1;
}

Column Column::OfInts(std::vector<int64_t> v) {
  Column c;
  c.data_ = std::move(v);
  return c;
}

Column Column::OfDoubles(std::vector<double> v) {
  Column c;
  c.data_ = std::move(v);
  return c;
}

Column Column::OfStrings(std::vector<std::string> v) {
  Column c;
  c.data_ = std::move(v);
  return c;
}

Column Column::OfValues(std::vector<Value> v) {
  Column c;
  c.data_ = std::move(v);
  return c;
}

Column Column::OfDictStrings(std::vector<uint32_t> codes,
                             std::vector<std::string> dict) {
  DictStrings d;
  d.hashes.reserve(dict.size());
  for (const std::string& s : dict) {
    d.hashes.push_back(std::hash<std::string>{}(s));
  }
  d.codes = std::move(codes);
  d.dict = std::move(dict);
#ifndef NDEBUG
  for (const uint32_t code : d.codes) assert(code < d.dict.size());
#endif
  Column c;
  c.data_ = std::move(d);
  return c;
}

void FilterColumn(const Predicate& pred, const Column& col,
                  std::vector<uint32_t>* sel) {
  size_t kept = 0;
  for (const uint32_t row : *sel) {
    if (col.MatchesAt(pred, row)) (*sel)[kept++] = row;
  }
  sel->resize(kept);
}

}  // namespace adaptdb
