#include "storage/column.h"

#include <cassert>
#include <functional>
#include <utility>

namespace adaptdb {

namespace {

/// Applies `op` to an already-ordered pair. Shared by every typed fast path
/// where operands compare with the native <, ==.
template <typename T>
bool ApplyOp(CompareOp op, const T& lhs, const T& rhs) {
  switch (op) {
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNeq:
      return lhs != rhs;
  }
  return false;
}

/// Mixed int64/double comparison with Value semantics: ordering compares
/// through AsNumeric (both sides widened to double); equality across the
/// two variant alternatives is always false.
bool ApplyOpMixedNumeric(CompareOp op, double lhs, double rhs) {
  switch (op) {
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs < rhs;  // <= is < || ==; mixed == is false.
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs > rhs;  // >= is > || ==; mixed == is false.
    case CompareOp::kEq:
      return false;
    case CompareOp::kNeq:
      return true;
  }
  return false;
}

}  // namespace

DataType Column::type() const {
  switch (data_.index()) {
    case 1:
      return DataType::kInt64;
    case 2:
      return DataType::kDouble;
    default:
      assert(data_.index() == 3);
      return DataType::kString;
  }
}

size_t Column::size() const {
  return std::visit(
      [](const auto& v) -> size_t {
        if constexpr (std::is_same_v<std::decay_t<decltype(v)>,
                                     std::monostate>) {
          return 0;
        } else {
          return v.size();
        }
      },
      data_);
}

void Column::Append(const Value& v) {
  if (!typed()) {
    switch (v.type()) {
      case DataType::kInt64:
        data_ = std::vector<int64_t>{v.AsInt64()};
        return;
      case DataType::kDouble:
        data_ = std::vector<double>{v.AsDouble()};
        return;
      case DataType::kString:
        data_ = std::vector<std::string>{v.AsString()};
        return;
    }
  }
  if (mixed()) {
    std::get<std::vector<Value>>(data_).push_back(v);
    return;
  }
  if (v.type() != type()) {
    // Heterogeneous input: demote to vector<Value> storage.
    std::vector<Value> all;
    all.reserve(size() + 1);
    for (size_t i = 0; i < size(); ++i) all.push_back(ValueAt(i));
    all.push_back(v);
    data_ = std::move(all);
    return;
  }
  switch (type()) {
    case DataType::kInt64:
      std::get<std::vector<int64_t>>(data_).push_back(v.AsInt64());
      break;
    case DataType::kDouble:
      std::get<std::vector<double>>(data_).push_back(v.AsDouble());
      break;
    case DataType::kString:
      std::get<std::vector<std::string>>(data_).push_back(v.AsString());
      break;
  }
}

Value Column::ValueAt(size_t row) const {
  switch (data_.index()) {
    case 1:
      return Value(std::get<std::vector<int64_t>>(data_)[row]);
    case 2:
      return Value(std::get<std::vector<double>>(data_)[row]);
    case 3:
      return Value(std::get<std::vector<std::string>>(data_)[row]);
    case 4:
      return std::get<std::vector<Value>>(data_)[row];
    default:
      assert(false && "ValueAt on an untyped column");
      return Value();
  }
}

void Column::AppendTo(Record* out, size_t row) const {
  out->push_back(ValueAt(row));
}

size_t Column::HashAt(size_t row) const {
  switch (data_.index()) {
    case 1:
      return std::hash<int64_t>{}(std::get<std::vector<int64_t>>(data_)[row]);
    case 2:
      return std::hash<double>{}(std::get<std::vector<double>>(data_)[row]);
    case 3:
      return std::hash<std::string>{}(
          std::get<std::vector<std::string>>(data_)[row]);
    case 4: {
      const Value& v = std::get<std::vector<Value>>(data_)[row];
      switch (v.type()) {
        case DataType::kInt64:
          return std::hash<int64_t>{}(v.AsInt64());
        case DataType::kDouble:
          return std::hash<double>{}(v.AsDouble());
        case DataType::kString:
          return std::hash<std::string>{}(v.AsString());
      }
      return 0;
    }
    default:
      assert(false && "HashAt on an untyped column");
      return 0;
  }
}

bool Column::MatchesAt(const Predicate& pred, size_t row) const {
  const DataType pt = pred.value.type();
  switch (data_.index()) {
    case 1: {
      const int64_t v = std::get<std::vector<int64_t>>(data_)[row];
      if (pt == DataType::kInt64) return ApplyOp(pred.op, v, pred.value.AsInt64());
      if (pt == DataType::kDouble) {
        return ApplyOpMixedNumeric(pred.op, static_cast<double>(v),
                                   pred.value.AsDouble());
      }
      break;
    }
    case 2: {
      const double v = std::get<std::vector<double>>(data_)[row];
      if (pt == DataType::kDouble) {
        return ApplyOp(pred.op, v, pred.value.AsDouble());
      }
      if (pt == DataType::kInt64) {
        return ApplyOpMixedNumeric(
            pred.op, v, static_cast<double>(pred.value.AsInt64()));
      }
      break;
    }
    case 3: {
      if (pt == DataType::kString) {
        return ApplyOp(pred.op, std::get<std::vector<std::string>>(data_)[row],
                       pred.value.AsString());
      }
      break;
    }
    case 4:
      return pred.Matches(std::get<std::vector<Value>>(data_)[row]);
    default:
      assert(false && "MatchesAt on an untyped column");
      return false;
  }
  // Cross-type string/numeric comparison: defer to Value semantics (which
  // assert in debug builds exactly as the row-major path did).
  return pred.Matches(ValueAt(row));
}

bool Column::EqualsValueAt(size_t row, const Value& v) const {
  switch (data_.index()) {
    case 1:
      return v.type() == DataType::kInt64 &&
             std::get<std::vector<int64_t>>(data_)[row] == v.AsInt64();
    case 2:
      // double == double matches Value's variant equality (-0.0 == 0.0,
      // NaN != NaN).
      return v.type() == DataType::kDouble &&
             std::get<std::vector<double>>(data_)[row] == v.AsDouble();
    case 3:
      return v.type() == DataType::kString &&
             std::get<std::vector<std::string>>(data_)[row] == v.AsString();
    case 4:
      return std::get<std::vector<Value>>(data_)[row] == v;
    default:
      assert(false && "EqualsValueAt on an untyped column");
      return false;
  }
}

int64_t Column::SizeBytes() const {
  switch (data_.index()) {
    case 1:
      return static_cast<int64_t>(size()) * 8;
    case 2:
      return static_cast<int64_t>(size()) * 8;
    case 3: {
      int64_t bytes = 0;
      for (const std::string& s : std::get<std::vector<std::string>>(data_)) {
        bytes += 4 + static_cast<int64_t>(s.size());
      }
      return bytes;
    }
    case 4: {
      int64_t bytes = 0;
      for (const Value& v : std::get<std::vector<Value>>(data_)) {
        bytes += 1;  // Type tag.
        bytes += v.type() == DataType::kString
                     ? 4 + static_cast<int64_t>(v.AsString().size())
                     : 8;
      }
      return bytes;
    }
    default:
      return 0;
  }
}

Column Column::OfInts(std::vector<int64_t> v) {
  Column c;
  c.data_ = std::move(v);
  return c;
}

Column Column::OfDoubles(std::vector<double> v) {
  Column c;
  c.data_ = std::move(v);
  return c;
}

Column Column::OfStrings(std::vector<std::string> v) {
  Column c;
  c.data_ = std::move(v);
  return c;
}

Column Column::OfValues(std::vector<Value> v) {
  Column c;
  c.data_ = std::move(v);
  return c;
}

void FilterColumn(const Predicate& pred, const Column& col,
                  std::vector<uint32_t>* sel) {
  size_t kept = 0;
  for (const uint32_t row : *sel) {
    if (col.MatchesAt(pred, row)) (*sel)[kept++] = row;
  }
  sel->resize(kept);
}

}  // namespace adaptdb
