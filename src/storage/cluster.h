/// \file cluster.h
/// \brief Simulated distributed storage fabric and I/O cost accounting.
///
/// The paper evaluates AdaptDB on a 10-node HDFS/Spark cluster. This module
/// replaces that substrate with a deterministic simulator: blocks are placed
/// on nodes, tasks are scheduled locality-aware, and every block read/write
/// is accounted. The paper's own cost analysis (§4.2) justifies modeling
/// join cost as block I/O counts: "[e]ach block incurs approximately the
/// same amount of disk I/O, network access, and CPU", with remote reads
/// only slightly slower than local ones (Fig. 7).

#ifndef ADAPTDB_STORAGE_CLUSTER_H_
#define ADAPTDB_STORAGE_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "io/storage_config.h"
#include "storage/block.h"

namespace adaptdb {

/// Identifier of a cluster node.
using NodeId = int32_t;

/// \brief Counters for all simulated I/O incurred by an operation.
struct IoStats {
  /// Blocks read by a task co-located with the block.
  int64_t local_block_reads = 0;
  /// Blocks read over the (simulated) network.
  int64_t remote_block_reads = 0;
  /// Blocks written (repartitioning output, shuffle spill).
  int64_t block_writes = 0;
  /// Block-equivalents of data moved through a shuffle.
  int64_t shuffled_blocks = 0;

  /// Join partitions that went through a spill file instead of staying
  /// pinned in memory (out-of-core shuffle join / grace-hash fallback).
  /// Logical like the read counters above: determined by the morsel
  /// decomposition, hence identical at any thread count.
  int64_t spilled_partitions = 0;
  /// Encoded bytes written to spill files. Logical (decomposition-derived).
  int64_t spill_bytes_written = 0;
  /// Encoded bytes read back from spill files. Logical.
  int64_t spill_bytes_read = 0;

  /// Buffer-pool hits during the operation (disk-backed stores only; the
  /// logical read counters above are backend-independent).
  int64_t buffer_hits = 0;
  /// Buffer-pool misses, i.e. real physical block reads (preads).
  int64_t buffer_misses = 0;
  /// Blocks physically written back to segment files.
  int64_t physical_block_writes = 0;
  /// Blocks loaded ahead of consumption by scan read-ahead (disk-backed
  /// stores only). A physical-layer counter like the pool hits/misses:
  /// backend-dependent, and — because prefetch outcomes depend on cache
  /// residency at issue time — not guaranteed invariant across thread
  /// counts. The logical read counters above are unaffected.
  int64_t prefetched = 0;
  /// High-water mark of concurrently in-flight async reads (physical, like
  /// prefetched). Merge takes the max of the two sides; Minus keeps the
  /// minuend's value — a peak has no meaningful delta.
  int64_t async_reads_inflight_peak = 0;

  /// Total blocks read, local + remote.
  int64_t TotalReads() const { return local_block_reads + remote_block_reads; }

  /// Adds another stats record into this one.
  void Merge(const IoStats& other);

  /// Field-wise difference (this - other), for snapshot deltas: phase and
  /// span attribution subtracts a "before" copy from the running total.
  IoStats Minus(const IoStats& other) const;

  /// Resets all counters to zero.
  void Reset() { *this = IoStats{}; }

  std::string ToString() const;
};

/// \brief Tuning knobs of the simulated cluster.
struct ClusterConfig {
  /// Number of worker nodes (the paper uses 10).
  int32_t num_nodes = 10;
  /// Seconds to read one block from local disk. Calibrated so that figure
  /// harnesses report times on the paper's scale.
  double block_read_seconds = 0.5;
  /// Multiplier applied to remote block reads (Fig. 7 measures ~18% end-to-
  /// end slowdown at 27% locality, i.e. a per-remote-read penalty ~1.25).
  double remote_penalty = 1.25;
  /// Seconds to durably write one block (HDFS 3-replica pipeline; the
  /// paper's §7.3 observation that "Spark degrades when writing large
  /// amounts of data into HDFS" makes repartitioning writes expensive).
  double durable_write_seconds = 2.0;
  /// Seconds to spill one block to local temp storage during a shuffle
  /// (unreplicated). With these defaults one shuffled block costs
  /// read + spill + remote re-read = 1.625 s ~ 3.25 block-reads, matching
  /// the paper's empirical C_SJ = 3.
  double spill_write_seconds = 0.5;
  /// Blocks a single node can hold in memory for hash tables (the paper's
  /// B; with 4 GB buffers and 64 MB blocks, B = 64).
  int32_t memory_budget_blocks = 64;
  /// Storage backend for every table of a Database built with this config.
  /// With the disk backend, buffer-pool misses are real preads, so wall
  /// clock reflects measured I/O instead of the emulated latency below.
  StorageConfig storage;

  /// Microseconds of *real* wall-clock delay per block read (0 = off).
  /// Used by benchmarks to make the simulator I/O-bound in real time, the
  /// regime the paper's cluster operates in (§4.2): with it enabled, the
  /// parallel execution engine's wall-clock speedup reflects overlapped
  /// block I/O rather than pure CPU scaling, so thread sweeps are
  /// meaningful even on small machines. Accounted IoStats are unaffected.
  int64_t emulate_read_latency_micros = 0;
};

/// \brief Deterministic cluster simulator: placement + cost accounting.
///
/// Placement is round-robin over nodes (HDFS default placement spreads
/// blocks uniformly). Tasks are scheduled on the node owning the majority
/// of their input; reads of co-located blocks are local, the rest remote.
///
/// Thread safety: fully synchronized internally. The placement map is
/// guarded by a reader-writer lock — const methods (Locate, ScheduleTask,
/// ReadBlock, WriteBlocks, ShuffleBlocks, SimulatedSeconds,
/// LocalityFraction) take it shared, the mutators (PlaceBlock,
/// PlaceBlockAt, Evict) exclusive — so one ClusterSim can serve many
/// concurrent queries while adaptation or ingest re-places blocks. The
/// emulated read latency sleeps outside the lock. IoStats accumulation
/// stays caller-owned: each parallel task accumulates into its own IoStats
/// and the driver merges them deterministically; stats pointers are never
/// shared between concurrent tasks.
class ClusterSim {
 public:
  explicit ClusterSim(ClusterConfig config = {});

  const ClusterConfig& config() const { return config_; }

  /// Assigns a block to a node (round-robin) and records the write.
  NodeId PlaceBlock(BlockId block, IoStats* stats = nullptr);

  /// Assigns a block to a specific node (used by locality experiments).
  void PlaceBlockAt(BlockId block, NodeId node);

  /// The node holding `block`.
  Result<NodeId> Locate(BlockId block) const;

  /// Forgets a block's placement (after deletion).
  void Evict(BlockId block);

  /// Chooses the node owning the plurality of `blocks` (task scheduling).
  /// Unplaced blocks are ignored; defaults to node 0 when none are placed.
  NodeId ScheduleTask(const std::vector<BlockId>& blocks) const;

  /// Accounts a read of `block` by a task running on `reader`.
  void ReadBlock(BlockId block, NodeId reader, IoStats* stats) const;

  /// Accounts `n` block writes.
  void WriteBlocks(int64_t n, IoStats* stats) const;

  /// Accounts a shuffle of `n` block-equivalents of data (each shuffled
  /// block is read, written to local spill, and re-read remotely; the
  /// shuffled_blocks counter feeds the C_SJ factor of the cost model).
  void ShuffleBlocks(int64_t n, IoStats* stats) const;

  /// Converts accounted I/O into simulated wall-clock seconds, assuming
  /// perfect parallelism across nodes (the paper's cluster is I/O bound).
  double SimulatedSeconds(const IoStats& stats) const;

  /// Fraction of placed blocks in `blocks` local to `node`.
  double LocalityFraction(const std::vector<BlockId>& blocks,
                          NodeId node) const;

  int32_t num_nodes() const { return config_.num_nodes; }

 private:
  ClusterConfig config_;
  /// Guards next_node_ and placement_ (shared for reads, exclusive for
  /// writes). Heap-allocated so ClusterSim stays movable for test fixtures
  /// (moving is setup-only, never concurrent with serving).
  std::unique_ptr<std::shared_mutex> mu_ =
      std::make_unique<std::shared_mutex>();
  NodeId next_node_ = 0;
  std::unordered_map<BlockId, NodeId> placement_;
};

}  // namespace adaptdb

#endif  // ADAPTDB_STORAGE_CLUSTER_H_
