/// \file rng.h
/// \brief Deterministic pseudo-random number generator (SplitMix64 core).
///
/// All randomized components (upfront partitioner attribute assignment,
/// smooth repartitioning's random block choice, workload generators) take an
/// explicit Rng so experiments are reproducible bit-for-bit.

#ifndef ADAPTDB_COMMON_RNG_H_
#define ADAPTDB_COMMON_RNG_H_

#include <cstdint>

namespace adaptdb {

/// \brief A small, fast, deterministic PRNG (SplitMix64).
class Rng {
 public:
  /// Seeds the generator. The same seed always yields the same stream.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability p of returning true.
  bool Flip(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace adaptdb

#endif  // ADAPTDB_COMMON_RNG_H_
