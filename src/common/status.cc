#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace adaptdb {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCorruption:
      return "Corruption";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += msg_;
  return out;
}

namespace internal {

void DieOnError(const std::string& what, const char* file, int line) {
  std::fprintf(stderr, "ADB_CHECK_OK failed at %s:%d: %s\n", file, line,
               what.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace adaptdb
