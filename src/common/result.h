/// \file result.h
/// \brief Result<T>: a value or an error Status (Arrow idiom).

#ifndef ADAPTDB_COMMON_RESULT_H_
#define ADAPTDB_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/status.h"

namespace adaptdb {

/// \brief Holds either a successfully computed T or an error Status.
///
/// Construction from a T yields an OK result; construction from a non-OK
/// Status yields an error result. Accessing the value of an error result
/// aborts (it is a programming bug, like dereferencing an empty optional).
template <typename T>
class Result {
 public:
  /// Constructs an OK result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs an error result from a non-OK status.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    if (status_.ok()) {
      internal::DieOnError("Result constructed from OK status without value",
                           __FILE__, __LINE__);
    }
  }

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present.
  const Status& status() const { return status_; }

  /// The contained value; aborts on error results.
  const T& ValueOrDie() const& {
    EnsureOk();
    return *value_;
  }
  /// The contained value (mutable); aborts on error results.
  T& ValueOrDie() & {
    EnsureOk();
    return *value_;
  }
  /// Moves the contained value out; aborts on error results.
  T ValueOrDie() && {
    EnsureOk();
    return std::move(*value_);
  }

  /// Alias for ValueOrDie, matching Arrow's operator* convention.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }

 private:
  void EnsureOk() const {
    if (!ok()) {
      internal::DieOnError("Result::ValueOrDie on error: " + status_.ToString(),
                           __FILE__, __LINE__);
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace adaptdb

/// Assigns the value of a Result expression to `lhs`, or propagates the error.
#define ADB_ASSIGN_OR_RETURN(lhs, rexpr)           \
  auto _res_##__LINE__ = (rexpr);                  \
  if (!_res_##__LINE__.ok()) return _res_##__LINE__.status(); \
  lhs = std::move(_res_##__LINE__).ValueOrDie()

#endif  // ADAPTDB_COMMON_RESULT_H_
