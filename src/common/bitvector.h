/// \file bitvector.h
/// \brief Packed fixed-width bit vector used for hyper-join overlap vectors.
///
/// The hyper-join grouping algorithms (paper §4.1) operate on m-dimensional
/// 0/1 vectors v_i where bit j says whether block r_i of relation R overlaps
/// block s_j of relation S on the join attribute. The inner loop of the
/// bottom-up grouping computes `popcount(v_i | acc)` over all unplaced
/// blocks, so BitVector provides a fused CountOr that avoids materializing
/// the union.

#ifndef ADAPTDB_COMMON_BITVECTOR_H_
#define ADAPTDB_COMMON_BITVECTOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace adaptdb {

/// \brief A fixed-size vector of bits packed into 64-bit words.
class BitVector {
 public:
  /// Constructs an empty (zero-width) vector.
  BitVector() = default;

  /// Constructs a vector of `num_bits` bits, all clear.
  explicit BitVector(size_t num_bits);

  /// Number of addressable bits.
  size_t size() const { return num_bits_; }

  /// True iff the vector has zero width.
  bool empty() const { return num_bits_ == 0; }

  /// Sets bit `i` to 1. Precondition: i < size().
  void Set(size_t i);

  /// Clears bit `i`. Precondition: i < size().
  void Clear(size_t i);

  /// Returns bit `i`. Precondition: i < size().
  bool Get(size_t i) const;

  /// Number of set bits (the paper's delta(v)).
  size_t Count() const;

  /// In-place union: *this |= other, zero-extending the narrower side. On
  /// mismatched widths this vector widens to the larger width, so
  /// `a.OrWith(b); a.Count()` always equals `a.CountOr(b)` beforehand.
  void OrWith(const BitVector& other);

  /// popcount(*this | other) without materializing the union. On mismatched
  /// widths, missing bits read as zero (the longer tail still counts).
  size_t CountOr(const BitVector& other) const;

  /// popcount(*this & other). On mismatched widths, missing bits read as
  /// zero, so only the shared prefix can contribute.
  size_t CountAnd(const BitVector& other) const;

  /// True iff (*this & other) has at least one set bit.
  bool Intersects(const BitVector& other) const;

  /// Sets all bits to zero.
  void Reset();

  /// Indices of all set bits, ascending.
  std::vector<size_t> SetBits() const;

  /// A 64-bit content hash (FNV-1a over the packed words). Used by search
  /// algorithms for state dominance signatures.
  uint64_t Hash() const;

  /// Renders as a '0'/'1' string, most significant index last
  /// (i.e. left-to-right bit 0, bit 1, ...), matching the paper's examples.
  std::string ToString() const;

  bool operator==(const BitVector& other) const {
    return num_bits_ == other.num_bits_ && words_ == other.words_;
  }

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace adaptdb

#endif  // ADAPTDB_COMMON_BITVECTOR_H_
