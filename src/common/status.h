/// \file status.h
/// \brief Error-handling primitives in the Arrow/RocksDB style.
///
/// All fallible operations in AdaptDB return a Status (or a Result<T>, see
/// result.h). Exceptions are never thrown across module boundaries.

#ifndef ADAPTDB_COMMON_STATUS_H_
#define ADAPTDB_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace adaptdb {

/// \brief Machine-readable error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kNotImplemented,
  kInternal,
  kResourceExhausted,
  kCorruption,
};

/// \brief Returns a short human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief The result of a fallible operation: a code plus a message.
///
/// An OK status carries no allocation; error statuses carry a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  /// Returns an OK status.
  static Status OK() { return Status(); }
  /// Returns an InvalidArgument error.
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  /// Returns a NotFound error.
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  /// Returns an AlreadyExists error.
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  /// Returns an OutOfRange error.
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  /// Returns a NotImplemented error.
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  /// Returns an Internal error.
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// Returns a ResourceExhausted error.
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// Returns a Corruption error (on-disk data failed validation).
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The error message (empty for OK).
  const std::string& message() const { return msg_; }
  /// Renders "Code: message" for logging.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

}  // namespace adaptdb

/// Propagates a non-OK Status to the caller.
#define ADB_RETURN_NOT_OK(expr)                \
  do {                                         \
    ::adaptdb::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Aborts the process if `expr` is a non-OK Status. For use in tests,
/// examples and benchmark mains where errors are programming bugs.
#define ADB_CHECK_OK(expr)                                              \
  do {                                                                  \
    ::adaptdb::Status _st = (expr);                                     \
    if (!_st.ok()) {                                                    \
      ::adaptdb::internal::DieOnError(_st.ToString(), __FILE__, __LINE__); \
    }                                                                   \
  } while (0)

namespace adaptdb::internal {
/// Prints the message and aborts. Used by ADB_CHECK_OK.
[[noreturn]] void DieOnError(const std::string& what, const char* file,
                             int line);
}  // namespace adaptdb::internal

#endif  // ADAPTDB_COMMON_STATUS_H_
