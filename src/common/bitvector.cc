#include "common/bitvector.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace adaptdb {

namespace {
constexpr size_t kWordBits = 64;
}  // namespace

BitVector::BitVector(size_t num_bits)
    : num_bits_(num_bits), words_((num_bits + kWordBits - 1) / kWordBits, 0) {}

void BitVector::Set(size_t i) {
  assert(i < num_bits_);
  words_[i / kWordBits] |= uint64_t{1} << (i % kWordBits);
}

void BitVector::Clear(size_t i) {
  assert(i < num_bits_);
  words_[i / kWordBits] &= ~(uint64_t{1} << (i % kWordBits));
}

bool BitVector::Get(size_t i) const {
  assert(i < num_bits_);
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1;
}

size_t BitVector::Count() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
  return n;
}

void BitVector::OrWith(const BitVector& other) {
  // True zero-extending union: the receiver widens to the larger width, so
  // CountOr(other) == popcount(*this | other) holds for every width pair.
  if (other.num_bits_ > num_bits_) {
    num_bits_ = other.num_bits_;
    words_.resize(other.words_.size(), 0);
  }
  for (size_t i = 0; i < other.words_.size(); ++i) words_[i] |= other.words_[i];
}

size_t BitVector::CountOr(const BitVector& other) const {
  const size_t shared = std::min(words_.size(), other.words_.size());
  size_t n = 0;
  for (size_t i = 0; i < shared; ++i) {
    n += static_cast<size_t>(std::popcount(words_[i] | other.words_[i]));
  }
  const auto& longer = words_.size() > shared ? words_ : other.words_;
  for (size_t i = shared; i < longer.size(); ++i) {
    n += static_cast<size_t>(std::popcount(longer[i]));
  }
  return n;
}

size_t BitVector::CountAnd(const BitVector& other) const {
  const size_t shared = std::min(words_.size(), other.words_.size());
  size_t n = 0;
  for (size_t i = 0; i < shared; ++i) {
    n += static_cast<size_t>(std::popcount(words_[i] & other.words_[i]));
  }
  return n;
}

bool BitVector::Intersects(const BitVector& other) const {
  const size_t shared = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < shared; ++i) {
    if (words_[i] & other.words_[i]) return true;
  }
  return false;
}

void BitVector::Reset() {
  for (uint64_t& w : words_) w = 0;
}

std::vector<size_t> BitVector::SetBits() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < num_bits_; ++i) {
    if (Get(i)) out.push_back(i);
  }
  return out;
}

uint64_t BitVector::Hash() const {
  uint64_t h = 1469598103934665603ull;
  for (uint64_t w : words_) {
    for (int i = 0; i < 8; ++i) {
      h ^= (w >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  return h;
}

std::string BitVector::ToString() const {
  std::string s;
  s.reserve(num_bits_);
  for (size_t i = 0; i < num_bits_; ++i) s.push_back(Get(i) ? '1' : '0');
  return s;
}

}  // namespace adaptdb
