#include "workload/tpch_queries.h"

#include "workload/tpch.h"

namespace adaptdb::tpch {

namespace {
Predicate Pred(AttrId a, CompareOp op, Value v) {
  return Predicate(a, op, std::move(v));
}
}  // namespace

Query MakeQ3(Rng* rng) {
  Query q;
  q.name = "q3";
  const int64_t date = YearStart(1995) + rng->UniformRange(0, 90);
  q.tables = {
      {"lineitem", {Pred(kLShipDate, CompareOp::kGt, date)}},
      {"orders", {Pred(kOOrderDate, CompareOp::kLt, date)}},
      {"customer", {Pred(kCMktSegment, CompareOp::kEq, rng->UniformRange(0, 4))}},
  };
  q.joins = {{"lineitem", kLOrderKey, "orders", kOOrderKey},
             {"orders", kOCustKey, "customer", kCCustKey}};
  return q;
}

Query MakeQ5(Rng* rng) {
  Query q;
  q.name = "q5";
  const int32_t year = static_cast<int32_t>(rng->UniformRange(1993, 1997));
  const int64_t region = rng->UniformRange(0, 4);
  q.tables = {
      {"lineitem", {}},  // q5 has no lineitem predicate (§5.3).
      {"orders",
       {Pred(kOOrderDate, CompareOp::kGe, YearStart(year)),
        Pred(kOOrderDate, CompareOp::kLt, YearStart(year + 1))}},
      {"customer",
       {Pred(kCNationKey, CompareOp::kGe, region * 5),
        Pred(kCNationKey, CompareOp::kLt, (region + 1) * 5)}},
      {"supplier",
       {Pred(kSNationKey, CompareOp::kGe, region * 5),
        Pred(kSNationKey, CompareOp::kLt, (region + 1) * 5)}},
  };
  q.joins = {{"lineitem", kLOrderKey, "orders", kOOrderKey},
             {"orders", kOCustKey, "customer", kCCustKey},
             {"lineitem", kLSuppKey, "supplier", kSSuppKey}};
  return q;
}

Query MakeQ6(Rng* rng) {
  Query q;
  q.name = "q6";
  const int32_t year = static_cast<int32_t>(rng->UniformRange(1993, 1997));
  const double disc =
      static_cast<double>(rng->UniformRange(2, 9)) / 100.0;
  q.tables = {
      {"lineitem",
       {Pred(kLShipDate, CompareOp::kGe, YearStart(year)),
        Pred(kLShipDate, CompareOp::kLt, YearStart(year + 1)),
        Pred(kLDiscount, CompareOp::kGe, disc - 0.011),
        Pred(kLDiscount, CompareOp::kLe, disc + 0.011),
        Pred(kLQuantity, CompareOp::kLt, rng->UniformRange(24, 25))}},
  };
  return q;
}

Query MakeQ8(Rng* rng) {
  Query q;
  q.name = "q8";
  q.tables = {
      {"lineitem", {}},  // q8 has no lineitem predicate (§5.3).
      {"part", {Pred(kPType, CompareOp::kEq, rng->UniformRange(0, 149))}},
      {"orders",
       {Pred(kOOrderDate, CompareOp::kGe, YearStart(1995)),
        Pred(kOOrderDate, CompareOp::kLe, YearStart(1997) - 1)}},
      {"customer",
       {Pred(kCNationKey, CompareOp::kEq, rng->UniformRange(0, 24))}},
  };
  q.joins = {{"lineitem", kLPartKey, "part", kPPartKey},
             {"lineitem", kLOrderKey, "orders", kOOrderKey},
             {"orders", kOCustKey, "customer", kCCustKey}};
  return q;
}

Query MakeQ10(Rng* rng) {
  Query q;
  q.name = "q10";
  const int64_t qstart =
      YearStart(1993) + 91 * rng->UniformRange(0, 7);
  q.tables = {
      {"lineitem", {Pred(kLReturnFlag, CompareOp::kEq, int64_t{2})}},
      {"orders",
       {Pred(kOOrderDate, CompareOp::kGe, qstart),
        Pred(kOOrderDate, CompareOp::kLt, qstart + 91)}},
      {"customer", {}},
  };
  q.joins = {{"lineitem", kLOrderKey, "orders", kOOrderKey},
             {"orders", kOCustKey, "customer", kCCustKey}};
  return q;
}

Query MakeQ12(Rng* rng) {
  Query q;
  q.name = "q12";
  const int32_t year = static_cast<int32_t>(rng->UniformRange(1993, 1997));
  q.tables = {
      {"lineitem",
       {Pred(kLShipMode, CompareOp::kEq, rng->UniformRange(0, 6)),
        Pred(kLReceiptDate, CompareOp::kGe, YearStart(year)),
        Pred(kLReceiptDate, CompareOp::kLt, YearStart(year + 1))}},
      {"orders", {}},
  };
  q.joins = {{"lineitem", kLOrderKey, "orders", kOOrderKey}};
  return q;
}

Query MakeQ14(Rng* rng) {
  Query q;
  q.name = "q14";
  const int64_t month_start =
      YearStart(1993) + 30 * rng->UniformRange(0, 59);
  q.tables = {
      {"lineitem",
       {Pred(kLShipDate, CompareOp::kGe, month_start),
        Pred(kLShipDate, CompareOp::kLt, month_start + 30)}},
      {"part", {}},
  };
  q.joins = {{"lineitem", kLPartKey, "part", kPPartKey}};
  return q;
}

Query MakeQ19(Rng* rng) {
  Query q;
  q.name = "q19";
  const int64_t qty = rng->UniformRange(1, 30);
  q.tables = {
      {"lineitem",
       {Pred(kLQuantity, CompareOp::kGe, qty),
        Pred(kLQuantity, CompareOp::kLe, qty + 10),
        Pred(kLShipInstruct, CompareOp::kEq, int64_t{0}),
        Pred(kLShipMode, CompareOp::kLe, int64_t{1})}},
      {"part",
       {Pred(kPBrand, CompareOp::kEq, rng->UniformRange(0, 24)),
        Pred(kPSize, CompareOp::kGe, int64_t{1}),
        Pred(kPSize, CompareOp::kLe, rng->UniformRange(5, 15))}},
  };
  q.joins = {{"lineitem", kLPartKey, "part", kPPartKey}};
  return q;
}

Result<Query> MakeQuery(const std::string& name, Rng* rng) {
  if (name == "q3") return MakeQ3(rng);
  if (name == "q5") return MakeQ5(rng);
  if (name == "q6") return MakeQ6(rng);
  if (name == "q8") return MakeQ8(rng);
  if (name == "q10") return MakeQ10(rng);
  if (name == "q12") return MakeQ12(rng);
  if (name == "q14") return MakeQ14(rng);
  if (name == "q19") return MakeQ19(rng);
  return Status::NotFound("unknown TPC-H template '" + name + "'");
}

const std::vector<std::string>& TemplateNames() {
  static const std::vector<std::string> kNames = {"q3",  "q5",  "q6",  "q8",
                                                  "q10", "q12", "q14", "q19"};
  return kNames;
}

}  // namespace adaptdb::tpch
