/// \file cmt.h
/// \brief The CMT telematics dataset and query trace (paper §7.1, §7.6).
///
/// The paper's real workload comes from Cambridge Mobile Telematics: a trips
/// fact table plus a table of historical processed results per trip and a
/// table of the most recent processed result per trip, queried by a 103-query
/// production trace of exploratory analyses. The original data is
/// proprietary; like the paper itself, we generate a synthetic dataset from
/// the disclosed statistics, and synthesize a 103-query trace with the
/// trace's documented structure: most queries look up a trip or join trip
/// metadata with its historical processing, a few read the latest results,
/// and a batch of queries between positions ~30 and ~50 fetches a large
/// fraction of the data (the spikes in Fig. 18).

#ifndef ADAPTDB_WORKLOAD_CMT_H_
#define ADAPTDB_WORKLOAD_CMT_H_

#include <vector>

#include "adapt/query.h"
#include "common/rng.h"
#include "schema/schema.h"

namespace adaptdb::cmt {

/// trips attribute indices (fact table).
enum Trips : AttrId {
  kTripId = 0,
  kUserId = 1,
  kStartTime = 2,
  kEndTime = 3,
  kAvgVelocity = 4,
  kMaxVelocity = 5,
  kDistanceKm = 6,
  kPhoneModel = 7,
  kOsVersion = 8,
  kHardBrakes = 9,
  kNightFraction = 10,
  kScorePreview = 11,
};

/// results_history attribute indices.
enum History : AttrId {
  kHTripId = 0,
  kHVersion = 1,
  kHProcessedTime = 2,
  kHScore = 3,
  kHRiskFlags = 4,
  kHModelId = 5,
};

/// results_latest attribute indices.
enum Latest : AttrId {
  kRTripId = 0,
  kRProcessedTime = 1,
  kRScore = 2,
  kRRiskFlags = 3,
};

/// \brief Generator knobs. Versions-per-trip drives the history fan-out.
struct CmtConfig {
  int64_t num_trips = 20000;
  int64_t num_users = 800;
  int32_t avg_versions_per_trip = 2;
  uint64_t seed = 1234;
};

/// \brief The generated dataset.
struct CmtData {
  Schema trips_schema;
  Schema history_schema;
  Schema latest_schema;
  std::vector<Record> trips;
  std::vector<Record> history;
  std::vector<Record> latest;
  int64_t max_time = 0;
};

/// Generates the dataset deterministically.
CmtData GenerateCmt(const CmtConfig& config);

/// Synthesizes the 103-query trace over `data`.
std::vector<Query> MakeTrace(const CmtData& data, uint64_t seed);

}  // namespace adaptdb::cmt

#endif  // ADAPTDB_WORKLOAD_CMT_H_
