#include "workload/tpch.h"

#include "common/rng.h"

namespace adaptdb::tpch {

int64_t YearStart(int32_t year) {
  // 1992..1999; 1992 and 1996 are leap years.
  static const int64_t kStarts[] = {0,    366,  731,  1096, 1461,
                                    1827, 2192, 2557, 2922};
  const int32_t idx = year - 1992;
  if (idx < 0) return 0;
  if (idx > 8) return kStarts[8];
  return kStarts[idx];
}

Schema LineitemSchema() {
  return Schema({{"l_orderkey", DataType::kInt64, 8},
                 {"l_partkey", DataType::kInt64, 8},
                 {"l_suppkey", DataType::kInt64, 8},
                 {"l_linenumber", DataType::kInt64, 4},
                 {"l_quantity", DataType::kInt64, 8},
                 {"l_extendedprice", DataType::kDouble, 8},
                 {"l_discount", DataType::kDouble, 8},
                 {"l_tax", DataType::kDouble, 8},
                 {"l_returnflag", DataType::kInt64, 1},
                 {"l_linestatus", DataType::kInt64, 1},
                 {"l_shipdate", DataType::kInt64, 4},
                 {"l_commitdate", DataType::kInt64, 4},
                 {"l_receiptdate", DataType::kInt64, 4},
                 {"l_shipinstruct", DataType::kInt64, 4},
                 {"l_shipmode", DataType::kInt64, 4},
                 {"l_comment_hash", DataType::kInt64, 8}});
}

Schema OrdersSchema() {
  return Schema({{"o_orderkey", DataType::kInt64, 8},
                 {"o_custkey", DataType::kInt64, 8},
                 {"o_orderstatus", DataType::kInt64, 1},
                 {"o_totalprice", DataType::kDouble, 8},
                 {"o_orderdate", DataType::kInt64, 4},
                 {"o_orderpriority", DataType::kInt64, 4},
                 {"o_clerk", DataType::kInt64, 8},
                 {"o_shippriority", DataType::kInt64, 4},
                 {"o_comment_hash", DataType::kInt64, 8}});
}

Schema CustomerSchema() {
  return Schema({{"c_custkey", DataType::kInt64, 8},
                 {"c_name_hash", DataType::kInt64, 8},
                 {"c_address_hash", DataType::kInt64, 8},
                 {"c_nationkey", DataType::kInt64, 4},
                 {"c_phone_hash", DataType::kInt64, 8},
                 {"c_acctbal", DataType::kDouble, 8},
                 {"c_mktsegment", DataType::kInt64, 4},
                 {"c_comment_hash", DataType::kInt64, 8}});
}

Schema PartSchema() {
  return Schema({{"p_partkey", DataType::kInt64, 8},
                 {"p_name_hash", DataType::kInt64, 8},
                 {"p_mfgr", DataType::kInt64, 4},
                 {"p_brand", DataType::kInt64, 4},
                 {"p_type", DataType::kInt64, 4},
                 {"p_size", DataType::kInt64, 4},
                 {"p_container", DataType::kInt64, 4},
                 {"p_retailprice", DataType::kDouble, 8},
                 {"p_comment_hash", DataType::kInt64, 8}});
}

Schema SupplierSchema() {
  return Schema({{"s_suppkey", DataType::kInt64, 8},
                 {"s_name_hash", DataType::kInt64, 8},
                 {"s_address_hash", DataType::kInt64, 8},
                 {"s_nationkey", DataType::kInt64, 4},
                 {"s_phone_hash", DataType::kInt64, 8},
                 {"s_acctbal", DataType::kDouble, 8},
                 {"s_comment_hash", DataType::kInt64, 8}});
}

TpchData GenerateTpch(const TpchConfig& config) {
  TpchData data;
  data.lineitem_schema = LineitemSchema();
  data.orders_schema = OrdersSchema();
  data.customer_schema = CustomerSchema();
  data.part_schema = PartSchema();
  data.supplier_schema = SupplierSchema();

  Rng rng(config.seed);
  const int64_t num_orders = config.num_orders;
  // TPC-H ratios relative to orders (= 1.5M at SF 1):
  // parts 200k, suppliers 10k, customers 150k.
  data.num_parts = std::max<int64_t>(num_orders * 2 / 15, 16);
  data.num_suppliers = std::max<int64_t>(num_orders / 150, 4);
  data.num_customers = std::max<int64_t>(num_orders / 10, 16);

  // customer
  data.customer.reserve(static_cast<size_t>(data.num_customers));
  for (int64_t c = 1; c <= data.num_customers; ++c) {
    data.customer.push_back(Record{
        Value(c), Value(static_cast<int64_t>(rng.Next() % 100000)),
        Value(static_cast<int64_t>(rng.Next() % 100000)),
        Value(rng.UniformRange(0, 24)),
        Value(static_cast<int64_t>(rng.Next() % 100000)),
        Value(rng.NextDouble() * 10000.0 - 1000.0),
        Value(rng.UniformRange(0, 4)),
        Value(static_cast<int64_t>(rng.Next() % 100000))});
  }

  // part
  data.part.reserve(static_cast<size_t>(data.num_parts));
  for (int64_t p = 1; p <= data.num_parts; ++p) {
    data.part.push_back(Record{
        Value(p), Value(static_cast<int64_t>(rng.Next() % 100000)),
        Value(rng.UniformRange(0, 4)), Value(rng.UniformRange(0, 24)),
        Value(rng.UniformRange(0, 149)), Value(rng.UniformRange(1, 50)),
        Value(rng.UniformRange(0, 39)),
        Value(900.0 + static_cast<double>(p % 1000) / 10.0),
        Value(static_cast<int64_t>(rng.Next() % 100000))});
  }

  // supplier
  data.supplier.reserve(static_cast<size_t>(data.num_suppliers));
  for (int64_t s = 1; s <= data.num_suppliers; ++s) {
    data.supplier.push_back(Record{
        Value(s), Value(static_cast<int64_t>(rng.Next() % 100000)),
        Value(static_cast<int64_t>(rng.Next() % 100000)),
        Value(rng.UniformRange(0, 24)),
        Value(static_cast<int64_t>(rng.Next() % 100000)),
        Value(rng.NextDouble() * 10000.0 - 1000.0),
        Value(static_cast<int64_t>(rng.Next() % 100000))});
  }

  // orders + lineitem
  data.orders.reserve(static_cast<size_t>(num_orders));
  data.lineitem.reserve(static_cast<size_t>(
      num_orders * config.avg_lines_per_order));
  for (int64_t o = 1; o <= num_orders; ++o) {
    const int64_t orderdate = rng.UniformRange(kMinDate, kMaxDate - 151);
    const int64_t custkey = rng.UniformRange(1, data.num_customers);
    data.orders.push_back(Record{
        Value(o), Value(custkey), Value(rng.UniformRange(0, 2)),
        Value(rng.NextDouble() * 400000.0 + 1000.0), Value(orderdate),
        Value(rng.UniformRange(0, 4)),
        Value(static_cast<int64_t>(rng.Next() % 1000)),
        Value(int64_t{0}), Value(static_cast<int64_t>(rng.Next() % 100000))});

    const int64_t nlines =
        rng.UniformRange(1, 2 * config.avg_lines_per_order - 1);
    for (int64_t ln = 1; ln <= nlines; ++ln) {
      const int64_t shipdate = orderdate + rng.UniformRange(1, 121);
      const int64_t commitdate = orderdate + rng.UniformRange(30, 90);
      const int64_t receiptdate = shipdate + rng.UniformRange(1, 30);
      const int64_t quantity = rng.UniformRange(1, 50);
      const int64_t partkey = rng.UniformRange(1, data.num_parts);
      data.lineitem.push_back(Record{
          Value(o), Value(partkey),
          Value(rng.UniformRange(1, data.num_suppliers)), Value(ln),
          Value(quantity),
          Value(static_cast<double>(quantity) *
                (900.0 + static_cast<double>(partkey % 1000) / 10.0)),
          Value(static_cast<double>(rng.UniformRange(0, 10)) / 100.0),
          Value(static_cast<double>(rng.UniformRange(0, 8)) / 100.0),
          Value(rng.UniformRange(0, 2)), Value(rng.UniformRange(0, 1)),
          Value(shipdate), Value(commitdate), Value(receiptdate),
          Value(rng.UniformRange(0, 3)), Value(rng.UniformRange(0, 6)),
          Value(static_cast<int64_t>(rng.Next() % 100000))});
    }
  }
  return data;
}

}  // namespace adaptdb::tpch
