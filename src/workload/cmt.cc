#include "workload/cmt.h"

#include <algorithm>

namespace adaptdb::cmt {

namespace {
constexpr int64_t kSecondsPerDay = 86400;
constexpr int64_t kTraceDays = 730;  // Two years of trips.
}  // namespace

CmtData GenerateCmt(const CmtConfig& config) {
  CmtData data;
  data.trips_schema = Schema({{"trip_id", DataType::kInt64, 8},
                              {"user_id", DataType::kInt64, 8},
                              {"start_time", DataType::kInt64, 8},
                              {"end_time", DataType::kInt64, 8},
                              {"avg_velocity", DataType::kDouble, 8},
                              {"max_velocity", DataType::kDouble, 8},
                              {"distance_km", DataType::kDouble, 8},
                              {"phone_model", DataType::kInt64, 4},
                              {"os_version", DataType::kInt64, 4},
                              {"hard_brakes", DataType::kInt64, 4},
                              {"night_fraction", DataType::kDouble, 8},
                              {"score_preview", DataType::kDouble, 8}});
  data.history_schema = Schema({{"trip_id", DataType::kInt64, 8},
                                {"version", DataType::kInt64, 4},
                                {"processed_time", DataType::kInt64, 8},
                                {"score", DataType::kDouble, 8},
                                {"risk_flags", DataType::kInt64, 4},
                                {"model_id", DataType::kInt64, 4}});
  data.latest_schema = Schema({{"trip_id", DataType::kInt64, 8},
                               {"processed_time", DataType::kInt64, 8},
                               {"score", DataType::kDouble, 8},
                               {"risk_flags", DataType::kInt64, 4}});

  Rng rng(config.seed);
  data.max_time = kTraceDays * kSecondsPerDay;
  data.trips.reserve(static_cast<size_t>(config.num_trips));
  for (int64_t t = 1; t <= config.num_trips; ++t) {
    const int64_t start = rng.UniformRange(0, data.max_time - 7200);
    const int64_t duration = rng.UniformRange(300, 7200);
    const double avg_v = 20.0 + rng.NextDouble() * 80.0;
    data.trips.push_back(Record{
        Value(t), Value(rng.UniformRange(1, config.num_users)), Value(start),
        Value(start + duration), Value(avg_v),
        Value(avg_v * (1.2 + rng.NextDouble())),
        Value(avg_v * static_cast<double>(duration) / 3600.0),
        Value(rng.UniformRange(0, 19)), Value(rng.UniformRange(0, 7)),
        Value(rng.UniformRange(0, 9)), Value(rng.NextDouble()),
        Value(rng.NextDouble() * 100.0)});

    const int64_t versions =
        rng.UniformRange(1, 2 * config.avg_versions_per_trip - 1);
    int64_t processed = start + duration + rng.UniformRange(60, 3600);
    for (int64_t v = 1; v <= versions; ++v) {
      data.history.push_back(Record{Value(t), Value(v), Value(processed),
                                    Value(rng.NextDouble() * 100.0),
                                    Value(rng.UniformRange(0, 15)),
                                    Value(rng.UniformRange(1, 5))});
      if (v == versions) {
        data.latest.push_back(Record{Value(t), Value(processed),
                                     Value(rng.NextDouble() * 100.0),
                                     Value(rng.UniformRange(0, 15))});
      }
      processed += rng.UniformRange(3600, 30 * kSecondsPerDay);
    }
  }
  return data;
}

std::vector<Query> MakeTrace(const CmtData& data, uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> trace;
  trace.reserve(103);
  const int64_t num_trips = static_cast<int64_t>(data.trips.size());

  for (int32_t i = 0; i < 103; ++i) {
    Query q;
    const bool big_batch = i >= 30 && i < 50 && rng.Flip(0.6);
    const double dice = rng.NextDouble();
    if (big_batch) {
      // Analysts re-scoring a long time window: trips ⋈ history over a
      // large fraction of the data (the Fig. 18 spikes).
      q.name = "cmt_big_join";
      const int64_t start =
          rng.UniformRange(0, data.max_time / 4);
      q.tables = {{"trips",
                   {Predicate(kStartTime, CompareOp::kGe, start),
                    Predicate(kStartTime, CompareOp::kLt,
                              start + data.max_time / 2)}},
                  {"history", {}}};
      q.joins = {{"trips", kTripId, "history", kHTripId}};
    } else if (dice < 0.35) {
      // Trip lookup by id range (exploring one upload batch).
      q.name = "cmt_trip_lookup";
      const int64_t lo =
          rng.UniformRange(1, std::max<int64_t>(1, num_trips - 50));
      q.tables = {{"trips",
                   {Predicate(kTripId, CompareOp::kGe, lo),
                    Predicate(kTripId, CompareOp::kLt, lo + 50)}}};
    } else if (dice < 0.55) {
      // One user's trips in a time window.
      q.name = "cmt_user_window";
      const int64_t start = rng.UniformRange(0, data.max_time * 3 / 4);
      q.tables = {{"trips",
                   {Predicate(kUserId, CompareOp::kEq,
                              rng.UniformRange(1, 800)),
                    Predicate(kStartTime, CompareOp::kGe, start),
                    Predicate(kStartTime, CompareOp::kLt,
                              start + 30 * kSecondsPerDay)}}};
    } else if (dice < 0.85) {
      // Trip metadata joined with its processing history.
      q.name = "cmt_history_join";
      const int64_t start = rng.UniformRange(0, data.max_time * 3 / 4);
      q.tables = {{"trips",
                   {Predicate(kStartTime, CompareOp::kGe, start),
                    Predicate(kStartTime, CompareOp::kLt,
                              start + 60 * kSecondsPerDay)}},
                  {"history",
                   {Predicate(kHScore, CompareOp::kGe, 0.0)}}};
      q.joins = {{"trips", kTripId, "history", kHTripId}};
    } else {
      // Most recent result for a slice of trips.
      q.name = "cmt_latest_join";
      const int64_t lo =
          rng.UniformRange(1, std::max<int64_t>(1, num_trips - 2000));
      q.tables = {{"trips",
                   {Predicate(kTripId, CompareOp::kGe, lo),
                    Predicate(kTripId, CompareOp::kLt, lo + 2000)}},
                  {"latest", {}}};
      q.joins = {{"trips", kTripId, "latest", kRTripId}};
    }
    trace.push_back(std::move(q));
  }
  return trace;
}

}  // namespace adaptdb::cmt
