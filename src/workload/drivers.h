/// \file drivers.h
/// \brief Workload sequence builders and the query-stream runner (§7.3,
/// §7.4): the switching and shifting TPC-H workloads of Fig. 13, the
/// q14↔q19 window-size workload of Fig. 15, and a generic runner that
/// executes a query stream against a Database and collects per-query
/// latencies.

#ifndef ADAPTDB_WORKLOAD_DRIVERS_H_
#define ADAPTDB_WORKLOAD_DRIVERS_H_

#include <string>
#include <vector>

#include "core/database.h"
#include "workload/tpch.h"
#include "workload/tpch_queries.h"

namespace adaptdb {

/// \brief Per-query outcomes of a workload run.
struct WorkloadResult {
  std::vector<double> seconds;
  std::vector<QueryRunResult> details;
  double total_seconds = 0;

  /// Mean latency over queries [lo, hi).
  double MeanSeconds(size_t lo, size_t hi) const;
};

/// Runs a query stream in order, collecting latencies.
Result<WorkloadResult> RunWorkload(Database* db,
                                   const std::vector<Query>& stream);

/// The Fig. 13a switching workload: `per_template` queries of each template
/// in order (paper: 20 each of q3, q5, q6, q8, q10, q12, q14, q19 = 160).
std::vector<Query> SwitchingWorkload(const std::vector<std::string>& templates,
                                     int32_t per_template, uint64_t seed);

/// The Fig. 13b shifting workload: consecutive template pairs cross-fade
/// over `transition` queries each, the mix probability moving 1/transition
/// per query (paper: 20-query transitions over the eight templates = 140).
std::vector<Query> ShiftingWorkload(const std::vector<std::string>& templates,
                                    int32_t transition, uint64_t seed);

/// The Fig. 15 workload: 10×q14, 20-query shift to q19, 10×q19, 20-query
/// shift back, 10×q14 (70 queries total).
std::vector<Query> WindowSizeWorkload(uint64_t seed);

/// Loads the five TPC-H tables into `db` with block counts scaled so each
/// table splits into about 2^levels blocks.
Status LoadTpch(Database* db, const tpch::TpchData& data,
                int32_t lineitem_levels, int32_t orders_levels,
                int32_t small_levels, uint64_t seed = 11);

}  // namespace adaptdb

#endif  // ADAPTDB_WORKLOAD_DRIVERS_H_
