/// \file tpch_queries.h
/// \brief The eight TPC-H query templates the paper evaluates (§7.1):
/// q3, q5, q6, q8, q10, q12, q14, q19, reduced to the join/predicate
/// structure the AdaptDB storage manager sees. Each factory draws fresh
/// predicate constants, mirroring the paper's "queries with different
/// predicate values from each query template".
///
/// Template shapes (joins listed in execution order):
///   q3  : lineitem(shipdate > D) ⋈ orders(orderdate < D) ⋈ customer(segment)
///   q5  : lineitem ⋈ orders(orderdate in year) ⋈ customer(nation region),
///         lineitem ⋈ supplier              [no lineitem predicate]
///   q6  : lineitem(shipdate year, discount band, quantity < c)   [no join]
///   q8  : lineitem ⋈ part(type), lineitem ⋈ orders(1995-96), o ⋈ customer
///   q10 : lineitem(returnflag = R) ⋈ orders(orderdate quarter) ⋈ customer
///   q12 : lineitem(shipmode, receiptdate year) ⋈ orders
///   q14 : lineitem(shipdate month) ⋈ part
///   q19 : lineitem(quantity band, shipinstruct, shipmode) ⋈ part(brand, size)

#ifndef ADAPTDB_WORKLOAD_TPCH_QUERIES_H_
#define ADAPTDB_WORKLOAD_TPCH_QUERIES_H_

#include <string>
#include <vector>

#include "adapt/query.h"
#include "common/result.h"
#include "common/rng.h"

namespace adaptdb::tpch {

Query MakeQ3(Rng* rng);
Query MakeQ5(Rng* rng);
Query MakeQ6(Rng* rng);
Query MakeQ8(Rng* rng);
Query MakeQ10(Rng* rng);
Query MakeQ12(Rng* rng);
Query MakeQ14(Rng* rng);
Query MakeQ19(Rng* rng);

/// Makes a query by template name ("q3" ... "q19").
Result<Query> MakeQuery(const std::string& name, Rng* rng);

/// The template names in the paper's running order.
const std::vector<std::string>& TemplateNames();

}  // namespace adaptdb::tpch

#endif  // ADAPTDB_WORKLOAD_TPCH_QUERIES_H_
