#include "workload/drivers.h"

#include "workload/tpch.h"

namespace adaptdb {

double WorkloadResult::MeanSeconds(size_t lo, size_t hi) const {
  if (hi > seconds.size()) hi = seconds.size();
  if (lo >= hi) return 0;
  double sum = 0;
  for (size_t i = lo; i < hi; ++i) sum += seconds[i];
  return sum / static_cast<double>(hi - lo);
}

Result<WorkloadResult> RunWorkload(Database* db,
                                   const std::vector<Query>& stream) {
  WorkloadResult out;
  out.seconds.reserve(stream.size());
  out.details.reserve(stream.size());
  for (const Query& q : stream) {
    auto run = db->RunQuery(q);
    if (!run.ok()) return run.status();
    out.seconds.push_back(run.ValueOrDie().seconds);
    out.total_seconds += run.ValueOrDie().seconds;
    out.details.push_back(std::move(run).ValueOrDie());
  }
  return out;
}

std::vector<Query> SwitchingWorkload(const std::vector<std::string>& templates,
                                     int32_t per_template, uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> stream;
  for (const std::string& name : templates) {
    for (int32_t i = 0; i < per_template; ++i) {
      auto q = tpch::MakeQuery(name, &rng);
      if (q.ok()) stream.push_back(std::move(q).ValueOrDie());
    }
  }
  return stream;
}

std::vector<Query> ShiftingWorkload(const std::vector<std::string>& templates,
                                    int32_t transition, uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> stream;
  for (size_t t = 0; t + 1 < templates.size(); ++t) {
    for (int32_t i = 0; i < transition; ++i) {
      const double p_next =
          static_cast<double>(i + 1) / static_cast<double>(transition);
      const std::string& name =
          rng.Flip(p_next) ? templates[t + 1] : templates[t];
      auto q = tpch::MakeQuery(name, &rng);
      if (q.ok()) stream.push_back(std::move(q).ValueOrDie());
    }
  }
  return stream;
}

std::vector<Query> WindowSizeWorkload(uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> stream;
  auto push = [&](const std::string& name) {
    auto q = tpch::MakeQuery(name, &rng);
    if (q.ok()) stream.push_back(std::move(q).ValueOrDie());
  };
  for (int i = 0; i < 10; ++i) push("q14");
  for (int i = 0; i < 20; ++i) {
    push(rng.Flip(static_cast<double>(i + 1) / 20.0) ? "q19" : "q14");
  }
  for (int i = 0; i < 10; ++i) push("q19");
  for (int i = 0; i < 20; ++i) {
    push(rng.Flip(static_cast<double>(i + 1) / 20.0) ? "q14" : "q19");
  }
  for (int i = 0; i < 10; ++i) push("q14");
  return stream;
}

Status LoadTpch(Database* db, const tpch::TpchData& data,
                int32_t lineitem_levels, int32_t orders_levels,
                int32_t small_levels, uint64_t seed) {
  TableOptions li;
  li.upfront_levels = lineitem_levels;
  li.seed = seed;
  ADB_RETURN_NOT_OK(
      db->CreateTable("lineitem", data.lineitem_schema, data.lineitem, li));
  TableOptions ord;
  ord.upfront_levels = orders_levels;
  ord.seed = seed + 1;
  ADB_RETURN_NOT_OK(
      db->CreateTable("orders", data.orders_schema, data.orders, ord));
  TableOptions small;
  small.upfront_levels = small_levels;
  small.seed = seed + 2;
  ADB_RETURN_NOT_OK(
      db->CreateTable("customer", data.customer_schema, data.customer, small));
  ADB_RETURN_NOT_OK(db->CreateTable("part", data.part_schema, data.part, small));
  ADB_RETURN_NOT_OK(
      db->CreateTable("supplier", data.supplier_schema, data.supplier, small));
  return Status::OK();
}

}  // namespace adaptdb
