/// \file tpch.h
/// \brief A TPC-H-shaped synthetic data generator (paper §7.1).
///
/// The paper runs TPC-H at scale factor 1000 (1 TB) on a 10-node cluster.
/// We generate the same five tables the chosen query templates touch —
/// lineitem, orders, customer, part, supplier — with TPC-H's cardinality
/// ratios and value distributions, at a configurable scale whose *block
/// counts* land in the paper's regime (the substitution DESIGN.md §2
/// documents). Strings that only ever feed equality predicates are encoded
/// as small integer codes.

#ifndef ADAPTDB_WORKLOAD_TPCH_H_
#define ADAPTDB_WORKLOAD_TPCH_H_

#include <cstdint>
#include <vector>

#include "schema/schema.h"

namespace adaptdb::tpch {

/// lineitem attribute indices.
enum Lineitem : AttrId {
  kLOrderKey = 0,
  kLPartKey = 1,
  kLSuppKey = 2,
  kLLineNumber = 3,
  kLQuantity = 4,
  kLExtendedPrice = 5,
  kLDiscount = 6,
  kLTax = 7,
  kLReturnFlag = 8,
  kLLineStatus = 9,
  kLShipDate = 10,
  kLCommitDate = 11,
  kLReceiptDate = 12,
  kLShipInstruct = 13,
  kLShipMode = 14,
  kLCommentHash = 15,
};

/// orders attribute indices.
enum Orders : AttrId {
  kOOrderKey = 0,
  kOCustKey = 1,
  kOOrderStatus = 2,
  kOTotalPrice = 3,
  kOOrderDate = 4,
  kOOrderPriority = 5,
  kOClerk = 6,
  kOShipPriority = 7,
  kOCommentHash = 8,
};

/// customer attribute indices.
enum Customer : AttrId {
  kCCustKey = 0,
  kCNameHash = 1,
  kCAddressHash = 2,
  kCNationKey = 3,
  kCPhoneHash = 4,
  kCAcctBal = 5,
  kCMktSegment = 6,
  kCCommentHash = 7,
};

/// part attribute indices.
enum Part : AttrId {
  kPPartKey = 0,
  kPNameHash = 1,
  kPMfgr = 2,
  kPBrand = 3,
  kPType = 4,
  kPSize = 5,
  kPContainer = 6,
  kPRetailPrice = 7,
  kPCommentHash = 8,
};

/// supplier attribute indices.
enum Supplier : AttrId {
  kSSuppKey = 0,
  kSNameHash = 1,
  kSAddressHash = 2,
  kSNationKey = 3,
  kSPhoneHash = 4,
  kSAcctBal = 5,
  kSCommentHash = 6,
};

/// Dates are int64 days since 1992-01-01; TPC-H covers 1992-1998.
inline constexpr int64_t kMinDate = 0;
inline constexpr int64_t kMaxDate = 2557;
/// Days-since-epoch for Jan 1 of 1992..1998.
int64_t YearStart(int32_t year);

/// \brief Generator scale knobs. Defaults approximate SF 0.01 with TPC-H's
/// table-size ratios (6:1.5 lineitem:orders etc.).
struct TpchConfig {
  int64_t num_orders = 15000;
  /// Lines per order are uniform in [1, 2*avg-1].
  int32_t avg_lines_per_order = 4;
  uint64_t seed = 42;
};

/// \brief The generated dataset: schemas plus row vectors.
struct TpchData {
  Schema lineitem_schema;
  Schema orders_schema;
  Schema customer_schema;
  Schema part_schema;
  Schema supplier_schema;
  std::vector<Record> lineitem;
  std::vector<Record> orders;
  std::vector<Record> customer;
  std::vector<Record> part;
  std::vector<Record> supplier;

  int64_t num_parts = 0;
  int64_t num_suppliers = 0;
  int64_t num_customers = 0;
};

/// Generates the dataset deterministically from `config`.
TpchData GenerateTpch(const TpchConfig& config);

/// The lineitem schema (16 columns).
Schema LineitemSchema();
/// The orders schema (9 columns).
Schema OrdersSchema();
/// The customer schema (8 columns).
Schema CustomerSchema();
/// The part schema (9 columns).
Schema PartSchema();
/// The supplier schema (7 columns).
Schema SupplierSchema();

}  // namespace adaptdb::tpch

#endif  // ADAPTDB_WORKLOAD_TPCH_H_
