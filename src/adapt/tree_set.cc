#include "adapt/tree_set.h"

#include <algorithm>

namespace adaptdb {

void TreeSet::Add(AttrId attr, PartitionTree tree) {
  trees_.insert_or_assign(attr, std::move(tree));
}

Status TreeSet::Remove(AttrId attr) {
  if (trees_.erase(attr) == 0) {
    return Status::NotFound("no tree for attr " + std::to_string(attr));
  }
  return Status::OK();
}

Result<PartitionTree*> TreeSet::Tree(AttrId attr) {
  auto it = trees_.find(attr);
  if (it == trees_.end()) {
    return Status::NotFound("no tree for attr " + std::to_string(attr));
  }
  return &it->second;
}

Result<const PartitionTree*> TreeSet::Tree(AttrId attr) const {
  auto it = trees_.find(attr);
  if (it == trees_.end()) {
    return Status::NotFound("no tree for attr " + std::to_string(attr));
  }
  return static_cast<const PartitionTree*>(&it->second);
}

std::vector<AttrId> TreeSet::Attrs() const {
  std::vector<AttrId> out;
  out.reserve(trees_.size());
  for (const auto& [attr, _] : trees_) out.push_back(attr);
  return out;
}

std::vector<BlockId> TreeSet::LiveLeaves(AttrId attr,
                                         const BlockStore& store) const {
  std::vector<BlockId> out;
  auto it = trees_.find(attr);
  if (it == trees_.end()) return out;
  for (BlockId b : it->second.Leaves()) {
    if (store.Contains(b)) out.push_back(b);
  }
  return out;
}

std::vector<BlockId> TreeSet::Lookup(AttrId attr, const PredicateSet& preds,
                                     const BlockStore& store) const {
  std::vector<BlockId> out;
  auto it = trees_.find(attr);
  if (it == trees_.end()) return out;
  for (BlockId b : it->second.Lookup(preds)) {
    if (store.Contains(b)) out.push_back(b);
  }
  return out;
}

std::vector<BlockId> TreeSet::LookupAll(const PredicateSet& preds,
                                        const BlockStore& store) const {
  std::vector<BlockId> out;
  for (const auto& [attr, tree] : trees_) {
    for (BlockId b : tree.Lookup(preds)) {
      if (store.Contains(b)) out.push_back(b);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

int64_t TreeSet::RecordsUnder(AttrId attr, const BlockStore& store) const {
  int64_t n = 0;
  for (BlockId b : LiveLeaves(attr, store)) {
    // Metadata-only: never incurs a physical read on buffered stores.
    auto count = store.RecordCount(b);
    if (count.ok()) n += static_cast<int64_t>(count.ValueOrDie());
  }
  return n;
}

std::vector<AttrId> TreeSet::PruneEmpty(BlockStore* store, ClusterSim* cluster,
                                        AttrId keep) {
  std::vector<AttrId> removed;
  for (auto it = trees_.begin(); it != trees_.end();) {
    if (it->first != keep && RecordsUnder(it->first, *store) == 0) {
      for (BlockId b : LiveLeaves(it->first, *store)) {
        (void)store->Delete(b);
        if (cluster != nullptr) cluster->Evict(b);
      }
      removed.push_back(it->first);
      it = trees_.erase(it);
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace adaptdb
