#include "adapt/tree_set.h"

#include <algorithm>
#include <utility>

namespace adaptdb {

Result<const PartitionTree*> TreeSetSnapshot::Tree(AttrId attr) const {
  auto it = trees_.find(attr);
  if (it == trees_.end()) {
    return Status::NotFound("no tree for attr " + std::to_string(attr));
  }
  return static_cast<const PartitionTree*>(it->second.get());
}

std::vector<AttrId> TreeSetSnapshot::Attrs() const {
  std::vector<AttrId> out;
  out.reserve(trees_.size());
  for (const auto& [attr, _] : trees_) out.push_back(attr);
  return out;
}

std::vector<BlockId> TreeSetSnapshot::LiveLeaves(
    AttrId attr, const BlockStore& store) const {
  std::vector<BlockId> out;
  auto it = trees_.find(attr);
  if (it == trees_.end()) return out;
  for (BlockId b : it->second->Leaves()) {
    if (store.Contains(b)) out.push_back(b);
  }
  return out;
}

std::vector<BlockId> TreeSetSnapshot::Lookup(AttrId attr,
                                             const PredicateSet& preds,
                                             const BlockStore& store) const {
  std::vector<BlockId> out;
  auto it = trees_.find(attr);
  if (it == trees_.end()) return out;
  for (BlockId b : it->second->Lookup(preds)) {
    if (store.Contains(b)) out.push_back(b);
  }
  return out;
}

std::vector<BlockId> TreeSetSnapshot::LookupAll(const PredicateSet& preds,
                                                const BlockStore& store) const {
  std::vector<BlockId> out;
  for (const auto& [attr, tree] : trees_) {
    for (BlockId b : tree->Lookup(preds)) {
      if (store.Contains(b)) out.push_back(b);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

int64_t TreeSetSnapshot::RecordsUnder(AttrId attr,
                                      const BlockStore& store) const {
  int64_t n = 0;
  for (BlockId b : LiveLeaves(attr, store)) {
    // Metadata-only: never incurs a physical read on buffered stores.
    auto count = store.RecordCount(b);
    if (count.ok()) n += static_cast<int64_t>(count.ValueOrDie());
  }
  return n;
}

TreeSet::TreeSet() : snap_(std::make_shared<TreeSetSnapshot>()) {}

TreeSnapshotRef TreeSet::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snap_;
}

void TreeSet::Publish(std::shared_ptr<TreeSetSnapshot> next) {
  std::lock_guard<std::mutex> lock(mu_);
  next->epoch_ = snap_->epoch_ + 1;
  snap_ = std::move(next);
}

void TreeSet::Add(AttrId attr, PartitionTree tree) {
  auto next = std::make_shared<TreeSetSnapshot>(*Snapshot());
  next->trees_.insert_or_assign(
      attr, std::make_shared<PartitionTree>(std::move(tree)));
  Publish(std::move(next));
}

Status TreeSet::Remove(AttrId attr) {
  auto next = std::make_shared<TreeSetSnapshot>(*Snapshot());
  if (next->trees_.erase(attr) == 0) {
    return Status::NotFound("no tree for attr " + std::to_string(attr));
  }
  Publish(std::move(next));
  return Status::OK();
}

Result<PartitionTree*> TreeSet::Tree(AttrId attr) {
  auto next = std::make_shared<TreeSetSnapshot>(*Snapshot());
  auto it = next->trees_.find(attr);
  if (it == next->trees_.end()) {
    return Status::NotFound("no tree for attr " + std::to_string(attr));
  }
  // Detach-for-write: older snapshots (and concurrent Snapshot() holders)
  // may still point at this tree, so it is deep-copied unconditionally
  // before the caller mutates through it.
  it->second = std::make_shared<PartitionTree>(it->second->Clone());
  PartitionTree* tree = it->second.get();
  Publish(std::move(next));
  return tree;
}

Result<const PartitionTree*> TreeSet::Tree(AttrId attr) const {
  // Note: the pointer is only as stable as the snapshot it comes from; the
  // engine's per-table locks keep the snapshot current for the caller.
  return Snapshot()->Tree(attr);
}

std::vector<AttrId> TreeSet::PruneEmpty(BlockStore* store, ClusterSim* cluster,
                                        AttrId keep) {
  auto next = std::make_shared<TreeSetSnapshot>(*Snapshot());
  std::vector<AttrId> removed;
  for (auto it = next->trees_.begin(); it != next->trees_.end();) {
    if (it->first != keep && next->RecordsUnder(it->first, *store) == 0) {
      for (BlockId b : next->LiveLeaves(it->first, *store)) {
        (void)store->Delete(b);
        if (cluster != nullptr) cluster->Evict(b);
      }
      removed.push_back(it->first);
      it = next->trees_.erase(it);
    } else {
      ++it;
    }
  }
  if (!removed.empty()) Publish(std::move(next));
  return removed;
}

}  // namespace adaptdb
