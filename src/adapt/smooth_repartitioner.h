/// \file smooth_repartitioner.h
/// \brief Smooth repartitioning across join-attribute trees (paper §5.2).
///
/// When queries with a new join attribute appear, AdaptDB creates a new
/// two-phase tree for that attribute and migrates blocks into it a little at
/// a time, keeping the fraction of data under each tree tracking the
/// fraction of its query type in the window (Fig. 11):
///
///     n <- |{q in W : q joins on t}|
///     p <- n/|W| - |T'| / (|T| + |T'|)
///     if p > 0: repartition p of the data into T'
///
/// Blocks to move are chosen uniformly at random from the other trees, as
/// in the paper. Tree creation can be gated on a minimum frequency f_min to
/// avoid reacting to rare queries.

#ifndef ADAPTDB_ADAPT_SMOOTH_REPARTITIONER_H_
#define ADAPTDB_ADAPT_SMOOTH_REPARTITIONER_H_

#include <string>

#include "adapt/query_window.h"
#include "adapt/tree_set.h"
#include "common/rng.h"
#include "sample/reservoir.h"
#include "storage/cluster.h"

namespace adaptdb {

/// Sentinel for SmoothConfig::join_levels: choose the join depth from the
/// window's selectivity (the §7.4 future-work heuristic).
inline constexpr int32_t kAutoJoinLevels = -2;

/// \brief Tuning of the smooth repartitioner.
struct SmoothConfig {
  /// Minimum window queries on a new join attribute before a tree is
  /// created (the paper's f_min; default 1 = react immediately).
  int32_t min_frequency = 1;
  /// Total depth of newly created two-phase trees.
  int32_t total_levels = 6;
  /// Levels reserved for the join attribute; -1 = half (paper default),
  /// kAutoJoinLevels = workload-driven (§7.4's suggested extension).
  int32_t join_levels = -1;
  /// Seed for random block selection.
  uint64_t seed = 99;
};

/// \brief The §7.4 extension the paper suggests as future work: pick the
/// number of join levels from the workload. Estimates the window queries'
/// mean predicate selectivity on `table` against the sample; unselective
/// windows (Fig. 16b's regime) get 3/4 of the levels for the join
/// attribute, selective ones (Fig. 16a) keep more selection levels.
int32_t RecommendJoinLevels(const std::string& table,
                            const QueryWindow& window,
                            const Reservoir& sample, int32_t total_levels);

/// \brief What one smooth-repartitioning step did.
struct SmoothReport {
  /// Join attribute targeted by this step (-1 = step was a no-op).
  AttrId target_attr = -1;
  bool created_tree = false;
  /// The migration fraction p computed from the window.
  double fraction = 0;
  int64_t blocks_moved = 0;
  int64_t records_moved = 0;
  IoStats io;
};

/// \brief Executes per-query smooth repartitioning steps for one table.
class SmoothRepartitioner {
 public:
  SmoothRepartitioner(const Schema& schema, SmoothConfig config);

  /// Runs one step for `table` after a query joining it on `join_attr` was
  /// appended to `window`. May create the tree for `join_attr` (two-phase,
  /// lower levels from the window's predicate attributes) and migrate a
  /// fraction p of the data into it. No-op when `join_attr` < 0 or the
  /// window composition requires no movement.
  Result<SmoothReport> Step(const std::string& table, AttrId join_attr,
                            const QueryWindow& window,
                            const Reservoir& sample, TreeSet* trees,
                            BlockStore* store, ClusterSim* cluster);

 private:
  const Schema& schema_;
  SmoothConfig config_;
  Rng rng_;
};

}  // namespace adaptdb

#endif  // ADAPTDB_ADAPT_SMOOTH_REPARTITIONER_H_
