#include "adapt/query.h"

#include <algorithm>

namespace adaptdb {

namespace {
const PredicateSet kEmptyPreds;
}  // namespace

const PredicateSet& Query::PredsFor(const std::string& table) const {
  for (const TableRef& ref : tables) {
    if (ref.table == table) return ref.preds;
  }
  return kEmptyPreds;
}

bool Query::References(const std::string& table) const {
  for (const TableRef& ref : tables) {
    if (ref.table == table) return true;
  }
  return false;
}

AttrId Query::JoinAttrFor(const std::string& table) const {
  for (const JoinSpec& j : joins) {
    if (j.left_table == table) return j.left_attr;
    if (j.right_table == table) return j.right_attr;
  }
  return -1;
}

std::vector<AttrId> Query::PredicateAttrsFor(const std::string& table) const {
  std::vector<AttrId> attrs;
  for (const Predicate& p : PredsFor(table)) attrs.push_back(p.attr);
  std::sort(attrs.begin(), attrs.end());
  attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());
  return attrs;
}

std::string Query::ToString() const {
  std::string out = name.empty() ? "query" : name;
  out += "(";
  for (size_t i = 0; i < tables.size(); ++i) {
    if (i > 0) out += ", ";
    out += tables[i].table;
    if (!tables[i].preds.empty()) {
      out += "[" + PredicateSetToString(tables[i].preds) + "]";
    }
  }
  out += ")";
  for (const JoinSpec& j : joins) {
    out += " " + j.left_table + ".a" + std::to_string(j.left_attr) + "=" +
           j.right_table + ".a" + std::to_string(j.right_attr);
  }
  return out;
}

}  // namespace adaptdb
