/// \file query.h
/// \brief The query model the storage manager adapts to.
///
/// AdaptDB queries (paper §2, §3) are conjunctive selections over one or
/// more tables plus equi-join edges between them. The adaptive machinery
/// only inspects this structure — predicates drive Amoeba-style selection
/// adaptation, join edges drive two-phase/smooth repartitioning — while the
/// executor also evaluates it.

#ifndef ADAPTDB_ADAPT_QUERY_H_
#define ADAPTDB_ADAPT_QUERY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "schema/predicate.h"

namespace adaptdb {

/// \brief One table referenced by a query, with its local predicates.
struct TableRef {
  std::string table;
  PredicateSet preds;
};

/// \brief An equi-join edge between two referenced tables.
struct JoinSpec {
  std::string left_table;
  AttrId left_attr = -1;
  std::string right_table;
  AttrId right_attr = -1;
};

/// \brief A query: named template, table references, join edges.
///
/// Join edges are listed in the intended execution order; the planner may
/// rewrite multi-join orders (paper §4.3).
struct Query {
  std::string name;
  std::vector<TableRef> tables;
  std::vector<JoinSpec> joins;

  /// The predicates attached to `table`, or an empty set if absent.
  const PredicateSet& PredsFor(const std::string& table) const;

  /// True iff the query references `table`.
  bool References(const std::string& table) const;

  /// The join attribute this query uses on `table` (the first join edge
  /// touching the table), or -1 when the table is not joined.
  AttrId JoinAttrFor(const std::string& table) const;

  /// Attributes appearing in `table`'s predicates (distinct, sorted).
  std::vector<AttrId> PredicateAttrsFor(const std::string& table) const;

  std::string ToString() const;
};

}  // namespace adaptdb

#endif  // ADAPTDB_ADAPT_QUERY_H_
