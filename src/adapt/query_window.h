/// \file query_window.h
/// \brief The recent query window W (paper §3.2, §5.2).
///
/// AdaptDB keeps the last |W| queries and derives all adaptation decisions
/// from their composition: the fraction of queries joining a table on each
/// attribute drives smooth repartitioning, and their selection predicates
/// drive Amoeba-style tree refinement. Window size trades adaptation speed
/// against stability (evaluated in the paper's Fig. 15).

#ifndef ADAPTDB_ADAPT_QUERY_WINDOW_H_
#define ADAPTDB_ADAPT_QUERY_WINDOW_H_

#include <deque>

#include "adapt/query.h"

namespace adaptdb {

/// \brief Sliding window over the most recent queries.
class QueryWindow {
 public:
  /// Creates a window keeping the last `capacity` queries.
  explicit QueryWindow(int32_t capacity);

  /// Appends a query, evicting the oldest when full.
  void Add(Query q);

  /// The retained queries, oldest first.
  const std::deque<Query>& queries() const { return queries_; }

  /// Current number of retained queries.
  size_t size() const { return queries_.size(); }

  /// The configured |W|.
  int32_t capacity() const { return capacity_; }

  /// Number of window queries that join `table` on `attr`.
  int32_t CountJoins(const std::string& table, AttrId attr) const;

  /// Distinct join attributes used on `table` in the window, sorted.
  std::vector<AttrId> JoinAttrsFor(const std::string& table) const;

  /// Distinct predicate attributes used on `table` in the window, sorted.
  std::vector<AttrId> PredicateAttrsFor(const std::string& table) const;

  /// Removes all queries.
  void Clear() { queries_.clear(); }

 private:
  int32_t capacity_;
  std::deque<Query> queries_;
};

}  // namespace adaptdb

#endif  // ADAPTDB_ADAPT_QUERY_WINDOW_H_
