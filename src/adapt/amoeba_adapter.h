/// \file amoeba_adapter.h
/// \brief Amoeba's predicate-driven adaptive repartitioning (paper §3.2).
///
/// After each query, Amoeba considers alternative trees obtained by
/// transformation rules on the current tree — replace a subtree's split
/// attribute with a frequently filtered attribute and repartition the blocks
/// below it — and switches to the alternative maximizing
///     benefit(T) = sum over window queries of blocks saved
/// when it exceeds the repartitioning cost (blocks rewritten × write cost).
///
/// In AdaptDB the same machinery refines only the *selection levels* of
/// two-phase trees: nodes within the top join_levels are never touched, so
/// join co-partitioning is preserved (§5.1).

#ifndef ADAPTDB_ADAPT_AMOEBA_ADAPTER_H_
#define ADAPTDB_ADAPT_AMOEBA_ADAPTER_H_

#include <string>

#include "adapt/query_window.h"
#include "common/rng.h"
#include "sample/reservoir.h"
#include "storage/block_store.h"
#include "storage/cluster.h"
#include "tree/partition_tree.h"

namespace adaptdb {

/// \brief Tuning of the Amoeba adapter.
struct AmoebaConfig {
  /// Cost charged per block rewritten by a repartition, in units of block
  /// reads saved per window (higher = more conservative adaptation).
  double block_write_cost = 4.0;
  /// Largest subtree (by depth) a single transformation may rewrite.
  /// Amoeba's rules are local ("merge two existing blocks partitioned on A
  /// and repartition them on B", §3.2), so the default only touches the
  /// bottom two levels; raising it allows more aggressive restructuring.
  int32_t max_subtree_depth = 2;
  /// Seed for structure tie-breaking when rebuilding subtrees.
  uint64_t seed = 5;
};

/// \brief What one adaptation step did.
struct AmoebaReport {
  bool applied = false;
  /// The split attribute installed at the transformed node.
  AttrId new_attr = -1;
  /// Depth of the transformed node.
  int32_t node_depth = -1;
  int64_t blocks_rewritten = 0;
  double benefit = 0;
  double cost = 0;
  IoStats io;
};

/// \brief Applies Amoeba transformation rules to one partitioning tree.
class AmoebaAdapter {
 public:
  AmoebaAdapter(const Schema& schema, AmoebaConfig config);

  /// Considers every (inner node below join levels) × (window predicate
  /// attribute) transformation of `tree`, and applies the best one whose
  /// estimated benefit over the window exceeds its repartitioning cost.
  /// Physically rewrites the affected blocks in `store`.
  Result<AmoebaReport> Step(const std::string& table,
                            const QueryWindow& window,
                            const Reservoir& sample, PartitionTree* tree,
                            BlockStore* store, ClusterSim* cluster);

 private:
  const Schema& schema_;
  AmoebaConfig config_;
  Rng rng_;
};

}  // namespace adaptdb

#endif  // ADAPTDB_ADAPT_AMOEBA_ADAPTER_H_
