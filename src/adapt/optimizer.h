/// \file optimizer.h
/// \brief The per-table adaptation coordinator (paper §6, "Optimizer").
///
/// After every query the optimizer decides how much data to repartition:
/// smooth repartitioning migrates blocks between join-attribute trees
/// (Fig. 11), and the Amoeba adapter refines the selection levels of the
/// tree the query touches. The I/O these steps incur is reported so the
/// caller can fold it into the query's latency, exactly as the paper's
/// Type-2 (scan + repartition) blocks inflate the triggering query.

#ifndef ADAPTDB_ADAPT_OPTIMIZER_H_
#define ADAPTDB_ADAPT_OPTIMIZER_H_

#include <string>

#include "adapt/amoeba_adapter.h"
#include "adapt/query_window.h"
#include "adapt/smooth_repartitioner.h"
#include "adapt/tree_set.h"

namespace adaptdb {

/// \brief Adaptation policy knobs, combining both mechanisms.
struct AdaptConfig {
  /// Query window length |W| (paper default 10).
  int32_t window_size = 10;
  /// Enable smooth repartitioning across join trees.
  bool enable_smooth = true;
  /// Enable Amoeba selection-level refinement.
  bool enable_amoeba = true;
  /// Full-repartitioning baseline (§7.3 "Repartitioning"): instead of
  /// smooth migration, rebuild everything at once when at least half the
  /// window joins on an attribute lacking a tree.
  bool full_repartitioning = false;
  SmoothConfig smooth;
  AmoebaConfig amoeba;
};

/// \brief What adaptation did for one table after one query.
struct AdaptReport {
  SmoothReport smooth;
  AmoebaReport amoeba;
  /// Combined I/O of all adaptation performed.
  IoStats io;
};

/// \brief Drives both adaptation mechanisms for one table.
class Optimizer {
 public:
  Optimizer(const Schema& schema, AdaptConfig config);

  const AdaptConfig& config() const { return config_; }

  /// Runs the adaptation step for `table` given the latest query `q`
  /// (already appended to `window`).
  Result<AdaptReport> OnQuery(const std::string& table, const Query& q,
                              const QueryWindow& window,
                              const Reservoir& sample, TreeSet* trees,
                              BlockStore* store, ClusterSim* cluster);

 private:
  /// The §7.3 "Repartitioning" baseline: move all data at once.
  Result<SmoothReport> FullRepartitionStep(const std::string& table,
                                           AttrId join_attr,
                                           const QueryWindow& window,
                                           const Reservoir& sample,
                                           TreeSet* trees, BlockStore* store,
                                           ClusterSim* cluster);

  const Schema& schema_;
  AdaptConfig config_;
  SmoothRepartitioner smooth_;
  AmoebaAdapter amoeba_;
};

}  // namespace adaptdb

#endif  // ADAPTDB_ADAPT_OPTIMIZER_H_
