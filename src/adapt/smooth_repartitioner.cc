#include "adapt/smooth_repartitioner.h"

#include <algorithm>
#include <utility>

#include "exec/repartition.h"
#include "tree/two_phase_partitioner.h"

namespace adaptdb {

int32_t RecommendJoinLevels(const std::string& table,
                            const QueryWindow& window,
                            const Reservoir& sample, int32_t total_levels) {
  double sel_sum = 0;
  int32_t n = 0;
  for (const Query& q : window.queries()) {
    if (!q.References(table)) continue;
    if (sample.records().empty()) continue;
    const PredicateSet& preds = q.PredsFor(table);
    int64_t matched = 0;
    for (const Record& rec : sample.records()) {
      if (MatchesAll(preds, rec)) ++matched;
    }
    sel_sum += static_cast<double>(matched) /
               static_cast<double>(sample.records().size());
    ++n;
  }
  const int32_t half = total_levels / 2 + total_levels % 2;
  if (n == 0) return half;
  const double mean_sel = sel_sum / n;
  if (mean_sel < 0.05) {
    // Very selective windows: selection levels pay (Fig. 16a's regime);
    // keep the join depth shallow.
    return std::max(1, total_levels / 4);
  }
  if (mean_sel > 0.5) {
    // Barely selective (q5/q8-like): Fig. 16b says go deep on the join.
    return std::max(half, total_levels * 3 / 4);
  }
  return half;
}

SmoothRepartitioner::SmoothRepartitioner(const Schema& schema,
                                         SmoothConfig config)
    : schema_(schema), config_(config), rng_(config.seed) {}

Result<SmoothReport> SmoothRepartitioner::Step(
    const std::string& table, AttrId join_attr, const QueryWindow& window,
    const Reservoir& sample, TreeSet* trees, BlockStore* store,
    ClusterSim* cluster) {
  SmoothReport report;
  if (join_attr < 0 || trees == nullptr || store == nullptr ||
      cluster == nullptr) {
    return report;
  }
  const int32_t n = window.CountJoins(table, join_attr);

  // Create the tree on first sufficient demand (f_min gate, §5.2).
  if (!trees->Has(join_attr)) {
    if (n < config_.min_frequency) return report;
    TwoPhaseOptions opts;
    opts.join_attr = join_attr;
    opts.total_levels = config_.total_levels;
    if (config_.join_levels >= 0) {
      opts.join_levels = config_.join_levels;
    } else if (config_.join_levels == kAutoJoinLevels) {
      opts.join_levels =
          RecommendJoinLevels(table, window, sample, config_.total_levels);
    } else {
      opts.join_levels =
          TwoPhasePartitioner::DefaultJoinLevels(config_.total_levels);
    }
    opts.selection_attrs = window.PredicateAttrsFor(table);
    // The join attribute owns the top levels; keep it out of the selection
    // phase so lower levels favour filtering.
    opts.selection_attrs.erase(
        std::remove(opts.selection_attrs.begin(), opts.selection_attrs.end(),
                    join_attr),
        opts.selection_attrs.end());
    opts.seed = rng_.Next();
    TwoPhasePartitioner partitioner(schema_, opts);
    auto tree = partitioner.Build(sample, store);
    if (!tree.ok()) return tree.status();
    for (BlockId b : tree.ValueOrDie().Leaves()) {
      cluster->PlaceBlock(b);
    }
    trees->Add(join_attr, std::move(tree).ValueOrDie());
    report.created_tree = true;
  }

  // Fig. 11: p = n/|W| - |T'|/(|T| + |T'|), generalized to many trees by
  // measuring |T'| against the table's full size.
  const int64_t total_records = static_cast<int64_t>(store->TotalRecords());
  if (total_records == 0) {
    report.target_attr = join_attr;
    return report;
  }
  const int64_t under_target = trees->RecordsUnder(join_attr, *store);
  const double frac_queries =
      static_cast<double>(n) / static_cast<double>(window.capacity());
  const double frac_data = static_cast<double>(under_target) /
                           static_cast<double>(total_records);
  const double p = frac_queries - frac_data;
  report.target_attr = join_attr;
  report.fraction = p;
  if (p <= 0) return report;

  // Candidate donors: random blocks from every other tree.
  std::vector<BlockId> donors;
  for (AttrId attr : trees->Attrs()) {
    if (attr == join_attr) continue;
    for (BlockId b : trees->LiveLeaves(attr, *store)) {
      auto count = store->RecordCount(b);
      if (!count.ok()) return count.status();
      if (count.ValueOrDie() > 0) donors.push_back(b);
    }
  }
  if (donors.empty()) return report;
  // Fisher-Yates prefix shuffle: pick random donors until the moved record
  // count reaches p * total.
  const int64_t target_records =
      static_cast<int64_t>(p * static_cast<double>(total_records) + 0.5);
  std::vector<BlockId> chosen;
  int64_t chosen_records = 0;
  for (size_t i = 0; i < donors.size() && chosen_records < target_records;
       ++i) {
    const size_t j = i + rng_.Uniform(donors.size() - i);
    std::swap(donors[i], donors[j]);
    auto count = store->RecordCount(donors[i]);
    if (!count.ok()) return count.status();
    chosen.push_back(donors[i]);
    chosen_records += static_cast<int64_t>(count.ValueOrDie());
  }
  if (chosen.empty()) return report;

  auto target_tree = std::as_const(*trees).Tree(join_attr);
  if (!target_tree.ok()) return target_tree.status();
  auto moved =
      RepartitionBlocks(store, chosen, *target_tree.ValueOrDie(), cluster);
  if (!moved.ok()) return moved.status();
  report.blocks_moved = moved.ValueOrDie().sources_drained;
  report.records_moved = moved.ValueOrDie().records_moved;
  report.io = moved.ValueOrDie().io;

  trees->PruneEmpty(store, cluster, join_attr);
  return report;
}

}  // namespace adaptdb
