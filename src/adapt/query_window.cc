#include "adapt/query_window.h"

#include <algorithm>

namespace adaptdb {

QueryWindow::QueryWindow(int32_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {}

void QueryWindow::Add(Query q) {
  queries_.push_back(std::move(q));
  while (queries_.size() > static_cast<size_t>(capacity_)) {
    queries_.pop_front();
  }
}

int32_t QueryWindow::CountJoins(const std::string& table, AttrId attr) const {
  int32_t n = 0;
  for (const Query& q : queries_) {
    if (q.JoinAttrFor(table) == attr) ++n;
  }
  return n;
}

std::vector<AttrId> QueryWindow::JoinAttrsFor(const std::string& table) const {
  std::vector<AttrId> attrs;
  for (const Query& q : queries_) {
    const AttrId a = q.JoinAttrFor(table);
    if (a >= 0) attrs.push_back(a);
  }
  std::sort(attrs.begin(), attrs.end());
  attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());
  return attrs;
}

std::vector<AttrId> QueryWindow::PredicateAttrsFor(
    const std::string& table) const {
  std::vector<AttrId> attrs;
  for (const Query& q : queries_) {
    for (AttrId a : q.PredicateAttrsFor(table)) attrs.push_back(a);
  }
  std::sort(attrs.begin(), attrs.end());
  attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());
  return attrs;
}

}  // namespace adaptdb
