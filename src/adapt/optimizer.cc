#include "adapt/optimizer.h"

#include <utility>

#include "exec/repartition.h"
#include "tree/two_phase_partitioner.h"

namespace adaptdb {

Optimizer::Optimizer(const Schema& schema, AdaptConfig config)
    : schema_(schema),
      config_(config),
      smooth_(schema, config.smooth),
      amoeba_(schema, config.amoeba) {}

Result<AdaptReport> Optimizer::OnQuery(const std::string& table,
                                       const Query& q,
                                       const QueryWindow& window,
                                       const Reservoir& sample,
                                       TreeSet* trees, BlockStore* store,
                                       ClusterSim* cluster) {
  AdaptReport report;
  const AttrId join_attr = q.JoinAttrFor(table);

  if (config_.full_repartitioning) {
    auto smooth = FullRepartitionStep(table, join_attr, window, sample, trees,
                                      store, cluster);
    if (!smooth.ok()) return smooth.status();
    report.smooth = std::move(smooth).ValueOrDie();
    report.io.Merge(report.smooth.io);
  } else if (config_.enable_smooth) {
    auto smooth =
        smooth_.Step(table, join_attr, window, sample, trees, store, cluster);
    if (!smooth.ok()) return smooth.status();
    report.smooth = std::move(smooth).ValueOrDie();
    report.io.Merge(report.smooth.io);
  }

  if (config_.enable_amoeba) {
    // Refine the tree this query reads from: the join-attribute tree when
    // present, otherwise the largest tree.
    AttrId target = join_attr;
    if (target < 0 || !trees->Has(target)) {
      int64_t best_records = -1;
      target = kUpfrontTree;
      for (AttrId a : trees->Attrs()) {
        const int64_t n = trees->RecordsUnder(a, *store);
        if (n > best_records) {
          best_records = n;
          target = a;
        }
      }
    }
    if (trees->Has(target)) {
      // Detach-for-write: the refinement mutates a private deep copy that
      // the detach call installed atomically; snapshots captured by queries
      // before this point keep reading the previous tree.
      auto tree = trees->Tree(target);
      if (!tree.ok()) return tree.status();
      auto amoeba = amoeba_.Step(table, window, sample, tree.ValueOrDie(),
                                 store, cluster);
      if (!amoeba.ok()) return amoeba.status();
      report.amoeba = std::move(amoeba).ValueOrDie();
      report.io.Merge(report.amoeba.io);
    }
  }
  return report;
}

Result<SmoothReport> Optimizer::FullRepartitionStep(
    const std::string& table, AttrId join_attr, const QueryWindow& window,
    const Reservoir& sample, TreeSet* trees, BlockStore* store,
    ClusterSim* cluster) {
  SmoothReport report;
  if (join_attr < 0 || trees->Has(join_attr)) return report;
  const int32_t n = window.CountJoins(table, join_attr);
  if (n * 2 < window.capacity()) return report;

  TwoPhaseOptions opts;
  opts.join_attr = join_attr;
  opts.total_levels = config_.smooth.total_levels;
  opts.join_levels =
      config_.smooth.join_levels >= 0
          ? config_.smooth.join_levels
          : TwoPhasePartitioner::DefaultJoinLevels(config_.smooth.total_levels);
  opts.selection_attrs = window.PredicateAttrsFor(table);
  TwoPhasePartitioner partitioner(schema_, opts);
  auto tree = partitioner.Build(sample, store);
  if (!tree.ok()) return tree.status();
  for (BlockId b : tree.ValueOrDie().Leaves()) cluster->PlaceBlock(b);

  // Drain every other tree in one shot.
  std::vector<BlockId> donors;
  for (AttrId attr : trees->Attrs()) {
    for (BlockId b : trees->LiveLeaves(attr, *store)) {
      auto count = store->RecordCount(b);
      if (!count.ok()) return count.status();
      if (count.ValueOrDie() > 0) donors.push_back(b);
    }
  }
  trees->Add(join_attr, std::move(tree).ValueOrDie());
  report.created_tree = true;
  report.target_attr = join_attr;
  report.fraction = 1.0;
  if (!donors.empty()) {
    auto target_tree = std::as_const(*trees).Tree(join_attr);
    if (!target_tree.ok()) return target_tree.status();
    auto moved =
        RepartitionBlocks(store, donors, *target_tree.ValueOrDie(), cluster);
    if (!moved.ok()) return moved.status();
    report.blocks_moved = moved.ValueOrDie().sources_drained;
    report.records_moved = moved.ValueOrDie().records_moved;
    report.io = moved.ValueOrDie().io;
  }
  trees->PruneEmpty(store, cluster, join_attr);
  return report;
}

}  // namespace adaptdb
