#include "adapt/amoeba_adapter.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "exec/repartition.h"

namespace adaptdb {

namespace {

/// An inner node eligible for transformation, with its depth and pre-order
/// position among inner nodes (used to find the twin in a cloned tree).
struct InnerRef {
  TreeNode* node;
  int32_t depth;
};

void CollectInner(TreeNode* node, int32_t depth, std::vector<InnerRef>* out) {
  if (node == nullptr || node->is_leaf) return;
  out->push_back({node, depth});
  CollectInner(node->left.get(), depth + 1, out);
  CollectInner(node->right.get(), depth + 1, out);
}

Value MedianOf(const std::vector<const Record*>& recs, AttrId attr) {
  std::vector<Value> vals;
  vals.reserve(recs.size());
  for (const Record* r : recs) vals.push_back((*r)[static_cast<size_t>(attr)]);
  std::sort(vals.begin(), vals.end());
  return vals[vals.size() / 2];
}

/// Rebuilds a subtree of the given depth over `recs`, with the root split
/// forced to (attr, cut) and lower levels chosen among `attrs` by usage
/// balancing. Leaves allocate fresh blocks.
std::unique_ptr<TreeNode> RebuildSubtree(
    std::vector<const Record*> recs, int32_t levels_left,
    const std::vector<AttrId>& attrs,
    std::unordered_map<AttrId, int32_t>* usage, Rng* rng, BlockStore* store,
    AttrId forced_attr, const Value* forced_cut) {
  if (levels_left <= 0 || recs.size() < 2) {
    return PartitionTree::MakeLeaf(store->CreateBlock());
  }
  AttrId attr = -1;
  Value cut;
  if (forced_attr >= 0) {
    attr = forced_attr;
    cut = *forced_cut;
  } else {
    std::vector<std::pair<int64_t, AttrId>> keyed;
    for (AttrId a : attrs) {
      keyed.emplace_back(static_cast<int64_t>((*usage)[a]) * 1000 +
                             static_cast<int64_t>(rng->Uniform(1000)),
                         a);
    }
    std::sort(keyed.begin(), keyed.end());
    for (const auto& [key, a] : keyed) {
      const Value med = MedianOf(recs, a);
      size_t left = 0;
      for (const Record* r : recs) {
        if ((*r)[static_cast<size_t>(a)] <= med) ++left;
      }
      if (left > 0 && left < recs.size()) {
        attr = a;
        cut = med;
        break;
      }
    }
    if (attr < 0) return PartitionTree::MakeLeaf(store->CreateBlock());
  }
  ++(*usage)[attr];
  std::vector<const Record*> l, r;
  for (const Record* rec : recs) {
    ((*rec)[static_cast<size_t>(attr)] <= cut ? l : r).push_back(rec);
  }
  auto left = RebuildSubtree(std::move(l), levels_left - 1, attrs, usage, rng,
                             store, -1, nullptr);
  auto right = RebuildSubtree(std::move(r), levels_left - 1, attrs, usage, rng,
                              store, -1, nullptr);
  return PartitionTree::MakeInner(attr, cut, std::move(left), std::move(right));
}

int32_t SubtreeDepth(const TreeNode* node) {
  if (node == nullptr || node->is_leaf) return 0;
  return 1 + std::max(SubtreeDepth(node->left.get()),
                      SubtreeDepth(node->right.get()));
}

void SubtreeLeaves(const TreeNode* node, std::vector<BlockId>* out) {
  if (node == nullptr) return;
  if (node->is_leaf) {
    out->push_back(node->block);
    return;
  }
  SubtreeLeaves(node->left.get(), out);
  SubtreeLeaves(node->right.get(), out);
}

}  // namespace

AmoebaAdapter::AmoebaAdapter(const Schema& schema, AmoebaConfig config)
    : schema_(schema), config_(config), rng_(config.seed) {}

Result<AmoebaReport> AmoebaAdapter::Step(const std::string& table,
                                         const QueryWindow& window,
                                         const Reservoir& sample,
                                         PartitionTree* tree,
                                         BlockStore* store,
                                         ClusterSim* cluster) {
  AmoebaReport report;
  if (tree == nullptr || tree->empty() || store == nullptr ||
      cluster == nullptr) {
    return report;
  }
  const std::vector<AttrId> candidates = window.PredicateAttrsFor(table);
  if (candidates.empty()) return report;

  // Queries of this table in the window, with their current block counts.
  std::vector<const PredicateSet*> preds;
  std::vector<int64_t> old_counts;
  for (const Query& q : window.queries()) {
    if (!q.References(table)) continue;
    preds.push_back(&q.PredsFor(table));
    old_counts.push_back(static_cast<int64_t>(tree->Lookup(*preds.back()).size()));
  }
  if (preds.empty()) return report;

  // Route the sample to gather the per-node subsamples.
  std::vector<InnerRef> inner;
  CollectInner(tree->mutable_root(), 0, &inner);
  std::unordered_map<const TreeNode*, std::vector<const Record*>> subsample;
  for (const Record& rec : sample.records()) {
    const TreeNode* node = tree->root();
    while (node != nullptr && !node->is_leaf) {
      subsample[node].push_back(&rec);
      const Value& v = rec[static_cast<size_t>(node->attr)];
      node = (v <= node->cut) ? node->left.get() : node->right.get();
    }
  }

  // Search for the best (node, attribute) transformation.
  double best_net = 0;
  size_t best_node_idx = 0;
  AttrId best_attr = -1;
  Value best_cut;
  double best_benefit = 0, best_cost = 0;

  PartitionTree clone = tree->Clone();
  std::vector<InnerRef> clone_inner;
  CollectInner(clone.mutable_root(), 0, &clone_inner);

  for (size_t i = 0; i < inner.size(); ++i) {
    // Never rewrite the join levels of a two-phase tree (§5.1).
    if (inner[i].depth < tree->join_levels()) continue;
    // Amoeba transformations are local: bound the rewritten subtree.
    if (SubtreeDepth(inner[i].node) > config_.max_subtree_depth) continue;
    auto sub_it = subsample.find(inner[i].node);
    if (sub_it == subsample.end() || sub_it->second.size() < 2) continue;
    std::vector<BlockId> leaves;
    SubtreeLeaves(inner[i].node, &leaves);
    const double cost =
        config_.block_write_cost * static_cast<double>(leaves.size());

    TreeNode* twin = clone_inner[i].node;
    const AttrId saved_attr = twin->attr;
    const Value saved_cut = twin->cut;
    for (AttrId a : candidates) {
      if (a == inner[i].node->attr) continue;
      const Value med = MedianOf(sub_it->second, a);
      size_t left = 0;
      for (const Record* r : sub_it->second) {
        if ((*r)[static_cast<size_t>(a)] <= med) ++left;
      }
      if (left == 0 || left == sub_it->second.size()) continue;
      twin->attr = a;
      twin->cut = med;
      double benefit = 0;
      for (size_t qi = 0; qi < preds.size(); ++qi) {
        const int64_t now =
            static_cast<int64_t>(clone.Lookup(*preds[qi]).size());
        benefit += static_cast<double>(old_counts[qi] - now);
      }
      const double net = benefit - cost;
      if (net > best_net) {
        best_net = net;
        best_node_idx = i;
        best_attr = a;
        best_cut = med;
        best_benefit = benefit;
        best_cost = cost;
      }
    }
    twin->attr = saved_attr;
    twin->cut = saved_cut;
  }

  if (best_attr < 0) return report;

  // Apply: rebuild the subtree with the new root split and repartition the
  // blocks below it.
  TreeNode* target = inner[best_node_idx].node;
  std::vector<BlockId> old_leaves;
  SubtreeLeaves(target, &old_leaves);
  std::vector<BlockId> live;
  for (BlockId b : old_leaves) {
    if (store->Contains(b)) live.push_back(b);
  }
  const int32_t depth = SubtreeDepth(target);
  auto& recs = subsample[target];

  std::unordered_map<AttrId, int32_t> usage;
  auto rebuilt =
      RebuildSubtree(recs, depth, candidates, &usage, &rng_, store, best_attr,
                     &best_cut);
  PartitionTree staging(std::move(rebuilt));
  for (BlockId b : staging.Leaves()) cluster->PlaceBlock(b);

  if (!live.empty()) {
    auto moved = RepartitionBlocks(store, live, staging, cluster,
                                   SourceDisposition::kDelete);
    if (!moved.ok()) return moved.status();
    report.io = moved.ValueOrDie().io;
    report.blocks_rewritten = moved.ValueOrDie().sources_drained;
  }
  auto new_root = staging.TakeRoot();
  *target = std::move(*new_root);

  report.applied = true;
  report.new_attr = best_attr;
  report.node_depth = inner[best_node_idx].depth;
  report.benefit = best_benefit;
  report.cost = best_cost;
  return report;
}

}  // namespace adaptdb
