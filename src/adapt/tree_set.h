/// \file tree_set.h
/// \brief The per-table collection of partitioning trees (paper §5.2).
///
/// During smooth repartitioning a table is covered by several partitioning
/// trees — one per popular join attribute, plus possibly the original
/// upfront tree (keyed as kUpfrontTree). Every block belongs to exactly one
/// tree; lookups union over trees, filtering out leaves whose blocks have
/// already migrated away.
///
/// The set is epoch-versioned for concurrent serving: the trees live in an
/// immutable snapshot published through a shared_ptr, and every mutation
/// (Add/Remove/PruneEmpty, or detaching a tree for in-place refinement)
/// copies the map, modifies the copy off to the side, and installs it
/// atomically with a bumped epoch. Queries capture one snapshot and plan
/// against it for their whole lifetime; a snapshot captured before an
/// install keeps seeing the old trees (paper Fig. 2's "Update index" step
/// swaps metadata the same way). Reads never block behind adaptation.
///
/// Thread safety: every const method and Snapshot() may be called from any
/// thread at any time. The mutating methods (and mutations through the
/// pointer returned by the non-const Tree()) require external exclusion
/// from each other — in the engine that is the Database's per-table writer
/// lock, which adaptation and ingest hold.

#ifndef ADAPTDB_ADAPT_TREE_SET_H_
#define ADAPTDB_ADAPT_TREE_SET_H_

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "storage/block_store.h"
#include "storage/cluster.h"
#include "tree/partition_tree.h"

namespace adaptdb {

/// Key of the initial workload-oblivious tree in a TreeSet.
inline constexpr AttrId kUpfrontTree = -1;

/// \brief One immutable version of a table's trees, tagged with its epoch.
///
/// Snapshots are created only by TreeSet; holders may read them freely from
/// any thread. A snapshot pins its trees alive (they are shared with newer
/// snapshots until replaced), so pointers obtained through Tree() stay
/// valid for the snapshot's lifetime.
class TreeSetSnapshot {
 public:
  /// Monotonic version: bumped by every TreeSet mutation.
  uint64_t epoch() const { return epoch_; }

  /// True iff a tree exists for `attr`.
  bool Has(AttrId attr) const { return trees_.count(attr) > 0; }

  /// The tree for `attr`, or an error. Valid while the snapshot lives.
  Result<const PartitionTree*> Tree(AttrId attr) const;

  /// Join attributes with trees, ascending (kUpfrontTree first if present).
  std::vector<AttrId> Attrs() const;

  /// Number of trees.
  size_t size() const { return trees_.size(); }

  /// Live leaf blocks of the tree for `attr` (leaves whose block still
  /// exists in `store`; migrated-away leaves are skipped).
  std::vector<BlockId> LiveLeaves(AttrId attr, const BlockStore& store) const;

  /// Live blocks relevant to `preds` in the tree for `attr`.
  std::vector<BlockId> Lookup(AttrId attr, const PredicateSet& preds,
                              const BlockStore& store) const;

  /// Live blocks relevant to `preds` across every tree (the full lookup a
  /// scan must perform while data is spread over multiple trees).
  std::vector<BlockId> LookupAll(const PredicateSet& preds,
                                 const BlockStore& store) const;

  /// Records currently stored under the tree for `attr`.
  int64_t RecordsUnder(AttrId attr, const BlockStore& store) const;

 private:
  friend class TreeSet;

  uint64_t epoch_ = 0;
  /// Values are only ever mutated through TreeSet's detach-for-write path,
  /// which clones any tree shared with an older snapshot first.
  std::map<AttrId, std::shared_ptr<PartitionTree>> trees_;
};

/// A pinned, immutable view of a table's trees.
using TreeSnapshotRef = std::shared_ptr<const TreeSetSnapshot>;

/// \brief All partitioning trees of one table, keyed by join attribute.
class TreeSet {
 public:
  TreeSet();

  /// The current snapshot. Cheap (one shared_ptr copy under a mutex).
  TreeSnapshotRef Snapshot() const;

  /// Current version; bumped by every mutation.
  uint64_t epoch() const { return Snapshot()->epoch(); }

  /// Adds (or replaces) the tree for `attr`, atomically installing a new
  /// snapshot. Readers of older snapshots keep the previous tree.
  void Add(AttrId attr, PartitionTree tree);

  /// Removes the tree for `attr`.
  Status Remove(AttrId attr);

  /// True iff a tree exists for `attr`.
  bool Has(AttrId attr) const { return Snapshot()->Has(attr); }

  /// Detaches the tree for `attr` for in-place refinement: the tree is
  /// deep-copied and a fresh snapshot installed whose entry is exclusively
  /// owned by the caller. Mutations through the returned pointer are
  /// invisible to snapshots captured before this call.
  /// Requires the table's writer lock; the pointer is valid until the next
  /// TreeSet mutation for the same attr.
  Result<PartitionTree*> Tree(AttrId attr);
  /// The tree for `attr` in the current snapshot (no detach).
  Result<const PartitionTree*> Tree(AttrId attr) const;

  /// Join attributes with trees, ascending (kUpfrontTree first if present).
  std::vector<AttrId> Attrs() const { return Snapshot()->Attrs(); }

  /// Number of trees.
  size_t size() const { return Snapshot()->size(); }

  /// See TreeSetSnapshot::LiveLeaves.
  std::vector<BlockId> LiveLeaves(AttrId attr, const BlockStore& store) const {
    return Snapshot()->LiveLeaves(attr, store);
  }

  /// See TreeSetSnapshot::Lookup.
  std::vector<BlockId> Lookup(AttrId attr, const PredicateSet& preds,
                              const BlockStore& store) const {
    return Snapshot()->Lookup(attr, preds, store);
  }

  /// See TreeSetSnapshot::LookupAll.
  std::vector<BlockId> LookupAll(const PredicateSet& preds,
                                 const BlockStore& store) const {
    return Snapshot()->LookupAll(preds, store);
  }

  /// See TreeSetSnapshot::RecordsUnder.
  int64_t RecordsUnder(AttrId attr, const BlockStore& store) const {
    return Snapshot()->RecordsUnder(attr, store);
  }

  /// Drops trees holding no records (completed migrations, §5.2), never
  /// dropping `keep` (the migration target, which may still be filling).
  /// The pruned trees' empty leaf blocks are deleted from `store` (and
  /// evicted from `cluster` when provided). Returns the attrs removed.
  std::vector<AttrId> PruneEmpty(BlockStore* store, ClusterSim* cluster,
                                 AttrId keep);

 private:
  /// Publishes `next` as the current snapshot with a bumped epoch.
  void Publish(std::shared_ptr<TreeSetSnapshot> next);

  mutable std::mutex mu_;  ///< Guards snap_ (the pointer, not the contents).
  TreeSnapshotRef snap_;
};

}  // namespace adaptdb

#endif  // ADAPTDB_ADAPT_TREE_SET_H_
