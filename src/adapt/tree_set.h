/// \file tree_set.h
/// \brief The per-table collection of partitioning trees (paper §5.2).
///
/// During smooth repartitioning a table is covered by several partitioning
/// trees — one per popular join attribute, plus possibly the original
/// upfront tree (keyed as kUpfrontTree). Every block belongs to exactly one
/// tree; lookups union over trees, filtering out leaves whose blocks have
/// already migrated away.

#ifndef ADAPTDB_ADAPT_TREE_SET_H_
#define ADAPTDB_ADAPT_TREE_SET_H_

#include <map>
#include <vector>

#include "common/result.h"
#include "storage/block_store.h"
#include "storage/cluster.h"
#include "tree/partition_tree.h"

namespace adaptdb {

/// Key of the initial workload-oblivious tree in a TreeSet.
inline constexpr AttrId kUpfrontTree = -1;

/// \brief All partitioning trees of one table, keyed by join attribute.
class TreeSet {
 public:
  TreeSet() = default;

  /// Adds (or replaces) the tree for `attr`.
  void Add(AttrId attr, PartitionTree tree);

  /// Removes the tree for `attr`.
  Status Remove(AttrId attr);

  /// True iff a tree exists for `attr`.
  bool Has(AttrId attr) const { return trees_.count(attr) > 0; }

  /// The tree for `attr`, or an error.
  Result<PartitionTree*> Tree(AttrId attr);
  Result<const PartitionTree*> Tree(AttrId attr) const;

  /// Join attributes with trees, ascending (kUpfrontTree first if present).
  std::vector<AttrId> Attrs() const;

  /// Number of trees.
  size_t size() const { return trees_.size(); }

  /// Live leaf blocks of the tree for `attr` (leaves whose block still
  /// exists in `store`; migrated-away leaves are skipped).
  std::vector<BlockId> LiveLeaves(AttrId attr, const BlockStore& store) const;

  /// Live blocks relevant to `preds` in the tree for `attr`.
  std::vector<BlockId> Lookup(AttrId attr, const PredicateSet& preds,
                              const BlockStore& store) const;

  /// Live blocks relevant to `preds` across every tree (the full lookup a
  /// scan must perform while data is spread over multiple trees).
  std::vector<BlockId> LookupAll(const PredicateSet& preds,
                                 const BlockStore& store) const;

  /// Records currently stored under the tree for `attr`.
  int64_t RecordsUnder(AttrId attr, const BlockStore& store) const;

  /// Drops trees holding no records (completed migrations, §5.2), never
  /// dropping `keep` (the migration target, which may still be filling).
  /// The pruned trees' empty leaf blocks are deleted from `store` (and
  /// evicted from `cluster` when provided). Returns the attrs removed.
  std::vector<AttrId> PruneEmpty(BlockStore* store, ClusterSim* cluster,
                                 AttrId keep);

 private:
  std::map<AttrId, PartitionTree> trees_;
};

}  // namespace adaptdb

#endif  // ADAPTDB_ADAPT_TREE_SET_H_
