/// \file format.h
/// \brief On-disk block serialization v2: columnar segments + encodings.
///
/// Layout (all integers little-endian):
///
///   offset  size  field
///   0       4     magic "ADBK"
///   4       2     format version (kFormatVersion = 2)
///   6       2     flags (reserved, 0)
///   8       8     block id (int64)
///   16      4     attribute count (int32)
///   20      4     record count (uint32)
///   24      8     payload length in bytes (uint64)
///   32      8     FNV-1a 64 checksum of the whole payload
///   40      ...   payload
///
/// Payload: a column directory (one kColumnDirEntryBytes entry per
/// attribute: type tag, encoding tag, u64 segment offset from payload
/// start, u64 segment length, u64 FNV-1a 64 segment checksum) followed by
/// the column segments in attribute order. The directory gives a reader
/// random access to any column subset: DecodeBlockColumns validates and
/// decodes only the requested columns' segments (each guarded by its own
/// checksum), which is what lets projection-pruned scans read strictly
/// fewer payload bytes than full-row decodes.
///
/// Per-column encodings (chosen by the encoder, recorded per column):
///   - int64: frame-of-reference — i64 min, a delta byte-width in
///     {0,1,2,4} and packed deltas — when it is narrower than plain
///     8-byte values (width 0 means every value equals min); plain
///     otherwise.
///   - double: plain 8-byte bit patterns (bit-exact round trip).
///   - string: dictionary (u32 entry count, length-prefixed entries,
///     one u8 code per row) for low-cardinality columns — at most 256
///     distinct values and fewer distinct values than rows; plain
///     length-prefixed bytes otherwise.
///   - mixed (heterogeneously-typed fallback columns): tagged values,
///     1-byte type tag + scalar/length-prefixed bytes each.
///
/// Per-attribute min/max ranges are not stored: decoding rebuilds them by
/// scanning each column, which reproduces them exactly (ranges are a pure
/// function of the column's values).
///
/// Version 1 (the row-major record payload) is no longer readable: its
/// files are rejected with a clean InvalidArgument("unsupported block
/// format version ...") Status, never mis-decoded.

#ifndef ADAPTDB_IO_FORMAT_H_
#define ADAPTDB_IO_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "storage/block.h"

namespace adaptdb::io {

/// "ADBK" in little-endian byte order.
inline constexpr uint32_t kBlockMagic = 0x4b424441u;
/// Current serialization version. DecodeBlock rejects any other.
inline constexpr uint16_t kFormatVersion = 2;
/// Fixed header size in bytes.
inline constexpr size_t kBlockHeaderBytes = 40;
/// Bytes per column-directory entry (type, encoding, offset, length,
/// checksum).
inline constexpr size_t kColumnDirEntryBytes = 1 + 1 + 8 + 8 + 8;

/// Serializes `block` (header + column directory + column segments).
std::string EncodeBlock(const Block& block);

/// Parses a serialized block (all columns). Validates magic, version,
/// checksums, framing and the attribute count against `expected_attrs`
/// (pass -1 to accept any). Returns Corruption / InvalidArgument on
/// malformed input — never aborts.
Result<Block> DecodeBlock(std::string_view buf, int32_t expected_attrs);

/// \brief A column-pruned read: the requested columns plus how many
/// payload bytes the read actually touched.
struct ColumnSubset {
  BlockId id = -1;
  uint32_t num_records = 0;
  /// Decoded columns, aligned with the `attrs` argument.
  std::vector<Column> columns;
  /// Header + column directory + the selected segments only.
  uint64_t bytes_read = 0;
};

/// Decodes only the columns named by `attrs`, using the column directory
/// to skip every other segment (their bytes are neither validated nor
/// touched; the selected segments are each verified against their own
/// checksum). The whole-payload checksum is *not* verified — that is the
/// point of a partial read.
Result<ColumnSubset> DecodeBlockColumns(std::string_view buf,
                                        int32_t expected_attrs,
                                        const std::vector<AttrId>& attrs);

/// FNV-1a 64-bit hash (payload and per-column checksums).
uint64_t Fnv1a64(std::string_view bytes);

}  // namespace adaptdb::io

#endif  // ADAPTDB_IO_FORMAT_H_
