/// \file format.h
/// \brief On-disk block serialization: fixed header + record payload.
///
/// Layout (all integers little-endian):
///
///   offset  size  field
///   0       4     magic "ADBK"
///   4       2     format version (kFormatVersion)
///   6       2     flags (reserved, 0)
///   8       8     block id (int64)
///   16      4     attribute count (int32)
///   20      4     record count (uint32)
///   24      8     payload length in bytes (uint64)
///   32      8     FNV-1a 64 checksum of the payload
///   40      ...   payload
///
/// Payload: records in order; each record is num_attrs values, each value a
/// 1-byte type tag (0 = int64, 1 = double, 2 = string) followed by 8 bytes
/// (int64 / double bit pattern) or u32 length + bytes (string). Doubles
/// round-trip bit-exactly (the bit pattern is stored, not a decimal form).
///
/// Per-attribute min/max ranges are not stored: DecodeBlock rebuilds them by
/// re-adding each record, which reproduces them exactly (ranges are a pure
/// function of the record sequence).

#ifndef ADAPTDB_IO_FORMAT_H_
#define ADAPTDB_IO_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "storage/block.h"

namespace adaptdb::io {

/// "ADBK" in little-endian byte order.
inline constexpr uint32_t kBlockMagic = 0x4b424441u;
/// Current serialization version. DecodeBlock rejects any other.
inline constexpr uint16_t kFormatVersion = 1;
/// Fixed header size in bytes.
inline constexpr size_t kBlockHeaderBytes = 40;

/// Serializes `block` (header + payload) into a byte string.
std::string EncodeBlock(const Block& block);

/// Parses a serialized block. Validates magic, version, checksum, payload
/// framing and the attribute count against `expected_attrs` (pass -1 to
/// accept any). Returns Corruption / InvalidArgument on malformed input —
/// never aborts.
Result<Block> DecodeBlock(std::string_view buf, int32_t expected_attrs);

/// FNV-1a 64-bit hash (the payload checksum).
uint64_t Fnv1a64(std::string_view bytes);

}  // namespace adaptdb::io

#endif  // ADAPTDB_IO_FORMAT_H_
