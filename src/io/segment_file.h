/// \file segment_file.h
/// \brief Append-only segment files: the physical home of serialized blocks.
///
/// A SegmentManager owns a directory of numbered segment files
/// (seg-000001.adb, ...). Writers append whole serialized blocks and get
/// back a BlockLocation; readers pread exactly that extent. Files are never
/// rewritten in place — a block updated in memory is appended again and the
/// directory entry repointed, mirroring HDFS's append-only files (paper §2).
/// Superseded extents become garbage (no compaction yet; see ROADMAP).

#ifndef ADAPTDB_IO_SEGMENT_FILE_H_
#define ADAPTDB_IO_SEGMENT_FILE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace adaptdb::io {

/// \brief Physical address of one serialized block.
struct BlockLocation {
  uint32_t segment_id = 0;  ///< Index of the segment file.
  uint64_t offset = 0;      ///< Byte offset within the segment.
  uint64_t length = 0;      ///< Extent length in bytes.
};

/// \brief Manages the append-only segment files of one store.
///
/// Thread safety: Append calls are serialized internally; ReadAt is safe
/// concurrently with other reads and with appends (preads never touch the
/// append offset, and segments are never truncated).
class SegmentManager {
 public:
  ~SegmentManager();

  SegmentManager(const SegmentManager&) = delete;
  SegmentManager& operator=(const SegmentManager&) = delete;

  /// Opens a manager over `dir` (created if missing). Rolls to a new
  /// segment once the current one exceeds `segment_max_bytes`.
  static Result<std::unique_ptr<SegmentManager>> Open(
      const std::string& dir, int64_t segment_max_bytes);

  /// Appends `bytes` to the current segment, rolling over when full.
  Result<BlockLocation> Append(std::string_view bytes);

  /// Reads exactly the extent at `loc` into `out`. A short read (e.g. a
  /// truncated file) is a Corruption error, not a crash.
  Status ReadAt(const BlockLocation& loc, std::string* out) const;

  /// Resolves `loc` to (fd, offset) for an asynchronous positioned read of
  /// `loc.length` bytes — the AsyncIo caller sizes its own buffer. Valid as
  /// long as this manager is alive (segments are never closed or truncated
  /// before destruction). Corruption on an unknown segment id.
  Result<int> FdForRead(const BlockLocation& loc) const;

  /// fsyncs every segment file.
  Status Sync();

  /// Total bytes appended across all segments (garbage included).
  int64_t TotalBytes() const;

  const std::string& dir() const { return dir_; }

 private:
  SegmentManager(std::string dir, int64_t segment_max_bytes)
      : dir_(std::move(dir)), segment_max_bytes_(segment_max_bytes) {}

  /// Opens segment `id`'s file, creating it. Appends to segments_.
  Status OpenSegment(uint32_t id);

  std::string SegmentPath(uint32_t id) const;

  std::string dir_;
  int64_t segment_max_bytes_;

  struct Segment {
    int fd = -1;
    uint64_t size = 0;
  };

  /// Guards segments_ growth and the append offset. Reads copy the fd out
  /// under the lock, then pread without it.
  mutable std::mutex mu_;
  std::vector<Segment> segments_;
};

}  // namespace adaptdb::io

#endif  // ADAPTDB_IO_SEGMENT_FILE_H_
