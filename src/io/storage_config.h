/// \file storage_config.h
/// \brief Configuration of the persistent storage backend.

#ifndef ADAPTDB_IO_STORAGE_CONFIG_H_
#define ADAPTDB_IO_STORAGE_CONFIG_H_

#include <cstdint>
#include <string>

namespace adaptdb {

/// \brief Selects and tunes the block storage backend of a table.
///
/// Threaded through ClusterConfig -> DatabaseOptions, so a whole Database
/// (every table it creates) runs either on the in-memory store or on
/// file-backed blocks behind a buffer pool.
struct StorageConfig {
  enum class Backend {
    /// Blocks live in a hashmap; every read is free (the simulator's
    /// original regime).
    kMemory,
    /// Blocks live in append-only segment files; reads miss through a
    /// BufferPool into real preads.
    kDisk,
  };

  Backend backend = Backend::kMemory;

  /// Directory for segment files (disk backend). Empty: a fresh temp
  /// directory is created under $TMPDIR and removed when the store closes.
  std::string dir;

  /// Buffer-pool budget in blocks. Pinned blocks never count against
  /// eviction, so the pool can transiently exceed this while pins are held
  /// (e.g. a shuffle join's map phase pins its whole input).
  int64_t buffer_blocks = 64;

  /// Size at which the current segment file rolls over.
  int64_t segment_max_bytes = int64_t{64} << 20;

  /// fsync segment files on Flush().
  bool sync_on_flush = false;

  /// Dedicated async I/O threads for Prefetch read-ahead (disk backend).
  /// 0 disables async I/O entirely: Prefetch falls back to synchronous
  /// pins on the calling thread (the pre-async behavior).
  int32_t io_threads = 2;

  /// AsyncIo backend hint: "" / "threads" = portable thread pool,
  /// "uring" = io_uring where the build supports it (falls back to the
  /// thread pool otherwise).
  std::string async_backend;
};

/// Applies environment overrides (used by CI to run the whole test suite on
/// the disk backend without code changes):
///   ADAPTDB_STORAGE=disk|memory   selects the backend
///   ADAPTDB_BUFFER_BLOCKS=N       overrides buffer_blocks (N >= 1)
///   ADAPTDB_IO_THREADS=N          overrides io_threads (N >= 0; 0 = sync)
///   ADAPTDB_ASYNC_BACKEND=threads|uring   overrides async_backend
StorageConfig ApplyStorageEnv(StorageConfig config);

}  // namespace adaptdb

#endif  // ADAPTDB_IO_STORAGE_CONFIG_H_
