/// \file disk_block_store.h
/// \brief File-backed BlockStore: segment files + buffer pool.
///
/// Implements the full BlockStore surface over append-only segment files.
/// Reads pin through a BufferPool: a hit is a map lookup, a miss is a real
/// pread + deserialize. Mutable pins mark frames dirty; dirty frames are
/// appended back to the segments on eviction or Flush and their directory
/// entry repointed. Delete drops the block from the directory and pool (its
/// extents become garbage).
///
/// Execution results and the logical IoStats accounted by exec/ are
/// identical to MemBlockStore's — the simulator's block-read accounting is
/// backend-independent; only the physical counters() differ.

#ifndef ADAPTDB_IO_DISK_BLOCK_STORE_H_
#define ADAPTDB_IO_DISK_BLOCK_STORE_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "io/async_io.h"
#include "io/buffer_pool.h"
#include "io/segment_file.h"
#include "io/storage_config.h"
#include "storage/block_store.h"

namespace adaptdb {

/// \brief The disk-backed BlockStore. Construct via Open (or the
/// MakeBlockStore factory below).
class DiskBlockStore final : public BlockStore, private io::BlockSource {
 public:
  /// Opens a store over `config.dir` (a fresh temp directory when empty —
  /// removed again on destruction). `config.backend` is ignored; calling
  /// Open *is* choosing the disk backend.
  static Result<std::unique_ptr<DiskBlockStore>> Open(int32_t num_attrs,
                                                      StorageConfig config);

  ~DiskBlockStore() override;

  BlockId CreateBlock() override;
  Result<BlockRef> Get(BlockId id) const override;
  Result<MutableBlockRef> GetMutable(BlockId id) override;
  bool Contains(BlockId id) const override;
  Result<size_t> RecordCount(BlockId id) const override;

  /// Metadata-only skipping without I/O: answers from the resident copy
  /// when the block is in the pool, else from the per-attribute ranges the
  /// directory recorded at the last write-back. A non-resident block has
  /// always been written back at least once (eviction writes dirty frames
  /// through), so the directory ranges are exact whenever they are needed.
  bool MayMatchMeta(BlockId id, const PredicateSet& preds) const override;

  /// Loads non-resident `ids` into the pool ahead of consumption and
  /// returns how many reads were issued. The batch is capped at
  /// capacity - ids.size() - 1 frames: the consumer will load up to a
  /// window of its own blocks (plus hold one pin) before reaching this
  /// batch, and read-ahead that a small pool would evict before first use
  /// is strictly wasted I/O — on such pools the cap degrades to zero.
  ///
  /// With io_threads > 0 (the default) the reads are submitted to the
  /// store's AsyncIo backend and overlap the caller's compute: each id
  /// claims a loading frame (BufferPool::BeginLoad) so a consumer pinning
  /// it early waits on the in-flight read — still a hit — instead of
  /// issuing a duplicate pread. With io_threads == 0 the loads happen
  /// synchronously on the calling thread (the pre-async behavior).
  int64_t Prefetch(const std::vector<BlockId>& ids) const override;

  bool CanPrefetch() const override { return true; }

  Status Delete(BlockId id) override;
  std::vector<BlockId> BlockIds() const override;
  size_t num_blocks() const override;
  size_t TotalRecords() const override;
  Status Flush() override;
  StorageCounters counters() const override;

  /// Metadata-only size estimate: the persisted extent length regardless
  /// of residency (-1 for a block never written back), so adaptive morsel
  /// decomposition never varies with buffer-pool state. Never performs I/O.
  int64_t SizeBytesHint(BlockId id) const override;

  /// Pool introspection for benchmarks and tests.
  io::BufferPoolStats pool_stats() const { return pool_.stats(); }
  int64_t resident_blocks() const { return pool_.resident_blocks(); }
  /// Re-budgets the pool at runtime (fig14's buffer sweep).
  void set_buffer_capacity(int64_t blocks) { pool_.set_capacity(blocks); }

  /// Physical bytes appended to segment files so far.
  int64_t segment_bytes() const { return segments_->TotalBytes(); }

  const std::string& dir() const { return segments_->dir(); }

  /// The store's AsyncIo backend, or null when io_threads == 0. Spilling
  /// joins borrow it so spill traffic shares the store's I/O threads.
  io::AsyncIo* async_io() const { return async_.get(); }

 private:
  DiskBlockStore(int32_t num_attrs, StorageConfig config,
                 std::unique_ptr<io::SegmentManager> segments,
                 bool owns_temp_dir);

  /// io::BlockSource: physical read of one block (pool miss).
  Result<Block> LoadBlock(BlockId id) override;
  /// io::BlockSource: physical append of one block + directory repoint.
  Status WriteBack(const Block& block) override;

  /// Shared tail of LoadBlock and the async prefetch completion: decodes
  /// `bytes` into block `id`, validates the embedded id, and refreshes the
  /// directory's record count + range metadata.
  Result<Block> DecodeLoaded(BlockId id, const std::string& bytes);

  struct DirEntry {
    /// Physical address of the latest persisted version; nullopt while the
    /// block has only ever lived in the pool (it is dirty there).
    std::optional<io::BlockLocation> loc;
    /// Record count at the last load/write-back (exact for non-resident
    /// blocks, superseded by the pool copy for resident ones).
    size_t num_records = 0;
    /// Per-attribute min/max ranges at the last load/write-back — the
    /// block-skipping metadata of MayMatchMeta. Empty until the block is
    /// first persisted (while it is still resident and Peek-able).
    std::vector<ValueRange> ranges;
  };

  StorageConfig config_;
  std::unique_ptr<io::SegmentManager> segments_;
  bool owns_temp_dir_;

  /// Guards directory_ and next_id_. Never held while calling into the
  /// pool (the pool's write-back path locks dir_mu_ after its own mutex;
  /// taking them in the opposite order would deadlock).
  mutable std::mutex dir_mu_;
  std::unordered_map<BlockId, DirEntry> directory_;
  BlockId next_id_ = 0;

  mutable io::BufferPool pool_;

  /// Declared last — destroyed first — so in-flight prefetch completions
  /// (which touch pool_, segments_ and directory_) finish before any of
  /// them is torn down. Null when config_.io_threads == 0.
  std::unique_ptr<io::AsyncIo> async_;
};

/// Creates the BlockStore selected by `config`, after applying the
/// ADAPTDB_STORAGE / ADAPTDB_BUFFER_BLOCKS environment overrides. This is
/// how Table/Database (and tests) obtain their stores.
Result<std::unique_ptr<BlockStore>> MakeBlockStore(int32_t num_attrs,
                                                   const StorageConfig& config);

/// MakeBlockStore for one named table: validates `table_name` as a path
/// component (no '/', not "." or "..", non-empty) and, when `config.dir`
/// is set, gives the table the `<dir>/<table_name>` subdirectory — two
/// stores over one segment directory would clobber each other.
Result<std::unique_ptr<BlockStore>> MakeTableStore(int32_t num_attrs,
                                                   StorageConfig config,
                                                   const std::string& table_name);

}  // namespace adaptdb

#endif  // ADAPTDB_IO_DISK_BLOCK_STORE_H_
