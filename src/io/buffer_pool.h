/// \file buffer_pool.h
/// \brief Fixed-budget cache of deserialized blocks with LRU eviction.
///
/// The pool sits between a BlockStore's callers and a BlockSource (the
/// physical layer: segment files). Pin() returns a shared_ptr whose
/// ownership IS the pin: the handle carries a token that decrements the
/// frame's pin count when the last copy dies. Pinned frames live on a
/// separate list that eviction never visits, so eviction is O(1) per
/// victim — the LRU tail of the unpinned list — and a pool that is over
/// budget purely because of pins pays nothing per miss beyond the load
/// itself. Dirty frames (created or pinned mutable) are written back
/// through the source before being dropped; a failed write-back rotates
/// the frame to MRU (so clean frames behind it still evict) and surfaces
/// through the next FlushAll.
///
/// Handles own the pool's internal state jointly (shared control block),
/// so a BlockRef may safely outlive the BufferPool and its store: the last
/// handle just releases the leftover frames. The BlockSource, however, is
/// only used while the pool is alive.
///
/// Thread safety: fully thread-safe. Concurrent pins of a block being
/// loaded wait on a condition variable instead of loading twice; the
/// actual read happens outside the pool lock, so misses on different
/// blocks overlap their I/O. The budget is a soft cap under pin pressure:
/// when every frame is pinned the pool overshoots rather than failing
/// (documented in StorageConfig::buffer_blocks).

#ifndef ADAPTDB_IO_BUFFER_POOL_H_
#define ADAPTDB_IO_BUFFER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/result.h"
#include "storage/block_store.h"

namespace adaptdb::io {

/// \brief Cumulative pool counters.
struct BufferPoolStats {
  int64_t hits = 0;        ///< Pins served from resident frames.
  int64_t misses = 0;      ///< Pins that loaded from the source (real reads).
  int64_t evictions = 0;   ///< Frames dropped to respect the budget.
  int64_t writebacks = 0;  ///< Dirty frames written through the source.
  /// High-water mark of resident frames (including loading claims). The
  /// out-of-core acceptance tests assert this stays bounded by the budget
  /// plus concurrent pin pressure.
  int64_t peak_resident = 0;
};

/// \brief The physical layer beneath a BufferPool.
class BlockSource {
 public:
  virtual ~BlockSource() = default;
  /// Reads and deserializes one block.
  virtual Result<Block> LoadBlock(BlockId id) = 0;
  /// Serializes and persists one block (append + directory repoint).
  virtual Status WriteBack(const Block& block) = 0;
};

/// \brief The block cache. See file comment for the pinning contract.
class BufferPool {
 public:
  /// `capacity_blocks` is clamped to >= 1; `source` must outlive the pool
  /// (but not the handles it issued).
  BufferPool(int64_t capacity_blocks, BlockSource* source);

  /// Detaches from the source. Outstanding handles stay valid; the frames
  /// they pin are released when the last handle dies. Dirty frames not
  /// flushed before destruction are dropped (there is no reopen yet).
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins `id` for reading, loading it on a miss. The block stays resident
  /// until every copy of the returned handle is gone.
  Result<BlockRef> Pin(BlockId id);

  /// Pins `id` for mutation, marking the frame dirty.
  Result<MutableBlockRef> PinMutable(BlockId id);

  /// Inserts a brand-new block (CreateBlock path), unpinned. The frame
  /// starts dirty: it has never been persisted.
  void Insert(BlockId id, Block block);

  /// Drops `id`'s frame without write-back (Delete path). No-op when not
  /// resident. Outstanding handles keep the block's memory alive but it is
  /// no longer reachable through the pool.
  void Drop(BlockId id);

  /// Claims a loading frame for an asynchronous fill (Prefetch path).
  /// Returns true and counts a miss when `id` had no frame — the caller
  /// now owns completing the load via FinishLoad (on success OR failure).
  /// Returns false when a frame already exists (resident or loading): the
  /// caller must not issue a read.
  bool BeginLoad(BlockId id);

  /// Completes a BeginLoad claim: fills the frame and moves it to the LRU,
  /// or on error erases the claim so the next Pin retries synchronously.
  /// Safe to call after Drop() removed the frame (no-op). Wakes any Pin
  /// waiting on the loading frame.
  void FinishLoad(BlockId id, Result<Block> loaded);

  /// The resident block, or null — never loads, never pins, never touches
  /// the LRU. The returned ref shares the block's lifetime, not a pin:
  /// the frame may still be evicted underneath it (the memory stays valid).
  std::shared_ptr<const Block> Peek(BlockId id) const;

  /// Writes every dirty frame through the source. Retries (and surfaces)
  /// write-backs that failed during eviction.
  Status FlushAll();

  /// Changes the eviction budget; shrinking evicts immediately.
  void set_capacity(int64_t capacity_blocks);

  int64_t capacity() const;
  int64_t resident_blocks() const;
  BufferPoolStats stats() const;

 private:
  struct Frame {
    std::shared_ptr<Block> block;  ///< Null while loading.
    int64_t pins = 0;          ///< All outstanding handles.
    int64_t mutable_pins = 0;  ///< Handles that may still mutate the block.
    bool loading = false;
    bool dirty = false;
    /// Position in lru (pins == 0, loaded) or pinned (otherwise).
    std::list<BlockId>::iterator list_it;
  };

  /// All mutable pool state, owned jointly by the pool and every issued
  /// handle — so a handle dying after the pool is destroyed still has a
  /// live mutex and frame table to unpin against.
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    int64_t capacity;
    /// Null once the owning pool is destroyed: no more I/O.
    BlockSource* source;
    std::unordered_map<BlockId, Frame> frames;
    std::list<BlockId> lru;     ///< Unpinned loaded frames; front = MRU.
    std::list<BlockId> pinned;  ///< Pinned or loading frames (unordered).
    BufferPoolStats stats;
  };

  Result<MutableBlockRef> PinInternal(BlockId id, bool mark_dirty);

  /// Wraps `frame`'s block in a handle whose destruction unpins `id`.
  /// Requires state->mu held; increments the pin count(s) and moves the
  /// frame to the pinned list on the 0 -> 1 transition.
  static MutableBlockRef MakeHandle(const std::shared_ptr<State>& state,
                                    BlockId id, Frame* frame,
                                    bool mutable_pin);

  /// Handle-death callback: decrements the pin count(s), returning the
  /// frame to the LRU (as most recently used) on the 1 -> 0 transition.
  static void Unpin(const std::shared_ptr<State>& state, BlockId id,
                    bool mutable_pin);

  /// Evicts unpinned LRU frames until the budget holds (or none are left).
  /// Requires s->mu held; may perform write-back I/O.
  static void EvictToCapacity(State* s);

  std::shared_ptr<State> state_;
};

}  // namespace adaptdb::io

#endif  // ADAPTDB_IO_BUFFER_POOL_H_
