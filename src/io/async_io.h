/// \file async_io.h
/// \brief Pluggable asynchronous I/O: batched reads/writes with completions.
///
/// The out-of-core execution paths (prefetch read-ahead, spill-file chunk
/// writes, partition read-back) must overlap disk latency with compute
/// instead of blocking TaskPool workers on preads. AsyncIo is the seam: a
/// caller submits a batch of positioned read/write operations against open
/// file descriptors and gets a completion callback per operation, invoked
/// from whatever thread the backend completes on.
///
/// Two backends exist:
///   - MakeThreadPoolAsyncIo: a portable pool of dedicated I/O threads
///     doing pread/pwrite. Always available; the default.
///   - MakeIoUringAsyncIo: a Linux io_uring submission/completion ring,
///     compiled only when CMake finds liburing (ADAPTDB_WITH_IO_URING);
///     returns null where unsupported so callers fall back cleanly.
///
/// Completion contract: every submitted op's `done` callback runs exactly
/// once — with OK on full transfer, Corruption on a short read (truncated
/// file), or an Internal error for OS failures. Callbacks must not block on
/// the AsyncIo itself (no Submit-and-Drain from inside a callback). Drain()
/// returns only after every outstanding callback has finished, which is
/// what makes teardown safe: owners drain before closing the fds the
/// in-flight ops read from.

#ifndef ADAPTDB_IO_ASYNC_IO_H_
#define ADAPTDB_IO_ASYNC_IO_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace adaptdb::io {

/// \brief Cumulative counters of one AsyncIo instance.
struct AsyncIoStats {
  int64_t reads_submitted = 0;
  int64_t reads_completed = 0;
  int64_t writes_submitted = 0;
  int64_t writes_completed = 0;
  int64_t read_bytes = 0;
  int64_t write_bytes = 0;
  int64_t failures = 0;
  /// High-water mark of simultaneously in-flight operations.
  int64_t inflight_peak = 0;
};

/// \brief Asynchronous positioned-I/O backend. Thread-safe.
class AsyncIo {
 public:
  /// One positioned read or write against an open fd.
  struct Op {
    enum class Kind { kRead, kWrite };
    Kind kind = Kind::kRead;
    int fd = -1;
    uint64_t offset = 0;
    /// Read destination (pre-sized to the transfer length) or write
    /// source. Must stay alive until `done` runs — completions own no
    /// memory.
    std::string* buf = nullptr;
    /// Completion callback; runs exactly once, on a backend thread.
    std::function<void(Status)> done;
  };

  virtual ~AsyncIo() = default;

  /// Enqueues a batch. Never blocks on the I/O itself.
  virtual void Submit(std::vector<Op> ops) = 0;

  /// Blocks until every op submitted so far has completed and its callback
  /// has returned.
  virtual void Drain() = 0;

  virtual AsyncIoStats stats() const = 0;
  virtual const char* name() const = 0;
};

/// Portable backend: `num_threads` dedicated I/O threads (clamped >= 1)
/// consuming a shared queue with pread/pwrite.
std::unique_ptr<AsyncIo> MakeThreadPoolAsyncIo(int32_t num_threads);

/// io_uring backend with the given submission-queue depth. Null when the
/// build has no liburing (see file comment) — callers must fall back.
std::unique_ptr<AsyncIo> MakeIoUringAsyncIo(int32_t queue_depth);

/// True iff MakeIoUringAsyncIo can return a backend in this build.
bool IoUringAvailable();

/// Backend selected by `hint` ("uring" tries io_uring first, anything else
/// — including empty and "threads" — uses the thread pool), falling back to
/// the thread pool when io_uring is unavailable. `threads` sizes the
/// thread-pool backend and the ring depth.
std::unique_ptr<AsyncIo> MakeAsyncIo(int32_t threads,
                                     const std::string& hint = "");

}  // namespace adaptdb::io

#endif  // ADAPTDB_IO_ASYNC_IO_H_
