#include "io/segment_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>

namespace adaptdb::io {

namespace {

std::string ErrnoMessage(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

SegmentManager::~SegmentManager() {
  for (Segment& seg : segments_) {
    if (seg.fd >= 0) ::close(seg.fd);
  }
}

Result<std::unique_ptr<SegmentManager>> SegmentManager::Open(
    const std::string& dir, int64_t segment_max_bytes) {
  if (dir.empty()) {
    return Status::InvalidArgument("segment directory path is empty");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create segment directory '" + dir +
                            "': " + ec.message());
  }
  auto mgr = std::unique_ptr<SegmentManager>(
      new SegmentManager(dir, std::max<int64_t>(segment_max_bytes, 1)));
  ADB_RETURN_NOT_OK(mgr->OpenSegment(0));
  return mgr;
}

std::string SegmentManager::SegmentPath(uint32_t id) const {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%06u.adb", id);
  return dir_ + "/" + name;
}

Status SegmentManager::OpenSegment(uint32_t id) {
  const std::string path = SegmentPath(id);
  const int fd = ::open(path.c_str(), O_CREAT | O_RDWR, 0644);
  if (fd < 0) {
    return Status::Internal(ErrnoMessage("open('" + path + "')"));
  }
  // A non-empty file means another (or an earlier) store already wrote to
  // this directory; appending from our in-memory offset 0 would silently
  // clobber its data. Reopening an existing store is not supported yet
  // (ROADMAP: store reopen/recovery) — fail loudly instead.
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status err = Status::Internal(ErrnoMessage("fstat('" + path + "')"));
    ::close(fd);
    return err;
  }
  if (st.st_size > 0) {
    ::close(fd);
    return Status::InvalidArgument(
        "segment file '" + path + "' already contains data (" +
        std::to_string(st.st_size) +
        " bytes); refusing to overwrite — use a fresh directory per store");
  }
  segments_.push_back(Segment{fd, 0});
  return Status::OK();
}

Result<BlockLocation> SegmentManager::Append(std::string_view bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (segments_.back().size >= static_cast<uint64_t>(segment_max_bytes_) &&
      segments_.back().size > 0) {
    ADB_RETURN_NOT_OK(OpenSegment(static_cast<uint32_t>(segments_.size())));
  }
  Segment& seg = segments_.back();
  BlockLocation loc;
  loc.segment_id = static_cast<uint32_t>(segments_.size() - 1);
  loc.offset = seg.size;
  loc.length = bytes.size();

  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::pwrite(seg.fd, bytes.data() + written, bytes.size() - written,
                 static_cast<off_t>(loc.offset + written));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(ErrnoMessage("pwrite(segment " +
                                           std::to_string(loc.segment_id) +
                                           ")"));
    }
    written += static_cast<size_t>(n);
  }
  seg.size += bytes.size();
  return loc;
}

Status SegmentManager::ReadAt(const BlockLocation& loc,
                              std::string* out) const {
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (loc.segment_id >= segments_.size()) {
      return Status::Corruption("read of unknown segment " +
                                std::to_string(loc.segment_id));
    }
    fd = segments_[loc.segment_id].fd;
  }
  out->resize(loc.length);
  size_t done = 0;
  while (done < loc.length) {
    const ssize_t n = ::pread(fd, out->data() + done, loc.length - done,
                              static_cast<off_t>(loc.offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(ErrnoMessage("pread(segment " +
                                           std::to_string(loc.segment_id) +
                                           ")"));
    }
    if (n == 0) {
      return Status::Corruption(
          "short read in segment " + std::to_string(loc.segment_id) + ": " +
          std::to_string(done) + " of " + std::to_string(loc.length) +
          " bytes at offset " + std::to_string(loc.offset) +
          " (truncated file?)");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<int> SegmentManager::FdForRead(const BlockLocation& loc) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (loc.segment_id >= segments_.size()) {
    return Status::Corruption("read of unknown segment " +
                              std::to_string(loc.segment_id));
  }
  return segments_[loc.segment_id].fd;
}

Status SegmentManager::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Segment& seg : segments_) {
    if (::fsync(seg.fd) != 0) {
      return Status::Internal(ErrnoMessage("fsync"));
    }
  }
  return Status::OK();
}

int64_t SegmentManager::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const Segment& seg : segments_) {
    total += static_cast<int64_t>(seg.size);
  }
  return total;
}

}  // namespace adaptdb::io
