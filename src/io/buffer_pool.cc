#include "io/buffer_pool.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace adaptdb::io {

namespace {
/// Requires the state mutex held; call after any growth of the frame table.
template <typename State>
void NotePeakResident(State* s) {
  const auto resident = static_cast<int64_t>(s->frames.size());
  if (resident > s->stats.peak_resident) s->stats.peak_resident = resident;
}
}  // namespace

BufferPool::BufferPool(int64_t capacity_blocks, BlockSource* source)
    : state_(std::make_shared<State>()) {
  state_->capacity = std::max<int64_t>(capacity_blocks, 1);
  state_->source = source;
}

BufferPool::~BufferPool() {
  std::lock_guard<std::mutex> lock(state_->mu);
  state_->source = nullptr;  // Handles outliving the pool do no I/O.
}

Result<BlockRef> BufferPool::Pin(BlockId id) {
  auto r = PinInternal(id, /*mark_dirty=*/false);
  if (!r.ok()) return r.status();
  return BlockRef(std::move(r).ValueOrDie());
}

Result<MutableBlockRef> BufferPool::PinMutable(BlockId id) {
  return PinInternal(id, /*mark_dirty=*/true);
}

MutableBlockRef BufferPool::MakeHandle(const std::shared_ptr<State>& state,
                                       BlockId id, Frame* frame,
                                       bool mutable_pin) {
  if (frame->pins++ == 0) {
    state->pinned.splice(state->pinned.begin(), state->lru, frame->list_it);
  }
  if (mutable_pin) ++frame->mutable_pins;
  // The handle aliases a token whose deleter unpins. The captured block
  // shared_ptr keeps the memory alive even if Drop() removes the frame
  // while handles are outstanding; the captured state keeps the mutex and
  // frame table alive even if the pool itself is destroyed first.
  std::shared_ptr<Block> keepalive = frame->block;
  Block* raw = keepalive.get();
  std::shared_ptr<void> token(
      nullptr,
      [state, id, mutable_pin,
       keepalive = std::move(keepalive)](void*) mutable {
        keepalive.reset();
        Unpin(state, id, mutable_pin);
      });
  return MutableBlockRef(std::move(token), raw);
}

void BufferPool::Unpin(const std::shared_ptr<State>& state, BlockId id,
                       bool mutable_pin) {
  std::lock_guard<std::mutex> lock(state->mu);
  auto it = state->frames.find(id);
  if (it == state->frames.end()) return;  // Dropped (deleted) while pinned.
  if (mutable_pin) --it->second.mutable_pins;
  if (--it->second.pins == 0) {
    // Back to the reclaimable list as most recently used, then settle any
    // debt the pin pressure ran up against the budget.
    state->lru.splice(state->lru.begin(), state->pinned, it->second.list_it);
    EvictToCapacity(state.get());
  }
}

Result<MutableBlockRef> BufferPool::PinInternal(BlockId id, bool mark_dirty) {
  State* s = state_.get();
  std::unique_lock<std::mutex> lock(s->mu);
  for (;;) {
    auto it = s->frames.find(id);
    if (it != s->frames.end()) {
      if (it->second.loading) {
        // Another thread is reading this block; wait for it to finish (or
        // fail and erase the frame, in which case we retry as a miss).
        s->cv.wait(lock);
        continue;
      }
      ++s->stats.hits;
      obs::Count(obs::Counter::kBufferHits);
      if (mark_dirty) it->second.dirty = true;
      return MakeHandle(state_, id, &it->second, mark_dirty);
    }

    // Miss: claim a loading frame so concurrent pins of the same id wait
    // instead of issuing a second read, then load outside the lock.
    Frame frame;
    frame.loading = true;
    s->pinned.push_front(id);  // Loading frames are never eviction victims.
    frame.list_it = s->pinned.begin();
    s->frames.emplace(id, std::move(frame));
    NotePeakResident(s);
    ++s->stats.misses;
    obs::Count(obs::Counter::kBufferMisses);
    BlockSource* source = s->source;
    lock.unlock();
    Result<Block> loaded = [&] {
      obs::TraceSpan load_span("buffer", "miss_load", "block_id", id);
      return source->LoadBlock(id);
    }();
    lock.lock();
    // Only the loader fills the frame — but Drop() may have erased it
    // (block deleted) while the read was in flight.
    auto fit = s->frames.find(id);
    if (fit == s->frames.end()) {
      s->cv.notify_all();
      return Status::NotFound("block " + std::to_string(id) +
                              " deleted during load");
    }
    if (!loaded.ok()) {
      s->pinned.erase(fit->second.list_it);
      s->frames.erase(fit);
      s->cv.notify_all();
      return loaded.status();
    }
    fit->second.block = std::make_shared<Block>(std::move(loaded).ValueOrDie());
    fit->second.loading = false;
    if (mark_dirty) fit->second.dirty = true;
    // Hand the frame to the LRU first; MakeHandle moves it to the pinned
    // list on the 0 -> 1 pin transition.
    s->lru.splice(s->lru.begin(), s->pinned, fit->second.list_it);
    MutableBlockRef ref = MakeHandle(state_, id, &fit->second, mark_dirty);
    s->cv.notify_all();
    EvictToCapacity(s);
    return ref;
  }
}

void BufferPool::Insert(BlockId id, Block block) {
  State* s = state_.get();
  std::lock_guard<std::mutex> lock(s->mu);
  Frame frame;
  frame.block = std::make_shared<Block>(std::move(block));
  frame.dirty = true;
  s->lru.push_front(id);
  frame.list_it = s->lru.begin();
  s->frames.insert_or_assign(id, std::move(frame));
  NotePeakResident(s);
  EvictToCapacity(s);
}

bool BufferPool::BeginLoad(BlockId id) {
  State* s = state_.get();
  std::lock_guard<std::mutex> lock(s->mu);
  if (s->frames.count(id) != 0) return false;
  // Same claim as PinInternal's miss path: a loading frame on the pinned
  // list, counted as a miss, so a concurrent Pin waits on the cv instead
  // of issuing its own read.
  Frame frame;
  frame.loading = true;
  s->pinned.push_front(id);
  frame.list_it = s->pinned.begin();
  s->frames.emplace(id, std::move(frame));
  NotePeakResident(s);
  ++s->stats.misses;
  obs::Count(obs::Counter::kBufferMisses);
  return true;
}

void BufferPool::FinishLoad(BlockId id, Result<Block> loaded) {
  State* s = state_.get();
  std::lock_guard<std::mutex> lock(s->mu);
  auto it = s->frames.find(id);
  // Drop() may have erased the claim (block deleted mid-flight); any Pin
  // waiting on it was already woken by Drop's caller path retrying.
  if (it == s->frames.end() || !it->second.loading) {
    s->cv.notify_all();
    return;
  }
  if (!loaded.ok()) {
    // Erase the claim: the next Pin of this id retries as a synchronous
    // miss and surfaces the (possibly transient) error itself.
    s->pinned.erase(it->second.list_it);
    s->frames.erase(it);
    s->cv.notify_all();
    return;
  }
  it->second.block = std::make_shared<Block>(std::move(loaded).ValueOrDie());
  it->second.loading = false;
  s->lru.splice(s->lru.begin(), s->pinned, it->second.list_it);
  s->cv.notify_all();
  EvictToCapacity(s);
}

void BufferPool::Drop(BlockId id) {
  State* s = state_.get();
  std::lock_guard<std::mutex> lock(s->mu);
  auto it = s->frames.find(id);
  if (it == s->frames.end()) return;
  (it->second.pins > 0 || it->second.loading ? s->pinned : s->lru)
      .erase(it->second.list_it);
  s->frames.erase(it);
}

std::shared_ptr<const Block> BufferPool::Peek(BlockId id) const {
  State* s = state_.get();
  std::lock_guard<std::mutex> lock(s->mu);
  auto it = s->frames.find(id);
  if (it == s->frames.end() || it->second.loading) return nullptr;
  return it->second.block;
}

void BufferPool::EvictToCapacity(State* s) {
  // Victims come off the unpinned LRU tail only — O(1) each. When the
  // overshoot is all pins, the LRU is empty and this returns immediately.
  while (static_cast<int64_t>(s->frames.size()) > s->capacity &&
         !s->lru.empty()) {
    const BlockId victim = s->lru.back();
    auto fit = s->frames.find(victim);
    if (fit->second.dirty) {
      obs::TraceSpan wb_span("buffer", "evict_writeback", "block_id", victim);
      if (s->source == nullptr ||
          !s->source->WriteBack(*fit->second.block).ok()) {
        // Keep the data; rotate the frame to MRU so the clean frames
        // behind it can still evict. The failure resurfaces (and the
        // write retries) on the next FlushAll.
        s->lru.splice(s->lru.begin(), s->lru, fit->second.list_it);
        return;
      }
      ++s->stats.writebacks;
      obs::Count(obs::Counter::kBufferWritebacks);
    }
    ++s->stats.evictions;
    obs::Count(obs::Counter::kBufferEvictions);
    obs::Tracer::Instant("buffer", "evict", "block_id", victim);
    s->lru.pop_back();
    s->frames.erase(fit);
  }
}

Status BufferPool::FlushAll() {
  State* s = state_.get();
  std::lock_guard<std::mutex> lock(s->mu);
  if (s->source == nullptr) {
    return Status::InvalidArgument("buffer pool is closed");
  }
  for (auto& [id, frame] : s->frames) {
    if (frame.loading || !frame.dirty) continue;
    {
      obs::TraceSpan wb_span("buffer", "flush_writeback", "block_id", id);
      ADB_RETURN_NOT_OK(s->source->WriteBack(*frame.block));
    }
    // A frame with outstanding *mutable* pins stays dirty: the holder may
    // mutate it after this snapshot, and clearing the flag here would let
    // eviction discard those later writes. Read pins are harmless.
    if (frame.mutable_pins == 0) frame.dirty = false;
    ++s->stats.writebacks;
    obs::Count(obs::Counter::kBufferWritebacks);
  }
  return Status::OK();
}

void BufferPool::set_capacity(int64_t capacity_blocks) {
  State* s = state_.get();
  std::lock_guard<std::mutex> lock(s->mu);
  s->capacity = std::max<int64_t>(capacity_blocks, 1);
  EvictToCapacity(s);
}

int64_t BufferPool::capacity() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->capacity;
}

int64_t BufferPool::resident_blocks() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return static_cast<int64_t>(state_->frames.size());
}

BufferPoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->stats;
}

}  // namespace adaptdb::io
