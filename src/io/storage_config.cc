#include "io/storage_config.h"

#include <cstdlib>
#include <cstring>

namespace adaptdb {

StorageConfig ApplyStorageEnv(StorageConfig config) {
  if (const char* backend = std::getenv("ADAPTDB_STORAGE")) {
    if (std::strcmp(backend, "disk") == 0) {
      config.backend = StorageConfig::Backend::kDisk;
    } else if (std::strcmp(backend, "memory") == 0) {
      config.backend = StorageConfig::Backend::kMemory;
    }
  }
  if (const char* blocks = std::getenv("ADAPTDB_BUFFER_BLOCKS")) {
    const long long n = std::atoll(blocks);
    if (n >= 1) config.buffer_blocks = static_cast<int64_t>(n);
  }
  if (const char* threads = std::getenv("ADAPTDB_IO_THREADS")) {
    const long long n = std::atoll(threads);
    if (n >= 0) config.io_threads = static_cast<int32_t>(n);
  }
  if (const char* backend = std::getenv("ADAPTDB_ASYNC_BACKEND")) {
    config.async_backend = backend;
  }
  return config;
}

}  // namespace adaptdb
