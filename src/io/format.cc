#include "io/format.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <utility>

namespace adaptdb::io {

namespace {

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

/// Cursor over a byte buffer that fails softly at the end.
struct Reader {
  const unsigned char* p;
  size_t left;

  bool Take(size_t n, const unsigned char** out) {
    if (left < n) return false;
    *out = p;
    p += n;
    left -= n;
    return true;
  }

  bool U8(uint8_t* v) {
    const unsigned char* b;
    if (!Take(1, &b)) return false;
    *v = b[0];
    return true;
  }

  bool U16(uint16_t* v) {
    const unsigned char* b;
    if (!Take(2, &b)) return false;
    *v = static_cast<uint16_t>(b[0] | (b[1] << 8));
    return true;
  }

  bool U32(uint32_t* v) {
    const unsigned char* b;
    if (!Take(4, &b)) return false;
    *v = 0;
    for (int i = 3; i >= 0; --i) *v = (*v << 8) | b[i];
    return true;
  }

  bool U64(uint64_t* v) {
    const unsigned char* b;
    if (!Take(8, &b)) return false;
    *v = 0;
    for (int i = 7; i >= 0; --i) *v = (*v << 8) | b[i];
    return true;
  }
};

/// Column element type tags (directory byte 0).
enum : uint8_t {
  kTypeInt64 = 0,
  kTypeDouble = 1,
  kTypeString = 2,
  kTypeMixed = 3,
  kTypeUntyped = 0xff,  // Empty column of an empty block.
};

/// Column encoding tags (directory byte 1).
enum : uint8_t {
  kEncPlain = 0,
  kEncFor = 1,     // Frame-of-reference int64.
  kEncDict = 2,    // Dictionary-coded strings.
  kEncTagged = 3,  // Per-value type tags (mixed columns).
};

/// Tagged-value scalar tags (kEncTagged payloads).
enum : uint8_t { kTagInt64 = 0, kTagDouble = 1, kTagString = 2 };

void EncodeTaggedValue(std::string* out, const Value& v) {
  switch (v.type()) {
    case DataType::kInt64: {
      out->push_back(static_cast<char>(kTagInt64));
      PutU64(out, static_cast<uint64_t>(v.AsInt64()));
      break;
    }
    case DataType::kDouble: {
      out->push_back(static_cast<char>(kTagDouble));
      uint64_t bits;
      const double d = v.AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      PutU64(out, bits);
      break;
    }
    case DataType::kString: {
      out->push_back(static_cast<char>(kTagString));
      const std::string& s = v.AsString();
      PutU32(out, static_cast<uint32_t>(s.size()));
      out->append(s);
      break;
    }
  }
}

bool DecodeTaggedValue(Reader* r, Value* out) {
  uint8_t tag;
  if (!r->U8(&tag)) return false;
  switch (tag) {
    case kTagInt64: {
      uint64_t bits;
      if (!r->U64(&bits)) return false;
      *out = Value(static_cast<int64_t>(bits));
      return true;
    }
    case kTagDouble: {
      uint64_t bits;
      if (!r->U64(&bits)) return false;
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      *out = Value(d);
      return true;
    }
    case kTagString: {
      uint32_t len;
      if (!r->U32(&len)) return false;
      const unsigned char* bytes;
      if (!r->Take(len, &bytes)) return false;
      *out = Value(std::string(reinterpret_cast<const char*>(bytes), len));
      return true;
    }
    default:
      return false;
  }
}

/// One encoded column segment plus its directory tags.
struct EncodedColumn {
  uint8_t type = kTypeUntyped;
  uint8_t encoding = kEncPlain;
  std::string bytes;
};

/// Frame-of-reference delta width covering `max_delta`; 8 means "use
/// plain" (no narrowing possible).
uint8_t ForWidth(uint64_t max_delta) {
  if (max_delta == 0) return 0;
  if (max_delta <= 0xffull) return 1;
  if (max_delta <= 0xffffull) return 2;
  if (max_delta <= 0xffffffffull) return 4;
  return 8;
}

void PutPacked(std::string* out, uint64_t v, uint8_t width) {
  for (uint8_t i = 0; i < width; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

EncodedColumn EncodeInt64Column(const std::vector<int64_t>& vals) {
  EncodedColumn out;
  out.type = kTypeInt64;
  if (vals.empty()) {
    out.encoding = kEncPlain;
    return out;
  }
  const auto [min_it, max_it] = std::minmax_element(vals.begin(), vals.end());
  // Wraparound-safe delta span (min may be INT64_MIN, max INT64_MAX).
  const uint64_t span = static_cast<uint64_t>(*max_it) -
                        static_cast<uint64_t>(*min_it);
  const uint8_t width = ForWidth(span);
  if (width == 8) {
    out.encoding = kEncPlain;
    out.bytes.reserve(vals.size() * 8);
    for (const int64_t v : vals) PutU64(&out.bytes, static_cast<uint64_t>(v));
    return out;
  }
  out.encoding = kEncFor;
  out.bytes.reserve(9 + vals.size() * width);
  PutU64(&out.bytes, static_cast<uint64_t>(*min_it));
  out.bytes.push_back(static_cast<char>(width));
  const uint64_t base = static_cast<uint64_t>(*min_it);
  for (const int64_t v : vals) {
    PutPacked(&out.bytes, static_cast<uint64_t>(v) - base, width);
  }
  return out;
}

EncodedColumn EncodeDoubleColumn(const std::vector<double>& vals) {
  EncodedColumn out;
  out.type = kTypeDouble;
  out.encoding = kEncPlain;
  out.bytes.reserve(vals.size() * 8);
  for (const double d : vals) {
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    PutU64(&out.bytes, bits);
  }
  return out;
}

EncodedColumn EncodeStringColumn(const std::vector<std::string>& vals) {
  EncodedColumn out;
  out.type = kTypeString;
  // Dictionary-code low-cardinality columns: at most 256 distinct values
  // (codes fit one byte) and strictly fewer distinct values than rows.
  std::unordered_map<std::string_view, uint32_t> codes;
  std::vector<std::string_view> dict;
  bool eligible = !vals.empty();
  for (const std::string& s : vals) {
    if (codes.emplace(s, static_cast<uint32_t>(dict.size())).second) {
      dict.push_back(s);
      if (dict.size() > 256) {
        eligible = false;
        break;
      }
    }
  }
  if (eligible && dict.size() >= vals.size()) eligible = false;
  if (!eligible) {
    out.encoding = kEncPlain;
    for (const std::string& s : vals) {
      PutU32(&out.bytes, static_cast<uint32_t>(s.size()));
      out.bytes.append(s);
    }
    return out;
  }
  out.encoding = kEncDict;
  PutU32(&out.bytes, static_cast<uint32_t>(dict.size()));
  for (const std::string_view s : dict) {
    PutU32(&out.bytes, static_cast<uint32_t>(s.size()));
    out.bytes.append(s);
  }
  for (const std::string& s : vals) {
    out.bytes.push_back(static_cast<char>(codes.at(s) & 0xff));
  }
  return out;
}

/// Re-encodes a dictionary-resident column. When the in-memory form is
/// exactly what EncodeStringColumn would rebuild from the materialized
/// values — every entry referenced, in first-appearance order, ≤256
/// entries, fewer entries than rows — the codes and dictionary are
/// emitted directly (byte-identical output, no string materialization).
/// Otherwise (e.g. appends grew the dictionary past 256) the values are
/// materialized and re-encoded from scratch.
EncodedColumn EncodeDictColumn(const Column& col) {
  const std::vector<uint32_t>& codes = col.codes();
  const std::vector<std::string>& dict = col.dict();
  bool direct = !codes.empty() && dict.size() <= 256 &&
                dict.size() < codes.size();
  if (direct) {
    // Verify first-appearance order with no unused entries, the invariant
    // the decoder's input satisfied and Append preserves.
    std::vector<uint8_t> seen(dict.size(), 0);
    uint32_t next = 0;
    for (const uint32_t code : codes) {
      if (!seen[code]) {
        if (code != next) {
          direct = false;
          break;
        }
        seen[code] = 1;
        ++next;
      }
    }
    if (next != dict.size()) direct = false;
  }
  if (!direct) {
    std::vector<std::string> vals;
    vals.reserve(codes.size());
    for (const uint32_t code : codes) vals.push_back(dict[code]);
    return EncodeStringColumn(vals);
  }
  EncodedColumn out;
  out.type = kTypeString;
  out.encoding = kEncDict;
  PutU32(&out.bytes, static_cast<uint32_t>(dict.size()));
  for (const std::string& s : dict) {
    PutU32(&out.bytes, static_cast<uint32_t>(s.size()));
    out.bytes.append(s);
  }
  for (const uint32_t code : codes) {
    out.bytes.push_back(static_cast<char>(code & 0xff));
  }
  return out;
}

EncodedColumn EncodeColumn(const Column& col) {
  if (!col.typed()) return EncodedColumn{};  // Empty block: untyped.
  if (col.mixed()) {
    EncodedColumn out;
    out.type = kTypeMixed;
    out.encoding = kEncTagged;
    for (const Value& v : col.values()) EncodeTaggedValue(&out.bytes, v);
    return out;
  }
  if (col.dict_coded()) return EncodeDictColumn(col);
  switch (col.type()) {
    case DataType::kInt64:
      return EncodeInt64Column(col.ints());
    case DataType::kDouble:
      return EncodeDoubleColumn(col.doubles());
    case DataType::kString:
      return EncodeStringColumn(col.strings());
  }
  return EncodedColumn{};
}

/// Decodes one column segment. `n` is the block's record count; every
/// segment must hold exactly `n` values and consume all its bytes.
Result<Column> DecodeColumn(uint8_t type, uint8_t encoding,
                            std::string_view seg, uint32_t n, size_t attr) {
  const auto corrupt = [attr](const std::string& what) {
    return Status::Corruption("column " + std::to_string(attr) + ": " + what);
  };
  Reader r{reinterpret_cast<const unsigned char*>(seg.data()), seg.size()};
  switch (type) {
    case kTypeUntyped: {
      if (n != 0 || !seg.empty()) {
        return corrupt("untyped column in a non-empty block");
      }
      return Column();
    }
    case kTypeInt64: {
      std::vector<int64_t> vals;
      vals.reserve(n);
      if (encoding == kEncPlain) {
        for (uint32_t i = 0; i < n; ++i) {
          uint64_t bits;
          if (!r.U64(&bits)) return corrupt("plain int64 segment truncated");
          vals.push_back(static_cast<int64_t>(bits));
        }
      } else if (encoding == kEncFor) {
        uint64_t base;
        uint8_t width;
        if (!r.U64(&base) || !r.U8(&width)) {
          return corrupt("FOR header truncated");
        }
        if (width != 0 && width != 1 && width != 2 && width != 4) {
          return corrupt("bad FOR delta width " + std::to_string(width));
        }
        for (uint32_t i = 0; i < n; ++i) {
          uint64_t delta = 0;
          const unsigned char* b;
          if (!r.Take(width, &b)) return corrupt("FOR deltas truncated");
          for (int j = static_cast<int>(width) - 1; j >= 0; --j) {
            delta = (delta << 8) | b[j];
          }
          vals.push_back(static_cast<int64_t>(base + delta));
        }
      } else {
        return corrupt("bad int64 encoding " + std::to_string(encoding));
      }
      if (r.left != 0) return corrupt("trailing bytes in int64 segment");
      return Column::OfInts(std::move(vals));
    }
    case kTypeDouble: {
      if (encoding != kEncPlain) {
        return corrupt("bad double encoding " + std::to_string(encoding));
      }
      std::vector<double> vals;
      vals.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        uint64_t bits;
        if (!r.U64(&bits)) return corrupt("double segment truncated");
        double d;
        std::memcpy(&d, &bits, sizeof(d));
        vals.push_back(d);
      }
      if (r.left != 0) return corrupt("trailing bytes in double segment");
      return Column::OfDoubles(std::move(vals));
    }
    case kTypeString: {
      std::vector<std::string> vals;
      if (encoding == kEncPlain) {
        vals.reserve(n);
        for (uint32_t i = 0; i < n; ++i) {
          uint32_t len;
          const unsigned char* bytes;
          if (!r.U32(&len) || !r.Take(len, &bytes)) {
            return corrupt("plain string segment truncated");
          }
          vals.emplace_back(reinterpret_cast<const char*>(bytes), len);
        }
      } else if (encoding == kEncDict) {
        uint32_t dict_size;
        if (!r.U32(&dict_size)) return corrupt("dictionary header truncated");
        if (dict_size > 256) {
          return corrupt("dictionary too large: " + std::to_string(dict_size));
        }
        std::vector<std::string> dict;
        dict.reserve(dict_size);
        for (uint32_t i = 0; i < dict_size; ++i) {
          uint32_t len;
          const unsigned char* bytes;
          if (!r.U32(&len) || !r.Take(len, &bytes)) {
            return corrupt("dictionary entries truncated");
          }
          dict.emplace_back(reinterpret_cast<const char*>(bytes), len);
        }
        // Keep the codes resident instead of materializing a string per
        // row: execution compares/hashes through the dictionary and
        // late-materializes only at output (see Column::DictStrings).
        std::vector<uint32_t> codes;
        codes.reserve(n);
        for (uint32_t i = 0; i < n; ++i) {
          uint8_t code;
          if (!r.U8(&code)) return corrupt("dictionary codes truncated");
          if (code >= dict.size()) {
            return corrupt("dictionary code " + std::to_string(code) +
                           " out of range");
          }
          codes.push_back(code);
        }
        if (r.left != 0) return corrupt("trailing bytes in string segment");
        return Column::OfDictStrings(std::move(codes), std::move(dict));
      } else {
        return corrupt("bad string encoding " + std::to_string(encoding));
      }
      if (r.left != 0) return corrupt("trailing bytes in string segment");
      return Column::OfStrings(std::move(vals));
    }
    case kTypeMixed: {
      if (encoding != kEncTagged) {
        return corrupt("bad mixed encoding " + std::to_string(encoding));
      }
      std::vector<Value> vals;
      vals.reserve(n);
      Value v;
      for (uint32_t i = 0; i < n; ++i) {
        if (!DecodeTaggedValue(&r, &v)) {
          return corrupt("tagged values truncated");
        }
        vals.push_back(std::move(v));
      }
      if (r.left != 0) return corrupt("trailing bytes in mixed segment");
      return Column::OfValues(std::move(vals));
    }
    default:
      return corrupt("unknown column type " + std::to_string(type));
  }
}

/// Parsed fixed header.
struct Header {
  BlockId id;
  uint32_t num_attrs;
  uint32_t num_records;
  uint64_t payload_len;
  uint64_t checksum;
};

Result<Header> DecodeHeader(std::string_view buf, int32_t expected_attrs) {
  Reader r{reinterpret_cast<const unsigned char*>(buf.data()), buf.size()};
  uint32_t magic;
  uint16_t version, flags;
  uint64_t id_bits;
  Header h;
  if (!r.U32(&magic) || !r.U16(&version) || !r.U16(&flags) ||
      !r.U64(&id_bits) || !r.U32(&h.num_attrs) || !r.U32(&h.num_records) ||
      !r.U64(&h.payload_len) || !r.U64(&h.checksum)) {
    return Status::Corruption("block header truncated (" +
                              std::to_string(buf.size()) + " bytes)");
  }
  if (magic != kBlockMagic) {
    return Status::Corruption("bad block magic");
  }
  if (version != kFormatVersion) {
    return Status::InvalidArgument(
        "unsupported block format version " + std::to_string(version) +
        " (expected " + std::to_string(kFormatVersion) + ")");
  }
  if (h.payload_len != r.left) {
    return Status::Corruption(
        "block payload truncated: header says " +
        std::to_string(h.payload_len) + " bytes, " + std::to_string(r.left) +
        " available");
  }
  if (expected_attrs >= 0 &&
      h.num_attrs != static_cast<uint32_t>(expected_attrs)) {
    return Status::Corruption("block attribute count " +
                              std::to_string(h.num_attrs) + " != schema's " +
                              std::to_string(expected_attrs));
  }
  h.id = static_cast<BlockId>(id_bits);
  return h;
}

/// One parsed column-directory entry.
struct DirEntry {
  uint8_t type;
  uint8_t encoding;
  uint64_t offset;
  uint64_t length;
  uint64_t checksum;
};

Result<std::vector<DirEntry>> DecodeDirectory(std::string_view payload,
                                              uint32_t num_attrs) {
  const uint64_t dir_bytes =
      static_cast<uint64_t>(num_attrs) * kColumnDirEntryBytes;
  if (payload.size() < dir_bytes) {
    return Status::Corruption("column directory truncated");
  }
  Reader r{reinterpret_cast<const unsigned char*>(payload.data()),
           payload.size()};
  std::vector<DirEntry> dir(num_attrs);
  for (uint32_t a = 0; a < num_attrs; ++a) {
    DirEntry& e = dir[a];
    if (!r.U8(&e.type) || !r.U8(&e.encoding) || !r.U64(&e.offset) ||
        !r.U64(&e.length) || !r.U64(&e.checksum)) {
      return Status::Corruption("column directory truncated");
    }
    if (e.offset < dir_bytes || e.offset > payload.size() ||
        e.length > payload.size() - e.offset) {
      return Status::Corruption("column " + std::to_string(a) +
                                " segment out of payload bounds");
    }
  }
  return dir;
}

}  // namespace

uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t h = 14695981039346656037ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string EncodeBlock(const Block& block) {
  const uint32_t num_attrs = static_cast<uint32_t>(block.num_attrs());
  std::vector<EncodedColumn> cols;
  cols.reserve(num_attrs);
  for (uint32_t a = 0; a < num_attrs; ++a) {
    cols.push_back(EncodeColumn(block.column(static_cast<AttrId>(a))));
  }

  // Directory, then the segments back to back.
  std::string payload;
  uint64_t offset = static_cast<uint64_t>(num_attrs) * kColumnDirEntryBytes;
  for (const EncodedColumn& c : cols) {
    payload.push_back(static_cast<char>(c.type));
    payload.push_back(static_cast<char>(c.encoding));
    PutU64(&payload, offset);
    PutU64(&payload, c.bytes.size());
    PutU64(&payload, Fnv1a64(c.bytes));
    offset += c.bytes.size();
  }
  for (const EncodedColumn& c : cols) payload.append(c.bytes);

  std::string out;
  out.reserve(kBlockHeaderBytes + payload.size());
  PutU32(&out, kBlockMagic);
  PutU16(&out, kFormatVersion);
  PutU16(&out, 0);  // flags
  PutU64(&out, static_cast<uint64_t>(block.id()));
  PutU32(&out, num_attrs);
  PutU32(&out, static_cast<uint32_t>(block.num_records()));
  PutU64(&out, static_cast<uint64_t>(payload.size()));
  PutU64(&out, Fnv1a64(payload));
  out.append(payload);
  return out;
}

Result<Block> DecodeBlock(std::string_view buf, int32_t expected_attrs) {
  auto header = DecodeHeader(buf, expected_attrs);
  if (!header.ok()) return header.status();
  const Header& h = header.ValueOrDie();
  const std::string_view payload = buf.substr(kBlockHeaderBytes);
  if (Fnv1a64(payload) != h.checksum) {
    return Status::Corruption("block checksum mismatch (id " +
                              std::to_string(h.id) + ")");
  }
  auto dir = DecodeDirectory(payload, h.num_attrs);
  if (!dir.ok()) return dir.status();

  std::vector<Column> cols;
  cols.reserve(h.num_attrs);
  for (uint32_t a = 0; a < h.num_attrs; ++a) {
    const DirEntry& e = dir.ValueOrDie()[a];
    auto col = DecodeColumn(
        e.type, e.encoding,
        payload.substr(static_cast<size_t>(e.offset),
                       static_cast<size_t>(e.length)),
        h.num_records, a);
    if (!col.ok()) return col.status();
    cols.push_back(std::move(col).ValueOrDie());
  }
  return Block::FromColumns(h.id, std::move(cols), h.num_records);
}

Result<ColumnSubset> DecodeBlockColumns(std::string_view buf,
                                        int32_t expected_attrs,
                                        const std::vector<AttrId>& attrs) {
  auto header = DecodeHeader(buf, expected_attrs);
  if (!header.ok()) return header.status();
  const Header& h = header.ValueOrDie();
  const std::string_view payload = buf.substr(kBlockHeaderBytes);
  auto dir = DecodeDirectory(payload, h.num_attrs);
  if (!dir.ok()) return dir.status();

  ColumnSubset out;
  out.id = h.id;
  out.num_records = h.num_records;
  out.bytes_read = kBlockHeaderBytes +
                   static_cast<uint64_t>(h.num_attrs) * kColumnDirEntryBytes;
  out.columns.reserve(attrs.size());
  for (const AttrId attr : attrs) {
    if (attr < 0 || static_cast<uint32_t>(attr) >= h.num_attrs) {
      return Status::InvalidArgument("attribute " + std::to_string(attr) +
                                     " out of range (block has " +
                                     std::to_string(h.num_attrs) + ")");
    }
    const DirEntry& e = dir.ValueOrDie()[static_cast<size_t>(attr)];
    const std::string_view seg = payload.substr(
        static_cast<size_t>(e.offset), static_cast<size_t>(e.length));
    // Each selected segment carries its own checksum, so a partial read
    // still detects corruption in everything it touches.
    if (Fnv1a64(seg) != e.checksum) {
      return Status::Corruption("column " + std::to_string(attr) +
                                " checksum mismatch (block " +
                                std::to_string(h.id) + ")");
    }
    auto col = DecodeColumn(e.type, e.encoding, seg, h.num_records,
                            static_cast<size_t>(attr));
    if (!col.ok()) return col.status();
    out.bytes_read += e.length;
    out.columns.push_back(std::move(col).ValueOrDie());
  }
  return out;
}

}  // namespace adaptdb::io
