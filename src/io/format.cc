#include "io/format.h"

#include <cstring>

namespace adaptdb::io {

namespace {

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

/// Cursor over a byte buffer that fails softly at the end.
struct Reader {
  const unsigned char* p;
  size_t left;

  bool Take(size_t n, const unsigned char** out) {
    if (left < n) return false;
    *out = p;
    p += n;
    left -= n;
    return true;
  }

  bool U8(uint8_t* v) {
    const unsigned char* b;
    if (!Take(1, &b)) return false;
    *v = b[0];
    return true;
  }

  bool U16(uint16_t* v) {
    const unsigned char* b;
    if (!Take(2, &b)) return false;
    *v = static_cast<uint16_t>(b[0] | (b[1] << 8));
    return true;
  }

  bool U32(uint32_t* v) {
    const unsigned char* b;
    if (!Take(4, &b)) return false;
    *v = 0;
    for (int i = 3; i >= 0; --i) *v = (*v << 8) | b[i];
    return true;
  }

  bool U64(uint64_t* v) {
    const unsigned char* b;
    if (!Take(8, &b)) return false;
    *v = 0;
    for (int i = 7; i >= 0; --i) *v = (*v << 8) | b[i];
    return true;
  }
};

enum : uint8_t { kTagInt64 = 0, kTagDouble = 1, kTagString = 2 };

void EncodeValue(std::string* out, const Value& v) {
  switch (v.type()) {
    case DataType::kInt64: {
      out->push_back(static_cast<char>(kTagInt64));
      PutU64(out, static_cast<uint64_t>(v.AsInt64()));
      break;
    }
    case DataType::kDouble: {
      out->push_back(static_cast<char>(kTagDouble));
      uint64_t bits;
      const double d = v.AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      PutU64(out, bits);
      break;
    }
    case DataType::kString: {
      out->push_back(static_cast<char>(kTagString));
      const std::string& s = v.AsString();
      PutU32(out, static_cast<uint32_t>(s.size()));
      out->append(s);
      break;
    }
  }
}

bool DecodeValue(Reader* r, Value* out) {
  uint8_t tag;
  if (!r->U8(&tag)) return false;
  switch (tag) {
    case kTagInt64: {
      uint64_t bits;
      if (!r->U64(&bits)) return false;
      *out = Value(static_cast<int64_t>(bits));
      return true;
    }
    case kTagDouble: {
      uint64_t bits;
      if (!r->U64(&bits)) return false;
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      *out = Value(d);
      return true;
    }
    case kTagString: {
      uint32_t len;
      if (!r->U32(&len)) return false;
      const unsigned char* bytes;
      if (!r->Take(len, &bytes)) return false;
      *out = Value(std::string(reinterpret_cast<const char*>(bytes), len));
      return true;
    }
    default:
      return false;
  }
}

}  // namespace

uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t h = 14695981039346656037ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string EncodeBlock(const Block& block) {
  std::string payload;
  for (const Record& rec : block.records()) {
    for (const Value& v : rec) EncodeValue(&payload, v);
  }

  std::string out;
  out.reserve(kBlockHeaderBytes + payload.size());
  PutU32(&out, kBlockMagic);
  PutU16(&out, kFormatVersion);
  PutU16(&out, 0);  // flags
  PutU64(&out, static_cast<uint64_t>(block.id()));
  PutU32(&out, static_cast<uint32_t>(block.num_attrs()));
  PutU32(&out, static_cast<uint32_t>(block.num_records()));
  PutU64(&out, static_cast<uint64_t>(payload.size()));
  PutU64(&out, Fnv1a64(payload));
  out.append(payload);
  return out;
}

Result<Block> DecodeBlock(std::string_view buf, int32_t expected_attrs) {
  Reader r{reinterpret_cast<const unsigned char*>(buf.data()), buf.size()};
  uint32_t magic;
  uint16_t version, flags;
  uint64_t id_bits, payload_len, checksum;
  uint32_t num_attrs, num_records;
  if (!r.U32(&magic) || !r.U16(&version) || !r.U16(&flags) ||
      !r.U64(&id_bits) || !r.U32(&num_attrs) || !r.U32(&num_records) ||
      !r.U64(&payload_len) || !r.U64(&checksum)) {
    return Status::Corruption("block header truncated (" +
                              std::to_string(buf.size()) + " bytes)");
  }
  if (magic != kBlockMagic) {
    return Status::Corruption("bad block magic");
  }
  if (version != kFormatVersion) {
    return Status::InvalidArgument(
        "unsupported block format version " + std::to_string(version) +
        " (expected " + std::to_string(kFormatVersion) + ")");
  }
  if (payload_len != r.left) {
    return Status::Corruption(
        "block payload truncated: header says " + std::to_string(payload_len) +
        " bytes, " + std::to_string(r.left) + " available");
  }
  if (Fnv1a64(buf.substr(kBlockHeaderBytes)) != checksum) {
    return Status::Corruption("block checksum mismatch (id " +
                              std::to_string(static_cast<int64_t>(id_bits)) +
                              ")");
  }
  if (expected_attrs >= 0 &&
      num_attrs != static_cast<uint32_t>(expected_attrs)) {
    return Status::Corruption("block attribute count " +
                              std::to_string(num_attrs) + " != schema's " +
                              std::to_string(expected_attrs));
  }

  Block block(static_cast<BlockId>(id_bits), static_cast<int32_t>(num_attrs));
  Record rec(num_attrs);
  for (uint32_t i = 0; i < num_records; ++i) {
    for (uint32_t a = 0; a < num_attrs; ++a) {
      if (!DecodeValue(&r, &rec[a])) {
        return Status::Corruption("block payload truncated at record " +
                                  std::to_string(i));
      }
    }
    block.Add(rec);
  }
  if (r.left != 0) {
    return Status::Corruption("block payload has " + std::to_string(r.left) +
                              " trailing bytes");
  }
  return block;
}

}  // namespace adaptdb::io
