#include "io/disk_block_store.h"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <utility>
#include <vector>

#include "io/format.h"
#include "obs/metrics.h"

namespace adaptdb {

namespace {

/// Creates a unique temp directory for a store with no configured dir.
Result<std::string> MakeTempDir() {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = std::string(base != nullptr && base[0] != '\0'
                                     ? base
                                     : "/tmp") +
                     "/adaptdb-store-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    return Status::Internal("mkdtemp('" + tmpl + "') failed");
  }
  return std::string(buf.data());
}

}  // namespace

DiskBlockStore::DiskBlockStore(int32_t num_attrs, StorageConfig config,
                               std::unique_ptr<io::SegmentManager> segments,
                               bool owns_temp_dir)
    : BlockStore(num_attrs),
      config_(std::move(config)),
      segments_(std::move(segments)),
      owns_temp_dir_(owns_temp_dir),
      pool_(config_.buffer_blocks, this) {
  if (config_.io_threads > 0) {
    async_ = io::MakeAsyncIo(config_.io_threads, config_.async_backend);
  }
}

Result<std::unique_ptr<DiskBlockStore>> DiskBlockStore::Open(
    int32_t num_attrs, StorageConfig config) {
  bool owns_temp_dir = false;
  if (config.dir.empty()) {
    auto tmp = MakeTempDir();
    if (!tmp.ok()) return tmp.status();
    config.dir = std::move(tmp).ValueOrDie();
    owns_temp_dir = true;
  }
  auto segments = io::SegmentManager::Open(config.dir,
                                           config.segment_max_bytes);
  if (!segments.ok()) return segments.status();
  return std::unique_ptr<DiskBlockStore>(
      new DiskBlockStore(num_attrs, std::move(config),
                         std::move(segments).ValueOrDie(), owns_temp_dir));
}

DiskBlockStore::~DiskBlockStore() {
  // Completions touch the pool, directory and segments: drain them first.
  async_.reset();
  if (owns_temp_dir_) {
    const std::string dir = segments_->dir();
    segments_.reset();  // Close fds before removing the files.
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
}

BlockId DiskBlockStore::CreateBlock() {
  BlockId id;
  {
    std::lock_guard<std::mutex> lock(dir_mu_);
    id = next_id_++;
    directory_.emplace(id, DirEntry{});
  }
  pool_.Insert(id, Block(id, num_attrs()));
  return id;
}

Result<BlockRef> DiskBlockStore::Get(BlockId id) const {
  {
    std::lock_guard<std::mutex> lock(dir_mu_);
    if (directory_.find(id) == directory_.end()) {
      return Status::NotFound("block " + std::to_string(id));
    }
  }
  return pool_.Pin(id);
}

Result<MutableBlockRef> DiskBlockStore::GetMutable(BlockId id) {
  {
    std::lock_guard<std::mutex> lock(dir_mu_);
    if (directory_.find(id) == directory_.end()) {
      return Status::NotFound("block " + std::to_string(id));
    }
  }
  return pool_.PinMutable(id);
}

bool DiskBlockStore::Contains(BlockId id) const {
  std::lock_guard<std::mutex> lock(dir_mu_);
  return directory_.find(id) != directory_.end();
}

Result<size_t> DiskBlockStore::RecordCount(BlockId id) const {
  size_t persisted = 0;
  {
    std::lock_guard<std::mutex> lock(dir_mu_);
    auto it = directory_.find(id);
    if (it == directory_.end()) {
      return Status::NotFound("block " + std::to_string(id));
    }
    persisted = it->second.num_records;
  }
  // The resident (possibly dirty) copy supersedes the persisted count; a
  // non-resident block is clean, so the directory's count is exact.
  if (auto resident = pool_.Peek(id)) return resident->num_records();
  return persisted;
}

bool DiskBlockStore::MayMatchMeta(BlockId id,
                                  const PredicateSet& preds) const {
  // The resident (possibly dirty) copy is authoritative when present.
  if (auto resident = pool_.Peek(id)) return resident->MayMatch(preds);
  std::lock_guard<std::mutex> lock(dir_mu_);
  auto it = directory_.find(id);
  if (it == directory_.end()) return true;  // Unknown: Get will surface it.
  if (it->second.num_records == 0) return false;  // Empty blocks never match.
  if (it->second.ranges.empty()) return true;  // No metadata: conservative.
  return RangesAdmit(preds, it->second.ranges);
}

int64_t DiskBlockStore::Prefetch(const std::vector<BlockId>& ids) const {
  // Read-ahead must leave room for the frames the consumer is about to
  // load *between now and consuming this batch* (the scan consumes one
  // window while the next is in flight, so up to ids.size() consumption
  // loads land first), plus the consumer's own pin. On pools smaller than
  // that, prefetched frames would be evicted off the LRU tail before
  // first use — every prefetch a wasted pread — so the budget degrades to
  // zero instead.
  int64_t budget =
      pool_.capacity() - static_cast<int64_t>(ids.size()) - 1;
  int64_t loaded = 0;
  std::vector<io::AsyncIo::Op> ops;
  for (BlockId id : ids) {
    if (budget <= 0) break;
    {
      std::lock_guard<std::mutex> lock(dir_mu_);
      auto it = directory_.find(id);
      if (it == directory_.end()) continue;
      // A non-resident block always has a persisted extent (its creation
      // frame was dirty until written back); no extent means it is still
      // resident, which BeginLoad rejects below anyway.
      if (async_ != nullptr && !it->second.loc.has_value()) continue;
    }
    if (async_ == nullptr) {
      // Synchronous fallback (io_threads == 0): load on this thread.
      if (pool_.Peek(id) != nullptr) continue;  // Already resident.
      auto pinned = pool_.Pin(id);  // Load; the handle drops right away, so
      if (!pinned.ok()) continue;   // the frame lands unpinned at MRU.
      ++loaded;
      --budget;
      continue;
    }
    // Claim the frame before issuing the read so a consumer that reaches
    // this block early waits on the in-flight load (a hit) instead of
    // reading it a second time. False = resident or already loading.
    if (!pool_.BeginLoad(id)) continue;
    // Read the extent only AFTER the claim succeeds: the claim guarantees
    // non-residency, so no eviction can write back a dirty copy and move
    // the extent from under us. An extent snapshotted before the claim
    // could be the pre-writeback version of a block that was resident and
    // dirty at snapshot time — loading it would silently serve stale data.
    io::BlockLocation loc;
    {
      std::lock_guard<std::mutex> lock(dir_mu_);
      auto it = directory_.find(id);
      if (it == directory_.end() || !it->second.loc.has_value()) {
        // Deleted between the claim and here; release the claim so a
        // waiting Pin retries (and surfaces NotFound) synchronously.
        pool_.FinishLoad(id, Status::NotFound("block " + std::to_string(id) +
                                              " vanished during prefetch"));
        continue;
      }
      loc = *it->second.loc;
    }
    auto fd = segments_->FdForRead(loc);
    if (!fd.ok()) {
      pool_.FinishLoad(id, fd.status());
      continue;
    }
    auto buf = std::make_shared<std::string>();
    buf->resize(loc.length);
    io::AsyncIo::Op op;
    op.kind = io::AsyncIo::Op::Kind::kRead;
    op.fd = fd.ValueOrDie();
    op.offset = loc.offset;
    op.buf = buf.get();
    // `this` outlives every completion: the destructor drains async_
    // before touching any other member. Cast away the accessor's const —
    // the completion refreshes directory metadata like a pool-miss load
    // (guarded by dir_mu_), exactly what LoadBlock would have done.
    auto* self = const_cast<DiskBlockStore*>(this);
    op.done = [self, id, buf](Status st) {
      if (!st.ok()) {
        self->pool_.FinishLoad(id, std::move(st));
        return;
      }
      self->pool_.FinishLoad(id, self->DecodeLoaded(id, *buf));
    };
    ops.push_back(std::move(op));
    ++loaded;
    --budget;
  }
  if (!ops.empty()) async_->Submit(std::move(ops));
  obs::Count(obs::Counter::kBufferPrefetched, loaded);
  return loaded;
}

Status DiskBlockStore::Delete(BlockId id) {
  {
    std::lock_guard<std::mutex> lock(dir_mu_);
    if (directory_.erase(id) == 0) {
      return Status::NotFound("block " + std::to_string(id));
    }
  }
  pool_.Drop(id);
  return Status::OK();
}

std::vector<BlockId> DiskBlockStore::BlockIds() const {
  std::vector<BlockId> ids;
  {
    std::lock_guard<std::mutex> lock(dir_mu_);
    ids.reserve(directory_.size());
    for (const auto& [id, _] : directory_) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

size_t DiskBlockStore::num_blocks() const {
  std::lock_guard<std::mutex> lock(dir_mu_);
  return directory_.size();
}

size_t DiskBlockStore::TotalRecords() const {
  // Snapshot the directory, then prefer the live (possibly dirty) resident
  // copy's count over the last persisted one.
  std::vector<std::pair<BlockId, size_t>> entries;
  {
    std::lock_guard<std::mutex> lock(dir_mu_);
    entries.reserve(directory_.size());
    for (const auto& [id, entry] : directory_) {
      entries.emplace_back(id, entry.num_records);
    }
  }
  size_t total = 0;
  for (const auto& [id, persisted_count] : entries) {
    if (auto resident = pool_.Peek(id)) {
      total += resident->num_records();
    } else {
      total += persisted_count;
    }
  }
  return total;
}

Status DiskBlockStore::Flush() {
  ADB_RETURN_NOT_OK(pool_.FlushAll());
  if (config_.sync_on_flush) {
    ADB_RETURN_NOT_OK(segments_->Sync());
  }
  return Status::OK();
}

StorageCounters DiskBlockStore::counters() const {
  const io::BufferPoolStats s = pool_.stats();
  StorageCounters out;
  out.buffer_hits = s.hits;
  out.buffer_misses = s.misses;
  out.physical_block_writes = s.writebacks;
  if (async_ != nullptr) {
    const io::AsyncIoStats a = async_->stats();
    out.async_reads = a.reads_submitted;
    out.async_inflight_peak = a.inflight_peak;
  }
  return out;
}

int64_t DiskBlockStore::SizeBytesHint(BlockId id) const {
  // Always the persisted extent length, never the resident copy's
  // in-memory footprint: those are different measures, and preferring
  // whichever happens to be available would make the hint — and the
  // adaptive morsel decomposition built on it — depend on buffer-pool
  // residency at call time (including async prefetch completion timing),
  // breaking ComputeMorselRanges' pure-function-of-metadata invariant.
  std::lock_guard<std::mutex> lock(dir_mu_);
  auto it = directory_.find(id);
  if (it == directory_.end() || !it->second.loc.has_value()) return -1;
  return static_cast<int64_t>(it->second.loc->length);
}

Result<Block> DiskBlockStore::LoadBlock(BlockId id) {
  io::BlockLocation loc;
  {
    std::lock_guard<std::mutex> lock(dir_mu_);
    auto it = directory_.find(id);
    if (it == directory_.end()) {
      return Status::NotFound("block " + std::to_string(id));
    }
    if (!it->second.loc.has_value()) {
      // Unreachable by construction: a block with no persisted extent is
      // still resident in the pool (its creation frame is dirty).
      return Status::Internal("block " + std::to_string(id) +
                              " has no persisted extent");
    }
    loc = *it->second.loc;
  }
  std::string bytes;
  ADB_RETURN_NOT_OK(segments_->ReadAt(loc, &bytes));
  return DecodeLoaded(id, bytes);
}

Result<Block> DiskBlockStore::DecodeLoaded(BlockId id,
                                           const std::string& bytes) {
  auto block = io::DecodeBlock(bytes, num_attrs());
  if (!block.ok()) return block.status();
  if (block.ValueOrDie().id() != id) {
    return Status::Corruption("block " + std::to_string(id) +
                              " extent holds block " +
                              std::to_string(block.ValueOrDie().id()));
  }
  {
    std::lock_guard<std::mutex> lock(dir_mu_);
    auto it = directory_.find(id);
    if (it != directory_.end()) {
      it->second.num_records = block.ValueOrDie().num_records();
      it->second.ranges = block.ValueOrDie().ranges();
    }
  }
  return block;
}

Status DiskBlockStore::WriteBack(const Block& block) {
  const std::string bytes = io::EncodeBlock(block);
  auto loc = segments_->Append(bytes);
  if (!loc.ok()) return loc.status();
  std::lock_guard<std::mutex> lock(dir_mu_);
  auto it = directory_.find(block.id());
  if (it == directory_.end()) {
    // Deleted while dirty in the pool; the append becomes garbage.
    return Status::OK();
  }
  it->second.loc = loc.ValueOrDie();
  it->second.num_records = block.num_records();
  it->second.ranges = block.ranges();
  return Status::OK();
}

Result<std::unique_ptr<BlockStore>> MakeTableStore(
    int32_t num_attrs, StorageConfig config, const std::string& table_name) {
  if (table_name.empty() || table_name == "." || table_name == ".." ||
      table_name.find('/') != std::string::npos) {
    return Status::InvalidArgument("table name '" + table_name +
                                   "' is not a valid path component");
  }
  if (!config.dir.empty()) config.dir += "/" + table_name;
  return MakeBlockStore(num_attrs, config);
}

Result<std::unique_ptr<BlockStore>> MakeBlockStore(
    int32_t num_attrs, const StorageConfig& config) {
  const StorageConfig cfg = ApplyStorageEnv(config);
  if (cfg.backend == StorageConfig::Backend::kMemory) {
    return std::unique_ptr<BlockStore>(
        std::make_unique<MemBlockStore>(num_attrs));
  }
  auto store = DiskBlockStore::Open(num_attrs, cfg);
  if (!store.ok()) return store.status();
  return std::unique_ptr<BlockStore>(std::move(store).ValueOrDie());
}

}  // namespace adaptdb
