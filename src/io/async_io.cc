#include "io/async_io.h"

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "obs/metrics.h"

#if defined(ADAPTDB_HAVE_IO_URING) && __has_include(<liburing.h>)
#include <liburing.h>
#define ADAPTDB_IO_URING_ENABLED 1
#else
#define ADAPTDB_IO_URING_ENABLED 0
#endif

namespace adaptdb::io {

namespace {

/// Executes one op synchronously on the calling thread. Shared by the
/// thread-pool backend's workers and the io_uring backend's fallback path.
Status RunOpBlocking(const AsyncIo::Op& op) {
  if (op.fd < 0 || op.buf == nullptr) {
    return Status::InvalidArgument("async op without fd or buffer");
  }
  char* data = op.buf->data();
  size_t remaining = op.buf->size();
  uint64_t off = op.offset;
  while (remaining > 0) {
    ssize_t n =
        op.kind == AsyncIo::Op::Kind::kRead
            ? ::pread(op.fd, data, remaining, static_cast<off_t>(off))
            : ::pwrite(op.fd, data, remaining, static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("async ") +
                              (op.kind == AsyncIo::Op::Kind::kRead ? "pread"
                                                                   : "pwrite") +
                              " failed: " + std::strerror(errno));
    }
    if (n == 0) {
      // pwrite never legitimately returns 0 for nonzero counts; for reads
      // this is EOF before the requested extent — a truncated file.
      return Status::Corruption("async read truncated: wanted " +
                                std::to_string(op.buf->size()) + " bytes at " +
                                std::to_string(op.offset));
    }
    data += n;
    remaining -= static_cast<size_t>(n);
    off += static_cast<uint64_t>(n);
  }
  return Status::OK();
}

/// Stats bookkeeping shared by both backends: submission/completion counts,
/// byte totals and the in-flight high-water mark, all under one mutex that
/// also serves Drain().
class StatsTracker {
 public:
  void OnSubmit(const std::vector<AsyncIo::Op>& ops) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& op : ops) {
      if (op.kind == AsyncIo::Op::Kind::kRead) {
        ++stats_.reads_submitted;
      } else {
        ++stats_.writes_submitted;
      }
    }
    inflight_ += static_cast<int64_t>(ops.size());
    if (inflight_ > stats_.inflight_peak) stats_.inflight_peak = inflight_;
  }

  void OnComplete(const AsyncIo::Op& op, const Status& st) {
    std::lock_guard<std::mutex> lock(mu_);
    if (op.kind == AsyncIo::Op::Kind::kRead) {
      ++stats_.reads_completed;
      if (st.ok() && op.buf != nullptr) {
        stats_.read_bytes += static_cast<int64_t>(op.buf->size());
      }
    } else {
      ++stats_.writes_completed;
      if (st.ok() && op.buf != nullptr) {
        stats_.write_bytes += static_cast<int64_t>(op.buf->size());
      }
    }
    if (!st.ok()) ++stats_.failures;
    --inflight_;
    if (inflight_ == 0) idle_cv_.notify_all();
  }

  void WaitIdle() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return inflight_ == 0; });
  }

  AsyncIoStats Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  AsyncIoStats stats_;
  int64_t inflight_ = 0;
};

/// Portable backend: N dedicated I/O threads draining a FIFO of ops with
/// blocking pread/pwrite. Completion callbacks run on the worker threads.
class ThreadPoolAsyncIo final : public AsyncIo {
 public:
  explicit ThreadPoolAsyncIo(int32_t num_threads) {
    if (num_threads < 1) num_threads = 1;
    workers_.reserve(static_cast<size_t>(num_threads));
    for (int32_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPoolAsyncIo() override {
    Drain();
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      stopping_ = true;
    }
    queue_cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  void Submit(std::vector<Op> ops) override {
    if (ops.empty()) return;
    int64_t reads = 0, writes = 0;
    for (const auto& op : ops) {
      (op.kind == Op::Kind::kRead ? reads : writes)++;
    }
    if (reads > 0) obs::Count(obs::Counter::kAsyncReads, reads);
    if (writes > 0) obs::Count(obs::Counter::kAsyncWrites, writes);
    tracker_.OnSubmit(ops);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      for (auto& op : ops) queue_.push_back(std::move(op));
    }
    queue_cv_.notify_all();
  }

  void Drain() override { tracker_.WaitIdle(); }

  AsyncIoStats stats() const override { return tracker_.Snapshot(); }

  const char* name() const override { return "threads"; }

 private:
  void WorkerLoop() {
    for (;;) {
      Op op;
      {
        std::unique_lock<std::mutex> lock(queue_mu_);
        queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and drained
        op = std::move(queue_.front());
        queue_.pop_front();
      }
      Status st = RunOpBlocking(op);
      if (op.done) op.done(st);
      // OnComplete signals Drain() only after the callback has returned,
      // so draining guarantees every completion has fully run.
      tracker_.OnComplete(op, st);
    }
  }

  StatsTracker tracker_;
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Op> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

#if ADAPTDB_IO_URING_ENABLED

/// io_uring backend: a submitter-side ring plus one reaper thread harvesting
/// completions. Ops beyond the ring depth fall back to blocking execution on
/// the reaper (correct, just not overlapped).
class IoUringAsyncIo final : public AsyncIo {
 public:
  explicit IoUringAsyncIo(int32_t queue_depth) {
    if (queue_depth < 4) queue_depth = 4;
    ok_ = io_uring_queue_init(static_cast<unsigned>(queue_depth), &ring_, 0) ==
          0;
    if (ok_) reaper_ = std::thread([this] { ReapLoop(); });
  }

  ~IoUringAsyncIo() override {
    if (!ok_) return;
    Drain();
    {
      std::lock_guard<std::mutex> lock(ring_mu_);
      stopping_ = true;
      // Wake the reaper with a no-op: a timeout-less nop completes at once.
      // Joining without the nop would deadlock on io_uring_wait_cqe, so
      // insist on an SQE slot: flushing pending submissions frees slots,
      // and after Drain() the ring quiesces within a few iterations.
      struct io_uring_sqe* sqe;
      while ((sqe = io_uring_get_sqe(&ring_)) == nullptr) {
        io_uring_submit(&ring_);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      io_uring_prep_nop(sqe);
      io_uring_sqe_set_data(sqe, nullptr);
      io_uring_submit(&ring_);
    }
    reaper_.join();
    io_uring_queue_exit(&ring_);
  }

  bool ok() const { return ok_; }

  void Submit(std::vector<Op> ops) override {
    if (ops.empty()) return;
    int64_t reads = 0, writes = 0;
    for (const auto& op : ops) {
      (op.kind == Op::Kind::kRead ? reads : writes)++;
    }
    if (reads > 0) obs::Count(obs::Counter::kAsyncReads, reads);
    if (writes > 0) obs::Count(obs::Counter::kAsyncWrites, writes);
    tracker_.OnSubmit(ops);
    std::lock_guard<std::mutex> lock(ring_mu_);
    for (auto& op : ops) {
      auto* pending = new Op(std::move(op));
      struct io_uring_sqe* sqe = io_uring_get_sqe(&ring_);
      if (sqe == nullptr) {
        // Ring full: run inline rather than dropping the op.
        Status st = RunOpBlocking(*pending);
        if (pending->done) pending->done(st);
        tracker_.OnComplete(*pending, st);
        delete pending;
        continue;
      }
      if (pending->kind == Op::Kind::kRead) {
        io_uring_prep_read(sqe, pending->fd, pending->buf->data(),
                           static_cast<unsigned>(pending->buf->size()),
                           pending->offset);
      } else {
        io_uring_prep_write(sqe, pending->fd, pending->buf->data(),
                            static_cast<unsigned>(pending->buf->size()),
                            pending->offset);
      }
      io_uring_sqe_set_data(sqe, pending);
    }
    io_uring_submit(&ring_);
  }

  void Drain() override { tracker_.WaitIdle(); }

  AsyncIoStats stats() const override { return tracker_.Snapshot(); }

  const char* name() const override { return "io_uring"; }

 private:
  void ReapLoop() {
    for (;;) {
      struct io_uring_cqe* cqe = nullptr;
      if (io_uring_wait_cqe(&ring_, &cqe) != 0) continue;
      auto* pending = static_cast<Op*>(io_uring_cqe_get_data(cqe));
      int res = cqe->res;
      io_uring_cqe_seen(&ring_, cqe);
      if (pending == nullptr) {
        std::lock_guard<std::mutex> lock(ring_mu_);
        if (stopping_) return;
        continue;
      }
      Status st;
      if (res < 0) {
        st = Status::Internal(std::string("io_uring op failed: ") +
                              std::strerror(-res));
      } else if (static_cast<size_t>(res) < pending->buf->size()) {
        // Partial transfer: finish the remainder synchronously. Reads land
        // in a scratch tail copied back on success (a zero-byte tail read
        // means the file is truncated); writes must retry with the
        // remaining SOURCE bytes — a zeroed scratch buffer here would
        // silently zero-pad the file past the partial write.
        Op rest = *pending;
        rest.offset += static_cast<uint64_t>(res);
        std::string tail =
            pending->kind == Op::Kind::kRead
                ? std::string(pending->buf->size() - static_cast<size_t>(res),
                              '\0')
                : pending->buf->substr(static_cast<size_t>(res));
        rest.buf = &tail;
        st = RunOpBlocking(rest);
        if (st.ok() && rest.kind == Op::Kind::kRead) {
          pending->buf->replace(static_cast<size_t>(res), tail.size(), tail);
        }
      }
      if (pending->done) pending->done(st);
      tracker_.OnComplete(*pending, st);
      delete pending;
    }
  }

  StatsTracker tracker_;
  std::mutex ring_mu_;
  struct io_uring ring_;
  bool ok_ = false;
  bool stopping_ = false;
  std::thread reaper_;
};

#endif  // ADAPTDB_IO_URING_ENABLED

}  // namespace

std::unique_ptr<AsyncIo> MakeThreadPoolAsyncIo(int32_t num_threads) {
  return std::make_unique<ThreadPoolAsyncIo>(num_threads);
}

std::unique_ptr<AsyncIo> MakeIoUringAsyncIo(int32_t queue_depth) {
#if ADAPTDB_IO_URING_ENABLED
  auto ring = std::make_unique<IoUringAsyncIo>(queue_depth);
  if (!ring->ok()) return nullptr;
  return ring;
#else
  (void)queue_depth;
  return nullptr;
#endif
}

bool IoUringAvailable() {
#if ADAPTDB_IO_URING_ENABLED
  auto probe = std::make_unique<IoUringAsyncIo>(4);
  return probe->ok();
#else
  return false;
#endif
}

std::unique_ptr<AsyncIo> MakeAsyncIo(int32_t threads,
                                     const std::string& hint) {
  if (hint == "uring") {
    auto ring = MakeIoUringAsyncIo(threads > 0 ? threads * 8 : 32);
    if (ring != nullptr) return ring;
  }
  return MakeThreadPoolAsyncIo(threads);
}

}  // namespace adaptdb::io
