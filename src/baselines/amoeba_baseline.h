/// \file amoeba_baseline.h
/// \brief The Amoeba baseline (paper §7.2, [21]): predicate-driven adaptive
/// repartitioning only — no join attributes in the trees, no hyper-join —
/// so all joins are shuffle joins.

#ifndef ADAPTDB_BASELINES_AMOEBA_BASELINE_H_
#define ADAPTDB_BASELINES_AMOEBA_BASELINE_H_

#include "core/database.h"

namespace adaptdb {

/// Derives the Amoeba configuration: selection adaptation on, smooth
/// repartitioning off, shuffle joins forced.
DatabaseOptions AmoebaOptions(DatabaseOptions base);

}  // namespace adaptdb

#endif  // ADAPTDB_BASELINES_AMOEBA_BASELINE_H_
