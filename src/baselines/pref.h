/// \file pref.h
/// \brief Predicate-based reference partitioning (PREF, Zamanian et al.,
/// SIGMOD 2015) — the static comparator of the paper's Fig. 12.
///
/// PREF picks one partitioning for the fact table and co-partitions every
/// other table along reference (join) edges, *replicating* a tuple into
/// every partition that holds a referencing row. All joins then run
/// partition-locally with no shuffle — but reading a replicated table costs
/// its replication factor in extra block I/O, and hash partitions admit no
/// range pruning, so selective predicates do not reduce I/O. Those two
/// effects are exactly why AdaptDB beats PREF on the selective TPC-H
/// templates in Fig. 12 while PREF beats plain shuffle joins on the
/// unselective ones.
///
/// Layout construction mirrors the reference-edge scheme:
///   * AddFact: hash-partitions the fact table on one attribute.
///   * AddReplicated: places each tuple of a referenced table into every
///     partition where some already-placed row of the parent table carries
///     its key (orders lands in exactly one partition — co-partitioning —
///     while part/customer/supplier fan out to many).

#ifndef ADAPTDB_BASELINES_PREF_H_
#define ADAPTDB_BASELINES_PREF_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adapt/query.h"
#include "planner/join_planner.h"
#include "storage/block_store.h"
#include "storage/cluster.h"

namespace adaptdb {

/// \brief PREF configuration.
struct PrefConfig {
  /// Number of partitions (the paper found 200 optimal on 10 nodes at
  /// SF 1000; scale with the dataset).
  int32_t num_partitions = 16;
  /// Records per storage block, so I/O counts are comparable with an
  /// AdaptDB instance over the same data.
  int64_t records_per_block = 1000;
  ClusterConfig cluster;
};

/// \brief A statically PREF-partitioned database over in-memory tables.
class PrefLayout {
 public:
  explicit PrefLayout(PrefConfig config);

  /// Hash-partitions the fact table on `partition_attr`.
  Status AddFact(const std::string& name, const Schema& schema,
                 const std::vector<Record>& records, AttrId partition_attr);

  /// Adds `name`, replicating each record into every partition where the
  /// already-added `parent` table has a row with parent_attr == child_attr.
  /// Records referenced by no parent row are dropped (they can never join).
  Status AddReplicated(const std::string& name, const Schema& schema,
                       const std::vector<Record>& records,
                       const std::string& parent, AttrId parent_attr,
                       AttrId child_attr);

  /// Executes a query. All join edges run partition-locally (that is the
  /// point of PREF); every block of each referenced table is read, since
  /// hash partitions carry no range metadata usable for pruning.
  Result<QueryRunResult> RunQuery(const Query& q);

  /// Total blocks stored for `name` (replication shows up here).
  int64_t TotalBlocks(const std::string& name) const;

  /// Stored records of `name` including replicas, divided by the input
  /// records: the replication factor.
  double ReplicationFactor(const std::string& name) const;

  ClusterSim* cluster() { return &cluster_; }

 private:
  struct PrefTable {
    Schema schema;
    std::unique_ptr<BlockStore> store;
    /// partition -> blocks holding it.
    std::vector<std::vector<BlockId>> partitions;
    int64_t input_records = 0;
    int64_t stored_records = 0;
  };

  /// Appends `rec` to `partition`'s open block. `current` caches one
  /// mutable pin per partition for the duration of a bulk load, so a
  /// buffered store is not re-pinned (miss + write-back on small pools)
  /// per record.
  Status AppendToPartition(PrefTable* table, int32_t partition,
                           const Record& rec,
                           std::vector<MutableBlockRef>* current);

  PrefConfig config_;
  ClusterSim cluster_;
  std::map<std::string, PrefTable> tables_;
};

}  // namespace adaptdb

#endif  // ADAPTDB_BASELINES_PREF_H_
