#include "baselines/amoeba_baseline.h"

namespace adaptdb {

DatabaseOptions AmoebaOptions(DatabaseOptions base) {
  base.adapt_enabled = true;
  base.adapt.enable_smooth = false;
  base.adapt.enable_amoeba = true;
  base.planner.strategy = PlannerConfig::Strategy::kForceShuffle;
  return base;
}

}  // namespace adaptdb
