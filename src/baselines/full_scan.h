/// \file full_scan.h
/// \brief The "Full Scan" baseline (paper §7.3): no partitioning trees are
/// consulted, every block is read, and all joins are shuffle joins.

#ifndef ADAPTDB_BASELINES_FULL_SCAN_H_
#define ADAPTDB_BASELINES_FULL_SCAN_H_

#include "core/database.h"

namespace adaptdb {

/// Derives the Full Scan configuration from a base configuration:
/// adaptation off, partitioning ignored, shuffle joins forced.
DatabaseOptions FullScanOptions(DatabaseOptions base);

}  // namespace adaptdb

#endif  // ADAPTDB_BASELINES_FULL_SCAN_H_
