#include "baselines/full_repartitioning.h"

namespace adaptdb {

DatabaseOptions FullRepartitioningOptions(DatabaseOptions base) {
  base.adapt_enabled = true;
  base.adapt.full_repartitioning = true;
  base.adapt.enable_amoeba = false;
  return base;
}

}  // namespace adaptdb
