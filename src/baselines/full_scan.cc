#include "baselines/full_scan.h"

namespace adaptdb {

DatabaseOptions FullScanOptions(DatabaseOptions base) {
  base.adapt_enabled = false;
  base.planner.ignore_partitioning = true;
  base.planner.strategy = PlannerConfig::Strategy::kForceShuffle;
  return base;
}

}  // namespace adaptdb
