/// \file full_repartitioning.h
/// \brief The "Repartitioning" baseline (paper §7.3): smooth repartitioning
/// disabled; when at least half the query window joins on an attribute that
/// has no tree, the entire table is repartitioned at once (one huge spike),
/// after which hyper-join is used whenever beneficial.

#ifndef ADAPTDB_BASELINES_FULL_REPARTITIONING_H_
#define ADAPTDB_BASELINES_FULL_REPARTITIONING_H_

#include "core/database.h"

namespace adaptdb {

/// Derives the Repartitioning-baseline configuration.
DatabaseOptions FullRepartitioningOptions(DatabaseOptions base);

}  // namespace adaptdb

#endif  // ADAPTDB_BASELINES_FULL_REPARTITIONING_H_
