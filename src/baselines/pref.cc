#include "baselines/pref.h"

#include <set>
#include <unordered_map>

#include "exec/hash_join.h"
#include "io/disk_block_store.h"

namespace adaptdb {

PrefLayout::PrefLayout(PrefConfig config)
    : config_(config), cluster_(config.cluster) {}

Status PrefLayout::AppendToPartition(PrefTable* table, int32_t partition,
                                     const Record& rec,
                                     std::vector<MutableBlockRef>* current) {
  auto& blocks = table->partitions[static_cast<size_t>(partition)];
  MutableBlockRef& cur = (*current)[static_cast<size_t>(partition)];
  if (cur == nullptr && !blocks.empty()) {
    auto blk = table->store->GetMutable(blocks.back());
    if (!blk.ok()) return blk.status();
    cur = blk.ValueOrDie();
  }
  if (cur != nullptr && static_cast<int64_t>(cur->num_records()) >=
                            config_.records_per_block) {
    cur = nullptr;  // Full: roll over to a fresh block.
  }
  if (cur == nullptr) {
    const BlockId id = table->store->CreateBlock();
    cluster_.PlaceBlock(id);
    blocks.push_back(id);
    auto blk = table->store->GetMutable(id);
    if (!blk.ok()) return blk.status();
    cur = blk.ValueOrDie();
  }
  cur->Add(rec);
  ++table->stored_records;
  return Status::OK();
}

Status PrefLayout::AddFact(const std::string& name, const Schema& schema,
                           const std::vector<Record>& records,
                           AttrId partition_attr) {
  if (tables_.count(name) > 0) return Status::AlreadyExists(name);
  PrefTable table;
  table.schema = schema;
  auto store =
      MakeTableStore(schema.num_attrs(), cluster_.config().storage, name);
  if (!store.ok()) return store.status();
  table.store = std::move(store).ValueOrDie();
  table.partitions.assign(static_cast<size_t>(config_.num_partitions), {});
  table.input_records = static_cast<int64_t>(records.size());
  std::vector<MutableBlockRef> current(
      static_cast<size_t>(config_.num_partitions));
  for (const Record& rec : records) {
    const int32_t p = static_cast<int32_t>(
        HashValue(rec[static_cast<size_t>(partition_attr)]) %
        static_cast<size_t>(config_.num_partitions));
    ADB_RETURN_NOT_OK(AppendToPartition(&table, p, rec, &current));
  }
  tables_.emplace(name, std::move(table));
  return Status::OK();
}

Status PrefLayout::AddReplicated(const std::string& name, const Schema& schema,
                                 const std::vector<Record>& records,
                                 const std::string& parent, AttrId parent_attr,
                                 AttrId child_attr) {
  if (tables_.count(name) > 0) return Status::AlreadyExists(name);
  auto parent_it = tables_.find(parent);
  if (parent_it == tables_.end()) {
    return Status::NotFound("parent table '" + parent + "'");
  }
  // Which partitions reference each parent key value?
  std::unordered_map<Value, std::set<int32_t>, ValueHash> key_partitions;
  const PrefTable& pt = parent_it->second;
  for (int32_t p = 0; p < config_.num_partitions; ++p) {
    for (BlockId b : pt.partitions[static_cast<size_t>(p)]) {
      auto blk = pt.store->Get(b);
      if (!blk.ok()) return blk.status();
      // Only the parent-key column is gathered.
      const Column& keys = blk.ValueOrDie()->column(parent_attr);
      for (size_t row = 0; row < keys.size(); ++row) {
        key_partitions[keys.ValueAt(row)].insert(p);
      }
    }
  }
  PrefTable table;
  table.schema = schema;
  auto store =
      MakeTableStore(schema.num_attrs(), cluster_.config().storage, name);
  if (!store.ok()) return store.status();
  table.store = std::move(store).ValueOrDie();
  table.partitions.assign(static_cast<size_t>(config_.num_partitions), {});
  table.input_records = static_cast<int64_t>(records.size());
  std::vector<MutableBlockRef> current(
      static_cast<size_t>(config_.num_partitions));
  for (const Record& rec : records) {
    auto it = key_partitions.find(rec[static_cast<size_t>(child_attr)]);
    if (it == key_partitions.end()) continue;  // Never joins: droppable.
    for (int32_t p : it->second) {
      ADB_RETURN_NOT_OK(AppendToPartition(&table, p, rec, &current));
    }
  }
  tables_.emplace(name, std::move(table));
  return Status::OK();
}

Result<QueryRunResult> PrefLayout::RunQuery(const Query& q) {
  QueryRunResult result;
  for (const TableRef& ref : q.tables) {
    if (tables_.count(ref.table) == 0) return Status::NotFound(ref.table);
  }

  // Reads every block of `name`, accounting I/O; returns per-partition
  // block lists for the join phase.
  auto read_all = [&](const std::string& name, int64_t* blocks_read) {
    const PrefTable& t = tables_.at(name);
    for (const auto& part : t.partitions) {
      for (BlockId b : part) {
        auto node = cluster_.Locate(b);
        cluster_.ReadBlock(b, node.ok() ? node.ValueOrDie() : 0, &result.io);
        ++*blocks_read;
      }
    }
  };

  if (q.joins.empty()) {
    for (const TableRef& ref : q.tables) {
      int64_t blocks_read = 0;
      read_all(ref.table, &blocks_read);
      result.blocks_scanned += blocks_read;
      const PrefTable& t = tables_.at(ref.table);
      for (const auto& part : t.partitions) {
        for (BlockId b : part) {
          auto blk = t.store->Get(b);
          if (!blk.ok()) return blk.status();
          result.output_rows +=
              static_cast<int64_t>(blk.ValueOrDie()->CountMatches(ref.preds));
        }
      }
    }
    result.seconds = cluster_.SimulatedSeconds(result.io);
    return result;
  }

  // Partition-local pipeline: per partition, fold in one join edge at a
  // time; the running intermediate never leaves its partition.
  std::map<std::string, int32_t> offsets;
  std::vector<std::vector<Record>> inter(
      static_cast<size_t>(config_.num_partitions));
  JoinCounts counts;

  for (size_t e = 0; e < q.joins.size(); ++e) {
    const JoinSpec& spec = q.joins[e];
    const bool first = (e == 0);
    std::string probe_table = spec.left_table, build_table = spec.right_table;
    AttrId probe_attr = spec.left_attr, build_attr = spec.right_attr;
    if (!first && offsets.count(probe_table) == 0) {
      std::swap(probe_table, build_table);
      std::swap(probe_attr, build_attr);
    }
    if (!first && (offsets.count(probe_table) == 0 ||
                   offsets.count(build_table) > 0)) {
      return Status::InvalidArgument("unsupported PREF join shape");
    }
    const PrefTable& build = tables_.at(build_table);
    const PredicateSet& build_preds = q.PredsFor(build_table);
    EdgeReport edge;
    edge.left_table = probe_table;
    edge.right_table = build_table;
    const bool last = (e + 1 == q.joins.size());

    counts = JoinCounts{};
    for (int32_t p = 0; p < config_.num_partitions; ++p) {
      HashIndex index(build_attr);
      std::vector<BlockRef> build_pins;  // Index references the blocks' rows.
      for (BlockId b : build.partitions[static_cast<size_t>(p)]) {
        auto blk = build.store->Get(b);
        if (!blk.ok()) return blk.status();
        build_pins.push_back(blk.ValueOrDie());
        auto node = cluster_.Locate(b);
        cluster_.ReadBlock(b, node.ok() ? node.ValueOrDie() : 0, &result.io);
        ++edge.s_blocks_read;
        index.AddBlock(*build_pins.back(), build_preds);
      }
      std::vector<Record> next;
      if (first) {
        const PrefTable& probe = tables_.at(probe_table);
        const PredicateSet& probe_preds = q.PredsFor(probe_table);
        for (BlockId b : probe.partitions[static_cast<size_t>(p)]) {
          auto blk = probe.store->Get(b);
          if (!blk.ok()) return blk.status();
          auto node = cluster_.Locate(b);
          cluster_.ReadBlock(b, node.ok() ? node.ValueOrDie() : 0,
                             &result.io);
          ++edge.r_blocks_read;
          index.Probe(*blk.ValueOrDie(), probe_attr, probe_preds, &counts,
                      last ? nullptr : &next);
        }
      } else {
        const int32_t key_idx = offsets[probe_table] + probe_attr;
        for (const Record& rec : inter[static_cast<size_t>(p)]) {
          index.ProbeRecord(rec, key_idx, &counts, last ? nullptr : &next);
        }
      }
      inter[static_cast<size_t>(p)] = std::move(next);
    }

    // Record-offset bookkeeping (materialized rows are build ++ probe).
    const int32_t build_width = build.schema.num_attrs();
    if (first) {
      offsets[probe_table] = build_width;
      offsets[build_table] = 0;
    } else {
      for (auto& [name, off] : offsets) off += build_width;
      offsets[build_table] = 0;
    }
    result.edges.push_back(edge);
  }

  result.output_rows = counts.output_rows;
  result.checksum = counts.checksum;
  result.seconds = cluster_.SimulatedSeconds(result.io);
  return result;
}

int64_t PrefLayout::TotalBlocks(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return 0;
  return static_cast<int64_t>(it->second.store->num_blocks());
}

double PrefLayout::ReplicationFactor(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end() || it->second.input_records == 0) return 0;
  return static_cast<double>(it->second.stored_records) /
         static_cast<double>(it->second.input_records);
}

}  // namespace adaptdb
