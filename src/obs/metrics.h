/// \file metrics.h
/// \brief Engine-wide sharded counter registry + optional sampling thread.
///
/// Design (after ScaleStore's per-worker counter pages): writers never
/// share a cache line. Each thread that counts anything leases a `Shard` —
/// a cache-line-padded array of relaxed atomics — from the process-global
/// registry the first time it calls `Count()`. Increments are a single
/// thread-local load plus a relaxed `fetch_add` on memory no other writer
/// touches; readers aggregate across all shards on demand. When a thread
/// exits, its lease returns the shard to a freelist so counts are never
/// lost and shard memory is bounded by peak thread concurrency, not by
/// total threads ever created.
///
/// The registry is process-global and monotone: counters only ever
/// increase, and they accumulate across every Database instance in the
/// process. Consumers that want per-query or per-phase numbers must take
/// *deltas* of `Aggregate()` snapshots (this is what `QueryProfile` does).
///
/// Compile-time removal: configure with -DADAPTDB_DISABLE_METRICS=ON and
/// `Count()` compiles to nothing — no TLS access, no atomics — so the
/// instrumented call sites cost zero in builds that want it. In normal
/// builds the enabled path is branch-free.
///
/// ## Counter semantics
///
/// Parallel runtime (task_pool.cc):
///  - kTasksExecuted     tasks run to completion by any worker or helper.
///  - kTasksStolen       subset of kTasksExecuted taken from another
///                       worker's deque (FIFO steal side).
///  - kTaskBusyNanos     wall nanoseconds spent inside task bodies.
///  - kWorkerIdleNanos   wall nanoseconds workers spent blocked on the
///                       work-available condition variable.
///
/// Buffer pool / disk I/O (io/):
///  - kBufferHits        frame lookups served from memory.
///  - kBufferMisses      lookups that had to read a segment from disk.
///  - kBufferEvictions   clean/flushed frames dropped to make room.
///  - kBufferWritebacks  dirty frames flushed to disk.
///  - kBufferPrefetched  frames loaded ahead of use by Prefetch().
///
/// Scheduler (core/query_scheduler.cc):
///  - kQueriesAdmitted      queries that passed FIFO admission.
///  - kAdmissionWaitNanos   wall nanoseconds queries waited for admission
///                          (queue order and/or the in-flight limit).
///
/// Adaptation (core/database.cc):
///  - kAdaptSteps         repartitioning passes that moved ≥1 record.
///  - kAdaptRecordsMoved  records rewritten during repartitioning.
///  - kAdaptTreesCreated  partition trees (re)built by the amoeba split.
///
/// Pruning (exec/scan.cc, exec/hyper_join.cc):
///  - kBlocksSkippedMeta  blocks skipped wholesale because min/max block
///                        metadata proved no row could match.
///
/// Out-of-core execution (io/async_io.cc, exec/spill.cc):
///  - kAsyncReads          read ops submitted to any AsyncIo backend.
///  - kAsyncWrites         write ops submitted to any AsyncIo backend.
///  - kSpilledPartitions   join partitions whose rows went through a spill
///                         file instead of staying pinned in memory.
///  - kSpillBytesWritten   encoded bytes appended to spill files.
///  - kSpillBytesRead      encoded bytes read back from spill files.
///
/// Vectorized execution (storage/block.cc):
///  - kKernelFilters    per-predicate evaluation passes served by the
///                      dispatch-once kernels (exec/kernels.h).
///  - kFilterFallbacks  passes that took the row-at-a-time MatchesAt
///                      fallback (mixed columns, cross-type predicates,
///                      or ADAPTDB_NO_KERNELS=1).

#ifndef ADAPTDB_OBS_METRICS_H_
#define ADAPTDB_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

namespace adaptdb::obs {

enum class Counter : int32_t {
  kTasksExecuted = 0,
  kTasksStolen,
  kTaskBusyNanos,
  kWorkerIdleNanos,
  kBufferHits,
  kBufferMisses,
  kBufferEvictions,
  kBufferWritebacks,
  kBufferPrefetched,
  kQueriesAdmitted,
  kAdmissionWaitNanos,
  kAdaptSteps,
  kAdaptRecordsMoved,
  kAdaptTreesCreated,
  kBlocksSkippedMeta,
  kAsyncReads,
  kAsyncWrites,
  kSpilledPartitions,
  kSpillBytesWritten,
  kSpillBytesRead,
  kKernelFilters,
  kFilterFallbacks,
  kCount,  // sentinel
};

inline constexpr int32_t kNumCounters = static_cast<int32_t>(Counter::kCount);

/// Stable snake_case name, used for JSON keys and text dumps.
std::string_view CounterName(Counter c);

/// One aggregated reading of every counter.
struct MetricsSnapshot {
  std::array<int64_t, kNumCounters> values{};

  int64_t operator[](Counter c) const {
    return values[static_cast<size_t>(c)];
  }

  /// this - other, element-wise. Meaningful because counters are monotone.
  MetricsSnapshot Delta(const MetricsSnapshot& other) const {
    MetricsSnapshot d;
    for (int32_t i = 0; i < kNumCounters; ++i) {
      d.values[static_cast<size_t>(i)] =
          values[static_cast<size_t>(i)] - other.values[static_cast<size_t>(i)];
    }
    return d;
  }
};

#ifndef ADAPTDB_DISABLE_METRICS

/// \brief Process-global registry of per-thread counter shards.
///
/// Not tied to any Database: the engine has exactly one of these per
/// process (see Instance()), intentionally leaked so instrumented code in
/// static destructors can still count.
class MetricsRegistry {
 public:
  /// Cache-line-padded block of counters owned by one thread at a time.
  struct alignas(64) Shard {
    std::array<std::atomic<int64_t>, kNumCounters> slots{};
    // Pad to a cache-line multiple so adjacent shards in the deque never
    // share a line even if the allocator packs them.
    char pad[64 - (sizeof(slots) % 64 == 0 ? 64 : sizeof(slots) % 64)];
  };

  static MetricsRegistry& Instance();

  /// Branch-free fast path: one TLS load + one relaxed fetch_add.
  static void Count(Counter c, int64_t delta = 1) {
    LocalShard()->slots[static_cast<size_t>(c)].fetch_add(
        delta, std::memory_order_relaxed);
  }

  /// Sum across every shard ever leased (freelisted shards keep counts).
  MetricsSnapshot Aggregate() const;

  /// Per-shard readout, for per-worker breakdowns. Index order is shard
  /// creation order and stable for the life of the process.
  std::vector<MetricsSnapshot> PerShard() const;

  /// Shards ever created (== peak concurrent counting threads).
  int64_t num_shards() const;

  /// Testing only: the shard the calling thread would write to.
  Shard* TestingLocalShard() { return LocalShard(); }

 private:
  MetricsRegistry() = default;

  static Shard* LocalShard();

  Shard* AcquireShard();
  void ReleaseShard(Shard* shard);

  /// RAII holder making thread exit return the shard to the freelist.
  struct Lease {
    Shard* shard = nullptr;
    ~Lease();
  };

  mutable std::mutex mu_;
  // deque: stable addresses under growth (threads hold raw Shard*).
  std::deque<Shard> shards_;
  std::vector<Shard*> free_;
};

#else  // ADAPTDB_DISABLE_METRICS

/// No-op registry: Count() vanishes; readers see zeros.
class MetricsRegistry {
 public:
  struct Shard {};

  static MetricsRegistry& Instance() {
    static MetricsRegistry r;
    return r;
  }
  static void Count(Counter, int64_t = 1) {}
  MetricsSnapshot Aggregate() const { return {}; }
  std::vector<MetricsSnapshot> PerShard() const { return {}; }
  int64_t num_shards() const { return 0; }
};

#endif  // ADAPTDB_DISABLE_METRICS

/// Shorthand used at instrumentation sites.
inline void Count(Counter c, int64_t delta = 1) {
  MetricsRegistry::Count(c, delta);
}

#ifndef ADAPTDB_DISABLE_METRICS
inline constexpr bool kMetricsEnabled = true;
#else
inline constexpr bool kMetricsEnabled = false;
#endif

/// Timing helper for duration counters: at construction remembers the
/// clock, at destruction adds elapsed nanoseconds to `c`. Compiles to an
/// empty struct when metrics are disabled — no clock reads remain.
class ScopedNanos {
 public:
  explicit ScopedNanos(Counter c) : c_(c) {
    if constexpr (kMetricsEnabled) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedNanos() {
    if constexpr (kMetricsEnabled) {
      Count(c_, std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start_)
                    .count());
    }
  }
  ScopedNanos(const ScopedNanos&) = delete;
  ScopedNanos& operator=(const ScopedNanos&) = delete;

 private:
  [[maybe_unused]] Counter c_;
  std::chrono::steady_clock::time_point start_;
};

/// \brief Background thread snapshotting the registry into a ring.
///
/// Start() spawns a thread that records `Aggregate()` every `interval`
/// until Stop() (or destruction). The ring keeps the most recent
/// `capacity` samples; RatePerSecond() differentiates the two newest.
class MetricsSampler {
 public:
  struct Sample {
    double elapsed_seconds = 0;  ///< Since Start().
    MetricsSnapshot snapshot;
  };

  explicit MetricsSampler(int64_t interval_millis = 100,
                          size_t capacity = 600);
  ~MetricsSampler();

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Start/Stop may be called from any thread; Stop is idempotent and
  /// safe against a concurrent Stop (it claims the sampling thread under
  /// the lock before joining). Start-while-Stop-is-joining is the one
  /// unsupported interleaving: serialize restart cycles in the owner.
  void Start();
  void Stop();
  bool running() const {
    std::lock_guard<std::mutex> lock(mu_);
    return running_;
  }

  /// Oldest→newest copy of the ring.
  std::vector<Sample> Samples() const;

  /// (newest - previous) / dt for one counter; 0 with <2 samples.
  double RatePerSecond(Counter c) const;

 private:
  void Loop();

  const int64_t interval_millis_;
  const size_t capacity_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Sample> ring_;
  std::thread thread_;
  bool running_ = false;
  bool stop_requested_ = false;
};

}  // namespace adaptdb::obs

#endif  // ADAPTDB_OBS_METRICS_H_
