#include "obs/introspection_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace adaptdb::obs {

namespace {

/// Blocking-write the whole buffer (short writes restart).
void WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // Peer went away; nothing useful to do.
    }
    off += static_cast<size_t>(n);
  }
}

std::string StatusLine(int32_t status) {
  switch (status) {
    case 200:
      return "HTTP/1.1 200 OK\r\n";
    case 400:
      return "HTTP/1.1 400 Bad Request\r\n";
    case 404:
      return "HTTP/1.1 404 Not Found\r\n";
    case 405:
      return "HTTP/1.1 405 Method Not Allowed\r\n";
    default:
      return "HTTP/1.1 500 Internal Server Error\r\n";
  }
}

}  // namespace

IntrospectionServer::~IntrospectionServer() { Stop(); }

void IntrospectionServer::Handle(std::string path, Handler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

Status IntrospectionServer::Start(int32_t port) {
  if (listen_fd_ >= 0) {
    return Status::InvalidArgument("introspection server already started");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // Diagnostics: local only.
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("bind(127.0.0.1:" + std::to_string(port) +
                            "): " + err);
  }
  if (::listen(fd, /*backlog=*/16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("listen(): " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("getsockname(): " + err);
  }
  listen_fd_ = fd;
  port_ = static_cast<int32_t>(ntohs(bound.sin_port));
  stop_.store(false, std::memory_order_relaxed);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void IntrospectionServer::Stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true, std::memory_order_relaxed);
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = -1;
}

void IntrospectionServer::AcceptLoop() {
  for (;;) {
    // Poll with a timeout instead of blocking in accept(): Stop() only has
    // to flip the flag and join — no self-pipe or socket shutdown races.
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (stop_.load(std::memory_order_relaxed)) return;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    ServeConnection(fd);
    ::close(fd);
  }
}

void IntrospectionServer::ServeConnection(int fd) {
  // Read until the header terminator (requests are header-only GETs), with
  // a poll timeout so a stalled client cannot wedge the acceptor.
  std::string request;
  char buf[2048];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < 16 * 1024) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, /*timeout_ms=*/1000) <= 0) return;
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    request.append(buf, static_cast<size_t>(n));
  }

  Response resp;
  const size_t line_end = request.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  // Request line: METHOD SP TARGET SP VERSION.
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.find(' ', sp1 == std::string::npos ? 0 : sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    resp = {400, "text/plain; charset=utf-8", "malformed request line\n"};
  } else if (line.substr(0, sp1) != "GET") {
    resp = {405, "text/plain; charset=utf-8", "only GET is supported\n"};
  } else {
    const std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const size_t qmark = target.find('?');
    const std::string path =
        qmark == std::string::npos ? target : target.substr(0, qmark);
    const std::string query =
        qmark == std::string::npos ? "" : target.substr(qmark + 1);
    auto it = handlers_.find(path);
    if (it == handlers_.end()) {
      std::string known = "not found; endpoints:";
      for (const auto& [p, _] : handlers_) known += " " + p;
      resp = {404, "text/plain; charset=utf-8", known + "\n"};
    } else {
      resp = it->second(query);
    }
  }

  std::string out = StatusLine(resp.status);
  out += "Content-Type: " + resp.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += resp.body;
  WriteAll(fd, out);
  requests_served_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace adaptdb::obs
