/// \file json.h
/// \brief A minimal streaming JSON writer (no external dependency).
///
/// Every machine-readable surface of the engine — `QueryProfile::ToJson`,
/// `DatabaseStats::ToJson`, the bench `BenchReport` files — serializes
/// through this one writer, so escaping and number formatting cannot drift
/// between them. The writer is strictly streaming: values append to an
/// internal string, commas and nesting are tracked by a small stack, and
/// misuse (closing an object that is not open) trips an assert in debug
/// builds while degrading to well-formed-but-wrong output in release.
///
/// Formatting rules: strings are escaped per RFC 8259 (control characters
/// as \u00XX); doubles print with %.17g (round-trip exact) unless they are
/// integral and small, which print without an exponent; NaN/Inf — which
/// JSON cannot represent — serialize as null.

#ifndef ADAPTDB_OBS_JSON_H_
#define ADAPTDB_OBS_JSON_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace adaptdb::obs {

/// \brief Streaming JSON serializer. See file comment.
class JsonWriter {
 public:
  JsonWriter() { stack_.push_back(Frame::kTop); }

  /// The serialized document so far. Valid JSON once every container
  /// opened has been closed.
  const std::string& str() const { return out_; }

  JsonWriter& BeginObject() {
    Prefix();
    out_ += '{';
    stack_.push_back(Frame::kObjectFirst);
    return *this;
  }

  JsonWriter& EndObject() {
    assert(Current() == Frame::kObjectFirst || Current() == Frame::kObject);
    stack_.pop_back();
    out_ += '}';
    return *this;
  }

  JsonWriter& BeginArray() {
    Prefix();
    out_ += '[';
    stack_.push_back(Frame::kArrayFirst);
    return *this;
  }

  JsonWriter& EndArray() {
    assert(Current() == Frame::kArrayFirst || Current() == Frame::kArray);
    stack_.pop_back();
    out_ += ']';
    return *this;
  }

  /// Emits an object key; the next value call supplies its value.
  JsonWriter& Key(std::string_view key) {
    assert(Current() == Frame::kObjectFirst || Current() == Frame::kObject);
    if (Current() == Frame::kObject) out_ += ',';
    stack_.back() = Frame::kObject;
    AppendEscaped(key);
    out_ += ':';
    pending_key_ = true;
    return *this;
  }

  JsonWriter& String(std::string_view v) {
    Prefix();
    AppendEscaped(v);
    return *this;
  }

  JsonWriter& Int(int64_t v) {
    Prefix();
    out_ += std::to_string(v);
    return *this;
  }

  JsonWriter& Uint(uint64_t v) {
    Prefix();
    out_ += std::to_string(v);
    return *this;
  }

  JsonWriter& Bool(bool v) {
    Prefix();
    out_ += v ? "true" : "false";
    return *this;
  }

  JsonWriter& Null() {
    Prefix();
    out_ += "null";
    return *this;
  }

  JsonWriter& Double(double v) {
    Prefix();
    if (!std::isfinite(v)) {
      out_ += "null";  // JSON has no NaN/Inf.
      return *this;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // Trim to the shortest representation that still round-trips.
    for (int prec = 1; prec < 17; ++prec) {
      char shorter[32];
      std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
      double back = 0;
      std::sscanf(shorter, "%lf", &back);
      if (back == v) {
        std::snprintf(buf, sizeof(buf), "%s", shorter);
        break;
      }
    }
    out_ += buf;
    return *this;
  }

  /// Shorthand: Key(k) + the matching value.
  JsonWriter& Field(std::string_view k, std::string_view v) {
    return Key(k).String(v);
  }
  JsonWriter& Field(std::string_view k, const char* v) {
    return Key(k).String(v);
  }
  JsonWriter& Field(std::string_view k, int64_t v) { return Key(k).Int(v); }
  JsonWriter& Field(std::string_view k, uint64_t v) { return Key(k).Uint(v); }
  JsonWriter& Field(std::string_view k, int32_t v) { return Key(k).Int(v); }
  JsonWriter& Field(std::string_view k, double v) { return Key(k).Double(v); }
  JsonWriter& Field(std::string_view k, bool v) { return Key(k).Bool(v); }

 private:
  enum class Frame : uint8_t {
    kTop,
    kObjectFirst,  ///< Object open, no member emitted yet.
    kObject,
    kArrayFirst,  ///< Array open, no element emitted yet.
    kArray,
  };

  Frame Current() const { return stack_.back(); }

  /// Emits the separator a value needs in the current context.
  void Prefix() {
    if (pending_key_) {
      pending_key_ = false;  // Key() already wrote "key":
      return;
    }
    if (Current() == Frame::kArray) out_ += ',';
    if (Current() == Frame::kArrayFirst) stack_.back() = Frame::kArray;
    // A bare value inside an object without Key() is a misuse; tolerated in
    // release (the output is still parseable, keys just go missing).
    assert(Current() != Frame::kObject && Current() != Frame::kObjectFirst);
  }

  void AppendEscaped(std::string_view s) {
    out_ += '"';
    for (const char raw : s) {
      const unsigned char c = static_cast<unsigned char>(raw);
      switch (c) {
        case '"':
          out_ += "\\\"";
          break;
        case '\\':
          out_ += "\\\\";
          break;
        case '\b':
          out_ += "\\b";
          break;
        case '\f':
          out_ += "\\f";
          break;
        case '\n':
          out_ += "\\n";
          break;
        case '\r':
          out_ += "\\r";
          break;
        case '\t':
          out_ += "\\t";
          break;
        default:
          if (c < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += raw;  // UTF-8 passes through byte-wise.
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<Frame> stack_;
  bool pending_key_ = false;
};

}  // namespace adaptdb::obs

#endif  // ADAPTDB_OBS_JSON_H_
