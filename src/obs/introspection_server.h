/// \file introspection_server.h
/// \brief Opt-in embedded HTTP server for live engine introspection.
///
/// A minimal, dependency-free HTTP/1.1 endpoint (plain POSIX sockets, one
/// acceptor thread, one request per connection) that lets an operator —
/// or a curl in CI — look inside a serving process:
///
///   GET /metrics   Prometheus text exposition (counters + gauges)
///   GET /stats     DatabaseStats::ToJson()
///   GET /profile   last collected query profile as JSON
///   GET /trace     trace rings as Chrome trace JSON (?drain=1 clears)
///
/// The server itself is generic: it owns the socket plumbing and a
/// path→handler table; `Database` registers the four handlers above when
/// `DatabaseOptions::http_port` (or the `ADAPTDB_HTTP_PORT` environment
/// variable) enables it. Binding is loopback-only (127.0.0.1) — this is a
/// diagnostics port, not a public API — and port 0 asks the kernel for an
/// ephemeral port, reported by `port()` (how tests avoid collisions).
///
/// Scope limits, deliberately: GET only, no keep-alive, no TLS, requests
/// served sequentially on the acceptor thread. Handlers run on that
/// thread, so they must be safe against concurrent engine activity —
/// everything Database registers calls thread-safe surfaces (Stats(),
/// ProfileLastQuery(), Tracer::ToChromeJson()).

#ifndef ADAPTDB_OBS_INTROSPECTION_SERVER_H_
#define ADAPTDB_OBS_INTROSPECTION_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "common/result.h"

namespace adaptdb::obs {

/// \brief One-thread HTTP server with a fixed handler table.
class IntrospectionServer {
 public:
  /// What a handler returns; serialized as an HTTP/1.1 response with
  /// Content-Length and Connection: close.
  struct Response {
    int32_t status = 200;
    std::string content_type = "application/json";
    std::string body;
  };

  /// Called with the raw query string (text after '?', possibly empty).
  using Handler = std::function<Response(const std::string& query)>;

  IntrospectionServer() = default;
  ~IntrospectionServer();

  IntrospectionServer(const IntrospectionServer&) = delete;
  IntrospectionServer& operator=(const IntrospectionServer&) = delete;

  /// Registers the handler for an exact path (e.g. "/metrics"). Call
  /// before Start(); not synchronized with the acceptor thread.
  void Handle(std::string path, Handler handler);

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and spawns the acceptor
  /// thread. Fails with InvalidArgument if already started, Internal on
  /// socket errors (port in use, ...).
  Status Start(int32_t port);

  /// Stops the acceptor and joins it. Idempotent; also run by the dtor.
  void Stop();

  /// The bound port, or -1 before Start()/after a failed Start().
  int32_t port() const { return port_; }

  bool running() const { return listen_fd_ >= 0; }

  /// Requests served since Start() (diagnostics/testing).
  int64_t requests_served() const { return requests_served_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  std::map<std::string, Handler> handlers_;
  int listen_fd_ = -1;
  int32_t port_ = -1;
  std::thread acceptor_;
  std::atomic<bool> stop_{false};
  std::atomic<int64_t> requests_served_{0};
};

}  // namespace adaptdb::obs

#endif  // ADAPTDB_OBS_INTROSPECTION_SERVER_H_
