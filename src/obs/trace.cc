#include "obs/trace.h"

#include <algorithm>

#include "obs/json.h"

#ifndef ADAPTDB_DISABLE_TRACING

namespace adaptdb::obs {

Tracer& Tracer::Instance() {
  // Intentionally leaked (like MetricsRegistry): instrumented code may run
  // during static destruction, after a normal singleton would be gone.
  static Tracer* t = [] {
    auto* tracer = new Tracer();
    tracer->epoch_ = std::chrono::steady_clock::now();
    return tracer;
  }();
  return *t;
}

int64_t Tracer::NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - Instance().epoch_)
      .count();
}

Tracer::Buffer* Tracer::LocalBuffer() {
  thread_local Lease lease{Instance().AcquireBuffer()};
  return lease.buffer;
}

Tracer::Lease::~Lease() {
  if (buffer != nullptr) Instance().ReleaseBuffer(buffer);
}

Tracer::Buffer* Tracer::AcquireBuffer() {
  std::lock_guard<std::mutex> lock(mu_);
  Buffer* b;
  if (!free_.empty()) {
    b = free_.back();
    free_.pop_back();
  } else {
    b = &buffers_.emplace_back();
    b->tid = static_cast<int32_t>(buffers_.size() - 1);
  }
  // Apply the current capacity on every (re)lease: a reused buffer whose
  // ring predates a SetBufferCapacity call resets to the new size, so
  // capacity changes are deterministic for fresh threads.
  std::lock_guard<std::mutex> buf_lock(b->mu);
  if (b->ring.size() != capacity_) {
    b->ring.assign(capacity_, TraceEvent{});
    b->count = 0;
  }
  return b;
}

void Tracer::ReleaseBuffer(Buffer* buffer) {
  // Events stay in the ring: a thread that exits mid-run keeps its trace
  // visible until the next drain.
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(buffer);
}

void Tracer::SetBufferCapacity(size_t events) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<size_t>(events, 1);
}

void Tracer::Record(const char* category, const char* name, int64_t ts_nanos,
                    int64_t dur_nanos, const char* arg_name,
                    int64_t arg_value) {
  Buffer* b = LocalBuffer();
  std::lock_guard<std::mutex> lock(b->mu);
  if (b->ring.empty()) return;  // Capacity 0 race; nothing to keep.
  TraceEvent& e = b->ring[static_cast<size_t>(b->count % b->ring.size())];
  e.category = category;
  e.name = name;
  e.ts_nanos = ts_nanos;
  e.dur_nanos = dur_nanos;
  e.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  e.tid = b->tid;
  e.arg_name = arg_name;
  e.arg_value = arg_value;
  ++b->count;
  total_events_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<TraceEvent> Tracer::Snapshot(bool drain) {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (Buffer& b : buffers_) {
    std::lock_guard<std::mutex> buf_lock(b.mu);
    const size_t cap = b.ring.size();
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(b.count, static_cast<uint64_t>(cap)));
    // Oldest-first: when the ring has wrapped, the oldest surviving event
    // sits at the write cursor.
    const size_t start =
        b.count > cap ? static_cast<size_t>(b.count % cap) : 0;
    for (size_t i = 0; i < n; ++i) {
      out.push_back(b.ring[(start + i) % cap]);
    }
    if (drain) {
      b.count = 0;
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

int64_t Tracer::BufferedEvents() {
  int64_t total = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (Buffer& b : buffers_) {
    std::lock_guard<std::mutex> buf_lock(b.mu);
    total += static_cast<int64_t>(
        std::min<uint64_t>(b.count, static_cast<uint64_t>(b.ring.size())));
  }
  return total;
}

int64_t Tracer::TotalEvents() {
  return total_events_.load(std::memory_order_relaxed);
}

std::string Tracer::ToChromeJson(bool drain) {
  const std::vector<TraceEvent> events = Snapshot(drain);
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  for (const TraceEvent& e : events) {
    w.BeginObject();
    w.Field("name", e.name != nullptr ? e.name : "");
    w.Field("cat", e.category != nullptr ? e.category : "");
    w.Field("ph", e.dur_nanos >= 0 ? "X" : "i");
    // Chrome's ts/dur unit is microseconds; fractional values are allowed
    // and keep nanosecond resolution.
    w.Key("ts").Double(static_cast<double>(e.ts_nanos) / 1e3);
    if (e.dur_nanos >= 0) {
      w.Key("dur").Double(static_cast<double>(e.dur_nanos) / 1e3);
    } else {
      w.Field("s", "t");  // Instant scope: thread.
    }
    w.Field("pid", int64_t{1});
    w.Field("tid", static_cast<int64_t>(e.tid));
    w.Key("args").BeginObject();
    w.Field("seq", static_cast<uint64_t>(e.seq));
    if (e.arg_name != nullptr) {
      w.Field(e.arg_name, e.arg_value);
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.Field("displayTimeUnit", "ms");
  w.EndObject();
  return w.str();
}

}  // namespace adaptdb::obs

#endif  // ADAPTDB_DISABLE_TRACING
