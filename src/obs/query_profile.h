/// \file query_profile.h
/// \brief Per-query trace spans: an EXPLAIN ANALYZE-style profile tree.
///
/// A `QueryProfile` records what one `Database::RunQuery` call spent its
/// time on: admission wait → adaptation → lock wait → planning/pruning →
/// execution (with per-join-phase children) — each span carrying wall
/// time, the logical IoStats attributed to it, and the registry counter
/// deltas that elapsed while it was the innermost open span.
///
/// Consistency by construction (this is what the tests assert):
///  - Spans are recorded only on the query's orchestration thread, so
///    they are strictly nested and sequential: the sum of children's wall
///    times never exceeds the parent's.
///  - IoStats are attributed at *leaf* spans only; `End()` merges a
///    closed child's stats into its parent, so every interior span's
///    IoStats are exactly the sum of its children and the root equals the
///    query total. Because logical IoStats are thread-count- and
///    backend-invariant (the engine's determinism contract), the tree's
///    structure and its logical IoStats are identical at 1 and 8 threads.
///  - Counter deltas come from `MetricsRegistry::Aggregate()` snapshots
///    taken at Begin/End. The registry is process-global, so concurrent
///    queries bleed into each other's deltas — they are attribution
///    hints, not exact accounting, and only the nonzero ones are kept.
///
/// `ProfileBuilder` is the recording side: Begin/End push and pop spans
/// on a stack; the RAII `Span` wrapper makes instrumented code exception-
/// safe. A disabled (or null) builder costs one branch per call site.

#ifndef ADAPTDB_OBS_QUERY_PROFILE_H_
#define ADAPTDB_OBS_QUERY_PROFILE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "storage/cluster.h"

namespace adaptdb::obs {

/// One node of the profile tree.
struct ProfileSpan {
  std::string name;
  double wall_seconds = 0;
  /// Logical + physical I/O attributed to this span (interior spans hold
  /// exactly the sum of their children; see file comment).
  IoStats io;
  /// Small named scalars (rows, blocks, groups, ...) set by the recorder.
  std::vector<std::pair<std::string, int64_t>> attrs;
  /// Nonzero registry counter deltas observed while this span was the
  /// innermost open one. Pairs of (counter name, delta).
  std::vector<std::pair<std::string, int64_t>> metrics;
  std::vector<ProfileSpan> children;

  int64_t Attr(std::string_view key, int64_t missing = 0) const;
};

/// Completed profile of one query.
struct QueryProfile {
  std::string query_name;
  int32_t threads = 1;  ///< ExecConfig.num_threads the query ran with.
  ProfileSpan root;     ///< Named "query"; wall == end-to-end RunQuery.

  /// EXPLAIN ANALYZE-style indented text tree.
  std::string ToString() const;

  /// JSON document (schema documented in README "Observability").
  std::string ToJson() const;
};

/// \brief Stack-based recorder used inside RunQuery and the planner.
///
/// Single-threaded by design: only the query's orchestration thread may
/// call it (worker-thread effects surface via IoStats merged at barriers
/// and via registry counter deltas). A default-constructed or disabled
/// builder turns every method into a cheap no-op; call sites that hold a
/// possibly-null pointer go through the `Span` RAII type, which
/// null-checks before touching the builder.
class ProfileBuilder {
 public:
  ProfileBuilder() = default;
  explicit ProfileBuilder(bool enabled) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }

  /// Opens a child span of the innermost open span.
  void Begin(std::string name);

  /// Closes the innermost open span: fixes its wall time, captures the
  /// counter delta, and merges its IoStats into the parent.
  void End();

  /// Attributes I/O to the innermost open span. Call only on spans with
  /// no children ("leaves") — interior totals are derived by End().
  void AddIo(const IoStats& io);

  /// Attaches a named scalar to the innermost open span.
  void AddAttr(std::string key, int64_t value);

  /// Attaches a pre-built child (e.g. an executor's ExecPhase, whose wall
  /// time was measured inside the executor) to the innermost open span and
  /// merges its IoStats into it, like End() does for recorded children.
  void AddChildSpan(ProfileSpan span);

  /// Closes the root span and returns the finished profile. The builder
  /// is spent afterwards. Returns nullptr when disabled.
  std::shared_ptr<const QueryProfile> Finish(std::string query_name,
                                             int32_t threads);

  /// RAII span: no-op on a null or disabled builder.
  class Span {
   public:
    Span(ProfileBuilder* b, std::string name) : b_(b) {
      if (b_ != nullptr && b_->enabled()) {
        b_->Begin(std::move(name));
        open_ = true;
      }
    }
    ~Span() { Close(); }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /// Early close (e.g. before a return value is computed).
    void Close() {
      if (open_) {
        b_->End();
        open_ = false;
      }
    }

   private:
    ProfileBuilder* b_;
    bool open_ = false;
  };

 private:
  struct Open {
    ProfileSpan span;
    std::chrono::steady_clock::time_point start;
    MetricsSnapshot counters_at_start;
  };

  bool enabled_ = false;
  std::vector<Open> stack_;
  ProfileSpan finished_root_;  ///< Root span parked between End and Finish.
  bool have_root_ = false;
};

}  // namespace adaptdb::obs

#endif  // ADAPTDB_OBS_QUERY_PROFILE_H_
