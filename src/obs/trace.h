/// \file trace.h
/// \brief Low-overhead per-thread ring-buffer event tracer.
///
/// The second observability layer (the first is the counter registry in
/// obs/metrics.h): where counters answer "how many", the tracer answers
/// "when, on which thread, for how long". Instrumented sites record timed
/// spans (task execution, morsel runs, buffer-pool loads, admission and
/// lock waits, adaptation steps) or instants (evictions) into a ring
/// buffer owned by the calling thread; the rings export as Chrome
/// `trace_event` JSON that loads directly in chrome://tracing or Perfetto.
///
/// Design, mirroring MetricsRegistry:
///  - Each tracing thread leases a cache-line-aligned `Buffer` from the
///    process-global `Tracer`; the lease returns the buffer to a freelist
///    on thread exit, so memory is bounded by peak thread concurrency
///    times the per-buffer capacity (a fixed-size ring that overwrites its
///    oldest events — a long run keeps the most recent window, never
///    grows).
///  - Events carry a global sequence number taken from one relaxed atomic
///    `fetch_add`; exports sort by it, which reconstructs a stable
///    cross-thread order without any heavier synchronization.
///  - Recording is guarded by one relaxed atomic `enabled` load, so the
///    tracer costs a branch per site while disabled. Event append takes
///    the buffer's own mutex — uncontended except while an export is
///    reading that buffer — keeping concurrent export/drain race-free
///    (and TSan-clean) without atomics on every event field.
///  - Category and name are `const char*` and must point at string
///    literals (or strings outliving the tracer): events store the
///    pointer, never copy. The optional argument is one (literal name,
///    int64) pair.
///
/// Compile-time removal: configure with -DADAPTDB_DISABLE_TRACING=ON and
/// every recording call — including the `TraceSpan` clock reads — compiles
/// to nothing; exports return an empty (but well-formed) document. The
/// runtime toggle is off by default, so normal builds pay one predictable
/// branch per instrumented site until someone turns tracing on.

#ifndef ADAPTDB_OBS_TRACE_H_
#define ADAPTDB_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace adaptdb::obs {

/// One recorded event. `dur_nanos < 0` marks an instant event; otherwise
/// this is a complete span ("ph":"X" in the Chrome format).
struct TraceEvent {
  const char* category = nullptr;
  const char* name = nullptr;
  int64_t ts_nanos = 0;   ///< Start time, relative to the tracer epoch.
  int64_t dur_nanos = -1; ///< Span duration; -1 for instants.
  uint64_t seq = 0;       ///< Global relaxed-atomic sequence number.
  int32_t tid = 0;        ///< Stable per-buffer id (reused across leases).
  const char* arg_name = nullptr;  ///< Optional argument key (literal).
  int64_t arg_value = 0;
};

#ifndef ADAPTDB_DISABLE_TRACING

/// \brief Process-global tracer: per-thread ring buffers + runtime toggle.
///
/// Like MetricsRegistry, exactly one exists per process (Instance()) and
/// it is intentionally leaked so instrumented code in static destructors
/// can still record.
class Tracer {
 public:
  /// Default events retained per thread (~64 B each, so ~512 KiB/thread).
  static constexpr size_t kDefaultBufferCapacity = 8192;

  static Tracer& Instance();

  /// The per-site guard. Relaxed: a site racing a toggle may record (or
  /// skip) one event — harmless for a diagnostic stream.
  static bool Enabled() {
    return Instance().enabled_.load(std::memory_order_relaxed);
  }

  /// Turns recording on/off. Events already buffered are kept.
  void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Capacity (events) for buffers leased *after* this call; existing
  /// leases keep their ring. Freelisted buffers are resized on reuse.
  void SetBufferCapacity(size_t events);

  /// Records an instant event on the calling thread's buffer.
  static void Instant(const char* category, const char* name,
                      const char* arg_name = nullptr, int64_t arg_value = 0) {
    if (!Enabled()) return;
    Instance().Record(category, name, NowNanos(), /*dur_nanos=*/-1, arg_name,
                      arg_value);
  }

  /// Records a complete span whose start/duration the caller measured
  /// (used by TraceSpan; callable directly for spans timed elsewhere).
  static void Complete(const char* category, const char* name,
                       int64_t ts_nanos, int64_t dur_nanos,
                       const char* arg_name = nullptr, int64_t arg_value = 0) {
    if (!Enabled()) return;
    Instance().Record(category, name, ts_nanos, dur_nanos, arg_name,
                      arg_value);
  }

  /// Nanoseconds since the tracer epoch (first Instance() call).
  static int64_t NowNanos();

  /// All buffered events, oldest-first per thread, in one flat vector
  /// sorted by sequence number (stable global order). `drain` clears
  /// every ring after the copy.
  std::vector<TraceEvent> Snapshot(bool drain = false);

  /// Chrome `trace_event` JSON ("traceEvents" array of "X"/"i" phase
  /// events, ts/dur in microseconds), loadable in chrome://tracing and
  /// Perfetto. `drain` clears the rings after export.
  std::string ToChromeJson(bool drain = false);

  /// Buffered event count across all rings (testing/inspection).
  int64_t BufferedEvents();

  /// Total events ever recorded, including ones overwritten in the rings.
  int64_t TotalEvents();

 private:
  /// One thread's ring. The mutex serializes the owning writer against
  /// Snapshot/drain readers; writes are uncontended otherwise.
  struct alignas(64) Buffer {
    std::mutex mu;
    std::vector<TraceEvent> ring;   ///< Fixed capacity, set at (re)lease.
    uint64_t count = 0;             ///< Events ever written to this ring.
    int32_t tid = 0;                ///< Buffer index; stable per buffer.
  };

  /// RAII lease returning the buffer to the freelist on thread exit.
  struct Lease {
    Buffer* buffer = nullptr;
    ~Lease();
  };

  Tracer() = default;

  static Buffer* LocalBuffer();
  Buffer* AcquireBuffer();
  void ReleaseBuffer(Buffer* buffer);
  void Record(const char* category, const char* name, int64_t ts_nanos,
              int64_t dur_nanos, const char* arg_name, int64_t arg_value);

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_seq_{0};
  std::atomic<int64_t> total_events_{0};

  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  // deque: stable addresses under growth (threads hold raw Buffer*).
  std::deque<Buffer> buffers_;
  std::vector<Buffer*> free_;
  size_t capacity_ = kDefaultBufferCapacity;
};

inline constexpr bool kTracingCompiled = true;

/// \brief RAII span: stamps the clock at construction, records one
/// complete event at destruction. The argument may be set (or updated)
/// any time before the scope closes — useful when the interesting number
/// (records moved, rows matched) is only known at the end.
class TraceSpan {
 public:
  TraceSpan(const char* category, const char* name,
            const char* arg_name = nullptr, int64_t arg_value = 0)
      : category_(category),
        name_(name),
        arg_name_(arg_name),
        arg_value_(arg_value),
        active_(Tracer::Enabled()) {
    if (active_) start_nanos_ = Tracer::NowNanos();
  }

  ~TraceSpan() {
    if (active_) {
      const int64_t now = Tracer::NowNanos();
      Tracer::Complete(category_, name_, start_nanos_, now - start_nanos_,
                       arg_name_, arg_value_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches/overwrites the span's argument before it closes.
  void SetArg(const char* arg_name, int64_t arg_value) {
    arg_name_ = arg_name;
    arg_value_ = arg_value;
  }

 private:
  const char* category_;
  const char* name_;
  const char* arg_name_;
  int64_t arg_value_;
  const bool active_;
  int64_t start_nanos_ = 0;
};

#else  // ADAPTDB_DISABLE_TRACING

/// No-op tracer: recording vanishes; exports are empty but well-formed.
class Tracer {
 public:
  static constexpr size_t kDefaultBufferCapacity = 0;

  static Tracer& Instance() {
    static Tracer t;
    return t;
  }
  static bool Enabled() { return false; }
  void SetEnabled(bool) {}
  void SetBufferCapacity(size_t) {}
  static void Instant(const char*, const char*, const char* = nullptr,
                      int64_t = 0) {}
  static void Complete(const char*, const char*, int64_t, int64_t,
                       const char* = nullptr, int64_t = 0) {}
  static int64_t NowNanos() { return 0; }
  std::vector<TraceEvent> Snapshot(bool = false) { return {}; }
  std::string ToChromeJson(bool = false) {
    return "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}";
  }
  int64_t BufferedEvents() { return 0; }
  int64_t TotalEvents() { return 0; }
};

inline constexpr bool kTracingCompiled = false;

/// Empty span: no clock reads remain in the kill-switch build.
class TraceSpan {
 public:
  TraceSpan(const char*, const char*, const char* = nullptr, int64_t = 0) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  void SetArg(const char*, int64_t) {}
};

#endif  // ADAPTDB_DISABLE_TRACING

}  // namespace adaptdb::obs

#endif  // ADAPTDB_OBS_TRACE_H_
