#include "obs/query_profile.h"

#include <cassert>
#include <cstdio>

#include "obs/json.h"

namespace adaptdb::obs {

namespace {

void AppendSpanText(const ProfileSpan& span, int depth, std::string* out) {
  char line[160];
  std::snprintf(line, sizeof(line), "%*s%s  %.3f ms", depth * 2, "",
                span.name.c_str(), span.wall_seconds * 1e3);
  *out += line;
  if (span.io.TotalReads() != 0 || span.io.block_writes != 0 ||
      span.io.shuffled_blocks != 0) {
    std::snprintf(line, sizeof(line),
                  "  [reads=%lld (%lld remote) writes=%lld shuffled=%lld]",
                  static_cast<long long>(span.io.TotalReads()),
                  static_cast<long long>(span.io.remote_block_reads),
                  static_cast<long long>(span.io.block_writes),
                  static_cast<long long>(span.io.shuffled_blocks));
    *out += line;
  }
  for (const auto& [k, v] : span.attrs) {
    std::snprintf(line, sizeof(line), "  %s=%lld", k.c_str(),
                  static_cast<long long>(v));
    *out += line;
  }
  *out += '\n';
  for (const ProfileSpan& child : span.children) {
    AppendSpanText(child, depth + 1, out);
  }
}

void SpanToJson(const ProfileSpan& span, JsonWriter* w) {
  w->BeginObject();
  w->Field("name", span.name);
  w->Field("wall_seconds", span.wall_seconds);
  w->Key("io").BeginObject();
  w->Field("local_block_reads", span.io.local_block_reads);
  w->Field("remote_block_reads", span.io.remote_block_reads);
  w->Field("block_writes", span.io.block_writes);
  w->Field("shuffled_blocks", span.io.shuffled_blocks);
  w->Field("buffer_hits", span.io.buffer_hits);
  w->Field("buffer_misses", span.io.buffer_misses);
  w->Field("physical_block_writes", span.io.physical_block_writes);
  w->Field("prefetched", span.io.prefetched);
  w->EndObject();
  if (!span.attrs.empty()) {
    w->Key("attrs").BeginObject();
    for (const auto& [k, v] : span.attrs) w->Field(k, v);
    w->EndObject();
  }
  if (!span.metrics.empty()) {
    w->Key("counter_deltas").BeginObject();
    for (const auto& [k, v] : span.metrics) w->Field(k, v);
    w->EndObject();
  }
  if (!span.children.empty()) {
    w->Key("children").BeginArray();
    for (const ProfileSpan& child : span.children) SpanToJson(child, w);
    w->EndArray();
  }
  w->EndObject();
}

}  // namespace

int64_t ProfileSpan::Attr(std::string_view key, int64_t missing) const {
  for (const auto& [k, v] : attrs) {
    if (k == key) return v;
  }
  return missing;
}

std::string QueryProfile::ToString() const {
  std::string out = "QueryProfile: " + query_name + " (threads=" +
                    std::to_string(threads) + ")\n";
  AppendSpanText(root, 1, &out);
  return out;
}

std::string QueryProfile::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Field("query", query_name);
  w.Field("threads", static_cast<int64_t>(threads));
  w.Key("root");
  SpanToJson(root, &w);
  w.EndObject();
  return w.str();
}

void ProfileBuilder::Begin(std::string name) {
  if (!enabled_) return;
  Open open;
  open.span.name = std::move(name);
  open.counters_at_start = MetricsRegistry::Instance().Aggregate();
  open.start = std::chrono::steady_clock::now();
  stack_.push_back(std::move(open));
}

void ProfileBuilder::End() {
  if (!enabled_) return;
  assert(!stack_.empty());
  if (stack_.empty()) return;
  Open open = std::move(stack_.back());
  stack_.pop_back();
  open.span.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    open.start)
          .count();
  const MetricsSnapshot delta =
      MetricsRegistry::Instance().Aggregate().Delta(open.counters_at_start);
  for (int32_t i = 0; i < kNumCounters; ++i) {
    const int64_t v = delta.values[static_cast<size_t>(i)];
    if (v != 0) {
      open.span.metrics.emplace_back(
          std::string(CounterName(static_cast<Counter>(i))), v);
    }
  }
  if (stack_.empty()) {
    // Root span: parked until Finish().
    finished_root_ = std::move(open.span);
    have_root_ = true;
    return;
  }
  // Interior-IoStats invariant: the parent accumulates exactly the sum of
  // its children, so "children io == parent io" holds at every level that
  // has children (leaves keep whatever AddIo() gave them).
  stack_.back().span.io.Merge(open.span.io);
  stack_.back().span.children.push_back(std::move(open.span));
}

void ProfileBuilder::AddIo(const IoStats& io) {
  if (!enabled_ || stack_.empty()) return;
  assert(stack_.back().span.children.empty() &&
         "AddIo is leaf-only; interior spans derive io from children");
  stack_.back().span.io.Merge(io);
}

void ProfileBuilder::AddAttr(std::string key, int64_t value) {
  if (!enabled_ || stack_.empty()) return;
  stack_.back().span.attrs.emplace_back(std::move(key), value);
}

void ProfileBuilder::AddChildSpan(ProfileSpan span) {
  if (!enabled_ || stack_.empty()) return;
  stack_.back().span.io.Merge(span.io);
  stack_.back().span.children.push_back(std::move(span));
}

std::shared_ptr<const QueryProfile> ProfileBuilder::Finish(
    std::string query_name, int32_t threads) {
  if (!enabled_) return nullptr;
  // Close any spans left open (exception paths).
  while (!stack_.empty()) End();
  auto profile = std::make_shared<QueryProfile>();
  profile->query_name = std::move(query_name);
  profile->threads = threads;
  if (have_root_) profile->root = std::move(finished_root_);
  enabled_ = false;  // Spent.
  return profile;
}

}  // namespace adaptdb::obs
