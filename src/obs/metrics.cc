#include "obs/metrics.h"

#include <chrono>

namespace adaptdb::obs {

std::string_view CounterName(Counter c) {
  switch (c) {
    case Counter::kTasksExecuted:
      return "tasks_executed";
    case Counter::kTasksStolen:
      return "tasks_stolen";
    case Counter::kTaskBusyNanos:
      return "task_busy_nanos";
    case Counter::kWorkerIdleNanos:
      return "worker_idle_nanos";
    case Counter::kBufferHits:
      return "buffer_hits";
    case Counter::kBufferMisses:
      return "buffer_misses";
    case Counter::kBufferEvictions:
      return "buffer_evictions";
    case Counter::kBufferWritebacks:
      return "buffer_writebacks";
    case Counter::kBufferPrefetched:
      return "buffer_prefetched";
    case Counter::kQueriesAdmitted:
      return "queries_admitted";
    case Counter::kAdmissionWaitNanos:
      return "admission_wait_nanos";
    case Counter::kAdaptSteps:
      return "adapt_steps";
    case Counter::kAdaptRecordsMoved:
      return "adapt_records_moved";
    case Counter::kAdaptTreesCreated:
      return "adapt_trees_created";
    case Counter::kBlocksSkippedMeta:
      return "blocks_skipped_meta";
    case Counter::kAsyncReads:
      return "async_reads";
    case Counter::kAsyncWrites:
      return "async_writes";
    case Counter::kSpilledPartitions:
      return "spilled_partitions";
    case Counter::kSpillBytesWritten:
      return "spill_bytes_written";
    case Counter::kSpillBytesRead:
      return "spill_bytes_read";
    case Counter::kKernelFilters:
      return "kernel_filters";
    case Counter::kFilterFallbacks:
      return "filter_fallbacks";
    case Counter::kCount:
      break;
  }
  return "unknown";
}

#ifndef ADAPTDB_DISABLE_METRICS

MetricsRegistry& MetricsRegistry::Instance() {
  // Intentionally leaked: instrumented code may run during static
  // destruction, after a normal singleton would already be gone.
  static MetricsRegistry* r = new MetricsRegistry();
  return *r;
}

MetricsRegistry::Shard* MetricsRegistry::LocalShard() {
  thread_local Lease lease{Instance().AcquireShard()};
  return lease.shard;
}

MetricsRegistry::Lease::~Lease() {
  if (shard != nullptr) Instance().ReleaseShard(shard);
}

MetricsRegistry::Shard* MetricsRegistry::AcquireShard() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!free_.empty()) {
    Shard* s = free_.back();
    free_.pop_back();
    return s;
  }
  return &shards_.emplace_back();
}

void MetricsRegistry::ReleaseShard(Shard* shard) {
  // Counts stay in the shard: a future thread reusing it keeps adding to
  // the same monotone totals, so Aggregate() never goes backwards.
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(shard);
}

MetricsSnapshot MetricsRegistry::Aggregate() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const Shard& s : shards_) {
    for (int32_t i = 0; i < kNumCounters; ++i) {
      out.values[static_cast<size_t>(i)] +=
          s.slots[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::vector<MetricsSnapshot> MetricsRegistry::PerShard() const {
  std::vector<MetricsSnapshot> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(shards_.size());
  for (const Shard& s : shards_) {
    MetricsSnapshot snap;
    for (int32_t i = 0; i < kNumCounters; ++i) {
      snap.values[static_cast<size_t>(i)] =
          s.slots[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    }
    out.push_back(snap);
  }
  return out;
}

int64_t MetricsRegistry::num_shards() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(shards_.size());
}

#endif  // ADAPTDB_DISABLE_METRICS

MetricsSampler::MetricsSampler(int64_t interval_millis, size_t capacity)
    : interval_millis_(interval_millis < 1 ? 1 : interval_millis),
      capacity_(capacity < 2 ? 2 : capacity) {}

MetricsSampler::~MetricsSampler() { Stop(); }

void MetricsSampler::Start() {
  std::unique_lock<std::mutex> lock(mu_);
  if (running_) return;
  running_ = true;
  stop_requested_ = false;
  ring_.clear();
  thread_ = std::thread([this] { Loop(); });
}

void MetricsSampler::Stop() {
  // Claim the thread under the lock so a second concurrent Stop() (or the
  // destructor racing an explicit Stop during shutdown) returns instead of
  // joining the same std::thread twice — which is undefined behavior and
  // terminated the process before this was moved out.
  std::thread to_join;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
    stop_requested_ = true;
    to_join = std::move(thread_);
  }
  cv_.notify_all();
  to_join.join();
}

void MetricsSampler::Loop() {
  const auto t0 = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    // Sample outside the wait but under mu_ so Samples() sees a
    // consistent ring; Aggregate() takes only the registry's own lock.
    lock.unlock();
    Sample s;
    s.snapshot = MetricsRegistry::Instance().Aggregate();
    s.elapsed_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    lock.lock();
    ring_.push_back(std::move(s));
    while (ring_.size() > capacity_) ring_.pop_front();
    cv_.wait_for(lock, std::chrono::milliseconds(interval_millis_),
                 [this] { return stop_requested_; });
  }
}

std::vector<MetricsSampler::Sample> MetricsSampler::Samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

double MetricsSampler::RatePerSecond(Counter c) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < 2) return 0;
  const Sample& a = ring_[ring_.size() - 2];
  const Sample& b = ring_.back();
  const double dt = b.elapsed_seconds - a.elapsed_seconds;
  if (dt <= 0) return 0;
  return static_cast<double>(b.snapshot[c] - a.snapshot[c]) / dt;
}

}  // namespace adaptdb::obs
