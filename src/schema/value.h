/// \file value.h
/// \brief Dynamically typed scalar values and attribute ranges.

#ifndef ADAPTDB_SCHEMA_VALUE_H_
#define ADAPTDB_SCHEMA_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"

namespace adaptdb {

/// \brief Column data types supported by the storage manager.
///
/// Dates are stored as kInt64 days-since-epoch; TPC-H keys and quantities are
/// kInt64; prices and rates are kDouble; flags and names are kString.
enum class DataType {
  kInt64,
  kDouble,
  kString,
};

/// Returns a short name ("int64", "double", "string").
const char* DataTypeToString(DataType type);

/// \brief A dynamically typed scalar with a total order within each type.
///
/// Values of different types never compare equal; comparing them for order is
/// a programming error guarded in debug builds (the storage layer always
/// compares values of the same column).
class Value {
 public:
  /// Constructs the int64 zero (useful for containers).
  Value() : v_(int64_t{0}) {}
  /// Constructs an int64 value.
  Value(int64_t v) : v_(v) {}  // NOLINT(runtime/explicit)
  /// Constructs an int64 value from int (convenience for literals).
  Value(int v) : v_(int64_t{v}) {}  // NOLINT(runtime/explicit)
  /// Constructs a double value.
  Value(double v) : v_(v) {}  // NOLINT(runtime/explicit)
  /// Constructs a string value.
  Value(std::string v) : v_(std::move(v)) {}  // NOLINT(runtime/explicit)
  /// Constructs a string value from a literal.
  Value(const char* v) : v_(std::string(v)) {}  // NOLINT(runtime/explicit)

  /// The runtime type of this value.
  DataType type() const;

  /// The contained int64. Precondition: type() == kInt64.
  int64_t AsInt64() const { return std::get<int64_t>(v_); }
  /// The contained double. Precondition: type() == kDouble.
  double AsDouble() const { return std::get<double>(v_); }
  /// The contained string. Precondition: type() == kString.
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Numeric view: int64 widened to double. Precondition: numeric type.
  double AsNumeric() const;

  /// Renders for debugging ("42", "3.5", "\"abc\"").
  std::string ToString() const;

  bool operator==(const Value& o) const { return v_ == o.v_; }
  bool operator!=(const Value& o) const { return v_ != o.v_; }
  /// Total order within a type; mixed numeric comparison uses AsNumeric.
  bool operator<(const Value& o) const;
  bool operator<=(const Value& o) const { return *this < o || *this == o; }
  bool operator>(const Value& o) const { return o < *this; }
  bool operator>=(const Value& o) const { return o <= *this; }

 private:
  std::variant<int64_t, double, std::string> v_;
};

/// \brief Closed interval [lo, hi] of attribute values, e.g. a block's
/// min/max on one column (the paper's Range_t(x)).
struct ValueRange {
  Value lo;
  Value hi;

  /// True iff the two closed intervals intersect.
  bool Overlaps(const ValueRange& other) const {
    return !(hi < other.lo) && !(other.hi < lo);
  }

  /// True iff `v` lies within [lo, hi].
  bool Contains(const Value& v) const { return lo <= v && v <= hi; }

  /// Extends the interval to cover `v`.
  void Extend(const Value& v) {
    if (v < lo) lo = v;
    if (hi < v) hi = v;
  }

  /// Extends the interval to cover `other` entirely.
  void ExtendRange(const ValueRange& other) {
    Extend(other.lo);
    Extend(other.hi);
  }

  std::string ToString() const {
    return "[" + lo.ToString() + ", " + hi.ToString() + "]";
  }

  bool operator==(const ValueRange& o) const { return lo == o.lo && hi == o.hi; }
};

}  // namespace adaptdb

#endif  // ADAPTDB_SCHEMA_VALUE_H_
