/// \file schema.h
/// \brief Table schemas and records.

#ifndef ADAPTDB_SCHEMA_SCHEMA_H_
#define ADAPTDB_SCHEMA_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "schema/value.h"

namespace adaptdb {

/// Index of an attribute (column) within a schema.
using AttrId = int32_t;

/// A row: one Value per schema attribute, in schema order.
using Record = std::vector<Value>;

/// \brief One column: name, type, and an approximate per-value byte width
/// used by the simulated storage engine for block sizing.
struct Field {
  std::string name;
  DataType type;
  /// Approximate serialized width in bytes (default 8).
  int32_t byte_width = 8;
};

/// \brief An ordered collection of named, typed fields.
class Schema {
 public:
  Schema() = default;
  /// Constructs from a field list.
  explicit Schema(std::vector<Field> fields);

  /// Number of attributes.
  int32_t num_attrs() const { return static_cast<int32_t>(fields_.size()); }

  /// The field at `attr`. Precondition: 0 <= attr < num_attrs().
  const Field& field(AttrId attr) const { return fields_[attr]; }

  /// All fields, schema order.
  const std::vector<Field>& fields() const { return fields_; }

  /// Looks up an attribute index by name.
  Result<AttrId> AttrByName(const std::string& name) const;

  /// Sum of field byte widths: the approximate bytes per record.
  int64_t RecordWidth() const { return record_width_; }

  /// Validates that `rec` matches the schema arity and types.
  Status ValidateRecord(const Record& rec) const;

  /// Renders "name:type, ..." for debugging.
  std::string ToString() const;

 private:
  std::vector<Field> fields_;
  int64_t record_width_ = 0;
};

}  // namespace adaptdb

#endif  // ADAPTDB_SCHEMA_SCHEMA_H_
