#include "schema/predicate.h"

namespace adaptdb {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNeq:
      return "!=";
  }
  return "?";
}

bool Predicate::Matches(const Value& v) const {
  switch (op) {
    case CompareOp::kLt:
      return v < value;
    case CompareOp::kLe:
      return v <= value;
    case CompareOp::kGt:
      return v > value;
    case CompareOp::kGe:
      return v >= value;
    case CompareOp::kEq:
      return v == value;
    case CompareOp::kNeq:
      return v != value;
  }
  return false;
}

bool Predicate::AdmitsRange(const ValueRange& range) const {
  switch (op) {
    case CompareOp::kLt:
      return range.lo < value;
    case CompareOp::kLe:
      return range.lo <= value;
    case CompareOp::kGt:
      return range.hi > value;
    case CompareOp::kGe:
      return range.hi >= value;
    case CompareOp::kEq:
      return range.Contains(value);
    case CompareOp::kNeq:
      // Only a degenerate single-point range can be fully excluded.
      return !(range.lo == value && range.hi == value);
  }
  return true;
}

bool Predicate::CanMatchLeft(const Value& cut) const {
  // Left subtree holds values <= cut.
  switch (op) {
    case CompareOp::kLt:
    case CompareOp::kLe:
      return true;  // Small values always possible on the left.
    case CompareOp::kGt:
      return value < cut;  // Need x <= cut with x > value.
    case CompareOp::kGe:
      return value <= cut;
    case CompareOp::kEq:
      return value <= cut;
    case CompareOp::kNeq:
      return true;
  }
  return true;
}

bool Predicate::CanMatchRight(const Value& cut) const {
  // Right subtree holds values > cut.
  switch (op) {
    case CompareOp::kLt:
    case CompareOp::kLe:
      return cut < value;  // Need x > cut with x (<|<=) value.
    case CompareOp::kGt:
    case CompareOp::kGe:
      return true;  // Large values always possible on the right.
    case CompareOp::kEq:
      return cut < value;
    case CompareOp::kNeq:
      return true;
  }
  return true;
}

std::string Predicate::ToString() const {
  return "a" + std::to_string(attr) + " " + CompareOpToString(op) + " " +
         value.ToString();
}

bool MatchesAll(const PredicateSet& preds, const Record& rec) {
  for (const Predicate& p : preds) {
    if (!p.MatchesRecord(rec)) return false;
  }
  return true;
}

bool RangesAdmit(const PredicateSet& preds,
                 const std::vector<ValueRange>& ranges) {
  for (const Predicate& p : preds) {
    if (!p.AdmitsRange(ranges[static_cast<size_t>(p.attr)])) return false;
  }
  return true;
}

std::string PredicateSetToString(const PredicateSet& preds) {
  if (preds.empty()) return "TRUE";
  std::string out;
  for (size_t i = 0; i < preds.size(); ++i) {
    if (i > 0) out += " AND ";
    out += preds[i].ToString();
  }
  return out;
}

}  // namespace adaptdb
