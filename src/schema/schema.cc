#include "schema/schema.h"

namespace adaptdb {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (const Field& f : fields_) record_width_ += f.byte_width;
}

Result<AttrId> Schema::AttrByName(const std::string& name) const {
  for (int32_t i = 0; i < num_attrs(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return Status::NotFound("no attribute named '" + name + "'");
}

Status Schema::ValidateRecord(const Record& rec) const {
  if (static_cast<int32_t>(rec.size()) != num_attrs()) {
    return Status::InvalidArgument(
        "record arity " + std::to_string(rec.size()) + " != schema arity " +
        std::to_string(num_attrs()));
  }
  for (int32_t i = 0; i < num_attrs(); ++i) {
    if (rec[i].type() != fields_[i].type) {
      return Status::InvalidArgument(
          "attribute '" + fields_[i].name + "' expects " +
          DataTypeToString(fields_[i].type) + " but record holds " +
          DataTypeToString(rec[i].type()));
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out;
  for (int32_t i = 0; i < num_attrs(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += DataTypeToString(fields_[i].type);
  }
  return out;
}

}  // namespace adaptdb
