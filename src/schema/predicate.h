/// \file predicate.h
/// \brief Selection predicates and conjunctive predicate sets.
///
/// AdaptDB queries carry a conjunction of single-attribute comparison
/// predicates (the access pattern Amoeba's storage manager supports, paper
/// §3). Predicates serve three roles:
///   1. tuple filtering during scans,
///   2. partitioning-tree pruning (which subtrees can contain matches), and
///   3. block skipping via per-block min/max ranges.
/// Roles 2 and 3 must be conservative: they may admit false positives but
/// never prune a block containing a matching tuple.

#ifndef ADAPTDB_SCHEMA_PREDICATE_H_
#define ADAPTDB_SCHEMA_PREDICATE_H_

#include <string>
#include <vector>

#include "schema/schema.h"
#include "schema/value.h"

namespace adaptdb {

/// Comparison operator of a predicate.
enum class CompareOp {
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNeq,
};

/// Returns the operator's SQL spelling ("<", "<=", ...).
const char* CompareOpToString(CompareOp op);

/// \brief A single-attribute comparison: `attr op value`.
struct Predicate {
  AttrId attr = 0;
  CompareOp op = CompareOp::kEq;
  Value value;

  Predicate() = default;
  Predicate(AttrId a, CompareOp o, Value v)
      : attr(a), op(o), value(std::move(v)) {}

  /// True iff scalar `v` satisfies `v op value`.
  bool Matches(const Value& v) const;

  /// True iff the record's attribute satisfies the predicate.
  bool MatchesRecord(const Record& rec) const {
    return Matches(rec[static_cast<size_t>(attr)]);
  }

  /// True iff some value in the closed interval `range` could satisfy the
  /// predicate (conservative block-skipping test).
  bool AdmitsRange(const ValueRange& range) const;

  /// Given a tree split `attr <= cut` (left) / `attr > cut` (right), returns
  /// whether the left subtree can contain a satisfying value.
  bool CanMatchLeft(const Value& cut) const;
  /// Whether the right subtree (values > cut) can contain a satisfying value.
  bool CanMatchRight(const Value& cut) const;

  /// Renders "a3 <= 42" style (attribute index form).
  std::string ToString() const;

  bool operator==(const Predicate& o) const {
    return attr == o.attr && op == o.op && value == o.value;
  }
};

/// A conjunction of predicates. Empty set matches everything.
using PredicateSet = std::vector<Predicate>;

/// True iff `rec` satisfies every predicate in `preds`.
bool MatchesAll(const PredicateSet& preds, const Record& rec);

/// True iff a block whose per-attribute ranges are `ranges` could contain a
/// record matching every predicate (conjunction of AdmitsRange tests).
/// `ranges[attr]` must be the block's min/max for that attribute.
bool RangesAdmit(const PredicateSet& preds,
                 const std::vector<ValueRange>& ranges);

/// Renders the conjunction "a1 < 5 AND a2 >= 7".
std::string PredicateSetToString(const PredicateSet& preds);

}  // namespace adaptdb

#endif  // ADAPTDB_SCHEMA_PREDICATE_H_
