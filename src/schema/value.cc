#include "schema/value.h"

#include <cassert>
#include <cstdio>

namespace adaptdb {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

DataType Value::type() const {
  switch (v_.index()) {
    case 0:
      return DataType::kInt64;
    case 1:
      return DataType::kDouble;
    default:
      return DataType::kString;
  }
}

double Value::AsNumeric() const {
  if (type() == DataType::kInt64) return static_cast<double>(AsInt64());
  assert(type() == DataType::kDouble);
  return AsDouble();
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kInt64:
      return std::to_string(AsInt64());
    case DataType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    }
    case DataType::kString:
      return "\"" + AsString() + "\"";
  }
  return "?";
}

bool Value::operator<(const Value& o) const {
  const DataType a = type();
  const DataType b = o.type();
  if (a == DataType::kString || b == DataType::kString) {
    assert(a == DataType::kString && b == DataType::kString);
    return AsString() < o.AsString();
  }
  if (a == b && a == DataType::kInt64) return AsInt64() < o.AsInt64();
  return AsNumeric() < o.AsNumeric();
}

}  // namespace adaptdb
