/// \file shuffle_kernels.h
/// \brief Shared building blocks of the serial and parallel shuffle join.
///
/// Both exec/shuffle_join.cc and parallel/parallel_shuffle_join.cc execute
/// exactly these kernels — the parallel driver only changes *which thread*
/// runs them and merges per-task partials in serial order. Keeping the map
/// and build/probe logic (including the checksum formula) in one place is
/// what guarantees the two paths cannot drift apart.

#ifndef ADAPTDB_EXEC_SHUFFLE_KERNELS_H_
#define ADAPTDB_EXEC_SHUFFLE_KERNELS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "exec/hash_join.h"
#include "storage/block_store.h"
#include "storage/cluster.h"

namespace adaptdb::shuffle_internal {

/// Map-side kernel for one block: read + account + filter + hash-partition
/// record pointers into parts[key_hash % parts->size()]. The block's pin is
/// appended to `pins`, which must stay alive until the partitions' record
/// pointers are no longer used (the reduce phase) — with a buffered store,
/// dropping the pin would let eviction free the records underneath them.
inline Status MapBlock(const BlockStore& store, BlockId id, AttrId attr,
                       const PredicateSet& preds, const ClusterSim& cluster,
                       std::vector<std::vector<const Record*>>* parts,
                       std::vector<BlockRef>* pins, IoStats* io) {
  auto blk = store.Get(id);
  if (!blk.ok()) return blk.status();
  pins->push_back(blk.ValueOrDie());
  const Block& b = *pins->back();
  auto node = cluster.Locate(id);
  cluster.ReadBlock(id, node.ok() ? node.ValueOrDie() : 0, io);
  for (const Record& rec : b.records()) {
    if (!MatchesAll(preds, rec)) continue;
    const size_t p =
        HashValue(rec[static_cast<size_t>(attr)]) % parts->size();
    (*parts)[p].push_back(&rec);
  }
  return Status::OK();
}

/// Reduce-side kernel for one partition: build a hash index on the R
/// records, probe with the S records in order, accumulate counts and
/// (when `output` is non-null) materialize build ++ probe rows.
inline void BuildProbePartition(const std::vector<const Record*>& r_part,
                                AttrId r_attr,
                                const std::vector<const Record*>& s_part,
                                AttrId s_attr, JoinCounts* counts,
                                std::vector<Record>* output) {
  std::unordered_map<Value, std::vector<const Record*>, ValueHash> index;
  for (const Record* rec : r_part) {
    index[(*rec)[static_cast<size_t>(r_attr)]].push_back(rec);
  }
  for (const Record* rec : s_part) {
    const Value& key = (*rec)[static_cast<size_t>(s_attr)];
    auto it = index.find(key);
    if (it == index.end()) continue;
    const auto& bucket = it->second;
    counts->output_rows += static_cast<int64_t>(bucket.size());
    counts->checksum += static_cast<uint64_t>(bucket.size()) *
                        (static_cast<uint64_t>(HashValue(key)) | 1);
    if (output != nullptr) {
      for (const Record* build : bucket) {
        Record joined = *build;
        joined.insert(joined.end(), rec->begin(), rec->end());
        output->push_back(std::move(joined));
      }
    }
  }
}

}  // namespace adaptdb::shuffle_internal

#endif  // ADAPTDB_EXEC_SHUFFLE_KERNELS_H_
