/// \file shuffle_kernels.h
/// \brief Shared building blocks of the serial and parallel shuffle join.
///
/// Both exec/shuffle_join.cc and parallel/parallel_shuffle_join.cc execute
/// exactly these kernels — the parallel driver only changes *which thread*
/// runs them and merges per-task partials in serial order. Keeping the map
/// and build/probe logic (including the checksum formula) in one place is
/// what guarantees the two paths cannot drift apart.
///
/// On the columnar layout the map phase never materializes rows: it filters
/// column-at-a-time, hashes the join-key column directly, and partitions
/// (block, row) references. Output rows gather their attributes only on an
/// actual match in the reduce phase (late materialization).

#ifndef ADAPTDB_EXEC_SHUFFLE_KERNELS_H_
#define ADAPTDB_EXEC_SHUFFLE_KERNELS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "exec/hash_join.h"
#include "storage/block_store.h"
#include "storage/cluster.h"

namespace adaptdb::shuffle_internal {

/// Map-side kernel for one block: read + account + columnar filter +
/// hash-partition row references into parts[key_hash % parts->size()]. The
/// block's pin is appended to `pins`, which must stay alive until the
/// partitions' row references are no longer used (the reduce phase) — with
/// a buffered store, dropping the pin would let eviction free the columns
/// underneath them.
inline Status MapBlock(const BlockStore& store, BlockId id, AttrId attr,
                       const PredicateSet& preds, const ClusterSim& cluster,
                       std::vector<std::vector<RowRef>>* parts,
                       std::vector<BlockRef>* pins, IoStats* io) {
  auto blk = store.Get(id);
  if (!blk.ok()) return blk.status();
  pins->push_back(blk.ValueOrDie());
  const Block& b = *pins->back();
  auto node = cluster.Locate(id);
  cluster.ReadBlock(id, node.ok() ? node.ValueOrDie() : 0, io);
  const SelectionVector sel = b.FilterRows(preds);
  if (sel.empty()) return Status::OK();
  const Column& key_col = b.column(attr);
  for (const uint32_t row : sel) {
    const size_t p = key_col.HashAt(row) % parts->size();
    (*parts)[p].push_back(RowRef::OfBlock(&b, row));
  }
  return Status::OK();
}

/// Hash index over one partition's build rows — the reduce phase's
/// per-partition structure, shared between the in-memory reduce and the
/// spilling reduce (which feeds it decoded chunk rows instead).
using PartitionIndex =
    std::unordered_map<Value, std::vector<RowRef>, ValueHash, ValueEq>;

/// Adds build-side rows to the partition index (insertion order preserved
/// within a bucket, so probe output order is feed-order-deterministic).
inline void AddToPartitionIndex(const std::vector<RowRef>& r_part,
                                AttrId r_attr, PartitionIndex* index) {
  for (const RowRef& ref : r_part) {
    // Find-before-emplace with the key read in place (mirroring the
    // probe side): the build key materializes a Value only on first
    // sight, so repeated keys — and every row of a dictionary-resident
    // column — add no string copies or hashes.
    auto it = ref.block != nullptr
                  ? index->find(ColumnKey{&ref.block->column(r_attr), ref.row})
                  : index->find((*ref.rec)[static_cast<size_t>(r_attr)]);
    if (it == index->end()) {
      it = index->emplace(ref.KeyAt(r_attr), std::vector<RowRef>{}).first;
    }
    it->second.push_back(ref);
  }
}

/// Probes the partition index with S rows in order, accumulating counts and
/// (when `output` is non-null) late-materializing build ++ probe rows.
inline void ProbePartitionRows(const PartitionIndex& index,
                               const std::vector<RowRef>& s_part,
                               AttrId s_attr, JoinCounts* counts,
                               std::vector<Record>* output) {
  for (const RowRef& ref : s_part) {
    // Probe keys read in place: a heterogeneous ColumnKey lookup for
    // block rows, the record's own Value by reference otherwise — no key
    // materializes on the probe side.
    const auto it =
        ref.block != nullptr
            ? index.find(ColumnKey{&ref.block->column(s_attr), ref.row})
            : index.find((*ref.rec)[static_cast<size_t>(s_attr)]);
    if (it == index.end()) continue;
    const size_t key_hash =
        ref.block != nullptr
            ? ref.block->column(s_attr).HashAt(ref.row)
            : HashValue((*ref.rec)[static_cast<size_t>(s_attr)]);
    const auto& bucket = it->second;
    counts->output_rows += static_cast<int64_t>(bucket.size());
    counts->checksum += static_cast<uint64_t>(bucket.size()) *
                        (static_cast<uint64_t>(key_hash) | 1);
    if (output != nullptr) {
      for (const RowRef& build : bucket) {
        Record joined;
        build.AppendTo(&joined);
        ref.AppendTo(&joined);
        output->push_back(std::move(joined));
      }
    }
  }
}

/// Reduce-side kernel for one partition: build a hash index on the R rows,
/// probe with the S rows in order (see the two halves above).
inline void BuildProbePartition(const std::vector<RowRef>& r_part,
                                AttrId r_attr,
                                const std::vector<RowRef>& s_part,
                                AttrId s_attr, JoinCounts* counts,
                                std::vector<Record>* output) {
  PartitionIndex index;
  AddToPartitionIndex(r_part, r_attr, &index);
  ProbePartitionRows(index, s_part, s_attr, counts, output);
}

}  // namespace adaptdb::shuffle_internal

#endif  // ADAPTDB_EXEC_SHUFFLE_KERNELS_H_
