/// \file hash_join.h
/// \brief In-memory hash-join kernel shared by shuffle join and hyper-join.
///
/// Build and probe sides reference rows of columnar blocks by (block, row)
/// instead of materialized records: keys gather straight from the join-key
/// column, and full output rows are assembled only for actual matches
/// (late materialization).

#ifndef ADAPTDB_EXEC_HASH_JOIN_H_
#define ADAPTDB_EXEC_HASH_JOIN_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "schema/predicate.h"
#include "schema/schema.h"
#include "storage/block.h"

namespace adaptdb {

/// Hashes a Value by its contained scalar.
size_t HashValue(const Value& v);

/// \brief A join key read in place from a columnar block: (column, row).
/// Probes look keys up through this view — heterogeneous lookup against
/// Value-keyed buckets — so the hot probe loop never materializes a Value
/// (for string keys that would be one allocation per probe row).
struct ColumnKey {
  const Column* col;
  uint32_t row;
};

/// Hash functor for unordered containers keyed by Value; transparent so
/// ColumnKey views probe without conversion (Column::HashAt matches
/// HashValue exactly).
struct ValueHash {
  using is_transparent = void;
  size_t operator()(const Value& v) const { return HashValue(v); }
  size_t operator()(const ColumnKey& k) const { return k.col->HashAt(k.row); }
};

/// Transparent equality between stored Value keys and ColumnKey views
/// (Column::EqualsValueAt matches Value::operator== exactly).
struct ValueEq {
  using is_transparent = void;
  bool operator()(const Value& a, const Value& b) const { return a == b; }
  bool operator()(const ColumnKey& a, const Value& b) const {
    return a.col->EqualsValueAt(a.row, b);
  }
  bool operator()(const Value& a, const ColumnKey& b) const {
    return b.col->EqualsValueAt(b.row, a);
  }
  bool operator()(const ColumnKey& a, const ColumnKey& b) const {
    return a.col->EqualsValueAt(a.row, b.col->ValueAt(b.row));
  }
};

/// \brief A reference to one row on either join side: a row of a columnar
/// block, or (for intermediate results that exist only as Records) a
/// pointer to a materialized record. The referenced block/record must
/// outlive the RowRef — callers keep BlockRef pins or the owning vector
/// alive, exactly as they kept blocks alive for record pointers before.
struct RowRef {
  const Block* block = nullptr;
  uint32_t row = 0;
  const Record* rec = nullptr;

  static RowRef OfBlock(const Block* b, uint32_t r) { return {b, r, nullptr}; }
  static RowRef OfRecord(const Record* r) { return {nullptr, 0, r}; }

  /// The join key at `attr`, materialized (strings copy).
  Value KeyAt(AttrId attr) const {
    return block != nullptr ? block->ValueAt(row, attr)
                            : (*rec)[static_cast<size_t>(attr)];
  }

  /// Appends every attribute of the referenced row to `out` (output
  /// assembly; this is where late materialization actually gathers).
  void AppendTo(Record* out) const {
    if (block != nullptr) {
      block->AppendRowTo(row, out);
    } else {
      out->insert(out->end(), rec->begin(), rec->end());
    }
  }
};

/// \brief Join output statistics. The checksum is an order-independent
/// fingerprint (sum over matched pairs of a key hash), letting tests assert
/// that different join algorithms produce identical logical results.
struct JoinCounts {
  int64_t output_rows = 0;
  uint64_t checksum = 0;

  void Merge(const JoinCounts& o) {
    output_rows += o.output_rows;
    checksum += o.checksum;
  }
};

/// \brief A build-side hash index over rows that passed the predicates.
///
/// Build rows are referenced, not copied; the index must not outlive the
/// blocks (or record vectors) it was built from.
class HashIndex {
 public:
  /// Creates an index keyed on `attr` of the build-side rows.
  explicit HashIndex(AttrId attr) : attr_(attr) {}

  /// Inserts every row of `block` matching `preds` (column-at-a-time
  /// filter, then the key column alone feeds the buckets).
  void AddBlock(const Block& block, const PredicateSet& preds);

  /// Inserts every record of `records` matching `preds`.
  void AddRecords(const std::vector<Record>& records,
                  const PredicateSet& preds);

  /// Probes with one record's key. Accumulates counts; when `output` is
  /// non-null, appends one concatenated record (build ++ probe) per match.
  void ProbeRecord(const Record& probe, AttrId probe_attr, JoinCounts* counts,
                   std::vector<Record>* output) const;

  /// Probes with every row of `block` matching `preds`; probe keys gather
  /// from the key column, and probe rows materialize only on a match with
  /// `output` set.
  void Probe(const Block& block, AttrId probe_attr, const PredicateSet& preds,
             JoinCounts* counts, std::vector<Record>* output = nullptr) const;

  /// Number of build-side rows indexed.
  int64_t BuildRows() const { return build_rows_; }

  /// Removes all entries (reuse across groups).
  void Clear();

 private:
  /// Shared match bookkeeping: counts + (optionally) materialized rows for
  /// one probe row hitting `bucket`. `key_hash` is HashValue of the key
  /// (the checksum ingredient — callers on the columnar path already have
  /// it without materializing the key).
  void EmitMatches(const std::vector<RowRef>& bucket, size_t key_hash,
                   const RowRef& probe, JoinCounts* counts,
                   std::vector<Record>* output) const;

  AttrId attr_;
  int64_t build_rows_ = 0;
  std::unordered_map<Value, std::vector<RowRef>, ValueHash, ValueEq> buckets_;
};

}  // namespace adaptdb

#endif  // ADAPTDB_EXEC_HASH_JOIN_H_
