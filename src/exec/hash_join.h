/// \file hash_join.h
/// \brief In-memory hash-join kernel shared by shuffle join and hyper-join.

#ifndef ADAPTDB_EXEC_HASH_JOIN_H_
#define ADAPTDB_EXEC_HASH_JOIN_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "schema/predicate.h"
#include "schema/schema.h"
#include "storage/block.h"

namespace adaptdb {

/// Hashes a Value by its contained scalar.
size_t HashValue(const Value& v);

/// Hash functor for unordered containers keyed by Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return HashValue(v); }
};

/// \brief Join output statistics. The checksum is an order-independent
/// fingerprint (sum over matched pairs of a key hash), letting tests assert
/// that different join algorithms produce identical logical results.
struct JoinCounts {
  int64_t output_rows = 0;
  uint64_t checksum = 0;

  void Merge(const JoinCounts& o) {
    output_rows += o.output_rows;
    checksum += o.checksum;
  }
};

/// \brief A build-side hash index over records that passed the predicates.
///
/// Build rows are referenced, not copied; the index must not outlive the
/// blocks (or record vectors) it was built from.
class HashIndex {
 public:
  /// Creates an index keyed on `attr` of the build-side records.
  explicit HashIndex(AttrId attr) : attr_(attr) {}

  /// Inserts every record of `block` matching `preds`.
  void AddBlock(const Block& block, const PredicateSet& preds);

  /// Inserts every record of `records` matching `preds`.
  void AddRecords(const std::vector<Record>& records,
                  const PredicateSet& preds);

  /// Probes with one record's key. Accumulates counts; when `output` is
  /// non-null, appends one concatenated record (build ++ probe) per match.
  void ProbeRecord(const Record& probe, AttrId probe_attr, JoinCounts* counts,
                   std::vector<Record>* output) const;

  /// Probes with every record of `block` matching `preds`.
  void Probe(const Block& block, AttrId probe_attr, const PredicateSet& preds,
             JoinCounts* counts, std::vector<Record>* output = nullptr) const;

  /// Number of build-side rows indexed.
  int64_t BuildRows() const { return build_rows_; }

  /// Removes all entries (reuse across groups).
  void Clear();

 private:
  AttrId attr_;
  int64_t build_rows_ = 0;
  std::unordered_map<Value, std::vector<const Record*>, ValueHash> buckets_;
};

}  // namespace adaptdb

#endif  // ADAPTDB_EXEC_HASH_JOIN_H_
