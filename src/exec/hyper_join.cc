#include "exec/hyper_join.h"

#include <chrono>

#include "obs/metrics.h"
#include "parallel/parallel_hyper_join.h"

namespace adaptdb {

Result<JoinExecResult> HyperJoin(const BlockStore& r_store, AttrId r_attr,
                                 const PredicateSet& r_preds,
                                 const BlockStore& s_store, AttrId s_attr,
                                 const PredicateSet& s_preds,
                                 const OverlapMatrix& overlap,
                                 const Grouping& grouping,
                                 const ClusterSim& cluster,
                                 std::vector<Record>* output) {
  JoinExecResult out;
  const auto phase_start = std::chrono::steady_clock::now();
  for (const auto& group : grouping.groups) {
    if (group.empty()) continue;
    // Build side: the group's R blocks, hashed on the join attribute.
    std::vector<BlockId> group_blocks;
    group_blocks.reserve(group.size());
    for (size_t i : group) group_blocks.push_back(overlap.r_blocks[i]);
    const NodeId worker = cluster.ScheduleTask(group_blocks);

    HashIndex index(r_attr);
    BitVector needed(overlap.NumS());
    // R pins live for the whole group: the hash index references their
    // records. S blocks stream through one transient pin at a time —
    // exactly the paper's buffer model (build side resident, probe side
    // streamed).
    std::vector<BlockRef> build_pins;
    build_pins.reserve(group.size());
    for (size_t i : group) {
      const BlockId rb = overlap.r_blocks[i];
      auto blk = r_store.Get(rb);
      if (!blk.ok()) return blk.status();
      build_pins.push_back(blk.ValueOrDie());
      cluster.ReadBlock(rb, worker, &out.io);
      ++out.r_blocks_read;
      index.AddBlock(*build_pins.back(), r_preds);
      needed.OrWith(overlap.vectors[i]);
    }

    // Probe side: every overlapping S block, streamed one at a time. Range
    // metadata prunes S blocks the S-side predicates exclude *before* they
    // are pinned — on a buffered store a pruned block is never loaded, so
    // the group's probe phase incurs no miss for it (the same skip the
    // scan path applies, extended to the join; MayMatchMeta never does
    // I/O). Probing a pruned block would find nothing: its selection
    // vector is provably empty.
    for (size_t j : needed.SetBits()) {
      const BlockId sb = overlap.s_blocks[j];
      if (!s_preds.empty() && !s_store.MayMatchMeta(sb, s_preds)) {
        ++out.s_blocks_skipped;
        obs::Count(obs::Counter::kBlocksSkippedMeta);
        continue;
      }
      auto blk = s_store.Get(sb);
      if (!blk.ok()) return blk.status();
      cluster.ReadBlock(sb, worker, &out.io);
      ++out.s_blocks_read;
      index.Probe(*blk.ValueOrDie(), s_attr, s_preds, &out.counts, output);
    }
  }
  // One phase: groups have no barrier between build and probe (build-side
  // residency ends only when the group's probes finish), so a finer split
  // would not be sequential on one thread at higher thread counts.
  out.phases.push_back(
      {"build_probe",
       std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                     phase_start)
           .count(),
       out.io, static_cast<int64_t>(grouping.groups.size())});
  return out;
}

Result<JoinExecResult> HyperJoin(const BlockStore& r_store, AttrId r_attr,
                                 const PredicateSet& r_preds,
                                 const BlockStore& s_store, AttrId s_attr,
                                 const PredicateSet& s_preds,
                                 const OverlapMatrix& overlap,
                                 const Grouping& grouping,
                                 const ClusterSim& cluster,
                                 const ExecConfig& config,
                                 std::vector<Record>* output) {
  if (config.num_threads <= 1) {
    return HyperJoin(r_store, r_attr, r_preds, s_store, s_attr, s_preds,
                     overlap, grouping, cluster, output);
  }
  return ParallelHyperJoin(r_store, r_attr, r_preds, s_store, s_attr, s_preds,
                           overlap, grouping, cluster, config, output);
}

}  // namespace adaptdb
